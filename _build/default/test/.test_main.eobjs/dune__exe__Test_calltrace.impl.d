test/test_calltrace.ml: Alcotest Fc_kernel Fc_machine Fc_profiler Format Lazy List String Test_env
