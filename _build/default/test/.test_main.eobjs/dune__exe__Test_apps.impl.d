test/test_apps.ml: Alcotest Fc_apps Fc_benchkit Fc_kernel Fc_machine Fc_profiler Fc_ranges Lazy List Test_env
