test/test_behavior.ml: Alcotest Fc_apps Fc_benchkit Fc_core Fc_hypervisor Fc_machine Fc_profiler Filename Lazy List String Sys Test_env
