test/test_env.ml: Fc_benchkit Fc_kernel Lazy
