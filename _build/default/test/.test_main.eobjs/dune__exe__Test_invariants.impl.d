test/test_invariants.ml: Array Bytes Fc_core Fc_hypervisor Fc_isa Fc_kernel Fc_machine Fc_mem Fc_profiler Fc_ranges Format Lazy List Option Printf QCheck QCheck_alcotest String
