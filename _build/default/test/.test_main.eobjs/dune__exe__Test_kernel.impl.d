test/test_kernel.ml: Alcotest Bytes Fc_isa Fc_kernel Hashtbl Lazy List Option Printf Result
