test/test_attacks.ml: Alcotest Fc_apps Fc_attacks Fc_benchkit Fc_core Fc_kernel Lazy List String Test_env
