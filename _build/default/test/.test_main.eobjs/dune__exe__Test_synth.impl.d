test/test_synth.ml: Alcotest Fc_apps Fc_benchkit Fc_core Fc_hypervisor Fc_kernel Fc_machine Format Lazy List String Test_env
