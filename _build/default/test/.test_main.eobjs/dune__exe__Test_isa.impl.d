test/test_isa.ml: Alcotest Bytes Fc_isa List Option Printf QCheck QCheck_alcotest
