test/test_smp.ml: Alcotest Fc_core Fc_hypervisor Fc_kernel Fc_machine Fc_profiler Lazy List Printf Test_env
