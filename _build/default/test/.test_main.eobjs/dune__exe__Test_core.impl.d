test/test_core.ml: Alcotest Fc_core Fc_hypervisor Fc_isa Fc_kernel Fc_machine Fc_mem Fc_profiler Fc_ranges Filename Lazy List String Sys
