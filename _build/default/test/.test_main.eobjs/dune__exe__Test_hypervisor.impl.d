test/test_hypervisor.ml: Alcotest Fc_core Fc_hypervisor Fc_isa Fc_kernel Fc_machine Fc_mem Fc_profiler Fc_ranges Lazy List Option Printf
