test/test_ranges.ml: Alcotest Fc_ranges Format List QCheck QCheck_alcotest Range_list Segment Span
