test/test_benchkit.ml: Alcotest Fc_attacks Fc_benchkit Fc_profiler Fc_ranges Lazy List String Test_env
