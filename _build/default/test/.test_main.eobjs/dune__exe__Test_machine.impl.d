test/test_machine.ml: Alcotest Buffer Bytes Char Fc_isa Fc_kernel Fc_machine Fc_mem Format Hashtbl Lazy List Option Printf Queue
