test/test_mem.ml: Alcotest Bytes Char Fc_mem Option QCheck QCheck_alcotest
