module Profiles = Fc_benchkit.Profiles
module Table1 = Fc_benchkit.Table1
module Fig3 = Fc_benchkit.Fig3
module Unixbench = Fc_benchkit.Unixbench
module Httperf = Fc_benchkit.Httperf

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let profiles () = Lazy.force Test_env.profiles

let contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_table1_matrix () =
  let t = Table1.compute (profiles ()) in
  check_int "12 apps" 12 (List.length (Table1.apps t));
  (* symmetry and self-similarity *)
  Alcotest.(check (float 1e-9))
    "self" 1.0 (Table1.similarity t "top" "top");
  Alcotest.(check (float 1e-9))
    "symmetric"
    (Table1.similarity t "top" "firefox")
    (Table1.similarity t "firefox" "top");
  (* overlap <= min size *)
  check_bool "overlap bounded" true
    (Table1.overlap_kb t "top" "firefox" <= min (Table1.size_kb t "top") (Table1.size_kb t "firefox"));
  let a, b, s = Table1.min_similarity t in
  check_bool "min involves top" true (a = "top" || b = "top");
  check_bool "min in band" true (s > 0.15 && s < 0.45);
  let _, _, smax = Table1.max_similarity t in
  check_bool "max in band" true (smax > 0.75 && smax < 0.99);
  let rendered = Table1.render t in
  List.iter
    (fun app -> check_bool (app ^ " rendered") true (contains rendered app))
    (Table1.apps t)

let test_fig3_shape () =
  let r = Fig3.run (profiles ()) in
  check_bool "completed" true r.Fig3.completed;
  check_bool "pipe_poll lazy" true (List.mem "pipe_poll" r.Fig3.lazy_recovered);
  check_bool "do_sys_poll lazy" true (List.mem "do_sys_poll" r.Fig3.lazy_recovered);
  check_bool "sys_poll instant" true (List.mem "sys_poll" r.Fig3.instant_recovered);
  check_bool "do_sys_poll NOT instant" false
    (List.mem "do_sys_poll" r.Fig3.instant_recovered);
  let text = Fig3.render r in
  check_bool "lazy annotation" true (contains text "Lazy recovery");
  check_bool "instant annotation" true (contains text "Instant recovery")

let test_unixbench_scores_positive () =
  let scores =
    Unixbench.run_suite (Profiles.image (profiles ())) ~views:[] ~enabled:false
  in
  check_int "9 subtests" 9 (List.length scores);
  List.iter
    (fun (n, v) -> if v <= 0. then Alcotest.failf "%s score %f" n v)
    scores

let test_fig6_overhead_band () =
  let pts = Unixbench.fig6 ~view_counts:[ 2 ] (profiles ()) in
  match pts with
  | [ base; p ] ->
      Alcotest.(check (float 1e-9)) "baseline 1.0" 1.0 base.Unixbench.overall;
      check_bool "overhead exists" true (p.Unixbench.overall < 1.0);
      check_bool "overhead moderate (paper: 5-7%)" true (p.Unixbench.overall > 0.85);
      (* pipe-based context switching is the worst subtest *)
      let worst =
        List.fold_left
          (fun (bn, bv) (n, v) -> if v < bv then (n, v) else (bn, bv))
          ("", infinity) p.Unixbench.per_test
      in
      Alcotest.(check string)
        "worst subtest" "Pipe-based Context Switching" (fst worst)
  | _ -> Alcotest.fail "expected 2 points"

let test_fig7_crossover () =
  let r = Httperf.run (profiles ()) in
  check_bool "fc capacity below baseline" true
    (r.Httperf.fc_capacity < r.Httperf.base_capacity);
  check_bool "fc capacity in paper band (50-60)" true
    (r.Httperf.fc_capacity > 48. && r.Httperf.fc_capacity < 60.5);
  (* ratio flat at 1.0 for low rates, dipping at the end *)
  List.iter
    (fun (rate, ratio) ->
      if float_of_int rate <= r.Httperf.fc_capacity && ratio < 0.999 then
        Alcotest.failf "ratio %.3f below capacity at %d req/s" ratio rate)
    r.Httperf.series;
  let _, last = List.nth r.Httperf.series (List.length r.Httperf.series - 1) in
  check_bool "degrades at 60 req/s" true (last < 0.999)

let test_table2_full_regression () =
  (* the headline security result: every attack detected under per-app
     views; every user-level attack invisible under the union view;
     rootkits caught either way *)
  let rows = Fc_benchkit.Table2.run_all (profiles ()) in
  check_int "16 attacks" 16 (List.length rows);
  List.iter
    (fun (r : Fc_benchkit.Table2.row) ->
      let a = r.Fc_benchkit.Table2.per_app.Fc_benchkit.Detect.attack in
      if not r.Fc_benchkit.Table2.per_app.Fc_benchkit.Detect.detected then
        Alcotest.failf "%s not detected under per-app view" a.Fc_attacks.Attack.name;
      match a.Fc_attacks.Attack.kind with
      | Fc_attacks.Attack.Kernel_rootkit ->
          if not r.Fc_benchkit.Table2.union.Fc_benchkit.Detect.detected then
            Alcotest.failf "%s (rootkit) should be caught under union too"
              a.Fc_attacks.Attack.name
      | _ ->
          if r.Fc_benchkit.Table2.union.Fc_benchkit.Detect.detected then
            Alcotest.failf "%s should be invisible under the union view"
              a.Fc_attacks.Attack.name)
    rows;
  let kbeast =
    List.find
      (fun (r : Fc_benchkit.Table2.row) ->
        r.Fc_benchkit.Table2.per_app.Fc_benchkit.Detect.attack.Fc_attacks.Attack.name
        = "KBeast")
      rows
  in
  check_bool "only KBeast has UNKNOWN frames" true
    kbeast.Fc_benchkit.Table2.per_app.Fc_benchkit.Detect.unknown_frames

let test_fig4_render () =
  let text = Fc_benchkit.Fig4.render (Fc_benchkit.Fig4.run (profiles ())) in
  List.iter
    (fun chain ->
      if not (contains text chain) then Alcotest.failf "fig4 missing %s" chain)
    [ "sys_bind"; "udp_lib_lport_inuse"; "prepare_to_wait_exclusive";
      "detected: true" ]

let test_fig5_render () =
  let text = Fc_benchkit.Fig5.render (Fc_benchkit.Fig5.run (profiles ())) in
  List.iter
    (fun s -> if not (contains text s) then Alcotest.failf "fig5 missing %s" s)
    [ "<UNKNOWN>"; "strnlen"; "filp_open"; "do_sync_write";
      "hidden-module (UNKNOWN) frames present: true" ]

let test_ablation_whole_function () =
  match Fc_benchkit.Ablation.whole_function_load (profiles ()) with
  | [ paper; raw ] ->
      let err_recoveries r =
        int_of_string (List.assoc "recoveries, error-path workload" r.Fc_benchkit.Ablation.metrics)
      in
      check_int "whole-function absorbs error paths" 0 (err_recoveries paper);
      check_bool "raw spans trap on error paths" true (err_recoveries raw > 0)
  | _ -> Alcotest.fail "expected two rows"

let test_union_view_is_superset () =
  let p = profiles () in
  let union = Profiles.union_config p in
  List.iter
    (fun (name, cfg) ->
      if
        not
          (Fc_ranges.Range_list.subset cfg.Fc_profiler.View_config.ranges
             union.Fc_profiler.View_config.ranges)
      then Alcotest.failf "union does not cover %s" name)
    (Profiles.all_configs p)

let tc_slow name f = Alcotest.test_case name `Slow f

let suites =
  [
    ( "benchkit",
      [
        tc_slow "Table I matrix properties" test_table1_matrix;
        tc_slow "Fig 3 lazy/instant shape" test_fig3_shape;
        tc_slow "UnixBench scores positive" test_unixbench_scores_positive;
        tc_slow "Fig 6 overhead band and worst subtest" test_fig6_overhead_band;
        tc_slow "Fig 7 capacity crossover" test_fig7_crossover;
        tc_slow "union view is a superset" test_union_view_is_superset;
        tc_slow "Table II full regression (16 attacks, both regimes)" test_table2_full_regression;
        tc_slow "Fig 4 rendering carries the paper's chains" test_fig4_render;
        tc_slow "Fig 5 rendering shows hidden-module frames" test_fig5_render;
        tc_slow "whole-function ablation shape" test_ablation_whole_function;
      ] );
  ]
