module Action = Fc_machine.Action
module Os = Fc_machine.Os
module Process = Fc_machine.Process
module Hyp = Fc_hypervisor.Hypervisor
module Behavior = Fc_profiler.Behavior
module Behavior_monitor = Fc_core.Behavior_monitor
module Facechange = Fc_core.Facechange
module App = Fc_apps.App

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let image () = Lazy.force Test_env.image

let test_handler_names () =
  let names = Behavior.handler_names (image ()) in
  check_bool "plenty of handlers" true (List.length names > 60);
  List.iter
    (fun (_, n) ->
      if not (String.length n > 4 && String.sub n 0 4 = "sys_") then
        Alcotest.failf "non-handler %s" n)
    names

let tiny_script =
  [
    Action.Syscall "getpid"; Action.Syscall "getuid"; Action.Syscall "getpid";
    Action.Syscall "getuid"; Action.Exit;
  ]

let test_profile_counts () =
  let p = Behavior.profile_app (image ()) ~name:"tiny" tiny_script in
  Alcotest.(check string) "app" "tiny" p.Behavior.app;
  check_int "getpid count" 2 (List.assoc "sys_getpid" p.Behavior.handlers);
  check_int "getuid count" 2 (List.assoc "sys_getuid" p.Behavior.handlers);
  check_int "exit count" 1 (List.assoc "sys_exit_group" p.Behavior.handlers);
  check_int "getpid->getuid bigram" 2
    (List.assoc ("sys_getpid", "sys_getuid") p.Behavior.bigrams);
  check_int "getuid->getpid bigram" 1
    (List.assoc ("sys_getuid", "sys_getpid") p.Behavior.bigrams);
  check_bool "knows handler" true (Behavior.knows_handler p "sys_getpid");
  check_bool "unknown handler" false (Behavior.knows_handler p "sys_socket");
  check_bool "knows bigram" true
    (Behavior.knows_bigram p ~prev:"sys_getpid" ~cur:"sys_getuid");
  check_bool "final bigram known" true
    (Behavior.knows_bigram p ~prev:"sys_getuid" ~cur:"sys_exit_group");
  check_bool "unknown bigram" false
    (Behavior.knows_bigram p ~prev:"sys_exit_group" ~cur:"sys_getpid")

let test_profile_roundtrip () =
  let p = Behavior.profile_app (image ()) ~name:"tiny" tiny_script in
  match Behavior.of_string (Behavior.to_string p) with
  | Error e -> Alcotest.fail e
  | Ok p' ->
      Alcotest.(check string) "app" p.Behavior.app p'.Behavior.app;
      check_bool "handlers" true (p.Behavior.handlers = p'.Behavior.handlers);
      check_bool "bigrams" true (p.Behavior.bigrams = p'.Behavior.bigrams)

let test_profile_save_load () =
  let p = Behavior.profile_app (image ()) ~name:"tiny" tiny_script in
  let path = Filename.temp_file "fc_behavior" ".prof" in
  Behavior.save p path;
  (match Behavior.load path with
  | Error e -> Alcotest.fail e
  | Ok p' -> check_bool "equal" true (p = p'));
  Sys.remove path

let test_novel_bigrams () =
  let base = Behavior.profile_app (image ()) ~name:"t" tiny_script in
  let other =
    Behavior.profile_app (image ()) ~name:"t"
      [ Action.Syscall "getpid"; Action.Syscall "brk"; Action.Exit ]
  in
  let novel = Behavior.novel_bigrams base ~observed:other in
  check_bool "getpid->brk is novel" true (List.mem ("sys_getpid", "sys_brk") novel);
  check_int "self-diff empty" 0 (List.length (Behavior.novel_bigrams base ~observed:base))

(* The §V-A scenario: an in-view parasite is invisible to code recovery
   but caught by the monitor. *)
let test_inview_parasite_detection () =
  let apache = App.find_exn "apache" in
  let view = Fc_benchkit.Profiles.config_of (Lazy.force Test_env.profiles) "apache" in
  let behavior =
    Behavior.profile_app ~config:(App.os_config apache) (image ()) ~name:"apache"
      (apache.App.script 8)
  in
  let os = Os.create ~config:(App.os_config apache) (image ()) in
  let hyp = Hyp.attach os in
  let fc = Facechange.enable hyp in
  let (_ : int) = Facechange.load_view fc view in
  let monitor = Behavior_monitor.attach hyp behavior in
  let parasite =
    [ Action.Syscall "socket:tcp"; Action.Syscall "bind:tcp";
      Action.Syscall "listen:tcp"; Action.Syscall "accept:tcp";
      Action.Syscall "recv:tcp"; Action.Syscall "send:tcp" ]
  in
  let proc = Os.spawn os ~name:"apache" (apache.App.script 3) in
  Os.schedule_at_round os 4 (fun _ -> Process.prepend_script proc parasite);
  Os.run os;
  check_bool "completed" true (Process.is_exited proc);
  check_int "code recovery blind" 0 (Facechange.recoveries fc);
  check_bool "behavior alerts raised" true (Behavior_monitor.alerts monitor <> []);
  check_bool "monitor observed traffic" true (Behavior_monitor.syscalls_seen monitor > 20)

let test_clean_run_no_alerts () =
  let apache = App.find_exn "apache" in
  let behavior =
    Behavior.profile_app ~config:(App.os_config apache) (image ()) ~name:"apache"
      (apache.App.script 8)
  in
  let os = Os.create ~config:(App.os_config apache) (image ()) in
  let hyp = Hyp.attach os in
  let monitor = Behavior_monitor.attach hyp behavior in
  let proc = Os.spawn os ~name:"apache" (apache.App.script 3) in
  Os.run os;
  check_bool "completed" true (Process.is_exited proc);
  check_int "no alerts on profiled behavior" 0
    (List.length (Behavior_monitor.alerts monitor))

let test_monitor_ignores_other_processes () =
  let behavior = Behavior.profile_app (image ()) ~name:"watched" tiny_script in
  let os = Os.create (image ()) in
  let hyp = Hyp.attach os in
  let monitor = Behavior_monitor.attach hyp behavior in
  let _ = Os.spawn os ~name:"bystander" [ Action.Syscall "socket:udp"; Action.Exit ] in
  Os.run os;
  check_int "bystander not monitored" 0 (Behavior_monitor.syscalls_seen monitor)

let test_monitor_detach () =
  let behavior = Behavior.profile_app (image ()) ~name:"watched" tiny_script in
  let os = Os.create (image ()) in
  let hyp = Hyp.attach os in
  let monitor = Behavior_monitor.attach hyp behavior in
  Behavior_monitor.detach monitor;
  let _ = Os.spawn os ~name:"watched" [ Action.Syscall "brk"; Action.Exit ] in
  Os.run os;
  check_int "nothing observed after detach" 0 (Behavior_monitor.syscalls_seen monitor)

let test_monitor_observed_profile () =
  let behavior = Behavior.profile_app (image ()) ~name:"watched" tiny_script in
  let os = Os.create (image ()) in
  let hyp = Hyp.attach os in
  let monitor = Behavior_monitor.attach hyp behavior in
  let _ = Os.spawn os ~name:"watched" tiny_script in
  Os.run os;
  let obs = Behavior_monitor.observed monitor in
  check_int "observed getpid" 2 (List.assoc "sys_getpid" obs.Behavior.handlers);
  check_int "novel vs profile: none" 0
    (List.length (Behavior.novel_bigrams behavior ~observed:obs))

let tc name f = Alcotest.test_case name `Quick f
let tc_slow name f = Alcotest.test_case name `Slow f

let suites =
  [
    ( "behavior",
      [
        tc "handler observation points" test_handler_names;
        tc "profile counts handlers and transitions" test_profile_counts;
        tc "profile to_string/of_string roundtrip" test_profile_roundtrip;
        tc "profile save/load" test_profile_save_load;
        tc "novel bigram diffing" test_novel_bigrams;
        tc_slow "in-view parasite: code-blind, behavior-caught (§V-A)" test_inview_parasite_detection;
        tc_slow "clean run raises no alerts" test_clean_run_no_alerts;
        tc "other processes not monitored" test_monitor_ignores_other_processes;
        tc "detach stops observation" test_monitor_detach;
        tc "observed profile matches reality" test_monitor_observed_profile;
      ] );
  ]
