(* Shared expensive fixtures for the heavier test modules. *)

let image = lazy (Fc_kernel.Image.build_exn ())

let profiles = lazy (Fc_benchkit.Profiles.compute ~iterations:8 (Lazy.force image))
