(* Multi-vCPU guests: the paper's §V-C extension.  Per-vCPU EPTs, per-CPU
   current-task pointers, process pinning, and per-vCPU kernel view
   switching. *)

module Action = Fc_machine.Action
module Process = Fc_machine.Process
module Os = Fc_machine.Os
module Image = Fc_kernel.Image
module Layout = Fc_kernel.Layout
module Hyp = Fc_hypervisor.Hypervisor
module Facechange = Fc_core.Facechange
module Profiler = Fc_profiler.Profiler
module Recovery_log = Fc_core.Recovery_log

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let image () = Lazy.force Test_env.image
let smp ?(vcpus = 2) ?config () = Os.create ?config ~vcpus (image ())

let test_boot_smp () =
  let os = smp ~vcpus:4 () in
  check_int "vcpu count" 4 (Os.vcpu_count os);
  (* per-CPU current pointers name the per-CPU idle tasks *)
  for vid = 0 to 3 do
    match Os.read_guest_u32 os (Layout.current_task_ptr_cpu ~vid) with
    | Some task -> check_int (Printf.sprintf "cpu%d idle pid" vid)
        (Layout.task_struct_addr ~pid:vid) task
    | None -> Alcotest.fail "per-cpu current unmapped"
  done;
  check_bool "distinct EPTs" true (Os.ept_of os ~vid:0 != Os.ept_of os ~vid:1)

let test_vcpu_bounds () =
  let os = smp () in
  (match Os.ept_of os ~vid:2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected bounds failure");
  match Os.create ~vcpus:0 (image ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected vcpus>=1"

let test_round_robin_pinning () =
  let os = smp () in
  let a = Os.spawn os ~name:"a" [ Action.Exit ] in
  let b = Os.spawn os ~name:"b" [ Action.Exit ] in
  let c = Os.spawn os ~name:"c" [ Action.Exit ] in
  check_bool "alternating cpus" true
    (a.Process.cpu <> b.Process.cpu && a.Process.cpu = c.Process.cpu);
  let d = Os.spawn ~cpu:1 os ~name:"d" [ Action.Exit ] in
  check_int "explicit pin" 1 d.Process.cpu;
  match Os.spawn ~cpu:7 os ~name:"e" [ Action.Exit ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected bad-cpu failure"

let test_parallel_workloads_complete () =
  let os = smp ~vcpus:4 () in
  let mk i =
    Os.spawn os ~name:(Printf.sprintf "w%d" i)
      (Action.repeat 6 [ Action.Syscall "getpid"; Action.Syscall "read:proc:pid";
                         Action.Compute 1_000 ]
      @ [ Action.Exit ])
  in
  let procs = List.init 8 mk in
  Os.run os;
  List.iter
    (fun p ->
      if not (Process.is_exited p) then
        Alcotest.failf "%s did not finish" p.Process.name)
    procs

let test_blocking_across_vcpus () =
  let os = smp () in
  let mk name = Os.spawn os ~name
    (Action.repeat 4 [ Action.Syscall "poll:pipe"; Action.Syscall "getpid" ]
    @ [ Action.Exit ]) in
  let a = mk "pollerA" and b = mk "pollerB" in
  Os.run os;
  check_bool "both complete" true (Process.is_exited a && Process.is_exited b);
  check_bool "they ran on different cpus" true (a.Process.cpu <> b.Process.cpu)

(* A small two-app scenario with per-vCPU views. *)
let two_view_guest () =
  let img = image () in
  let cfg_a =
    Profiler.profile_app img ~name:"appA"
      (Action.repeat 10 [ Action.Syscall "read:proc:stat"; Action.Syscall "write:tty" ]
      @ [ Action.Exit ])
  in
  let cfg_b =
    Profiler.profile_app img ~name:"appB"
      (Action.repeat 10 [ Action.Syscall "open:ext4"; Action.Syscall "read:ext4";
                          Action.Syscall "close" ]
      @ [ Action.Exit ])
  in
  let os = smp ~config:Os.profiling_config () in
  let hyp = Hyp.attach os in
  let fc = Facechange.enable hyp in
  let ia = Facechange.load_view fc cfg_a in
  let ib = Facechange.load_view fc cfg_b in
  (os, fc, ia, ib)

let test_per_vcpu_view_switching () =
  let os, fc, ia, ib = two_view_guest () in
  (* pin each app to its own vCPU *)
  let a =
    Os.spawn ~cpu:0 os ~name:"appA"
      (Action.repeat 6 [ Action.Syscall "read:proc:stat"; Action.Syscall "write:tty";
                         Action.Sleep 2 ]
      @ [ Action.Exit ])
  in
  let b =
    Os.spawn ~cpu:1 os ~name:"appB"
      (Action.repeat 6 [ Action.Syscall "open:ext4"; Action.Syscall "read:ext4";
                         Action.Syscall "close"; Action.Sleep 2 ]
      @ [ Action.Exit ])
  in
  (* mid-run, each vCPU must be enforcing its own application's view *)
  let observed = ref None in
  Os.schedule_at_round os 6 (fun os ->
      ignore os;
      observed := Some (Facechange.active_index ~vid:0 fc,
                        Facechange.active_index ~vid:1 fc));
  Os.run os;
  check_bool "both complete (silent recovery everywhere)" true
    (Process.is_exited a && Process.is_exited b);
  (match !observed with
  | Some (va, vb) ->
      (* with Sleep actions both apps park; idle switches install the full
         view, so accept either the app view or full per vCPU, but they
         must never hold each other's view *)
      check_bool "vcpu0 never holds appB's view" true (va <> ib);
      check_bool "vcpu1 never holds appA's view" true (vb <> ia)
  | None -> Alcotest.fail "round hook did not fire");
  check_bool "views actually switched" true (Facechange.switches fc > 2)

let test_no_cross_vcpu_interference () =
  let os, fc, _ia, _ib = two_view_guest () in
  (* appA enforced on cpu0; an unbound process on cpu1 uses code far
     outside appA's view and must never trap *)
  let a =
    Os.spawn ~cpu:0 os ~name:"appA"
      (Action.repeat 6 [ Action.Syscall "read:proc:stat" ] @ [ Action.Exit ])
  in
  let free =
    Os.spawn ~cpu:1 os ~name:"freebird"
      (Action.repeat 6 [ Action.Syscall "socket:udp"; Action.Syscall "bind:udp";
                         Action.Syscall "close:udp" ]
      @ [ Action.Exit ])
  in
  Os.run os;
  check_bool "both complete" true (Process.is_exited a && Process.is_exited free);
  let bad =
    List.exists
      (fun e -> e.Recovery_log.comm = "freebird")
      (Recovery_log.entries (Facechange.log fc))
  in
  check_bool "full-view process on the other vcpu never recovered" false bad

let test_recovery_on_secondary_vcpu () =
  let os, fc, _ia, ib = two_view_guest () in
  ignore ib;
  (* appB (cpu1) gets an out-of-view payload: recovery must fire on vcpu 1
     and attribute the right process *)
  let b =
    Os.spawn ~cpu:1 os ~name:"appB"
      ([ Action.Syscall "socket:udp"; Action.Syscall "bind:udp" ]
      @ Action.repeat 3 [ Action.Syscall "open:ext4"; Action.Syscall "close" ]
      @ [ Action.Exit ])
  in
  Os.run os;
  check_bool "completed" true (Process.is_exited b);
  let names = Recovery_log.recovered_names (Facechange.log fc) in
  check_bool "udp recovery on cpu1" true (List.mem "udp_v4_get_port" names);
  List.iter
    (fun e ->
      Alcotest.(check string) "attributed to appB" "appB" e.Recovery_log.comm)
    (Recovery_log.entries (Facechange.log fc))

let test_smp_determinism () =
  (* the multi-vCPU interleaving is deterministic: two identical runs give
     identical cycle counts and switch counts *)
  let run () =
    let os, fc, _, _ = two_view_guest () in
    let mk cpu name script = Os.spawn ~cpu os ~name script in
    let _ = mk 0 "appA" (Action.repeat 4 [ Action.Syscall "read:proc:stat" ] @ [ Action.Exit ]) in
    let _ = mk 1 "appB" (Action.repeat 4 [ Action.Syscall "read:ext4" ] @ [ Action.Exit ]) in
    Os.run os;
    (Os.cycles os, Facechange.switches fc, Os.context_switches os)
  in
  check_bool "deterministic" true (run () = run ())

let tc name f = Alcotest.test_case name `Quick f
let tc_slow name f = Alcotest.test_case name `Slow f

let suites =
  [
    ( "smp",
      [
        tc "boot with 4 vcpus (per-cpu idle/current)" test_boot_smp;
        tc "vcpu bounds checking" test_vcpu_bounds;
        tc "round-robin and explicit pinning" test_round_robin_pinning;
        tc "8 workloads across 4 vcpus complete" test_parallel_workloads_complete;
        tc "blocking workloads across vcpus" test_blocking_across_vcpus;
        tc_slow "per-vCPU kernel view switching" test_per_vcpu_view_switching;
        tc_slow "no cross-vCPU view interference" test_no_cross_vcpu_interference;
        tc_slow "recovery on a secondary vcpu" test_recovery_on_secondary_vcpu;
        tc_slow "SMP runs are deterministic" test_smp_determinism;
      ] );
  ]
