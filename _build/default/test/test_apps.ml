module App = Fc_apps.App
module Action = Fc_machine.Action
module Os = Fc_machine.Os
module View_config = Fc_profiler.View_config
module Range_list = Fc_ranges.Range_list

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_twelve_apps () =
  check_int "12 applications" 12 (List.length App.all);
  Alcotest.(check (list string))
    "paper order"
    [ "firefox"; "totem"; "gvim"; "apache"; "vsftpd"; "top"; "tcpdump";
      "mysqld"; "bash"; "sshd"; "gzip"; "eog" ]
    App.names

let test_scripts_use_valid_syscalls () =
  List.iter
    (fun app ->
      List.iter
        (function
          | Action.Syscall v ->
              if Fc_kernel.Syscalls.find v = None then
                Alcotest.failf "%s uses unknown syscall %s" app.App.name v
          | Action.Compute _ | Action.Sleep _ | Action.Fault | Action.Exit -> ())
        (app.App.script 2))
    App.all

let test_scripts_end_with_exit () =
  List.iter
    (fun app ->
      match List.rev (app.App.script 1) with
      | Action.Exit :: _ -> ()
      | _ -> Alcotest.failf "%s script does not end with Exit" app.App.name)
    App.all

let test_every_app_runs_clean () =
  (* each app's workload must run to completion in its own environment *)
  List.iter
    (fun app ->
      let os = Os.create ~config:(App.os_config app) (Lazy.force Test_env.image) in
      let p = Os.spawn os ~name:app.App.name (app.App.script 2) in
      (try Os.run os
       with Os.Guest_panic m -> Alcotest.failf "%s panicked: %s" app.App.name m);
      if not (Fc_machine.Process.is_exited p) then
        Alcotest.failf "%s did not finish" app.App.name)
    App.all

let test_find () =
  check_bool "find" true (App.find "mysqld" <> None);
  check_bool "missing" true (App.find "emacs" = None);
  match App.find_exn "top" with
  | { App.category = "utility"; _ } -> ()
  | _ -> Alcotest.fail "top should be a utility"

let cfg name = Fc_benchkit.Profiles.config_of (Lazy.force Test_env.profiles) name

let test_profile_sizes_shape () =
  (* Table I shape: top is the smallest view, firefox the largest. *)
  let sizes = List.map (fun n -> (n, View_config.size (cfg n))) App.names in
  let top = List.assoc "top" sizes and firefox = List.assoc "firefox" sizes in
  List.iter
    (fun (n, s) ->
      if n <> "top" && s < top then Alcotest.failf "%s smaller than top" n;
      if n <> "firefox" && s > firefox then Alcotest.failf "%s larger than firefox" n)
    sizes;
  (* magnitudes comparable to the paper's 167-443 KB *)
  check_bool "top >= 60KB" true (top >= 60 * 1024);
  check_bool "firefox <= 600KB" true (firefox <= 600 * 1024)

let test_similarity_extremes () =
  let s a b = View_config.similarity (cfg a) (cfg b) in
  (* orthogonal categories: low; same category: high (paper: 33.6-86.5%) *)
  check_bool "top vs firefox low" true (s "top" "firefox" < 0.45);
  check_bool "apache vs vsftpd high" true (s "apache" "vsftpd" > 0.75);
  check_bool "eog vs totem high" true (s "eog" "totem" > 0.75);
  check_bool "low < high" true (s "top" "firefox" < s "apache" "vsftpd")

let test_profiles_include_common_kernel () =
  let img = Lazy.force Test_env.image in
  List.iter
    (fun name ->
      let r = (cfg name).View_config.ranges in
      List.iter
        (fun f ->
          if
            not
              (Range_list.mem r Fc_ranges.Segment.Base_kernel
                 (Fc_kernel.Image.addr_of_exn img f))
          then Alcotest.failf "%s view lacks %s" name f)
        [ "schedule"; "__switch_to"; "syscall_call"; "resume_userspace";
          "timer_interrupt"; "irq_entry" ])
    App.names

let test_category_specific_code () =
  let img = Lazy.force Test_env.image in
  let has name f =
    Range_list.mem (cfg name).View_config.ranges Fc_ranges.Segment.Base_kernel
      (Fc_kernel.Image.addr_of_exn img f)
  in
  check_bool "top reads procfs" true (has "top" "proc_stat_show");
  check_bool "firefox does not" false (has "firefox" "proc_stat_show");
  check_bool "apache accepts tcp" true (has "apache" "inet_csk_accept");
  check_bool "gzip does not" false (has "gzip" "inet_csk_accept");
  check_bool "mysqld journals" true (has "mysqld" "jbd2_commit_transaction");
  check_bool "top does not" false (has "top" "jbd2_commit_transaction")

let test_module_code_in_profiles () =
  let m name = Fc_ranges.Segment.Kernel_module name in
  let segs name = Range_list.segments (cfg name).View_config.ranges in
  check_bool "tcpdump uses af_packet" true (List.mem (m "af_packet") (segs "tcpdump"));
  check_bool "top does not" false (List.mem (m "af_packet") (segs "top"));
  check_bool "totem uses snd" true (List.mem (m "snd_hda") (segs "totem"));
  check_bool "sshd uses crypto" true (List.mem (m "crypto_aes") (segs "sshd"));
  check_bool "nobody profiled kvmclock" true
    (List.for_all (fun n -> not (List.mem (m "kvmclock") (segs n))) App.names)

let tc name f = Alcotest.test_case name `Quick f
let tc_slow name f = Alcotest.test_case name `Slow f

let suites =
  [
    ( "apps.catalog",
      [
        tc "twelve applications, paper order" test_twelve_apps;
        tc "scripts use valid syscalls" test_scripts_use_valid_syscalls;
        tc "scripts end with exit" test_scripts_end_with_exit;
        tc "find" test_find;
        tc_slow "every app runs clean" test_every_app_runs_clean;
      ] );
    ( "apps.profiles",
      [
        tc_slow "Table I size shape (top min, firefox max)" test_profile_sizes_shape;
        tc_slow "similarity extremes" test_similarity_extremes;
        tc_slow "common kernel code in every view" test_profiles_include_common_kernel;
        tc_slow "category-specific code" test_category_specific_code;
        tc_slow "module code recorded module-relative" test_module_code_in_profiles;
      ] );
  ]
