module Attack = Fc_attacks.Attack
module App = Fc_apps.App
module Detect = Fc_benchkit.Detect
module Recovery_log = Fc_core.Recovery_log

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let profiles () = Lazy.force Test_env.profiles

let test_corpus_shape () =
  check_int "16 attacks" 16 (List.length Attack.all);
  let rootkits =
    List.filter (fun a -> a.Attack.kind = Attack.Kernel_rootkit) Attack.all
  in
  check_int "3 rootkits" 3 (List.length rootkits);
  List.iter
    (fun a ->
      if App.find a.Attack.host = None then
        Alcotest.failf "%s targets unknown host %s" a.Attack.name a.Attack.host;
      if a.Attack.signature = [] then Alcotest.failf "%s has no signature" a.Attack.name)
    Attack.all

let test_signatures_resolve () =
  (* every signature entry is either a catalog function or a module tag *)
  List.iter
    (fun a ->
      List.iter
        (fun s ->
          let is_mod = String.length s > 4 && String.sub s 0 4 = "mod:" in
          if (not is_mod) && Fc_kernel.Catalog.find s = None then
            Alcotest.failf "%s signature names unknown function %s" a.Attack.name s)
        a.Attack.signature)
    Attack.all

let test_find () =
  check_bool "found" true (Attack.find "KBeast" <> None);
  check_bool "missing" true (Attack.find "Stuxnet" = None)

let test_injectso_detected_per_app () =
  let o = Detect.run (profiles ()) ~mode:Detect.Per_app (Attack.find_exn "Injectso") in
  check_bool "completed (recovery silent)" true o.Detect.completed;
  check_bool "detected" true o.Detect.detected;
  check_bool "udp evidence" true (List.mem "udp_recvmsg" o.Detect.evidence)

let test_injectso_union_blind_spot () =
  let o = Detect.run (profiles ()) ~mode:Detect.Union (Attack.find_exn "Injectso") in
  check_bool "completed" true o.Detect.completed;
  check_bool "not detected under union" false o.Detect.detected;
  check_int "no recoveries at all" 0 o.Detect.recoveries

let test_kbeast_unknown_frames () =
  let o = Detect.run (profiles ()) ~mode:Detect.Per_app (Attack.find_exn "KBeast") in
  check_bool "detected" true o.Detect.detected;
  check_bool "hidden module shows as UNKNOWN" true o.Detect.unknown_frames;
  check_bool "strnlen chain recovered" true (List.mem "strnlen" o.Detect.evidence)

let test_sebek_module_recovery () =
  let o = Detect.run (profiles ()) ~mode:Detect.Per_app (Attack.find_exn "Sebek") in
  check_bool "detected via module code recovery" true
    (List.mem "mod:sebek" o.Detect.evidence);
  check_bool "visible module is not UNKNOWN" false o.Detect.unknown_frames

let test_cymothoa_v4_itimer_path () =
  let o = Detect.run (profiles ()) ~mode:Detect.Per_app (Attack.find_exn "Cymothoa v4") in
  check_bool "detected" true o.Detect.detected;
  check_bool "setitimer evidence" true (List.mem "sys_setitimer" o.Detect.evidence);
  check_bool "alarm expiry evidence" true (List.mem "it_real_fn" o.Detect.evidence)

let test_offline_infection_runs_at_entry () =
  let o = Detect.run (profiles ()) ~mode:Detect.Per_app (Attack.find_exn "Infelf v2") in
  check_bool "tty recovery for a GUI editor" true (List.mem "tty_write" o.Detect.evidence)

let test_clean_runs_have_no_recoveries () =
  List.iter
    (fun host ->
      let n = Detect.run_clean (profiles ()) ~mode:Detect.Per_app host in
      if n <> 0 then Alcotest.failf "%s clean run produced %d recoveries" host n)
    [ "top"; "gvim"; "bash"; "apache" ]

let tc name f = Alcotest.test_case name `Quick f
let tc_slow name f = Alcotest.test_case name `Slow f

let suites =
  [
    ( "attacks.corpus",
      [
        tc "corpus shape (13 user + 3 rootkits)" test_corpus_shape;
        tc "signatures resolve" test_signatures_resolve;
        tc "find" test_find;
      ] );
    ( "attacks.detection",
      [
        tc_slow "injectso detected under per-app view" test_injectso_detected_per_app;
        tc_slow "injectso invisible under union view" test_injectso_union_blind_spot;
        tc_slow "kbeast hidden module -> UNKNOWN frames" test_kbeast_unknown_frames;
        tc_slow "sebek detected via module code recovery" test_sebek_module_recovery;
        tc_slow "cymothoa v4 itimer/alarm path" test_cymothoa_v4_itimer_path;
        tc_slow "offline infection fires at entry" test_offline_infection_runs_at_entry;
        tc_slow "clean runs: zero false positives" test_clean_runs_have_no_recoveries;
      ] );
  ]
