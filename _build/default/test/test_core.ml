module Action = Fc_machine.Action
module Process = Fc_machine.Process
module Os = Fc_machine.Os
module Image = Fc_kernel.Image
module Layout = Fc_kernel.Layout
module Hyp = Fc_hypervisor.Hypervisor
module Profiler = Fc_profiler.Profiler
module View_config = Fc_profiler.View_config
module View = Fc_core.View
module Facechange = Fc_core.Facechange
module Recovery_log = Fc_core.Recovery_log
module Range_list = Fc_ranges.Range_list

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let image = lazy (Image.build_exn ())

(* A small app used across tests: proc reads + tty writes, like top. *)
let toplike_script n =
  Action.repeat n
    [
      Action.Syscall "open:proc";
      Action.Syscall "read:proc:stat";
      Action.Syscall "read:proc:pid";
      Action.Syscall "close";
      Action.Syscall "write:tty";
      Action.Compute 2_000;
    ]
  @ [ Action.Exit ]

(* Profile with a longer session than any runtime test uses, so the
   background interrupt mix is fully captured (profiling sessions run
   until coverage saturates, as in the paper). *)
let profile_toplike () =
  Profiler.profile_app (Lazy.force image) ~name:"toplike" (toplike_script 24)

let toplike_config = lazy (profile_toplike ())

(* Boot a runtime guest with FACE-CHANGE enabled. *)
let runtime_guest ?(config = Os.runtime_config) ?opts () =
  let os = Os.create ~config (Lazy.force image) in
  let hyp = Hyp.attach os in
  let fc = Facechange.enable ?opts hyp in
  (os, hyp, fc)

(* ------------------------------------------------------------------ *)
(* Profiler                                                            *)
(* ------------------------------------------------------------------ *)

let test_profile_produces_ranges () =
  let cfg = Lazy.force toplike_config in
  check_bool "nonempty" true (View_config.size cfg > 0);
  let img = Lazy.force image in
  let mem name =
    Range_list.mem cfg.View_config.ranges Fc_ranges.Segment.Base_kernel
      (Image.addr_of_exn img name)
  in
  check_bool "proc read path profiled" true (mem "proc_stat_show");
  check_bool "tty write path profiled" true (mem "tty_write");
  check_bool "syscall gate profiled" true (mem "syscall_call");
  check_bool "scheduler profiled (context switches)" true (mem "schedule");
  check_bool "interrupt path included" true (mem "timer_interrupt");
  check_bool "udp path NOT profiled" false (mem "udp_recvmsg");
  check_bool "poll chain NOT profiled" false (mem "do_sys_poll")

let test_profile_interrupt_ranges_shared () =
  (* background net interrupts execute in the app's view even though the
     app never touches the network *)
  let cfg = Lazy.force toplike_config in
  let img = Lazy.force image in
  check_bool "net rx in view via interrupts" true
    (Range_list.mem cfg.View_config.ranges Fc_ranges.Segment.Base_kernel
       (Image.addr_of_exn img "ip_rcv"))

let test_profile_excludes_kvmclock () =
  let cfg = Lazy.force toplike_config in
  check_bool "kvmclock module never profiled under QEMU" false
    (List.exists
       (fun seg -> seg = Fc_ranges.Segment.Kernel_module "kvmclock")
       (Range_list.segments cfg.View_config.ranges))

let test_view_config_roundtrip () =
  let cfg = Lazy.force toplike_config in
  match View_config.of_string (View_config.to_string cfg) with
  | Error e -> Alcotest.fail e
  | Ok cfg' ->
      Alcotest.(check string) "app" cfg.View_config.app cfg'.View_config.app;
      check_bool "ranges equal" true
        (Range_list.equal cfg.View_config.ranges cfg'.View_config.ranges)

let test_view_config_save_load () =
  let cfg = Lazy.force toplike_config in
  let path = Filename.temp_file "fc_view" ".conf" in
  View_config.save cfg path;
  (match View_config.load path with
  | Error e -> Alcotest.fail e
  | Ok cfg' -> check_int "size preserved" (View_config.size cfg) (View_config.size cfg'));
  Sys.remove path

let test_view_config_rejects_garbage () =
  (match View_config.of_string "nonsense here\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected parse error");
  match View_config.of_string "base 0x0 0x10\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected missing-app error"

(* ------------------------------------------------------------------ *)
(* View materialization                                                *)
(* ------------------------------------------------------------------ *)

let test_view_ud2_fill_and_load () =
  let os = Os.create (Lazy.force image) in
  let hyp = Hyp.attach os in
  let img = Lazy.force image in
  let f = Image.addr_of_exn img "sys_getpid" in
  let cfg =
    View_config.make ~app:"mini"
      (Range_list.add_range Range_list.empty Fc_ranges.Segment.Base_kernel
         ~lo:(f + 4) ~hi:(f + 8))
  in
  let v = View.build ~hyp ~index:1 cfg in
  (* whole containing function loaded although only 4 bytes profiled *)
  check_bool "function start loaded" true (View.read_code v ~gva:f = Some 0x55);
  (* an unprofiled function elsewhere is UD2 *)
  let g = Image.addr_of_exn img "udp_recvmsg" in
  check_bool "udp is ud2 (even)" true (View.read_code v ~gva:g = Some 0x0f);
  check_bool "udp is ud2 (odd)" true (View.read_code v ~gva:(g + 1) = Some 0x0b);
  check_bool "covers text" true (View.covers v ~gva:g);
  check_bool "does not cover data" false (View.covers v ~gva:Layout.data_base);
  View.destroy v

let test_view_raw_load_ablation () =
  let os = Os.create (Lazy.force image) in
  let hyp = Hyp.attach os in
  let img = Lazy.force image in
  let f = Image.addr_of_exn img "sys_getpid" in
  let cfg =
    View_config.make ~app:"mini"
      (Range_list.add_range Range_list.empty Fc_ranges.Segment.Base_kernel
         ~lo:(f + 4) ~hi:(f + 8))
  in
  let v = View.build ~hyp ~whole_function_load:false ~index:1 cfg in
  check_bool "function start NOT loaded" true (View.read_code v ~gva:f = Some 0x0f);
  check_bool "profiled bytes loaded" true
    (View.read_code v ~gva:(f + 4) <> Some 0x0f || View.read_code v ~gva:(f + 5) <> Some 0x0b);
  View.destroy v

let test_view_module_pages_ud2 () =
  let os = Os.create (Lazy.force image) in
  let hyp = Hyp.attach os in
  let v = View.build ~hyp ~index:1 (View_config.make ~app:"mini" Range_list.empty) in
  let kvm = Os.resolve_exn os "kvm_clock_get_cycles" in
  check_bool "module code ud2 in view" true (View.read_code v ~gva:kvm = Some 0x0f);
  check_bool "module page covered" true (View.covers v ~gva:kvm);
  View.destroy v

let test_view_destroy_frees_frames () =
  let os = Os.create (Lazy.force image) in
  let hyp = Hyp.attach os in
  let before = Fc_mem.Phys_mem.live_frames (Os.phys os) in
  let v = View.build ~hyp ~index:1 (View_config.make ~app:"mini" Range_list.empty) in
  check_bool "allocated" true (Fc_mem.Phys_mem.live_frames (Os.phys os) > before);
  View.destroy v;
  check_int "freed" before (Fc_mem.Phys_mem.live_frames (Os.phys os))

let test_view_module_relative_load () =
  (* a config naming module-relative ranges loads code at the module's
     current base *)
  let os = Os.create (Lazy.force image) in
  let hyp = Hyp.attach os in
  let base =
    match List.find_opt (fun (n, _, _) -> n = "kvmclock") (Hyp.module_list hyp) with
    | Some (_, b, _) -> b
    | None -> Alcotest.fail "kvmclock not visible"
  in
  let cfg =
    View_config.make ~app:"mini"
      (Range_list.add_range Range_list.empty
         (Fc_ranges.Segment.Kernel_module "kvmclock") ~lo:0 ~hi:8)
  in
  let v = View.build ~hyp ~index:1 cfg in
  check_bool "module function loaded at runtime base" true
    (View.read_code v ~gva:base = Some 0x55);
  View.destroy v

(* ------------------------------------------------------------------ *)
(* Runtime: robustness + benign recovery                               *)
(* ------------------------------------------------------------------ *)

let test_runtime_robustness_kvmclock_only () =
  (* Same workload as profiling, under the runtime (KVM) environment:
     the app must run to completion, and the only recoveries are the
     para-virtual clock chain the paper describes (§III-B3 case i). *)
  let os, _hyp, fc = runtime_guest () in
  let cfg = Lazy.force toplike_config in
  let (_ : int) = Facechange.load_view fc cfg in
  let p = Os.spawn os ~name:"toplike" (toplike_script 6) in
  Os.run os;
  check_bool "completed" true (Process.is_exited p);
  let names = Recovery_log.recovered_names (Facechange.log fc) in
  check_bool "some benign recovery happened" true (names <> []);
  List.iter
    (fun n ->
      if
        not
          (List.mem n
             [ "kvm_clock_get_cycles"; "kvm_clock_read"; "pvclock_clocksource_read"; "native_read_tsc" ])
      then Alcotest.failf "unexpected recovery: %s" n)
    names;
  (* chronological order of first occurrences matches the paper *)
  (match names with
  | "kvm_clock_get_cycles" :: "kvm_clock_read" :: "pvclock_clocksource_read"
    :: "native_read_tsc" :: _ -> ()
  | _ -> Alcotest.failf "unexpected chain: %s" (String.concat " -> " names));
  ()

let test_interrupt_context_classification () =
  (* A compute-only process can only reach the kvmclock chain through
     timer interrupts, so its recoveries must be classified as interrupt
     context — the paper's "inspect the current call stack to determine
     whether the current execution is in interrupt context". *)
  let os, _hyp, fc = runtime_guest () in
  let (_ : int) = Facechange.load_view fc (Lazy.force toplike_config) in
  let p =
    Os.spawn os ~name:"toplike" (Action.repeat 20 [ Action.Compute 20_000 ] @ [ Action.Exit ])
  in
  Os.run os;
  check_bool "completed" true (Process.is_exited p);
  let entries = Recovery_log.entries (Facechange.log fc) in
  check_bool "kvmclock recovered" true (entries <> []);
  List.iter
    (fun e ->
      if not e.Recovery_log.interrupt_context then
        Alcotest.failf "recovery of %s not flagged interrupt-context"
          (match e.Recovery_log.recovered with (_, _, s) :: _ -> s | [] -> "?"))
    entries

let test_runtime_no_recovery_same_clocksource () =
  (* With the profiling clocksource at runtime, the same workload causes
     zero recoveries: the robustness goal, exactly. *)
  let os, _hyp, fc = runtime_guest ~config:Os.profiling_config () in
  let cfg = Lazy.force toplike_config in
  let (_ : int) = Facechange.load_view fc cfg in
  let p = Os.spawn os ~name:"toplike" (toplike_script 6) in
  Os.run os;
  check_bool "completed" true (Process.is_exited p);
  check_int "no recoveries" 0 (Recovery_log.count (Facechange.log fc))

let test_runtime_detects_out_of_view_syscall () =
  (* The strictness goal: a UDP server payload inside a toplike process
     trips recovery with a meaningful backtrace (Fig. 4's shape). *)
  let os, _hyp, fc = runtime_guest ~config:Os.profiling_config () in
  let (_ : int) = Facechange.load_view fc (Lazy.force toplike_config) in
  let payload =
    [
      Action.Syscall "socket:udp";
      Action.Syscall "bind:udp";
      Action.Syscall "recvfrom:udp";
    ]
  in
  let p = Os.spawn os ~name:"toplike" (toplike_script 2 |> fun s -> payload @ s) in
  Os.run os;
  check_bool "completed (recovery is silent)" true (Process.is_exited p);
  let names = Recovery_log.recovered_names (Facechange.log fc) in
  List.iter
    (fun expected ->
      if not (List.mem expected names) then Alcotest.failf "missing recovery of %s" expected)
    [ "inet_create"; "sys_bind"; "inet_bind"; "udp_v4_get_port"; "udp_recvmsg" ];
  (* backtraces reach the syscall gate *)
  let some_bt =
    List.exists
      (fun e ->
        List.exists
          (fun f ->
            match String.index_opt f.Recovery_log.rendered '<' with
            | Some _ ->
                let r = f.Recovery_log.rendered in
                let has sub =
                  let n = String.length sub in
                  let m = String.length r in
                  let rec go i = i + n <= m && (String.sub r i n = sub || go (i + 1)) in
                  go 0
                in
                has "syscall_call"
            | None -> false)
          e.Recovery_log.backtrace)
      (Recovery_log.entries (Facechange.log fc))
  in
  check_bool "some backtrace reaches syscall_call" true some_bt

let test_union_view_blind_spot () =
  (* Under the union view (toplike ∪ a network app), the UDP payload goes
     entirely undetected — the paper's system-wide minimization blind
     spot. *)
  let apachelike =
    Profiler.profile_app (Lazy.force image) ~name:"apachelike"
      (Action.repeat 4
         [
           Action.Syscall "socket:udp";
           Action.Syscall "bind:udp";
           Action.Syscall "recvfrom:udp";
           Action.Syscall "sendto:udp";
         ]
      @ [ Action.Exit ])
  in
  let union =
    View_config.union ~app:"toplike" [ Lazy.force toplike_config; apachelike ]
  in
  let os, _hyp, fc = runtime_guest ~config:Os.profiling_config () in
  let (_ : int) = Facechange.load_view fc union in
  let payload =
    [ Action.Syscall "socket:udp"; Action.Syscall "bind:udp"; Action.Syscall "recvfrom:udp" ]
  in
  let p = Os.spawn os ~name:"toplike" (payload @ toplike_script 2) in
  Os.run os;
  check_bool "completed" true (Process.is_exited p);
  check_int "attack invisible under union view" 0 (Recovery_log.count (Facechange.log fc))

(* ------------------------------------------------------------------ *)
(* Fig. 3: cross-view recovery, lazy vs instant                        *)
(* ------------------------------------------------------------------ *)

let cross_view_scenario ?opts () =
  (* wake_delay 3 parks the blocked poller long enough that the scheduler
     switches to the idle task and back — a real context switch, which is
     what installs the hot-plugged view while the process sits mid-kernel *)
  let os, _hyp, fc =
    runtime_guest ~config:{ Os.profiling_config with wake_delay = 3 } ?opts ()
  in
  let script =
    [
      Action.Syscall "getpid";
      Action.Syscall "poll:pipe" (* blocks inside pipe_poll *);
      Action.Syscall "getpid";
      Action.Exit;
    ]
  in
  let p = Os.spawn os ~name:"toplike" script in
  (* hot-plug the view while the process is blocked mid-kernel *)
  Os.schedule_at_round os 2 (fun _ ->
      let (_ : int) = Facechange.load_view fc (Lazy.force toplike_config) in
      ());
  (os, fc, p)

let test_cross_view_lazy_and_instant () =
  let os, fc, p = cross_view_scenario () in
  Os.run os;
  check_bool "completed" true (Process.is_exited p);
  let entries = Recovery_log.entries (Facechange.log fc) in
  let pipe_entry =
    List.find_opt
      (fun e ->
        List.exists (fun (_, _, s) ->
            let has sub =
              let n = String.length sub and m = String.length s in
              let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
              go 0
            in
            has "pipe_poll")
          e.Recovery_log.recovered)
      entries
  in
  (match pipe_entry with
  | None -> Alcotest.fail "no pipe_poll recovery"
  | Some e ->
      (* sys_poll's return address is odd: instant recovery *)
      check_bool "sys_poll instantly recovered" true
        (List.exists
           (fun (_, _, s) ->
             let has sub =
               let n = String.length sub and m = String.length s in
               let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
               go 0
             in
             has "sys_poll" && not (has "do_sys_poll"))
           e.Recovery_log.instant);
      (* do_sys_poll's return address is even: NOT instant here *)
      check_bool "do_sys_poll not instant" false
        (List.exists
           (fun (_, _, s) ->
             let has sub =
               let n = String.length sub and m = String.length s in
               let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
               go 0
             in
             has "do_sys_poll")
           e.Recovery_log.instant));
  (* do_sys_poll later recovered lazily (its ud2 traps on return) *)
  check_bool "do_sys_poll recovered lazily" true
    (List.mem "do_sys_poll" (Recovery_log.recovered_names (Facechange.log fc)))

let test_cross_view_without_instant_recovery_misbehaves () =
  let opts = { Facechange.default_opts with instant_recovery = false } in
  let os, fc, _p = cross_view_scenario ~opts () in
  (* Without instant recovery the odd return into sys_poll misdecodes the
     UD2 fill as valid instructions and execution goes off the rails. *)
  match Os.run os with
  | () ->
      (* If it survived, it must have produced anomalous extra recoveries
         at addresses that are not real function starts. *)
      let names = Recovery_log.recovered_names (Facechange.log fc) in
      check_bool "execution misbehaved without instant recovery" true
        (List.length names > 3)
  | exception Os.Guest_panic _ -> ()

(* ------------------------------------------------------------------ *)
(* Switching mechanics                                                 *)
(* ------------------------------------------------------------------ *)

let test_switch_stats_and_same_view_opt () =
  let os, _hyp, fc = runtime_guest ~config:Os.profiling_config () in
  let (_ : int) = Facechange.load_view fc (Lazy.force toplike_config) in
  let mk () = Os.spawn os ~name:"toplike" (toplike_script 3) in
  let _a = mk () and _b = mk () in
  Os.run os;
  check_bool "switches happened" true (Facechange.switches fc > 0);
  check_bool "same-view optimization hit (both procs share the view)" true
    (Facechange.switch_skips fc > 0)

let test_deferred_switching () =
  let os, _hyp, fc = runtime_guest ~config:Os.profiling_config () in
  let (_ : int) = Facechange.load_view fc (Lazy.force toplike_config) in
  let _a = Os.spawn os ~name:"toplike" (toplike_script 3) in
  let _b = Os.spawn os ~name:"other" (toplike_script 3) in
  Os.run os;
  check_bool "custom-view switches deferred to resume-userspace" true
    (Facechange.deferred_switches fc > 0)

let test_switch_at_context_switch_ablation () =
  let opts = { Facechange.default_opts with switch_at_resume = false } in
  let os, _hyp, fc = runtime_guest ~config:Os.profiling_config ~opts () in
  let (_ : int) = Facechange.load_view fc (Lazy.force toplike_config) in
  let p = Os.spawn os ~name:"toplike" (toplike_script 3) in
  Os.run os;
  check_bool "completed" true (Process.is_exited p);
  check_int "nothing deferred" 0 (Facechange.deferred_switches fc)

let test_unload_and_disable () =
  let os, _hyp, fc = runtime_guest ~config:Os.profiling_config () in
  let phys_before = Fc_mem.Phys_mem.live_frames (Os.phys os) in
  let idx = Facechange.load_view fc (Lazy.force toplike_config) in
  check_int "bound" idx (Facechange.selector fc ~comm:"toplike");
  Facechange.unload_view fc idx;
  check_int "fallback to full" Facechange.full_view_index
    (Facechange.selector fc ~comm:"toplike");
  check_int "frames freed" phys_before (Fc_mem.Phys_mem.live_frames (Os.phys os));
  (* reload, then disable entirely; the guest keeps running fine *)
  let (_ : int) = Facechange.load_view fc (Lazy.force toplike_config) in
  Facechange.disable fc;
  let p = Os.spawn os ~name:"toplike" (toplike_script 2) in
  Os.run os;
  check_bool "runs after disable" true (Process.is_exited p);
  check_int "no recovery after disable" 0 (Recovery_log.count (Facechange.log fc))

let test_full_view_processes_untouched () =
  (* a process with no view binding runs under the full view with zero
     recoveries even while another process is enforced *)
  let os, _hyp, fc = runtime_guest ~config:Os.profiling_config () in
  let (_ : int) = Facechange.load_view fc (Lazy.force toplike_config) in
  let free =
    Os.spawn os ~name:"freebird"
      [ Action.Syscall "socket:udp"; Action.Syscall "bind:udp"; Action.Exit ]
  in
  let bound = Os.spawn os ~name:"toplike" (toplike_script 2) in
  Os.run os;
  check_bool "both completed" true (Process.is_exited free && Process.is_exited bound);
  let bad =
    List.exists
      (fun e -> e.Recovery_log.comm = "freebird")
      (Recovery_log.entries (Facechange.log fc))
  in
  check_bool "no recovery attributed to the unbound process" false bad

(* ------------------------------------------------------------------ *)
(* Report + log persistence                                            *)
(* ------------------------------------------------------------------ *)

let attacked_log () =
  let os, _hyp, fc = runtime_guest () in
  let (_ : int) = Facechange.load_view fc (Lazy.force toplike_config) in
  let payload = [ Action.Syscall "socket:udp"; Action.Syscall "bind:udp" ] in
  let _ = Os.spawn os ~name:"toplike" (payload @ toplike_script 3) in
  Os.run os;
  Facechange.log fc

let test_report_classification () =
  let log = attacked_log () in
  let s = Fc_core.Report.summarize log in
  check_int "total consistent" s.Fc_core.Report.total (Recovery_log.count log);
  check_bool "benign kvmclock recoveries flagged" true
    (s.Fc_core.Report.benign_interrupt >= 1);
  check_bool "payload recoveries are unprofiled paths" true
    (s.Fc_core.Report.unprofiled >= 2);
  check_int "no hidden code" 0 s.Fc_core.Report.hidden_code;
  (* origins: the payload recoveries came through sys_socket / sys_bind *)
  check_bool "sys_bind origin" true
    (List.mem_assoc "sys_bind" s.Fc_core.Report.by_origin);
  check_bool "per-process attribution" true
    (List.mem_assoc "toplike" s.Fc_core.Report.by_process);
  let rendered = Fc_core.Report.render log in
  check_bool "render mentions triage" true
    (let n = String.length "triage" and m = String.length rendered in
     let rec go i = i + n <= m && (String.sub rendered i n = "triage" || go (i + 1)) in
     go 0)

let test_report_hidden_code () =
  (* a KBeast-style hidden module yields Hidden_code classification *)
  let entry =
    {
      Recovery_log.cycle = 0; pid = 1; comm = "bash"; view_app = "bash";
      fault_addr = 0xc0100000;
      recovered = [ (0xc0100000, 0xc0100040, "0xc0100000 <strnlen+0x0>") ];
      instant = []; backtrace = []; interrupt_context = false;
      unknown_frames = true;
    }
  in
  check_bool "classified as hidden code" true
    (Fc_core.Report.classify entry = Fc_core.Report.Hidden_code)

let test_log_roundtrip () =
  let log = attacked_log () in
  match Recovery_log.of_string (Recovery_log.to_string log) with
  | Error e -> Alcotest.fail e
  | Ok log' ->
      check_int "count" (Recovery_log.count log) (Recovery_log.count log');
      List.iter2
        (fun (a : Recovery_log.entry) (b : Recovery_log.entry) ->
          check_int "pid" a.Recovery_log.pid b.Recovery_log.pid;
          Alcotest.(check string) "comm" a.Recovery_log.comm b.Recovery_log.comm;
          check_int "fault" a.Recovery_log.fault_addr b.Recovery_log.fault_addr;
          check_bool "irq flag" a.Recovery_log.interrupt_context
            b.Recovery_log.interrupt_context;
          check_int "recovered" (List.length a.Recovery_log.recovered)
            (List.length b.Recovery_log.recovered);
          List.iter2
            (fun (fa : Recovery_log.frame) (fb : Recovery_log.frame) ->
              check_int "frame addr" fa.Recovery_log.addr fb.Recovery_log.addr;
              Alcotest.(check string) "frame sym" fa.Recovery_log.rendered
                fb.Recovery_log.rendered;
              Alcotest.(check (list int)) "frame bytes" fa.Recovery_log.view_bytes
                fb.Recovery_log.view_bytes)
            a.Recovery_log.backtrace b.Recovery_log.backtrace)
        (Recovery_log.entries log) (Recovery_log.entries log')

let test_log_save_load () =
  let log = attacked_log () in
  let path = Filename.temp_file "fc_log" ".txt" in
  Recovery_log.save log path;
  (match Recovery_log.load path with
  | Error e -> Alcotest.fail e
  | Ok log' -> check_int "count" (Recovery_log.count log) (Recovery_log.count log'));
  Sys.remove path

let test_log_parse_errors () =
  (match Recovery_log.of_string "garbage line\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected parse error");
  match Recovery_log.of_string "rec 0x1 0x2 foo\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected rec-outside-entry error"

(* ------------------------------------------------------------------ *)
(* Cold error paths and the whole-function relaxation                   *)
(* ------------------------------------------------------------------ *)

let test_cold_paths_not_profiled () =
  (* proc_file_read carries a cold block; the profile of a workload that
     reads procfs must have a hole there (raw executed spans) *)
  let cfg = Lazy.force toplike_config in
  let img = Lazy.force image in
  let p =
    List.find
      (fun (p : Fc_isa.Asm.placed) -> p.Fc_isa.Asm.pname = "proc_file_read")
      (Image.functions img)
  in
  let covered =
    Range_list.covered_spans cfg.View_config.ranges Fc_ranges.Segment.Base_kernel
      (Fc_ranges.Span.make ~lo:p.Fc_isa.Asm.addr
         ~hi:(p.Fc_isa.Asm.addr + p.Fc_isa.Asm.size))
  in
  (* executed but with the cold block skipped: more than one sub-span *)
  check_bool "function partially profiled" true (List.length covered >= 2)

let error_path_scenario ~whole_function_load () =
  let opts = { Facechange.default_opts with whole_function_load } in
  let os, _hyp, fc = runtime_guest ~config:Os.profiling_config ~opts () in
  let (_ : int) = Facechange.load_view fc (Lazy.force toplike_config) in
  Os.set_branch_policy os (Some (fun _ -> false)) (* take every error path *);
  let p = Os.spawn os ~name:"toplike" (toplike_script 2) in
  (match Os.run ~max_rounds:10_000 os with
  | () -> ()
  | exception Os.Guest_panic _ -> ());
  (fc, Process.is_exited p)

let test_whole_function_load_absorbs_error_paths () =
  let fc, ok = error_path_scenario ~whole_function_load:true () in
  check_bool "completed" true ok;
  check_int "no recovery: cold code loaded with its function" 0
    (Facechange.recoveries fc)

let test_raw_spans_trap_on_error_paths () =
  let fc, _ok = error_path_scenario ~whole_function_load:false () in
  check_bool "error paths hit UD2 holes inside profiled functions" true
    (Facechange.recoveries fc > 0)

(* ------------------------------------------------------------------ *)
(* Integrity scanner                                                    *)
(* ------------------------------------------------------------------ *)

let rk_fns name =
  [ Fc_kernel.Kfunc.v ~size:96 ~sub:name (name ^ "_hook") [ Fc_kernel.Kfunc.C "strnlen" ];
    Fc_kernel.Kfunc.v ~size:64 ~sub:name (name ^ "_log") [] ]

let test_integrity_clean () =
  let os = Os.create (Lazy.force image) in
  let hyp = Hyp.attach os in
  check_int "clean guest" 0 (List.length (Fc_core.Integrity.scan_module_area hyp))

let test_integrity_visible_module_claimed () =
  let os = Os.create (Lazy.force image) in
  let hyp = Hyp.attach os in
  let (_ : Os.module_info) = Os.load_module_fns os ~name:"rk1" (rk_fns "rk1") in
  check_int "visible module claimed" 0
    (List.length (Fc_core.Integrity.scan_module_area hyp))

let test_integrity_hidden_module_found () =
  let os = Os.create (Lazy.force image) in
  let hyp = Hyp.attach os in
  let info = Os.load_module_fns os ~name:"rk1" (rk_fns "rk1") in
  Os.hide_module os "rk1";
  match Fc_core.Integrity.scan_module_area hyp with
  | [ f ] ->
      check_int "both functions found" 2 f.Fc_core.Integrity.functions;
      check_int "at the hidden base" info.Os.unit_image.Fc_isa.Asm.base
        f.Fc_core.Integrity.region_lo
  | l -> Alcotest.failf "expected one finding, got %d" (List.length l)

let test_integrity_two_hidden_modules () =
  let os = Os.create (Lazy.force image) in
  let hyp = Hyp.attach os in
  let (_ : Os.module_info) = Os.load_module_fns os ~name:"rk1" (rk_fns "rk1") in
  let (_ : Os.module_info) = Os.load_module_fns os ~name:"rk2" (rk_fns "rk2") in
  Os.hide_module os "rk1";
  Os.hide_module os "rk2";
  check_int "two regions" 2 (List.length (Fc_core.Integrity.scan_module_area hyp))

let tc name f = Alcotest.test_case name `Quick f
let tc_slow name f = Alcotest.test_case name `Slow f

let suites =
  [
    ( "core.profiler",
      [
        tc "profiling records the app's kernel paths" test_profile_produces_ranges;
        tc "interrupt code shared into the view" test_profile_interrupt_ranges_shared;
        tc "kvmclock absent from profiles" test_profile_excludes_kvmclock;
        tc "view config to_string/of_string" test_view_config_roundtrip;
        tc "view config save/load" test_view_config_save_load;
        tc "view config parse errors" test_view_config_rejects_garbage;
      ] );
    ( "core.view",
      [
        tc "ud2 fill + whole-function load" test_view_ud2_fill_and_load;
        tc "raw-span load ablation" test_view_raw_load_ablation;
        tc "module pages ud2-filled" test_view_module_pages_ud2;
        tc "destroy frees frames" test_view_destroy_frees_frames;
        tc "module-relative ranges relocate" test_view_module_relative_load;
      ] );
    ( "core.runtime",
      [
        tc_slow "benign kvmclock recovery chain" test_runtime_robustness_kvmclock_only;
        tc_slow "interrupt-context classification" test_interrupt_context_classification;
        tc_slow "no recovery in matching environment" test_runtime_no_recovery_same_clocksource;
        tc_slow "out-of-view syscalls detected (Fig.4 shape)" test_runtime_detects_out_of_view_syscall;
        tc_slow "union view blind spot" test_union_view_blind_spot;
      ] );
    ( "core.cross_view",
      [
        tc_slow "lazy vs instant recovery (Fig.3)" test_cross_view_lazy_and_instant;
        tc_slow "instant recovery ablation misbehaves" test_cross_view_without_instant_recovery_misbehaves;
      ] );
    ( "core.report",
      [
        tc_slow "classification + summary" test_report_classification;
        tc "hidden code classification" test_report_hidden_code;
        tc_slow "log to_string/of_string roundtrip" test_log_roundtrip;
        tc_slow "log save/load" test_log_save_load;
        tc "log parse errors" test_log_parse_errors;
      ] );
    ( "core.cold_paths",
      [
        tc_slow "cold blocks excluded from profiles" test_cold_paths_not_profiled;
        tc_slow "whole-function load absorbs error paths" test_whole_function_load_absorbs_error_paths;
        tc_slow "raw spans trap on error paths" test_raw_spans_trap_on_error_paths;
      ] );
    ( "core.integrity",
      [
        tc "clean guest: nothing unaccounted" test_integrity_clean;
        tc "visible modules are claimed" test_integrity_visible_module_claimed;
        tc "hidden module located" test_integrity_hidden_module_found;
        tc "two hidden modules, two regions" test_integrity_two_hidden_modules;
      ] );
    ( "core.switching",
      [
        tc_slow "switch stats + same-view optimization" test_switch_stats_and_same_view_opt;
        tc_slow "deferred switching at resume-userspace" test_deferred_switching;
        tc_slow "switch-at-context-switch ablation" test_switch_at_context_switch_ablation;
        tc_slow "unload and disable" test_unload_and_disable;
        tc_slow "unbound processes unaffected" test_full_view_processes_untouched;
      ] );
  ]
