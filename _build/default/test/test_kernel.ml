module Catalog = Fc_kernel.Catalog
module Kfunc = Fc_kernel.Kfunc
module Image = Fc_kernel.Image
module Layout = Fc_kernel.Layout
module Syscalls = Fc_kernel.Syscalls
module Irq_paths = Fc_kernel.Irq_paths
module Symbols = Fc_kernel.Symbols
module Asm = Fc_isa.Asm

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let image = lazy (Image.build_exn ())

(* ------------------------------------------------------------------ *)
(* Catalog consistency                                                 *)
(* ------------------------------------------------------------------ *)

let test_no_duplicate_names () =
  let seen = Hashtbl.create 512 in
  List.iter
    (fun (fn : Kfunc.t) ->
      if Hashtbl.mem seen fn.name then Alcotest.failf "duplicate %s" fn.name;
      Hashtbl.add seen fn.name ())
    Catalog.all_functions

let test_all_callees_exist () =
  List.iter
    (fun (fn : Kfunc.t) ->
      List.iter
        (fun callee ->
          if Catalog.find callee = None then
            Alcotest.failf "%s calls unknown %s" fn.name callee)
        (Kfunc.callees fn))
    Catalog.all_functions

let test_callgraph_acyclic () =
  (* DFS with colors over direct calls; indirect dispatch is excluded by
     construction (a D site cannot recurse into its own path because the
     dispatch queues in Syscalls/Irq_paths are finite). *)
  let color = Hashtbl.create 512 in
  let rec visit name =
    match Hashtbl.find_opt color name with
    | Some `Done -> ()
    | Some `Active -> Alcotest.failf "call cycle through %s" name
    | None -> (
        Hashtbl.replace color name `Active;
        (match Catalog.find name with
        | Some fn -> List.iter visit (Kfunc.callees fn)
        | None -> ());
        Hashtbl.replace color name `Done)
  in
  List.iter (fun (fn : Kfunc.t) -> visit fn.name) Catalog.all_functions

let test_module_calls_stay_resolvable () =
  (* Module functions may call base functions or functions within the same
     module, never functions of another module. *)
  let base_names = Hashtbl.create 512 in
  List.iter
    (fun (fn : Kfunc.t) -> Hashtbl.add base_names fn.name ())
    Catalog.base_functions;
  List.iter
    (fun (mname, fns) ->
      let local = Hashtbl.create 64 in
      List.iter (fun (fn : Kfunc.t) -> Hashtbl.add local fn.name ()) fns;
      List.iter
        (fun (fn : Kfunc.t) ->
          List.iter
            (fun callee ->
              if not (Hashtbl.mem base_names callee || Hashtbl.mem local callee)
              then Alcotest.failf "module %s: %s calls foreign %s" mname fn.name callee)
            (Kfunc.callees fn))
        fns)
    Catalog.module_functions

let test_paper_named_functions_present () =
  (* Functions named in the paper's figures must exist. *)
  List.iter
    (fun n ->
      if Catalog.find n = None then Alcotest.failf "missing paper function %s" n)
    [
      "sys_poll"; "do_sys_poll"; "do_poll"; "pipe_poll"; "syscall_call";
      "inet_create"; "sys_bind"; "security_socket_bind"; "apparmor_socket_bind";
      "inet_bind"; "inet_addr_type"; "lock_sock_nested"; "udp_v4_get_port";
      "udp_lib_get_port"; "udp_lib_lport_inuse"; "release_sock";
      "sys_recvfrom"; "sock_recvmsg"; "security_socket_recvmsg";
      "apparmor_socket_recvmsg"; "sock_common_recvmsg"; "udp_recvmsg";
      "__skb_recv_datagram"; "prepare_to_wait_exclusive";
      "strnlen"; "vsnprintf"; "snprintf"; "filp_open";
      "__jbd2_log_start_commit"; "__ext4_journal_stop"; "ext4_dirty_inode";
      "__mark_inode_dirty"; "file_update_time"; "__generic_file_aio_write";
      "generic_file_aio_write"; "ext4_file_write"; "do_sync_write";
      "kvm_clock_get_cycles"; "kvm_clock_read"; "pvclock_clocksource_read";
      "native_read_tsc"; "sys_fork"; "sys_clone"; "sys_setitimer";
      "__switch_to"; "resume_userspace";
    ]

let test_tree_shape () =
  let fns = Catalog.tree ~sub:"x" ~prefix:"t" ~n:7 ~size:100 in
  check_int "count" 7 (List.length fns);
  (* root reaches all: walk *)
  let by_name = Hashtbl.create 8 in
  List.iter (fun (fn : Kfunc.t) -> Hashtbl.replace by_name fn.name fn) fns;
  let visited = Hashtbl.create 8 in
  let rec walk n =
    if not (Hashtbl.mem visited n) then begin
      Hashtbl.add visited n ();
      List.iter walk (Kfunc.callees (Hashtbl.find by_name n))
    end
  in
  walk "t_000";
  check_int "all reached" 7 (Hashtbl.length visited)

(* ------------------------------------------------------------------ *)
(* Image                                                               *)
(* ------------------------------------------------------------------ *)

let test_image_builds () =
  let img = Lazy.force image in
  check_bool "nonempty" true (Image.text_end img > Image.text_base img);
  check_bool "fits region" true (Image.text_end img <= Layout.text_limit);
  check_int "function count"
    (List.length Catalog.base_functions)
    (List.length (Image.functions img))

let test_image_no_false_prologues () =
  let img = Lazy.force image in
  match Image.false_prologues img with
  | [] -> ()
  | l -> Alcotest.failf "%d false prologues, first at 0x%x" (List.length l) (List.hd l)

let test_image_lookup () =
  let img = Lazy.force image in
  let a = Image.addr_of_exn img "sys_poll" in
  check_int "aligned" 0 (a mod 16);
  (match Image.placed_at img (a + 5) with
  | Some p -> check_bool "containing" true (p.Asm.pname = "sys_poll")
  | None -> Alcotest.fail "placed_at failed");
  check_bool "unknown" true (Image.addr_of img "nosuch" = None);
  check_bool "gap address" true (Image.placed_at img (Image.text_base img - 1) = None)

let test_fig3_parity_layout () =
  (* sys_poll's call to do_sys_poll returns to an odd address; do_sys_poll's
     call to do_poll returns to an even address (Fig. 3). *)
  let img = Lazy.force image in
  let read a = Image.read_byte img a in
  let ret_addr_of_call_to caller target =
    let p =
      List.find (fun (p : Asm.placed) -> p.Asm.pname = caller) (Image.functions img)
    in
    let target_addr = Image.addr_of_exn img target in
    let rec go a =
      if a >= p.Asm.addr + p.Asm.size then Alcotest.failf "no call in %s" caller
      else
        match Fc_isa.Insn.decode ~read a with
        | Ok (Fc_isa.Insn.Call_rel d, len) when a + len + d = target_addr -> a + len
        | Ok (_, len) -> go (a + len)
        | Error _ -> Alcotest.failf "decode error in %s" caller
    in
    go p.Asm.addr
  in
  check_int "sys_poll ret odd" 1 (ret_addr_of_call_to "sys_poll" "do_sys_poll" land 1);
  check_int "do_sys_poll ret even" 0 (ret_addr_of_call_to "do_sys_poll" "do_poll" land 1)

let test_module_assembly () =
  let img = Lazy.force image in
  match Image.assemble_module img ~name:"kvmclock" ~base:Layout.module_area_base with
  | Error e -> Alcotest.fail e
  | Ok u ->
      check_int "base" Layout.module_area_base u.Asm.base;
      check_bool "has kvm_clock_read" true (Asm.find_function u "kvm_clock_read" <> None);
      (* cross-unit call resolves into base kernel *)
      let kcr = Option.get (Asm.find_function u "kvm_clock_read") in
      let read a =
        let off = a - u.Asm.base in
        if off >= 0 && off < Bytes.length u.Asm.code then
          Some (Bytes.get_uint8 u.Asm.code off)
        else None
      in
      let rec find_call a =
        match Fc_isa.Insn.decode ~read a with
        | Ok (Fc_isa.Insn.Call_rel d, len) -> a + len + d
        | Ok (_, len) -> find_call (a + len)
        | Error _ -> Alcotest.fail "decode error"
      in
      check_int "calls pvclock in base"
        (Image.addr_of_exn img "pvclock_clocksource_read")
        (find_call kcr.Asm.addr)

let test_module_relocation_identical_structure () =
  let img = Lazy.force image in
  let u1 =
    Result.get_ok (Image.assemble_module img ~name:"af_packet" ~base:Layout.module_area_base)
  in
  let u2 =
    Result.get_ok
      (Image.assemble_module img ~name:"af_packet" ~base:(Layout.module_area_base + 0x10000))
  in
  List.iter2
    (fun (p1 : Asm.placed) (p2 : Asm.placed) ->
      check_bool "same name" true (p1.Asm.pname = p2.Asm.pname);
      check_int "same relative offset" (p1.Asm.addr - u1.Asm.base) (p2.Asm.addr - u2.Asm.base);
      check_int "same size" p1.Asm.size p2.Asm.size)
    u1.Asm.functions u2.Asm.functions

let test_unknown_module () =
  let img = Lazy.force image in
  match Image.assemble_module img ~name:"nosuch" ~base:Layout.module_area_base with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error"

(* ------------------------------------------------------------------ *)
(* Syscalls / Irq_paths                                                *)
(* ------------------------------------------------------------------ *)

let test_syscall_entries_exist () =
  List.iter
    (fun (s : Syscalls.t) ->
      if Catalog.find s.entry = None then
        Alcotest.failf "%s: unknown entry %s" s.sc_name s.entry;
      List.iter
        (fun d ->
          if d <> "@clocksource" && Catalog.find d = None then
            Alcotest.failf "%s: unknown dispatch %s" s.sc_name d)
        s.dispatch)
    Syscalls.all

let test_syscall_find () =
  check_bool "found" true (Syscalls.find "read:ext4" <> None);
  check_bool "missing" true (Syscalls.find "nosuch" = None);
  match Syscalls.find_exn "poll:pipe" with
  | { entry = "sys_poll"; dispatch = [ "pipe_poll" ]; _ } -> ()
  | _ -> Alcotest.fail "unexpected poll:pipe definition"

let test_syscall_names_unique () =
  let seen = Hashtbl.create 128 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen n then Alcotest.failf "duplicate syscall %s" n;
      Hashtbl.add seen n ())
    Syscalls.names

let test_irq_dispatch_targets_exist () =
  List.iter
    (fun src ->
      List.iter
        (fun d ->
          if Catalog.find d = None then
            Alcotest.failf "%s: unknown dispatch %s" (Irq_paths.describe src) d)
        (Irq_paths.dispatch src))
    (Irq_paths.all_sources
    @ [ Irq_paths.Timer Irq_paths.Kvmclock; Irq_paths.Timer_itimer Irq_paths.Kvmclock ])

let test_kvmclock_only_at_runtime () =
  let prof = Irq_paths.dispatch (Irq_paths.Timer Irq_paths.Acpi_pm) in
  let run = Irq_paths.dispatch (Irq_paths.Timer Irq_paths.Kvmclock) in
  check_bool "profiling avoids kvmclock" false (List.mem "kvm_clock_get_cycles" prof);
  check_bool "runtime uses kvmclock" true (List.mem "kvm_clock_get_cycles" run)

(* ------------------------------------------------------------------ *)
(* Symbols                                                             *)
(* ------------------------------------------------------------------ *)

let test_symbols_render () =
  let img = Lazy.force image in
  let syms = Symbols.create () in
  Symbols.add_unit syms (Image.unit_image img);
  let a = Image.addr_of_exn img "do_sys_poll" in
  Alcotest.(check string)
    "zero offset"
    (Printf.sprintf "0x%x <do_sys_poll+0x0>" a)
    (Symbols.render syms a);
  Alcotest.(check string)
    "offset"
    (Printf.sprintf "0x%x <do_sys_poll+0x16>" (a + 0x16))
    (Symbols.render syms (a + 0x16));
  Alcotest.(check string)
    "unknown" "0xf8078bbe <UNKNOWN>"
    (Symbols.render syms 0xf8078bbe)

let test_symbols_module_add_remove () =
  let img = Lazy.force image in
  let syms = Symbols.create () in
  Symbols.add_unit syms (Image.unit_image img);
  let base = Layout.module_area_base in
  let u = Result.get_ok (Image.assemble_module img ~name:"kvmclock" ~base) in
  Symbols.add_unit syms ~module_name:"kvmclock" u;
  let a = Option.get (Symbols.addr_of syms "kvm_clock_read") in
  check_bool "module symbol resolves" true (Symbols.find syms a <> None);
  (* Hiding the module (KBeast-style) makes its frames UNKNOWN. *)
  Symbols.remove_unit syms ~base;
  check_bool "hidden module is UNKNOWN" true (Symbols.find syms a = None);
  check_bool "base still resolves" true
    (Symbols.find syms (Image.addr_of_exn img "sys_poll") <> None)

(* ------------------------------------------------------------------ *)
(* Layout                                                              *)
(* ------------------------------------------------------------------ *)

let test_layout_translation () =
  check_int "text gpa" 0x100000 (Layout.gva_to_gpa Layout.text_base);
  check_int "roundtrip" Layout.text_base (Layout.gpa_to_gva (Layout.gva_to_gpa Layout.text_base));
  check_bool "user addr rejected" true
    (match Layout.gva_to_gpa 0x1000 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "module area is kernel" true (Layout.is_kernel_address Layout.module_area_base);
  check_bool "module area detected" true (Layout.is_module_address Layout.module_area_base);
  check_bool "text not module" false (Layout.is_module_address Layout.text_base)

let test_layout_stacks_disjoint () =
  let top0 = Layout.kstack_top ~pid:0 and top1 = Layout.kstack_top ~pid:1 in
  check_bool "ordered" true (top0 < top1);
  check_bool "disjoint" true (top1 - top0 = Layout.kstack_size)

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "kernel.catalog",
      [
        tc "no duplicate function names" test_no_duplicate_names;
        tc "all callees exist" test_all_callees_exist;
        tc "call graph is acyclic" test_callgraph_acyclic;
        tc "module calls stay resolvable" test_module_calls_stay_resolvable;
        tc "paper-named functions present" test_paper_named_functions_present;
        tc "tree generator shape" test_tree_shape;
      ] );
    ( "kernel.image",
      [
        tc "image builds inside the text region" test_image_builds;
        tc "no false prologue signatures" test_image_no_false_prologues;
        tc "symbol and containment lookup" test_image_lookup;
        tc "Fig.3 call-site parity layout" test_fig3_parity_layout;
        tc "module assembly resolves into base" test_module_assembly;
        tc "module relocation keeps relative structure" test_module_relocation_identical_structure;
        tc "unknown module rejected" test_unknown_module;
      ] );
    ( "kernel.syscalls",
      [
        tc "entries and dispatch targets exist" test_syscall_entries_exist;
        tc "find" test_syscall_find;
        tc "names unique" test_syscall_names_unique;
        tc "irq dispatch targets exist" test_irq_dispatch_targets_exist;
        tc "kvmclock absent from profiling clocksource" test_kvmclock_only_at_runtime;
      ] );
    ( "kernel.symbols",
      [
        tc "render known/unknown" test_symbols_render;
        tc "module add/remove (rootkit hiding)" test_symbols_module_add_remove;
      ] );
    ( "kernel.layout",
      [
        tc "gva/gpa translation" test_layout_translation;
        tc "kernel stacks disjoint" test_layout_stacks_disjoint;
      ] );
  ]
