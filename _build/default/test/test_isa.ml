module Insn = Fc_isa.Insn
module Asm = Fc_isa.Asm
module Scan = Fc_isa.Scan

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let reader_of_bytes b addr =
  if addr >= 0 && addr < Bytes.length b then Some (Bytes.get_uint8 b addr) else None

(* ------------------------------------------------------------------ *)
(* Insn                                                                *)
(* ------------------------------------------------------------------ *)

let sample_insns =
  [
    Insn.Push_ebp;
    Insn.Mov_ebp_esp;
    Insn.Nop;
    Insn.Ud2;
    Insn.Call_rel 0;
    Insn.Call_rel 1234;
    Insn.Call_rel (-1234);
    Insn.Call_rel 0x7fffffff;
    Insn.Call_rel (-0x80000000);
    Insn.Call_indirect;
    Insn.Ret;
    Insn.Leave;
    Insn.Alu 0x20;
    Insn.Or_mem 0x0f;
    Insn.Jmp_rel 10;
    Insn.Jmp_rel (-10);
    Insn.Jcc_rel 42;
    Insn.Jcc_rel (-5);
    Insn.Yield 3;
    Insn.Iret;
    Insn.Int_sw 0x80;
  ]

let test_encode_lengths () =
  List.iter
    (fun i -> check_int (Insn.to_string i) (Insn.length i) (List.length (Insn.encode i)))
    sample_insns

let test_encode_decode_roundtrip () =
  List.iter
    (fun i ->
      let b = Bytes.create (Insn.length i) in
      ignore (Insn.encode_into b 0 i);
      match Insn.decode ~read:(reader_of_bytes b) 0 with
      | Ok (j, len) ->
          check_bool (Insn.to_string i) true (i = j);
          check_int "len" (Insn.length i) len
      | Error _ -> Alcotest.failf "decode failed for %s" (Insn.to_string i))
    sample_insns

let test_decode_ud2 () =
  let b = Bytes.of_string "\x0f\x0b" in
  match Insn.decode ~read:(reader_of_bytes b) 0 with
  | Ok (Insn.Ud2, 2) -> ()
  | _ -> Alcotest.fail "expected UD2"

let test_decode_misaligned_ud2_fill () =
  (* UD2 fill read from an odd offset: bytes are 0x0b 0x0f … which decodes
     as a VALID Or_mem instruction — the Fig. 3 misinterpretation. *)
  let b = Bytes.of_string "\x0f\x0b\x0f\x0b" in
  match Insn.decode ~read:(reader_of_bytes b) 1 with
  | Ok (Insn.Or_mem 0x0f, 2) -> ()
  | Ok (i, _) -> Alcotest.failf "expected Or_mem, got %s" (Insn.to_string i)
  | Error _ -> Alcotest.fail "expected a valid (mis)decode"

let test_decode_unknown () =
  let b = Bytes.of_string "\xde\xad" in
  match Insn.decode ~read:(reader_of_bytes b) 0 with
  | Error (Insn.Unknown_opcode 0xde) -> ()
  | _ -> Alcotest.fail "expected Unknown_opcode"

let test_decode_truncated () =
  let b = Bytes.of_string "\xe8\x01\x02" in
  match Insn.decode ~read:(reader_of_bytes b) 0 with
  | Error Insn.Truncated -> ()
  | _ -> Alcotest.fail "expected Truncated"

let test_predicates () =
  check_bool "call rel" true (Insn.is_call (Insn.Call_rel 5));
  check_bool "call ind" true (Insn.is_call Insn.Call_indirect);
  check_bool "ret not call" false (Insn.is_call Insn.Ret);
  check_bool "ret terminates" true (Insn.is_terminator Insn.Ret);
  check_bool "jmp terminates" true (Insn.is_terminator (Insn.Jmp_rel 2));
  check_bool "jcc does NOT terminate (fallthrough exists)" false
    (Insn.is_terminator (Insn.Jcc_rel 2));
  check_bool "nop continues" false (Insn.is_terminator Insn.Nop)

let prop_roundtrip =
  QCheck.Test.make ~name:"call displacement encode/decode roundtrip" ~count:500
    QCheck.(int_range (-0x40000000) 0x40000000)
    (fun d ->
      let i = Insn.Call_rel d in
      let b = Bytes.create 5 in
      ignore (Insn.encode_into b 0 i);
      match Insn.decode ~read:(reader_of_bytes b) 0 with
      | Ok (Insn.Call_rel d', 5) -> d = d'
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Asm                                                                 *)
(* ------------------------------------------------------------------ *)

let fn ?(min_size = 32) fname items = { Asm.fname; items; min_size }

let assemble_exn ?resolve ~base specs =
  match Asm.assemble ~base ?resolve specs with
  | Ok u -> u
  | Error e -> Alcotest.failf "assemble failed: %s" e

let test_filler_length () =
  List.iter (fun n ->
      let len = List.fold_left (fun a i -> a + Insn.length i) 0 (Asm.filler n) in
      check_int (Printf.sprintf "filler %d" n) n len)
    [ 0; 1; 2; 3; 7; 64; 101 ]

let test_alignment_and_padding () =
  let u = assemble_exn ~base:0x1000 [ fn ~min_size:50 "a" []; fn "b" [] ] in
  let a = Option.get (Asm.find_function u "a") in
  let b = Option.get (Asm.find_function u "b") in
  check_int "a at base" 0x1000 a.Asm.addr;
  check_int "a padded" 50 a.Asm.size;
  check_int "b aligned" 0 (b.Asm.addr mod 16);
  check_bool "b after a" true (b.Asm.addr >= a.Asm.addr + a.Asm.size)

let test_prologue_present () =
  let u = assemble_exn ~base:0x1000 [ fn "a" []; fn ~min_size:200 "b" [] ] in
  let read a = reader_of_bytes u.Asm.code (a - u.Asm.base) in
  List.iter
    (fun (p : Asm.placed) ->
      check_bool (p.Asm.pname ^ " prologue") true
        (Scan.is_prologue_at ~read:(fun a -> read a) p.Asm.addr))
    u.Asm.functions

let test_call_resolution () =
  let u =
    assemble_exn ~base:0x1000
      [ fn "caller" [ Asm.Call "callee" ]; fn "callee" [] ]
  in
  let caller = Option.get (Asm.find_function u "caller") in
  let callee = Option.get (Asm.find_function u "callee") in
  let read a = reader_of_bytes u.Asm.code (a - u.Asm.base) in
  (* call opcode right after the 3-byte prologue *)
  let call_at = caller.Asm.addr + 3 in
  match Insn.decode ~read call_at with
  | Ok (Insn.Call_rel d, 5) -> check_int "target" callee.Asm.addr (call_at + 5 + d)
  | _ -> Alcotest.fail "expected call"

let test_external_resolution () =
  let resolve = function "ext" -> Some 0x9000 | _ -> None in
  let u = assemble_exn ~base:0x1000 ~resolve [ fn "caller" [ Asm.Call "ext" ] ] in
  let caller = Option.get (Asm.find_function u "caller") in
  let read a = reader_of_bytes u.Asm.code (a - u.Asm.base) in
  let call_at = caller.Asm.addr + 3 in
  match Insn.decode ~read call_at with
  | Ok (Insn.Call_rel d, 5) -> check_int "ext target" 0x9000 (call_at + 5 + d)
  | _ -> Alcotest.fail "expected call"

let test_unresolved_call_fails () =
  match Asm.assemble ~base:0x1000 [ fn "caller" [ Asm.Call "nosuch" ] ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected failure"

let test_duplicate_names_fail () =
  match Asm.assemble ~base:0x1000 [ fn "x" []; fn "x" [] ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected failure"

let find_call_return u caller_name =
  (* Scan the caller's body for its first call instruction and return the
     address just past it (the return address a call pushes). *)
  let caller = Option.get (Asm.find_function u caller_name) in
  let read a = reader_of_bytes u.Asm.code (a - u.Asm.base) in
  let rec go a =
    if a >= caller.Asm.addr + caller.Asm.size then Alcotest.fail "no call found"
    else
      match Insn.decode ~read a with
      | Ok (Insn.Call_rel _, len) -> a + len
      | Ok (_, len) -> go (a + len)
      | Error _ -> Alcotest.fail "decode error in body"
  in
  go caller.Asm.addr

let test_cold_block_emission () =
  (* Cold emits a Jcc over exactly n filler bytes *)
  let u = assemble_exn ~base:0x1000 [ fn ~min_size:16 "c" [ Asm.Cold 20 ] ] in
  let read a = reader_of_bytes u.Asm.code (a - u.Asm.base) in
  let c = Option.get (Asm.find_function u "c") in
  (match Insn.decode ~read (c.Asm.addr + 3) with
  | Ok (Insn.Jcc_rel 20, 2) -> ()
  | _ -> Alcotest.fail "expected jcc +20 after the prologue");
  (* the skip target is decodable code (the function continues there) *)
  match Insn.decode ~read (c.Asm.addr + 5 + 20) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "jcc target must be an instruction boundary"

let test_parity_control () =
  let u =
    assemble_exn ~base:0x1000
      [
        fn "odd_caller" [ Asm.Fill 1; Asm.Call_parity ("callee", Asm.Odd_return) ];
        fn "even_caller" [ Asm.Call_parity ("callee", Asm.Even_return) ];
        fn "callee" [];
      ]
  in
  check_int "odd return" 1 (find_call_return u "odd_caller" land 1);
  check_int "even return" 0 (find_call_return u "even_caller" land 1)

let test_function_at () =
  let u = assemble_exn ~base:0x1000 [ fn ~min_size:40 "a" []; fn "b" [] ] in
  let a = Option.get (Asm.find_function u "a") in
  check_bool "inside a" true
    ((Option.get (Asm.function_at u (a.Asm.addr + 10))).Asm.pname = "a");
  check_bool "before base" true (Asm.function_at u 0x0fff = None)

let prop_parity =
  QCheck.Test.make ~name:"forced return parity holds for any preceding fill"
    ~count:100
    QCheck.(pair (int_bound 37) bool)
    (fun (fill, want_odd) ->
      let parity = if want_odd then Asm.Odd_return else Asm.Even_return in
      let u =
        assemble_exn ~base:0x2000
          [ fn "c" [ Asm.Fill fill; Asm.Call_parity ("t", parity) ]; fn "t" [] ]
      in
      find_call_return u "c" land 1 = if want_odd then 1 else 0)

(* ------------------------------------------------------------------ *)
(* Scan                                                                *)
(* ------------------------------------------------------------------ *)

let test_scan_bounds () =
  let u =
    assemble_exn ~base:0x1000
      [ fn ~min_size:100 "a" []; fn ~min_size:60 "b" []; fn "c" [] ]
  in
  let read a = reader_of_bytes u.Asm.code (a - u.Asm.base) in
  let a = Option.get (Asm.find_function u "a") in
  let b = Option.get (Asm.find_function u "b") in
  let c = Option.get (Asm.find_function u "c") in
  let lo = u.Asm.base and hi = u.Asm.base + Bytes.length u.Asm.code in
  (match Scan.function_bounds ~read ~lo ~hi (b.Asm.addr + 20) with
  | Some (start, stop) ->
      check_int "start" b.Asm.addr start;
      check_int "stop" c.Asm.addr stop
  | None -> Alcotest.fail "bounds not found");
  (* last function: stop = hi *)
  (match Scan.function_bounds ~read ~lo ~hi (c.Asm.addr + 4) with
  | Some (start, stop) ->
      check_int "last start" c.Asm.addr start;
      check_int "last stop" hi stop
  | None -> Alcotest.fail "bounds not found");
  (* first function *)
  match Scan.function_bounds ~read ~lo ~hi (a.Asm.addr + 1) with
  | Some (start, _) -> check_int "first start" a.Asm.addr start
  | None -> Alcotest.fail "bounds not found"

let test_scan_backward_limit () =
  let b = Bytes.make 64 '\x00' in
  check_bool "nothing found" true
    (Scan.search_backward ~read:(reader_of_bytes b) ~limit:0 48 = None)

let test_scan_cross_page () =
  (* Function bigger than a page: the backward scan from a fault deep in
     the second page must walk across the page boundary. *)
  let u = assemble_exn ~base:0x1000 [ fn ~min_size:5000 "big" []; fn "next" [] ] in
  let read a = reader_of_bytes u.Asm.code (a - u.Asm.base) in
  let big = Option.get (Asm.find_function u "big") in
  let next = Option.get (Asm.find_function u "next") in
  let lo = u.Asm.base and hi = u.Asm.base + Bytes.length u.Asm.code in
  match Scan.function_bounds ~read ~lo ~hi (big.Asm.addr + 4500) with
  | Some (start, stop) ->
      check_int "start" big.Asm.addr start;
      check_int "stop" next.Asm.addr stop
  | None -> Alcotest.fail "bounds not found"

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "isa.insn",
      [
        tc "encode lengths" test_encode_lengths;
        tc "encode/decode roundtrip" test_encode_decode_roundtrip;
        tc "ud2 decodes as ud2" test_decode_ud2;
        tc "odd-offset ud2 fill misdecodes as valid or" test_decode_misaligned_ud2_fill;
        tc "unknown opcode" test_decode_unknown;
        tc "truncated" test_decode_truncated;
        tc "predicates" test_predicates;
        QCheck_alcotest.to_alcotest prop_roundtrip;
      ] );
    ( "isa.asm",
      [
        tc "filler is exact length" test_filler_length;
        tc "alignment and min_size padding" test_alignment_and_padding;
        tc "every function starts with the prologue" test_prologue_present;
        tc "internal call resolution" test_call_resolution;
        tc "external call resolution" test_external_resolution;
        tc "unresolved call fails" test_unresolved_call_fails;
        tc "duplicate names fail" test_duplicate_names_fail;
        tc "cold block emission" test_cold_block_emission;
        tc "return-address parity control" test_parity_control;
        tc "function_at" test_function_at;
        QCheck_alcotest.to_alcotest prop_parity;
      ] );
    ( "isa.scan",
      [
        tc "function bounds between neighbors" test_scan_bounds;
        tc "backward scan respects limit" test_scan_backward_limit;
        tc "bounds across page-sized function" test_scan_cross_page;
      ] );
  ]
