module Action = Fc_machine.Action
module Os = Fc_machine.Os
module Synth = Fc_apps.Synth
module Facechange = Fc_core.Facechange

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let image () = Lazy.force Test_env.image

let test_deterministic () =
  let a = Synth.script ~seed:42 ~length:30 () in
  let b = Synth.script ~seed:42 ~length:30 () in
  check_bool "same seed, same script" true (a = b);
  let c = Synth.script ~seed:43 ~length:30 () in
  check_bool "different seed, different script" true (a <> c)

let test_valid_and_terminating () =
  List.iter
    (fun seed ->
      let s = Synth.script ~seed ~length:50 () in
      (match List.rev s with
      | Action.Exit :: _ -> ()
      | _ -> Alcotest.fail "missing exit");
      List.iter
        (function
          | Action.Syscall v ->
              if Fc_kernel.Syscalls.find v = None then
                Alcotest.failf "unknown syscall %s" v
          | _ -> ())
        s)
    [ 1; 7; 99; 1234 ]

let test_profiles_differ () =
  let has_net s =
    List.exists
      (function
        | Action.Syscall v -> String.length v > 4 && String.sub v 0 4 = "sock"
        | _ -> false)
      s
  in
  check_bool "file-heavy avoids sockets" false
    (has_net (Synth.script ~seed:5 ~profile:Synth.File_heavy ~length:200 ()))

let test_synthetic_app_runs_enforced () =
  (* the full pipeline works for a synthetic app: profile, enforce, run *)
  let app = Synth.app ~seed:7 ~profile:Synth.Interactive "synth7" in
  let cfg = Fc_apps.App.profile ~iterations:2 (image ()) app in
  let os = Os.create ~config:(Fc_apps.App.os_config app) (image ()) in
  let hyp = Fc_hypervisor.Hypervisor.attach os in
  let fc = Facechange.enable hyp in
  let (_ : int) = Facechange.load_view fc cfg in
  let p = Os.spawn os ~name:"synth7" (app.Fc_apps.App.script 2) in
  Os.run ~max_rounds:20_000 os;
  check_bool "completed" true (Fc_machine.Process.is_exited p);
  check_int "same workload, no recovery" 0 (Facechange.recoveries fc)

let test_stats_capture () =
  let app = Fc_apps.App.find_exn "top" in
  let os = Os.create ~config:(Fc_apps.App.os_config app) (image ()) in
  let hyp = Fc_hypervisor.Hypervisor.attach os in
  let fc = Facechange.enable hyp in
  let (_ : int) =
    Facechange.load_view fc
      (Fc_benchkit.Profiles.config_of (Lazy.force Test_env.profiles) "top")
  in
  let _ = Os.spawn os ~name:"top" (app.Fc_apps.App.script 2) in
  Os.run os;
  let st = Fc_core.Stats.capture fc in
  check_bool "cycles counted" true (st.Fc_core.Stats.guest_cycles > 0);
  check_int "one view" 1 st.Fc_core.Stats.views_loaded;
  check_bool "exits recorded" true (st.Fc_core.Stats.breakpoint_exits > 0);
  check_bool "overhead fraction sane" true
    (Fc_core.Stats.overhead_fraction st > 0.
    && Fc_core.Stats.overhead_fraction st < 0.5);
  let text = Format.asprintf "%a" Fc_core.Stats.pp st in
  check_bool "renders" true (String.length text > 50)

let test_app_wrapper () =
  let a = Synth.app ~seed:3 "synth3" in
  Alcotest.(check string) "category" "synthetic" a.Fc_apps.App.category;
  check_bool "longer n, longer script" true
    (List.length (a.Fc_apps.App.script 4) > List.length (a.Fc_apps.App.script 1))

let tc name f = Alcotest.test_case name `Quick f
let tc_slow name f = Alcotest.test_case name `Slow f

let suites =
  [
    ( "synth",
      [
        tc "seeded determinism" test_deterministic;
        tc "valid, terminating scripts" test_valid_and_terminating;
        tc "profiles shape the syscall mix" test_profiles_differ;
        tc "app wrapper" test_app_wrapper;
        tc_slow "synthetic app through the full pipeline" test_synthetic_app_runs_enforced;
        tc_slow "stats capture" test_stats_capture;
      ] );
  ]
