module Os = Fc_machine.Os
module Cpu = Fc_machine.Cpu
module Action = Fc_machine.Action
module Hyp = Fc_hypervisor.Hypervisor
module Cost = Fc_hypervisor.Cost
module Image = Fc_kernel.Image
module Layout = Fc_kernel.Layout

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let image = lazy (Image.build_exn ())
let fresh () = let os = Os.create (Lazy.force image) in (os, Hyp.attach os)

let test_attach_installs_dispatcher () =
  let os, hyp = fresh () in
  (* with a hypervisor attached but no recovery handler, an invalid opcode
     is reported through the hypervisor, not the OS default *)
  let hits = ref 0 in
  Hyp.on_invalid_opcode hyp (fun _ _ ->
      incr hits;
      `Unhandled "test");
  (* punch UD2 into a function the workload executes *)
  let addr = Os.resolve_exn os "sys_getpid" in
  let gpa = Layout.gva_to_gpa (addr + 3) in
  let frame = Option.get (Os.ram_frame os ~gpa_page:(Layout.page_of gpa)) in
  let hpa = Fc_mem.Phys_mem.addr_of_frame frame + (gpa mod Layout.page_size) in
  Fc_mem.Phys_mem.write_byte (Os.phys os) hpa 0x0f;
  Fc_mem.Phys_mem.write_byte (Os.phys os) (hpa + 1) 0x0b;
  let _ = Os.spawn os ~name:"x" [ Action.Syscall "getpid"; Action.Exit ] in
  (match Os.run os with
  | () -> Alcotest.fail "expected panic"
  | exception Os.Guest_panic _ -> ());
  check_int "handler consulted" 1 !hits;
  check_int "io exit counted" 1 (Hyp.invalid_opcode_exits hyp)

let test_breakpoints_and_cost () =
  let os, hyp = fresh () in
  let hits = ref 0 in
  Hyp.on_breakpoint hyp (fun _ _ _ -> incr hits);
  Hyp.set_breakpoint hyp (Os.resolve_exn os "sys_getpid");
  let before = Os.cycles os in
  let _ = Os.spawn os ~name:"x" [ Action.Syscall "getpid"; Action.Exit ] in
  Os.run os;
  check_int "bp hit once" 1 !hits;
  check_int "bp exit counted" 1 (Hyp.breakpoint_exits hyp);
  check_bool "vm exit cost charged" true (Hyp.cycles_charged hyp >= Cost.vm_exit);
  check_bool "cost lands on guest cycles" true
    (Os.cycles os - before >= Hyp.cycles_charged hyp)

let test_clear_breakpoint () =
  let os, hyp = fresh () in
  let hits = ref 0 in
  Hyp.on_breakpoint hyp (fun _ _ _ -> incr hits);
  let a = Os.resolve_exn os "sys_getpid" in
  Hyp.set_breakpoint hyp a;
  check_bool "registered" true (Hyp.has_breakpoint hyp a);
  Hyp.clear_breakpoint hyp a;
  let _ = Os.spawn os ~name:"x" [ Action.Syscall "getpid"; Action.Exit ] in
  Os.run os;
  check_int "no hits after clear" 0 !hits

let test_vmi_reads () =
  let _os, hyp = fresh () in
  let pid, comm = Hyp.current_task hyp in
  check_int "idle pid" 0 pid;
  Alcotest.(check string) "idle comm" "swapper" comm;
  check_int "four default modules" 4 (List.length (Hyp.module_list hyp))

let test_original_vs_active_code () =
  let os, hyp = fresh () in
  let a = Os.resolve_exn os "sys_getpid" in
  check_bool "agree before any view" true
    (Hyp.read_original_code hyp a = Hyp.read_active_code hyp a);
  (* install an empty custom view: active diverges, original does not *)
  let fc = Fc_core.Facechange.enable hyp in
  let cfg = Fc_profiler.View_config.make ~app:"x" Fc_ranges.Range_list.empty in
  let (_ : int) = Fc_core.Facechange.load_view fc cfg in
  let p = Os.spawn os ~name:"x" [ Action.Compute 10; Action.Exit ] in
  ignore p;
  (* force the switch by binding and running through a context switch *)
  Os.run os;
  check_bool "original still the real bytes" true
    (Hyp.read_original_code hyp a = Some 0x55)

let test_stack_frames_walk () =
  let os, hyp = fresh () in
  (* build a fake frame chain in a guest stack page:
     [ebp] = prev_ebp, [ebp+4] = return address *)
  let top = Layout.kstack_top ~pid:0 in
  let ebp2 = top - 0x40 in
  let ebp1 = top - 0x80 in
  let poke a v =
    let gpa = Layout.gva_to_gpa a in
    let frame = Option.get (Os.ram_frame os ~gpa_page:(Layout.page_of gpa)) in
    Fc_mem.Phys_mem.write_u32 (Os.phys os)
      (Fc_mem.Phys_mem.addr_of_frame frame + (gpa mod Layout.page_size))
      v
  in
  poke ebp1 ebp2;              (* prev ebp *)
  poke (ebp1 + 4) 0xc0100123;  (* ret 1 *)
  poke ebp2 0;                 (* chain ends *)
  poke (ebp2 + 4) 0xc0100456;  (* ret 2 *)
  let frames = Hyp.stack_frames hyp ~eip:0xc0100777 ~ebp:ebp1 () in
  Alcotest.(check (list int)) "chain" [ 0xc0100777; 0xc0100123; 0xc0100456 ] frames

let test_stack_frames_stop_at_sentinel () =
  let os, hyp = fresh () in
  let top = Layout.kstack_top ~pid:0 in
  let ebp = top - 0x40 in
  let poke a v =
    let gpa = Layout.gva_to_gpa a in
    let frame = Option.get (Os.ram_frame os ~gpa_page:(Layout.page_of gpa)) in
    Fc_mem.Phys_mem.write_u32 (Os.phys os)
      (Fc_mem.Phys_mem.addr_of_frame frame + (gpa mod Layout.page_size))
      v
  in
  poke ebp (top - 0x20);
  poke (ebp + 4) Cpu.sentinel_return;
  let frames = Hyp.stack_frames hyp ~eip:0xc0100777 ~ebp () in
  Alcotest.(check (list int)) "sentinel stops walk" [ 0xc0100777 ] frames

let test_stack_frames_entry_caller () =
  (* when eip sits on a prologue, [esp] supplies the immediate caller *)
  let os, hyp = fresh () in
  let f = Os.resolve_exn os "sys_getpid" in
  let top = Layout.kstack_top ~pid:0 in
  let esp = top - 0x10 in
  let poke a v =
    let gpa = Layout.gva_to_gpa a in
    let frame = Option.get (Os.ram_frame os ~gpa_page:(Layout.page_of gpa)) in
    Fc_mem.Phys_mem.write_u32 (Os.phys os)
      (Fc_mem.Phys_mem.addr_of_frame frame + (gpa mod Layout.page_size))
      v
  in
  poke esp 0xc0100999;
  let frames = Hyp.stack_frames hyp ~eip:f ~ebp:0 ~esp () in
  Alcotest.(check (list int)) "caller from esp" [ f; 0xc0100999 ] frames

let test_render_addr_forms () =
  let os, hyp = fresh () in
  let a = Os.resolve_exn os "do_sys_poll" in
  check_bool "symbol" true
    (Hyp.render_addr hyp a = Printf.sprintf "0x%x <do_sys_poll+0x0>" a);
  (* inside a known module but without function symbols? catalog modules
     have symbols; a rootkit module does not *)
  let info =
    Os.load_module_fns os ~name:"rk"
      [ Fc_kernel.Kfunc.v ~size:64 ~sub:"rk" "rk_fn" [] ]
  in
  Hyp.refresh_symbols hyp;
  let base = info.Os.unit_image.Fc_isa.Asm.base in
  Alcotest.(check string)
    "module-region form"
    (Printf.sprintf "0x%x <mod:rk+0x10>" (base + 16))
    (Hyp.render_addr hyp (base + 16));
  (* hide it: now UNKNOWN *)
  Os.hide_module os "rk";
  Hyp.refresh_symbols hyp;
  Alcotest.(check string)
    "unknown form"
    (Printf.sprintf "0x%x <UNKNOWN>" (base + 16))
    (Hyp.render_addr hyp (base + 16))

let test_original_tables_snapshot () =
  let _, hyp = fresh () in
  let text_dir =
    Fc_mem.Ept.dir_of_page (Layout.page_of (Layout.gva_to_gpa Layout.text_base))
  in
  let mod_dir =
    Fc_mem.Ept.dir_of_page (Layout.page_of (Layout.gva_to_gpa Layout.module_area_base))
  in
  check_bool "text dir captured" true (Hyp.original_table hyp ~dir:text_dir <> None);
  check_bool "module dir captured" true (Hyp.original_table hyp ~dir:mod_dir <> None)

let test_detach_restores_default () =
  let os, hyp = fresh () in
  Hyp.set_breakpoint hyp (Os.resolve_exn os "sys_getpid");
  Hyp.detach hyp;
  check_int "traps cleared" 0 (List.length (Os.trap_addresses os));
  let p = Os.spawn os ~name:"x" [ Action.Syscall "getpid"; Action.Exit ] in
  Os.run os;
  check_bool "guest runs normally" true (Fc_machine.Process.is_exited p)

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "hypervisor",
      [
        tc "invalid-opcode exits route to the handler" test_attach_installs_dispatcher;
        tc "breakpoints fire and charge the cost model" test_breakpoints_and_cost;
        tc "cleared breakpoints do not fire" test_clear_breakpoint;
        tc "VMI current task and module list" test_vmi_reads;
        tc "original vs active code reads" test_original_vs_active_code;
        tc "stack walk over an rbp chain" test_stack_frames_walk;
        tc "stack walk stops at the user sentinel" test_stack_frames_stop_at_sentinel;
        tc "entry-point faults read the caller from esp" test_stack_frames_entry_caller;
        tc "address rendering: symbol / module / UNKNOWN" test_render_addr_forms;
        tc "original EPT tables snapshotted at attach" test_original_tables_snapshot;
        tc "detach restores the default handler" test_detach_restores_default;
      ] );
  ]
