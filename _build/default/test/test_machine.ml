module Cpu = Fc_machine.Cpu
module Action = Fc_machine.Action
module Process = Fc_machine.Process
module Os = Fc_machine.Os
module Image = Fc_kernel.Image
module Layout = Fc_kernel.Layout
module Irq_paths = Fc_kernel.Irq_paths

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let image = lazy (Image.build_exn ())
let fresh_os ?config () = Os.create ?config (Lazy.force image)

(* ------------------------------------------------------------------ *)
(* Cpu on a hand-built code buffer                                     *)
(* ------------------------------------------------------------------ *)

(* A tiny flat machine: code at 0x100, stack at 0x1000 in one buffer. *)
let flat_machine code =
  let mem = Bytes.make 0x2000 '\x00' in
  Bytes.blit code 0 mem 0x100 (Bytes.length code);
  let fetch a = if a >= 0 && a < 0x2000 then Some (Bytes.get_uint8 mem a) else None in
  let read_u32 a =
    if a >= 0 && a + 3 < 0x2000 then
      Some
        (Bytes.get_uint8 mem a
        lor (Bytes.get_uint8 mem (a + 1) lsl 8)
        lor (Bytes.get_uint8 mem (a + 2) lsl 16)
        lor (Bytes.get_uint8 mem (a + 3) lsl 24))
    else None
  in
  let write_u32 a v =
    for i = 0 to 3 do
      Bytes.set_uint8 mem (a + i) ((v lsr (8 * i)) land 0xff)
    done
  in
  (mem, fetch, read_u32, write_u32)

let encode_insns insns =
  let buf = Buffer.create 64 in
  List.iter
    (fun i -> List.iter (fun b -> Buffer.add_char buf (Char.chr b)) (Fc_isa.Insn.encode i))
    insns;
  Buffer.to_bytes buf

let run_flat ?(traps = []) ?dispatch insns =
  let _, fetch, read_u32, write_u32 = flat_machine (encode_insns insns) in
  let regs = { Cpu.eip = 0x100; ebp = 0; esp = 0x1f00 } in
  Cpu.push ~write_u32 regs Cpu.sentinel_return;
  let q = Queue.create () in
  Option.iter (List.iter (fun a -> Queue.add a q)) dispatch;
  let cycles = ref 0 in
  let r =
    Cpu.run ~decode:(Cpu.decoder_of_fetch fetch) ~read_u32 ~write_u32
      ~is_trap:(fun a -> List.mem a traps)
      ~trace:None ~cycles ~dispatch:q regs
  in
  (r, regs, !cycles)

let test_cpu_returned () =
  let r, _, cycles = run_flat [ Fc_isa.Insn.Nop; Fc_isa.Insn.Ret ] in
  check_bool "returned" true (r = Cpu.Returned);
  check_bool "cycles counted" true (cycles >= 2)

let test_cpu_frame_chain () =
  (* call a function that builds a frame; inspect the saved chain. *)
  let open Fc_isa.Insn in
  (* 0x100: call +3 (to 0x108); 0x105: ret; padding; 0x108: push ebp; mov; leave; ret *)
  let insns = [ Call_rel 3; Ret; Nop; Nop; Nop; Push_ebp; Mov_ebp_esp; Leave; Ret ] in
  let r, _, _ = run_flat insns in
  check_bool "returned through frames" true (r = Cpu.Returned)

let test_cpu_ud2 () =
  let r, regs, _ = run_flat [ Fc_isa.Insn.Nop; Fc_isa.Insn.Ud2 ] in
  check_bool "invalid opcode" true (r = Cpu.Invalid_opcode);
  check_int "eip at the ud2" 0x101 regs.Cpu.eip

let test_cpu_unknown_opcode () =
  let mem_code = Bytes.of_string "\xde" in
  let _, fetch, read_u32, write_u32 = flat_machine mem_code in
  let regs = { Cpu.eip = 0x100; ebp = 0; esp = 0x1f00 } in
  Cpu.push ~write_u32 regs Cpu.sentinel_return;
  let r =
    Cpu.run ~decode:(Cpu.decoder_of_fetch fetch) ~read_u32 ~write_u32
      ~is_trap:(fun _ -> false) ~trace:None
      ~cycles:(ref 0) ~dispatch:(Queue.create ()) regs
  in
  check_bool "unknown is invalid opcode" true (r = Cpu.Invalid_opcode)

let test_cpu_breakpoint_and_skip () =
  let insns = [ Fc_isa.Insn.Nop; Fc_isa.Insn.Nop; Fc_isa.Insn.Ret ] in
  let _, fetch, read_u32, write_u32 = flat_machine (encode_insns insns) in
  let regs = { Cpu.eip = 0x100; ebp = 0; esp = 0x1f00 } in
  Cpu.push ~write_u32 regs Cpu.sentinel_return;
  let run ?skip_bp () =
    Cpu.run ~decode:(Cpu.decoder_of_fetch fetch) ~read_u32 ~write_u32
      ~is_trap:(fun a -> a = 0x101)
      ~trace:None ~cycles:(ref 0) ~dispatch:(Queue.create ()) ?skip_bp regs
  in
  (match run () with
  | Cpu.Breakpoint a -> check_int "bp addr" 0x101 a
  | r -> Alcotest.failf "expected breakpoint, got %s" (Format.asprintf "%a" Cpu.pp_exit r));
  check_int "eip unchanged" 0x101 regs.Cpu.eip;
  match run ~skip_bp:0x101 () with
  | Cpu.Returned -> ()
  | _ -> Alcotest.fail "expected resume to completion"

let test_cpu_branch_oracle () =
  let open Fc_isa.Insn in
  (* jcc +1 over a nop, then ret *)
  let insns = [ Jcc_rel 1; Nop; Ret ] in
  let _, fetch, read_u32, write_u32 = flat_machine (encode_insns insns) in
  let run oracle =
    let regs = { Cpu.eip = 0x100; ebp = 0; esp = 0x1f00 } in
    Cpu.push ~write_u32 regs Cpu.sentinel_return;
    let cycles = ref 0 in
    let r =
      Cpu.run ~decode:(Cpu.decoder_of_fetch fetch) ~read_u32 ~write_u32
        ~is_trap:(fun _ -> false) ~trace:None ~branch:oracle ~cycles
        ~dispatch:(Queue.create ()) regs
    in
    (r, !cycles)
  in
  let r_taken, c_taken = run (fun _ -> true) in
  let r_fall, c_fall = run (fun _ -> false) in
  check_bool "both return" true (r_taken = Cpu.Returned && r_fall = Cpu.Returned);
  (* not taken executes one extra instruction (the nop) *)
  check_int "fallthrough executes the cold block" (c_taken + 1) c_fall;
  (* the oracle is queried with the jcc's own address *)
  let asked = ref (-1) in
  let _ = run (fun a -> asked := a; true) in
  check_int "oracle sees the jcc address" 0x100 !asked

let test_cpu_blocked_advances () =
  let r, regs, _ = run_flat [ Fc_isa.Insn.Yield 7; Fc_isa.Insn.Ret ] in
  check_bool "blocked" true (r = Cpu.Blocked 7);
  check_int "eip past yield" 0x102 regs.Cpu.eip

let test_cpu_dispatch () =
  (* indirect call to 0x110 (a ret there), then ret *)
  let open Fc_isa.Insn in
  let code = Bytes.make 0x20 '\x90' in
  ignore (encode_into code 0 Call_indirect);
  ignore (encode_into code 2 Ret);
  Bytes.set_uint8 code 0x10 0xc3;
  let _, fetch, read_u32, write_u32 = flat_machine code in
  let regs = { Cpu.eip = 0x100; ebp = 0; esp = 0x1f00 } in
  Cpu.push ~write_u32 regs Cpu.sentinel_return;
  let q = Queue.create () in
  Queue.add 0x110 q;
  let r =
    Cpu.run ~decode:(Cpu.decoder_of_fetch fetch) ~read_u32 ~write_u32
      ~is_trap:(fun _ -> false) ~trace:None
      ~cycles:(ref 0) ~dispatch:q regs
  in
  check_bool "returned" true (r = Cpu.Returned);
  check_bool "queue drained" true (Queue.is_empty q)

let test_cpu_dispatch_underflow () =
  let r, _, _ = run_flat [ Fc_isa.Insn.Call_indirect ] in
  check_bool "underflow fault" true (r = Cpu.Fault (Cpu.Dispatch_underflow 0x100))

let test_cpu_unmapped_code () =
  let r, _, _ = run_flat [ Fc_isa.Insn.Jmp_rel 0x70 ] in
  (* jmp beyond the mapped window after a while: jmp to 0x172 (still mapped,
     zeros) → unknown opcode 0 is invalid-opcode, so instead jump out of
     range directly *)
  ignore r;
  let open Fc_isa.Insn in
  let code = encode_insns [ Call_rel 0x4000 ] in
  let _, fetch, read_u32, write_u32 = flat_machine code in
  let regs = { Cpu.eip = 0x100; ebp = 0; esp = 0x1f00 } in
  Cpu.push ~write_u32 regs Cpu.sentinel_return;
  match
    Cpu.run ~decode:(Cpu.decoder_of_fetch fetch) ~read_u32 ~write_u32
      ~is_trap:(fun _ -> false) ~trace:None
      ~cycles:(ref 0) ~dispatch:(Queue.create ()) regs
  with
  | Cpu.Fault (Cpu.Unmapped_code a) -> check_int "fault addr" 0x4105 a
  | r -> Alcotest.failf "expected unmapped fault: %s" (Format.asprintf "%a" Cpu.pp_exit r)

let test_cpu_runaway () =
  (* an infinite loop trips the instruction budget *)
  let open Fc_isa.Insn in
  let insns = [ Jmp_rel (-2) ] in
  let _, fetch, read_u32, write_u32 = flat_machine (encode_insns insns) in
  let regs = { Cpu.eip = 0x100; ebp = 0; esp = 0x1f00 } in
  Cpu.push ~write_u32 regs Cpu.sentinel_return;
  match
    Cpu.run ~decode:(Cpu.decoder_of_fetch fetch) ~read_u32 ~write_u32
      ~is_trap:(fun _ -> false) ~trace:None
      ~cycles:(ref 0) ~dispatch:(Queue.create ()) ~max_instr:1000 regs
  with
  | Cpu.Fault Cpu.Runaway -> ()
  | _ -> Alcotest.fail "expected runaway"

(* ------------------------------------------------------------------ *)
(* Os: boot, syscalls, scheduling, interrupts                          *)
(* ------------------------------------------------------------------ *)

let test_os_boot () =
  let os = fresh_os () in
  check_int "default modules loaded" 4 (List.length (Os.modules os));
  let pid, comm = Os.vmi_current_task os in
  check_int "idle pid" 0 pid;
  Alcotest.(check string) "idle comm" "swapper" comm;
  check_bool "kvm_clock resolvable" true (Os.resolve os "kvm_clock_get_cycles" <> None);
  check_bool "vmi sees modules" true (List.length (Os.vmi_module_list os) = 4)

let test_os_simple_syscalls () =
  let os = fresh_os () in
  let p =
    Os.spawn os ~name:"hello"
      [ Action.Syscall "getpid"; Action.Compute 100; Action.Syscall "getpid"; Action.Exit ]
  in
  Os.run os;
  check_bool "exited" true (Process.is_exited p);
  check_int "three syscalls (2 getpid + exit)" 3 p.Process.syscall_count

let test_os_every_syscall_variant_executes () =
  (* The dispatch-count contract: every variant must run to completion
     (blocking ones must block then finish) with its declared queue. *)
  List.iter
    (fun (sc : Fc_kernel.Syscalls.t) ->
      if sc.sc_name <> "exit" then begin
        let os = fresh_os () in
        let p = Os.spawn os ~name:"probe" [ Action.Syscall sc.sc_name; Action.Exit ] in
        (try Os.run os
         with Os.Guest_panic m -> Alcotest.failf "%s panicked: %s" sc.sc_name m);
        if not (Process.is_exited p) then Alcotest.failf "%s did not finish" sc.sc_name
      end)
    Fc_kernel.Syscalls.all

let test_os_blocking_syscall_resumes () =
  let os = fresh_os () in
  let p =
    Os.spawn os ~name:"poller" [ Action.Syscall "poll:pipe"; Action.Syscall "getpid"; Action.Exit ]
  in
  Os.run os;
  check_bool "exited" true (Process.is_exited p);
  check_int "syscalls" 3 p.Process.syscall_count

let test_os_two_processes_round_robin () =
  let os = fresh_os () in
  let mk name = Os.spawn os ~name (Action.repeat 5 [ Action.Syscall "getpid"; Action.Compute 50 ] @ [ Action.Exit ]) in
  let a = mk "alpha" and b = mk "beta" in
  Os.run os;
  check_bool "both exited" true (Process.is_exited a && Process.is_exited b);
  check_bool "switched between them" true (Os.context_switches os >= 2)

let test_os_current_task_vmi_tracks_switches () =
  let os = fresh_os ~config:{ Os.default_config with wake_delay = 3 } () in
  let _a = Os.spawn os ~name:"alpha" [ Action.Syscall "nanosleep"; Action.Exit ] in
  let _b = Os.spawn os ~name:"beta" [ Action.Syscall "nanosleep"; Action.Exit ] in
  let seen = Hashtbl.create 4 in
  Os.set_exit_handler os (fun os _regs -> function
    | Os.Exit_breakpoint _ ->
        let _, comm = Os.vmi_current_task os in
        Hashtbl.replace seen comm ();
        Os.Resume
    | Os.Exit_invalid_opcode -> Os.Panic "unexpected");
  Os.set_trap os (Os.resolve_exn os "__switch_to");
  Os.run os;
  check_bool "saw alpha" true (Hashtbl.mem seen "alpha");
  check_bool "saw beta" true (Hashtbl.mem seen "beta");
  check_bool "saw swapper idling" true (Hashtbl.mem seen "swapper")

let test_os_timer_interrupts_fire () =
  let os = fresh_os () in
  let hits = ref 0 in
  let timer_addr = Os.resolve_exn os "timer_interrupt" in
  Os.set_trace os (Some (fun addr _ -> if addr = timer_addr then incr hits));
  let p = Os.spawn os ~name:"spin" (Action.repeat 50 [ Action.Compute 20_000 ] @ [ Action.Exit ]) in
  Os.run os;
  check_bool "exited" true (Process.is_exited p);
  check_bool "timer fired repeatedly" true (!hits >= 5)

let test_os_clocksource_selects_kvmclock () =
  let os = fresh_os ~config:Os.runtime_config () in
  let hits = ref 0 in
  let kvm = Os.resolve_exn os "kvm_clock_get_cycles" in
  Os.set_trace os (Some (fun addr _ -> if addr = kvm then incr hits));
  let _ = Os.spawn os ~name:"spin" (Action.repeat 30 [ Action.Compute 20_000 ] @ [ Action.Exit ]) in
  Os.run os;
  check_bool "kvmclock path executed" true (!hits >= 1)

let test_os_inject_irq () =
  let os = fresh_os () in
  let hits = ref 0 in
  let addr = Os.resolve_exn os "packet_rcv" in
  Os.set_trace os (Some (fun a _ -> if a = addr then incr hits));
  Os.inject_irq os Irq_paths.Net_rx_sniffed_tcp;
  check_int "packet tap hit" 1 !hits

let test_os_itimer_path () =
  let os = fresh_os () in
  let hits = ref 0 in
  let it = Os.resolve_exn os "it_real_fn" in
  Os.set_trace os (Some (fun a _ -> if a = it then incr hits));
  let p =
    Os.spawn os ~name:"cymo"
      ([ Action.Syscall "setitimer" ] @ Action.repeat 30 [ Action.Compute 20_000 ] @ [ Action.Exit ])
  in
  Os.schedule_at_round os 1 (fun os -> Os.arm_itimer os ~pid:p.Process.pid);
  Os.run os;
  check_bool "it_real_fn fired" true (!hits >= 1)

let test_os_module_load_hide () =
  let os = fresh_os () in
  let before = List.length (Os.vmi_module_list os) in
  Os.hide_module os "kvmclock";
  let after = Os.vmi_module_list os in
  check_int "one fewer visible" (before - 1) (List.length after);
  check_bool "kvmclock gone from VMI" true
    (not (List.exists (fun (n, _, _) -> n = "kvmclock") after));
  (* OS ground truth still has it, and code still executes *)
  check_bool "os still tracks it" true
    (List.exists (fun m -> m.Os.mod_name = "kvmclock") (Os.modules os));
  Os.inject_irq os Irq_paths.Net_rx_sniffed_udp (* af_packet still mapped *)

let test_os_rootkit_module_load () =
  let os = fresh_os () in
  let fns =
    [
      Fc_kernel.Kfunc.v ~size:96 ~sub:"rk" "rk_hook" [ Fc_kernel.Kfunc.C "strnlen" ];
    ]
  in
  let info = Os.load_module_fns os ~name:"rk" fns in
  check_bool "loaded above previous modules" true
    (info.Os.unit_image.Fc_isa.Asm.base >= Layout.module_area_base);
  check_bool "resolvable" true (Os.resolve os "rk_hook" <> None);
  (* execute it via a syscall rewrite *)
  let hits = ref 0 in
  let rk = Os.resolve_exn os "rk_hook" in
  Os.set_trace os (Some (fun a _ -> if a = rk then incr hits));
  Os.set_syscall_rewriter os (fun sc ->
      if sc.Fc_kernel.Syscalls.sc_name = "getpid" then Some ("rk_hook", []) else None);
  let _ = Os.spawn os ~name:"victim" [ Action.Syscall "getpid"; Action.Exit ] in
  Os.run os;
  check_bool "hook executed" true (!hits = 1)

let test_os_guest_panic_without_handler () =
  let os = fresh_os () in
  (* Punch a hole in the EPT for the text page containing sys_getpid's
     entry: execution must fault. *)
  let addr = Os.resolve_exn os "sys_getpid" in
  let gpa_page = Layout.page_of (Layout.gva_to_gpa addr) in
  let dir = Fc_mem.Ept.dir_of_page gpa_page in
  let table = Option.get (Fc_mem.Ept.get_dir (Os.ept os) ~dir) in
  Fc_mem.Ept.table_set table ~idx:(Fc_mem.Ept.slot_of_page gpa_page) None;
  let _ = Os.spawn os ~name:"crasher" [ Action.Syscall "getpid"; Action.Exit ] in
  match Os.run os with
  | () -> Alcotest.fail "expected panic"
  | exception Os.Guest_panic _ -> ()

let test_os_schedule_at_round () =
  let os = fresh_os () in
  let fired = ref (-1) in
  Os.schedule_at_round os 3 (fun os -> fired := Os.round os);
  let _ =
    Os.spawn os ~name:"w" (Action.repeat 10 [ Action.Syscall "nanosleep" ] @ [ Action.Exit ])
  in
  Os.run os;
  check_bool "hook fired at >= round 3" true (!fired >= 3)

let test_os_fault_action () =
  let os = fresh_os () in
  let hits = ref 0 in
  let f = Os.resolve_exn os "handle_mm_fault" in
  Os.set_trace os (Some (fun a _ -> if a = f then incr hits));
  let _ = Os.spawn os ~name:"faulty" [ Action.Fault; Action.Fault; Action.Exit ] in
  Os.run os;
  check_int "two faults" 2 !hits

let test_os_sleep_action_duration () =
  (* Sleep parks for the requested number of rounds, not the default *)
  let os = fresh_os () in
  let p = Os.spawn os ~name:"sleeper" [ Action.Sleep 6; Action.Exit ] in
  Os.run os;
  check_bool "exited" true (Process.is_exited p);
  check_bool "took at least 6 rounds" true (Os.round os >= 6)

let test_os_module_area_exhaustion () =
  let os = fresh_os () in
  let big =
    (* each module ~64KB of functions + guard page; area is 1MB *)
    List.init 120 (fun i ->
        Fc_kernel.Kfunc.v ~size:512 ~sub:"big" (Printf.sprintf "big_fn_%03d" i) [])
  in
  match
    List.init 20 (fun i -> Os.load_module_fns os ~name:(Printf.sprintf "big%d" i) big)
  with
  | exception Os.Guest_panic _ -> ()
  | _ -> Alcotest.fail "expected module area exhaustion"

let test_os_spawn_limit () =
  let os = fresh_os () in
  match
    for _ = 1 to 250 do
      ignore (Os.spawn os ~name:"p" [ Action.Exit ])
    done
  with
  | exception Os.Guest_panic _ -> ()
  | () -> Alcotest.fail "expected spawn limit"

let test_os_quantum_interleaving () =
  (* with quantum 1 and two CPU-bound processes, the scheduler alternates *)
  let os = fresh_os ~config:{ Os.default_config with quantum = 1 } () in
  let mk name = Os.spawn os ~name (Action.repeat 5 [ Action.Compute 100 ] @ [ Action.Exit ]) in
  let _a = mk "alpha" and _b = mk "beta" in
  Os.run os;
  check_bool "many switches under quantum 1" true (Os.context_switches os >= 8)

let test_os_max_rounds_guard () =
  let os = fresh_os ~config:{ Os.default_config with wake_delay = 10 } () in
  let _ = Os.spawn os ~name:"napper" (Action.repeat 50 [ Action.Sleep 10 ] @ [ Action.Exit ]) in
  match Os.run ~max_rounds:5 os with
  | exception Os.Guest_panic _ -> ()
  | () -> Alcotest.fail "expected round budget exhaustion"

let test_os_until_stops_early () =
  let os = fresh_os () in
  let p = Os.spawn os ~name:"w" (Action.repeat 50 [ Action.Syscall "getpid" ] @ [ Action.Exit ]) in
  Os.run ~until:(fun os -> Os.round os >= 3) os;
  check_bool "stopped before completion" true (not (Process.is_exited p));
  (* and can be resumed *)
  Os.run os;
  check_bool "finishes when resumed" true (Process.is_exited p)

let tc name f = Alcotest.test_case name `Quick f
let tc_slow name f = Alcotest.test_case name `Slow f

let suites =
  [
    ( "machine.cpu",
      [
        tc "trivial path returns" test_cpu_returned;
        tc "frame chain" test_cpu_frame_chain;
        tc "ud2 exits with invalid opcode" test_cpu_ud2;
        tc "unknown opcode is invalid opcode" test_cpu_unknown_opcode;
        tc "breakpoint fires and resumes with skip" test_cpu_breakpoint_and_skip;
        tc "yield blocks with advanced eip" test_cpu_blocked_advances;
        tc "conditional branch oracle" test_cpu_branch_oracle;
        tc "indirect dispatch" test_cpu_dispatch;
        tc "dispatch underflow faults" test_cpu_dispatch_underflow;
        tc "unmapped code faults" test_cpu_unmapped_code;
        tc "runaway execution faults" test_cpu_runaway;
      ] );
    ( "machine.os",
      [
        tc "boot" test_os_boot;
        tc "simple syscalls run" test_os_simple_syscalls;
        tc_slow "every syscall variant completes" test_os_every_syscall_variant_executes;
        tc "blocking syscall resumes" test_os_blocking_syscall_resumes;
        tc "two processes round-robin" test_os_two_processes_round_robin;
        tc "VMI tracks context switches" test_os_current_task_vmi_tracks_switches;
        tc "timer interrupts fire" test_os_timer_interrupts_fire;
        tc "runtime clocksource uses kvmclock" test_os_clocksource_selects_kvmclock;
        tc "irq injection" test_os_inject_irq;
        tc "itimer expiry path" test_os_itimer_path;
        tc "module hide (VMI vs ground truth)" test_os_module_load_hide;
        tc "rootkit module load + syscall rewrite" test_os_rootkit_module_load;
        tc "guest panic without handler" test_os_guest_panic_without_handler;
        tc "schedule_at_round" test_os_schedule_at_round;
        tc "fault action" test_os_fault_action;
        tc "sleep action duration" test_os_sleep_action_duration;
        tc "module area exhaustion" test_os_module_area_exhaustion;
        tc "spawn limit" test_os_spawn_limit;
        tc "quantum interleaving" test_os_quantum_interleaving;
        tc "max_rounds guard" test_os_max_rounds_guard;
        tc "until predicate stops and resumes" test_os_until_stops_early;
      ] );
  ]
