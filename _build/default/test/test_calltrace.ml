module Action = Fc_machine.Action
module Os = Fc_machine.Os
module Calltrace = Fc_profiler.Calltrace

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let image () = Lazy.force Test_env.image

let rec find_node name (n : Calltrace.node) =
  if n.Calltrace.fn = name then Some n
  else List.find_map (find_node name) n.Calltrace.children

let test_trace_getpid () =
  match Calltrace.trace_syscall (image ()) "getpid" with
  | [ n ] ->
      Alcotest.(check string) "root" "sys_getpid" n.Calltrace.fn;
      check_int "leaf" 0 (List.length n.Calltrace.children)
  | l -> Alcotest.failf "expected one tree, got %d" (List.length l)

let test_trace_read_ext4_shape () =
  match Calltrace.trace_syscall (image ()) "read:ext4" with
  | [ n ] ->
      Alcotest.(check string) "root" "sys_read" n.Calltrace.fn;
      (* the vfs dispatch chain appears in order *)
      check_bool "vfs_read" true (find_node "vfs_read" n <> None);
      check_bool "security hook" true (find_node "apparmor_file_permission" n <> None);
      check_bool "fs op via dispatch" true (find_node "ext4_file_read" n <> None);
      check_bool "no write path" true (find_node "ext4_file_write" n = None);
      check_bool "substantial tree" true (Calltrace.node_count n > 8)
  | l -> Alcotest.failf "expected one tree, got %d" (List.length l)

let test_trace_blocking_syscall_single_tree () =
  (* a blocking poll spans a reschedule; the tree must still be one
     coherent unit *)
  match Calltrace.trace_syscall (image ()) "poll:pipe" with
  | [ n ] ->
      Alcotest.(check string) "root" "sys_poll" n.Calltrace.fn;
      check_bool "pipe_poll reached" true (find_node "pipe_poll" n <> None)
  | l -> Alcotest.failf "expected one tree, got %d" (List.length l)

let test_trace_matches_dispatch_declaration () =
  (* every declared dispatch target of a variant must appear in its tree *)
  List.iter
    (fun name ->
      let sc = Fc_kernel.Syscalls.find_exn name in
      match Calltrace.trace_syscall (image ()) name with
      | [ n ] ->
          List.iter
            (fun d ->
              if d <> "@clocksource" && find_node d n = None then
                Alcotest.failf "%s: dispatch target %s missing from tree" name d)
            sc.Fc_kernel.Syscalls.dispatch
      | l -> Alcotest.failf "%s: expected one tree, got %d" name (List.length l))
    [ "write:ext4"; "bind:udp"; "sendfile:tcp"; "ioctl:drm:exec"; "recvmsg:packet" ]

let test_trace_session_filters_pid () =
  let os = Os.create (image ()) in
  let watched = Os.spawn os ~name:"watched" [ Action.Syscall "getpid"; Action.Exit ] in
  let _other = Os.spawn os ~name:"other" [ Action.Syscall "brk"; Action.Exit ] in
  let s = Calltrace.start os ~target_pid:watched.Fc_machine.Process.pid in
  Os.run os;
  Calltrace.stop s;
  let roots = Calltrace.roots s in
  check_bool "has trees" true (roots <> []);
  check_bool "other's brk absent" true
    (List.for_all (fun n -> find_node "sys_brk" n = None) roots);
  check_bool "watched's exit present" true
    (List.exists (fun n -> find_node "do_exit" n <> None || n.Calltrace.fn = "sys_exit_group") roots)

let test_pp_tree () =
  match Calltrace.trace_syscall (image ()) "read:pipe" with
  | [ n ] ->
      let text = Format.asprintf "%a" (Calltrace.pp_tree ~max_depth:3) n in
      let contains sub =
        let m = String.length text and k = String.length sub in
        let rec go i = i + k <= m && (String.sub text i k = sub || go (i + 1)) in
        go 0
      in
      check_bool "renders root" true (contains "sys_read");
      check_bool "renders indentation" true (contains "  fget")
  | _ -> Alcotest.fail "expected one tree"

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "calltrace",
      [
        tc "leaf syscall" test_trace_getpid;
        tc "vfs read tree shape" test_trace_read_ext4_shape;
        tc "blocking syscall forms one tree" test_trace_blocking_syscall_single_tree;
        tc "dispatch targets appear in trees" test_trace_matches_dispatch_declaration;
        tc "session filters by pid" test_trace_session_filters_pid;
        tc "tree rendering" test_pp_tree;
      ] );
  ]
