examples/similarity_study.mli:
