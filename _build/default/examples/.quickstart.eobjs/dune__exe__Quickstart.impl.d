examples/quickstart.ml: Fc_core Fc_hypervisor Fc_kernel Fc_machine Fc_profiler Format List Printf
