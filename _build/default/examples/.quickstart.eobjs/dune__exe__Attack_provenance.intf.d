examples/attack_provenance.mli:
