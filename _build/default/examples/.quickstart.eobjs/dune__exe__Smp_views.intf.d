examples/smp_views.mli:
