examples/inview_attack.mli:
