examples/attack_provenance.ml: Fc_apps Fc_attacks Fc_core Fc_hypervisor Fc_kernel Fc_machine Format List Printf String
