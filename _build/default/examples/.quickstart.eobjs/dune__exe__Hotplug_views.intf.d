examples/hotplug_views.mli:
