examples/quickstart.mli:
