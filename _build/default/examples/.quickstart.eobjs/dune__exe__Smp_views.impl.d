examples/smp_views.ml: Fc_apps Fc_core Fc_hypervisor Fc_kernel Fc_machine List Printf String
