examples/similarity_study.ml: Fc_apps Fc_kernel Fc_profiler Fc_ranges List Printf String
