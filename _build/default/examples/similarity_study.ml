(* The quantitative study behind the paper's motivation (§II-A): profile
   a few applications of different categories and compare their kernel
   views with the similarity index (Equation 1).

   Run with:  dune exec examples/similarity_study.exe *)

module App = Fc_apps.App
module View_config = Fc_profiler.View_config
module Range_list = Fc_ranges.Range_list

let () =
  let image = Fc_kernel.Image.build_exn () in
  let apps = [ "top"; "firefox"; "apache"; "vsftpd"; "eog"; "totem" ] in
  Printf.printf "profiling %s ...\n%!" (String.concat ", " apps);
  let configs =
    List.map (fun name -> (name, App.profile image (App.find_exn name))) apps
  in
  List.iter
    (fun (name, c) ->
      Printf.printf "  %-8s %4d KB kernel code in %d ranges\n" name
        (View_config.size c / 1024) (View_config.len c))
    configs;
  print_newline ();
  let cfg n = List.assoc n configs in
  let show a b =
    let s = View_config.similarity (cfg a) (cfg b) in
    let overlap =
      Range_list.size
        (Range_list.inter (cfg a).View_config.ranges (cfg b).View_config.ranges)
    in
    Printf.printf "  %-8s vs %-8s overlap %4d KB   similarity %.1f%%\n" a b
      (overlap / 1024) (100. *. s)
  in
  print_endline "orthogonal application types share little kernel code:";
  show "top" "firefox";
  show "top" "apache";
  print_endline "similar applications share most of it:";
  show "apache" "vsftpd";
  show "eog" "totem";
  print_newline ();
  print_endline
    "=> a single system-wide minimized kernel would expose every application";
  print_endline
    "   to the union of all these code paths; per-application views do not."
