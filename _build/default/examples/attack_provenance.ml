(* Attack provenance: the paper's case studies I and IV.

   Injectso implants a UDP server into top; KBeast hooks the read path
   from a hidden kernel module under bash's view.  Both are revealed by
   the kernel code recovery log, with full call-stack provenance.

   Run with:  dune exec examples/attack_provenance.exe *)

module Os = Fc_machine.Os
module Hypervisor = Fc_hypervisor.Hypervisor
module Facechange = Fc_core.Facechange
module Recovery_log = Fc_core.Recovery_log
module App = Fc_apps.App
module Attack = Fc_attacks.Attack

let run_case image attack_name =
  let attack = Attack.find_exn attack_name in
  let app = App.find_exn attack.Attack.host in
  Printf.printf "=== %s (%s) against %s ===\n" attack.Attack.name
    (Attack.kind_label attack.Attack.kind)
    attack.Attack.host;
  Printf.printf "payload: %s\n\n" attack.Attack.payload;

  (* profile the host under its normal workload, clean environment *)
  let view = App.profile image app in

  (* runtime: arm the attack, then enforce the host's kernel view *)
  let os = Os.create ~config:(App.os_config app) image in
  let hyp = Hypervisor.attach os in
  let fc = Facechange.enable hyp in
  let proc = Os.spawn os ~name:app.App.name (app.App.script 3) in
  attack.Attack.launch os proc;
  let (_ : int) = Facechange.load_view fc view in
  Os.run os;

  let log = Facechange.log fc in
  Printf.printf "recoveries: %d; hidden-module (UNKNOWN) frames: %b\n\n"
    (Recovery_log.count log) (Recovery_log.any_unknown log);
  List.iter
    (fun e -> Format.printf "%a@." Recovery_log.pp_entry e)
    (Recovery_log.entries log);
  let evidence =
    List.filter
      (fun n -> List.mem n attack.Attack.signature)
      (Recovery_log.recovered_names log)
  in
  Printf.printf "attack evidence (signature hits): %s\n" (String.concat ", " evidence);
  (* proactive cross-view validation: sweep the module area for code no
     VMI-visible module claims (locates a self-hiding rootkit directly) *)
  (match Fc_core.Integrity.scan_module_area hyp with
  | [] -> Printf.printf "integrity scan: no unaccounted module-area code\n\n"
  | findings ->
      List.iter
        (fun f -> Format.printf "integrity scan: %a@." Fc_core.Integrity.pp_finding f)
        findings;
      print_newline ())

let () =
  let image = Fc_kernel.Image.build_exn () in
  run_case image "Injectso";
  run_case image "KBeast"
