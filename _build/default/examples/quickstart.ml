(* Quickstart: profile an application, enforce its kernel view, and watch
   FACE-CHANGE catch an out-of-view kernel request.

   Run with:  dune exec examples/quickstart.exe *)

module Action = Fc_machine.Action
module Os = Fc_machine.Os
module Hypervisor = Fc_hypervisor.Hypervisor
module Profiler = Fc_profiler.Profiler
module Facechange = Fc_core.Facechange
module Recovery_log = Fc_core.Recovery_log

let () =
  (* 1. Build the synthetic guest kernel image (the paper's Linux 2.6.32
        stand-in: ~1200 functions across 25+ subsystems). *)
  let image = Fc_kernel.Image.build_exn () in
  Printf.printf "kernel image: %d KB of text, %d functions\n\n"
    ((Fc_kernel.Image.text_end image - Fc_kernel.Image.text_base image) / 1024)
    (List.length (Fc_kernel.Image.functions image));

  (* 2. Profiling phase (paper §III-A): run a small log-reader workload in
        the QEMU-like profiling environment and record every kernel range
        executed in its context. *)
  let workload =
    Action.repeat 10
      [
        Action.Syscall "open:ext4";
        Action.Syscall "read:ext4";
        Action.Syscall "close";
        Action.Syscall "write:tty";
        Action.Compute 2_000;
      ]
    @ [ Action.Exit ]
  in
  let config = Profiler.profile_app image ~name:"logreader" workload in
  Printf.printf "profiled kernel view for %s: %d KB in %d ranges\n\n"
    config.Fc_profiler.View_config.app
    (Fc_profiler.View_config.size config / 1024)
    (Fc_profiler.View_config.len config);

  (* 3. Runtime phase (paper §III-B): boot a fresh guest, attach the
        hypervisor, enable FACE-CHANGE, and load the view.  The view is
        selected automatically whenever the guest schedules "logreader". *)
  let os = Os.create ~config:Os.profiling_config image in
  let hyp = Hypervisor.attach os in
  let fc = Facechange.enable hyp in
  let (_ : int) = Facechange.load_view fc config in

  (* 4. Run the same workload — plus a payload it was never profiled
        with: a UDP socket (think injected shellcode). *)
  let payload =
    [ Action.Syscall "socket:udp"; Action.Syscall "bind:udp" ]
  in
  let p = Os.spawn os ~name:"logreader" (payload @ workload) in
  Os.run os;

  Printf.printf "process finished: %b (recovery is silent: the guest never noticed)\n"
    (Fc_machine.Process.is_exited p);
  Printf.printf "kernel view switches: %d (+%d avoided by the same-view optimization)\n"
    (Facechange.switches fc) (Facechange.switch_skips fc);
  Printf.printf "kernel code recoveries: %d\n\n" (Facechange.recoveries fc);

  print_endline "kernel code recovery log (the forensic evidence):";
  Format.printf "%a@." Recovery_log.pp (Facechange.log fc)
