(* The paper's admitted blind spot (§V-A) — and its proposed fix.

   A compromised web server hosts a command-and-control beacon that uses
   ONLY kernel functionality already in apache's kernel view (sockets,
   connect, send).  Kernel code recovery sees nothing: no view boundary is
   ever crossed.  The behavior monitor — the paper's future-work proposal,
   implemented here — still catches it, because the beacon's syscall
   transitions never appeared in apache's behavioral profile.

   Run with:  dune exec examples/inview_attack.exe *)

module Action = Fc_machine.Action
module Os = Fc_machine.Os
module Hypervisor = Fc_hypervisor.Hypervisor
module Facechange = Fc_core.Facechange
module Behavior_monitor = Fc_core.Behavior_monitor
module Behavior = Fc_profiler.Behavior
module App = Fc_apps.App

(* The parasite C&C server (the paper's own example): bind a control
   port, accept commands, respond — every kernel path it takes is already
   in a web server's view. *)
let parasite =
  [
    Action.Syscall "socket:tcp";
    Action.Syscall "bind:tcp";
    Action.Syscall "listen:tcp";
    Action.Syscall "accept:tcp";
    Action.Syscall "recv:tcp";
    Action.Syscall "send:tcp";
    Action.Syscall "close:tcp";
  ]

let () =
  let image = Fc_kernel.Image.build_exn () in
  let apache = App.find_exn "apache" in

  Printf.printf "profiling apache (code view + behavior profile)...\n%!";
  let view = App.profile image apache in
  let behavior =
    Behavior.profile_app ~config:(App.os_config apache) image ~name:"apache"
      (apache.App.script 12)
  in
  Printf.printf "behavior profile: %d handlers, %d transitions\n\n"
    (List.length behavior.Behavior.handlers)
    (List.length behavior.Behavior.bigrams);

  let os = Os.create ~config:(App.os_config apache) image in
  let hyp = Hypervisor.attach os in
  let fc = Facechange.enable hyp in
  let (_ : int) = Facechange.load_view fc view in
  let monitor = Behavior_monitor.attach hyp behavior in

  (* infect apache mid-run with the in-view beacon *)
  let proc = Os.spawn os ~name:"apache" (apache.App.script 3) in
  Os.schedule_at_round os 4 (fun _ ->
      Fc_machine.Process.prepend_script proc parasite);
  Os.run os;

  Printf.printf "kernel code recoveries: %d   <- the paper's blind spot: zero\n"
    (Facechange.recoveries fc);
  Printf.printf "syscalls observed by the behavior monitor: %d\n"
    (Behavior_monitor.syscalls_seen monitor);
  let alerts = Behavior_monitor.alerts monitor in
  Printf.printf "behavior alerts: %d\n\n" (List.length alerts);
  List.iter
    (fun a -> Format.printf "  %a@." Behavior_monitor.pp_alert a)
    alerts;
  if Facechange.recoveries fc = 0 && alerts <> [] then
    print_endline
      "\n=> invisible to code-view enforcement, caught by behavior profiling."
