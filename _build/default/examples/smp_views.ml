(* Multi-vCPU kernel view switching — the paper's §V-C future work,
   implemented.

   A 2-vCPU guest runs top (pinned to vCPU 0) and apache (pinned to
   vCPU 1) simultaneously.  Each vCPU has its own EPT, so FACE-CHANGE
   enforces a different kernel view on each CPU at the same time; an
   attack against either host is still caught on whichever vCPU it runs.

   Run with:  dune exec examples/smp_views.exe *)

module Action = Fc_machine.Action
module Os = Fc_machine.Os
module Hypervisor = Fc_hypervisor.Hypervisor
module Facechange = Fc_core.Facechange
module Recovery_log = Fc_core.Recovery_log
module App = Fc_apps.App

let () =
  let image = Fc_kernel.Image.build_exn () in
  let top = App.find_exn "top" and apache = App.find_exn "apache" in

  Printf.printf "profiling top and apache...\n%!";
  let view_top = App.profile image top in
  let view_apache = App.profile image apache in

  let os = Os.create ~config:(App.os_config apache) ~vcpus:2 image in
  let hyp = Hypervisor.attach os in
  let fc = Facechange.enable hyp in
  let (_ : int) = Facechange.load_view fc view_top in
  let (_ : int) = Facechange.load_view fc view_apache in

  let p_top = Os.spawn ~cpu:0 os ~name:"top" (top.App.script 4) in
  let p_apache = Os.spawn ~cpu:1 os ~name:"apache" (apache.App.script 4) in

  (* inject a UDP backdoor into top mid-run: it must be caught on vCPU 0
     while apache keeps its own view on vCPU 1 *)
  Os.schedule_at_round os 5 (fun _ ->
      Fc_machine.Process.prepend_script p_top
        [ Action.Syscall "socket:udp"; Action.Syscall "bind:udp";
          Action.Syscall "recvfrom:udp" ]);

  (* peek at the per-vCPU active views mid-run *)
  Os.schedule_at_round os 8 (fun _ ->
      Printf.printf "[round 8] active view: vcpu0=%d (top) vcpu1=%d (apache)\n"
        (Facechange.active_index ~vid:0 fc)
        (Facechange.active_index ~vid:1 fc));

  Os.run os;

  Printf.printf "\nboth completed: %b\n"
    (Fc_machine.Process.is_exited p_top && Fc_machine.Process.is_exited p_apache);
  Printf.printf "view switches: %d (+%d same-view skips)\n"
    (Facechange.switches fc) (Facechange.switch_skips fc);
  Printf.printf "recoveries: %d, all attributed to: %s\n"
    (Facechange.recoveries fc)
    (String.concat ", "
       (List.sort_uniq compare
          (List.map
             (fun e -> e.Recovery_log.comm)
             (Recovery_log.entries (Facechange.log fc)))));
  print_newline ();
  print_string (Fc_core.Report.render (Facechange.log fc))
