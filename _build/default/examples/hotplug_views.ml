(* Hot-plugging kernel views (the paper's flexibility goal, §III-B4) and
   the cross-view recovery it can trigger (Fig. 3).

   A process blocks inside the kernel (pipe_poll) under the full view;
   its customized view is then loaded without interrupting the guest.
   When the process is rescheduled it resumes mid-kernel under the new
   view: functions already on its stack are missing and get recovered —
   lazily where the UD2 fill traps, instantly where an odd return address
   would misdecode.  Finally the view is unloaded again, also live.

   Run with:  dune exec examples/hotplug_views.exe *)

module Action = Fc_machine.Action
module Os = Fc_machine.Os
module Hypervisor = Fc_hypervisor.Hypervisor
module Facechange = Fc_core.Facechange
module Recovery_log = Fc_core.Recovery_log
module App = Fc_apps.App

let () =
  let image = Fc_kernel.Image.build_exn () in
  let app = App.find_exn "top" in
  let view = App.profile image app in

  let config = { (App.os_config app) with Os.wake_delay = 3 } in
  let os = Os.create ~config image in
  let hyp = Hypervisor.attach os in
  let fc = Facechange.enable hyp in

  let p =
    Os.spawn os ~name:"top"
      [
        Action.Syscall "getpid";
        Action.Syscall "poll:pipe" (* blocks inside pipe_poll *);
        Action.Syscall "read:proc:stat";
        Action.Sleep 2;
        Action.Syscall "read:proc:stat";
        Action.Sleep 2;
        Action.Syscall "write:tty";
        Action.Exit;
      ]
  in

  (* While the process sleeps mid-kernel, hot-plug its view... *)
  let idx = ref Facechange.full_view_index in
  Os.schedule_at_round os 2 (fun _ ->
      Printf.printf "[round %d] hot-plugging kernel view for top\n" (Os.round os);
      idx := Facechange.load_view fc view);
  (* ...and unload it again later, equally live. *)
  Os.schedule_at_round os 8 (fun _ ->
      Printf.printf "[round %d] unloading the view (back to the full kernel)\n"
        (Os.round os);
      Facechange.unload_view fc !idx);

  Os.run os;
  Printf.printf "\nprocess completed: %b\n" (Fc_machine.Process.is_exited p);
  Printf.printf "view switches: %d, recoveries: %d\n\n" (Facechange.switches fc)
    (Facechange.recoveries fc);
  List.iter
    (fun (e : Recovery_log.entry) ->
      Printf.printf "recovered %s%s\n"
        (match e.Recovery_log.recovered with (_, _, s) :: _ -> s | [] -> "?")
        (match e.Recovery_log.instant with
        | [] -> ""
        | l ->
            Printf.sprintf "  [instant: %s]"
              (String.concat ", " (List.map (fun (_, _, s) -> s) l))))
    (Recovery_log.entries (Facechange.log fc))
