let vm_exit = 2500
let breakpoint_handler = 1200
let invalid_opcode_handler = 1500
let ept_dir_switch = 150
let backtrace_frame = 60
let code_copy_per_16_bytes = 4
let view_page_init = 250
