lib/hypervisor/cost.mli:
