lib/hypervisor/hypervisor.ml: Cost Fc_isa Fc_kernel Fc_machine Fc_mem Hashtbl List Printf
