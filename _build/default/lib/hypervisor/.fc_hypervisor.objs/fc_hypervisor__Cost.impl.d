lib/hypervisor/cost.ml:
