lib/hypervisor/hypervisor.mli: Fc_kernel Fc_machine Fc_mem
