(** Deterministic synthetic workload generation.

    Generates syscall scripts from a seed using a linear congruential
    generator — no global randomness, so every script is reproducible.
    Useful for stress/fuzz harnesses and for synthesizing "unknown
    application" workloads (the paper's flexibility goal: profiling new
    applications in independent sessions). *)

type profile =
  | Mixed       (** a bit of everything *)
  | File_heavy  (** ext4 open/read/write/stat *)
  | Net_heavy   (** tcp/udp client-server traffic *)
  | Interactive (** tty/unix-socket/select *)

val script :
  seed:int -> ?profile:profile -> length:int -> unit -> Fc_machine.Action.t list
(** A terminating script of roughly [length] actions (always ends with
    [Exit]).  Scripts only use syscall variants that exist in the
    syscall table; the same (seed, profile, length) always yields the
    same script. *)

val app : seed:int -> ?profile:profile -> ?length:int -> string -> App.t
(** Wrap a synthetic workload as an application model (name given), so it
    can be profiled and enforced like the catalog applications. *)
