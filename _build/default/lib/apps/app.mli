(** Application workload models.

    Each of the paper's 12 evaluated applications is modelled as a syscall
    workload (its test suite, §III-A2) plus the interrupt environment its
    profiling session runs under — e.g. tcpdump's session sees sniffed
    packets, a server's session sees client traffic.  Scripts are
    deterministic; [script n] yields [n] iterations of the app's steady
    state on top of its startup phase. *)

type t = {
  name : string;
  category : string;  (** "server", "interactive", "utility", … *)
  description : string;
  script : int -> Fc_machine.Action.t list;
  irq_env : (Fc_kernel.Irq_paths.source * int) list;
      (** background interrupt mix for this app's profiling/runtime
          sessions: (source, period in cycles) *)
}

val all : t list
(** The 12 applications of Table I, in the paper's order: firefox, totem,
    gvim, apache, vsftpd, top, tcpdump, mysqld, bash, sshd, gzip, eog. *)

val names : string list
val find : string -> t option
val find_exn : string -> t

val os_config : ?clocksource:Fc_kernel.Irq_paths.clocksource -> t -> Fc_machine.Os.config
(** The guest configuration for running this app: the standard profiling
    environment with the app's interrupt mix.  [clocksource] defaults to
    [Acpi_pm] (the QEMU profiling environment); pass [Kvmclock] for
    runtime sessions. *)

val profile :
  ?iterations:int -> Fc_kernel.Image.t -> t -> Fc_profiler.View_config.t
(** Off-line profiling session for this application (default 12
    iterations). *)
