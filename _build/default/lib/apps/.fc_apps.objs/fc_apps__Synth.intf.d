lib/apps/synth.mli: App Fc_machine
