lib/apps/synth.ml: App Array Fc_machine List Printf
