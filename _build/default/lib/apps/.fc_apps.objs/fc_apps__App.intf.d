lib/apps/app.mli: Fc_kernel Fc_machine Fc_profiler
