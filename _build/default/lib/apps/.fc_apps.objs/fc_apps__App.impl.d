lib/apps/app.ml: Fc_kernel Fc_machine Fc_profiler List String
