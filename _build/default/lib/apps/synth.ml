module Action = Fc_machine.Action

type profile = Mixed | File_heavy | Net_heavy | Interactive

(* Deterministic LCG (numerical recipes constants). *)
let lcg state = (state * 1664525) + 1013904223 land max_int

let pools =
  let file =
    [ "open:ext4"; "read:ext4"; "read:ext4:miss"; "write:ext4"; "stat:ext4";
      "lseek"; "fsync:ext4"; "getdents:ext4"; "close"; "fstat" ]
  in
  let net =
    [ "socket:tcp"; "bind:tcp"; "listen:tcp"; "accept:tcp"; "send:tcp";
      "recv:tcp"; "close:tcp"; "socket:udp"; "bind:udp"; "sendto:udp";
      "recvfrom:udp"; "close:udp"; "getsockname"; "setsockopt:tcp" ]
  in
  let tty =
    [ "open:tty"; "read:tty"; "write:tty"; "ioctl:tty"; "select:tty";
      "close:tty"; "socket:unix"; "connect:unix"; "sendmsg:unix";
      "recvmsg:unix"; "close:unix" ]
  in
  let misc =
    [ "getpid"; "getuid"; "gettimeofday"; "brk"; "mmap"; "munmap"; "uname";
      "sigaction"; "kill"; "sigreturn"; "pipe"; "write:pipe"; "read:pipe";
      "fork"; "waitpid"; "getcwd" ]
  in
  function
  | Mixed -> file @ net @ tty @ misc
  | File_heavy -> file @ misc
  | Net_heavy -> net @ misc
  | Interactive -> tty @ misc

let script ~seed ?(profile = Mixed) ~length () =
  let pool = Array.of_list (pools profile) in
  let state = ref (abs seed + 1) in
  let next bound =
    state := lcg !state;
    abs !state mod bound
  in
  let rec go n acc =
    if n = 0 then List.rev (Action.Exit :: acc)
    else
      let act =
        match next 10 with
        | 0 -> Action.Compute (200 + (next 30 * 100))
        | 1 -> Action.Fault
        | _ -> Action.Syscall pool.(next (Array.length pool))
      in
      go (n - 1) (act :: acc)
  in
  go (max 1 length) []

let app ~seed ?(profile = Mixed) ?(length = 40) name =
  {
    App.name;
    category = "synthetic";
    description = Printf.sprintf "synthetic workload (seed %d)" seed;
    irq_env = App.(find_exn "top").App.irq_env;
    script = (fun n -> script ~seed ~profile ~length:(length * max 1 n) ());
  }
