module Action = Fc_machine.Action
module Irq = Fc_kernel.Irq_paths

type t = {
  name : string;
  category : string;
  description : string;
  script : int -> Action.t list;
  irq_env : (Irq.source * int) list;
}

let s v = Action.Syscall v
let c n = Action.Compute n
let rep = Action.repeat

(* Process startup: dynamic linking and mapping, shared by every app. *)
let startup =
  [
    s "brk"; s "mmap"; s "access"; s "open:ext4"; s "fstat"; s "read:ext4";
    s "mmap"; s "close"; s "open:ext4"; s "read:ext4"; s "mmap"; s "close";
    Action.Fault; Action.Fault; s "mprotect"; s "getpid"; s "getuid";
    s "sigaction"; s "sigprocmask"; s "nanosleep"; s "gettimeofday";
  ]

let teardown = [ s "munmap"; Action.Exit ]

(* Default desktop-ish interrupt environment. *)
let quiet_env =
  [
    (Irq.Net_rx_tcp, 160_000);
    (Irq.Keyboard_console, 140_000);
    (Irq.Disk, 110_000);
  ]

let desktop_env =
  [
    (Irq.Net_rx_tcp, 120_000);
    (Irq.Keyboard_evdev, 60_000);
    (Irq.Keyboard_console, 150_000);
    (Irq.Disk, 90_000);
  ]

let server_env =
  [
    (Irq.Net_rx_tcp, 40_000);
    (Irq.Net_rx_udp, 150_000);
    (Irq.Disk, 70_000);
    (Irq.Keyboard_console, 200_000);
  ]

let firefox =
  {
    name = "firefox";
    category = "interactive";
    description = "web browser: X11 + GPU rendering + TCP + disk cache + audio";
    irq_env = desktop_env;
    script =
      (fun n ->
        startup
        @ [ s "socket:unix"; s "connect:unix"; s "socket:tcp"; s "connect:tcp";
            s "epoll_create"; s "epoll_ctl"; s "open:drm"; s "open:snd";
            s "shmget"; s "shmat"; s "clone"; s "clone";
            s "socketpair:unix"; s "eventfd"; s "inotify_init"; s "inotify_add";
            s "open:sysfs"; s "read:sysfs"; s "close"; s "getrlimit";
            (* DNS resolution over UDP *)
            s "socket:udp"; s "bind:udp"; s "sendto:udp"; s "recvfrom:udp" ]
        @ rep n
            [
              s "recvmsg:unix"; s "sendmsg:unix"; s "select:unix";
              s "send:tcp"; s "recv:tcp"; s "epoll_wait:tcp";
              s "ioctl:drm:exec"; s "ioctl:drm:vblank"; s "ioctl:drm:mmap";
              s "open:ext4"; s "read:ext4"; s "write:ext4"; s "close";
              s "futex:wait"; s "futex:wake"; s "ioctl:snd:write";
              s "write:eventfd"; s "read:eventfd"; s "madvise";
              s "gettimeofday"; Action.Fault; c 3_000;
            ]
        @ [ s "shmdt"; s "close:tcp"; s "close:unix" ]
        @ teardown);
  }

let totem =
  {
    name = "totem";
    category = "interactive";
    description = "media player: disk streaming + audio + video + X11";
    irq_env = desktop_env;
    script =
      (fun n ->
        startup
        @ [ s "socket:unix"; s "connect:unix"; s "open:snd"; s "open:drm";
            s "ioctl:snd:prepare"; s "inotify_init"; s "inotify_add";
            s "open:ext4" ]
        @ rep n
            [
              s "read:ext4:miss"; s "read:ext4"; s "lseek";
              s "ioctl:snd:write"; s "ioctl:drm:exec"; s "ioctl:drm:vblank";
              s "recvmsg:unix"; s "select:unix"; s "gettimeofday";
              Action.Fault; c 4_000;
            ]
        @ [ s "close"; s "close:unix" ] @ teardown);
  }

let gvim =
  {
    name = "gvim";
    category = "interactive";
    description = "GUI editor: X11 + file editing";
    irq_env = desktop_env;
    script =
      (fun n ->
        startup
        @ [ s "socket:unix"; s "connect:unix"; s "open:drm"; s "open:ext4";
            s "read:ext4"; s "fstat"; s "getcwd"; s "inotify_init"; s "inotify_add" ]
        @ rep n
            [
              s "recvmsg:unix"; s "sendmsg:unix"; s "select:unix";
              s "ioctl:drm:exec"; s "read:ext4"; s "write:ext4"; s "stat:ext4";
              s "rename:ext4"; s "fsync:ext4"; s "gettimeofday"; c 2_500;
            ]
        @ [ s "close"; s "close:unix" ] @ teardown);
  }

let apache =
  {
    name = "apache";
    category = "server";
    description = "web server: TCP accept/serve loop over disk files";
    irq_env = server_env;
    script =
      (fun n ->
        startup
        @ [ s "uname"; s "getrlimit"; s "setrlimit"; s "socket:tcp";
            s "setsockopt:tcp"; s "getsockopt"; s "bind:tcp"; s "listen:tcp";
            s "epoll_create"; s "epoll_ctl"; s "eventfd"; s "open:ext4" ]
        @ rep n
            [
              s "epoll_wait:tcp"; s "accept:tcp"; s "recv:tcp"; s "stat:ext4";
              s "open:ext4"; s "read:ext4"; s "sendfile:tcp"; s "send:tcp"; s "write:ext4";
              s "close"; s "close:tcp"; s "gettimeofday"; c 1_500;
            ]
        @ [ s "shutdown:tcp" ] @ teardown);
  }

let vsftpd =
  {
    name = "vsftpd";
    category = "server";
    description = "ftp server: TCP control/data + disk transfer";
    irq_env = server_env;
    script =
      (fun n ->
        startup
        @ [ s "socket:tcp"; s "setsockopt:tcp"; s "bind:tcp"; s "listen:tcp";
            (* vsftpd arms SIGALRM-based session timeouts *)
            s "sigaction"; s "setitimer"; s "getrlimit"; s "setrlimit" ]
        @ rep n
            [
              s "select:tcp"; s "accept:tcp"; s "recv:tcp"; s "sigreturn"; s "fork";
              s "open:ext4"; s "read:ext4"; s "read:ext4:miss"; s "sendfile:tcp";
              s "send:tcp"; s "write:ext4"; s "chmod:ext4"; s "utime:ext4";
              s "stat:ext4"; s "getdents:ext4"; s "close";
              s "close:tcp"; s "waitpid"; c 1_500;
            ]
        @ [ s "shutdown:tcp" ] @ teardown);
  }

let top =
  {
    name = "top";
    category = "utility";
    description = "task manager: procfs statistics to the terminal";
    irq_env = quiet_env;
    script =
      (fun n ->
        startup
        @ [ s "open:tty"; s "ioctl:tty"; s "uname" ]
        @ rep n
            [
              s "sysinfo"; s "open:proc"; s "read:proc:stat"; s "read:proc:meminfo";
              s "read:proc:loadavg"; s "getdents:proc"; s "read:proc:pid";
              s "close"; s "write:tty"; s "select:tty"; s "nanosleep"; c 1_000;
            ]
        @ [ s "close:tty" ] @ teardown);
  }

let tcpdump =
  {
    name = "tcpdump";
    category = "utility";
    description = "packet sniffer: AF_PACKET tap to the terminal";
    irq_env =
      [
        (Irq.Net_rx_sniffed_tcp, 45_000);
        (Irq.Net_rx_sniffed_udp, 90_000);
        (Irq.Keyboard_console, 180_000);
        (Irq.Disk, 140_000);
      ];
    script =
      (fun n ->
        startup
        @ [ s "socket:netlink"; s "bind:netlink"; s "sendmsg:netlink";
            s "recvmsg:netlink"; s "close";
            s "socket:packet"; s "bind:packet"; s "setsockopt:packet";
            s "open:tty" ]
        @ rep n
            [
              s "recvmsg:packet"; s "recvmsg:packet"; s "write:tty";
              s "select:packet"; s "sendmsg:packet"; s "gettimeofday"; c 800;
            ]
        @ [ s "close:tty" ] @ teardown);
  }

let mysqld =
  {
    name = "mysqld";
    category = "server";
    description = "database server: TCP + unix socket clients, journaled disk I/O";
    irq_env = server_env;
    script =
      (fun n ->
        startup
        @ [ s "setrlimit"; s "mlock"; s "socket:tcp"; s "bind:tcp"; s "listen:tcp";
            s "socket:unix"; s "bind:unix"; s "open:ext4"; s "fallocate:ext4";
            s "epoll_create"; s "epoll_ctl" ]
        @ rep n
            [
              s "epoll_wait:tcp"; s "accept:tcp"; s "recv:tcp"; s "read:ext4";
              s "lseek"; s "writev:ext4"; s "write:ext4"; s "fsync:ext4"; s "send:tcp";
              s "futex:wait"; s "futex:wake"; s "recvmsg:unix:dgram";
              s "close:tcp"; s "gettimeofday"; c 2_500;
            ]
        @ [ s "close:unix" ] @ teardown);
  }

let bash =
  {
    name = "bash";
    category = "interactive";
    description = "shell: terminal line discipline, job control, pipelines";
    irq_env =
      [
        (Irq.Keyboard_console, 30_000);
        (Irq.Net_rx_tcp, 200_000);
        (Irq.Disk, 120_000);
      ];
    script =
      (fun n ->
        startup
        @ [ s "open:tty"; s "ioctl:tty"; s "sigaction"; s "sigaction";
            s "getcwd"; s "umask"; s "uname" ]
        @ rep n
            [
              s "read:tty"; s "fork"; s "execve"; s "waitpid"; s "pipe";
              s "write:pipe"; s "read:pipe"; s "dup2"; s "write:tty";
              s "stat:ext4"; s "getdents:ext4"; s "kill"; s "sigreturn";
              s "close"; c 1_200;
            ]
        @ [ s "close:tty" ] @ teardown);
  }

let sshd =
  {
    name = "sshd";
    category = "server";
    description = "ssh daemon: TCP sessions, pty allocation, child shells";
    irq_env = server_env;
    script =
      (fun n ->
        startup
        @ [ s "socket:tcp"; s "setsockopt:tcp"; s "bind:tcp"; s "listen:tcp";
            s "sigaction"; s "sigaltstack"; s "getrlimit" ]
        @ rep n
            [
              s "select:tcp"; s "accept:tcp"; s "setsockopt:tcp:md5"; s "recv:tcp";
              s "fork"; s "execve"; s "open:tty"; s "write:pty"; s "read:tty";
              s "send:tcp"; s "open:ext4"; s "read:ext4"; s "writev:ext4";
              s "kill"; s "waitpid"; s "close:tty"; s "close"; s "close:tcp";
              s "gettimeofday"; c 2_000;
            ]
        @ [ s "shutdown:tcp" ] @ teardown);
  }

let gzip =
  {
    name = "gzip";
    category = "utility";
    description = "compressor: sequential disk read/write, CPU bound";
    irq_env = quiet_env;
    script =
      (fun n ->
        startup
        @ [ s "open:ext4"; s "fstat"; s "open:ext4" ]
        @ rep n
            [
              s "read:ext4"; s "read:ext4:miss"; c 6_000; s "write:ext4";
              Action.Fault; s "brk";
            ]
        @ [ s "utime:ext4"; s "chmod:ext4"; s "unlink:ext4"; s "close"; s "close" ]
        @ teardown);
  }

let eog =
  {
    name = "eog";
    category = "interactive";
    description = "image viewer: disk decode + X11 + GPU blit";
    irq_env = desktop_env;
    script =
      (fun n ->
        startup
        @ [ s "socket:unix"; s "connect:unix"; s "open:drm"; s "open:ext4";
            s "inotify_init"; s "inotify_add"; s "fstat" ]
        @ rep n
            [
              s "read:ext4:miss"; s "read:ext4"; s "mmap"; Action.Fault;
              s "recvmsg:unix"; s "sendmsg:unix"; s "select:unix";
              s "ioctl:drm:mode"; s "ioctl:drm:mmap"; s "ioctl:drm:exec";
              s "stat:ext4"; s "getdents:ext4"; s "munmap"; c 3_500;
            ]
        @ [ s "close"; s "close:unix" ] @ teardown);
  }

let all =
  [ firefox; totem; gvim; apache; vsftpd; top; tcpdump; mysqld; bash; sshd; gzip; eog ]

let names = List.map (fun a -> a.name) all
let find name = List.find_opt (fun a -> String.equal a.name name) all

let find_exn name =
  match find name with
  | Some a -> a
  | None -> invalid_arg ("App.find_exn: unknown application " ^ name)

let os_config ?(clocksource = Irq.Acpi_pm) t =
  {
    Fc_machine.Os.profiling_config with
    clocksource;
    background_irqs = t.irq_env;
  }

let profile ?(iterations = 12) image t =
  Fc_profiler.Profiler.profile_app ~config:(os_config t) image ~name:t.name
    (t.script iterations)
