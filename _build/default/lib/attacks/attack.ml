module Action = Fc_machine.Action
module Os = Fc_machine.Os
module Process = Fc_machine.Process
module Kfunc = Fc_kernel.Kfunc
module Syscalls = Fc_kernel.Syscalls

type kind =
  | Online_infection of string
  | Offline_infection of string
  | Kernel_rootkit

type t = {
  name : string;
  kind : kind;
  host : string;
  payload : string;
  note : string;
  launch : Os.t -> Process.t -> unit;
  signature : string list;
}

let s v = Action.Syscall v

(* Online infection: the payload detours the victim's execution a few
   scheduler rounds into its run. *)
let inject_online payload os (proc : Process.t) =
  Os.schedule_at_round os (Os.round os + 3) (fun _ -> Process.prepend_script proc payload)

(* Offline infection: the trojaned binary runs the payload at entry. *)
let inject_offline payload _os (proc : Process.t) = Process.prepend_script proc payload

(* ------------------------------------------------------------------ *)
(* User-level malware                                                  *)
(* ------------------------------------------------------------------ *)

let udp_server_payload =
  [ s "socket:udp"; s "bind:udp"; s "recvfrom:udp"; s "recvfrom:udp" ]

let tcp_bind_shell_payload =
  [ s "socket:tcp"; s "bind:tcp"; s "listen:tcp"; s "accept:tcp"; s "recv:tcp"; s "send:tcp" ]

let injectso =
  {
    name = "Injectso";
    kind = Online_infection "Shared object injection";
    host = "top";
    payload = "UDP server";
    note = "Case study I";
    launch = inject_online udp_server_payload;
    signature =
      [ "inet_create"; "sys_bind"; "inet_bind"; "udp_v4_get_port"; "udp_recvmsg" ];
  }

let cymothoa_v1 =
  {
    name = "Cymothoa v1";
    kind = Online_infection "Fork process";
    host = "top";
    payload = "Bind /bin/sh to TCP port and fork shell";
    note = "Recover sys_fork and TCP server";
    launch = inject_online (s "fork" :: tcp_bind_shell_payload);
    signature = [ "sys_fork"; "inet_create"; "inet_csk_accept"; "tcp_sendmsg" ];
  }

let cymothoa_v2 =
  {
    name = "Cymothoa v2";
    kind = Online_infection "Clone thread";
    host = "top";
    payload = "Bind /bin/sh to TCP port and fork shell";
    note = "Recover sys_clone and TCP server";
    launch = inject_online (s "clone" :: tcp_bind_shell_payload);
    signature = [ "sys_clone"; "inet_create"; "inet_csk_accept" ];
  }

let cymothoa_v3 =
  {
    name = "Cymothoa v3";
    kind = Online_infection "Settimer parasite";
    host = "top";
    payload = "Remote file sniffer";
    note = "Recover sys_setitimer and signal handler";
    launch =
      inject_online
        [ s "setitimer"; s "socket:udp"; s "connect:udp"; s "sendto:udp"; s "sigreturn" ];
    signature = [ "sys_setitimer"; "it_real_fn"; "udp_sendmsg"; "sys_sigreturn" ];
  }

let cymothoa_v4 =
  {
    name = "Cymothoa v4";
    kind = Online_infection "Signal/Alarm parasite";
    host = "bash";
    payload = "Single process backdoor";
    note = "Case study II";
    launch =
      inject_online ([ s "setitimer" ] @ tcp_bind_shell_payload @ [ s "sigreturn" ]);
    signature =
      [ "sys_setitimer"; "it_real_fn"; "inet_create"; "inet_bind"; "inet_csk_accept" ];
  }

let hotpatch =
  {
    name = "Hotpatch";
    kind = Online_infection "Library injection";
    host = "top";
    payload = "File writing of injecting timestamp";
    note = "Recover injection and file writing procedure";
    launch = inject_online [ s "open:ext4"; s "write:ext4"; s "close" ];
    signature = [ "do_sync_write"; "ext4_file_write" ];
  }

let xlibtrace =
  {
    name = "Xlibtrace";
    kind = Online_infection "$LD_PRELOAD linker";
    host = "eog";
    payload = "Tracking function invocation";
    note = "Recover tty procedures on terminal";
    launch = inject_online [ s "open:tty"; s "write:tty"; s "write:tty" ];
    signature = [ "tty_write"; "con_write" ];
  }

let hijacker =
  {
    name = "Hijacker";
    kind = Online_infection "Global offset table poisoning";
    host = "gvim";
    payload = "Redirection of library function";
    note = "Recover the procedure of hijacking";
    launch = inject_online [ s "socket:udp"; s "connect:udp"; s "sendto:udp" ];
    signature = [ "inet_create"; "udp_sendmsg" ];
  }

let infelf_v1 =
  {
    name = "Infelf v1";
    kind = Offline_infection "Binary infection";
    host = "gzip";
    payload = "Remote shell server";
    note = "Recover remote shell socket operations";
    launch = inject_offline tcp_bind_shell_payload;
    signature = [ "inet_create"; "inet_bind"; "tcp_recvmsg"; "tcp_sendmsg" ];
  }

let infelf_v2 =
  {
    name = "Infelf v2";
    kind = Offline_infection "Binary infection";
    host = "gvim";
    payload = "Register dumping";
    note = "Case study III";
    launch = inject_offline [ s "open:tty"; s "write:tty"; s "write:tty"; s "write:tty" ];
    signature = [ "tty_write"; "con_write" ];
  }

let arches =
  {
    name = "Arches";
    kind = Offline_infection "Binary infection";
    host = "gzip";
    payload = "Register dumping";
    note = "Recover register dumping operations on terminal";
    launch = inject_offline [ s "open:tty"; s "write:tty" ];
    signature = [ "tty_write"; "con_write" ];
  }

let elf_infector =
  {
    name = "Elf-infector";
    kind = Offline_infection "Binary infection";
    host = "eog";
    payload = "Register dumping";
    note = "Same as above";
    launch = inject_offline [ s "open:tty"; s "write:tty" ];
    signature = [ "tty_write"; "con_write" ];
  }

let eresi =
  {
    name = "ERESI";
    kind = Offline_infection "Binary infection";
    host = "totem";
    payload = "UDP server";
    note = "Recover creation of udp server";
    launch = inject_offline udp_server_payload;
    signature = [ "inet_create"; "inet_bind"; "udp_v4_get_port"; "udp_recvmsg" ];
  }

(* ------------------------------------------------------------------ *)
(* Kernel rootkits                                                     *)
(* ------------------------------------------------------------------ *)

let kbeast_module_name = "kbeast"
let sebek_module_name = "sebek"
let adore_module_name = "adore_ng"

let kbeast_fns =
  [
    Kfunc.v ~size:192 ~sub:"kbeast" "kbeast_sys_read"
      [ Kfunc.C "kbeast_log_keys"; Kfunc.C "kbeast_write_log"; Kfunc.D ];
    Kfunc.v ~size:128 ~sub:"kbeast" "kbeast_log_keys" [ Kfunc.C "snprintf" ];
    Kfunc.v ~size:224 ~sub:"kbeast" "kbeast_write_log"
      [ Kfunc.C "filp_open"; Kfunc.C "do_sync_write"; Kfunc.C "filp_close" ];
    Kfunc.v ~size:144 ~sub:"kbeast" "kbeast_hide" [ Kfunc.C "strcmp" ];
  ]

(* Dispatch queue for the detoured read:tty (in consumption order):
   kbeast_write_log -> filp_open (fs open op), do_sync_write's write
   chain, filp_close's release op; then the hook tail-calls the real
   sys_read which reaches the tty. *)
let kbeast_read_dispatch =
  [
    "ext4_file_open"; "ext4_file_write"; "ext4_dirty_inode"; "ext4_write_begin";
    "release_none"; "sys_read"; "tty_read";
  ]

let kbeast =
  {
    name = "KBeast";
    kind = Kernel_rootkit;
    host = "bash";
    payload = "File/Process hiding, keystroke sniffer";
    note = "Case study IV";
    launch =
      (fun os _proc ->
        let (_ : Os.module_info) = Os.load_module_fns os ~name:kbeast_module_name kbeast_fns in
        Os.hide_module os kbeast_module_name;
        Os.set_syscall_rewriter os (fun sc ->
            if String.equal sc.Syscalls.sc_name "read:tty" then
              Some ("kbeast_sys_read", kbeast_read_dispatch)
            else None));
    signature = [ "strnlen"; "vsnprintf"; "snprintf"; "filp_open"; "do_sync_write" ];
  }

let sebek_fns =
  [
    Kfunc.v ~size:224 ~sub:"sebek" "sebek_sys_read" [ Kfunc.C "sebek_log"; Kfunc.D ];
    Kfunc.v ~size:192 ~sub:"sebek" "sebek_log" [ Kfunc.C "memcpy" ];
  ]

let sebek =
  {
    name = "Sebek";
    kind = Kernel_rootkit;
    host = "bash";
    payload = "Confidential data collection";
    note = "Recover kernel code in sebek module";
    launch =
      (fun os _proc ->
        let (_ : Os.module_info) = Os.load_module_fns os ~name:sebek_module_name sebek_fns in
        Os.set_syscall_rewriter os (fun sc ->
            if String.equal sc.Syscalls.sc_name "read:tty" then
              Some ("sebek_sys_read", [ "sys_read"; "tty_read" ])
            else None));
    signature = [ "mod:sebek" ];
  }

let adore_fns =
  [
    Kfunc.v ~size:224 ~sub:"adore" "adore_readdir" [ Kfunc.C "adore_filter"; Kfunc.D ];
    Kfunc.v ~size:160 ~sub:"adore" "adore_filter" [ Kfunc.C "strcmp" ];
  ]

let adore_ng =
  {
    name = "Adore-ng";
    kind = Kernel_rootkit;
    host = "bash";
    payload = "File/Process hiding";
    note = "Recover kernel code in adore-ng module";
    launch =
      (fun os _proc ->
        let (_ : Os.module_info) = Os.load_module_fns os ~name:adore_module_name adore_fns in
        Os.set_syscall_rewriter os (fun sc ->
            if String.equal sc.Syscalls.sc_name "getdents:ext4" then
              Some ("adore_readdir", [ "sys_getdents64"; "ext4_readdir" ])
            else None));
    signature = [ "mod:adore_ng" ];
  }

let all =
  [
    injectso; cymothoa_v1; cymothoa_v2; cymothoa_v3; cymothoa_v4; hotpatch;
    xlibtrace; hijacker; infelf_v1; infelf_v2; arches; elf_infector; eresi;
    kbeast; sebek; adore_ng;
  ]

let names = List.map (fun a -> a.name) all
let find name = List.find_opt (fun a -> String.equal a.name name) all

let find_exn name =
  match find name with
  | Some a -> a
  | None -> invalid_arg ("Attack.find_exn: unknown attack " ^ name)

let kind_label = function
  | Online_infection m -> "Online infection: " ^ m
  | Offline_infection m -> "Offline " ^ String.lowercase_ascii m
  | Kernel_rootkit -> "Kernel rootkit"
