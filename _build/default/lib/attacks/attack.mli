(** The malware corpus of Table II: 13 user-level attacks and 3 kernel
    rootkits.

    User-level attacks are modelled by their {e kernel footprint}: the
    payload syscalls an infected host process starts issuing.  Online
    infections splice the payload into the victim mid-run (Injectso,
    Cymothoa, …); offline infections run it from process start (the
    binary was trojaned on disk: Infelf, Arches, …).  Kernel rootkits
    load a module and detour syscall handling through it; KBeast also
    unlinks itself from the guest module list, which is what makes its
    backtrace frames render as [<UNKNOWN>] (Fig. 5).

    [signature] lists the function names whose {e recovery} is the
    paper's detection evidence for this attack; for rootkit-module code
    the rendered name is [mod:<name>] (VMI sees the module region but has
    no symbols for it). *)

type kind =
  | Online_infection of string  (** infection method, per Table II *)
  | Offline_infection of string
  | Kernel_rootkit

type t = {
  name : string;
  kind : kind;
  host : string;     (** victim application ({!Fc_apps.App}) name *)
  payload : string;  (** payload description, per Table II *)
  note : string;     (** the paper's "Note" column *)
  launch : Fc_machine.Os.t -> Fc_machine.Process.t -> unit;
      (** arm the attack against a spawned host process (call before
          [Os.run]) *)
  signature : string list;
}

val all : t list
(** Table II order: Injectso, Cymothoa v1–v4, Hotpatch, Xlibtrace,
    Hijacker, Infelf v1/v2, Arches, Elf-infector, ERESI, KBeast, Sebek,
    Adore-ng. *)

val names : string list
val find : string -> t option
val find_exn : string -> t
val kind_label : kind -> string

val kbeast_module_name : string
val sebek_module_name : string
val adore_module_name : string
