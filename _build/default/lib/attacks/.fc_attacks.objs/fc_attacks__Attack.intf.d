lib/attacks/attack.mli: Fc_machine
