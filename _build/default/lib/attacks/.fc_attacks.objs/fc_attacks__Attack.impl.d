lib/attacks/attack.ml: Fc_kernel Fc_machine List String
