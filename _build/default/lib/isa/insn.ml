type t =
  | Push_ebp
  | Mov_ebp_esp
  | Nop
  | Ud2
  | Call_rel of int
  | Call_indirect
  | Ret
  | Leave
  | Alu of int
  | Or_mem of int
  | Jmp_rel of int
  | Jcc_rel of int
  | Yield of int
  | Iret
  | Int_sw of int

let length = function
  | Push_ebp | Nop | Ret | Leave | Iret -> 1
  | Mov_ebp_esp | Ud2 | Call_indirect | Alu _ | Or_mem _ | Jmp_rel _ | Jcc_rel _
  | Yield _ | Int_sw _ ->
      2
  | Call_rel _ -> 5

let byte v = v land 0xff

(* Two's-complement of [v] over [bits] bits. *)
let to_unsigned bits v = v land ((1 lsl bits) - 1)

let of_signed bits v =
  let half = 1 lsl (bits - 1) in
  if v >= half then v - (1 lsl bits) else v

let encode = function
  | Push_ebp -> [ 0x55 ]
  | Mov_ebp_esp -> [ 0x89; 0xe5 ]
  | Nop -> [ 0x90 ]
  | Ud2 -> [ 0x0f; 0x0b ]
  | Call_rel d ->
      let u = to_unsigned 32 d in
      [ 0xe8; byte u; byte (u lsr 8); byte (u lsr 16); byte (u lsr 24) ]
  | Call_indirect -> [ 0xff; 0xd0 ]
  | Ret -> [ 0xc3 ]
  | Leave -> [ 0xc9 ]
  | Alu imm -> [ 0x01; byte imm ]
  | Or_mem imm -> [ 0x0b; byte imm ]
  | Jmp_rel d -> [ 0xeb; byte (to_unsigned 8 d) ]
  | Jcc_rel d -> [ 0x75; byte (to_unsigned 8 d) ]
  | Yield id -> [ 0xf4; byte id ]
  | Iret -> [ 0xcf ]
  | Int_sw n -> [ 0xcd; byte n ]

let encode_into buf off i =
  List.fold_left
    (fun off b ->
      Bytes.set_uint8 buf off b;
      off + 1)
    off (encode i)

type decode_error = Unknown_opcode of int | Truncated

let decode ~read addr =
  let ( let* ) x f = match x with Some v -> f v | None -> Error Truncated in
  let* b0 = read addr in
  match b0 with
  | 0x55 -> Ok (Push_ebp, 1)
  | 0x90 -> Ok (Nop, 1)
  | 0xc3 -> Ok (Ret, 1)
  | 0xc9 -> Ok (Leave, 1)
  | 0xcf -> Ok (Iret, 1)
  | 0x89 -> (
      let* b1 = read (addr + 1) in
      match b1 with 0xe5 -> Ok (Mov_ebp_esp, 2) | b -> Error (Unknown_opcode b))
  | 0x0f -> (
      let* b1 = read (addr + 1) in
      match b1 with 0x0b -> Ok (Ud2, 2) | b -> Error (Unknown_opcode b))
  | 0xff -> (
      let* b1 = read (addr + 1) in
      match b1 with
      | 0xd0 -> Ok (Call_indirect, 2)
      | b -> Error (Unknown_opcode b))
  | 0xe8 ->
      let* b1 = read (addr + 1) in
      let* b2 = read (addr + 2) in
      let* b3 = read (addr + 3) in
      let* b4 = read (addr + 4) in
      let u = b1 lor (b2 lsl 8) lor (b3 lsl 16) lor (b4 lsl 24) in
      Ok (Call_rel (of_signed 32 u), 5)
  | 0x01 ->
      let* b1 = read (addr + 1) in
      Ok (Alu b1, 2)
  | 0x0b ->
      let* b1 = read (addr + 1) in
      Ok (Or_mem b1, 2)
  | 0xeb ->
      let* b1 = read (addr + 1) in
      Ok (Jmp_rel (of_signed 8 b1), 2)
  | 0x75 ->
      let* b1 = read (addr + 1) in
      Ok (Jcc_rel (of_signed 8 b1), 2)
  | 0xf4 ->
      let* b1 = read (addr + 1) in
      Ok (Yield b1, 2)
  | 0xcd ->
      let* b1 = read (addr + 1) in
      Ok (Int_sw b1, 2)
  | b -> Error (Unknown_opcode b)

let is_call = function Call_rel _ | Call_indirect -> true | _ -> false
let is_terminator = function Ret | Iret | Jmp_rel _ -> true | _ -> false

let pp ppf = function
  | Push_ebp -> Format.pp_print_string ppf "push ebp"
  | Mov_ebp_esp -> Format.pp_print_string ppf "mov ebp, esp"
  | Nop -> Format.pp_print_string ppf "nop"
  | Ud2 -> Format.pp_print_string ppf "ud2"
  | Call_rel d -> Format.fprintf ppf "call %+d" d
  | Call_indirect -> Format.pp_print_string ppf "call *dispatch"
  | Ret -> Format.pp_print_string ppf "ret"
  | Leave -> Format.pp_print_string ppf "leave"
  | Alu imm -> Format.fprintf ppf "alu 0x%x" imm
  | Or_mem imm -> Format.fprintf ppf "or eax, 0x%x" imm
  | Jmp_rel d -> Format.fprintf ppf "jmp %+d" d
  | Jcc_rel d -> Format.fprintf ppf "jne %+d" d
  | Yield id -> Format.fprintf ppf "yield %d" id
  | Iret -> Format.pp_print_string ppf "iret"
  | Int_sw n -> Format.fprintf ppf "int 0x%x" n

let to_string i = Format.asprintf "%a" pp i
let ud2_first_byte = 0x0f
let ud2_second_byte = 0x0b
let prologue_signature = [ 0x55; 0x89; 0xe5 ]
