(** The synthetic guest instruction set.

    A deliberately small, x86-flavoured, byte-encoded ISA.  The encodings
    that carry the paper's mechanism are kept bit-identical to x86:

    - [UD2] is [0x0f 0x0b] and raises an invalid-opcode trap when executed;
    - the byte pair [0x0b 0x0f] (a UD2 fill read from an odd offset) decodes
      as a {e valid} [Or_mem] instruction — the misinterpretation that
      forces the paper's {e instant recovery};
    - the function prologue is [push ebp; mov ebp, esp]
      = [0x55 0x89 0xe5], the boundary signature scanned during recovery;
    - [call rel32] is [0xe8] + 4-byte little-endian displacement and pushes
      a return address, giving real rbp-chain backtraces.

    Everything else ([Alu] filler, [Yield] block points, [Call_indirect]
    vfs-style dispatch) exists so that synthetic kernel functions have
    realistic bodies, sizes and control flow. *)

type t =
  | Push_ebp      (** [0x55] — first byte of the prologue signature *)
  | Mov_ebp_esp   (** [0x89 0xe5] — completes the prologue *)
  | Nop           (** [0x90] *)
  | Ud2           (** [0x0f 0x0b] — invalid opcode, traps to hypervisor *)
  | Call_rel of int
      (** [0xe8 d32] — displacement relative to the {e next} instruction *)
  | Call_indirect
      (** [0xff 0xd0] — target supplied by the current dispatch queue,
          modelling [call *table(,%eax,4)] (vfs function pointers) *)
  | Ret           (** [0xc3] *)
  | Leave         (** [0xc9] — [esp := ebp; pop ebp] *)
  | Alu of int    (** [0x01 imm8] — filler arithmetic, no control flow *)
  | Or_mem of int
      (** [0x0b imm8] — valid but meaningless; only ever reached by
          misdecoding UD2 fill at an odd offset *)
  | Jmp_rel of int (** [0xeb d8] — signed 8-bit relative jump *)
  | Jcc_rel of int
      (** [0x75 d8] — conditional jump; whether it is taken comes from the
          machine's branch oracle.  Kernel functions use it to guard cold
          error paths, giving bodies the intra-function variance the
          paper's whole-function relaxation exists for *)
  | Yield of int  (** [0xf4 imm8] — synthetic block point (process sleeps) *)
  | Iret          (** [0xcf] — return from interrupt *)
  | Int_sw of int (** [0xcd imm8] — software interrupt / syscall gate *)

val length : t -> int
(** Encoded length in bytes. *)

val encode : t -> int list
(** Byte list, most significant semantics first; each in [0, 255]. *)

val encode_into : Bytes.t -> int -> t -> int
(** [encode_into buf off i] writes the encoding at [off] and returns the
    offset just past it. *)

type decode_error =
  | Unknown_opcode of int  (** first byte is not a valid opcode *)
  | Truncated              (** ran out of readable bytes mid-instruction *)

val decode : read:(int -> int option) -> int -> (t * int, decode_error) result
(** [decode ~read addr] decodes one instruction at [addr]; [read a] returns
    the byte at [a] or [None] if unmapped.  On success returns the
    instruction and its length. *)

val is_call : t -> bool
val is_terminator : t -> bool
(** [Ret], [Iret] or an unconditional [Jmp_rel]: ends a basic block. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val ud2_first_byte : int
(** [0x0f] *)

val ud2_second_byte : int
(** [0x0b] *)

val prologue_signature : int list
(** [[0x55; 0x89; 0xe5]] — the function-header byte signature. *)
