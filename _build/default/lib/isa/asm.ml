type parity = Any | Even_return | Odd_return

type item =
  | Call of string
  | Call_parity of string * parity
  | Dispatch_call
  | Block_point of int
  | Fill of int
  | Cold of int

type func_spec = { fname : string; items : item list; min_size : int }
type placed = { pname : string; addr : int; size : int }
type unit_image = { base : int; code : Bytes.t; functions : placed list }

let align_up v a = (v + a - 1) / a * a

(* Filler immediates cycle through a range that excludes 0x55 and 0x0f so
   neither the prologue signature nor a UD2 prefix can appear in filler. *)
let filler_imm i = 0x10 + (i mod 0x40)

let filler n =
  if n < 0 then invalid_arg "Asm.filler: negative length";
  let rec go acc i n =
    if n = 0 then List.rev acc
    else if n = 1 then List.rev (Insn.Nop :: acc)
    else go (Insn.Alu (filler_imm i) :: acc) (i + 1) (n - 2)
  in
  go [] 0 n

type fixup = { at : int; target : string }

(* Emit one function starting at absolute [start]; returns the encoded
   bytes and the call fixups (absolute addresses of call opcodes). *)
let emit_function start spec =
  let buf = Buffer.create 64 in
  let fixups = ref [] in
  let here () = start + Buffer.length buf in
  let emit i = List.iter (fun b -> Buffer.add_char buf (Char.chr b)) (Insn.encode i) in
  let emit_call target =
    fixups := { at = here (); target } :: !fixups;
    emit (Insn.Call_rel 0)
  in
  let pad_for_parity p =
    (* A call at address A returns to A+5: odd return needs even A. *)
    match p with
    | Any -> ()
    | Odd_return -> if here () land 1 = 1 then emit Insn.Nop
    | Even_return -> if here () land 1 = 0 then emit Insn.Nop
  in
  emit Insn.Push_ebp;
  emit Insn.Mov_ebp_esp;
  List.iter
    (fun item ->
      match item with
      | Call target -> emit_call target
      | Call_parity (target, p) ->
          pad_for_parity p;
          emit_call target
      | Dispatch_call -> emit Insn.Call_indirect
      | Block_point id ->
          (* Keep the resume address (yield + 2) even: a sleeping thread
             whose saved EIP lands on an odd offset inside UD2 fill would
             misdecode instead of trapping when its view changes while it
             sleeps (the hazard behind Fig. 3's instant recovery). *)
          if here () land 1 = 1 then emit Insn.Nop;
          emit (Insn.Yield id)
      | Fill n -> List.iter emit (filler n)
      | Cold n ->
          let n = min n 120 in
          emit (Insn.Jcc_rel n);
          List.iter emit (filler n))
    spec.items;
  let body = Buffer.length buf in
  let pad = spec.min_size - (body + 2) in
  if pad > 0 then List.iter emit (filler pad);
  emit Insn.Leave;
  emit Insn.Ret;
  (Buffer.to_bytes buf, List.rev !fixups)

let assemble ~base ?(align = 16) ?(resolve = fun _ -> None) specs =
  let exception Fail of string in
  try
    (* Reject duplicates up front. *)
    let seen = Hashtbl.create 16 in
    List.iter
      (fun s ->
        if Hashtbl.mem seen s.fname then
          raise (Fail ("duplicate function: " ^ s.fname));
        Hashtbl.add seen s.fname ())
      specs;
    (* Pass 1: layout and encode with zero displacements. *)
    let cursor = ref base in
    let parts = ref [] and fixups = ref [] and placed = ref [] in
    List.iter
      (fun spec ->
        let start = align_up !cursor align in
        let bytes, fx = emit_function start spec in
        parts := (start, bytes) :: !parts;
        fixups := fx @ !fixups;
        placed := { pname = spec.fname; addr = start; size = Bytes.length bytes } :: !placed;
        cursor := start + Bytes.length bytes)
      specs;
    let functions = List.rev !placed in
    let total = !cursor - base in
    let code = Bytes.make (max total 0) '\x90' in
    List.iter
      (fun (start, bytes) -> Bytes.blit bytes 0 code (start - base) (Bytes.length bytes))
      !parts;
    (* Pass 2: resolve call displacements. *)
    let symtab = Hashtbl.create 64 in
    List.iter (fun p -> Hashtbl.replace symtab p.pname p.addr) functions;
    let lookup name =
      match Hashtbl.find_opt symtab name with
      | Some a -> a
      | None -> (
          match resolve name with
          | Some a -> a
          | None -> raise (Fail ("unresolved call target: " ^ name)))
    in
    List.iter
      (fun { at; target } ->
        let disp = lookup target - (at + 5) in
        let u = disp land 0xffffffff in
        let off = at - base + 1 in
        Bytes.set_uint8 code off (u land 0xff);
        Bytes.set_uint8 code (off + 1) ((u lsr 8) land 0xff);
        Bytes.set_uint8 code (off + 2) ((u lsr 16) land 0xff);
        Bytes.set_uint8 code (off + 3) ((u lsr 24) land 0xff))
      !fixups;
    Ok { base; code; functions }
  with Fail msg -> Error msg

let find_function u name = List.find_opt (fun p -> String.equal p.pname name) u.functions

let function_at u addr =
  List.find_opt (fun p -> p.addr <= addr && addr < p.addr + p.size) u.functions
