(** Two-pass assembler for synthetic kernel functions.

    The kernel image builder describes each function as a list of {!item}s
    plus a minimum size; the assembler lays functions out sequentially from
    a base address, aligns every function start (the kernel is "compiled
    with [-falign-functions]", §III-B1 of the paper), emits real byte
    encodings, and resolves direct calls in a second pass.

    Inter-function gaps are filled with [nop] (0x90) — these are the "free
    alignment areas between functions" that the Infelf attack implants code
    into. *)

type parity =
  | Any
  | Even_return  (** pad so the call's return address is even *)
  | Odd_return
      (** pad so the call's return address is odd — the Fig. 3 case where a
          UD2-filled caller reads back as [0x0b 0x0f] and cannot trap *)

type item =
  | Call of string  (** direct call to a named function *)
  | Call_parity of string * parity
  | Dispatch_call   (** indirect call through the runtime dispatch queue *)
  | Block_point of int  (** [Yield id]: the process sleeps here *)
  | Fill of int     (** at least [n] bytes of executable filler *)
  | Cold of int
      (** a conditionally-skipped cold block of [n] filler bytes guarded
          by a [Jcc]: the error path almost never executed at runtime and
          typically missed by profiling *)

type func_spec = {
  fname : string;
  items : item list;
  min_size : int;
      (** the emitted function is padded with filler up to this size,
          letting the catalog control realistic per-function sizes *)
}

type placed = {
  pname : string;
  addr : int;   (** absolute start address (aligned) *)
  size : int;   (** bytes from [addr] up to (not including) the gap *)
}

type unit_image = {
  base : int;           (** first address of the unit *)
  code : Bytes.t;       (** bytes for [[base, base + Bytes.length code)] *)
  functions : placed list;  (** in layout order *)
}

val assemble :
  base:int ->
  ?align:int ->
  ?resolve:(string -> int option) ->
  func_spec list ->
  (unit_image, string) result
(** [assemble ~base specs] lays out and encodes [specs] in order.
    [align] defaults to 16.  Direct calls first look up the target among
    [specs], then via [resolve] (for cross-unit calls, e.g. a module
    calling the base kernel).  Fails on unknown call targets or duplicate
    function names. *)

val find_function : unit_image -> string -> placed option
val function_at : unit_image -> int -> placed option
(** The function whose [[addr, addr+size)] contains the given address. *)

val filler : int -> Insn.t list
(** [filler n] is straight-line executable filler of exactly [n] bytes
    (alternating [Alu]/[Nop]); immediates avoid the [0x55] byte so the
    prologue signature cannot appear inside filler. *)
