let is_prologue_at ~read addr =
  let byte_is a v = match read a with Some b -> b = v | None -> false in
  byte_is addr 0x55 && byte_is (addr + 1) 0x89 && byte_is (addr + 2) 0xe5

let align_down v a = v / a * a

let search_backward ~read ?(align = 16) ~limit addr =
  let rec go a =
    if a < limit then None
    else if is_prologue_at ~read a then Some a
    else go (a - align)
  in
  go (align_down addr align)

let search_forward ~read ?(align = 16) ~limit addr =
  let first = align_down addr align + align in
  let rec go a =
    if a >= limit then None
    else if is_prologue_at ~read a then Some a
    else go (a + align)
  in
  go first

let function_bounds ~read ?(align = 16) ~lo ~hi addr =
  match search_backward ~read ~align ~limit:lo addr with
  | None -> None
  | Some start ->
      let stop =
        match search_forward ~read ~align ~limit:hi addr with
        | Some next -> next
        | None -> hi
      in
      Some (start, stop)
