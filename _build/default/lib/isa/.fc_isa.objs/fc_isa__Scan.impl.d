lib/isa/scan.ml:
