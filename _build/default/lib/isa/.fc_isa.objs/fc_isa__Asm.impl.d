lib/isa/asm.ml: Buffer Bytes Char Hashtbl Insn List String
