lib/isa/asm.mli: Bytes Insn
