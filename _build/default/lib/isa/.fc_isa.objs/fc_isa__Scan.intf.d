lib/isa/scan.mli:
