lib/isa/insn.mli: Bytes Format
