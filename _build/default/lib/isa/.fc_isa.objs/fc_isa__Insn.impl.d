lib/isa/insn.ml: Bytes Format List
