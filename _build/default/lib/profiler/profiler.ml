module Os = Fc_machine.Os
module Layout = Fc_kernel.Layout
module Range_list = Fc_ranges.Range_list
module Segment = Fc_ranges.Segment

(* A recorder accumulates contiguous execution runs, deduplicates them,
   and merges into a Range_list lazily.  Runs repeat enormously (the same
   syscall path executes over and over), so the dedup table is the main
   cost saver. *)
type recorder = {
  mutable run_lo : int;
  mutable run_hi : int; (* current contiguous run; run_lo = -1 when none *)
  seen : (int * int, unit) Hashtbl.t;
  mutable runs : (int * int) list;
}

let recorder_create () =
  { run_lo = -1; run_hi = -1; seen = Hashtbl.create 4096; runs = [] }

let recorder_flush r =
  if r.run_lo >= 0 then begin
    let key = (r.run_lo, r.run_hi) in
    if not (Hashtbl.mem r.seen key) then begin
      Hashtbl.add r.seen key ();
      r.runs <- key :: r.runs
    end;
    r.run_lo <- -1
  end

let recorder_step r addr len =
  if addr = r.run_hi && r.run_lo >= 0 then r.run_hi <- addr + len
  else begin
    recorder_flush r;
    r.run_lo <- addr;
    r.run_hi <- addr + len
  end

type session = {
  os : Os.t;
  target_pid : int;
  app_rec : recorder;
  irq_rec : recorder;
  (* module bases snapshot, sorted: (base, size, name) *)
  mods : (int * int * string) list;
  mutable active : bool;
}

let segmentize mods addr =
  if Layout.is_module_address addr then
    match
      List.find_opt (fun (base, size, _) -> base <= addr && addr < base + size) mods
    with
    | Some (base, _, name) -> Some (Segment.Kernel_module name, addr - base)
    | None -> None (* module area but no module: ignore (unloaded) *)
  else if Layout.is_kernel_address addr then Some (Segment.Base_kernel, addr)
  else None

let ranges_of_runs mods runs =
  List.fold_left
    (fun acc (lo, hi) ->
      match segmentize mods lo with
      | None -> acc
      | Some (seg, rel_lo) -> Range_list.add_range acc seg ~lo:rel_lo ~hi:(rel_lo + (hi - lo)))
    Range_list.empty runs

let start os ~target_pid =
  let mods =
    List.map (fun (name, base, size) -> (base, size, name)) (Os.vmi_module_list os)
  in
  let s =
    {
      os;
      target_pid;
      app_rec = recorder_create ();
      irq_rec = recorder_create ();
      mods;
      active = true;
    }
  in
  Os.set_trace os
    (Some
       (fun addr len ->
         if Layout.is_kernel_address addr then
           if Os.in_interrupt os then recorder_step s.irq_rec addr len
           else if (Os.current os).Fc_machine.Process.pid = s.target_pid then
             recorder_step s.app_rec addr len));
  s

let stop s =
  if s.active then begin
    Os.set_trace s.os None;
    recorder_flush s.app_rec;
    recorder_flush s.irq_rec;
    s.active <- false
  end

let finish_rec s r =
  recorder_flush r;
  ranges_of_runs s.mods r.runs

let app_ranges s = finish_rec s s.app_rec
let interrupt_ranges s = finish_rec s s.irq_rec
let view_ranges s = Range_list.union (app_ranges s) (interrupt_ranges s)
let to_config s ~app = View_config.make ~app (view_ranges s)

let profile_app ?(config = Os.profiling_config) image ~name script =
  let os = Os.create ~config image in
  let p = Os.spawn os ~name script in
  let s = start os ~target_pid:p.Fc_machine.Process.pid in
  Os.run os;
  stop s;
  to_config s ~app:name
