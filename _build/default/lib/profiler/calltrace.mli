(** Exact kernel call trees — a debugging/analysis aid.

    Subscribes to the vCPU's call/return events and reconstructs, for a
    target process, the call tree of every kernel entry (syscall,
    interrupt, scheduler path).  Useful for understanding what a syscall
    variant actually executes, for validating profiles, and for teaching —
    the kind of introspection tooling a released artifact ships with. *)

type node = {
  fn : string;     (** symbolized function name, or ["0x…"] if unknown *)
  addr : int;
  children : node list;  (** calls made, in order *)
}

type session

val start : Fc_machine.Os.t -> target_pid:int -> session
(** Record call trees for the target process (takes over the guest event
    hook). *)

val stop : session -> unit

val roots : session -> node list
(** One tree per kernel entry executed in the target's context,
    chronological. *)

val node_count : node -> int

val pp_tree : ?max_depth:int -> Format.formatter -> node -> unit
(** Indented rendering, e.g.
    {v
    sys_read
      fget
      vfs_read
        rw_verify_area
        ...
    v} *)

val trace_syscall :
  Fc_kernel.Image.t -> ?config:Fc_machine.Os.config -> string -> node list
(** Convenience: run one syscall variant in a fresh guest and return the
    tree(s) rooted at its handler.  Because the tracer hooks {e calls},
    each root is a function called from an entry gate ([sys_*] for
    syscalls); the gates themselves hold no frame. *)
