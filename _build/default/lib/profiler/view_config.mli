(** Kernel view configuration files.

    The profiling phase's output: the application name and its recorded
    kernel-code range list [K[app]].  Base-kernel ranges hold absolute
    guest-virtual addresses; module ranges are {e relative to the module
    base} (modules relocate between profiling and runtime, §III-A1).

    The on-disk format is line-oriented text:
    {v
    # facechange kernel view
    app top
    base 0xc0100000 0xc0100040
    module:kvmclock 0x0 0x60
    v} *)

type t = { app : string; ranges : Fc_ranges.Range_list.t }

val make : app:string -> Fc_ranges.Range_list.t -> t

val union : app:string -> t list -> t
(** The paper's "union kernel view": the union of several configurations,
    representing traditional system-wide minimization. *)

val size : t -> int
val len : t -> int
val similarity : t -> t -> float

val to_string : t -> string
val of_string : string -> (t, string) result
val save : t -> string -> unit
val load : string -> (t, string) result
