module Os = Fc_machine.Os
module Cpu = Fc_machine.Cpu
module Asm = Fc_isa.Asm

type node = { fn : string; addr : int; children : node list }

(* Mutable build state: a stack of open frames. *)
type frame = { f_fn : string; f_addr : int; mutable rev_children : node list }

type session = {
  os : Os.t;
  target_pid : int;
  names : (int, string) Hashtbl.t;
  mutable stack : frame list;
  mutable rev_roots : node list;
  mutable active : bool;
}

let close_frame f = { fn = f.f_fn; addr = f.f_addr; children = List.rev f.rev_children }

let add_child s node =
  match s.stack with
  | top :: _ -> top.rev_children <- node :: top.rev_children
  | [] -> s.rev_roots <- node :: s.rev_roots

let rec unwind_all s =
  match s.stack with
  | [] -> ()
  | f :: rest ->
      s.stack <- rest;
      add_child s (close_frame f);
      unwind_all s

let on_event s ev =
  if (Os.current s.os).Fc_machine.Process.pid = s.target_pid then
    match ev with
    | Cpu.Ev_call target ->
        let fn =
          match Hashtbl.find_opt s.names target with
          | Some n -> n
          | None -> Printf.sprintf "0x%x" target
        in
        s.stack <- { f_fn = fn; f_addr = target; rev_children = [] } :: s.stack
    | Cpu.Ev_return -> (
        match s.stack with
        | f :: rest ->
            s.stack <- rest;
            add_child s (close_frame f)
        | [] -> ())

let start os ~target_pid =
  let names = Hashtbl.create 2048 in
  List.iter
    (fun (p : Asm.placed) -> Hashtbl.replace names p.Asm.addr p.Asm.pname)
    (Fc_kernel.Image.functions (Os.image os));
  List.iter
    (fun m ->
      List.iter
        (fun (p : Asm.placed) -> Hashtbl.replace names p.Asm.addr p.Asm.pname)
        m.Os.unit_image.Asm.functions)
    (Os.modules os);
  let s = { os; target_pid; names; stack = []; rev_roots = []; active = true } in
  Os.set_event_trace os (Some (fun ev -> on_event s ev));
  s

let stop s =
  if s.active then begin
    Os.set_event_trace s.os None;
    unwind_all s;
    s.active <- false
  end

let roots s =
  unwind_all s;
  List.rev s.rev_roots

let rec node_count n = 1 + List.fold_left (fun a c -> a + node_count c) 0 n.children

let pp_tree ?(max_depth = 64) ppf root =
  let rec go depth n =
    if depth <= max_depth then begin
      Format.fprintf ppf "%s%s@." (String.make (2 * depth) ' ') n.fn;
      List.iter (go (depth + 1)) n.children
    end
  in
  go 0 root

let trace_syscall image ?(config = Fc_machine.Os.default_config) variant =
  let os = Os.create ~config image in
  let p =
    Os.spawn os ~name:"tracee"
      [ Fc_machine.Action.Syscall variant; Fc_machine.Action.Exit ]
  in
  let s = start os ~target_pid:p.Fc_machine.Process.pid in
  Os.run os;
  stop s;
  (* keep only the tree(s) rooted at the variant's handler: the run also
     records scheduler paths, the exit syscall and any interrupts *)
  let entry = (Fc_kernel.Syscalls.find_exn variant).Fc_kernel.Syscalls.entry in
  List.filter (fun n -> n.fn = entry) (roots s)
