module Os = Fc_machine.Os
module Image = Fc_kernel.Image
module Asm = Fc_isa.Asm

type t = {
  app : string;
  handlers : (string * int) list;
  bigrams : ((string * string) * int) list;
}

let is_handler_name n = String.length n > 4 && String.sub n 0 4 = "sys_"

let handler_names image =
  List.filter_map
    (fun (p : Asm.placed) ->
      if is_handler_name p.Asm.pname then Some (p.Asm.addr, p.Asm.pname) else None)
    (Image.functions image)

type session = {
  os : Os.t;
  target_pid : int;
  entry_names : (int, string) Hashtbl.t;
  handler_counts : (string, int) Hashtbl.t;
  bigram_counts : (string * string, int) Hashtbl.t;
  mutable prev : string option;
  mutable active : bool;
}

let bump tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let start os ~target_pid =
  let entry_names = Hashtbl.create 128 in
  List.iter
    (fun (addr, name) -> Hashtbl.replace entry_names addr name)
    (handler_names (Os.image os));
  let s =
    {
      os;
      target_pid;
      entry_names;
      handler_counts = Hashtbl.create 64;
      bigram_counts = Hashtbl.create 256;
      prev = None;
      active = true;
    }
  in
  Os.set_trace os
    (Some
       (fun addr _len ->
         if
           (not (Os.in_interrupt os))
           && (Os.current os).Fc_machine.Process.pid = s.target_pid
         then
           match Hashtbl.find_opt s.entry_names addr with
           | Some name ->
               bump s.handler_counts name;
               (match s.prev with
               | Some prev -> bump s.bigram_counts (prev, name)
               | None -> ());
               s.prev <- Some name
           | None -> ()));
  s

let stop s =
  if s.active then begin
    Os.set_trace s.os None;
    s.active <- false
  end

let sorted_assoc tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let finish s ~app =
  { app; handlers = sorted_assoc s.handler_counts; bigrams = sorted_assoc s.bigram_counts }

let profile_app ?(config = Os.profiling_config) image ~name script =
  let os = Os.create ~config image in
  let p = Os.spawn os ~name script in
  let s = start os ~target_pid:p.Fc_machine.Process.pid in
  Os.run os;
  stop s;
  finish s ~app:name

let knows_handler t name = List.mem_assoc name t.handlers
let knows_bigram t ~prev ~cur = List.mem_assoc (prev, cur) t.bigrams

let novel_bigrams t ~observed =
  List.filter_map
    (fun (bg, _) -> if List.mem_assoc bg t.bigrams then None else Some bg)
    observed.bigrams

(* ---------------- persistence ---------------- *)

let to_string t =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "# facechange behavior profile\n";
  Buffer.add_string buf ("app " ^ t.app ^ "\n");
  List.iter
    (fun (h, n) -> Buffer.add_string buf (Printf.sprintf "handler %s %d\n" h n))
    t.handlers;
  List.iter
    (fun ((a, b), n) -> Buffer.add_string buf (Printf.sprintf "bigram %s %s %d\n" a b n))
    t.bigrams;
  Buffer.contents buf

let of_string text =
  let app = ref None and handlers = ref [] and bigrams = ref [] in
  let err = ref None in
  List.iteri
    (fun i line ->
      let line = String.trim line in
      if !err = None && line <> "" && line.[0] <> '#' then
        match String.split_on_char ' ' line with
        | [ "app"; name ] -> app := Some name
        | [ "handler"; h; n ] -> (
            match int_of_string_opt n with
            | Some n -> handlers := (h, n) :: !handlers
            | None -> err := Some (Printf.sprintf "line %d: bad count" (i + 1)))
        | [ "bigram"; a; b; n ] -> (
            match int_of_string_opt n with
            | Some n -> bigrams := ((a, b), n) :: !bigrams
            | None -> err := Some (Printf.sprintf "line %d: bad count" (i + 1)))
        | _ -> err := Some (Printf.sprintf "line %d: unparseable" (i + 1)))
    (String.split_on_char '\n' text);
  match (!err, !app) with
  | Some e, _ -> Error e
  | None, None -> Error "missing 'app' line"
  | None, Some app ->
      Ok { app; handlers = List.rev !handlers; bigrams = List.rev !bigrams }

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error e -> Error e
