(** Behavior profiling — the paper's §V-A future work, implemented.

    FACE-CHANGE cannot see an attack that stays {e inside} its host's
    kernel view (the paper's example: a C&C server implanted into a web
    server, using only networking code the web server already needs).  The
    paper proposes profiling "the application's behavior, specifically its
    interactions with the kernel" and flagging runtime deviations.

    A behavior profile records which syscall handlers ([sys_*] functions)
    an application invokes and which {e transitions} between consecutive
    handlers it exhibits (bigrams).  The runtime side
    ({!Fc_core.Behavior_monitor}) watches handler entries via hypervisor
    breakpoints and raises alerts on transitions outside the profile. *)

type t = {
  app : string;
  handlers : (string * int) list;  (** sys_* handler -> invocation count *)
  bigrams : ((string * string) * int) list;
      (** (previous, current) handler transitions, with counts *)
}

val handler_names : Fc_kernel.Image.t -> (int * string) list
(** All [sys_*] handler (entry address, name) pairs of the base kernel —
    the observation points. *)

type session

val start : Fc_machine.Os.t -> target_pid:int -> session
(** Observe handler entries in the target's context (takes over the guest
    trace hook, like {!Profiler.start}). *)

val stop : session -> unit
val finish : session -> app:string -> t

val profile_app :
  ?config:Fc_machine.Os.config ->
  Fc_kernel.Image.t ->
  name:string ->
  Fc_machine.Action.t list ->
  t
(** One-shot behavioral profiling session (mirrors
    {!Profiler.profile_app}). *)

val knows_handler : t -> string -> bool
val knows_bigram : t -> prev:string -> cur:string -> bool

val novel_bigrams : t -> observed:t -> (string * string) list
(** Transitions in [observed] that the profile has never seen. *)

val to_string : t -> string
val of_string : string -> (t, string) result
val save : t -> string -> unit
val load : string -> (t, string) result
