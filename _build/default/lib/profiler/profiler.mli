(** The profiling-phase recorder (the paper's QEMU component, §III-A).

    A session observes every executed instruction in the guest and records
    a kernel address range when both of the paper's criteria hold: the
    address is in kernel space, and execution is in the target process'
    context.  Interrupt-context execution — not attached to any process —
    is recorded separately and folded into {e every} application's view.
    Module addresses are stored relative to the module base. *)

type session

val start : Fc_machine.Os.t -> target_pid:int -> session
(** Install the recorder (takes over the guest trace hook). *)

val stop : session -> unit
(** Remove the recorder.  Recording results remain readable. *)

val app_ranges : session -> Fc_ranges.Range_list.t
(** Ranges executed in the target's process context (interrupt context
    excluded), merged. *)

val interrupt_ranges : session -> Fc_ranges.Range_list.t
(** Ranges executed in interrupt context — under any process. *)

val view_ranges : session -> Fc_ranges.Range_list.t
(** [app ∪ interrupt]: what goes into the kernel view configuration. *)

val to_config : session -> app:string -> View_config.t

val profile_app :
  ?config:Fc_machine.Os.config ->
  Fc_kernel.Image.t ->
  name:string ->
  Fc_machine.Action.t list ->
  View_config.t
(** One-shot off-line profiling session: boot a fresh guest in the
    profiling environment ({!Fc_machine.Os.profiling_config} by default),
    run the given workload as process [name] to completion, and emit its
    kernel view configuration. *)
