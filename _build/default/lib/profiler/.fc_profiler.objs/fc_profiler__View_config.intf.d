lib/profiler/view_config.mli: Fc_ranges
