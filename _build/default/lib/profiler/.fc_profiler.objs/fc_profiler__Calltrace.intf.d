lib/profiler/calltrace.mli: Fc_kernel Fc_machine Format
