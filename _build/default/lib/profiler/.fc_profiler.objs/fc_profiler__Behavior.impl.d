lib/profiler/behavior.ml: Buffer Fc_isa Fc_kernel Fc_machine Fun Hashtbl In_channel List Option Printf String
