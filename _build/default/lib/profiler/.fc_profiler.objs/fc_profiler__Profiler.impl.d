lib/profiler/profiler.ml: Fc_kernel Fc_machine Fc_ranges Hashtbl List View_config
