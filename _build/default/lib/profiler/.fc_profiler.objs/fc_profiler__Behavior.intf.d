lib/profiler/behavior.mli: Fc_kernel Fc_machine
