lib/profiler/calltrace.ml: Fc_isa Fc_kernel Fc_machine Format Hashtbl List Printf String
