lib/profiler/view_config.ml: Buffer Fc_ranges Fun In_channel List Printf String
