lib/profiler/profiler.mli: Fc_kernel Fc_machine Fc_ranges View_config
