let page_size = Fc_mem.Phys_mem.page_size
let kernel_base = 0xc0000000
let text_base = 0xc0100000
let text_limit = 0xc0180000 (* 512 KiB reserved for base kernel code *)
let data_base = 0xc8000000
let current_task_ptr = data_base
let current_task_ptr_cpu ~vid = data_base + (4 * vid)
let module_list_head = data_base + 0x100
let task_struct_base = data_base + 0x1000
let task_struct_size = 0x100
let task_struct_addr ~pid = task_struct_base + (pid * task_struct_size)
let kstack_base = 0xc8100000
let kstack_size = 0x4000
let kstack_top ~pid = kstack_base + ((pid + 1) * kstack_size) - 4
let module_area_base = 0xf8000000
let module_area_limit = 0xf8100000 (* 1 MiB of module space *)

let gva_to_gpa gva =
  if gva < kernel_base then invalid_arg "Layout.gva_to_gpa: user address";
  gva - kernel_base

let gpa_to_gva gpa = gpa + kernel_base
let is_kernel_address a = a >= kernel_base
let is_text_address a = a >= text_base && a < text_limit
let is_module_address a = a >= module_area_base && a < module_area_limit
let page_of a = a / page_size
let page_addr a = a / page_size * page_size
