lib/kernel/catalog.mli: Kfunc
