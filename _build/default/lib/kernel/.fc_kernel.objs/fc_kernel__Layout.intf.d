lib/kernel/layout.mli:
