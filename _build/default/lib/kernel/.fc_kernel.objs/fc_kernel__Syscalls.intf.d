lib/kernel/syscalls.mli:
