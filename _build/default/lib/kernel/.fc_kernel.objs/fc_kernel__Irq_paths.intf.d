lib/kernel/irq_paths.mli:
