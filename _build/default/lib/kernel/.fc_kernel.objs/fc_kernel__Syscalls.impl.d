lib/kernel/syscalls.ml: Hashtbl List
