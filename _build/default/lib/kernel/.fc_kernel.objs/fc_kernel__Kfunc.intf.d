lib/kernel/kfunc.mli: Fc_isa
