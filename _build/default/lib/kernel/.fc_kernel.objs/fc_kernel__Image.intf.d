lib/kernel/image.mli: Fc_isa Kfunc
