lib/kernel/image.ml: Array Bytes Catalog Fc_isa Hashtbl Kfunc Layout List Option
