lib/kernel/layout.ml: Fc_mem
