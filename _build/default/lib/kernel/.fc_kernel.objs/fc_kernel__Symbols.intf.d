lib/kernel/symbols.mli: Fc_isa Format
