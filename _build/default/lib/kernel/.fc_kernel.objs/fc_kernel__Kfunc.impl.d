lib/kernel/kfunc.ml: Fc_isa List
