lib/kernel/symbols.ml: Array Fc_isa Format Hashtbl List Printf
