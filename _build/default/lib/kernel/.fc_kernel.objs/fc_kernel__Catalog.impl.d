lib/kernel/catalog.ml: Fc_isa Hashtbl Kfunc List Printf String
