lib/kernel/irq_paths.ml:
