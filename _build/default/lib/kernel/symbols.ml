module Asm = Fc_isa.Asm

type unit_syms = { base : int; funcs : Asm.placed array }

type t = { mutable units : unit_syms list; by_name : (string, int) Hashtbl.t }

let create () = { units = []; by_name = Hashtbl.create 1024 }

let add_unit t ?module_name (u : Asm.unit_image) =
  ignore module_name;
  let funcs = Array.of_list u.functions in
  t.units <- { base = u.base; funcs } :: t.units;
  List.iter (fun (p : Asm.placed) -> Hashtbl.replace t.by_name p.pname p.addr) u.functions

let remove_unit t ~base =
  let removed, kept = List.partition (fun u -> u.base = base) t.units in
  t.units <- kept;
  List.iter
    (fun u ->
      Array.iter
        (fun (p : Asm.placed) ->
          match Hashtbl.find_opt t.by_name p.pname with
          | Some a when a = p.addr -> Hashtbl.remove t.by_name p.pname
          | Some _ | None -> ())
        u.funcs)
    removed

let find_in_unit u addr =
  let n = Array.length u.funcs in
  let rec go lo hi =
    if lo >= hi then lo - 1
    else
      let mid = (lo + hi) / 2 in
      if u.funcs.(mid).Asm.addr <= addr then go (mid + 1) hi else go lo mid
  in
  let i = go 0 n in
  if i < 0 then None
  else
    let p = u.funcs.(i) in
    if addr < p.Asm.addr + p.Asm.size then Some (p.Asm.pname, addr - p.Asm.addr)
    else None

let find t addr = List.find_map (fun u -> find_in_unit u addr) t.units
let addr_of t name = Hashtbl.find_opt t.by_name name

let render t addr =
  match find t addr with
  | Some (name, 0) -> Printf.sprintf "0x%x <%s+0x0>" addr name
  | Some (name, off) -> Printf.sprintf "0x%x <%s+0x%x>" addr name off
  | None -> Printf.sprintf "0x%x <UNKNOWN>" addr

let pp t ppf addr = Format.pp_print_string ppf (render t addr)
