module Asm = Fc_isa.Asm

type t = {
  unit_image : Asm.unit_image;
  by_name : (string, Asm.placed) Hashtbl.t;
  (* function starts sorted by address, for binary search *)
  starts : Asm.placed array;
}

let build () =
  let specs = List.map Kfunc.to_spec Catalog.base_functions in
  match Asm.assemble ~base:Layout.text_base specs with
  | Error _ as e -> e
  | Ok unit_image ->
      let by_name = Hashtbl.create 1024 in
      List.iter
        (fun (p : Asm.placed) -> Hashtbl.replace by_name p.pname p)
        unit_image.functions;
      let starts = Array.of_list unit_image.functions in
      Ok { unit_image; by_name; starts }

let build_exn () =
  match build () with
  | Ok t -> t
  | Error msg -> failwith ("Image.build: " ^ msg)

let unit_image t = t.unit_image
let text_base t = t.unit_image.base
let text_end t = t.unit_image.base + Bytes.length t.unit_image.code
let addr_of t name = Option.map (fun (p : Asm.placed) -> p.addr) (Hashtbl.find_opt t.by_name name)

let addr_of_exn t name =
  match addr_of t name with
  | Some a -> a
  | None -> invalid_arg ("Image.addr_of_exn: unknown function " ^ name)

let placed_at t addr =
  (* Binary search for the last start <= addr. *)
  let n = Array.length t.starts in
  let rec go lo hi =
    if lo >= hi then lo - 1
    else
      let mid = (lo + hi) / 2 in
      if t.starts.(mid).Asm.addr <= addr then go (mid + 1) hi else go lo mid
  in
  let i = go 0 n in
  if i < 0 then None
  else
    let p = t.starts.(i) in
    if addr < p.Asm.addr + p.Asm.size then Some p else None

let functions t = t.unit_image.functions

let read_byte t gva =
  let off = gva - t.unit_image.base in
  if off >= 0 && off < Bytes.length t.unit_image.code then
    Some (Bytes.get_uint8 t.unit_image.code off)
  else None

let assemble_module_fns t ~base fns =
  let specs = List.map Kfunc.to_spec fns in
  Asm.assemble ~base ~resolve:(addr_of t) specs

let assemble_module t ~name ~base =
  match List.assoc_opt name Catalog.module_functions with
  | None -> Error ("unknown module: " ^ name)
  | Some fns -> assemble_module_fns t ~base fns

let false_prologues t =
  let read = read_byte t in
  let is_start =
    let h = Hashtbl.create 1024 in
    List.iter (fun (p : Asm.placed) -> Hashtbl.replace h p.Asm.addr ()) t.unit_image.functions;
    fun a -> Hashtbl.mem h a
  in
  let acc = ref [] in
  let a = ref (text_base t) in
  while !a < text_end t do
    if Fc_isa.Scan.is_prologue_at ~read !a && not (is_start !a) then acc := !a :: !acc;
    a := !a + 16
  done;
  List.rev !acc
