(** The assembled base kernel image and module assembly.

    [build ()] compiles the whole {!Catalog} base-kernel function list to
    bytes at {!Layout.text_base}.  Loadable modules are assembled on
    demand at their runtime load address ([assemble_module]), resolving
    their calls into the base kernel — this is why the profiler records
    module ranges relative to the module base: the same module assembled
    at a different base yields different absolute call displacements but
    identical structure. *)

type t

val build : unit -> (t, string) result
val build_exn : unit -> t

val unit_image : t -> Fc_isa.Asm.unit_image
val text_base : t -> int
val text_end : t -> int
(** One past the last byte of base kernel code. *)

val addr_of : t -> string -> int option
(** Address of a base-kernel function. *)

val addr_of_exn : t -> string -> int

val placed_at : t -> int -> Fc_isa.Asm.placed option
(** The base-kernel function containing the address, if any. *)

val functions : t -> Fc_isa.Asm.placed list

val read_byte : t -> int -> int option
(** Read a byte of base kernel code by guest-virtual address. *)

val assemble_module :
  t -> name:string -> base:int -> (Fc_isa.Asm.unit_image, string) result
(** Assemble one of {!Catalog.module_functions} (or any registered
    function list via [assemble_module_fns]) at [base], resolving
    unresolved calls against the base kernel symbol table. *)

val assemble_module_fns :
  t -> base:int -> Kfunc.t list -> (Fc_isa.Asm.unit_image, string) result

val false_prologues : t -> int list
(** Alignment-boundary addresses inside the text section that carry the
    prologue signature but are {e not} function starts — must be empty for
    boundary scanning to be sound; checked by the test suite. *)
