open Kfunc

let f = Kfunc.v

(* Helper-tree sizing knobs.  Tree node sizes (bytes) are the main lever
   for matching the paper's per-application view sizes (Table I). *)
let node = 471  (* deliberately not 16-aligned: real functions are not *)

let tree ~sub ~prefix ~n ~size =
  let name k = Printf.sprintf "%s_%03d" prefix k in
  List.init n (fun i ->
      let kids = List.filter (fun k -> k < n) [ (2 * i) + 1; (2 * i) + 2 ] in
      f ~size ~sub (name i) (List.map (fun k -> C (name k)) kids))

let root prefix = prefix ^ "_000"

(* ------------------------------------------------------------------ *)
(* core: syscall gate, user-return, signal-return glue                 *)
(* ------------------------------------------------------------------ *)

let core_fns =
  [
    (* The syscall gate dispatches through the syscall table: the first
       entry of every invocation's dispatch queue is the sys_* handler. *)
    f ~size:64 ~sub:"core" "syscall_call" [ D ];
    f ~size:64 ~sub:"core" "resume_userspace" [ F 8 ];
    f ~size:64 ~sub:"core" "ret_from_intr" [ F 8 ];
    f ~size:96 ~sub:"core" "do_notify_resume" [ C "do_signal" ];
  ]

(* ------------------------------------------------------------------ *)
(* sched                                                               *)
(* ------------------------------------------------------------------ *)

let sched_fns =
  [
    f ~size:288 ~sub:"sched" "schedule"
      [ C "pick_next_task_fair"; C (root "sched_aux"); C "context_switch" ];
    f ~size:192 ~sub:"sched" "pick_next_task_fair"
      [ C "update_curr"; C "pick_next_entity" ];
    f ~size:144 ~sub:"sched" "update_curr" [];
    f ~size:128 ~sub:"sched" "pick_next_entity" [];
    f ~size:160 ~sub:"sched" "context_switch"
      [ C "prepare_task_switch"; C "__switch_to"; C "finish_task_switch" ];
    f ~size:96 ~sub:"sched" "prepare_task_switch" [];
    f ~size:128 ~sub:"sched" "__switch_to" [];
    f ~size:96 ~sub:"sched" "finish_task_switch" [];
    f ~size:176 ~sub:"sched" "scheduler_tick" [ C "task_tick_fair" ];
    f ~size:128 ~sub:"sched" "task_tick_fair" [ C "update_curr" ];
    f ~size:176 ~sub:"sched" "try_to_wake_up"
      [ C "enqueue_task_fair"; C "check_preempt_curr" ];
    f ~size:128 ~sub:"sched" "enqueue_task_fair" [];
    f ~size:128 ~sub:"sched" "dequeue_task_fair" [];
    f ~size:96 ~sub:"sched" "check_preempt_curr" [];
    f ~size:112 ~sub:"sched" "__wake_up" [ C "try_to_wake_up" ];
    f ~size:96 ~sub:"sched" "prepare_to_wait_exclusive" [];
    f ~size:96 ~sub:"sched" "prepare_to_wait" [];
    f ~size:64 ~sub:"sched" "finish_wait" [];
    f ~size:128 ~sub:"sched" "sys_sched_yield" [ C "schedule" ];
  ]
  @ tree ~sub:"sched" ~prefix:"sched_aux" ~n:24 ~size:node

(* ------------------------------------------------------------------ *)
(* irq: entry glue, timer, net-rx, keyboard, disk                      *)
(* ------------------------------------------------------------------ *)

let irq_fns =
  [
    (* Dispatch 1: the device handler; softirq dispatches its action. *)
    f ~size:144 ~sub:"irq" "irq_entry" [ C "irq_enter"; D; C "irq_exit" ];
    f ~size:64 ~sub:"irq" "irq_enter" [];
    f ~size:96 ~sub:"irq" "irq_exit" [ C "do_softirq" ];
    f ~size:128 ~sub:"irq" "do_softirq" [ D ];
    f ~size:32 ~sub:"irq" "softirq_none" [];
    (* timer *)
    f ~size:128 ~sub:"irq" "timer_interrupt" [ C "tick_periodic" ];
    f ~size:144 ~sub:"irq" "tick_periodic"
      [ C "clocksource_read"; C "do_timer"; C "update_process_times" ];
    f ~size:64 ~sub:"irq" "clocksource_read" [ D ];
    f ~size:96 ~sub:"irq" "do_timer" [ C "calc_global_load" ];
    f ~size:96 ~sub:"irq" "calc_global_load" [];
    f ~size:144 ~sub:"irq" "update_process_times"
      [ C "account_process_tick"; C "run_local_timers"; C "scheduler_tick" ];
    f ~size:96 ~sub:"irq" "account_process_tick" [];
    f ~size:96 ~sub:"irq" "run_local_timers" [ C "raise_softirq" ];
    f ~size:64 ~sub:"irq" "raise_softirq" [];
    f ~size:160 ~sub:"irq" "run_timer_softirq" [ C "__run_timers" ];
    f ~size:128 ~sub:"irq" "__run_timers" [ D; C (root "timer_aux") ];
    f ~size:96 ~sub:"irq" "process_timeout" [ C "__wake_up" ];
    (* network receive *)
    f ~size:160 ~sub:"irq" "e1000_intr" [ C "__napi_schedule" ];
    f ~size:64 ~sub:"irq" "__napi_schedule" [];
    f ~size:192 ~sub:"net" "net_rx_action" [ C "process_backlog" ];
    f ~size:128 ~sub:"net" "process_backlog" [ C "netif_receive_skb" ];
    (* Two delivery slots: a packet-socket tap (tcpdump) and the inet
       stack; non-sniffed traffic uses deliver_skb_none for the tap. *)
    f ~size:192 ~sub:"net" "netif_receive_skb" [ D; D ];
    f ~size:32 ~sub:"net" "deliver_skb_none" [];
    (* keyboard *)
    f ~size:128 ~sub:"irq" "keyboard_interrupt" [ C "kbd_event" ];
    f ~size:128 ~sub:"input" "kbd_event" [ C "input_event" ];
    f ~size:128 ~sub:"input" "input_event" [ C "input_pass_event" ];
    f ~size:96 ~sub:"input" "input_pass_event" [ D ];
    (* disk *)
    f ~size:128 ~sub:"irq" "ahci_intr" [ C "blk_irq_done" ];
    f ~size:96 ~sub:"irq" "blk_irq_done" [ C "raise_softirq" ];
    f ~size:128 ~sub:"block" "blk_done_softirq" [ C "bio_endio" ];
    f ~size:96 ~sub:"block" "bio_endio" [ C "__wake_up" ];
  ]
  @ tree ~sub:"irq" ~prefix:"timer_aux" ~n:12 ~size:397

(* ------------------------------------------------------------------ *)
(* clock: base-kernel clocksources.  The kvmclock read path lives in   *)
(* the kvmclock module and is never exercised while profiling (QEMU    *)
(* uses the ACPI PM timer), so pvclock_clocksource_read and            *)
(* native_read_tsc are also absent from every profiled view.           *)
(* ------------------------------------------------------------------ *)

let clock_fns =
  [
    f ~size:96 ~sub:"clock" "acpi_pm_read" [];
    f ~size:112 ~sub:"clock" "pvclock_clocksource_read" [ C "native_read_tsc" ];
    f ~size:64 ~sub:"clock" "native_read_tsc" [];
    f ~size:128 ~sub:"clock" "ktime_get" [ C "clocksource_read" ];
    f ~size:112 ~sub:"clock" "sys_gettimeofday" [ C "ktime_get" ];
    f ~size:128 ~sub:"clock" "sys_nanosleep"
      [ C "ktime_get"; B 1; C "schedule" ];
  ]

(* ------------------------------------------------------------------ *)
(* task: fork/clone/exec/exit/wait                                     *)
(* ------------------------------------------------------------------ *)

let task_fns =
  [
    f ~size:128 ~sub:"task" "sys_fork" [ C "do_fork" ];
    f ~size:128 ~sub:"task" "sys_clone" [ C "do_fork" ];
    f ~size:256 ~sub:"task" "do_fork"
      [ Cold 48; C "copy_process"; C "wake_up_new_task" ];
    f ~size:320 ~sub:"task" "copy_process"
      [ C "dup_task_struct"; C "copy_mm"; C "copy_files"; C "copy_thread"; C "alloc_pid" ];
    f ~size:160 ~sub:"task" "dup_task_struct" [ C "kmem_cache_alloc" ];
    f ~size:192 ~sub:"task" "copy_mm" [ C "kmem_cache_alloc" ];
    f ~size:160 ~sub:"task" "copy_files" [ C "kmem_cache_alloc" ];
    f ~size:128 ~sub:"task" "copy_thread" [];
    f ~size:128 ~sub:"task" "alloc_pid" [ C "kmem_cache_alloc" ];
    f ~size:112 ~sub:"task" "wake_up_new_task" [ C "try_to_wake_up" ];
    f ~size:160 ~sub:"task" "sys_execve" [ C "do_execve" ];
    f ~size:288 ~sub:"task" "do_execve"
      [ C "open_exec"; C "search_binary_handler"; C (root "exec_aux") ];
    f ~size:144 ~sub:"task" "open_exec" [ C "do_filp_open" ];
    f ~size:224 ~sub:"task" "search_binary_handler" [ C "load_elf_binary" ];
    f ~size:320 ~sub:"task" "load_elf_binary"
      [ C "do_mmap_pgoff"; C "do_mmap_pgoff" ];
    f ~size:160 ~sub:"task" "sys_exit_group" [ C "do_exit" ];
    f ~size:288 ~sub:"task" "do_exit"
      [ C "exit_mm"; C "exit_files"; C "exit_notify"; C "schedule" ];
    f ~size:144 ~sub:"task" "exit_mm" [];
    f ~size:144 ~sub:"task" "exit_files" [ C "fput" ];
    f ~size:128 ~sub:"task" "exit_notify" [ C "send_signal" ];
    f ~size:192 ~sub:"task" "sys_waitpid" [ C "do_wait" ];
    f ~size:224 ~sub:"task" "do_wait" [ C "prepare_to_wait"; B 2; C "finish_wait" ];
    f ~size:128 ~sub:"task" "sys_getpid" [];
    f ~size:112 ~sub:"task" "sys_getuid" [];
    f ~size:144 ~sub:"task" "sys_uname" [ C "copy_to_user" ];
    f ~size:176 ~sub:"task" "sys_sysinfo" [ C "copy_to_user" ];
    f ~size:144 ~sub:"task" "sys_getrlimit" [ C "copy_to_user" ];
    f ~size:160 ~sub:"task" "sys_setrlimit" [ C "copy_from_user" ];
  ]
  @ tree ~sub:"task" ~prefix:"exec_aux" ~n:36 ~size:node

(* ------------------------------------------------------------------ *)
(* signal + itimer                                                     *)
(* ------------------------------------------------------------------ *)

let signal_fns =
  [
    f ~size:176 ~sub:"signal" "sys_rt_sigaction" [ C "do_sigaction" ];
    f ~size:144 ~sub:"signal" "do_sigaction" [];
    f ~size:144 ~sub:"signal" "sys_rt_sigprocmask" [];
    f ~size:128 ~sub:"signal" "sys_kill" [ C "send_signal" ];
    f ~size:176 ~sub:"signal" "send_signal" [ C "signal_wake_up" ];
    f ~size:96 ~sub:"signal" "signal_wake_up" [ C "try_to_wake_up" ];
    f ~size:224 ~sub:"signal" "do_signal"
      [ C "get_signal_to_deliver"; C "handle_signal" ];
    f ~size:160 ~sub:"signal" "get_signal_to_deliver" [];
    f ~size:176 ~sub:"signal" "handle_signal" [ C "setup_frame" ];
    f ~size:160 ~sub:"signal" "setup_frame" [ C "copy_to_user" ];
    f ~size:128 ~sub:"signal" "sys_sigreturn" [ C "restore_sigcontext" ];
    f ~size:112 ~sub:"signal" "restore_sigcontext" [ C "copy_from_user" ];
    f ~size:160 ~sub:"signal" "sys_setitimer" [ C "hrtimer_start" ];
    f ~size:144 ~sub:"signal" "hrtimer_start" [];
    f ~size:128 ~sub:"signal" "it_real_fn" [ C "send_signal" ];
    f ~size:112 ~sub:"signal" "sys_alarm" [ C "hrtimer_start" ];
    f ~size:96 ~sub:"signal" "sys_pause" [ B 3; C "schedule" ];
    f ~size:144 ~sub:"signal" "sys_sigaltstack" [ C "copy_from_user" ];
    f ~size:128 ~sub:"signal" "sys_rt_sigsuspend" [ B 28; C "schedule" ];
  ]

(* ------------------------------------------------------------------ *)
(* mm: faults, mmap/brk, allocators                                    *)
(* ------------------------------------------------------------------ *)

let mm_fns =
  [
    f ~size:224 ~sub:"mm" "do_page_fault" [ C "handle_mm_fault" ];
    f ~size:256 ~sub:"mm" "handle_mm_fault" [ Cold 56; C "__do_fault" ];
    f ~size:224 ~sub:"mm" "__do_fault" [ C "filemap_fault" ];
    f ~size:256 ~sub:"mm" "filemap_fault"
      [ C "find_get_page"; C (root "mm_fault_aux") ];
    f ~size:144 ~sub:"mm" "find_get_page" [];
    f ~size:160 ~sub:"mm" "sys_brk" [ C "do_brk" ];
    f ~size:224 ~sub:"mm" "do_brk" [ C "kmem_cache_alloc" ];
    f ~size:192 ~sub:"mm" "sys_mmap2" [ C "do_mmap_pgoff" ];
    f ~size:320 ~sub:"mm" "do_mmap_pgoff"
      [ C "get_unmapped_area"; Cold 48; C "mmap_region" ];
    f ~size:160 ~sub:"mm" "get_unmapped_area" [];
    f ~size:256 ~sub:"mm" "mmap_region"
      [ C "kmem_cache_alloc"; C (root "mm_map_aux") ];
    f ~size:176 ~sub:"mm" "sys_munmap" [ C "do_munmap" ];
    f ~size:224 ~sub:"mm" "do_munmap" [ C "kmem_cache_free" ];
    f ~size:160 ~sub:"mm" "sys_mprotect" [];
    f ~size:192 ~sub:"mm" "__kmalloc" [ C "kmem_cache_alloc" ];
    f ~size:176 ~sub:"mm" "kmem_cache_alloc" [];
    f ~size:144 ~sub:"mm" "kmem_cache_free" [];
    f ~size:144 ~sub:"mm" "kfree" [ C "kmem_cache_free" ];
    f ~size:192 ~sub:"mm" "__alloc_pages_nodemask" [];
    f ~size:176 ~sub:"mm" "sys_madvise" [];
    f ~size:192 ~sub:"mm" "sys_mlock" [ C "__alloc_pages_nodemask" ];
    f ~size:128 ~sub:"mm" "__free_pages" [];
  ]
  @ tree ~sub:"mm" ~prefix:"mm_fault_aux" ~n:22 ~size:node
  @ tree ~sub:"mm" ~prefix:"mm_map_aux" ~n:16 ~size:node

(* ------------------------------------------------------------------ *)
(* lib: string/format/uaccess helpers                                  *)
(* ------------------------------------------------------------------ *)

let lib_fns =
  [
    f ~size:112 ~sub:"lib" "strnlen" [];
    f ~size:96 ~sub:"lib" "strlen" [];
    f ~size:128 ~sub:"lib" "memcpy" [];
    f ~size:112 ~sub:"lib" "memset" [];
    f ~size:112 ~sub:"lib" "strcmp" [];
    (* Fig. 5: vsnprintf invokes strnlen on %s arguments. *)
    f ~size:512 ~sub:"lib" "vsnprintf" [ C "strnlen"; C "memcpy" ];
    f ~size:112 ~sub:"lib" "snprintf" [ C "vsnprintf" ];
    f ~size:96 ~sub:"lib" "sprintf" [ C "vsnprintf" ];
    f ~size:144 ~sub:"lib" "copy_to_user" [ C "memcpy" ];
    f ~size:144 ~sub:"lib" "copy_from_user" [ C "memcpy" ];
    f ~size:96 ~sub:"lib" "strncpy_from_user" [ C "copy_from_user" ];
  ]
  @ tree ~sub:"lib" ~prefix:"lib_aux" ~n:10 ~size:311

(* ------------------------------------------------------------------ *)
(* vfs: open/read/write/stat/poll/select + namei/dcache                *)
(* ------------------------------------------------------------------ *)

let vfs_fns =
  [
    f ~size:192 ~sub:"vfs" "sys_open" [ C "do_sys_open" ];
    f ~size:224 ~sub:"vfs" "do_sys_open" [ C "do_filp_open"; C "fd_install" ];
    f ~size:160 ~sub:"vfs" "filp_open" [ C "do_filp_open" ];
    f ~size:320 ~sub:"vfs" "do_filp_open"
      [ C "path_lookup"; Cold 56; C "security_file_open"; D ];
    f ~size:288 ~sub:"vfs" "path_lookup"
      [ C "link_path_walk"; C (root "namei_aux") ];
    f ~size:256 ~sub:"vfs" "link_path_walk" [ C "d_lookup"; C "d_lookup" ];
    f ~size:176 ~sub:"vfs" "d_lookup" [];
    f ~size:96 ~sub:"vfs" "fd_install" [];
    f ~size:128 ~sub:"vfs" "fget" [];
    f ~size:112 ~sub:"vfs" "fput" [];
    f ~size:160 ~sub:"vfs" "sys_close" [ C "filp_close" ];
    (* The dispatch slot is the file's release op (sock_close for sockets,
       release_none for plain files). *)
    f ~size:144 ~sub:"vfs" "filp_close" [ D; C "fput" ];
    f ~size:32 ~sub:"vfs" "release_none" [];
    f ~size:224 ~sub:"vfs" "sys_read" [ C "fget"; C "vfs_read"; C "fput" ];
    f ~size:256 ~sub:"vfs" "vfs_read"
      [ C "rw_verify_area"; C "security_file_permission"; Cold 40; D; C "copy_to_user" ];
    f ~size:224 ~sub:"vfs" "sys_write" [ C "fget"; C "vfs_write"; C "fput" ];
    f ~size:256 ~sub:"vfs" "vfs_write"
      [ C "rw_verify_area"; C "security_file_permission"; Cold 40; C "copy_from_user"; D ];
    f ~size:128 ~sub:"vfs" "rw_verify_area" [];
    f ~size:176 ~sub:"vfs" "do_sync_read" [ D ];
    f ~size:176 ~sub:"vfs" "do_sync_write" [ D ];
    f ~size:192 ~sub:"vfs" "sys_stat64" [ C "vfs_stat" ];
    f ~size:176 ~sub:"vfs" "sys_fstat64" [ C "vfs_getattr" ];
    f ~size:192 ~sub:"vfs" "vfs_stat" [ C "path_lookup"; C "vfs_getattr" ];
    f ~size:160 ~sub:"vfs" "vfs_getattr" [ D ];
    f ~size:160 ~sub:"vfs" "sys_lseek" [ C "fget"; C "fput" ];
    f ~size:176 ~sub:"vfs" "sys_fcntl64" [ C "fget"; C "fput" ];
    f ~size:160 ~sub:"vfs" "sys_dup2" [ C "fget"; C "fd_install" ];
    f ~size:176 ~sub:"vfs" "sys_ioctl" [ C "fget"; C "do_vfs_ioctl"; C "fput" ];
    f ~size:192 ~sub:"vfs" "do_vfs_ioctl" [ D ];
    f ~size:224 ~sub:"vfs" "sys_getdents64" [ C "fget"; C "vfs_readdir"; C "fput" ];
    f ~size:192 ~sub:"vfs" "vfs_readdir" [ C "security_file_permission"; D ];
    f ~size:192 ~sub:"vfs" "sys_access" [ C "path_lookup" ];
    f ~size:224 ~sub:"vfs" "sys_unlink" [ C "path_lookup"; D ];
    f ~size:192 ~sub:"vfs" "sys_rename" [ C "path_lookup"; C "path_lookup"; D ];
    f ~size:192 ~sub:"vfs" "sys_mkdir" [ C "path_lookup"; D ];
    f ~size:160 ~sub:"vfs" "sys_fsync" [ C "fget"; D; C "fput" ];
    f ~size:176 ~sub:"vfs" "file_update_time" [ C "__mark_inode_dirty" ];
    f ~size:160 ~sub:"vfs" "__mark_inode_dirty" [ D ];
    f ~size:32 ~sub:"vfs" "dirty_inode_none" [];
    (* Fig. 3 chain: sys_poll's call to do_sys_poll returns to an odd
       address (instant recovery); do_sys_poll's call to do_poll returns
       to an even address (lazy recovery). *)
    f ~size:160 ~sub:"vfs" "sys_poll" [ Cp ("do_sys_poll", Fc_isa.Asm.Odd_return) ];
    f ~size:384 ~sub:"vfs" "do_sys_poll"
      [ C "copy_from_user"; Cp ("do_poll", Fc_isa.Asm.Even_return); C "copy_to_user" ];
    f ~size:288 ~sub:"vfs" "do_poll" [ D; C "prepare_to_wait"; C "finish_wait" ];
    f ~size:224 ~sub:"vfs" "sys_select" [ C "core_sys_select" ];
    f ~size:288 ~sub:"vfs" "core_sys_select" [ C "copy_from_user"; C "do_select"; C "copy_to_user" ];
    f ~size:320 ~sub:"vfs" "do_select" [ D; C "prepare_to_wait"; C "finish_wait" ];
    f ~size:192 ~sub:"vfs" "sys_epoll_create" [ C "kmem_cache_alloc" ];
    f ~size:224 ~sub:"vfs" "sys_epoll_ctl" [ C "fget"; C "fput" ];
    f ~size:288 ~sub:"vfs" "sys_epoll_wait" [ C "ep_poll"; C "copy_to_user" ];
    f ~size:224 ~sub:"vfs" "ep_poll" [ D; C "prepare_to_wait"; B 4; C "finish_wait" ];
    f ~size:160 ~sub:"vfs" "generic_file_llseek" [];
    (* zero-copy file->socket path used by network file servers *)
    f ~size:224 ~sub:"vfs" "sys_sendfile64" [ C "fget"; C "do_sendfile"; C "fput" ];
    f ~size:288 ~sub:"vfs" "do_sendfile" [ C (root "splice_aux"); D; D ];
    (* vectored I/O: one vfs round per iovec segment *)
    f ~size:256 ~sub:"vfs" "sys_readv" [ C "fget"; C "vfs_read"; C "vfs_read"; C "fput" ];
    f ~size:256 ~sub:"vfs" "sys_writev" [ C "fget"; C "vfs_write"; C "vfs_write"; C "fput" ];
    (* attribute changes dispatch to the filesystem's setattr op *)
    f ~size:208 ~sub:"vfs" "sys_chmod" [ C "path_lookup"; D ];
    f ~size:208 ~sub:"vfs" "sys_chown" [ C "path_lookup"; D ];
    f ~size:192 ~sub:"vfs" "sys_utime" [ C "path_lookup"; D ];
    f ~size:192 ~sub:"vfs" "sys_ftruncate" [ C "fget"; D; C "fput" ];
    f ~size:208 ~sub:"vfs" "sys_fallocate" [ C "fget"; D; C "fput" ];
    f ~size:176 ~sub:"vfs" "sys_sync" [ C "sync_filesystems" ];
    f ~size:192 ~sub:"vfs" "sync_filesystems"
      [ C "jbd2_commit_transaction"; C "submit_bio" ];
    f ~size:144 ~sub:"vfs" "sys_getcwd" [ C "copy_to_user" ];
    f ~size:112 ~sub:"vfs" "sys_umask" [];
    f ~size:128 ~sub:"vfs" "generic_permission" [];
  ]
  @ tree ~sub:"vfs" ~prefix:"namei_aux" ~n:20 ~size:node
  @ tree ~sub:"vfs" ~prefix:"splice_aux" ~n:36 ~size:node

(* ------------------------------------------------------------------ *)
(* pagecache write path shared by disk filesystems (Fig. 5 chain)      *)
(* ------------------------------------------------------------------ *)

let pagecache_fns =
  [
    f ~size:224 ~sub:"vfs" "generic_file_aio_write" [ C "__generic_file_aio_write" ];
    f ~size:320 ~sub:"vfs" "__generic_file_aio_write"
      [ C "file_update_time"; C "generic_file_buffered_write" ];
    f ~size:288 ~sub:"vfs" "generic_file_buffered_write"
      [ C "copy_from_user"; D ];
    f ~size:256 ~sub:"vfs" "generic_file_aio_read"
      [ C "find_get_page"; C "copy_to_user"; D ];
    f ~size:32 ~sub:"vfs" "readpage_none" [];
  ]

(* ------------------------------------------------------------------ *)
(* pipe + fifo                                                         *)
(* ------------------------------------------------------------------ *)

let pipe_fns =
  [
    f ~size:192 ~sub:"pipe" "sys_pipe" [ C "do_pipe"; C "fd_install"; C "fd_install" ];
    f ~size:224 ~sub:"pipe" "do_pipe" [ C "get_pipe_inode" ];
    f ~size:176 ~sub:"pipe" "get_pipe_inode" [ C "kmem_cache_alloc" ];
    f ~size:256 ~sub:"pipe" "pipe_read" [ C "pipe_wait"; C "copy_to_user"; C "__wake_up" ];
    f ~size:256 ~sub:"pipe" "pipe_write" [ Cold 32; C "copy_from_user"; C "__wake_up" ];
    f ~size:208 ~sub:"pipe" "pipe_poll" [ B 5 ];
    f ~size:144 ~sub:"pipe" "pipe_wait" [ C "prepare_to_wait"; B 6; C "finish_wait" ];
    f ~size:128 ~sub:"pipe" "pipe_release" [ C "kmem_cache_free" ];
  ]

(* ------------------------------------------------------------------ *)
(* procfs                                                              *)
(* ------------------------------------------------------------------ *)

let procfs_fns =
  [
    f ~size:176 ~sub:"procfs" "proc_reg_open" [];
    f ~size:208 ~sub:"procfs" "proc_file_read" [ C "snprintf"; Cold 24; D ];
    f ~size:224 ~sub:"procfs" "proc_pid_status_show" [ C "snprintf"; C "snprintf" ];
    f ~size:256 ~sub:"procfs" "proc_stat_show" [ C "snprintf"; C "ktime_get" ];
    f ~size:224 ~sub:"procfs" "proc_meminfo_show" [ C "snprintf" ];
    f ~size:224 ~sub:"procfs" "proc_loadavg_show" [ C "snprintf" ];
    f ~size:256 ~sub:"procfs" "proc_pid_readdir" [ C "snprintf"; C (root "proc_aux") ];
    f ~size:208 ~sub:"procfs" "proc_lookup" [ C "d_lookup" ];
    f ~size:160 ~sub:"procfs" "proc_getattr" [];
  ]
  @ tree ~sub:"procfs" ~prefix:"proc_aux" ~n:32 ~size:node

(* ------------------------------------------------------------------ *)
(* tty: line discipline, console, pty                                  *)
(* ------------------------------------------------------------------ *)

let tty_fns =
  [
    f ~size:256 ~sub:"tty" "tty_read" [ C "n_tty_read" ];
    f ~size:320 ~sub:"tty" "n_tty_read"
      [ C "prepare_to_wait"; B 7; C "finish_wait"; C "copy_to_user" ];
    f ~size:256 ~sub:"tty" "tty_write" [ C "n_tty_write" ];
    f ~size:288 ~sub:"tty" "n_tty_write" [ C "copy_from_user"; D ];
    f ~size:224 ~sub:"tty" "con_write" [ C "do_con_write" ];
    f ~size:352 ~sub:"tty" "do_con_write" [ C (root "console_aux") ];
    f ~size:192 ~sub:"tty" "pty_write" [ C (root "pty_aux"); C "tty_insert_flip_string" ];
    f ~size:176 ~sub:"tty" "tty_insert_flip_string" [ C "memcpy" ];
    f ~size:160 ~sub:"tty" "tty_flip_buffer_push" [ C "n_tty_receive_buf" ];
    f ~size:288 ~sub:"tty" "n_tty_receive_buf" [ C "__wake_up" ];
    f ~size:96 ~sub:"tty" "tty_receive_char" [ C "tty_flip_buffer_push" ];
    f ~size:224 ~sub:"tty" "tty_poll" [ B 8 ];
    f ~size:256 ~sub:"tty" "tty_ioctl" [ C (root "tty_aux") ];
    f ~size:192 ~sub:"tty" "tty_open" [ C "kmem_cache_alloc" ];
    f ~size:160 ~sub:"tty" "tty_release" [ C "kmem_cache_free" ];
  ]
  @ tree ~sub:"tty" ~prefix:"console_aux" ~n:26 ~size:node
  @ tree ~sub:"tty" ~prefix:"pty_aux" ~n:26 ~size:node
  @ tree ~sub:"tty" ~prefix:"tty_aux" ~n:14 ~size:397

(* ------------------------------------------------------------------ *)
(* ext4 + jbd2 + block (built into the base kernel, as in the paper's  *)
(* Ubuntu 10.04 guest: Fig. 5 shows ext4/jbd2 at base addresses)       *)
(* ------------------------------------------------------------------ *)

let ext4_fns =
  [
    f ~size:224 ~sub:"ext4" "ext4_file_open" [ C "generic_permission" ];
    f ~size:208 ~sub:"ext4" "ext4_file_read" [ C "generic_file_aio_read" ];
    (* Fig. 5 write chain *)
    f ~size:224 ~sub:"ext4" "ext4_file_write" [ Cold 32; C "generic_file_aio_write" ];
    f ~size:256 ~sub:"ext4" "ext4_write_begin" [ C "ext4_journal_start"; C "ext4_get_block" ];
    f ~size:224 ~sub:"ext4" "ext4_write_end" [ C "ext4_journal_stop" ];
    f ~size:288 ~sub:"ext4" "ext4_get_block" [ Cold 48; C (root "ext4_map_aux") ];
    f ~size:208 ~sub:"ext4" "ext4_readpage" [ C "ext4_get_block"; C "submit_bio" ];
    f ~size:224 ~sub:"ext4" "ext4_dirty_inode" [ C "ext4_journal_start"; C "__ext4_journal_stop" ];
    f ~size:176 ~sub:"ext4" "ext4_journal_start" [ C "jbd2_journal_start" ];
    f ~size:160 ~sub:"ext4" "ext4_journal_stop" [ C "__ext4_journal_stop" ];
    f ~size:192 ~sub:"ext4" "__ext4_journal_stop" [ C "jbd2_journal_stop" ];
    f ~size:224 ~sub:"ext4" "ext4_getattr" [];
    f ~size:240 ~sub:"ext4" "ext4_setattr"
      [ C "ext4_journal_start"; C "__mark_inode_dirty"; C "ext4_journal_stop" ];
    f ~size:288 ~sub:"ext4" "ext4_truncate"
      [ C "ext4_journal_start"; C "ext4_get_block"; C "ext4_journal_stop" ];
    f ~size:256 ~sub:"ext4" "ext4_fallocate"
      [ C "ext4_journal_start"; C "ext4_get_block"; C "ext4_journal_stop" ];
    f ~size:256 ~sub:"ext4" "ext4_readdir" [ C "ext4_get_block" ];
    f ~size:224 ~sub:"ext4" "ext4_lookup" [ C "ext4_get_block"; C "d_lookup" ];
    f ~size:256 ~sub:"ext4" "ext4_unlink" [ C "ext4_journal_start"; C "ext4_journal_stop" ];
    f ~size:256 ~sub:"ext4" "ext4_rename" [ C "ext4_journal_start"; C "ext4_journal_stop" ];
    f ~size:256 ~sub:"ext4" "ext4_mkdir" [ C "ext4_journal_start"; C "ext4_journal_stop" ];
    f ~size:224 ~sub:"ext4" "ext4_sync_file"
      [ C "jbd2_commit_transaction"; C "jbd2_log_wait_commit" ];
    f ~size:176 ~sub:"jbd2" "jbd2_journal_start" [ C "kmem_cache_alloc" ];
    f ~size:208 ~sub:"jbd2" "jbd2_journal_stop" [ C "__jbd2_log_start_commit" ];
    f ~size:176 ~sub:"jbd2" "__jbd2_log_start_commit" [ C "__wake_up" ];
    f ~size:192 ~sub:"jbd2" "jbd2_log_wait_commit" [ C "prepare_to_wait"; B 9; C "finish_wait" ];
    f ~size:192 ~sub:"block" "submit_bio" [ C "generic_make_request" ];
    f ~size:256 ~sub:"block" "generic_make_request" [ C "__make_request" ];
    f ~size:288 ~sub:"block" "__make_request" [ C (root "elv_aux") ];
  ]
  @ tree ~sub:"ext4" ~prefix:"ext4_map_aux" ~n:110 ~size:node
  @ tree ~sub:"jbd2" ~prefix:"jbd2_aux" ~n:32 ~size:node
  @ tree ~sub:"block" ~prefix:"elv_aux" ~n:28 ~size:node

(* jbd2_aux is reached from the commit path *)
let ext4_fns =
  ext4_fns
  @ [ f ~size:224 ~sub:"jbd2" "jbd2_commit_transaction" [ C (root "jbd2_aux"); C "submit_bio" ] ]

(* ------------------------------------------------------------------ *)
(* net core: socket syscalls, skb helpers                              *)
(* ------------------------------------------------------------------ *)

let net_fns =
  [
    f ~size:224 ~sub:"net" "sys_socket" [ C "sock_create"; C "fd_install" ];
    f ~size:256 ~sub:"net" "sock_create" [ C "security_socket_create"; D ];
    (* Fig. 4 bind chain *)
    f ~size:224 ~sub:"net" "sys_bind" [ C "security_socket_bind"; D ];
    f ~size:224 ~sub:"net" "sys_connect" [ C "security_socket_connect"; D ];
    f ~size:224 ~sub:"net" "sys_listen" [ D ];
    f ~size:288 ~sub:"net" "sys_accept" [ D; C "sock_alloc"; C "fd_install" ];
    f ~size:256 ~sub:"net" "sys_sendto" [ C "sock_sendmsg" ];
    f ~size:224 ~sub:"net" "sys_send" [ C "sock_sendmsg" ];
    (* Fig. 4 recvfrom chain *)
    f ~size:256 ~sub:"net" "sys_recvfrom" [ C "sock_recvmsg" ];
    f ~size:224 ~sub:"net" "sys_recv" [ C "sock_recvmsg" ];
    f ~size:224 ~sub:"net" "sys_sendmsg" [ C "sock_sendmsg" ];
    f ~size:224 ~sub:"net" "sys_recvmsg" [ C "sock_recvmsg" ];
    f ~size:208 ~sub:"net" "sock_sendmsg" [ C "security_socket_sendmsg"; Cold 24; D ];
    f ~size:208 ~sub:"net" "sock_recvmsg" [ C "security_socket_recvmsg"; D ];
    f ~size:176 ~sub:"net" "sock_common_recvmsg" [ D ];
    f ~size:176 ~sub:"net" "sys_setsockopt" [ D ];
    f ~size:160 ~sub:"net" "sys_getsockname" [ C "copy_to_user" ];
    f ~size:176 ~sub:"net" "sys_getsockopt" [ D; C "copy_to_user" ];
    f ~size:32 ~sub:"net" "getsockopt_none" [];
    f ~size:224 ~sub:"net" "sys_socketpair" [ D; D; C "fd_install"; C "fd_install" ];
    f ~size:176 ~sub:"net" "sys_shutdown" [ D ];
    f ~size:160 ~sub:"net" "sock_alloc" [ C "kmem_cache_alloc" ];
    f ~size:176 ~sub:"net" "sk_alloc" [ C "kmem_cache_alloc" ];
    f ~size:160 ~sub:"net" "sock_poll" [ D ];
    f ~size:144 ~sub:"net" "lock_sock_nested" [];
    f ~size:128 ~sub:"net" "release_sock" [];
    f ~size:192 ~sub:"net" "alloc_skb" [ C "kmem_cache_alloc" ];
    f ~size:160 ~sub:"net" "kfree_skb" [ C "kmem_cache_free" ];
    f ~size:208 ~sub:"net" "skb_copy_datagram_iovec" [ C "copy_to_user" ];
    f ~size:224 ~sub:"net" "__skb_recv_datagram" [ C "prepare_to_wait_exclusive"; B 10 ];
    f ~size:176 ~sub:"net" "sock_queue_rcv_skb" [ C "__wake_up" ];
    f ~size:256 ~sub:"net" "dev_queue_xmit" [ C (root "qdisc_aux") ];
    f ~size:176 ~sub:"net" "sock_close" [ D; C "fput" ];
  ]
  @ tree ~sub:"net" ~prefix:"qdisc_aux" ~n:12 ~size:397

(* ------------------------------------------------------------------ *)
(* ip: routing, input/output path                                      *)
(* ------------------------------------------------------------------ *)

let ip_fns =
  [
    f ~size:256 ~sub:"ip" "ip_rcv" [ C "ip_rcv_finish" ];
    f ~size:224 ~sub:"ip" "ip_rcv_finish" [ C "ip_route_input"; C "ip_local_deliver" ];
    f ~size:256 ~sub:"ip" "ip_route_input" [ C "fib_lookup"; C (root "route_aux") ];
    f ~size:224 ~sub:"ip" "fib_lookup" [];
    f ~size:192 ~sub:"ip" "ip_local_deliver" [ D ];
    f ~size:224 ~sub:"ip" "ip_queue_xmit" [ C "ip_route_output_flow"; C "ip_local_out" ];
    f ~size:224 ~sub:"ip" "ip_route_output_flow" [ C "fib_lookup" ];
    f ~size:176 ~sub:"ip" "ip_local_out" [ C "dst_output" ];
    f ~size:160 ~sub:"ip" "dst_output" [ C "dev_queue_xmit" ];
    f ~size:224 ~sub:"ip" "ip_append_data" [ C "alloc_skb"; C "copy_from_user" ];
    f ~size:208 ~sub:"ip" "ip_push_pending_frames" [ C "ip_local_out" ];
    f ~size:176 ~sub:"ip" "inet_addr_type" [ C "fib_lookup" ];
    f ~size:192 ~sub:"ip" "icmp_send" [ C "ip_queue_xmit" ];
    (* inet socket glue *)
    f ~size:256 ~sub:"ip" "inet_create" [ C "sk_alloc" ];
    f ~size:288 ~sub:"ip" "inet_bind"
      [ C "inet_addr_type"; Cold 32; C "lock_sock_nested"; D; C "release_sock" ];
    f ~size:224 ~sub:"ip" "inet_listen" [ C "lock_sock_nested"; C "release_sock" ];
    f ~size:224 ~sub:"ip" "inet_stream_connect" [ D; B 11 ];
    f ~size:192 ~sub:"ip" "inet_dgram_connect" [ D ];
    f ~size:176 ~sub:"ip" "inet_sendmsg" [ D ];
    f ~size:176 ~sub:"ip" "inet_shutdown" [ C "lock_sock_nested"; C "release_sock" ];
    f ~size:160 ~sub:"ip" "inet_release" [ D ];
  ]
  @ tree ~sub:"ip" ~prefix:"route_aux" ~n:16 ~size:node

(* ------------------------------------------------------------------ *)
(* tcp                                                                 *)
(* ------------------------------------------------------------------ *)

let tcp_fns =
  [
    f ~size:320 ~sub:"tcp" "tcp_v4_rcv" [ C "tcp_rcv_established" ];
    f ~size:384 ~sub:"tcp" "tcp_rcv_established"
      [ C "tcp_ack"; C "tcp_data_queue"; C (root "tcp_rcv_aux") ];
    f ~size:256 ~sub:"tcp" "tcp_ack" [];
    f ~size:256 ~sub:"tcp" "tcp_data_queue" [ C "sock_queue_rcv_skb" ];
    f ~size:320 ~sub:"tcp" "tcp_sendmsg"
      [ C "lock_sock_nested"; Cold 64; C "alloc_skb"; C "copy_from_user"; C "tcp_push"; C "release_sock" ];
    f ~size:192 ~sub:"tcp" "tcp_push" [ C "tcp_write_xmit" ];
    f ~size:288 ~sub:"tcp" "tcp_write_xmit" [ C "tcp_transmit_skb" ];
    f ~size:256 ~sub:"tcp" "tcp_transmit_skb" [ C "ip_queue_xmit"; C (root "tcp_out_aux") ];
    f ~size:320 ~sub:"tcp" "tcp_recvmsg"
      [ C "lock_sock_nested"; Cold 48; B 12; C (root "tcp_in_aux");
        C "skb_copy_datagram_iovec"; C "release_sock" ];
    f ~size:224 ~sub:"tcp" "tcp_poll" [ B 13 ];
    f ~size:288 ~sub:"tcp" "inet_csk_accept"
      [ C "prepare_to_wait_exclusive"; B 14; C (root "accept_aux"); C "finish_wait" ];
    f ~size:288 ~sub:"tcp" "tcp_v4_connect"
      [ C "ip_route_output_flow"; C "tcp_connect" ];
    f ~size:256 ~sub:"tcp" "tcp_connect" [ C "alloc_skb"; C "tcp_transmit_skb" ];
    f ~size:256 ~sub:"tcp" "tcp_close" [ C "tcp_send_fin" ];
    f ~size:192 ~sub:"tcp" "tcp_send_fin" [ C "tcp_transmit_skb" ];
    f ~size:224 ~sub:"tcp" "tcp_v4_get_port" [ C "inet_csk_get_port" ];
    f ~size:224 ~sub:"tcp" "inet_csk_get_port" [];
    f ~size:208 ~sub:"tcp" "tcp_setsockopt" [ C "lock_sock_nested"; D; C "release_sock" ];
    f ~size:32 ~sub:"tcp" "sockopt_none" [];
    f ~size:224 ~sub:"tcp" "tcp_md5_setkey" [ D ];
    f ~size:192 ~sub:"tcp" "tcp_shutdown" [ C "tcp_send_fin" ];
  ]
  @ tree ~sub:"tcp" ~prefix:"tcp_rcv_aux" ~n:10 ~size:node
  @ tree ~sub:"tcp" ~prefix:"tcp_out_aux" ~n:64 ~size:node
  @ tree ~sub:"tcp" ~prefix:"tcp_in_aux" ~n:40 ~size:node
  @ tree ~sub:"tcp" ~prefix:"accept_aux" ~n:24 ~size:node

(* ------------------------------------------------------------------ *)
(* udp (Fig. 4 chains)                                                 *)
(* ------------------------------------------------------------------ *)

let udp_fns =
  [
    f ~size:224 ~sub:"udp" "udp_v4_get_port" [ C "udp_lib_get_port" ];
    f ~size:256 ~sub:"udp" "udp_lib_get_port" [ C "udp_lib_lport_inuse" ];
    f ~size:176 ~sub:"udp" "udp_lib_lport_inuse" [];
    f ~size:320 ~sub:"udp" "udp_recvmsg"
      [ Cold 40; C "__skb_recv_datagram"; C "skb_copy_datagram_iovec" ];
    f ~size:288 ~sub:"udp" "udp_sendmsg"
      [ C "ip_route_output_flow"; C "ip_append_data"; C "udp_push_pending_frames" ];
    f ~size:192 ~sub:"udp" "udp_push_pending_frames" [ C "ip_push_pending_frames" ];
    f ~size:256 ~sub:"udp" "udp_rcv" [ C "udp_queue_rcv_skb" ];
    f ~size:192 ~sub:"udp" "udp_queue_rcv_skb" [ C "sock_queue_rcv_skb" ];
    f ~size:176 ~sub:"udp" "udp_poll" [ B 15 ];
    f ~size:160 ~sub:"udp" "udp_close" [];
  ]

(* ------------------------------------------------------------------ *)
(* unix domain sockets (X11 transport for GUI apps)                    *)
(* ------------------------------------------------------------------ *)

let unix_fns =
  [
    f ~size:224 ~sub:"unix" "unix_create" [ C "sk_alloc" ];
    f ~size:256 ~sub:"unix" "unix_stream_connect" [ C "path_lookup"; C "sk_alloc" ];
    f ~size:224 ~sub:"unix" "unix_bind" [ C "path_lookup" ];
    f ~size:288 ~sub:"unix" "unix_stream_sendmsg"
      [ C "alloc_skb"; C "copy_from_user"; C "sock_queue_rcv_skb" ];
    f ~size:288 ~sub:"unix" "unix_stream_recvmsg"
      [ C "prepare_to_wait"; B 16; C "finish_wait"; C "skb_copy_datagram_iovec" ];
    f ~size:256 ~sub:"unix" "unix_dgram_sendmsg"
      [ C "alloc_skb"; C "copy_from_user"; C "sock_queue_rcv_skb" ];
    f ~size:224 ~sub:"unix" "unix_dgram_recvmsg" [ C "__skb_recv_datagram"; C "skb_copy_datagram_iovec" ];
    f ~size:176 ~sub:"unix" "unix_poll" [ B 17 ];
    f ~size:160 ~sub:"unix" "unix_accept" [ B 18 ];
    f ~size:160 ~sub:"unix" "unix_release" [ C "kfree_skb"; C "unix_gc" ];
  ]
  @ tree ~sub:"unix" ~prefix:"unix_aux" ~n:20 ~size:node

(* unix_aux reached from stream send (garbage-collection of fds etc.) *)
let unix_fns =
  unix_fns
  @ [ f ~size:176 ~sub:"unix" "unix_gc" [ C (root "unix_aux") ] ]

(* ------------------------------------------------------------------ *)
(* security: LSM hooks + AppArmor (built in, as on Ubuntu)             *)
(* ------------------------------------------------------------------ *)

let security_fns =
  [
    f ~size:128 ~sub:"security" "security_socket_create" [ C "apparmor_socket_create" ];
    f ~size:128 ~sub:"security" "security_socket_bind" [ C "apparmor_socket_bind" ];
    f ~size:128 ~sub:"security" "security_socket_connect" [ C "apparmor_socket_connect" ];
    f ~size:128 ~sub:"security" "security_socket_sendmsg" [ C "apparmor_socket_sendmsg" ];
    f ~size:128 ~sub:"security" "security_socket_recvmsg" [ C "apparmor_socket_recvmsg" ];
    f ~size:128 ~sub:"security" "security_file_open" [ C "apparmor_file_open" ];
    f ~size:128 ~sub:"security" "security_file_permission" [ C "apparmor_file_permission" ];
    f ~size:160 ~sub:"security" "apparmor_socket_create" [];
    f ~size:160 ~sub:"security" "apparmor_socket_bind" [];
    f ~size:160 ~sub:"security" "apparmor_socket_connect" [];
    f ~size:160 ~sub:"security" "apparmor_socket_sendmsg" [];
    f ~size:160 ~sub:"security" "apparmor_socket_recvmsg" [];
    f ~size:192 ~sub:"security" "apparmor_file_open" [ C (root "aa_aux") ];
    f ~size:176 ~sub:"security" "apparmor_file_permission" [];
  ]
  @ tree ~sub:"security" ~prefix:"aa_aux" ~n:10 ~size:397

(* ------------------------------------------------------------------ *)
(* futex / ipc                                                         *)
(* ------------------------------------------------------------------ *)

let futex_fns =
  [
    f ~size:288 ~sub:"futex" "sys_futex" [ C "do_futex" ];
    f ~size:256 ~sub:"futex" "do_futex" [ C "hash_futex"; D ];
    f ~size:176 ~sub:"futex" "hash_futex" [];
    f ~size:256 ~sub:"futex" "futex_wait" [ C "prepare_to_wait"; B 19; C "finish_wait" ];
    f ~size:224 ~sub:"futex" "futex_wake" [ C (root "futex_aux"); C "__wake_up" ];
    f ~size:224 ~sub:"ipc" "sys_shmget" [ C "kmem_cache_alloc" ];
    f ~size:256 ~sub:"ipc" "sys_shmat" [ C "do_mmap_pgoff" ];
    f ~size:192 ~sub:"ipc" "sys_shmdt" [ C "do_munmap" ];
  ]
  @ tree ~sub:"futex" ~prefix:"futex_aux" ~n:24 ~size:node

let futex_fns =
  futex_fns
  @ [ f ~size:160 ~sub:"futex" "futex_requeue" [ C (root "futex_aux"); C "__wake_up" ] ]

(* ------------------------------------------------------------------ *)
(* input: evdev (X server side of interactive apps)                    *)
(* ------------------------------------------------------------------ *)

let input_fns =
  [
    f ~size:224 ~sub:"input" "evdev_event" [ C "__wake_up" ];
    f ~size:256 ~sub:"input" "evdev_read"
      [ C "prepare_to_wait"; B 20; C "finish_wait"; C "copy_to_user" ];
    f ~size:176 ~sub:"input" "evdev_poll" [ B 21 ];
    f ~size:192 ~sub:"input" "evdev_open" [ C "kmem_cache_alloc" ];
    f ~size:160 ~sub:"input" "evdev_ioctl" [];
  ]

(* ------------------------------------------------------------------ *)
(* video: drm/fb (GUI apps)                                            *)
(* ------------------------------------------------------------------ *)

let video_fns =
  [
    f ~size:288 ~sub:"video" "drm_ioctl" [ D ];
    f ~size:256 ~sub:"video" "drm_mode_setcrtc" [ C (root "drm_mode_aux") ];
    f ~size:256 ~sub:"video" "drm_gem_execbuffer"
      [ C (root "drm_exec_aux"); C "kmem_cache_alloc" ];
    f ~size:224 ~sub:"video" "drm_gem_mmap" [ C (root "drm_gem_aux"); C "do_mmap_pgoff" ];
    f ~size:224 ~sub:"video" "drm_wait_vblank" [ C (root "drm_vblank_aux"); B 22 ];
    f ~size:192 ~sub:"video" "drm_open" [ C "kmem_cache_alloc" ];
    f ~size:208 ~sub:"video" "fb_write" [ C "copy_from_user"; C "memcpy" ];
    f ~size:192 ~sub:"video" "fb_mmap" [ C "do_mmap_pgoff" ];
  ]
  @ tree ~sub:"video" ~prefix:"drm_mode_aux" ~n:40 ~size:node
  @ tree ~sub:"video" ~prefix:"drm_exec_aux" ~n:80 ~size:node
  @ tree ~sub:"video" ~prefix:"drm_gem_aux" ~n:20 ~size:node
  @ tree ~sub:"video" ~prefix:"drm_vblank_aux" ~n:12 ~size:node

(* ------------------------------------------------------------------ *)
(* Default loadable modules                                            *)
(* ------------------------------------------------------------------ *)

let kvmclock_module =
  [
    f ~size:96 ~sub:"kvmclock" "kvm_clock_get_cycles" [ C "kvm_clock_read" ];
    f ~size:112 ~sub:"kvmclock" "kvm_clock_read" [ C "pvclock_clocksource_read" ];
  ]

let af_packet_module =
  [
    f ~size:224 ~sub:"af_packet" "packet_create" [ C "sk_alloc" ];
    f ~size:256 ~sub:"af_packet" "packet_rcv" [ C "sock_queue_rcv_skb" ];
    f ~size:288 ~sub:"af_packet" "packet_recvmsg"
      [ C "__skb_recv_datagram"; C (root "pkt_rx_aux"); C "skb_copy_datagram_iovec" ];
    f ~size:224 ~sub:"af_packet" "packet_bind" [];
    f ~size:176 ~sub:"af_packet" "packet_poll" [ B 23 ];
    f ~size:192 ~sub:"af_packet" "packet_setsockopt" [ C "copy_from_user" ];
    f ~size:224 ~sub:"af_packet" "packet_mmap" [ C "do_mmap_pgoff" ];
  ]
  @ tree ~sub:"af_packet" ~prefix:"pkt_aux" ~n:12 ~size:397
  @ tree ~sub:"af_packet" ~prefix:"pkt_rx_aux" ~n:80 ~size:node
  @ [ f ~size:160 ~sub:"af_packet" "packet_snd" [ C (root "pkt_aux"); C "dev_queue_xmit" ] ]

let snd_module =
  [
    f ~size:256 ~sub:"snd" "snd_pcm_open" [ C "kmem_cache_alloc" ];
    f ~size:320 ~sub:"snd" "snd_pcm_ioctl" [ D ];
    f ~size:288 ~sub:"snd" "snd_pcm_lib_write" [ C "copy_from_user"; B 24; C (root "snd_aux") ];
    f ~size:224 ~sub:"snd" "snd_pcm_update_hw_ptr" [];
    f ~size:176 ~sub:"snd" "snd_pcm_poll" [ B 25 ];
    f ~size:192 ~sub:"snd" "snd_pcm_prepare" [];
  ]
  @ tree ~sub:"snd" ~prefix:"snd_aux" ~n:52 ~size:node

let crypto_module =
  [
    f ~size:256 ~sub:"crypto" "crypto_aes_encrypt" [ C (root "crypto_aux") ];
    f ~size:256 ~sub:"crypto" "crypto_aes_decrypt" [ C (root "crypto_aux") ];
    f ~size:224 ~sub:"crypto" "crypto_sha1_update" [ C (root "crypto_aux") ];
    f ~size:192 ~sub:"crypto" "crypto_hmac" [ C "crypto_sha1_update" ];
  ]
  @ tree ~sub:"crypto" ~prefix:"crypto_aux" ~n:40 ~size:node

(* ------------------------------------------------------------------ *)
(* sysfs, netlink, inotify, eventfd: desktop/daemon plumbing            *)
(* ------------------------------------------------------------------ *)

let sysfs_fns =
  [
    f ~size:176 ~sub:"sysfs" "sysfs_open" [ C "kmem_cache_alloc" ];
    f ~size:208 ~sub:"sysfs" "sysfs_read" [ C "snprintf"; C (root "sysfs_aux") ];
    f ~size:176 ~sub:"sysfs" "sysfs_lookup" [ C "d_lookup" ];
  ]
  @ tree ~sub:"sysfs" ~prefix:"sysfs_aux" ~n:12 ~size:397

let netlink_fns =
  [
    f ~size:224 ~sub:"netlink" "netlink_create" [ C "sk_alloc" ];
    f ~size:208 ~sub:"netlink" "netlink_bind" [];
    f ~size:256 ~sub:"netlink" "netlink_sendmsg"
      [ C "alloc_skb"; C "copy_from_user"; C (root "nl_aux") ];
    f ~size:224 ~sub:"netlink" "netlink_recvmsg"
      [ C "__skb_recv_datagram"; C "skb_copy_datagram_iovec" ];
  ]
  @ tree ~sub:"netlink" ~prefix:"nl_aux" ~n:10 ~size:397

let inotify_fns =
  [
    f ~size:176 ~sub:"inotify" "sys_inotify_init" [ C "kmem_cache_alloc"; C "fd_install" ];
    f ~size:224 ~sub:"inotify" "sys_inotify_add_watch"
      [ C "path_lookup"; C (root "inotify_aux") ];
    f ~size:240 ~sub:"inotify" "inotify_read"
      [ C "prepare_to_wait"; B 26; C "finish_wait"; C "copy_to_user" ];
  ]
  @ tree ~sub:"inotify" ~prefix:"inotify_aux" ~n:8 ~size:397

let eventfd_fns =
  [
    f ~size:160 ~sub:"eventfd" "sys_eventfd" [ C "kmem_cache_alloc"; C "fd_install" ];
    f ~size:176 ~sub:"eventfd" "eventfd_read" [ B 27; C "copy_to_user" ];
    f ~size:160 ~sub:"eventfd" "eventfd_write" [ C "copy_from_user"; C "__wake_up" ];
  ]

let module_functions =
  [
    ("kvmclock", kvmclock_module);
    ("af_packet", af_packet_module);
    ("snd_hda", snd_module);
    ("crypto_aes", crypto_module);
  ]

let base_functions =
  core_fns @ sched_fns @ irq_fns @ clock_fns @ task_fns @ signal_fns @ mm_fns
  @ lib_fns @ vfs_fns @ pagecache_fns @ pipe_fns @ procfs_fns @ tty_fns
  @ ext4_fns @ net_fns @ ip_fns @ tcp_fns @ udp_fns @ unix_fns @ security_fns
  @ futex_fns @ input_fns @ video_fns @ sysfs_fns @ netlink_fns @ inotify_fns
  @ eventfd_fns

let subsystems =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun (fn : Kfunc.t) ->
      if Hashtbl.mem seen fn.subsystem then None
      else begin
        Hashtbl.add seen fn.subsystem ();
        Some fn.subsystem
      end)
    base_functions

let functions_of_subsystem sub =
  List.filter (fun (fn : Kfunc.t) -> String.equal fn.subsystem sub) base_functions

let all_functions =
  base_functions @ List.concat_map snd module_functions

let index =
  let h = Hashtbl.create 512 in
  List.iter (fun (fn : Kfunc.t) -> Hashtbl.replace h fn.name fn) all_functions;
  h

let find name = Hashtbl.find_opt index name
