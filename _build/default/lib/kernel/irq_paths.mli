(** Interrupt sources and their handler invocation paths.

    Hardware interrupts execute in whatever process context is current
    (§III-A3): the profiler records them into the shared interrupt profile
    and every kernel view includes them.  Each source resolves to the
    [irq_entry] invocation plus the dispatch chain its handlers consume. *)

type clocksource =
  | Acpi_pm
      (** what the QEMU profiling environment exposes (base kernel) *)
  | Kvmclock
      (** the runtime KVM para-virtual clock — lives in the [kvmclock]
          module, never profiled, hence the paper's benign recovery *)

type source =
  | Timer of clocksource
  | Timer_itimer of clocksource
      (** a timer tick that also expires a pending [setitimer] alarm,
          firing [it_real_fn] (the Cymothoa signal-parasite path) *)
  | Keyboard_console  (** keystroke routed to the tty flip buffer *)
  | Keyboard_evdev    (** keystroke routed to evdev (X server) *)
  | Net_rx_tcp
  | Net_rx_udp
  | Net_rx_sniffed_tcp  (** delivered to the af_packet tap, then inet *)
  | Net_rx_sniffed_udp
  | Disk

val entry : string
(** Always ["irq_entry"]. *)

val dispatch : source -> string list
(** The dispatch chain consumed along the handler path, in order. *)

val describe : source -> string
val all_sources : source list
(** One representative of each shape (with [Acpi_pm] clocksources). *)
