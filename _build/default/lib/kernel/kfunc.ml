type body_item =
  | C of string
  | Cp of string * Fc_isa.Asm.parity
  | D
  | B of int
  | F of int
  | Cold of int

type t = { name : string; subsystem : string; size : int; body : body_item list }

let v ?(size = 96) ~sub name body = { name; subsystem = sub; size; body }

let to_spec t =
  let item = function
    | C target -> Fc_isa.Asm.Call target
    | Cp (target, p) -> Fc_isa.Asm.Call_parity (target, p)
    | D -> Fc_isa.Asm.Dispatch_call
    | B id -> Fc_isa.Asm.Block_point id
    | F n -> Fc_isa.Asm.Fill n
    | Cold n -> Fc_isa.Asm.Cold n
  in
  { Fc_isa.Asm.fname = t.name; items = List.map item t.body; min_size = t.size }

let callees t =
  List.filter_map
    (function C x | Cp (x, _) -> Some x | D | B _ | F _ | Cold _ -> None)
    t.body
