(** The syscall table: named syscall {e variants}.

    A variant pins down not just the handler ([sys_read]) but the whole
    indirect-dispatch chain the invocation takes through the kernel — the
    paper's observation that "different values passed as parameters to the
    same system calls may lead to totally different execution paths" (a
    [read] on procfs and a [read] on ext4 diverge at the vfs dispatch).

    A variant's [dispatch] lists the targets consumed, in execution order,
    by every [D] site along the path, {e excluding} the initial
    [syscall_call] dispatch to [entry] (the runtime prepends it).

    The placeholder ["@clocksource"] stands for the guest's configured
    clocksource read function; the OS substitutes [acpi_pm_read] (QEMU
    profiling environment) or [kvm_clock_get_cycles] (KVM runtime) when
    building the invocation. *)

type t = {
  sc_name : string;  (** e.g. ["read:ext4"] *)
  entry : string;    (** the [sys_*] handler *)
  dispatch : string list;
}

val find : string -> t option
val find_exn : string -> t
val all : t list
val names : string list
