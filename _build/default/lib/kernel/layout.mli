(** Guest address-space layout.

    Mirrors the paper's i386 guest: user space below 3 GiB, the kernel
    direct-mapped above [0xc0000000], loadable modules in a high "kernel
    heap" region (the paper's module code "scattered in the kernel heap").
    Guest-physical addresses are obtained by subtracting the kernel base,
    like Linux's lowmem direct map.

    The synthetic kernel's text section (~450 KB) is smaller than a real
    2.6.32 image (several MB) but of the same order as the paper's
    per-application views; all structure — page and directory granularity,
    alignment, region separation — is preserved (see DESIGN.md §7). *)

val page_size : int
val kernel_base : int
(** [0xc0000000] — start of kernel virtual space. *)

val text_base : int
(** [0xc0100000] — first byte of base kernel code. *)

val text_limit : int
(** Exclusive upper bound reserved for base kernel code. *)

val data_base : int
(** Kernel data region (task structs, module list, current pointer). *)

val current_task_ptr : int
(** Address of the guest word holding a pointer to the process running on
    vCPU 0 — what VMI reads on a context-switch trap. *)

val current_task_ptr_cpu : vid:int -> int
(** The per-CPU current-task pointer (one guest word per vCPU, like the
    kernel's per-CPU [current]); [~vid:0] equals {!current_task_ptr}. *)

val module_list_head : int
(** Address of the guest word heading the kernel module linked list. *)

val task_struct_base : int
val task_struct_size : int
val task_struct_addr : pid:int -> int

val kstack_base : int
val kstack_size : int
(** Per-process kernel stack (16 KiB). *)

val kstack_top : pid:int -> int
(** Initial stack pointer (stacks grow down). *)

val module_area_base : int
(** [0xf8000000] — where module code is loaded. *)

val module_area_limit : int

val gva_to_gpa : int -> int
(** Direct-map translation for kernel addresses.
    @raise Invalid_argument below [kernel_base]. *)

val gpa_to_gva : int -> int

val is_kernel_address : int -> bool
val is_text_address : int -> bool
val is_module_address : int -> bool

val page_of : int -> int
val page_addr : int -> int
(** Round down to the containing page's first address. *)
