(** Kernel function descriptors — the declaration DSL the catalog uses.

    A kernel function is declared by name, owning subsystem, a target byte
    size (functions are padded with executable filler to reach it, giving
    the image realistic per-function and per-subsystem sizes) and a body:
    the ordered calls it makes.  Bodies compile to real {!Fc_isa.Asm}
    items. *)

type body_item =
  | C of string
      (** direct call to a named kernel function *)
  | Cp of string * Fc_isa.Asm.parity
      (** direct call with forced return-address parity — used to lay out
          the Fig. 3 lazy/instant recovery chain *)
  | D  (** indirect (dispatch) call: target taken from the invocation's
          dispatch queue, modelling vfs/clocksource function pointers *)
  | B of int
      (** block point: the executing process sleeps here (poll, blocking
          read, accept) until the OS wakes it *)
  | F of int  (** extra executable filler bytes at this position *)
  | Cold of int
      (** a [Jcc]-guarded cold block (error path) of [n] bytes, skipped
          unless the machine's branch oracle says otherwise *)

type t = {
  name : string;
  subsystem : string;
  size : int;  (** minimum emitted size in bytes (padded with filler) *)
  body : body_item list;
}

val v : ?size:int -> sub:string -> string -> body_item list -> t
(** [v ~sub name body] declares a function; [size] defaults to 96 bytes. *)

val to_spec : t -> Fc_isa.Asm.func_spec
(** Compile to an assembler spec. *)

val callees : t -> string list
(** Direct-call targets, in body order (dispatch sites excluded). *)
