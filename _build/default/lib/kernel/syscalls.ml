type t = { sc_name : string; entry : string; dispatch : string list }

let v sc_name entry dispatch = { sc_name; entry; dispatch }

let all =
  [
    (* -------- process / time -------- *)
    v "getpid" "sys_getpid" [];
    v "getuid" "sys_getuid" [];
    v "gettimeofday" "sys_gettimeofday" [ "@clocksource" ];
    v "nanosleep" "sys_nanosleep" [ "@clocksource" ];
    v "sched_yield" "sys_sched_yield" [];
    v "fork" "sys_fork" [];
    v "clone" "sys_clone" [];
    v "execve" "sys_execve" [ "ext4_file_open" ];
    v "exit" "sys_exit_group" [];
    v "waitpid" "sys_waitpid" [];
    (* -------- signals / timers -------- *)
    v "sigaction" "sys_rt_sigaction" [];
    v "sigprocmask" "sys_rt_sigprocmask" [];
    v "kill" "sys_kill" [];
    v "setitimer" "sys_setitimer" [];
    v "alarm" "sys_alarm" [];
    v "sigreturn" "sys_sigreturn" [];
    v "pause" "sys_pause" [];
    (* -------- memory -------- *)
    v "brk" "sys_brk" [];
    v "mmap" "sys_mmap2" [];
    v "munmap" "sys_munmap" [];
    v "mprotect" "sys_mprotect" [];
    (* -------- vfs: generic -------- *)
    v "open:ext4" "sys_open" [ "ext4_file_open" ];
    v "open:proc" "sys_open" [ "proc_reg_open" ];
    v "open:tty" "sys_open" [ "tty_open" ];
    v "open:evdev" "sys_open" [ "evdev_open" ];
    v "open:drm" "sys_open" [ "drm_open" ];
    v "open:snd" "sys_open" [ "snd_pcm_open" ];
    v "close" "sys_close" [ "release_none" ];
    v "close:tcp" "sys_close" [ "sock_close"; "inet_release"; "tcp_close" ];
    v "close:udp" "sys_close" [ "sock_close"; "inet_release"; "udp_close" ];
    v "close:unix" "sys_close" [ "sock_close"; "unix_release" ];
    v "close:tty" "sys_close" [ "tty_release" ];
    v "read:ext4" "sys_read" [ "do_sync_read"; "ext4_file_read"; "readpage_none" ];
    v "read:ext4:miss" "sys_read" [ "do_sync_read"; "ext4_file_read"; "ext4_readpage" ];
    v "read:proc:stat" "sys_read" [ "proc_file_read"; "proc_stat_show"; "@clocksource" ];
    v "read:proc:pid" "sys_read" [ "proc_file_read"; "proc_pid_status_show" ];
    v "read:proc:meminfo" "sys_read" [ "proc_file_read"; "proc_meminfo_show" ];
    v "read:proc:loadavg" "sys_read" [ "proc_file_read"; "proc_loadavg_show" ];
    v "read:tty" "sys_read" [ "tty_read" ];
    v "read:pipe" "sys_read" [ "pipe_read" ];
    v "read:evdev" "sys_read" [ "evdev_read" ];
    v "write:ext4" "sys_write"
      [ "do_sync_write"; "ext4_file_write"; "ext4_dirty_inode"; "ext4_write_begin" ];
    v "write:tty" "sys_write" [ "tty_write"; "con_write" ];
    v "write:pty" "sys_write" [ "tty_write"; "pty_write" ];
    v "write:pipe" "sys_write" [ "pipe_write" ];
    v "write:fb" "sys_write" [ "fb_write" ];
    v "stat:ext4" "sys_stat64" [ "ext4_getattr" ];
    v "stat:proc" "sys_stat64" [ "proc_getattr" ];
    v "fstat" "sys_fstat64" [ "ext4_getattr" ];
    v "lseek" "sys_lseek" [];
    v "fcntl" "sys_fcntl64" [];
    v "dup2" "sys_dup2" [];
    v "access" "sys_access" [];
    v "getdents:ext4" "sys_getdents64" [ "ext4_readdir" ];
    v "getdents:proc" "sys_getdents64" [ "proc_pid_readdir" ];
    v "unlink:ext4" "sys_unlink" [ "ext4_unlink" ];
    v "rename:ext4" "sys_rename" [ "ext4_rename" ];
    v "mkdir:ext4" "sys_mkdir" [ "ext4_mkdir" ];
    v "fsync:ext4" "sys_fsync" [ "ext4_sync_file" ];
    v "sendfile:tcp" "sys_sendfile64" [ "ext4_file_read"; "readpage_none"; "tcp_sendmsg" ];
    v "pipe" "sys_pipe" [];
    (* -------- poll / select / epoll -------- *)
    v "poll:pipe" "sys_poll" [ "pipe_poll" ];
    v "poll:tty" "sys_poll" [ "tty_poll" ];
    v "poll:tcp" "sys_poll" [ "sock_poll"; "tcp_poll" ];
    v "poll:udp" "sys_poll" [ "sock_poll"; "udp_poll" ];
    v "select:tcp" "sys_select" [ "sock_poll"; "tcp_poll" ];
    v "select:tty" "sys_select" [ "tty_poll" ];
    v "select:unix" "sys_select" [ "sock_poll"; "unix_poll" ];
    v "select:packet" "sys_select" [ "sock_poll"; "packet_poll" ];
    v "epoll_create" "sys_epoll_create" [];
    v "epoll_ctl" "sys_epoll_ctl" [];
    v "epoll_wait:tcp" "sys_epoll_wait" [ "sock_poll"; "tcp_poll" ];
    (* -------- ioctl -------- *)
    v "ioctl:tty" "sys_ioctl" [ "tty_ioctl" ];
    v "ioctl:evdev" "sys_ioctl" [ "evdev_ioctl" ];
    v "ioctl:drm:mode" "sys_ioctl" [ "drm_ioctl"; "drm_mode_setcrtc" ];
    v "ioctl:drm:exec" "sys_ioctl" [ "drm_ioctl"; "drm_gem_execbuffer" ];
    v "ioctl:drm:mmap" "sys_ioctl" [ "drm_ioctl"; "drm_gem_mmap" ];
    v "ioctl:drm:vblank" "sys_ioctl" [ "drm_ioctl"; "drm_wait_vblank" ];
    v "ioctl:snd:write" "sys_ioctl" [ "snd_pcm_ioctl"; "snd_pcm_lib_write" ];
    v "ioctl:snd:prepare" "sys_ioctl" [ "snd_pcm_ioctl"; "snd_pcm_prepare" ];
    (* -------- sockets -------- *)
    v "socket:tcp" "sys_socket" [ "inet_create" ];
    v "socket:udp" "sys_socket" [ "inet_create" ];
    v "socket:unix" "sys_socket" [ "unix_create" ];
    v "socket:packet" "sys_socket" [ "packet_create" ];
    v "bind:udp" "sys_bind" [ "inet_bind"; "udp_v4_get_port" ];
    v "bind:tcp" "sys_bind" [ "inet_bind"; "tcp_v4_get_port" ];
    v "bind:unix" "sys_bind" [ "unix_bind" ];
    v "bind:packet" "sys_bind" [ "packet_bind" ];
    v "listen:tcp" "sys_listen" [ "inet_listen" ];
    v "accept:tcp" "sys_accept" [ "inet_csk_accept" ];
    v "accept:unix" "sys_accept" [ "unix_accept" ];
    v "connect:tcp" "sys_connect" [ "inet_stream_connect"; "tcp_v4_connect" ];
    v "connect:udp" "sys_connect" [ "inet_dgram_connect"; "ip_route_output_flow" ];
    v "connect:unix" "sys_connect" [ "unix_stream_connect" ];
    v "send:tcp" "sys_send" [ "inet_sendmsg"; "tcp_sendmsg" ];
    v "recv:tcp" "sys_recv" [ "sock_common_recvmsg"; "tcp_recvmsg" ];
    v "sendto:udp" "sys_sendto" [ "inet_sendmsg"; "udp_sendmsg" ];
    v "recvfrom:udp" "sys_recvfrom" [ "sock_common_recvmsg"; "udp_recvmsg" ];
    v "sendmsg:unix" "sys_sendmsg" [ "unix_stream_sendmsg" ];
    v "recvmsg:unix" "sys_recvmsg" [ "unix_stream_recvmsg" ];
    v "sendmsg:unix:dgram" "sys_sendmsg" [ "unix_dgram_sendmsg" ];
    v "recvmsg:unix:dgram" "sys_recvmsg" [ "unix_dgram_recvmsg" ];
    v "recvmsg:packet" "sys_recvmsg" [ "packet_recvmsg" ];
    v "sendmsg:packet" "sys_sendmsg" [ "packet_snd" ];
    v "setsockopt:tcp" "sys_setsockopt" [ "tcp_setsockopt"; "sockopt_none" ];
    v "setsockopt:tcp:md5" "sys_setsockopt"
      [ "tcp_setsockopt"; "tcp_md5_setkey"; "crypto_sha1_update" ];
    v "setsockopt:packet" "sys_setsockopt" [ "packet_setsockopt" ];
    v "getsockname" "sys_getsockname" [];
    v "shutdown:tcp" "sys_shutdown" [ "inet_shutdown" ];
    (* -------- futex / ipc -------- *)
    v "futex:wait" "sys_futex" [ "futex_wait" ];
    v "futex:wake" "sys_futex" [ "futex_wake" ];
    v "futex:requeue" "sys_futex" [ "futex_requeue" ];
    v "shmget" "sys_shmget" [];
    v "shmat" "sys_shmat" [];
    v "shmdt" "sys_shmdt" [];
    (* -------- misc process / limits -------- *)
    v "uname" "sys_uname" [];
    v "sysinfo" "sys_sysinfo" [];
    v "getrlimit" "sys_getrlimit" [];
    v "setrlimit" "sys_setrlimit" [];
    v "umask" "sys_umask" [];
    v "getcwd" "sys_getcwd" [];
    v "madvise" "sys_madvise" [];
    v "mlock" "sys_mlock" [];
    v "sigaltstack" "sys_sigaltstack" [];
    v "sigsuspend" "sys_rt_sigsuspend" [];
    (* -------- vectored / attribute / space management I/O -------- *)
    v "readv:ext4" "sys_readv"
      [ "do_sync_read"; "ext4_file_read"; "readpage_none";
        "do_sync_read"; "ext4_file_read"; "readpage_none" ];
    v "writev:ext4" "sys_writev"
      [ "do_sync_write"; "ext4_file_write"; "ext4_dirty_inode"; "ext4_write_begin";
        "do_sync_write"; "ext4_file_write"; "ext4_dirty_inode"; "ext4_write_begin" ];
    v "chmod:ext4" "sys_chmod" [ "ext4_setattr"; "ext4_dirty_inode" ];
    v "chown:ext4" "sys_chown" [ "ext4_setattr"; "ext4_dirty_inode" ];
    v "utime:ext4" "sys_utime" [ "ext4_setattr"; "ext4_dirty_inode" ];
    v "ftruncate:ext4" "sys_ftruncate" [ "ext4_truncate" ];
    v "fallocate:ext4" "sys_fallocate" [ "ext4_fallocate" ];
    v "sync" "sys_sync" [];
    (* -------- sysfs / netlink / inotify / eventfd -------- *)
    v "open:sysfs" "sys_open" [ "sysfs_open" ];
    v "read:sysfs" "sys_read" [ "sysfs_read" ];
    v "socket:netlink" "sys_socket" [ "netlink_create" ];
    v "bind:netlink" "sys_bind" [ "netlink_bind" ];
    v "sendmsg:netlink" "sys_sendmsg" [ "netlink_sendmsg" ];
    v "recvmsg:netlink" "sys_recvmsg" [ "netlink_recvmsg" ];
    v "inotify_init" "sys_inotify_init" [];
    v "inotify_add" "sys_inotify_add_watch" [];
    v "read:inotify" "sys_read" [ "inotify_read" ];
    v "eventfd" "sys_eventfd" [];
    v "read:eventfd" "sys_read" [ "eventfd_read" ];
    v "write:eventfd" "sys_write" [ "eventfd_write" ];
    v "getsockopt" "sys_getsockopt" [ "getsockopt_none" ];
    v "socketpair:unix" "sys_socketpair" [ "unix_create"; "unix_create" ];
  ]

let index =
  let h = Hashtbl.create 128 in
  List.iter (fun s -> Hashtbl.replace h s.sc_name s) all;
  h

let find name = Hashtbl.find_opt index name

let find_exn name =
  match find name with
  | Some s -> s
  | None -> invalid_arg ("Syscalls.find_exn: unknown variant " ^ name)

let names = List.map (fun s -> s.sc_name) all
