type clocksource = Acpi_pm | Kvmclock

type source =
  | Timer of clocksource
  | Timer_itimer of clocksource
  | Keyboard_console
  | Keyboard_evdev
  | Net_rx_tcp
  | Net_rx_udp
  | Net_rx_sniffed_tcp
  | Net_rx_sniffed_udp
  | Disk

let entry = "irq_entry"

let clock_fn = function
  | Acpi_pm -> "acpi_pm_read"
  | Kvmclock -> "kvm_clock_get_cycles"

let dispatch = function
  | Timer cs -> [ "timer_interrupt"; clock_fn cs; "run_timer_softirq"; "process_timeout" ]
  | Timer_itimer cs -> [ "timer_interrupt"; clock_fn cs; "run_timer_softirq"; "it_real_fn" ]
  | Keyboard_console -> [ "keyboard_interrupt"; "tty_receive_char"; "softirq_none" ]
  | Keyboard_evdev -> [ "keyboard_interrupt"; "evdev_event"; "softirq_none" ]
  | Net_rx_tcp -> [ "e1000_intr"; "net_rx_action"; "deliver_skb_none"; "ip_rcv"; "tcp_v4_rcv" ]
  | Net_rx_udp -> [ "e1000_intr"; "net_rx_action"; "deliver_skb_none"; "ip_rcv"; "udp_rcv" ]
  | Net_rx_sniffed_tcp -> [ "e1000_intr"; "net_rx_action"; "packet_rcv"; "ip_rcv"; "tcp_v4_rcv" ]
  | Net_rx_sniffed_udp -> [ "e1000_intr"; "net_rx_action"; "packet_rcv"; "ip_rcv"; "udp_rcv" ]
  | Disk -> [ "ahci_intr"; "blk_done_softirq" ]

let describe = function
  | Timer Acpi_pm -> "timer tick (acpi_pm clocksource)"
  | Timer Kvmclock -> "timer tick (kvmclock clocksource)"
  | Timer_itimer _ -> "timer tick expiring an itimer"
  | Keyboard_console -> "keyboard interrupt (console)"
  | Keyboard_evdev -> "keyboard interrupt (evdev)"
  | Net_rx_tcp -> "network rx (tcp)"
  | Net_rx_udp -> "network rx (udp)"
  | Net_rx_sniffed_tcp -> "network rx (tcp, packet tap)"
  | Net_rx_sniffed_udp -> "network rx (udp, packet tap)"
  | Disk -> "disk completion"

let all_sources =
  [
    Timer Acpi_pm;
    Timer_itimer Acpi_pm;
    Keyboard_console;
    Keyboard_evdev;
    Net_rx_tcp;
    Net_rx_udp;
    Net_rx_sniffed_tcp;
    Net_rx_sniffed_udp;
    Disk;
  ]
