(** The synthetic kernel's function catalog.

    Declares every base-kernel function and every default loadable module,
    organized by subsystem, with the call chains the paper's figures rely
    on laid out verbatim:

    - Fig. 3: [sys_poll → do_sys_poll → do_poll → (dispatch) pipe_poll],
      with the [do_sys_poll] call site forced to an {e odd} return address
      inside [sys_poll] and an {e even} one inside [do_sys_poll];
    - Fig. 4: the [socket]/[bind]/[recvfrom] UDP chains
      ([sys_bind → security_socket_bind → apparmor_socket_bind →
      inet_bind → inet_addr_type → lock_sock_nested → udp_v4_get_port →
      udp_lib_get_port → udp_lib_lport_inuse → release_sock], …);
    - Fig. 5: [vsnprintf → strnlen], [filp_open], and the ext4/jbd2 write
      chain [do_sync_write → ext4_file_write → generic_file_aio_write →
      … → __jbd2_log_start_commit];
    - §III-B3(i): the KVM para-virtual clock chain
      [kvm_clock_get_cycles → kvm_clock_read → pvclock_clocksource_read →
      native_read_tsc], where the first two live in the [kvmclock] module
      that is {e never} exercised while profiling (QEMU uses the emulated
      ACPI PM timer), producing the paper's benign recovery.

    Subsystem byte budgets are filled out with generated helper trees so
    that per-application profiled sizes land in the paper's 150–450 KB
    band. *)

val base_functions : Kfunc.t list
(** All base-kernel functions, in image layout order. *)

val module_functions : (string * Kfunc.t list) list
(** Default loadable modules: [kvmclock], [af_packet], [snd_hda],
    [crypto_aes] — each a (module name, functions) pair.  Rootkit modules
    are {e not} here; attacks load them dynamically. *)

val subsystems : string list
(** Distinct subsystem tags, in layout order. *)

val functions_of_subsystem : string -> Kfunc.t list
(** Base-kernel functions tagged with the given subsystem. *)

val all_functions : Kfunc.t list
(** Base functions followed by every default module's functions. *)

val find : string -> Kfunc.t option
(** Look up any base or module function by name. *)

val tree : sub:string -> prefix:string -> n:int -> size:int -> Kfunc.t list
(** [tree ~sub ~prefix ~n ~size] generates [n] helper functions named
    [<prefix>_000 …] forming a binary call tree rooted at [<prefix>_000];
    walking the root reaches every node.  Exposed for tests. *)
