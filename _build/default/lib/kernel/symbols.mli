(** Symbolization of guest code addresses for human-readable logs.

    The recovery and provenance logs print frames as
    ["0xc021a526 <do_sys_poll+0x136>"].  Addresses in {e unregistered}
    regions print as ["<UNKNOWN>"] — exactly how a hidden rootkit module
    (removed from the guest module list) shows up in Fig. 5.  As the paper
    notes, symbols are a demonstration aid; backtracking itself never
    needs them. *)

type t

val create : unit -> t

val add_unit : t -> ?module_name:string -> Fc_isa.Asm.unit_image -> unit
(** Register the functions of an assembled unit.  [module_name] tags
    symbols from a loadable module. *)

val remove_unit : t -> base:int -> unit
(** Forget a unit by its base address (module unload / rootkit hiding). *)

val find : t -> int -> (string * int) option
(** [find t addr] — (symbol, offset) of the containing function. *)

val addr_of : t -> string -> int option

val render : t -> int -> string
(** ["0xc021a526 <do_sys_poll+0x136>"], offset omitted when zero;
    ["0xf8078bbe <UNKNOWN>"] for unregistered addresses. *)

val pp : t -> Format.formatter -> int -> unit
