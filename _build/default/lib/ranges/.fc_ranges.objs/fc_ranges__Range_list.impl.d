lib/ranges/range_list.ml: Format List Map Option Segment Span
