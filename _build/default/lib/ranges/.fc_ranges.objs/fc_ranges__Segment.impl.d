lib/ranges/segment.ml: Format String
