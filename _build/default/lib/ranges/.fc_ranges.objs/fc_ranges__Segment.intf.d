lib/ranges/segment.mli: Format
