lib/ranges/span.ml: Format Int
