lib/ranges/range_list.mli: Format Segment Span
