lib/ranges/span.mli: Format
