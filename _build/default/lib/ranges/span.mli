(** Half-open address intervals [[lo, hi)].

    A [Span.t] is the primitive building block of the paper's range lists
    [K[app] = {([B_i, E_i], T_i)}].  We use half-open intervals so that
    adjacent code segments merge without off-by-one adjustments and so that
    [size] is simply [hi - lo]. *)

type t = private { lo : int; hi : int }

val make : lo:int -> hi:int -> t
(** [make ~lo ~hi] builds the span [[lo, hi)].
    @raise Invalid_argument if [hi < lo] or [lo < 0]. *)

val size : t -> int
(** Number of addresses covered; [0] for an empty span. *)

val is_empty : t -> bool

val contains : t -> int -> bool
(** [contains s a] is [true] iff [lo <= a < hi]. *)

val overlaps : t -> t -> bool
(** Non-empty intersection. *)

val adjacent : t -> t -> bool
(** [adjacent a b] is [true] when the spans touch end-to-start (either
    order) without overlapping, e.g. [[0,4)] and [[4,8)]. *)

val inter : t -> t -> t option
(** Intersection, [None] when disjoint or empty. *)

val merge : t -> t -> t
(** Smallest span covering both.
    @raise Invalid_argument if the spans neither overlap nor are adjacent
    (merging would silently cover a gap). *)

val hull : t -> t -> t
(** Smallest span covering both, gaps allowed. *)

val shift : t -> int -> t
(** [shift s d] translates both bounds by [d]. *)

val compare : t -> t -> int
(** Order by [lo], then [hi]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
