(** Segment tags [T_i] for range lists.

    The paper records, for every code range, whether it lies in the
    statically-placed base kernel image or inside a dynamically loaded
    kernel module.  Module ranges are stored relative to the module's base
    address because modules relocate between profiling and runtime. *)

type t =
  | Base_kernel
  | Kernel_module of string  (** module name, e.g. ["ext4"] *)

val compare : t -> t -> int
val equal : t -> t -> bool
val is_module : t -> bool

val module_name : t -> string option
(** [Some name] for [Kernel_module name], [None] for [Base_kernel]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val of_string : string -> t
(** Inverse of [to_string]: ["base"] maps to [Base_kernel], anything of the
    form ["module:<name>"] to [Kernel_module name].
    @raise Invalid_argument on any other input. *)
