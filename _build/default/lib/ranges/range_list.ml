module Seg_map = Map.Make (Segment)

(* Invariant: each segment maps to a sorted list of non-empty, pairwise
   disjoint, non-adjacent spans; no segment maps to []. *)
type t = Span.t list Seg_map.t

let empty = Seg_map.empty
let is_empty = Seg_map.is_empty

(* Insert [s] into sorted disjoint list [spans], merging overlaps and
   adjacencies. *)
let insert_span spans s =
  let rec go acc s = function
    | [] -> List.rev (s :: acc)
    | x :: rest ->
        if Span.overlaps s x || Span.adjacent s x then go acc (Span.hull s x) rest
        else if (x : Span.t).hi < (s : Span.t).lo then go (x :: acc) s rest
        else List.rev_append acc (s :: x :: rest)
  in
  go [] s spans

let add t seg s =
  if Span.is_empty s then t
  else
    Seg_map.update seg
      (function None -> Some [ s ] | Some spans -> Some (insert_span spans s))
      t

let add_range t seg ~lo ~hi = add t seg (Span.make ~lo ~hi)
let of_list l = List.fold_left (fun t (seg, s) -> add t seg s) empty l

let to_list t =
  Seg_map.fold (fun seg spans acc -> List.map (fun s -> (seg, s)) spans :: acc) t []
  |> List.rev |> List.concat

let segments t = Seg_map.fold (fun seg _ acc -> seg :: acc) t [] |> List.rev
let spans t seg = Option.value ~default:[] (Seg_map.find_opt seg t)
let mem t seg addr = List.exists (fun s -> Span.contains s addr) (spans t seg)
let union a b = Seg_map.fold (fun seg spans t -> List.fold_left (fun t s -> add t seg s) t spans) b a

let inter_spans xs ys =
  let rec go acc xs ys =
    match (xs, ys) with
    | [], _ | _, [] -> List.rev acc
    | (x : Span.t) :: xr, (y : Span.t) :: yr ->
        let acc = match Span.inter x y with Some s -> s :: acc | None -> acc in
        if x.hi <= y.hi then go acc xr ys else go acc xs yr
  in
  go [] xs ys

let inter a b =
  Seg_map.merge
    (fun _seg xa xb ->
      match (xa, xb) with
      | Some xs, Some ys -> (
          match inter_spans xs ys with [] -> None | l -> Some l)
      | _ -> None)
    a b

(* Subtract sorted disjoint [ys] from span [x]. *)
let diff_span (x : Span.t) ys =
  let rec go acc lo = function
    | [] -> if lo < x.hi then Span.make ~lo ~hi:x.hi :: acc else acc
    | (y : Span.t) :: yr ->
        if y.hi <= lo then go acc lo yr
        else if y.lo >= x.hi then go acc lo []
        else
          let acc = if y.lo > lo then Span.make ~lo ~hi:y.lo :: acc else acc in
          if y.hi < x.hi then go acc y.hi yr else acc
  in
  List.rev (go [] x.lo ys)

let diff a b =
  Seg_map.merge
    (fun _seg xa xb ->
      match (xa, xb) with
      | Some xs, Some ys -> (
          match List.concat_map (fun x -> diff_span x ys) xs with
          | [] -> None
          | l -> Some l)
      | Some xs, None -> Some xs
      | None, _ -> None)
    a b

let len t = Seg_map.fold (fun _ spans n -> n + List.length spans) t 0

let size t =
  Seg_map.fold (fun _ spans n -> List.fold_left (fun n s -> n + Span.size s) n spans) t 0

let size_of_segment t seg = List.fold_left (fun n s -> n + Span.size s) 0 (spans t seg)

let similarity a b =
  let m = max (size a) (size b) in
  if m = 0 then 0. else float_of_int (size (inter a b)) /. float_of_int m

let subset a b = is_empty (diff a b)

let equal a b =
  Seg_map.equal (fun xs ys -> List.equal Span.equal xs ys) a b

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (seg, s) -> Format.fprintf ppf "%a %a@," Segment.pp seg Span.pp s)
    (to_list t);
  Format.fprintf ppf "@]"

let covered_spans t seg window = inter_spans (spans t seg) [ window ]
