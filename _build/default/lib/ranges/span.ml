type t = { lo : int; hi : int }

let make ~lo ~hi =
  if lo < 0 then invalid_arg "Span.make: negative lo";
  if hi < lo then invalid_arg "Span.make: hi < lo";
  { lo; hi }

let size s = s.hi - s.lo
let is_empty s = s.hi = s.lo
let contains s a = s.lo <= a && a < s.hi
let overlaps a b = a.lo < b.hi && b.lo < a.hi && not (is_empty a) && not (is_empty b)
let adjacent a b = a.hi = b.lo || b.hi = a.lo

let inter a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo < hi then Some { lo; hi } else None

let hull a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let merge a b =
  if overlaps a b || adjacent a b || is_empty a || is_empty b then hull a b
  else invalid_arg "Span.merge: disjoint spans"

let shift s d = make ~lo:(s.lo + d) ~hi:(s.hi + d)

let compare a b =
  match Int.compare a.lo b.lo with 0 -> Int.compare a.hi b.hi | c -> c

let equal a b = compare a b = 0
let pp ppf s = Format.fprintf ppf "[0x%x, 0x%x)" s.lo s.hi
let to_string s = Format.asprintf "%a" pp s
