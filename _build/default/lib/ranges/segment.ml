type t = Base_kernel | Kernel_module of string

let compare a b =
  match (a, b) with
  | Base_kernel, Base_kernel -> 0
  | Base_kernel, Kernel_module _ -> -1
  | Kernel_module _, Base_kernel -> 1
  | Kernel_module x, Kernel_module y -> String.compare x y

let equal a b = compare a b = 0
let is_module = function Base_kernel -> false | Kernel_module _ -> true
let module_name = function Base_kernel -> None | Kernel_module m -> Some m

let to_string = function
  | Base_kernel -> "base"
  | Kernel_module m -> "module:" ^ m

let of_string s =
  if String.equal s "base" then Base_kernel
  else
    match String.index_opt s ':' with
    | Some i when String.sub s 0 i = "module" && i + 1 < String.length s ->
        Kernel_module (String.sub s (i + 1) (String.length s - i - 1))
    | Some _ | None -> invalid_arg ("Segment.of_string: " ^ s)

let pp ppf t = Format.pp_print_string ppf (to_string t)
