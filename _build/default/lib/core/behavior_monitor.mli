(** Runtime behavior monitoring — the enforcement half of the paper's
    §V-A future work.

    Kernel code recovery cannot reveal an attack whose kernel needs fit
    inside the host's view (the paper's in-view C&C server example).  This
    monitor closes that gap: it sets hypervisor breakpoints on every
    [sys_*] handler entry and checks, for the monitored application, each
    handler and each (previous → current) transition against the behavior
    profile recorded during profiling.  Deviations raise alerts; execution
    continues silently, like code recovery.

    The cost is one VM exit per system call of the monitored process —
    the classic syscall-interposition overhead, measurable via
    {!Fc_hypervisor.Hypervisor.breakpoint_exits}. *)

type alert = {
  at_cycle : int;
  pid : int;
  comm : string;
  prev : string option;  (** previous handler in this process, if any *)
  cur : string;
  reason : [ `Unknown_handler | `Novel_transition ];
}

type t

val attach : Fc_hypervisor.Hypervisor.t -> Fc_profiler.Behavior.t -> t
(** Monitor the application named by the profile's [app] (matched against
    the guest comm).  Installs breakpoints on every [sys_*] entry. *)

val detach : t -> unit
(** Remove only this monitor's breakpoints (those not shared with other
    users of the hypervisor). *)

val alerts : t -> alert list
(** Chronological. *)

val observed : t -> Fc_profiler.Behavior.t
(** What the monitor has seen so far, as a profile (for offline diffing). *)

val syscalls_seen : t -> int
val pp_alert : Format.formatter -> alert -> unit
