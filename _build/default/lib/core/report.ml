type classification = Benign_interrupt | Hidden_code | Unprofiled_path

let classify (e : Recovery_log.entry) =
  if e.Recovery_log.interrupt_context then Benign_interrupt
  else if e.Recovery_log.unknown_frames then Hidden_code
  else Unprofiled_path

let classification_label = function
  | Benign_interrupt -> "benign (interrupt context)"
  | Hidden_code -> "ANOMALY (hidden/injected kernel code)"
  | Unprofiled_path -> "unprofiled path (triage)"

type origin = Via_syscall of string | Via_interrupt | Origin_unknown

let bare rendered =
  match (String.index_opt rendered '<', String.index_opt rendered '+') with
  | Some i, Some j when j > i -> String.sub rendered (i + 1) (j - i - 1)
  | _ -> rendered

let origin_of (e : Recovery_log.entry) =
  if e.Recovery_log.interrupt_context then Via_interrupt
  else
    let names =
      (match e.Recovery_log.recovered with (_, _, s) :: _ -> [ bare s ] | [] -> [])
      @ List.map (fun f -> bare f.Recovery_log.rendered) e.Recovery_log.backtrace
    in
    match
      List.find_opt
        (fun n -> String.length n > 4 && String.sub n 0 4 = "sys_")
        names
    with
    | Some n -> Via_syscall n
    | None -> Origin_unknown

let origin_label = function
  | Via_syscall n -> n
  | Via_interrupt -> "(interrupt)"
  | Origin_unknown -> "(unknown origin)"

type summary = {
  total : int;
  benign_interrupt : int;
  hidden_code : int;
  unprofiled : int;
  by_origin : (string * int) list;
  by_process : (string * int) list;
}

let bump table key =
  let n = match List.assoc_opt key !table with Some n -> n | None -> 0 in
  table := (key, n + 1) :: List.remove_assoc key !table

let summarize log =
  let entries = Recovery_log.entries log in
  let by_origin = ref [] and by_process = ref [] in
  let benign = ref 0 and hidden = ref 0 and unprofiled = ref 0 in
  List.iter
    (fun e ->
      (match classify e with
      | Benign_interrupt -> incr benign
      | Hidden_code -> incr hidden
      | Unprofiled_path -> incr unprofiled);
      bump by_origin (origin_label (origin_of e));
      bump by_process e.Recovery_log.comm)
    entries;
  {
    total = List.length entries;
    benign_interrupt = !benign;
    hidden_code = !hidden;
    unprofiled = !unprofiled;
    by_origin = List.rev !by_origin;
    by_process = List.rev !by_process;
  }

let render log =
  let s = summarize log in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "Kernel code recovery report\n";
  Buffer.add_string buf "---------------------------\n";
  Buffer.add_string buf
    (Printf.sprintf
       "%d recoveries: %d benign (interrupt context), %d unprofiled paths, %d involving hidden code\n"
       s.total s.benign_interrupt s.unprofiled s.hidden_code);
  if s.by_origin <> [] then begin
    Buffer.add_string buf "by origin:\n";
    List.iter
      (fun (o, n) -> Buffer.add_string buf (Printf.sprintf "  %-24s %d\n" o n))
      s.by_origin
  end;
  if s.by_process <> [] then begin
    Buffer.add_string buf "by process:\n";
    List.iter
      (fun (c, n) -> Buffer.add_string buf (Printf.sprintf "  %-24s %d\n" c n))
      s.by_process
  end;
  Buffer.add_string buf "entries:\n";
  List.iter
    (fun (e : Recovery_log.entry) ->
      Buffer.add_string buf
        (Printf.sprintf "  [%s] %s via %s (pid %d %s)\n"
           (classification_label (classify e))
           (match e.Recovery_log.recovered with (_, _, s) :: _ -> bare s | [] -> "?")
           (origin_label (origin_of e))
           e.Recovery_log.pid e.Recovery_log.comm))
    (Recovery_log.entries log);
  Buffer.contents buf
