(** Hidden kernel code detection — a §V-B-adjacent extension.

    A rootkit that unlinks itself from the guest module list (KBeast)
    leaves its code resident but unaccounted for: VMI sees no module, yet
    the module area contains function prologues.  FACE-CHANGE's recovery
    log only reveals such code {e lazily}, when the rootkit calls into a
    UD2 hole; this scanner finds it {e proactively} by sweeping the module
    area's original frames for prologue signatures and diffing against the
    VMI module list — the kind of cross-view validation the paper's §V-B
    discussion points at (it does not address DKOM on kernel {e data},
    which remains out of scope here as in the paper). *)

type finding = {
  region_lo : int;  (** first unaccounted function start *)
  region_hi : int;  (** one past the last unaccounted function start *)
  functions : int;  (** prologues found in the region *)
}

val scan_module_area : Fc_hypervisor.Hypervisor.t -> finding list
(** Regions of code in the module area that no VMI-visible module claims.
    Clean guests report none; a hidden module reports one region covering
    its code. *)

val pp_finding : Format.formatter -> finding -> unit
