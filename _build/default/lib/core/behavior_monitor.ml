module Hyp = Fc_hypervisor.Hypervisor
module Os = Fc_machine.Os
module Behavior = Fc_profiler.Behavior
module Image = Fc_kernel.Image

type alert = {
  at_cycle : int;
  pid : int;
  comm : string;
  prev : string option;
  cur : string;
  reason : [ `Unknown_handler | `Novel_transition ];
}

type t = {
  hyp : Hyp.t;
  profile : Behavior.t;
  entry_names : (int, string) Hashtbl.t;
  handler_counts : (string, int) Hashtbl.t;
  bigram_counts : (string * string, int) Hashtbl.t;
  (* previous handler per pid: transitions are per-process *)
  prev_by_pid : (int, string) Hashtbl.t;
  mutable rev_alerts : alert list;
  mutable seen : int;
}

let bump tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let handle t addr =
  match Hashtbl.find_opt t.entry_names addr with
  | None -> ()
  | Some cur ->
      let pid, comm = Hyp.current_task t.hyp in
      if String.equal comm t.profile.Behavior.app then begin
        t.seen <- t.seen + 1;
        bump t.handler_counts cur;
        let prev = Hashtbl.find_opt t.prev_by_pid pid in
        (match prev with Some p -> bump t.bigram_counts (p, cur) | None -> ());
        Hashtbl.replace t.prev_by_pid pid cur;
        let alert reason =
          t.rev_alerts <-
            { at_cycle = Os.cycles (Hyp.os t.hyp); pid; comm; prev; cur; reason }
            :: t.rev_alerts
        in
        if not (Behavior.knows_handler t.profile cur) then alert `Unknown_handler
        else
          match prev with
          | Some p when not (Behavior.knows_bigram t.profile ~prev:p ~cur) ->
              alert `Novel_transition
          | Some _ | None -> ()
      end

let attach hyp profile =
  let entry_names = Hashtbl.create 128 in
  List.iter
    (fun (addr, name) -> Hashtbl.replace entry_names addr name)
    (Behavior.handler_names (Os.image (Hyp.os hyp)));
  let t =
    {
      hyp;
      profile;
      entry_names;
      handler_counts = Hashtbl.create 64;
      bigram_counts = Hashtbl.create 256;
      prev_by_pid = Hashtbl.create 8;
      rev_alerts = [];
      seen = 0;
    }
  in
  Hashtbl.iter (fun addr _ -> Hyp.set_breakpoint hyp addr) entry_names;
  Hyp.on_breakpoint hyp (fun _hyp _regs addr -> handle t addr);
  t

let detach t = Hashtbl.iter (fun addr _ -> Hyp.clear_breakpoint t.hyp addr) t.entry_names
let alerts t = List.rev t.rev_alerts

let sorted_assoc tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let observed t =
  {
    Behavior.app = t.profile.Behavior.app;
    handlers = sorted_assoc t.handler_counts;
    bigrams = sorted_assoc t.bigram_counts;
  }

let syscalls_seen t = t.seen

let pp_alert ppf a =
  Format.fprintf ppf "[cycle %d] %s (pid %d): %s%s -> %s" a.at_cycle a.comm a.pid
    (match a.reason with
    | `Unknown_handler -> "handler never profiled: "
    | `Novel_transition -> "novel transition: ")
    (Option.value ~default:"(start)" a.prev)
    a.cur
