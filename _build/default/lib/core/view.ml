module Hyp = Fc_hypervisor.Hypervisor
module Cost = Fc_hypervisor.Cost
module Os = Fc_machine.Os
module Layout = Fc_kernel.Layout
module Image = Fc_kernel.Image
module Ept = Fc_mem.Ept
module Phys = Fc_mem.Phys_mem
module Scan = Fc_isa.Scan
module Range_list = Fc_ranges.Range_list
module Segment = Fc_ranges.Segment
module Span = Fc_ranges.Span

type t = {
  hyp : Hyp.t;
  index : int;
  config : Fc_profiler.View_config.t;
  tables : (int * Ept.table) list;
  page_frames : (int, int) Hashtbl.t; (* gpa_page -> private frame *)
  mutable loaded_bytes : int;
  mutable destroyed : bool;
}

let index t = t.index
let config t = t.config
let app t = t.config.Fc_profiler.View_config.app
let tables t = t.tables
let dirs t = List.map fst t.tables
let private_page_count t = Hashtbl.length t.page_frames
let loaded_bytes t = t.loaded_bytes

let ud2_pattern = [ Fc_isa.Insn.ud2_first_byte; Fc_isa.Insn.ud2_second_byte ]

(* Find (creating on demand) the view's table for a directory, starting
   from a copy of the original table so data/unknown pages keep their real
   mapping (the paper "reuses any entries ... that point to kernel data"). *)
let table_for t dir =
  match List.assoc_opt dir t.tables with
  | Some table -> Some table
  | None -> None

let private_page t gpa_page =
  match Hashtbl.find_opt t.page_frames gpa_page with
  | Some frame -> frame
  | None -> (
      let dir = Ept.dir_of_page gpa_page in
      match table_for t dir with
      | None -> invalid_arg "View.private_page: page outside view directories"
      | Some table ->
          let phys = Os.phys (Hyp.os t.hyp) in
          let frame = Phys.alloc phys in
          Phys.fill phys ~addr:(Phys.addr_of_frame frame) ~len:Phys.page_size
            ~pattern:ud2_pattern;
          Ept.table_set table ~idx:(Ept.slot_of_page gpa_page) (Some frame);
          Hashtbl.replace t.page_frames gpa_page frame;
          Hyp.charge t.hyp Cost.view_page_init;
          frame)

let covers t ~gva =
  Layout.is_kernel_address gva
  && Hashtbl.mem t.page_frames (Layout.page_of (Layout.gva_to_gpa gva))

let write_code t ~gva v =
  let gpa = Layout.gva_to_gpa gva in
  let frame = private_page t (Layout.page_of gpa) in
  Phys.write_byte (Os.phys (Hyp.os t.hyp))
    (Phys.addr_of_frame frame + (gpa mod Phys.page_size))
    v

let read_code t ~gva =
  if not (Layout.is_kernel_address gva) then None
  else
    let gpa = Layout.gva_to_gpa gva in
    match Hashtbl.find_opt t.page_frames (Layout.page_of gpa) with
    | Some frame ->
        Some
          (Phys.read_byte (Os.phys (Hyp.os t.hyp))
             (Phys.addr_of_frame frame + (gpa mod Phys.page_size)))
    | None -> Hyp.read_original_code t.hyp gva

(* Copy [lo, hi) of original kernel code into the view's private pages. *)
let load_range t ~lo ~hi =
  for gva = lo to hi - 1 do
    match Hyp.read_original_code t.hyp gva with
    | Some b -> write_code t ~gva b
    | None -> ()
  done;
  t.loaded_bytes <- t.loaded_bytes + (hi - lo);
  Hyp.charge t.hyp ((hi - lo) / 16 * Cost.code_copy_per_16_bytes)

(* Load a profiled span, relaxed to whole containing functions when
   requested.  [region_lo, region_hi) bounds the prologue scan (base
   kernel text, or one module's code). *)
let load_span t ~whole_function_load ~region_lo ~region_hi (s : Span.t) =
  if not whole_function_load then load_range t ~lo:s.Span.lo ~hi:s.Span.hi
  else begin
    let read = Hyp.read_original_code t.hyp in
    let rec go a =
      if a < s.Span.hi then
        match Scan.function_bounds ~read ~lo:region_lo ~hi:region_hi a with
        | Some (start, stop) ->
            load_range t ~lo:start ~hi:stop;
            go (max stop (a + 1))
        | None ->
            (* no enclosing prologue (shouldn't happen for profiled code):
               fall back to the raw span *)
            load_range t ~lo:a ~hi:s.Span.hi
    in
    go s.Span.lo
  end

let build ~hyp ?(whole_function_load = true) ~index config =
  let os = Hyp.os hyp in
  let image = Os.image os in
  let text_lo = Image.text_base image and text_hi = Image.text_end image in
  let dir_of gva = Ept.dir_of_page (Layout.page_of (Layout.gva_to_gpa gva)) in
  (* collect affected directories: base text + module area *)
  let dirs = ref [] in
  let add_dir d = if not (List.mem d !dirs) then dirs := d :: !dirs in
  let rec sweep gva limit =
    if gva < limit then begin
      add_dir (dir_of gva);
      sweep (gva + (Ept.dir_span_pages * Layout.page_size)) limit
    end
  in
  sweep text_lo text_hi;
  add_dir (dir_of (text_hi - 1));
  sweep Layout.module_area_base Layout.module_area_limit;
  add_dir (dir_of (Layout.module_area_limit - 1));
  let tables =
    List.rev_map
      (fun dir ->
        match Hyp.original_table hyp ~dir with
        | Some table -> (dir, Ept.table_copy table)
        | None -> (dir, Ept.table_create ()))
      !dirs
  in
  let t =
    {
      hyp;
      index;
      config;
      tables;
      page_frames = Hashtbl.create 256;
      loaded_bytes = 0;
      destroyed = false;
    }
  in
  (* UD2-fill every base text page *)
  let lo_page = Layout.page_of (Layout.gva_to_gpa text_lo) in
  let hi_page = Layout.page_of (Layout.gva_to_gpa (text_hi - 1)) in
  for p = lo_page to hi_page do
    ignore (private_page t p)
  done;
  (* UD2-fill the code pages of every VMI-visible module *)
  let visible = Hyp.module_list hyp in
  List.iter
    (fun (_name, base, size) ->
      let lo_page = Layout.page_of (Layout.gva_to_gpa base) in
      let hi_page = Layout.page_of (Layout.gva_to_gpa (base + size - 1)) in
      for p = lo_page to hi_page do
        ignore (private_page t p)
      done)
    visible;
  (* load profiled ranges *)
  let ranges = config.Fc_profiler.View_config.ranges in
  List.iter
    (fun seg ->
      match seg with
      | Segment.Base_kernel ->
          List.iter
            (fun s ->
              load_span t ~whole_function_load ~region_lo:text_lo ~region_hi:text_hi s)
            (Range_list.spans ranges seg)
      | Segment.Kernel_module name -> (
          (* locate the module's current base via the VMI module list;
             a module absent at runtime is skipped *)
          match List.find_opt (fun (n, _, _) -> String.equal n name) visible with
          | None -> ()
          | Some (_, base, size) ->
              List.iter
                (fun s ->
                  load_span t ~whole_function_load ~region_lo:base
                    ~region_hi:(base + size) (Span.shift s base))
                (Range_list.spans ranges seg)))
    (Range_list.segments ranges);
  t

let destroy t =
  if not t.destroyed then begin
    t.destroyed <- true;
    let phys = Os.phys (Hyp.os t.hyp) in
    Hashtbl.iter (fun _ frame -> Phys.free phys frame) t.page_frames;
    Hashtbl.reset t.page_frames
  end
