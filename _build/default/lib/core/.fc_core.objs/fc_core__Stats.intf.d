lib/core/stats.mli: Facechange Format
