lib/core/recovery_log.mli: Format
