lib/core/view.mli: Fc_hypervisor Fc_mem Fc_profiler
