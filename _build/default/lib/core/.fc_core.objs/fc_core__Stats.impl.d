lib/core/stats.ml: Facechange Fc_hypervisor Fc_machine Format List
