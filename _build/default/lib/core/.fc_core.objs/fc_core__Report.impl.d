lib/core/report.ml: Buffer List Printf Recovery_log String
