lib/core/recovery_log.ml: Buffer Format Fun Hashtbl In_channel List Printf String
