lib/core/behavior_monitor.ml: Fc_hypervisor Fc_kernel Fc_machine Fc_profiler Format Hashtbl List Option String
