lib/core/integrity.mli: Fc_hypervisor Format
