lib/core/facechange.mli: Fc_hypervisor Fc_profiler Recovery_log View
