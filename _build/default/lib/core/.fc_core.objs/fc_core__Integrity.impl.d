lib/core/integrity.ml: Fc_hypervisor Fc_isa Fc_kernel Format List
