lib/core/behavior_monitor.mli: Fc_hypervisor Fc_profiler Format
