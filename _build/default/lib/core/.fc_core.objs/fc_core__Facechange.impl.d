lib/core/facechange.ml: Array Fc_hypervisor Fc_isa Fc_kernel Fc_machine Fc_mem Fc_profiler List Option Printf Recovery_log String View
