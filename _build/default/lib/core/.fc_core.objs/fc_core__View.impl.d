lib/core/view.ml: Fc_hypervisor Fc_isa Fc_kernel Fc_machine Fc_mem Fc_profiler Fc_ranges Hashtbl List String
