lib/core/report.mli: Recovery_log
