module Hyp = Fc_hypervisor.Hypervisor
module Layout = Fc_kernel.Layout
module Scan = Fc_isa.Scan

type finding = { region_lo : int; region_hi : int; functions : int }

let scan_module_area hyp =
  let visible = Hyp.module_list hyp in
  let claimed addr =
    List.exists (fun (_, base, size) -> base <= addr && addr < base + size) visible
  in
  let read = Hyp.read_original_code hyp in
  (* collect unaccounted prologue starts, in address order *)
  let starts = ref [] in
  let a = ref Layout.module_area_base in
  while !a < Layout.module_area_limit do
    if (not (claimed !a)) && Scan.is_prologue_at ~read !a then starts := !a :: !starts;
    a := !a + 16
  done;
  (* cluster starts separated by less than a page into regions *)
  let rec cluster acc cur = function
    | [] -> ( match cur with None -> List.rev acc | Some c -> List.rev (c :: acc))
    | s :: rest -> (
        match cur with
        | Some c when s - c.region_hi < Layout.page_size ->
            cluster acc (Some { c with region_hi = s + 16; functions = c.functions + 1 }) rest
        | Some c ->
            cluster (c :: acc)
              (Some { region_lo = s; region_hi = s + 16; functions = 1 })
              rest
        | None ->
            cluster acc (Some { region_lo = s; region_hi = s + 16; functions = 1 }) rest)
  in
  cluster [] None (List.rev !starts)

let pp_finding ppf f =
  Format.fprintf ppf
    "unaccounted kernel code at [0x%x, 0x%x): %d function(s) with no owning module"
    f.region_lo f.region_hi f.functions
