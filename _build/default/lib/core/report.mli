(** Recovery-log analysis — the administrator's view of FACE-CHANGE's
    output (§III-B3).

    The paper distinguishes benign recoveries (interrupt-context code and
    incompletely-profiled paths, "recorded as a reference for the
    administrator to ameliorate the profiling test suite") from anomalous
    executions caused by attacks.  This module encodes those heuristics:
    interrupt-context recoveries are benign; recoveries whose backtrace
    contains unsymbolizable frames point at hidden/injected kernel code;
    everything else is an unprofiled path for the administrator to triage
    (possibly a user-level payload, possibly a test-suite gap). *)

type classification =
  | Benign_interrupt
      (** triggered while servicing an interrupt (e.g. the kvmclock
          chain) *)
  | Hidden_code
      (** the call stack passes through code VMI cannot attribute —
          a hidden module or injected kernel code (Fig. 5) *)
  | Unprofiled_path
      (** process-context recovery: incomplete profiling or a user-level
          payload; needs triage *)

val classify : Recovery_log.entry -> classification
val classification_label : classification -> string

type origin =
  | Via_syscall of string  (** the [sys_*] gate frame the fault came through *)
  | Via_interrupt
  | Origin_unknown

val origin_of : Recovery_log.entry -> origin

type summary = {
  total : int;
  benign_interrupt : int;
  hidden_code : int;
  unprofiled : int;
  by_origin : (string * int) list;  (** rendered origin -> count *)
  by_process : (string * int) list; (** comm -> count *)
}

val summarize : Recovery_log.t -> summary

val render : Recovery_log.t -> string
(** The administrator report: summary plus one line per recovery with its
    classification and origin. *)
