(** Cached per-application kernel view profiles.

    Every experiment needs the 12 applications' view configurations; they
    are deterministic, so compute them once per image and reuse. *)

type t

val compute : ?iterations:int -> Fc_kernel.Image.t -> t
(** Run each application's profiling session (default 12 iterations). *)

val image : t -> Fc_kernel.Image.t
val apps : t -> string list
val config_of : t -> string -> Fc_profiler.View_config.t
val all_configs : t -> (string * Fc_profiler.View_config.t) list

val union_config : t -> Fc_profiler.View_config.t
(** The union of all application views — the paper's stand-in for
    traditional system-wide kernel minimization.  Its [app] field is
    ["union"]. *)
