module View_config = Fc_profiler.View_config
module Range_list = Fc_ranges.Range_list

type t = {
  app_names : string list;
  configs : (string * View_config.t) list;
}

let compute profiles = { app_names = Profiles.apps profiles; configs = Profiles.all_configs profiles }
let apps t = t.app_names
let cfg t name = List.assoc name t.configs
let size_kb t name = View_config.size (cfg t name) / 1024

let overlap_kb t a b =
  Range_list.size
    (Range_list.inter (cfg t a).View_config.ranges (cfg t b).View_config.ranges)
  / 1024

let similarity t a b = View_config.similarity (cfg t a) (cfg t b)

let pairs t =
  let rec go = function
    | [] -> []
    | a :: rest -> List.map (fun b -> (a, b)) rest @ go rest
  in
  go t.app_names

let min_similarity t =
  List.fold_left
    (fun (ba, bb, bs) (a, b) ->
      let s = similarity t a b in
      if s < bs then (a, b, s) else (ba, bb, bs))
    ("", "", infinity) (pairs t)

let max_similarity t =
  List.fold_left
    (fun (ba, bb, bs) (a, b) ->
      let s = similarity t a b in
      if s > bs then (a, b, s) else (ba, bb, bs))
    ("", "", neg_infinity) (pairs t)

let render t =
  let buf = Buffer.create 4096 in
  let w = 9 in
  let cell s = Printf.sprintf "%*s" w s in
  Buffer.add_string buf (cell "");
  List.iter (fun a -> Buffer.add_string buf (cell a)) t.app_names;
  Buffer.add_char buf '\n';
  List.iteri
    (fun i a ->
      Buffer.add_string buf (cell a);
      List.iteri
        (fun j b ->
          let s =
            if i = j then Printf.sprintf "[%dKB]" (size_kb t a)
            else if j > i then Printf.sprintf "%dKB" (overlap_kb t a b)
            else Printf.sprintf "%.1f%%" (100. *. similarity t a b)
          in
          Buffer.add_string buf (cell s))
        t.app_names;
      Buffer.add_char buf '\n')
    t.app_names;
  Buffer.contents buf
