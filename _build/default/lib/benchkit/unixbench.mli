(** The UnixBench-like system benchmark suite (Fig. 6).

    Nine subtests mirroring the classic UnixBench mix run as guest
    workloads; each is scored as work per simulated cycle, so FACE-CHANGE
    overhead (VM exits on context switches, EPT updates, recoveries) shows
    up exactly where the paper found it — concentrated in the pipe-based
    context-switching subtest — while the overall index degrades a few
    percent and is insensitive to the number of loaded views. *)

type subtest = {
  st_name : string;
  procs : (string * Fc_machine.Action.t list) list;
      (** benchmark processes: (name, script) *)
}

val subtests : subtest list
val subtest_names : string list

val run_suite :
  Fc_kernel.Image.t -> views:Fc_profiler.View_config.t list -> enabled:bool ->
  (string * float) list
(** Scores per subtest (higher is better).  [enabled] turns FACE-CHANGE on
    with the given views loaded; one mostly-idle resident process per view
    runs alongside (the paper launches the Table I applications), while
    the benchmark processes themselves are unbound (full view). *)

type fig6_point = {
  views_loaded : int;
  overall : float;   (** geometric-mean index, baseline = 1.0 *)
  per_test : (string * float) list;  (** normalized to baseline *)
}

val fig6 : ?view_counts:int list -> Profiles.t -> fig6_point list
(** Baseline plus FACE-CHANGE with 1, 2, … views loaded (default: 1..11,
    excluding gzip as in the paper).  Each point is normalized against a
    run with the same resident-application mix and FACE-CHANGE disabled,
    isolating the hypervisor overhead. *)

val render : fig6_point list -> string

(**/**)

val bench_config : Fc_machine.Os.config
val resident_script : Fc_machine.Action.t list

(**/**)
