(** Table II: security evaluation against the malware corpus.

    For each attack, the per-application-view run must reveal the payload
    via kernel code recovery; the same attack is rerun under the union
    (system-wide minimization) view to measure the paper's "blind spot" —
    user-level payloads whose kernel needs are covered by some co-resident
    application go undetected there. *)

type row = {
  per_app : Detect.outcome;
  union : Detect.outcome;
}

val run_all : Profiles.t -> row list
(** Table II order. *)

val render : row list -> string

val summary : row list -> string
(** One-line aggregate: detected counts under each view regime. *)
