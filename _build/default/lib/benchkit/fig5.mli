(** Fig. 5: the KBeast rootkit attack pattern.

    Runs the KBeast case study (hidden keystroke-sniffing module hooking
    the read path under [bash]'s kernel view) and renders the recovery
    backtraces — the module's own frames appear as [<UNKNOWN>] because it
    removed itself from the guest module list. *)

val run : Profiles.t -> Detect.outcome
val render : Detect.outcome -> string
