(** Ablations of the design choices DESIGN.md calls out.

    Each ablation toggles one {!Fc_core.Facechange.opts} knob and reports
    the metrics it moves:

    - {b whole-function load} (§III-B1's relaxation): view construction
      size/pages with raw profiled spans instead of whole functions.  Note
      that in this simulator kernel function bodies are straight-line, so
      profiled spans already cover whole bodies and the recovery-frequency
      benefit the paper cites (branchy real code) does not manifest; the
      ablation quantifies the construction-side difference and verifies
      behavioural equivalence on a matching workload.
    - {b same-view optimization}: EPT installs actually performed when two
      processes share one view.
    - {b switch at resume-userspace} (§III-B2): deferral and coalescing of
      custom-view switches.
    - {b instant recovery} (Fig. 3): disabling it lets an odd return
      address misdecode UD2 fill — the guest either dies or produces
      garbage recoveries. *)

type row = { label : string; metrics : (string * string) list }

val whole_function_load : Profiles.t -> row list
val smp_scaling : Profiles.t -> row list
val same_view_opt : Profiles.t -> row list
val switch_at_resume : Profiles.t -> row list
val instant_recovery : Profiles.t -> row list

val run_all : Profiles.t -> (string * row list) list
val render : (string * row list) list -> string
