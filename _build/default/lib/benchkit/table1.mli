(** Table I: the similarity matrix of application kernel views.

    Diagonal cells carry each application's profiled kernel-code size;
    cells above the diagonal the byte overlap between two views; cells
    below the diagonal the similarity index (Equation 1). *)

type t

val compute : Profiles.t -> t
val apps : t -> string list
val size_kb : t -> string -> int
val overlap_kb : t -> string -> string -> int
val similarity : t -> string -> string -> float

val min_similarity : t -> string * string * float
(** The most dissimilar application pair (paper: top vs firefox, 33.6%). *)

val max_similarity : t -> string * string * float
(** The most similar pair (paper: eog vs totem, 86.5%). *)

val render : t -> string
(** The full matrix, formatted like the paper's Table I. *)
