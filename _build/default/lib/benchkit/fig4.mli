(** Fig. 4: the Injectso attack pattern.

    Runs the Injectso case study (UDP server payload injected into [top])
    and renders the kernel code recovery log grouped by the originating
    system call — the paper's [socket:]/[bind:]/[recvfrom:] columns. *)

val run : Profiles.t -> Detect.outcome
val render : Detect.outcome -> string
