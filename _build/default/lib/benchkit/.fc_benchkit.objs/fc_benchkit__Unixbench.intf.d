lib/benchkit/unixbench.mli: Fc_kernel Fc_machine Fc_profiler Profiles
