lib/benchkit/httperf.mli: Profiles
