lib/benchkit/table2.ml: Buffer Detect Fc_attacks List Printf String
