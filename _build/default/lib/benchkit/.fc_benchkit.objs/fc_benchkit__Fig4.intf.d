lib/benchkit/fig4.mli: Detect Profiles
