lib/benchkit/table1.ml: Buffer Fc_profiler Fc_ranges List Printf Profiles
