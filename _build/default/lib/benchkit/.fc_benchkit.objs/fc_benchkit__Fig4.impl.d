lib/benchkit/fig4.ml: Buffer Detect Fc_attacks Fc_core Hashtbl List Printf String
