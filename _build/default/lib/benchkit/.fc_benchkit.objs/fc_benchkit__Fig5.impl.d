lib/benchkit/fig5.ml: Buffer Detect Fc_attacks Fc_core List Printf String
