lib/benchkit/httperf.ml: Buffer Fc_apps Fc_core Fc_hypervisor Fc_machine Float List Printf Profiles
