lib/benchkit/ablation.ml: Buffer Fc_apps Fc_core Fc_hypervisor Fc_machine List Option Printf Profiles String
