lib/benchkit/table2.mli: Detect Profiles
