lib/benchkit/profiles.ml: Fc_apps Fc_kernel Fc_profiler List
