lib/benchkit/fig3.mli: Fc_core Profiles
