lib/benchkit/detect.ml: Fc_apps Fc_attacks Fc_core Fc_hypervisor Fc_machine List Profiles
