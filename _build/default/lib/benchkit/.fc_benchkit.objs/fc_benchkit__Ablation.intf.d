lib/benchkit/ablation.mli: Profiles
