lib/benchkit/fig5.mli: Detect Profiles
