lib/benchkit/table1.mli: Profiles
