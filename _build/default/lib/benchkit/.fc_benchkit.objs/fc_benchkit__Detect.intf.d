lib/benchkit/detect.mli: Fc_attacks Fc_core Profiles
