lib/benchkit/profiles.mli: Fc_kernel Fc_profiler
