lib/benchkit/unixbench.ml: Buffer Fc_core Fc_hypervisor Fc_machine Fc_profiler List Printf Profiles
