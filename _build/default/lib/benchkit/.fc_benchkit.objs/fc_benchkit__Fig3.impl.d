lib/benchkit/fig3.ml: Buffer Fc_apps Fc_core Fc_hypervisor Fc_machine List Printf Profiles String
