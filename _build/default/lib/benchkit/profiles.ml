type t = {
  image : Fc_kernel.Image.t;
  configs : (string * Fc_profiler.View_config.t) list;
}

let compute ?(iterations = 12) image =
  let configs =
    List.map
      (fun app -> (app.Fc_apps.App.name, Fc_apps.App.profile ~iterations image app))
      Fc_apps.App.all
  in
  { image; configs }

let image t = t.image
let apps t = List.map fst t.configs

let config_of t name =
  match List.assoc_opt name t.configs with
  | Some c -> c
  | None -> invalid_arg ("Profiles.config_of: not profiled: " ^ name)

let all_configs t = t.configs

let union_config t =
  Fc_profiler.View_config.union ~app:"union" (List.map snd t.configs)
