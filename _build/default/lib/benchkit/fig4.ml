module Recovery_log = Fc_core.Recovery_log
module Attack = Fc_attacks.Attack

let run profiles = Detect.run profiles ~mode:Detect.Per_app (Attack.find_exn "Injectso")

let bare s =
  match (String.index_opt s '<', String.index_opt s '+') with
  | Some i, Some j when j > i -> String.sub s (i + 1) (j - i - 1)
  | _ -> s

(* The syscall gate frame a recovery came through: the deepest sys_*
   function in the backtrace (or the recovered function itself). *)
let syscall_of_entry (e : Recovery_log.entry) =
  let names =
    (match e.Recovery_log.recovered with (_, _, s) :: _ -> [ bare s ] | [] -> [])
    @ List.map (fun f -> bare f.Recovery_log.rendered) e.Recovery_log.backtrace
  in
  match
    List.find_opt (fun n -> String.length n > 4 && String.sub n 0 4 = "sys_") names
  with
  | Some n -> n
  | None -> "(no syscall frame)"

let render (o : Detect.outcome) =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "Attack Pattern of Injectso's Payload (cf. paper Fig. 4)\n";
  Buffer.add_string buf "========================================================\n";
  Buffer.add_string buf "Kernel code recovery log for kernel[top]:\n\n";
  let groups = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun e ->
      let k = syscall_of_entry e in
      if not (Hashtbl.mem groups k) then begin
        Hashtbl.add groups k [];
        order := k :: !order
      end;
      Hashtbl.replace groups k (Hashtbl.find groups k @ [ e ]))
    (Recovery_log.entries o.Detect.log);
  List.iter
    (fun k ->
      Buffer.add_string buf (Printf.sprintf "%s:\n" k);
      List.iter
        (fun (e : Recovery_log.entry) ->
          List.iter
            (fun (_, _, s) -> Buffer.add_string buf (Printf.sprintf "  %s\n" s))
            e.Recovery_log.recovered)
        (Hashtbl.find groups k);
      Buffer.add_char buf '\n')
    (List.rev !order);
  Buffer.add_string buf
    (Printf.sprintf "detected: %b   evidence: %s\n" o.Detect.detected
       (String.concat ", " o.Detect.evidence));
  Buffer.contents buf
