(** Extended Page Tables: guest-physical → host-physical, two levels.

    The structure mirrors what FACE-CHANGE manipulates on real hardware: a
    page {e directory} whose entries each point to a page {e table} mapping
    a 4 MiB-aligned slice of guest-physical space (1024 × 4 KiB pages) to
    host frames.  Kernel view switching (§III-B2, steps 3A/3B) does not
    remap individual pages — it swaps {e directory entries} so that the
    guest-physical pages holding kernel code resolve to the view's frames
    instead of the original ones.  [set_dir] is therefore the unit of
    switching cost.

    Page tables are first-class ({!table}) so that every kernel view can
    pre-build its tables once at load time and switching is pointer
    assignment, exactly as in the paper. *)

val entries_per_table : int
(** 1024. *)

val dir_span_pages : int
(** Guest-physical pages covered by one directory entry (1024). *)

type table

val table_create : unit -> table
val table_copy : table -> table
val table_set : table -> idx:int -> int option -> unit
(** Map table slot [idx] (0..1023) to a host frame, or unmap with [None]. *)

val table_get : table -> idx:int -> int option

type t

val create : unit -> t

val set_dir : t -> dir:int -> table option -> unit
(** Point directory entry [dir] at a (possibly shared) page table. *)

val get_dir : t -> dir:int -> table option

val map_page : t -> gpa_page:int -> hpa_frame:int -> unit
(** Convenience single-page mapping; allocates the directory's table if
    absent.  Used to build the initial identity-style guest mapping. *)

val translate_page : t -> int -> int option
(** [translate_page t gpa_page] — host frame number. *)

val translate : t -> int -> int option
(** [translate t gpa] — host physical {e address}; [None] = EPT violation. *)

val dir_of_page : int -> int
val slot_of_page : int -> int
(** Decompose a guest-physical page number into (directory, table slot). *)
