(** Guest page tables: guest-virtual → guest-physical, page granularity.

    Each guest process owns one; the kernel half (addresses at or above
    [0xc0000000]) is shared by construction — the guest OS installs the same
    kernel mappings in every process table, as Linux does. *)

type t

val create : unit -> t

val map : t -> gva_page:int -> gpa_page:int -> unit
(** Install or replace one page mapping (page numbers, not addresses). *)

val unmap : t -> gva_page:int -> unit

val translate_page : t -> int -> int option
(** [translate_page t gva_page] — the mapped guest-physical page. *)

val translate : t -> int -> int option
(** [translate t gva] — guest-physical {e address}, preserving the offset;
    [None] on a fault (unmapped page). *)

val mappings : t -> (int * int) list
(** All (gva_page, gpa_page) pairs, sorted by gva_page. *)

val copy_range : src:t -> dst:t -> lo_page:int -> hi_page:int -> unit
(** Share [src]'s mappings in [[lo_page, hi_page)] into [dst] (used to give
    every process the same kernel-half mappings). *)
