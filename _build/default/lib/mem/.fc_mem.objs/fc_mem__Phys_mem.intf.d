lib/mem/phys_mem.mli: Bytes
