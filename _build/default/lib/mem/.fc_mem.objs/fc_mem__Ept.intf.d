lib/mem/ept.mli:
