lib/mem/page_table.mli:
