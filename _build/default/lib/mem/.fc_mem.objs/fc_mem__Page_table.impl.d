lib/mem/page_table.ml: Hashtbl Int List Option Phys_mem
