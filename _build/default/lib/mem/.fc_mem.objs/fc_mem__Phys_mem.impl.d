lib/mem/phys_mem.ml: Array Bytes List Printf
