lib/mem/ept.ml: Array Hashtbl Option Phys_mem
