let entries_per_table = 1024
let dir_span_pages = entries_per_table

type table = int option array

let table_create () : table = Array.make entries_per_table None
let table_copy (t : table) : table = Array.copy t

let check_idx idx =
  if idx < 0 || idx >= entries_per_table then invalid_arg "Ept: table index out of range"

let table_set t ~idx v =
  check_idx idx;
  t.(idx) <- v

let table_get t ~idx =
  check_idx idx;
  t.(idx)

type t = (int, table) Hashtbl.t

let create () : t = Hashtbl.create 32

let set_dir t ~dir = function
  | Some table -> Hashtbl.replace t dir table
  | None -> Hashtbl.remove t dir

let get_dir t ~dir = Hashtbl.find_opt t dir
let dir_of_page p = p / dir_span_pages
let slot_of_page p = p mod dir_span_pages

let map_page t ~gpa_page ~hpa_frame =
  let dir = dir_of_page gpa_page in
  let table =
    match get_dir t ~dir with
    | Some tb -> tb
    | None ->
        let tb = table_create () in
        set_dir t ~dir (Some tb);
        tb
  in
  table_set table ~idx:(slot_of_page gpa_page) (Some hpa_frame)

let translate_page t gpa_page =
  match get_dir t ~dir:(dir_of_page gpa_page) with
  | None -> None
  | Some table -> table_get table ~idx:(slot_of_page gpa_page)

let translate t gpa =
  let page = gpa / Phys_mem.page_size and off = gpa mod Phys_mem.page_size in
  Option.map (fun f -> (f * Phys_mem.page_size) + off) (translate_page t page)
