type t = (int, int) Hashtbl.t

let create () : t = Hashtbl.create 256
let map t ~gva_page ~gpa_page = Hashtbl.replace t gva_page gpa_page
let unmap t ~gva_page = Hashtbl.remove t gva_page
let translate_page t gva_page = Hashtbl.find_opt t gva_page

let translate t gva =
  let page = gva / Phys_mem.page_size and off = gva mod Phys_mem.page_size in
  Option.map (fun gpa_page -> (gpa_page * Phys_mem.page_size) + off) (translate_page t page)

let mappings t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let copy_range ~src ~dst ~lo_page ~hi_page =
  Hashtbl.iter
    (fun gva_page gpa_page ->
      if gva_page >= lo_page && gva_page < hi_page then map dst ~gva_page ~gpa_page)
    src
