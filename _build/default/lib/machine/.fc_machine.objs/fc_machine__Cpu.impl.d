lib/machine/cpu.ml: Fc_isa Format Queue
