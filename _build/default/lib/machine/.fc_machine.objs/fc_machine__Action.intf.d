lib/machine/action.mli: Format
