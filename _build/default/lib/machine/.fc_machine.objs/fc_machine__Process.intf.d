lib/machine/process.mli: Action Cpu Fc_mem Format Queue
