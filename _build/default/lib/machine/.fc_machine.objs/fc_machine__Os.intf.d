lib/machine/os.mli: Action Cpu Fc_isa Fc_kernel Fc_mem Process
