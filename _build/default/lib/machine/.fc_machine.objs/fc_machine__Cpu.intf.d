lib/machine/cpu.mli: Fc_isa Format Queue
