lib/machine/os.ml: Action Array Buffer Bytes Char Cpu Fc_isa Fc_kernel Fc_mem Format Hashtbl List Option Printf Process Queue String
