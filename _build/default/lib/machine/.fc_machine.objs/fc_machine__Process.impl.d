lib/machine/process.ml: Action Cpu Fc_kernel Fc_mem Format Printf Queue
