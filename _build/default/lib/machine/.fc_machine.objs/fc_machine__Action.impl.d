lib/machine/action.ml: Format List
