(** Guest processes.

    Each process owns a page table (kernel half shared with every other
    process, as in Linux), a kernel stack, and a user-space workload
    script.  When a syscall blocks mid-kernel the full CPU context —
    registers and the not-yet-consumed dispatch queue — is saved here;
    the stack itself lives in guest memory and survives untouched, which
    is what makes the paper's cross-view recovery scenario (Fig. 3)
    reproducible. *)

type run_state =
  | Ready
  | Blocked of { yield_id : int; wake_round : int }
  | Exited

type t = {
  pid : int;
  name : string;  (** the guest "comm", what VMI reads to pick a view *)
  mutable cpu : int;
      (** the vCPU this process is pinned to (§V-C: "each process ... is
          pinned to one CPU during execution") *)
  page_table : Fc_mem.Page_table.t;
  mutable script : Action.t list;
  mutable state : run_state;
  mutable saved_regs : Cpu.regs option;
      (** in-flight kernel context while blocked *)
  mutable saved_dispatch : int Queue.t;
  mutable in_kernel : bool;
  mutable syscall_count : int;
  mutable last_scheduled_round : int;
}

val create :
  ?cpu:int ->
  pid:int -> name:string -> page_table:Fc_mem.Page_table.t -> Action.t list -> t

val kstack_top : t -> int
val is_ready : t -> bool
val is_exited : t -> bool
val is_blocked : t -> bool

val block : t -> yield_id:int -> wake_round:int -> regs:Cpu.regs -> dispatch:int Queue.t -> unit
val wake_if_due : t -> round:int -> unit
val take_saved : t -> (Cpu.regs * int Queue.t) option
(** Consume the saved context for resumption (clears it). *)

val append_script : t -> Action.t list -> unit
(** Online infection: splice payload actions onto the running script. *)

val prepend_script : t -> Action.t list -> unit

val pp : Format.formatter -> t -> unit
