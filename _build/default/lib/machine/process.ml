type run_state =
  | Ready
  | Blocked of { yield_id : int; wake_round : int }
  | Exited

type t = {
  pid : int;
  name : string;
  mutable cpu : int;
  page_table : Fc_mem.Page_table.t;
  mutable script : Action.t list;
  mutable state : run_state;
  mutable saved_regs : Cpu.regs option;
  mutable saved_dispatch : int Queue.t;
  mutable in_kernel : bool;
  mutable syscall_count : int;
  mutable last_scheduled_round : int;
}

let create ?(cpu = 0) ~pid ~name ~page_table script =
  {
    pid;
    name;
    cpu;
    page_table;
    script;
    state = Ready;
    saved_regs = None;
    saved_dispatch = Queue.create ();
    in_kernel = false;
    syscall_count = 0;
    last_scheduled_round = -1;
  }

let kstack_top t = Fc_kernel.Layout.kstack_top ~pid:t.pid
let is_ready t = t.state = Ready
let is_exited t = t.state = Exited
let is_blocked t = match t.state with Blocked _ -> true | _ -> false

let block t ~yield_id ~wake_round ~regs ~dispatch =
  t.state <- Blocked { yield_id; wake_round };
  t.saved_regs <- Some regs;
  t.saved_dispatch <- dispatch;
  t.in_kernel <- true

let wake_if_due t ~round =
  match t.state with
  | Blocked { wake_round; _ } when wake_round <= round -> t.state <- Ready
  | Blocked _ | Ready | Exited -> ()

let take_saved t =
  match t.saved_regs with
  | None -> None
  | Some regs ->
      let d = t.saved_dispatch in
      t.saved_regs <- None;
      t.saved_dispatch <- Queue.create ();
      Some (regs, d)

let append_script t acts = t.script <- t.script @ acts
let prepend_script t acts = t.script <- acts @ t.script

let pp ppf t =
  let state =
    match t.state with
    | Ready -> "ready"
    | Blocked { yield_id; wake_round } ->
        Printf.sprintf "blocked(%d until %d)" yield_id wake_round
    | Exited -> "exited"
  in
  Format.fprintf ppf "[%d] %s %s (%d syscalls)" t.pid t.name state t.syscall_count
