type t = Syscall of string | Compute of int | Sleep of int | Fault | Exit

let repeat n acts = List.concat (List.init n (fun _ -> acts))

let pp ppf = function
  | Syscall s -> Format.fprintf ppf "syscall(%s)" s
  | Compute n -> Format.fprintf ppf "compute(%d)" n
  | Sleep n -> Format.fprintf ppf "sleep(%d)" n
  | Fault -> Format.pp_print_string ppf "fault"
  | Exit -> Format.pp_print_string ppf "exit"
