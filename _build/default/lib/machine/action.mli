(** Workload actions — the unit of a process' user-space script.

    Application models (and malware payloads spliced into them) are lists
    of actions.  Only [Syscall] and [Fault] enter the kernel; [Compute]
    charges user-mode cycles. *)

type t =
  | Syscall of string  (** a {!Fc_kernel.Syscalls} variant name *)
  | Compute of int     (** user-mode work, in cycles *)
  | Sleep of int
      (** a [nanosleep] that parks the process for the given number of
          scheduler rounds (long I/O waits, idle residents) *)
  | Fault              (** a user page fault ([do_page_fault] path) *)
  | Exit               (** terminate the process ([sys_exit_group] path) *)

val repeat : int -> t list -> t list
(** [repeat n acts] — [acts] concatenated [n] times. *)

val pp : Format.formatter -> t -> unit
