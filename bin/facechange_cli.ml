(* The facechange command-line tool: profile applications, inspect view
   configurations, and run enforced guests with optional attacks.

     facechange apps                      list application models
     facechange attacks                   list the malware corpus
     facechange profile top -o top.view   profiling phase -> config file
     facechange inspect top.view          summarize a view configuration
     facechange matrix top firefox ...    similarity matrix (Table I)
     facechange run top --attack Injectso runtime phase + recovery log
     facechange chaos --plans 20          seeded fault injection + governor *)

open Cmdliner
module App = Fc_apps.App
module Attack = Fc_attacks.Attack
module Os = Fc_machine.Os
module Hypervisor = Fc_hypervisor.Hypervisor
module Facechange = Fc_core.Facechange
module Recovery_log = Fc_core.Recovery_log
module View_config = Fc_profiler.View_config

let image = lazy (Fc_kernel.Image.build_exn ())

(* ---------------- apps ---------------- *)

let apps_cmd =
  let doc = "List the modelled applications (the paper's Table I set)." in
  let run () =
    List.iter
      (fun a ->
        Printf.printf "%-8s %-12s %s\n" a.App.name a.App.category a.App.description)
      App.all
  in
  Cmd.v (Cmd.info "apps" ~doc) Term.(const run $ const ())

(* ---------------- attacks ---------------- *)

let attacks_cmd =
  let doc = "List the malware corpus (the paper's Table II set)." in
  let run () =
    List.iter
      (fun a ->
        Printf.printf "%-13s host=%-8s %-40s %s\n" a.Attack.name a.Attack.host
          (Attack.kind_label a.Attack.kind)
          a.Attack.payload)
      Attack.all
  in
  Cmd.v (Cmd.info "attacks" ~doc) Term.(const run $ const ())

(* ---------------- profile ---------------- *)

let app_arg =
  let doc = "Application model name (see $(b,facechange apps))." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"APP" ~doc)

let iterations_arg =
  let doc = "Workload iterations for the profiling session." in
  Arg.(value & opt int 12 & info [ "n"; "iterations" ] ~docv:"N" ~doc)

let profile_cmd =
  let doc = "Profiling phase: record an application's kernel view." in
  let out =
    let doc = "Output view-configuration file (default: $(i,APP).view)." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run app_name out iterations =
    match App.find app_name with
    | None ->
        Printf.eprintf "unknown application %s\n" app_name;
        exit 1
    | Some app ->
        let cfg = App.profile ~iterations (Lazy.force image) app in
        let path = Option.value out ~default:(app_name ^ ".view") in
        View_config.save cfg path;
        Printf.printf "%s: %d KB of kernel code in %d ranges -> %s\n" app_name
          (View_config.size cfg / 1024) (View_config.len cfg) path
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(const run $ app_arg $ out $ iterations_arg)

(* ---------------- inspect ---------------- *)

let inspect_cmd =
  let doc = "Summarize a kernel view configuration file." in
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"View file.")
  in
  let run path =
    match View_config.load path with
    | Error e ->
        Printf.eprintf "%s: %s\n" path e;
        exit 1
    | Ok cfg ->
        Printf.printf "app: %s\n" cfg.View_config.app;
        Printf.printf "size: %d KB in %d ranges\n"
          (View_config.size cfg / 1024) (View_config.len cfg);
        List.iter
          (fun seg ->
            Printf.printf "  %-18s %d KB\n"
              (Fc_ranges.Segment.to_string seg)
              (Fc_ranges.Range_list.size_of_segment cfg.View_config.ranges seg / 1024))
          (Fc_ranges.Range_list.segments cfg.View_config.ranges)
  in
  Cmd.v (Cmd.info "inspect" ~doc) Term.(const run $ file)

(* ---------------- matrix ---------------- *)

let matrix_cmd =
  let doc = "Similarity matrix over application kernel views (Table I)." in
  let apps =
    Arg.(value & pos_all string [] & info [] ~docv:"APP" ~doc:"Applications (default: all 12).")
  in
  let run names =
    let names = if names = [] then App.names else names in
    List.iter
      (fun n -> if App.find n = None then (Printf.eprintf "unknown app %s\n" n; exit 1))
      names;
    let image = Lazy.force image in
    let configs = List.map (fun n -> (n, App.profile image (App.find_exn n))) names in
    let w = 9 in
    Printf.printf "%*s" w "";
    List.iter (fun (n, _) -> Printf.printf "%*s" w n) configs;
    print_newline ();
    List.iteri
      (fun i (a, ca) ->
        Printf.printf "%*s" w a;
        List.iteri
          (fun j (_, cb) ->
            let s =
              if i = j then Printf.sprintf "[%dKB]" (View_config.size ca / 1024)
              else if j > i then
                Printf.sprintf "%dKB"
                  (Fc_ranges.Range_list.size
                     (Fc_ranges.Range_list.inter ca.View_config.ranges
                        cb.View_config.ranges)
                  / 1024)
              else Printf.sprintf "%.1f%%" (100. *. View_config.similarity ca cb)
            in
            Printf.printf "%*s" w s)
          configs;
        print_newline ())
      configs
  in
  Cmd.v (Cmd.info "matrix" ~doc) Term.(const run $ apps)

(* ---------------- run ---------------- *)

let run_cmd =
  let doc =
    "Runtime phase: enforce an application's kernel view and report the \
     recovery log.  Optionally arm an attack or use the union view."
  in
  let attack =
    let doc = "Arm an attack from the corpus against the host application." in
    Arg.(value & opt (some string) None & info [ "attack" ] ~docv:"NAME" ~doc)
  in
  let union =
    let doc = "Bind the host to the union of all 12 views (system-wide minimization)." in
    Arg.(value & flag & info [ "union" ] ~doc)
  in
  let kvm =
    let doc = "Use the KVM runtime clocksource (exhibits the benign kvmclock recovery)." in
    Arg.(value & flag & info [ "kvmclock" ] ~doc)
  in
  let log_out =
    let doc = "Save the recovery log (evidence artifact) to this file." in
    Arg.(value & opt (some string) None & info [ "log-out" ] ~docv:"FILE" ~doc)
  in
  let monitor =
    let doc = "Also profile and enforce the application's syscall behavior \
               (catches in-view attacks; SV-A extension)." in
    Arg.(value & flag & info [ "monitor" ] ~doc)
  in
  let vcpus =
    let doc = "Number of guest vCPUs (SV-C extension)." in
    Arg.(value & opt int 1 & info [ "vcpus" ] ~docv:"N" ~doc)
  in
  let run app_name attack union kvm iterations log_out monitor vcpus =
    (match App.find app_name with
    | None ->
        Printf.eprintf "unknown application %s\n" app_name;
        exit 1
    | Some _ -> ());
    let attack =
      Option.map
        (fun n ->
          match Attack.find n with
          | Some a -> a
          | None ->
              Printf.eprintf "unknown attack %s\n" n;
              exit 1)
        attack
    in
    (match attack with
    | Some a when a.Attack.host <> app_name ->
        Printf.eprintf "note: %s normally targets %s\n" a.Attack.name a.Attack.host
    | _ -> ());
    let image = Lazy.force image in
    let app = App.find_exn app_name in
    let clocksource =
      if kvm then Fc_kernel.Irq_paths.Kvmclock else Fc_kernel.Irq_paths.Acpi_pm
    in
    let behavior =
      if monitor then begin
        Printf.printf "profiling %s's syscall behavior...\n%!" app_name;
        Some
          (Fc_profiler.Behavior.profile_app ~config:(App.os_config app) image
             ~name:app_name (app.App.script iterations))
      end
      else None
    in
    let os = Os.create ~config:(App.os_config ~clocksource app) ~vcpus image in
    let hyp = Hypervisor.attach os in
    let fc = Facechange.enable hyp in
    let bmon = Option.map (Fc_core.Behavior_monitor.attach hyp) behavior in
    let proc = Os.spawn os ~name:app_name (app.App.script iterations) in
    (match attack with
    | Some a ->
        Printf.printf "arming %s (%s)\n" a.Attack.name (Attack.kind_label a.Attack.kind);
        a.Attack.launch os proc
    | None -> ());
    (if union then begin
       Printf.printf "profiling all 12 applications for the union view...\n%!";
       let profiles = Fc_benchkit.Profiles.compute image in
       let idx = Facechange.load_view fc (Fc_benchkit.Profiles.union_config profiles) in
       Facechange.bind fc ~comm:app_name ~index:idx
     end
     else begin
       Printf.printf "profiling %s...\n%!" app_name;
       ignore (Facechange.load_view fc (App.profile image app))
     end);
    Printf.printf "running...\n%!";
    let panic =
      match Os.run ~max_rounds:50_000 os with
      | () -> None
      | exception Os.Guest_panic m ->
          Printf.printf "GUEST PANIC: %s\n" m;
          Some m
    in
    Printf.printf "\ncompleted: %b\n" (Fc_machine.Process.is_exited proc);
    Format.printf "%a@.@." Fc_core.Stats.pp (Fc_core.Stats.capture fc);
    Format.printf "%a@." Recovery_log.pp (Facechange.log fc);
    print_string (Fc_core.Report.render (Facechange.log fc));
    (match Fc_core.Integrity.scan_module_area hyp with
    | [] -> ()
    | findings ->
        print_newline ();
        List.iter
          (fun f -> Format.printf "integrity scan: %a@." Fc_core.Integrity.pp_finding f)
          findings);
    (match bmon with
    | Some m ->
        let alerts = Fc_core.Behavior_monitor.alerts m in
        Printf.printf "\nbehavior monitor: %d syscalls observed, %d alerts\n"
          (Fc_core.Behavior_monitor.syscalls_seen m)
          (List.length alerts);
        List.iter
          (fun a -> Format.printf "  %a@." Fc_core.Behavior_monitor.pp_alert a)
          alerts
    | None -> ());
    (match log_out with
    | Some path ->
        Recovery_log.save (Facechange.log fc) path;
        Printf.printf "\nrecovery log saved to %s\n" path
    | None -> ());
    (match attack with
    | Some a ->
        let hits =
          List.filter
            (fun n -> List.mem n a.Attack.signature)
            (Recovery_log.recovered_names (Facechange.log fc))
        in
        Printf.printf "attack evidence: %s -> %s\n"
          (String.concat ", " hits)
          (if hits <> [] then "DETECTED" else "not detected")
    | None -> ());
    if panic <> None then exit 1
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ app_arg $ attack $ union $ kvm $ iterations_arg $ log_out
      $ monitor $ vcpus)

(* ---------------- chaos ---------------- *)

let chaos_cmd =
  let doc =
    "Chaos suite: run seeded fault-injection plans against enforced guests \
     under the recovery-storm governor.  Exits non-zero if any governed \
     guest panics or wedges."
  in
  let plans =
    let doc = "Number of seeded fault plans (consecutive seeds)." in
    Arg.(value & opt int 100 & info [ "plans" ] ~docv:"N" ~doc)
  in
  let seed =
    let doc = "First plan seed." in
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let no_governor =
    let doc =
      "Disable the governor: reproduces the paper's fragility, so guest \
       panics are expected and do not affect the exit status."
    in
    Arg.(value & flag & info [ "no-governor" ] ~doc)
  in
  let run plans seed no_governor =
    let image = Lazy.force image in
    Printf.printf "profiling the 12 applications...\n%!";
    let profiles = Fc_benchkit.Profiles.compute image in
    let governed = not no_governor in
    let s = Fc_benchkit.Chaos.run ~plans ~seed ~governed profiles in
    print_string (Fc_benchkit.Chaos.render s);
    if
      governed
      && (s.Fc_benchkit.Chaos.s_panics > 0
         || s.Fc_benchkit.Chaos.s_wedged > 0
         || not s.Fc_benchkit.Chaos.s_attribution_ok)
    then exit 1
  in
  Cmd.v (Cmd.info "chaos" ~doc) Term.(const run $ plans $ seed $ no_governor)

(* ---------------- snapshot / restore / replay ---------------- *)

module Snapshot = Fc_snapshot.Snapshot

let snapshot_cmd =
  let doc =
    "Freeze a deterministic enforced guest to a $(i,.fcsnap) file: boot \
     the application under its view, run a fixed number of scheduler \
     rounds, snapshot at the boundary.  The same invocation produces \
     byte-identical files on every platform (the CI format-stability \
     gate is built on exactly that)."
  in
  let out =
    let doc = "Output snapshot file (default: $(i,APP).fcsnap)." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let rounds =
    let doc = "Scheduler rounds to run before freezing." in
    Arg.(value & opt int 40 & info [ "rounds" ] ~docv:"N" ~doc)
  in
  let run app_name out rounds iterations =
    (match App.find app_name with
    | None ->
        Printf.eprintf "unknown application %s\n" app_name;
        exit 1
    | Some _ -> ());
    let image = Lazy.force image in
    let app = App.find_exn app_name in
    let os = Os.create ~config:(App.os_config app) image in
    let hyp = Hypervisor.attach os in
    let fc = Facechange.enable hyp in
    ignore (Facechange.load_view fc (App.profile image app));
    ignore (Os.spawn os ~name:app_name (app.App.script iterations));
    (try Os.run ~until:(fun t -> Os.round t >= rounds) ~max_rounds:50_000 os
     with Os.Guest_panic m ->
       Printf.eprintf "GUEST PANIC before the snapshot round: %s\n" m;
       exit 1);
    let snap =
      Snapshot.capture
        ~meta:
          [
            ("kind", "cli");
            ("app", app_name);
            ("round", string_of_int (Os.round os));
          ]
        ~fc ~hyp os
    in
    let path = Option.value out ~default:(app_name ^ ".fcsnap") in
    Snapshot.save snap path;
    print_string (Snapshot.describe snap);
    Printf.printf "written to %s\n" path
  in
  Cmd.v (Cmd.info "snapshot" ~doc)
    Term.(const run $ app_arg $ out $ rounds $ iterations_arg)

let snap_file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"A $(i,.fcsnap) snapshot file.")

let load_or_die path =
  match Snapshot.load path with
  | Ok s -> s
  | Error e ->
      Printf.eprintf "%s: %s\n" path (Snapshot.error_to_string e);
      exit 1

let restore_cmd =
  let doc =
    "Verify and describe a $(i,.fcsnap) file (CRCs, section layout, \
     captured layers); with $(b,--resume), rebuild the machine and run \
     it to completion."
  in
  let resume =
    let doc = "Restore the machine and resume execution." in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let max_rounds =
    let doc = "Scheduler round budget for $(b,--resume)." in
    Arg.(value & opt int 50_000 & info [ "max-rounds" ] ~docv:"N" ~doc)
  in
  let run path resume max_rounds =
    let snap = load_or_die path in
    print_string (Snapshot.describe snap);
    if resume then begin
      let r = Snapshot.restore snap in
      let os = r.Snapshot.r_os in
      Printf.printf "resuming at round %d...\n%!" (Os.round os);
      (match Os.run ~max_rounds os with
      | () -> Printf.printf "completed at round %d\n" (Os.round os)
      | exception Os.Guest_panic m -> Printf.printf "GUEST PANIC: %s\n" m);
      match r.Snapshot.r_fc with
      | Some fc -> Format.printf "%a@." Fc_core.Stats.pp (Fc_core.Stats.capture fc)
      | None -> ()
    end
  in
  Cmd.v (Cmd.info "restore" ~doc)
    Term.(const run $ snap_file_arg $ resume $ max_rounds)

let replay_cmd =
  let doc =
    "Time-travel replay: restore a chaos repro snapshot (written by the \
     bench's ungoverned arm on a guest panic) and re-execute just the \
     failing window — the fault-plan cursor re-arms the surviving \
     events, so the recorded death reproduces deterministically."
  in
  let run path =
    let snap = load_or_die path in
    print_string (Snapshot.describe snap);
    let meta k = Snapshot.meta_find snap k in
    let budget =
      match Option.bind (meta "max_rounds") int_of_string_opt with
      | Some n -> n
      | None -> 20_000
    in
    let r = Snapshot.restore snap in
    let os = r.Snapshot.r_os in
    Printf.printf "replaying%s from round %d (budget %d rounds)...\n%!"
      (match meta "seed" with Some s -> " seed " ^ s | None -> "")
      (Os.round os) budget;
    match Os.run ~max_rounds:budget os with
    | () -> Printf.printf "no death reproduced: guest ran to completion\n"
    | exception Os.Guest_panic "scheduler round budget exhausted" ->
        Printf.printf "guest wedged (round budget exhausted)\n"
    | exception Os.Guest_panic m ->
        Printf.printf "reproduced: GUEST PANIC: %s\n" m
  in
  Cmd.v (Cmd.info "replay" ~doc) Term.(const run $ snap_file_arg)

(* ---------------- report ---------------- *)

let report_cmd =
  let doc = "Analyze a saved recovery log (classification, origins)." in
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Log saved with $(b,run --log-out).")
  in
  let json =
    let doc = "Emit the full forensic log as JSON (backtraces, view bytes, \
               instant recoveries) instead of the text report." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run path json =
    match Recovery_log.load path with
    | Error e ->
        Printf.eprintf "%s: %s\n" path e;
        exit 1
    | Ok log ->
        if json then
          print_string
            (Fc_obs.Jsonx.to_string ~pretty:true (Recovery_log.to_json log)
            ^ "\n")
        else print_string (Fc_core.Report.render log)
  in
  Cmd.v (Cmd.info "report" ~doc) Term.(const run $ file $ json)

(* ---------------- syscalls ---------------- *)

let syscalls_cmd =
  let doc = "List the syscall variants of the synthetic kernel." in
  let run () =
    List.iter
      (fun (sc : Fc_kernel.Syscalls.t) ->
        Printf.printf "%-22s %-18s %s\n" sc.Fc_kernel.Syscalls.sc_name
          sc.Fc_kernel.Syscalls.entry
          (String.concat " -> " sc.Fc_kernel.Syscalls.dispatch))
      Fc_kernel.Syscalls.all
  in
  Cmd.v (Cmd.info "syscalls" ~doc) Term.(const run $ const ())

(* ---------------- calltree ---------------- *)

let calltree_cmd =
  let doc = "Print the exact kernel call tree of a syscall variant." in
  let variant =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"VARIANT"
           ~doc:"Syscall variant, e.g. read:ext4 (see the syscall table).")
  in
  let depth =
    Arg.(value & opt int 8 & info [ "depth" ] ~docv:"N" ~doc:"Maximum tree depth.")
  in
  let run variant depth =
    if Fc_kernel.Syscalls.find variant = None then begin
      Printf.eprintf "unknown syscall variant %s; known variants:\n" variant;
      List.iter (Printf.eprintf "  %s\n") Fc_kernel.Syscalls.names;
      exit 1
    end;
    let trees = Fc_profiler.Calltrace.trace_syscall (Lazy.force image) variant in
    List.iter
      (fun n ->
        Printf.printf "%s (%d kernel functions)\n" variant
          (Fc_profiler.Calltrace.node_count n);
        Format.printf "%a@." (Fc_profiler.Calltrace.pp_tree ~max_depth:depth) n)
      trees
  in
  Cmd.v (Cmd.info "calltree" ~doc) Term.(const run $ variant $ depth)

(* ---------------- trace / stats (observability) ---------------- *)

module Obs = Fc_obs.Obs
module Trace = Fc_obs.Trace
module Event = Fc_obs.Event
module Export = Fc_obs.Export
module Jsonx = Fc_obs.Jsonx

(* Shared driver for the observability commands: enforce [app_name]'s
   view on a fresh guest (optionally with an armed attack) and run it to
   completion.  [trace_capacity] arms the trace sink *before* the
   hypervisor attaches, so view-build events are captured too.
   [telemetry] arms the probe (time series + profiler) at that period in
   instructions; its result is the third component. *)
let enforced_run ?trace_capacity ?telemetry app_name attack iterations vcpus =
  (match App.find app_name with
  | None ->
      Printf.eprintf "unknown application %s\n" app_name;
      exit 1
  | Some _ -> ());
  let attack =
    Option.map
      (fun n ->
        match Attack.find n with
        | Some a -> a
        | None ->
            Printf.eprintf "unknown attack %s\n" n;
            exit 1)
      attack
  in
  let image = Lazy.force image in
  let app = App.find_exn app_name in
  let os = Os.create ~config:(App.os_config app) ~vcpus image in
  (match trace_capacity with
  | Some capacity -> Trace.arm ~capacity (Obs.trace (Os.obs os))
  | None -> ());
  let hyp = Hypervisor.attach os in
  let fc = Facechange.enable hyp in
  let probe =
    Option.map
      (fun period ->
        Fc_benchkit.Probe.arm ~period ~wall:Unix.gettimeofday ~os ~hyp ~fc ())
      telemetry
  in
  let proc = Os.spawn os ~name:app_name (app.App.script iterations) in
  (match attack with Some a -> a.Attack.launch os proc | None -> ());
  ignore (Facechange.load_view fc (App.profile image app));
  (try Os.run ~max_rounds:50_000 os
   with Os.Guest_panic m -> Printf.eprintf "GUEST PANIC: %s\n" m);
  (os, fc, Option.map Fc_benchkit.Probe.finish probe)

let attack_arg =
  let doc = "Arm an attack from the corpus against the host application." in
  Arg.(value & opt (some string) None & info [ "attack" ] ~docv:"NAME" ~doc)

let vcpus_arg =
  let doc = "Number of guest vCPUs." in
  Arg.(value & opt int 1 & info [ "vcpus" ] ~docv:"N" ~doc)

let out_arg =
  let doc = "Write the output to this file instead of stdout." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let emit_output out s =
  match out with
  | None -> print_string s
  | Some path ->
      let oc = open_out path in
      output_string oc s;
      close_out oc;
      Printf.printf "wrote %s\n" path

let trace_cmd =
  let doc =
    "Run an application under an enforced view and dump the event trace \
     (view switches, UD2 traps, recoveries, frame sharing, ...)."
  in
  let capacity =
    let doc = "Trace ring capacity; older events beyond it are dropped." in
    Arg.(value & opt int 65536 & info [ "capacity" ] ~docv:"N" ~doc)
  in
  let kinds =
    let doc = "Only show these event kinds (comma-separated, e.g. \
               $(i,view_switch,ud2_trap))." in
    Arg.(value & opt (some string) None & info [ "kind" ] ~docv:"KINDS" ~doc)
  in
  let format =
    let doc = "Output format: $(i,text), $(i,json) or $(i,csv)." in
    Arg.(value & opt (enum [ ("text", `Text); ("json", `Json); ("csv", `Csv) ])
           `Text & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let run app_name attack iterations vcpus capacity kinds format out =
    let wanted =
      Option.map
        (fun s ->
          let ks = String.split_on_char ',' s in
          List.iter
            (fun k ->
              if not (List.mem k Event.kinds) then begin
                Printf.eprintf "unknown event kind %s; known kinds:\n  %s\n" k
                  (String.concat " " Event.kinds);
                exit 1
              end)
            ks;
          ks)
        kinds
    in
    let os, _fc, _ =
      enforced_run ~trace_capacity:capacity app_name attack iterations vcpus
    in
    let sink = Obs.trace (Os.obs os) in
    let keep (r : Trace.record) =
      match wanted with
      | None -> true
      | Some ks -> List.mem (Event.kind r.Trace.event) ks
    in
    let records = List.filter keep (Trace.records sink) in
    match format with
    | `Text ->
        let buf = Buffer.create 4096 in
        let ppf = Format.formatter_of_buffer buf in
        List.iter (Format.fprintf ppf "%a@." Trace.pp_record) records;
        Format.fprintf ppf "%d events emitted, %d dropped, %d shown@."
          (Trace.emitted sink) (Trace.dropped sink) (List.length records);
        Format.pp_print_flush ppf ();
        emit_output out (Buffer.contents buf)
    | `Json ->
        let json =
          Jsonx.Obj
            [
              ("schema_version", Jsonx.Int Export.schema_version);
              ("emitted", Jsonx.Int (Trace.emitted sink));
              ("dropped", Jsonx.Int (Trace.dropped sink));
              ("events", Jsonx.List (List.map Export.record_to_json records));
            ]
        in
        emit_output out (Jsonx.to_string ~pretty:true json ^ "\n")
    | `Csv ->
        if wanted <> None then begin
          Printf.eprintf "--kind is not supported with --format csv\n";
          exit 1
        end;
        emit_output out (Export.trace_to_csv sink)
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const run $ app_arg $ attack_arg $ iterations_arg $ vcpus_arg $ capacity
      $ kinds $ format $ out_arg)

let stats_cmd =
  let doc =
    "Run an application under an enforced view and report run statistics \
     (the Stats.capture projection of the metrics registry)."
  in
  let json =
    let doc = "Emit machine-readable JSON instead of the text summary." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let metrics =
    let doc = "Also include the full metrics registry (counters, gauges, \
               cycle histograms)." in
    Arg.(value & flag & info [ "metrics" ] ~doc)
  in
  let prom =
    let doc = "Emit the metrics registry in Prometheus text exposition \
               format instead of the summary (for a pushgateway or a \
               node_exporter textfile collector)." in
    Arg.(value & flag & info [ "prom" ] ~doc)
  in
  let timeseries =
    let doc = "Arm the telemetry probe at this period (instructions per \
               interval) and include the time series: CSV after the text \
               summary, a $(i,telemetry) object with $(i,--json) — the \
               latter is a $(b,facechange top) artifact." in
    Arg.(value & opt (some int) None & info [ "timeseries" ] ~docv:"PERIOD" ~doc)
  in
  let run app_name attack iterations vcpus json metrics prom timeseries out =
    let os, fc, tel =
      enforced_run ?telemetry:timeseries app_name attack iterations vcpus
    in
    let stats = Fc_core.Stats.capture fc in
    let registry = Obs.metrics (Os.obs os) in
    if prom then emit_output out (Export.metrics_to_prometheus registry)
    else if json then
      let body =
        Jsonx.Obj
          ([ ("stats", Fc_core.Stats.to_json stats) ]
          @ (if metrics then
               [ ("metrics", Export.metrics_to_json registry) ]
             else [])
          @
          match tel with
          | None -> []
          | Some r ->
              [
                ( "telemetry",
                  Jsonx.Obj
                    [
                      ("ticks", Jsonx.Int r.Fc_benchkit.Probe.r_ticks);
                      ("samples", Jsonx.Int r.Fc_benchkit.Probe.r_samples);
                      ( "series",
                        Export.timeseries_to_json
                          r.Fc_benchkit.Probe.r_series );
                      ( "folds",
                        Jsonx.List
                          (List.map
                             (fun (f : Fc_obs.Sampler.fold) ->
                               Jsonx.Obj
                                 [
                                   ("stack", Jsonx.String f.Fc_obs.Sampler.f_stack);
                                   ("count", Jsonx.Int f.Fc_obs.Sampler.f_count);
                                 ])
                             r.Fc_benchkit.Probe.r_folds) );
                    ] );
              ])
      in
      emit_output out (Jsonx.to_string ~pretty:true body ^ "\n")
    else begin
      let buf = Buffer.create 1024 in
      let ppf = Format.formatter_of_buffer buf in
      Format.fprintf ppf "%a@." Fc_core.Stats.pp stats;
      Format.pp_print_flush ppf ();
      if metrics then Buffer.add_string buf (Export.metrics_to_csv registry);
      (match tel with
      | None -> ()
      | Some r ->
          Buffer.add_string buf
            (Export.timeseries_to_csv r.Fc_benchkit.Probe.r_series));
      emit_output out (Buffer.contents buf)
    end
  in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(
      const run $ app_arg $ attack_arg $ iterations_arg $ vcpus_arg $ json
      $ metrics $ prom $ timeseries $ out_arg)

(* `facechange top`: render the tail of a recorded time series the way
   top(1) renders a system — one row per interval with rates, plus the
   hottest comms from the profiler folds.  Reads the artifacts the bench
   harness (BENCH_telemetry.json) and `stats --timeseries --json` write;
   it never runs a guest itself. *)
let top_cmd =
  let doc =
    "Render the last K telemetry intervals from a run artifact \
     (BENCH_telemetry.json or $(b,facechange stats --timeseries --json) \
     output): instructions/s, view switches/s, recoveries/s and the \
     hottest comms."
  in
  let artifact =
    let doc = "The telemetry artifact to read." in
    Arg.(value & pos 0 string "BENCH_telemetry.json"
         & info [] ~docv:"ARTIFACT" ~doc)
  in
  let k =
    let doc = "Number of trailing intervals to show." in
    Arg.(value & opt int 10 & info [ "k"; "intervals" ] ~docv:"K" ~doc)
  in
  let run artifact k out =
    let contents =
      match open_in_bin artifact with
      | exception Sys_error e ->
          Printf.eprintf "cannot open %s: %s\n" artifact e;
          exit 1
      | ic ->
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic;
          s
    in
    let j =
      match Jsonx.of_string contents with
      | Ok j -> j
      | Error e ->
          Printf.eprintf "%s is not valid JSON: %s\n" artifact e;
          exit 1
    in
    (* the series lives under telemetry.profile (bench artifact),
       telemetry (stats --timeseries --json) or at the root *)
    let node =
      List.find_map
        (fun p ->
          match Option.bind (Jsonx.path j p) (fun n ->
                    Jsonx.path n [ "series"; "points" ])
          with
          | Some _ -> Jsonx.path j p
          | None -> None)
        [ [ "telemetry"; "profile" ]; [ "telemetry" ]; [] ]
    in
    let node =
      match node with
      | Some n -> n
      | None ->
          Printf.eprintf "%s carries no telemetry series\n" artifact;
          exit 1
    in
    let points =
      match Jsonx.path node [ "series"; "points" ] with
      | Some (Jsonx.List l) -> l
      | _ -> []
    in
    let geti p path = Option.bind (Jsonx.path p path) Jsonx.to_int in
    let getf p path = Option.bind (Jsonx.path p path) Jsonx.to_float in
    let counter p key = Option.value ~default:0 (geti p [ "counters"; key ]) in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf "facechange top — %s (period %s instructions)\n" artifact
         (match Jsonx.path node [ "series"; "period" ] with
         | Some (Jsonx.Int p) -> string_of_int p
         | _ -> "?"));
    Buffer.add_string buf
      "  boundary     Minstrs      Mips    sw/s   rec/s  hottest comm\n";
    let shown = max 0 (List.length points - k) in
    let prev = ref None in
    List.iteri
      (fun i p ->
        let instrs = Option.value ~default:0 (geti p [ "instructions" ]) in
        let wall = getf p [ "wall" ] in
        (if i >= shown then
           let d_instr =
             instrs
             - match !prev with Some q -> Option.value ~default:0 (geti q [ "instructions" ]) | None -> 0
           in
           let d_wall =
             match (wall, Option.bind !prev (fun q -> getf q [ "wall" ])) with
             | Some w, Some pw when w > pw -> Some (w -. pw)
             | Some w, None when w > 0. -> None (* no baseline: rate unknown *)
             | _ -> None
           in
           let rate n =
             match d_wall with
             | Some dt -> Printf.sprintf "%7.1f" (float_of_int n /. dt)
             | None -> "      -"
           in
           let hottest =
             (* the busiest comm this interval: run-slice cycle
                attribution first (lands when a slice ends), then slices
                begun, then hypervisor cycles charged *)
             match Jsonx.path p [ "counters" ] with
             | Some (Jsonx.Obj kvs) ->
                 let best_in pfx =
                   let n = String.length pfx in
                   List.fold_left
                     (fun acc (key, v) ->
                       if String.length key > n + 1
                          && String.sub key 0 n = pfx
                       then
                         match Jsonx.to_int v with
                         | Some c when c > (match acc with Some (_, b) -> b | None -> 0) ->
                             Some (String.sub key n (String.length key - n - 1), c)
                         | _ -> acc
                       else acc)
                     None kvs
                 in
                 let best =
                   List.find_map best_in
                     [ "os.run_cycles{"; "os.run_slices{";
                       "hyp.cycles_charged{" ]
                 in
                 (match best with Some (comm, _) -> comm | None -> "-")
             | _ -> "-"
           in
           Buffer.add_string buf
             (Printf.sprintf "  @%-8d %9.2f  %8s %7s %7s  %s\n"
                (Option.value ~default:0 (geti p [ "boundary" ]))
                (float_of_int d_instr /. 1e6)
                (match d_wall with
                | Some dt ->
                    Printf.sprintf "%.1f" (float_of_int d_instr /. dt /. 1e6)
                | None -> "-")
                (rate (counter p "fc.view_switches"))
                (rate (counter p "fc.recoveries"))
                hottest));
        prev := Some p)
      points;
    (match Jsonx.path node [ "folds" ] with
    | Some (Jsonx.List folds) when folds <> [] ->
        let by_comm = Hashtbl.create 16 in
        List.iter
          (fun f ->
            match
              (Option.bind (Jsonx.path f [ "stack" ]) Jsonx.to_str,
               geti f [ "count" ])
            with
            | Some stack, Some count ->
                let comm =
                  match String.index_opt stack ';' with
                  | Some i -> String.sub stack 0 i
                  | None -> stack
                in
                Hashtbl.replace by_comm comm
                  (count
                  + Option.value ~default:0 (Hashtbl.find_opt by_comm comm))
            | _ -> ())
          folds;
        let ranked =
          Hashtbl.fold (fun c n acc -> (c, n) :: acc) by_comm []
          |> List.sort (fun (_, a) (_, b) -> compare b a)
        in
        let total =
          List.fold_left (fun acc (_, n) -> acc + n) 0 ranked
        in
        Buffer.add_string buf "  hottest comms (profiler samples):\n";
        List.iteri
          (fun i (comm, n) ->
            if i < 5 then
              Buffer.add_string buf
                (Printf.sprintf "    %-20s %6d  %5.1f%%\n" comm n
                   (100. *. float_of_int n /. float_of_int (max 1 total))))
          ranked
    | _ -> ());
    emit_output out (Buffer.contents buf)
  in
  Cmd.v (Cmd.info "top" ~doc) Term.(const run $ artifact $ k $ out_arg)

let timeline_cmd =
  let doc =
    "Run an application under an enforced view and export a Chrome \
     trace-event timeline (open in Perfetto or about:tracing): per-process \
     run slices, exit handling, recovery episodes, view switches."
  in
  let capacity =
    let doc = "Trace ring capacity; older events beyond it are dropped." in
    Arg.(value & opt int 65536 & info [ "capacity" ] ~docv:"N" ~doc)
  in
  let run app_name attack iterations vcpus capacity out =
    let os, fc, _ =
      enforced_run ~trace_capacity:capacity app_name attack iterations vcpus
    in
    let stats = Fc_core.Stats.capture fc in
    let json =
      Export.timeline_to_json
        ~extra:[ ("stats", Fc_core.Stats.to_json stats) ]
        (Obs.trace (Os.obs os))
    in
    emit_output out (Jsonx.to_string ~pretty:true json ^ "\n")
  in
  Cmd.v (Cmd.info "timeline" ~doc)
    Term.(
      const run $ app_arg $ attack_arg $ iterations_arg $ vcpus_arg $ capacity
      $ out_arg)

let () =
  let doc = "FACE-CHANGE: application-driven dynamic kernel view switching (simulated)" in
  let info = Cmd.info "facechange" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info
       [ apps_cmd; attacks_cmd; syscalls_cmd; profile_cmd; inspect_cmd;
         matrix_cmd; run_cmd; chaos_cmd; trace_cmd; stats_cmd; top_cmd;
         timeline_cmd; calltree_cmd; report_cmd; snapshot_cmd; restore_cmd;
         replay_cmd ]))
