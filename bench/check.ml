(* CI drift gate over the bench artifacts.

     bench/check.exe [BENCH_results.json [BENCH_timeline.json]]
     bench/check.exe --chaos [BENCH_chaos.json]
     bench/check.exe --perf [BENCH_perf.json]
     bench/check.exe --fleet [BENCH_fleet.json]
     bench/check.exe --telemetry [BENCH_telemetry.json]
     bench/check.exe --migrate [BENCH_migrate.json]
     bench/check.exe --snapshot [bench/golden.fcsnap]

   Modes combine in one invocation — e.g.
     bench/check.exe a.json b.json --chaos c.json --fleet d.json
   — and every artifact is validated even when an earlier one fails
   (including when it is missing or malformed): failures accumulate
   across all given artifacts, each prefixed with its path, and the
   process exits non-zero exactly once at the end.

   Fails (exit 1) when an artifact is malformed, a required metric key
   is missing, or a pinned deterministic counter (switch / recovery
   counts from the smoke run and the figure experiments) drifts from the
   seed values recorded below.  The simulation is deterministic, so any
   drift is a behavior change that must be re-pinned deliberately.

   The --chaos mode gates the fault-injection matrix: the governed arm
   must report zero panics, zero wedged runs, zero validation misses and
   exact per-app attribution at any plan count; the ungoverned control
   arm must actually panic; and at the full 100 plans every aggregate
   counter is pinned.

   The --fleet mode gates the sharded fleet: the pinned 40-guest cell's
   counters are exact, its merged fingerprint is byte-identical at 1, 2
   and 4 domains (sharding must be behavior-invisible), and every sweep
   row at the same guest count agrees with its siblings; wall-clock
   seconds/ips are checked finite, never compared.

   The --telemetry mode gates the continuous-telemetry layer: the armed
   pinned fleet cell's counters sit exactly on the --fleet pins and its
   fingerprint equals the disarmed control's (the probe is
   behavior-invisible); the merged series and profiler fingerprints are
   identical across domain counts; the four {sblocks}x{tlb} engine arms
   fingerprint identically; interval/sample counts are pinned; and the
   per-interval deltas re-sum to the final totals.

   The timeline artifact (Chrome trace-event JSON from the smoke run) is
   checked structurally: it parses, has events, every span E matches the
   innermost open B on its (pid, tid) track, and the per-app counters
   embedded in its stats section sum to the matching globals. *)

module J = Fc_obs.Jsonx

let failures = ref []
let context = ref ""

let fail fmt =
  Printf.ksprintf
    (fun s ->
      let s = if !context = "" then s else !context ^ ": " ^ s in
      failures := s :: !failures)
    fmt

let spell path = String.concat "." path

(* Every key the downstream tooling relies on, whether pinned or not. *)
let required_keys =
  [ "schema_version"; "fast"; "experiments" ]
  |> List.map (fun k -> [ k ])

let stats_fields =
  [
    "guest_cycles"; "rounds"; "context_switches"; "vcpus"; "breakpoint_exits";
    "invalid_opcode_exits"; "hypervisor_cycles"; "view_switches";
    "switches_skipped"; "switches_deferred"; "recoveries"; "recovered_bytes";
    "views_loaded"; "view_pages"; "shared_frames"; "cow_breaks"; "storms";
    "degradations"; "renarrows"; "quarantines"; "broken_backtraces";
  ]

let required_keys =
  required_keys
  @ List.map (fun f -> [ "results"; "smoke"; f ]) stats_fields
  @ [
      [ "results"; "table1"; "min_similarity"; "similarity" ];
      [ "results"; "table1"; "max_similarity"; "similarity" ];
      [ "results"; "table2"; "attacks" ];
      [ "results"; "table2"; "per_app_detected" ];
      [ "results"; "table2"; "union_detected" ];
      [ "results"; "fig3"; "completed" ];
      [ "results"; "fig3"; "panic" ];
      [ "results"; "fig3"; "lazy_recovered" ];
      [ "results"; "fig3"; "instant_recovered" ];
      [ "results"; "chaos"; "governed"; "panics" ];
      [ "results"; "chaos"; "governed"; "wedged" ];
      [ "results"; "chaos"; "governed"; "attribution_ok" ];
      [ "results"; "chaos"; "ungoverned"; "panics" ];
      [ "results"; "fig6"; "perf" ];
      [ "results"; "fig6"; "sharing"; "parity" ];
      [ "results"; "fig6"; "sharing"; "frames_saved" ];
      [ "results"; "fig6"; "sharing"; "reduction" ];
      [ "results"; "fig6"; "sharing"; "shared"; "recoveries" ];
      [ "results"; "fig6"; "sharing"; "shared"; "recovered_bytes" ];
      [ "results"; "fig6"; "sharing"; "unshared"; "recoveries" ];
      [ "results"; "fig7"; "base_capacity" ];
      [ "results"; "fig7"; "fc_capacity" ];
      [ "results"; "fig7"; "view_pages" ];
      [ "results"; "fig7"; "view_frames" ];
    ]

(* Pinned seed values: deterministic counters from the growth seed.
   Re-pin (with a note in the commit) only when a behavior change is
   intended. *)
let pinned_ints =
  [
    ([ "schema_version" ], 1);
    ([ "results"; "smoke"; "view_switches" ], 1);
    ([ "results"; "smoke"; "switches_skipped" ], 5);
    ([ "results"; "smoke"; "switches_deferred" ], 1);
    ([ "results"; "smoke"; "recoveries" ], 0);
    ([ "results"; "smoke"; "recovered_bytes" ], 0);
    ([ "results"; "smoke"; "breakpoint_exits" ], 7);
    ([ "results"; "smoke"; "invalid_opcode_exits" ], 0);
    (* the smoke run has no governor and no injected faults: every
       robustness counter must stay zero *)
    ([ "results"; "smoke"; "storms" ], 0);
    ([ "results"; "smoke"; "degradations" ], 0);
    ([ "results"; "smoke"; "renarrows" ], 0);
    ([ "results"; "smoke"; "quarantines" ], 0);
    ([ "results"; "smoke"; "broken_backtraces" ], 0);
    ([ "results"; "table2"; "attacks" ], 16);
    ([ "results"; "table2"; "per_app_detected" ], 16);
    ([ "results"; "table2"; "union_detected" ], 3);
    ([ "results"; "fig6"; "sharing"; "shared"; "recoveries" ], 71);
    ([ "results"; "fig6"; "sharing"; "shared"; "recovered_bytes" ], 9568);
    ([ "results"; "fig6"; "sharing"; "unshared"; "recoveries" ], 71);
    ([ "results"; "fig6"; "sharing"; "unshared"; "cow_breaks" ], 0);
  ]

let pinned_bools =
  [
    ([ "results"; "fig3"; "completed" ], true);
    ([ "results"; "fig6"; "sharing"; "parity" ], true);
  ]

let check_required j =
  List.iter
    (fun p ->
      match J.path j p with
      | Some _ -> ()
      | None -> fail "missing required key %s" (spell p))
    required_keys

let check_pinned j =
  List.iter
    (fun (p, expected) ->
      match Option.bind (J.path j p) J.to_int with
      | None -> fail "pinned key %s is missing or not an int" (spell p)
      | Some v when v <> expected ->
          fail "%s drifted: expected %d, got %d" (spell p) expected v
      | Some _ -> ())
    pinned_ints;
  List.iter
    (fun (p, expected) ->
      match Option.bind (J.path j p) J.to_bool with
      | None -> fail "pinned key %s is missing or not a bool" (spell p)
      | Some v when v <> expected ->
          fail "%s drifted: expected %b, got %b" (spell p) expected v
      | Some _ -> ())
    pinned_bools

(* Structural sanity that needs no pinning: finite numbers only (the
   exporter writes non-finite floats as null, which to_float rejects). *)
let check_finite j =
  List.iter
    (fun p ->
      match J.path j p with
      | None -> () (* already reported as missing *)
      | Some v -> (
          match J.to_float v with
          | Some f when Float.is_finite f -> ()
          | Some _ | None -> fail "%s is not a finite number" (spell p)))
    [
      [ "results"; "table1"; "min_similarity"; "similarity" ];
      [ "results"; "table1"; "max_similarity"; "similarity" ];
      [ "results"; "fig6"; "sharing"; "reduction" ];
      [ "results"; "fig7"; "base_capacity" ];
      [ "results"; "fig7"; "fc_capacity" ];
    ]

(* ---------------- timeline artifact ---------------- *)

let check_timeline j =
  let events =
    match J.path j [ "traceEvents" ] with
    | Some (J.List evs) -> evs
    | Some _ | None ->
        fail "timeline: traceEvents missing or not a list";
        []
  in
  if events = [] then fail "timeline: traceEvents is empty";
  (* balanced, well-nested spans: per (pid, tid) track, every E must
     close the innermost open B of the same name *)
  let stacks : (int * int, string list) Hashtbl.t = Hashtbl.create 8 in
  let field e k = Option.bind (J.path e [ k ]) J.to_int in
  let name e =
    match J.path e [ "name" ] with Some (J.String s) -> s | _ -> ""
  in
  List.iter
    (fun e ->
      let ph = match J.path e [ "ph" ] with Some (J.String s) -> s | _ -> "" in
      match (ph, field e "pid", field e "tid") with
      | "B", Some pid, Some tid ->
          let k = (pid, tid) in
          let st = Option.value ~default:[] (Hashtbl.find_opt stacks k) in
          Hashtbl.replace stacks k (name e :: st)
      | "E", Some pid, Some tid -> (
          let k = (pid, tid) in
          match Hashtbl.find_opt stacks k with
          | Some (top :: rest) when String.equal top (name e) ->
              Hashtbl.replace stacks k rest
          | Some (top :: _) ->
              fail "timeline: E %s crosses open span %s on (%d,%d)" (name e)
                top pid tid
          | Some [] | None ->
              fail "timeline: E %s without an open B on (%d,%d)" (name e) pid
                tid)
      | _ -> ())
    events;
  Hashtbl.iter
    (fun (pid, tid) st ->
      if st <> [] then
        fail "timeline: %d span(s) left open on (%d,%d): %s" (List.length st)
          pid tid (String.concat "," st))
    stacks;
  (* per-app attribution must sum to the globals captured in the same
     stats snapshot *)
  let stats = J.path j [ "stats" ] in
  match stats with
  | None -> fail "timeline: stats section missing"
  | Some stats -> (
      match J.path stats [ "per_app" ] with
      | Some (J.Obj apps) ->
          let sum field =
            List.fold_left
              (fun acc (_, a) ->
                acc + Option.value ~default:0 (Option.bind (J.path a [ field ]) J.to_int))
              0 apps
          in
          List.iter
            (fun (app_field, global_field) ->
              let expected =
                Option.value ~default:0
                  (Option.bind (J.path stats [ global_field ]) J.to_int)
              in
              let got = sum app_field in
              if got <> expected then
                fail "timeline: per-app %s sums to %d, global %s is %d"
                  app_field got global_field expected)
            [
              ("cycles_charged", "hypervisor_cycles");
              ("view_switches", "view_switches");
              ("recoveries", "recoveries");
              ("recovered_bytes", "recovered_bytes");
              ("cow_breaks", "cow_breaks");
            ]
      | Some _ | None -> fail "timeline: stats.per_app missing")

(* ---------------- chaos artifact ---------------- *)

(* Exact counter pins for the full 100-plan matrix (seed 1) that the CI
   chaos-smoke job runs; everything downstream of the seed is
   deterministic.  Re-pin only with an intended behavior change. *)
let chaos_pins_100 =
  [
    ([ "governed"; "faults_injected" ], 535);
    ([ "governed"; "recoveries" ], 242);
    ([ "governed"; "storms" ], 23);
    ([ "governed"; "degradations" ], 159);
    ([ "governed"; "renarrows" ], 7);
    ([ "governed"; "quarantines" ], 36);
    ([ "governed"; "broken_backtraces" ], 34);
    ([ "ungoverned"; "panics" ], 54);
  ]

let check_chaos j =
  let geti p = Option.bind (J.path j p) J.to_int in
  let getb p = Option.bind (J.path j p) J.to_bool in
  List.iter
    (fun p ->
      if J.path j p = None then fail "missing required key %s" (spell p))
    ([ [ "schema_version" ]; [ "seed" ]; [ "plans" ] ]
    @ List.concat_map
        (fun arm ->
          List.map
            (fun k -> [ arm; k ])
            [
              "plans"; "faults_injected"; "bp_misses"; "config_rejects";
              "validation_misses"; "recoveries"; "storms"; "degradations";
              "renarrows"; "quarantines"; "broken_backtraces"; "panics";
              "wedged"; "attribution_ok";
            ])
        [ "governed"; "ungoverned" ]);
  (* the acceptance property: with the governor on, nothing dies, nothing
     wedges, nothing slips past validation, attribution stays exact *)
  List.iter
    (fun (p, expected) ->
      match geti p with
      | Some v when v = expected -> ()
      | Some v -> fail "%s: expected %d, got %d" (spell p) expected v
      | None -> fail "%s is missing or not an int" (spell p))
    [
      ([ "governed"; "panics" ], 0);
      ([ "governed"; "wedged" ], 0);
      ([ "governed"; "validation_misses" ], 0);
      ([ "ungoverned"; "validation_misses" ], 0);
    ];
  List.iter
    (fun p ->
      match getb p with
      | Some true -> ()
      | Some false -> fail "%s: per-app attribution drifted" (spell p)
      | None -> fail "%s is missing or not a bool" (spell p))
    [ [ "governed"; "attribution_ok" ]; [ "ungoverned"; "attribution_ok" ] ];
  (* the control arm must actually demonstrate the fragility the governor
     removes — a chaos matrix nothing dies under proves nothing *)
  (match geti [ "ungoverned"; "panics" ] with
  | Some n when n > 0 -> ()
  | Some 0 -> fail "ungoverned arm produced no panics: the plans are toothless"
  | Some _ | None -> ());
  if geti [ "plans" ] = Some 100 then
    List.iter
      (fun (p, expected) ->
        match geti p with
        | Some v when v = expected -> ()
        | Some v -> fail "%s drifted: expected %d, got %d" (spell p) expected v
        | None -> fail "%s is missing or not an int" (spell p))
      chaos_pins_100

(* ---------------- perf artifact ---------------- *)

(* The perf gate never touches wall-clock numbers (seconds, ips,
   speedups — recorded for humans, hopeless to pin).  What it gates:

   - behavior parity: the tlb, no-tlb and sb+tlb arms of the same
     workload retired identical instruction and cycle counts — the fast
     paths are optimizations, not semantic changes;
   - the no-tlb arms really ran with the TLBs off (zero hit/miss
     counts), and every non-sb arm kept the superblock counters silent;
   - the tlb arms really ran with them on, and the caches work (hits
     dominate misses); the sb arms really built, hit, chained — and on
     the view-switching workloads, invalidated — blocks;
   - the view-tagged arms (PCID/VPID-style per-view generations) retire
     the identical instruction and cycle counts as their untagged twins
     while driving view-switch- and COW-caused flushes, and superblock
     restamps, to exactly zero — the headline claim of the tagged
     translation cache, gated as hard equalities below;
   - exact pins for every deterministic counter, captured from one
     deterministic pass so they are independent of reps / --fast. *)
let perf_counter_pins =
  [
    ( "unixbench",
      "tlb+views",
      [ ("instructions", 20348460); ("cycles", 29738269);
        ("i_hits", 21267231); ("i_misses", 345); ("d_hits", 9133042);
        ("d_misses", 2112); ("i_flushes", 6253); ("d_flushes", 64);
        ("fl_view_switch", 66); ("fl_cow", 2538); ("fl_growth", 3713);
        ("fl_explicit", 0) ] );
    ( "unixbench",
      "tlb+noviews",
      [ ("instructions", 20003751); ("cycles", 26496304);
        ("i_hits", 20620316); ("i_misses", 148); ("d_hits", 5670833);
        ("d_misses", 1343); ("i_flushes", 3577); ("d_flushes", 46);
        ("fl_view_switch", 0); ("fl_cow", 0); ("fl_growth", 3623);
        ("fl_explicit", 0) ] );
    ( "httperf",
      "tlb",
      [ ("instructions", 25702368); ("cycles", 45117642);
        ("i_hits", 26071610); ("i_misses", 11703); ("d_hits", 1460460);
        ("d_misses", 219); ("i_flushes", 2140); ("d_flushes", 5);
        ("fl_view_switch", 1602); ("fl_cow", 141); ("fl_growth", 402);
        ("fl_explicit", 0) ] );
    (* superblock arms: identical retirement (parity is also asserted
       structurally below), a tiny residue of iTLB traffic (classic-path
       fallbacks at page tails and trap resumes), and the block-cache
       counters.  sb_invals is zero without views — nothing remaps pages
       mid-run — and positive on the view-switching workloads. *)
    ( "unixbench",
      "sb+tlb+views",
      [ ("instructions", 20348460); ("cycles", 29738269);
        ("i_hits", 92008); ("i_misses", 259); ("d_hits", 9133042);
        ("d_misses", 2112); ("i_flushes", 6253); ("d_flushes", 64);
        ("sb_built", 7378); ("sb_hits", 160450); ("sb_invals", 3049);
        ("sb_chains", 351511); ("sb_restamps", 3031) ] );
    ( "unixbench",
      "sb+tlb+noviews",
      [ ("instructions", 20003751); ("cycles", 26496304);
        ("i_hits", 90353); ("i_misses", 103); ("d_hits", 5670833);
        ("d_misses", 1343); ("i_flushes", 3577); ("d_flushes", 46);
        ("sb_built", 4683); ("sb_hits", 157966); ("sb_invals", 0);
        ("sb_chains", 347480); ("sb_restamps", 0) ] );
    ( "httperf",
      "sb+tlb",
      [ ("instructions", 25702368); ("cycles", 45117642);
        ("i_hits", 123861); ("i_misses", 9085); ("d_hits", 1460460);
        ("d_misses", 219); ("i_flushes", 2140); ("d_flushes", 5);
        ("sb_built", 2282); ("sb_hits", 181925); ("sb_invals", 42164);
        ("sb_chains", 440748); ("sb_restamps", 311406) ] );
    (* view-tagged arms: same retirement as the untagged twins, zero
       translation-shootdown traffic.  i_flushes = 0 because under tags a
       view switch retags instead of flushing, a COW break touches the
       displaced frame's version instead of bumping a generation, and
       guest-RAM growth installs pages quietly (nothing cached a negative
       translation).  sb_restamps = 0 because blocks on never-diverged
       pages carry a global-page stamp and blocks on diverged shared
       frames are pre-stamped with their sibling views' tags at build
       time.  These zeros ARE the acceptance criterion: untagged
       view-switch flushes (66 / 1602) and restamps (3031 / 311406)
       drop to nothing at identical instruction and cycle counts. *)
    ( "unixbench",
      "tag+tlb+views",
      [ ("instructions", 20348460); ("cycles", 29738269);
        ("i_hits", 21267261); ("i_misses", 315); ("d_hits", 9133042);
        ("d_misses", 2112); ("i_flushes", 0); ("d_flushes", 64);
        ("fl_view_switch", 0); ("fl_cow", 0); ("fl_growth", 64);
        ("fl_explicit", 0) ] );
    ( "unixbench",
      "tag+sb+tlb+views",
      [ ("instructions", 20348460); ("cycles", 29738269);
        ("i_hits", 92010); ("i_misses", 257); ("d_hits", 9133042);
        ("d_misses", 2112); ("i_flushes", 0); ("d_flushes", 64);
        ("sb_built", 7378); ("sb_hits", 160450); ("sb_invals", 3049);
        ("sb_chains", 351511); ("sb_restamps", 0);
        ("fl_view_switch", 0); ("fl_cow", 0); ("fl_growth", 64);
        ("fl_explicit", 0) ] );
    ( "httperf",
      "tag+sb+tlb",
      [ ("instructions", 25702368); ("cycles", 45117642);
        ("i_hits", 128760); ("i_misses", 4186); ("d_hits", 1460460);
        ("d_misses", 219); ("i_flushes", 0); ("d_flushes", 5);
        ("sb_built", 2282); ("sb_hits", 181925); ("sb_invals", 42164);
        ("sb_chains", 440748); ("sb_restamps", 0);
        ("fl_view_switch", 0); ("fl_cow", 0); ("fl_growth", 5);
        ("fl_explicit", 0) ] );
  ]

let check_perf j =
  let geti v p = Option.bind (J.path v p) J.to_int in
  (match geti j [ "schema_version" ] with
  | Some 1 -> ()
  | Some v -> fail "perf: schema_version %d, expected 1" v
  | None -> fail "perf: schema_version missing");
  let arms section =
    match J.path j [ "perf"; section; "arms" ] with
    | Some (J.List l) -> l
    | Some _ | None ->
        fail "perf: %s.arms missing or not a list" section;
        []
  in
  let find_arm section label =
    List.find_opt
      (fun a ->
        match J.path a [ "label" ] with
        | Some (J.String s) -> s = label
        | _ -> false)
      (arms section)
  in
  let counter section label name =
    Option.bind (find_arm section label) (fun a ->
        geti a [ "counters"; name ])
  in
  let arm_labels =
    [ ( "unixbench",
        [ "tlb+views"; "no-tlb+views"; "tlb+noviews"; "no-tlb+noviews";
          "sb+tlb+views"; "sb+tlb+noviews"; "tag+tlb+views";
          "tag+sb+tlb+views" ] );
      ("httperf", [ "tlb"; "no-tlb"; "sb+tlb"; "tag+sb+tlb" ]) ]
  in
  List.iter
    (fun (section, labels) ->
      List.iter
        (fun label ->
          match find_arm section label with
          | None -> fail "perf: %s arm %s missing" section label
          | Some a ->
              (* wall clock: present and finite, never compared *)
              List.iter
                (fun k ->
                  match Option.bind (J.path a [ k ]) J.to_float with
                  | Some f when Float.is_finite f -> ()
                  | Some _ | None ->
                      fail "perf: %s/%s.%s is not a finite number" section
                        label k)
                [ "seconds"; "ips" ])
        labels)
    arm_labels;
  (* parity: same workload, same retirement, whatever fast paths are on *)
  List.iter
    (fun (section, fast_label, base_label) ->
      List.iter
        (fun c ->
          match (counter section fast_label c, counter section base_label c) with
          | Some a, Some b when a = b -> ()
          | Some a, Some b ->
              fail "perf: %s %s between %s (%d) and %s (%d) — a fast path \
                    changed guest behavior"
                section c fast_label a base_label b
          | _ -> fail "perf: %s %s missing on %s or %s" section c fast_label
                   base_label)
        [ "instructions"; "cycles" ])
    [ ("unixbench", "tlb+views", "no-tlb+views");
      ("unixbench", "tlb+noviews", "no-tlb+noviews");
      ("unixbench", "sb+tlb+views", "tlb+views");
      ("unixbench", "sb+tlb+noviews", "tlb+noviews");
      ("unixbench", "tag+tlb+views", "tlb+views");
      ("unixbench", "tag+sb+tlb+views", "sb+tlb+views");
      ("httperf", "tlb", "no-tlb");
      ("httperf", "sb+tlb", "tlb");
      ("httperf", "tag+sb+tlb", "sb+tlb") ];
  (* the no-tlb arms must be a true baseline *)
  List.iter
    (fun (section, label) ->
      List.iter
        (fun c ->
          match counter section label c with
          | Some 0 -> ()
          | Some v -> fail "perf: %s/%s.%s = %d, expected 0 (TLB off)" section
                        label c v
          | None -> fail "perf: %s/%s.%s missing" section label c)
        [ "i_hits"; "i_misses"; "d_hits"; "d_misses" ])
    [ ("unixbench", "no-tlb+views"); ("unixbench", "no-tlb+noviews");
      ("httperf", "no-tlb") ];
  (* non-sb arms must keep the superblock engine silent *)
  List.iter
    (fun (section, label) ->
      List.iter
        (fun c ->
          match counter section label c with
          | Some 0 -> ()
          | Some v ->
              fail "perf: %s/%s.%s = %d, expected 0 (superblocks off)" section
                label c v
          | None -> fail "perf: %s/%s.%s missing" section label c)
        [ "sb_built"; "sb_hits"; "sb_invals"; "sb_chains" ])
    [ ("unixbench", "tlb+views"); ("unixbench", "no-tlb+views");
      ("unixbench", "tlb+noviews"); ("unixbench", "no-tlb+noviews");
      ("unixbench", "tag+tlb+views");
      ("httperf", "tlb"); ("httperf", "no-tlb") ];
  (* the sb arms must show a working block cache: blocks decoded once,
     re-executed many times, chained block-to-block; retention keeps
     rebuilds far below re-executions *)
  List.iter
    (fun (section, label) ->
      let v c = Option.value ~default:0 (counter section label c) in
      if v "sb_built" = 0 then fail "perf: %s/%s built no blocks" section label;
      if v "sb_hits" = 0 then fail "perf: %s/%s has no block hits" section label;
      if v "sb_chains" = 0 then
        fail "perf: %s/%s followed no chains" section label;
      if v "sb_hits" <= v "sb_built" then
        fail "perf: %s/%s rebuilds (%d) dominate hits (%d)" section label
          (v "sb_built") (v "sb_hits"))
    [ ("unixbench", "sb+tlb+views"); ("unixbench", "sb+tlb+noviews");
      ("unixbench", "tag+sb+tlb+views"); ("httperf", "sb+tlb");
      ("httperf", "tag+sb+tlb") ];
  (* the tlb arms must show working caches *)
  List.iter
    (fun (section, label) ->
      let v c = Option.value ~default:0 (counter section label c) in
      if v "i_hits" = 0 then fail "perf: %s/%s has no iTLB hits" section label;
      if v "d_hits" = 0 then fail "perf: %s/%s has no dTLB hits" section label;
      if v "i_hits" <= v "i_misses" then
        fail "perf: %s/%s iTLB misses (%d) dominate hits (%d)" section label
          (v "i_misses") (v "i_hits");
      if v "d_hits" <= v "d_misses" then
        fail "perf: %s/%s dTLB misses (%d) dominate hits (%d)" section label
          (v "d_misses") (v "d_hits"))
    [ ("unixbench", "tlb+views"); ("unixbench", "tlb+noviews");
      ("unixbench", "tag+tlb+views"); ("httperf", "tlb") ];
  (* the acceptance criterion, stated as a relation rather than relying
     on the pins alone: tagging must cut view-switch-caused flushes and
     superblock restamps at least 10x against the untagged twin of the
     same workload (in fact to zero), and must not introduce COW or
     explicit flushes the untagged arm didn't have *)
  List.iter
    (fun (section, tagged, untagged, counters) ->
      List.iter
        (fun c ->
          match (counter section tagged c, counter section untagged c) with
          | Some t, Some u when u > 0 && t * 10 > u ->
              fail
                "perf: %s %s: tagging left %d (untagged %s had %d) — less \
                 than the 10x reduction the tagged translation cache \
                 promises"
                section c t untagged u
          | Some _, Some _ -> ()
          | _ -> fail "perf: %s %s missing on %s or %s" section c tagged
                   untagged)
        counters)
    [ ("unixbench", "tag+tlb+views", "tlb+views", [ "fl_view_switch"; "fl_cow" ]);
      ( "unixbench",
        "tag+sb+tlb+views",
        "sb+tlb+views",
        [ "fl_view_switch"; "fl_cow"; "sb_restamps" ] );
      ( "httperf",
        "tag+sb+tlb",
        "sb+tlb",
        [ "fl_view_switch"; "fl_cow"; "sb_restamps" ] ) ];
  (* exact pins *)
  List.iter
    (fun (section, label, pins) ->
      List.iter
        (fun (c, expected) ->
          match counter section label c with
          | Some v when v = expected -> ()
          | Some v ->
              fail "perf: %s/%s.%s drifted: expected %d, got %d" section label
                c expected v
          | None -> fail "perf: %s/%s.%s missing" section label c)
        pins)
    perf_counter_pins;
  (* warm/cold: instruction counts pinned, times recorded only *)
  List.iter
    (fun (leg, expected) ->
      match geti j [ "perf"; "warm_cold"; leg; "instructions" ] with
      | Some v when v = expected -> ()
      | Some v ->
          fail "perf: warm_cold.%s.instructions drifted: expected %d, got %d"
            leg expected v
      | None -> fail "perf: warm_cold.%s.instructions missing" leg)
    [ ("cold", 152121); ("warm", 155917) ]

(* ---------------- fleet artifact ---------------- *)

(* Exact counter pins for the pinned fleet cell: 40 guests, seed 7, run
   at 1, 2 and 4 domains regardless of --fast.  Everything downstream of
   the seed is deterministic and independent of the domain count, so one
   set of pins covers all three cells.  Re-pin only with an intended
   behavior change. *)
let fleet_cell_pins =
  [
    ("instructions", 40617176);
    ("cycles", 53150303);
    ("context_switches", 1299);
    ("view_switches", 1274);
    ("recoveries", 139);
    ("recovered_bytes", 61568);
    ("degradations", 70);
    ("quarantines", 19);
    ("total_frames", 2081);
    ("unique_frames", 180);
    ("panics", 0);
    ("wedged", 0);
  ]

let check_fleet j =
  let geti v p = Option.bind (J.path v p) J.to_int in
  let getf v p = Option.bind (J.path v p) J.to_float in
  (match geti j [ "schema_version" ] with
  | Some 1 -> ()
  | Some v -> fail "fleet: schema_version %d, expected 1" v
  | None -> fail "fleet: schema_version missing");
  (match geti j [ "fleet"; "seed" ] with
  | Some 7 -> ()
  | Some v -> fail "fleet: seed %d, expected 7" v
  | None -> fail "fleet: seed missing");
  (match geti j [ "fleet"; "pinned"; "guests" ] with
  | Some 40 -> ()
  | Some v -> fail "fleet: pinned.guests %d, expected 40" v
  | None -> fail "fleet: pinned.guests missing");
  (* structural + wall-clock sanity shared by pinned and sweep cells *)
  let check_cell_shape ctx cell =
    List.iter
      (fun k ->
        match getf cell [ k ] with
        | Some f when Float.is_finite f -> ()
        | Some _ | None -> fail "fleet: %s.%s is not a finite number" ctx k)
      [ "seconds"; "ips"; "dedup_ratio" ];
    (match J.path cell [ "per_app_ok" ] with
    | Some (J.Bool true) -> ()
    | Some (J.Bool false) ->
        fail "fleet: %s: per-app sums drifted from merged globals" ctx
    | Some _ | None -> fail "fleet: %s.per_app_ok missing" ctx);
    (* the ratio is derived — make sure it derives from its own ints *)
    match (geti cell [ "unique_frames" ], geti cell [ "total_frames" ]) with
    | Some u, Some t when t > 0 ->
        let expect = 1. -. (float_of_int u /. float_of_int t) in
        (match getf cell [ "dedup_ratio" ] with
        | Some r when Float.abs (r -. expect) < 1e-9 -> ()
        | Some r ->
            fail "fleet: %s.dedup_ratio %g inconsistent with %d/%d frames" ctx
              r u t
        | None -> ())
    | Some _, Some _ | Some _, None | None, _ ->
        fail "fleet: %s frame counts missing or empty" ctx
  in
  let fingerprint cell =
    match J.path cell [ "fingerprint" ] with
    | Some (J.String s) when s <> "" -> Some s
    | _ -> None
  in
  (* pinned cells: exact counters, identical fingerprints across domain
     counts — the determinism acceptance bar *)
  (match J.path j [ "fleet"; "pinned"; "cells" ] with
  | Some (J.List cells) when List.length cells >= 2 ->
      let domains =
        List.filter_map (fun c -> geti c [ "domains" ]) cells
      in
      if not (List.mem 1 domains) then
        fail "fleet: pinned cells lack the 1-domain baseline";
      List.iteri
        (fun i cell ->
          let ctx =
            Printf.sprintf "pinned[%d] (d=%d)" i
              (Option.value ~default:(-1) (geti cell [ "domains" ]))
          in
          check_cell_shape ctx cell;
          List.iter
            (fun (k, expected) ->
              match geti cell [ k ] with
              | Some v when v = expected -> ()
              | Some v ->
                  fail "fleet: %s.%s drifted: expected %d, got %d" ctx k
                    expected v
              | None -> fail "fleet: %s.%s missing" ctx k)
            fleet_cell_pins)
        cells;
      (match List.map fingerprint cells with
      | fps when List.mem None fps ->
          fail "fleet: a pinned cell has no fingerprint"
      | fps -> (
          match List.sort_uniq compare fps with
          | [ _ ] -> ()
          | distinct ->
              fail
                "fleet: merged fingerprint differs across domain counts (%d \
                 distinct values) — sharding changed guest behavior"
                (List.length distinct)))
  | Some (J.List _) -> fail "fleet: fewer than 2 pinned cells"
  | Some _ | None -> fail "fleet: pinned.cells missing or not a list");
  (* sweep: rows at the same guest count must agree with each other,
     whatever their domain count; the grid itself depends on --fast and
     is not pinned *)
  match J.path j [ "fleet"; "sweep" ] with
  | Some (J.List rows) ->
      let by_guests : (int, (string option * int option) list ref) Hashtbl.t =
        Hashtbl.create 8
      in
      List.iteri
        (fun i row ->
          let ctx =
            Printf.sprintf "sweep[%d] (d=%d g=%d)" i
              (Option.value ~default:(-1) (geti row [ "domains" ]))
              (Option.value ~default:(-1) (geti row [ "guests" ]))
          in
          check_cell_shape ctx row;
          match geti row [ "guests" ] with
          | None -> fail "fleet: %s.guests missing" ctx
          | Some g ->
              let l =
                match Hashtbl.find_opt by_guests g with
                | Some l -> l
                | None ->
                    let l = ref [] in
                    Hashtbl.add by_guests g l;
                    l
              in
              l := (fingerprint row, geti row [ "instructions" ]) :: !l)
        rows;
      Hashtbl.iter
        (fun guests l ->
          match List.sort_uniq compare !l with
          | [] | [ _ ] -> ()
          | distinct ->
              fail
                "fleet: sweep rows at %d guests disagree (%d distinct \
                 fingerprint/instruction pairs across domain counts)"
                guests (List.length distinct))
        by_guests
  | Some _ | None -> fail "fleet: sweep missing or not a list"

(* ---------------- telemetry artifact ---------------- *)

(* The armed pinned cell is the exact fleet the --fleet pins describe
   (seed 7, 40 guests), so its counters reuse fleet_cell_pins; the
   telemetry pins below are the interval/sample counts of that cell and
   of the fixed engine-matrix guest — deterministic by construction of
   the instruction-count ticker.  Re-pin only with an intended behavior
   change. *)
let telemetry_cell_pins = [ ("intervals", 17); ("samples", 428); ("stacks", 24) ]
let telemetry_matrix_pins = [ ("intervals", 14); ("samples", 14) ]

let telemetry_profile_pins =
  [ ("ticks", 26); ("samples", 26); ("intervals", 26); ("fold_total", 26) ]

(* series keys whose cell totals must equal the merged stats counter of
   the same name — the sum-equals-total invariant, checked end to end
   from the artifact *)
let telemetry_total_keys =
  [
    ("fc.view_switches", "view_switches");
    ("fc.recoveries", "recoveries");
    ("fc.recovered_bytes", "recovered_bytes");
    ("fc.degradations", "degradations");
    ("fc.quarantines", "quarantines");
  ]

let check_telemetry j =
  let geti v p = Option.bind (J.path v p) J.to_int in
  let gets v p =
    match J.path v p with Some (J.String s) when s <> "" -> Some s | _ -> None
  in
  let pin ctx cell (k, expected) =
    match geti cell [ k ] with
    | Some v when v = expected -> ()
    | Some v ->
        fail "telemetry: %s.%s drifted: expected %d, got %d" ctx k expected v
    | None -> fail "telemetry: %s.%s missing" ctx k
  in
  (match geti j [ "schema_version" ] with
  | Some 1 -> ()
  | Some v -> fail "telemetry: schema_version %d, expected 1" v
  | None -> fail "telemetry: schema_version missing");
  (match geti j [ "telemetry"; "seed" ] with
  | Some 7 -> ()
  | Some v -> fail "telemetry: seed %d, expected 7" v
  | None -> fail "telemetry: seed missing");
  let disarmed_fp = gets j [ "telemetry"; "disarmed_cell"; "fingerprint" ] in
  (match J.path j [ "telemetry"; "disarmed_cell" ] with
  | Some cell ->
      List.iter (pin "disarmed_cell" cell) fleet_cell_pins;
      if J.path cell [ "telemetry" ] <> None then
        fail "telemetry: the disarmed control cell carries telemetry"
  | None -> fail "telemetry: disarmed_cell missing");
  (* armed cells: fleet counters must sit exactly on the --fleet pins
     (arming is behavior-invisible), fleet fingerprint must equal the
     disarmed control's, and the merged telemetry must be identical
     across domain counts *)
  (match J.path j [ "telemetry"; "armed_cells" ] with
  | Some (J.List cells) when List.length cells >= 2 ->
      let series_fps = ref [] and sampler_fps = ref [] in
      List.iteri
        (fun i cell ->
          let ctx =
            Printf.sprintf "armed[%d] (d=%d)" i
              (Option.value ~default:(-1) (geti cell [ "domains" ]))
          in
          List.iter (pin ctx cell) fleet_cell_pins;
          (match (gets cell [ "fingerprint" ], disarmed_fp) with
          | Some a, Some d when a <> d ->
              fail
                "telemetry: %s fleet fingerprint differs from the disarmed \
                 control — arming the probe changed guest behavior"
                ctx
          | None, _ -> fail "telemetry: %s.fingerprint missing" ctx
          | _ -> ());
          match J.path cell [ "telemetry" ] with
          | None -> fail "telemetry: %s carries no telemetry" ctx
          | Some tel ->
              List.iter (pin (ctx ^ ".telemetry") tel) telemetry_cell_pins;
              pin (ctx ^ ".telemetry") tel ("dropped", 0);
              series_fps := gets tel [ "series_fingerprint" ] :: !series_fps;
              sampler_fps := gets tel [ "sampler_fingerprint" ] :: !sampler_fps;
              (* sum-equals-total, end to end: the series deltas re-sum
                 to the merged stats counters *)
              List.iter
                (fun (key, stat) ->
                  match (geti tel [ "totals"; key ], geti cell [ stat ]) with
                  | Some t, Some s when t <> s ->
                      fail
                        "telemetry: %s: series %s re-sums to %d but the \
                         merged stats report %d"
                        ctx key t s
                  | None, _ -> fail "telemetry: %s.totals.%s missing" ctx key
                  | _, None -> fail "telemetry: %s.%s missing" ctx stat
                  | Some _, Some _ -> ())
                telemetry_total_keys)
        cells;
      List.iter
        (fun (what, fps) ->
          match List.sort_uniq compare fps with
          | [ Some _ ] -> ()
          | [ None ] | [] -> fail "telemetry: armed cells lack %s" what
          | distinct ->
              fail
                "telemetry: %s differs across domain counts (%d distinct \
                 values) — the merge is shard-dependent"
                what (List.length distinct))
        [ ("series fingerprint", !series_fps);
          ("sampler fingerprint", !sampler_fps) ]
  | Some (J.List _) -> fail "telemetry: fewer than 2 armed cells"
  | Some _ | None -> fail "telemetry: armed_cells missing or not a list");
  (* engine matrix: all four {sblocks}x{tlb} arms fingerprint identically *)
  (match J.path j [ "telemetry"; "matrix" ] with
  | Some (J.List arms) when List.length arms = 4 ->
      let fps = ref [] in
      List.iter
        (fun arm ->
          let ctx =
            Printf.sprintf "matrix[%s]"
              (Option.value ~default:"?" (gets arm [ "arm" ]))
          in
          (match gets arm [ "outcome" ] with
          | Some "ok" -> ()
          | Some o -> fail "telemetry: %s outcome %s" ctx o
          | None -> fail "telemetry: %s.outcome missing" ctx);
          List.iter (pin ctx arm) telemetry_matrix_pins;
          (match J.path arm [ "resum_errors" ] with
          | Some (J.List []) -> ()
          | Some (J.List es) ->
              fail "telemetry: %s: %d counter(s) fail to re-sum" ctx
                (List.length es)
          | Some _ | None -> fail "telemetry: %s.resum_errors missing" ctx);
          fps :=
            ( gets arm [ "series_fingerprint" ],
              gets arm [ "sampler_fingerprint" ] )
            :: !fps)
        arms;
      (match List.sort_uniq compare !fps with
      | [ (Some _, Some _) ] -> ()
      | [ _ ] -> fail "telemetry: matrix arms lack fingerprints"
      | distinct ->
          fail
            "telemetry: fingerprints differ across engine arms (%d distinct \
             values) — an engine toggle is telemetry-visible"
            (List.length distinct))
  | Some (J.List arms) ->
      fail "telemetry: expected 4 engine arms, found %d" (List.length arms)
  | Some _ | None -> fail "telemetry: matrix missing or not a list");
  (* profile: the armed unixbench-style run produced a non-empty folded
     profile whose sample count equals the ticks fired *)
  match J.path j [ "telemetry"; "profile" ] with
  | None -> fail "telemetry: profile missing"
  | Some p -> (
      (match gets p [ "outcome" ] with
      | Some "ok" -> ()
      | Some o -> fail "telemetry: profile outcome %s" o
      | None -> fail "telemetry: profile.outcome missing");
      List.iter (pin "profile" p) telemetry_profile_pins;
      pin "profile" p ("dropped", 0);
      (match (geti p [ "samples" ], geti p [ "ticks" ], geti p [ "vcpus" ]) with
      | Some s, Some t, Some v when s <> t * v ->
          fail "telemetry: profile recorded %d samples over %d ticks x %d vcpus"
            s t v
      | _ -> ());
      (match J.path p [ "resum_errors" ] with
      | Some (J.List []) -> ()
      | Some (J.List es) ->
          fail "telemetry: profile: %d counter(s) fail to re-sum"
            (List.length es)
      | Some _ | None -> fail "telemetry: profile.resum_errors missing");
      match geti p [ "stacks" ] with
      | Some s when s > 0 -> ()
      | Some _ -> fail "telemetry: profile folded-stack profile is empty"
      | None -> fail "telemetry: profile.stacks missing")

let read_file path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Ok s

(* ---------------- migrate artifact ---------------- *)

(* Exact pins for the migration rows the fast and full grids share: the
   row seed is Frand.mix of the arm seed and (precopy_rounds, index), so
   the first two seeds of the precopy-1 and precopy-3 columns are
   identical in both grids.  Keyed by (precopy_rounds, row seed); the
   pinned fields are everything deterministic about the transfer —
   downtime_cycles is a model output recorded for humans and is NEVER
   gated.  Re-pin only with an intended behavior change. *)
let migrate_row_pins =
  [
    ( (1, 3913828523329621081),
      [ ("pages_total", 455); ("pages_copied", 455); ("final_dirty", 0);
        ("bytes_copied", 1863680); ("snapshot_bytes", 813964) ] );
    ( (1, 99671189725526193),
      [ ("pages_total", 473); ("pages_copied", 473); ("final_dirty", 0);
        ("bytes_copied", 1937408); ("snapshot_bytes", 819604) ] );
    ( (3, 725993633631596918),
      [ ("pages_total", 477); ("pages_copied", 481); ("final_dirty", 0);
        ("bytes_copied", 1970176); ("snapshot_bytes", 853041) ] );
    ( (3, 1520132603867492020),
      [ ("pages_total", 473); ("pages_copied", 480); ("final_dirty", 0);
        ("bytes_copied", 1966080); ("snapshot_bytes", 820115) ] );
  ]

let check_migrate j =
  let geti v p = Option.bind (J.path v p) J.to_int in
  (match geti j [ "schema_version" ] with
  | Some 1 -> ()
  | Some v -> fail "migrate: schema_version %d, expected 1" v
  | None -> fail "migrate: schema_version missing");
  (* the acceptance property: every migrated guest finished with its
     uninterrupted control's digest, and nothing died *)
  (match J.path j [ "migrate"; "parity_ok" ] with
  | Some (J.Bool true) -> ()
  | Some (J.Bool false) ->
      fail "migrate: a migrated guest diverged from its control"
  | Some _ | None -> fail "migrate: parity_ok missing");
  (match geti j [ "migrate"; "panics" ] with
  | Some 0 -> ()
  | Some n -> fail "migrate: %d guest(s) panicked" n
  | None -> fail "migrate: panics missing");
  match J.path j [ "migrate"; "rows" ] with
  | Some (J.List []) -> fail "migrate: no rows — nothing migrated"
  | Some (J.List rows) ->
      List.iteri
        (fun i row ->
          let ctx =
            Printf.sprintf "row[%d] (precopy=%d)" i
              (Option.value ~default:(-1) (geti row [ "precopy_rounds" ]))
          in
          (match J.path row [ "migrated" ] with
          | Some (J.Bool true) -> ()
          | Some (J.Bool false) ->
              fail "migrate: %s: guest died before the handoff" ctx
          | Some _ | None -> fail "migrate: %s.migrated missing" ctx);
          (match J.path row [ "parity" ] with
          | Some (J.Bool true) -> ()
          | Some (J.Bool false) ->
              fail "migrate: %s: post-handoff digest diverged" ctx
          | Some _ | None -> fail "migrate: %s.parity missing" ctx);
          (* structural invariants of any transfer, fast or full *)
          (match (geti row [ "final_dirty" ], geti row [ "pages_total" ]) with
          | Some d, Some t when d > t ->
              fail "migrate: %s: final dirty set (%d) exceeds live pages (%d)"
                ctx d t
          | None, _ | _, None ->
              fail "migrate: %s page counts missing" ctx
          | Some _, Some _ -> ());
          (match (geti row [ "pages_copied" ], geti row [ "pages_total" ]) with
          | Some c, Some t when c < t ->
              fail "migrate: %s: copied %d pages but %d were live" ctx c t
          | _ -> ());
          (match geti row [ "snapshot_bytes" ] with
          | Some b when b > 0 -> ()
          | Some _ -> fail "migrate: %s: empty wire snapshot" ctx
          | None -> fail "migrate: %s.snapshot_bytes missing" ctx);
          (* downtime: present and positive — recorded, never compared *)
          (match geti row [ "downtime_cycles" ] with
          | Some d when d > 0 -> ()
          | Some _ -> fail "migrate: %s: downtime_cycles not positive" ctx
          | None -> fail "migrate: %s.downtime_cycles missing" ctx);
          (* exact pins where this row is one the grids share *)
          match (geti row [ "precopy_rounds" ], geti row [ "seed" ]) with
          | Some pr, Some seed -> (
              match List.assoc_opt (pr, seed) migrate_row_pins with
              | None -> ()
              | Some pins ->
                  List.iter
                    (fun (k, expected) ->
                      match geti row [ k ] with
                      | Some v when v = expected -> ()
                      | Some v ->
                          fail "migrate: %s.%s drifted: expected %d, got %d"
                            ctx k expected v
                      | None -> fail "migrate: %s.%s missing" ctx k)
                    pins)
          | _ -> fail "migrate: %s seed/precopy_rounds missing" ctx)
        rows
  | Some _ | None -> fail "migrate: rows missing or not a list"

(* ---------------- golden snapshot artifact ---------------- *)

(* Format-stability gate: the committed golden .fcsnap must decode with
   today's decoder, and re-encoding the decoded value must reproduce the
   committed bytes exactly.  Any codec change that breaks either is a
   wire-format break: bump the version and regenerate the golden
   deliberately (bin/facechange_cli.ml snapshot), never silently. *)
let check_snapshot path =
  match read_file path with
  | Error e -> fail "cannot open: %s" e
  | Ok wire -> (
      match Fc_snapshot.Snapshot.decode wire with
      | Error e ->
          fail "golden snapshot rejected (%d bytes on disk): %s"
            (String.length wire)
            (Fc_snapshot.Snapshot.error_to_string e)
      | Ok snap ->
          let reencoded = Fc_snapshot.Snapshot.encode snap in
          if not (String.equal reencoded wire) then
            fail
              "golden snapshot is not a fixed point: re-encoding yields %d \
               bytes vs %d committed — the wire format changed without a \
               version bump"
              (String.length reencoded) (String.length wire);
          (match Fc_snapshot.Snapshot.meta_find snap "kind" with
          | Some _ -> ()
          | None -> fail "golden snapshot carries no kind meta entry");
          if snap.Fc_snapshot.Snapshot.s_tables = [||] then
            fail "golden snapshot has no EPT tables")

(* ---------------- driver ---------------- *)

(* A missing or malformed artifact is a recorded failure, not an early
   exit: the remaining artifacts still get validated.  A parse failure
   names the artifact (via the context prefix), its size on disk and the
   byte offset the parser died at — enough to pull the artifact from CI
   and look at the exact spot. *)
let parse path =
  match read_file path with
  | Error e ->
      fail "cannot open: %s" e;
      None
  | Ok s -> (
      match J.of_string s with
      | Error e ->
          fail "not valid JSON (%d bytes on disk): %s" (String.length s) e;
          None
      | Ok j -> Some j)

type kind = Results | Timeline | Chaos | Perf | Fleet | Telemetry | Migrate | Snapshot

let default_file = function
  | Results -> "BENCH_results.json"
  | Timeline -> "BENCH_timeline.json"
  | Chaos -> "BENCH_chaos.json"
  | Perf -> "BENCH_perf.json"
  | Fleet -> "BENCH_fleet.json"
  | Telemetry -> "BENCH_telemetry.json"
  | Migrate -> "BENCH_migrate.json"
  | Snapshot -> "bench/golden.fcsnap"

(* Mode flags apply to the paths that follow them; bare paths keep the
   historical meaning (results, then its timeline).  Flags without a
   path check that mode's default artifact — including when several
   trailing flags stack (`--snapshot --migrate` checks both defaults). *)
let parse_args args =
  let jobs = ref [] and mode = ref Results and flagged = ref false in
  let flush_flag () =
    if !flagged then jobs := (!mode, default_file !mode) :: !jobs
  in
  let set m =
    flush_flag ();
    mode := m;
    flagged := true
  in
  List.iter
    (fun a ->
      match a with
      | "--chaos" -> set Chaos
      | "--perf" -> set Perf
      | "--fleet" -> set Fleet
      | "--telemetry" -> set Telemetry
      | "--results" -> set Results
      | "--timeline" -> set Timeline
      | "--migrate" -> set Migrate
      | "--snapshot" -> set Snapshot
      | path ->
          flagged := false;
          jobs := (!mode, path) :: !jobs;
          (* a bare path in results mode makes the next bare path the
             timeline, as `check.exe results.json timeline.json` always
             meant *)
          if !mode = Results then mode := Timeline)
    args;
  flush_flag ();
  let jobs = List.rev !jobs in
  match jobs with
  | [] -> [ (Results, default_file Results); (Timeline, default_file Timeline) ]
  | jobs ->
      (* a results check without its timeline pulls in the default, as
         the zero/one-argument historical forms did *)
      let has k = List.exists (fun (k', _) -> k' = k) jobs in
      if has Results && not (has Timeline) then
        jobs @ [ (Timeline, default_file Timeline) ]
      else jobs

let run_job (kind, path) =
  context := path;
  (match kind with
  | Snapshot -> check_snapshot path (* binary, not JSON *)
  | _ -> (
      match parse path with
      | None -> ()
      | Some j -> (
          match kind with
          | Results ->
              check_required j;
              check_pinned j;
              check_finite j
          | Timeline -> check_timeline j
          | Chaos -> check_chaos j
          | Perf -> check_perf j
          | Fleet -> check_fleet j
          | Telemetry -> check_telemetry j
          | Migrate -> check_migrate j
          | Snapshot -> assert false)));
  context := ""

let () =
  let jobs = parse_args (List.tl (Array.to_list Sys.argv)) in
  List.iter run_job jobs;
  match List.rev !failures with
  | [] ->
      Printf.printf "check: %s ok (%d pinned results values, %d chaos pins, \
                     %d perf pins, %d fleet pins, %d telemetry pins, %d \
                     migrate pins where applicable)\n"
        (String.concat " + " (List.map snd jobs))
        (List.length pinned_ints + List.length pinned_bools)
        (List.length chaos_pins_100)
        (List.fold_left (fun acc (_, _, pins) -> acc + List.length pins) 2
           perf_counter_pins)
        (List.length fleet_cell_pins)
        (List.length telemetry_cell_pins + List.length telemetry_matrix_pins
        + List.length telemetry_profile_pins)
        (List.fold_left (fun acc (_, pins) -> acc + List.length pins) 0
           migrate_row_pins);
      exit 0
  | fs ->
      List.iter (Printf.eprintf "check: %s\n") fs;
      Printf.eprintf "check: FAILED (%d problem(s) across %d artifact(s))\n"
        (List.length fs) (List.length jobs);
      exit 1
