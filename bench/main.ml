(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (Table I, Table II, Figs. 3-7), plus a Bechamel
   micro-benchmark section for the core primitives.

   Usage:
     bench/main.exe                 run everything
     bench/main.exe table1 fig6     run a subset
     bench/main.exe --fast          fig6 at a subset of view counts *)

module Profiles = Fc_benchkit.Profiles
module J = Fc_obs.Jsonx

let line = String.make 78 '='
let banner name = Printf.printf "\n%s\n%s\n%s\n%!" line name line

(* Structured results, written as BENCH_results.json at the end of the
   run — the artifact the CI drift checker (bench/check.exe) gates on. *)
let results : (string * J.t) list ref = ref []
let record name j = results := (name, j) :: !results

(* Guest panics the paper configuration should never produce.  Expected
   deaths (attack payloads, governor-off ablation arms, the ungoverned
   chaos arm) are reported inline and do not land here; anything that
   does fails the whole run. *)
let unexpected_panics : string list ref = ref []

let unexpected_panic fmt =
  Printf.ksprintf (fun s -> unexpected_panics := s :: !unexpected_panics) fmt

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Experiments                                                         *)
(* ------------------------------------------------------------------ *)

let table1 profiles =
  banner "Table I: Similarity Matrix for Applications' Kernel Views";
  let t = Fc_benchkit.Table1.compute profiles in
  print_string (Fc_benchkit.Table1.render t);
  let na, nb, ns = Fc_benchkit.Table1.min_similarity t in
  Printf.printf
    "\nmost dissimilar: %s vs %s = %.1f%%  (paper: top vs firefox, 33.6%%)\n" na
    nb (100. *. ns);
  let xa, xb, xs = Fc_benchkit.Table1.max_similarity t in
  Printf.printf "most similar:    %s vs %s = %.1f%%  (paper: eog vs totem, 86.5%%)\n"
    xa xb (100. *. xs);
  let pair a b s =
    J.Obj [ ("a", J.String a); ("b", J.String b); ("similarity", J.Float s) ]
  in
  record "table1"
    (J.Obj
       [
         ("min_similarity", pair na nb ns); ("max_similarity", pair xa xb xs);
       ])

let table2 profiles =
  banner "Table II: Security Evaluation Against a Spectrum of User/Kernel Malware";
  let rows = Fc_benchkit.Table2.run_all profiles in
  print_string (Fc_benchkit.Table2.render rows);
  print_newline ();
  print_endline (Fc_benchkit.Table2.summary rows);
  let count f = List.length (List.filter f rows) in
  record "table2"
    (J.Obj
       [
         ("attacks", J.Int (List.length rows));
         ( "per_app_detected",
           J.Int
             (count (fun r -> r.Fc_benchkit.Table2.per_app.Fc_benchkit.Detect.detected))
         );
         ( "union_detected",
           J.Int
             (count (fun r -> r.Fc_benchkit.Table2.union.Fc_benchkit.Detect.detected))
         );
       ])

let fig3 profiles =
  banner "Fig. 3: Cross-View Kernel Code Recovery (lazy vs instant)";
  let r = Fc_benchkit.Fig3.run profiles in
  print_string (Fc_benchkit.Fig3.render r);
  (match r.Fc_benchkit.Fig3.panic with
  | Some m -> unexpected_panic "fig3: %s" m
  | None -> ());
  record "fig3"
    (J.Obj
       [
         ("completed", J.Bool r.Fc_benchkit.Fig3.completed);
         ( "panic",
           match r.Fc_benchkit.Fig3.panic with
           | Some m -> J.String m
           | None -> J.Null );
         ( "lazy_recovered",
           J.List
             (List.map (fun s -> J.String s) r.Fc_benchkit.Fig3.lazy_recovered)
         );
         ( "instant_recovered",
           J.List
             (List.map (fun s -> J.String s) r.Fc_benchkit.Fig3.instant_recovered)
         );
       ])

let fig4 profiles =
  banner "Fig. 4: Attack Pattern of Injectso's Payload";
  print_string (Fc_benchkit.Fig4.render (Fc_benchkit.Fig4.run profiles))

let fig5 profiles =
  banner "Fig. 5: Attack Pattern of KBeast Rootkit";
  print_string (Fc_benchkit.Fig5.render (Fc_benchkit.Fig5.run profiles))

let fig6 ~fast profiles =
  banner "Fig. 6: Normalized System Performance (UnixBench) + Frame Sharing";
  let view_counts = if fast then Some [ 1; 2; 5; 11 ] else None in
  let t = Fc_benchkit.Fig6.run ?view_counts profiles in
  print_string (Fc_benchkit.Fig6.render t);
  let open Fc_benchkit.Fig6 in
  let sh = t.sharing in
  let mode (m : mode_stats) =
    J.Obj
      [
        ("frames_allocated", J.Int m.frames_allocated);
        ("recoveries", J.Int m.recoveries);
        ("recovered_bytes", J.Int m.recovered_bytes);
        ("cow_breaks", J.Int m.cow_breaks);
      ]
  in
  record "fig6"
    (J.Obj
       [
         ( "perf",
           J.List
             (List.map
                (fun (p : Fc_benchkit.Unixbench.fig6_point) ->
                  J.Obj
                    [
                      ("views_loaded", J.Int p.Fc_benchkit.Unixbench.views_loaded);
                      ("overall", J.Float p.Fc_benchkit.Unixbench.overall);
                    ])
                t.perf) );
         ( "sharing",
           J.Obj
             [
               ("views", J.Int sh.views);
               ("view_pages", J.Int sh.view_pages);
               ("shared", mode sh.shared);
               ("unshared", mode sh.unshared);
               ("frames_saved", J.Int sh.frames_saved);
               ("reduction", J.Float sh.reduction);
               ("parity", J.Bool sh.parity);
             ] );
       ])

let fig7 profiles =
  banner "Fig. 7: I/O Performance for Apache Web Server (httperf)";
  let t = Fc_benchkit.Fig7.run profiles in
  print_string (Fc_benchkit.Fig7.render t);
  record "fig7"
    (J.Obj
       [
         ("base_capacity", J.Float t.Fc_benchkit.Fig7.io.Fc_benchkit.Httperf.base_capacity);
         ("fc_capacity", J.Float t.Fc_benchkit.Fig7.io.Fc_benchkit.Httperf.fc_capacity);
         ("view_pages", J.Int t.Fc_benchkit.Fig7.view_pages);
         ("view_frames", J.Int t.Fc_benchkit.Fig7.view_frames);
         ("reduction", J.Float t.Fc_benchkit.Fig7.reduction);
       ])

(* A deterministic single-guest run (the [top] workload under its own
   enforced view): its switch and recovery counters are the drift canary
   the CI gate pins. *)
let smoke profiles =
  banner "Smoke: enforced top run (drift canary)";
  let image = Profiles.image profiles in
  let app = Fc_apps.App.find_exn "top" in
  let os = Fc_machine.Os.create ~config:(Fc_apps.App.os_config app) image in
  (* arm before attach so view-build spans land in the timeline; emission
     charges no cycles, so the pinned counters below are unaffected *)
  Fc_obs.Trace.arm ~capacity:65536 (Fc_obs.Obs.trace (Fc_machine.Os.obs os));
  let hyp = Fc_hypervisor.Hypervisor.attach os in
  let fc = Fc_core.Facechange.enable hyp in
  ignore (Fc_machine.Os.spawn os ~name:"top" (app.Fc_apps.App.script 3));
  ignore (Fc_core.Facechange.load_view fc (Profiles.config_of profiles "top"));
  (try Fc_machine.Os.run ~max_rounds:50_000 os
   with Fc_machine.Os.Guest_panic m ->
     Printf.printf "GUEST PANIC: %s\n" m;
     unexpected_panic "smoke: %s" m);
  let stats = Fc_core.Stats.capture fc in
  Format.printf "%a@." Fc_core.Stats.pp stats;
  let timeline =
    Fc_obs.Export.timeline_to_json
      ~extra:[ ("stats", Fc_core.Stats.to_json stats) ]
      (Fc_obs.Obs.trace (Fc_machine.Os.obs os))
  in
  let oc = open_out "BENCH_timeline.json" in
  output_string oc (J.to_string ~pretty:true timeline);
  output_char oc '\n';
  close_out oc;
  Printf.printf "timeline artifact written to BENCH_timeline.json\n";
  record "smoke"
    (J.Obj
       (List.map
          (fun (k, v) -> (k, J.Int v))
          (Fc_core.Stats.fields stats)))

let ablations profiles =
  banner "Ablations: the design choices of Section III";
  let sections = Fc_benchkit.Ablation.run_all profiles in
  print_string (Fc_benchkit.Ablation.render sections);
  (* an ablation arm marked "(paper)" runs the intended configuration:
     a guest death there is a regression, not a demonstration *)
  List.iter
    (fun (title, rows) ->
      List.iter
        (fun (r : Fc_benchkit.Ablation.row) ->
          if contains r.Fc_benchkit.Ablation.label "(paper)" then
            List.iter
              (fun (_, v) ->
                if contains v "GUEST PANIC" then
                  unexpected_panic "ablation %s / %s: %s" title
                    r.Fc_benchkit.Ablation.label v)
              r.Fc_benchkit.Ablation.metrics)
        rows)
    sections

let chaos ~fast profiles =
  banner "Chaos: seeded fault matrix vs the recovery-storm governor";
  let plans = if fast then 30 else 100 in
  let governed = Fc_benchkit.Chaos.run ~plans profiles in
  print_string (Fc_benchkit.Chaos.render governed);
  print_newline ();
  (* The ungoverned arm reproduces the paper's fragility, so it is where
     panics live: run it in time-travel mode and keep the first few
     last-boundary snapshots as replayable [.fcsnap] artifacts —
     [facechange replay FILE] re-executes just the failing window. *)
  let repro : (int * string * string) list ref = ref [] in
  let on_panic ~seed ~panic snap =
    if List.length !repro < 3 then begin
      let file = Printf.sprintf "BENCH_repro_seed%d.fcsnap" seed in
      Fc_snapshot.Snapshot.save snap file;
      repro := (seed, panic, file) :: !repro
    end
  in
  let ungoverned =
    Fc_benchkit.Chaos.run ~plans ~governed:false ~snapshot_every:100 ~on_panic
      profiles
  in
  print_string (Fc_benchkit.Chaos.render ungoverned);
  List.iter
    (fun (seed, panic, file) ->
      Printf.printf "repro snapshot for seed %d (%s) written to %s\n" seed
        panic file)
    (List.rev !repro);
  let open Fc_benchkit.Chaos in
  if governed.s_panics > 0 then
    unexpected_panic "chaos (governed): %d guest panic(s)" governed.s_panics;
  if governed.s_wedged > 0 then
    unexpected_panic "chaos (governed): %d wedged run(s)" governed.s_wedged;
  let json =
    J.Obj
      [
        ("schema_version", J.Int Fc_obs.Export.schema_version);
        ("seed", J.Int 1);
        ("plans", J.Int plans);
        ("governed", summary_to_json governed);
        ("ungoverned", summary_to_json ungoverned);
        ( "repro_snapshots",
          J.List
            (List.rev_map
               (fun (seed, panic, file) ->
                 J.Obj
                   [
                     ("seed", J.Int seed);
                     ("panic", J.String panic);
                     ("file", J.String file);
                   ])
               !repro) );
      ]
  in
  let oc = open_out "BENCH_chaos.json" in
  output_string oc (J.to_string ~pretty:true json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "chaos artifact written to BENCH_chaos.json\n";
  record "chaos"
    (J.Obj
       [
         ("plans", J.Int plans);
         ("governed", summary_to_json governed);
         ("ungoverned", summary_to_json ungoverned);
       ])

let perf ~fast profiles =
  banner "Perf: execution fast path throughput (TLBs + superblocks, wall clock)";
  (* seconds are min-of-reps: even --fast takes two samples so one
     scheduler hiccup cannot pollute the recorded wall clock *)
  let reps = if fast then 2 else 3 in
  let t = Fc_benchkit.Perf.run ~reps profiles in
  print_string (Fc_benchkit.Perf.render t);
  let json =
    J.Obj
      [
        ("schema_version", J.Int Fc_obs.Export.schema_version);
        ("fast", J.Bool fast);
        ("perf", Fc_benchkit.Perf.to_json t);
      ]
  in
  let oc = open_out "BENCH_perf.json" in
  output_string oc (J.to_string ~pretty:true json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "perf artifact written to BENCH_perf.json\n";
  record "perf"
    (J.Obj
       [
         ("unixbench_speedup", J.Float t.Fc_benchkit.Perf.unixbench_speedup);
         ("httperf_speedup", J.Float t.Fc_benchkit.Perf.httperf_speedup);
         ( "unixbench_speedup_sblocks",
           J.Float t.Fc_benchkit.Perf.unixbench_speedup_sblocks );
         ( "httperf_speedup_sblocks",
           J.Float t.Fc_benchkit.Perf.httperf_speedup_sblocks );
       ])

let fleet ~fast profiles =
  banner "Fleet: guest fleets sharded across OCaml 5 domains (wall clock)";
  let t = Fc_benchkit.Fleet.run ~fast profiles in
  print_string (Fc_benchkit.Fleet.render t);
  (* the acceptance bar: one fleet, any domain count, same merged
     fingerprint — sharding must be behavior-invisible *)
  let fps =
    List.sort_uniq String.compare
      (List.map
         (fun (c : Fc_benchkit.Fleet.cell) ->
           c.Fc_benchkit.Fleet.c_report.Fc_host.Fleet.r_fingerprint)
         t.Fc_benchkit.Fleet.f_pinned)
  in
  if List.length fps > 1 then
    unexpected_panic "fleet: merged fingerprint diverged across domain counts";
  let json =
    J.Obj
      [
        ("schema_version", J.Int Fc_obs.Export.schema_version);
        ("fast", J.Bool fast);
        ("fleet", Fc_benchkit.Fleet.to_json t);
      ]
  in
  let oc = open_out "BENCH_fleet.json" in
  output_string oc (J.to_string ~pretty:true json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "fleet artifact written to BENCH_fleet.json\n";
  record "fleet"
    (J.Obj
       [
         ("pinned_guests", J.Int t.Fc_benchkit.Fleet.f_pinned_guests);
         ("fingerprints_identical", J.Bool (List.length fps <= 1));
       ])

let migrate ~fast profiles =
  banner "Migrate: live migration (pre-copy dirty pages, wire-format handoff)";
  let t = Fc_benchkit.Migration.run ~fast profiles in
  print_string (Fc_benchkit.Migration.render t);
  if not t.Fc_benchkit.Migration.g_parity_ok then
    unexpected_panic "migrate: migrated digest diverged from the control run";
  if t.Fc_benchkit.Migration.g_panics > 0 then
    unexpected_panic "migrate: %d guest panic(s) under governed migration"
      t.Fc_benchkit.Migration.g_panics;
  let json =
    J.Obj
      [
        ("schema_version", J.Int Fc_obs.Export.schema_version);
        ("fast", J.Bool fast);
        ("migrate", Fc_benchkit.Migration.to_json t);
      ]
  in
  let oc = open_out "BENCH_migrate.json" in
  output_string oc (J.to_string ~pretty:true json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "migrate artifact written to BENCH_migrate.json\n";
  record "migrate"
    (J.Obj
       [
         ("parity_ok", J.Bool t.Fc_benchkit.Migration.g_parity_ok);
         ("panics", J.Int t.Fc_benchkit.Migration.g_panics);
         ("rows", J.Int (List.length t.Fc_benchkit.Migration.g_rows));
       ])

(* ------------------------------------------------------------------ *)
(* Telemetry: armed fleet + engine matrix + flamegraph profile         *)
(* ------------------------------------------------------------------ *)

let telemetry profiles =
  banner "Telemetry: time-series sampling, profiler and exposition";
  let t = Fc_benchkit.Telemetry.run profiles in
  print_string (Fc_benchkit.Telemetry.render t);
  (* the acceptance bars: arming the probe must not move the fleet
     fingerprint, and the telemetry itself must fingerprint identically
     across domain counts and engine arms *)
  let cell_fp (c : Fc_benchkit.Fleet.cell) =
    c.Fc_benchkit.Fleet.c_report.Fc_host.Fleet.r_fingerprint
  in
  let armed_fps =
    List.sort_uniq String.compare
      (List.map cell_fp t.Fc_benchkit.Telemetry.t_armed)
  in
  if armed_fps <> [ cell_fp t.Fc_benchkit.Telemetry.t_disarmed ] then
    unexpected_panic
      "telemetry: armed fleet fingerprint differs from the disarmed control";
  let arm_fps =
    List.sort_uniq String.compare
      (List.map
         (fun (a : Fc_benchkit.Telemetry.engine_arm) ->
           a.Fc_benchkit.Telemetry.ea_series_fp
           ^ "/" ^ a.Fc_benchkit.Telemetry.ea_sampler_fp)
         t.Fc_benchkit.Telemetry.t_matrix)
  in
  if List.length arm_fps > 1 then
    unexpected_panic
      "telemetry: series/sampler fingerprints diverged across engine arms";
  let json =
    J.Obj
      [
        ("schema_version", J.Int Fc_obs.Export.schema_version);
        ("telemetry", Fc_benchkit.Telemetry.to_json t);
      ]
  in
  let oc = open_out "BENCH_telemetry.json" in
  output_string oc (J.to_string ~pretty:true json);
  output_char oc '\n';
  close_out oc;
  let oc = open_out "BENCH_profile.folded" in
  output_string oc (Fc_benchkit.Telemetry.folded t);
  close_out oc;
  Printf.printf
    "telemetry artifacts written to BENCH_telemetry.json and \
     BENCH_profile.folded\n";
  record "telemetry"
    (J.Obj
       [
         ("armed_matches_disarmed", J.Bool (List.length armed_fps = 1));
         ("engine_arms_identical", J.Bool (List.length arm_fps <= 1));
         ( "profile_samples",
           J.Int
             t.Fc_benchkit.Telemetry.t_profile
               .Fc_benchkit.Telemetry.pr_samples );
       ])

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the core primitives                    *)
(* ------------------------------------------------------------------ *)

let micro profiles =
  banner "Micro-benchmarks (Bechamel): core primitive costs (wall clock)";
  let open Bechamel in
  let image = Profiles.image profiles in
  let cfg_top = Profiles.config_of profiles "top" in
  let cfg_firefox = Profiles.config_of profiles "firefox" in
  (* a reusable guest for view build / switch benches *)
  let os = Fc_machine.Os.create image in
  let hyp = Fc_hypervisor.Hypervisor.attach os in
  let fc = Fc_core.Facechange.enable hyp in
  let idx_top = Fc_core.Facechange.load_view fc cfg_top in
  let idx_ff = Fc_core.Facechange.load_view fc cfg_firefox in
  let flip = ref true in
  let read_orig a = Fc_hypervisor.Hypervisor.read_original_code hyp a in
  let sys_poll = Fc_kernel.Image.addr_of_exn image "sys_poll" in
  let tests =
    [
      Test.make ~name:"similarity index (Eq. 1)"
        (Staged.stage (fun () ->
             ignore (Fc_profiler.View_config.similarity cfg_top cfg_firefox)));
      Test.make ~name:"range-list intersection"
        (Staged.stage (fun () ->
             ignore
               (Fc_ranges.Range_list.inter cfg_top.Fc_profiler.View_config.ranges
                  cfg_firefox.Fc_profiler.View_config.ranges)));
      Test.make ~name:"kernel view rebind (selector)"
        (Staged.stage (fun () ->
             flip := not !flip;
             Fc_core.Facechange.bind fc ~comm:"micro"
               ~index:(if !flip then idx_top else idx_ff)));
      Test.make ~name:"prologue boundary scan (recovery)"
        (Staged.stage (fun () ->
             ignore
               (Fc_isa.Scan.function_bounds ~read:read_orig
                  ~lo:(Fc_kernel.Image.text_base image)
                  ~hi:(Fc_kernel.Image.text_end image) (sys_poll + 40))));
      Test.make ~name:"view build+destroy (top)"
        (Staged.stage (fun () ->
             let v = Fc_core.View.build ~hyp ~index:99 cfg_top in
             Fc_core.View.destroy v));
    ]
  in
  let benchmark test =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
    let raw = Benchmark.all cfg [ instance ] test in
    Analyze.all ols instance raw
  in
  List.iter
    (fun test ->
      let results = benchmark (Test.make_grouped ~name:"micro" [ test ]) in
      Hashtbl.iter
        (fun name ols ->
          let est =
            match Analyze.OLS.estimates ols with
            | Some [ t ] -> Printf.sprintf "%12.1f ns/op" t
            | Some _ | None -> "(no estimate)"
          in
          Printf.printf "  %-42s %s\n%!" name est)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let all_experiments =
  [ "smoke"; "table1"; "table2"; "fig3"; "fig4"; "fig5"; "fig6"; "fig7";
    "ablations"; "chaos"; "perf"; "fleet"; "migrate"; "telemetry"; "micro" ]

let write_results path ~fast chosen =
  let json =
    J.Obj
      [
        ("schema_version", J.Int Fc_obs.Export.schema_version);
        ("fast", J.Bool fast);
        ("experiments", J.List (List.map (fun e -> J.String e) chosen));
        ("results", J.Obj (List.rev !results));
      ]
  in
  let oc = open_out path in
  output_string oc (J.to_string ~pretty:true json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "results written to %s\n" path

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let fast = List.mem "--fast" args in
  let rec split_out acc = function
    | "--out" :: path :: rest -> (Some path, List.rev_append acc rest)
    | a :: rest -> split_out (a :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let out, args = split_out [] args in
  let out = Option.value out ~default:"BENCH_results.json" in
  let chosen = List.filter (fun a -> a <> "--fast") args in
  let chosen = if chosen = [] then all_experiments else chosen in
  List.iter
    (fun e ->
      if not (List.mem e all_experiments) then begin
        Printf.eprintf "unknown experiment %s (available: %s, --fast, --out FILE)\n"
          e
          (String.concat " " all_experiments);
        exit 2
      end)
    chosen;
  Printf.printf "FACE-CHANGE reproduction benchmark harness\n";
  Printf.printf "building the synthetic kernel image...\n%!";
  let image = Fc_kernel.Image.build_exn () in
  Printf.printf "profiling the 12 applications (Table I workloads)...\n%!";
  let profiles = Profiles.compute image in
  List.iter
    (fun e ->
      match e with
      | "smoke" -> smoke profiles
      | "table1" -> table1 profiles
      | "table2" -> table2 profiles
      | "fig3" -> fig3 profiles
      | "fig4" -> fig4 profiles
      | "fig5" -> fig5 profiles
      | "fig6" -> fig6 ~fast profiles
      | "fig7" -> fig7 profiles
      | "ablations" -> ablations profiles
      | "chaos" -> chaos ~fast profiles
      | "perf" -> perf ~fast profiles
      | "fleet" -> fleet ~fast profiles
      | "migrate" -> migrate ~fast profiles
      | "telemetry" -> telemetry profiles
      | "micro" -> micro profiles
      | _ -> assert false)
    chosen;
  write_results out ~fast chosen;
  match List.rev !unexpected_panics with
  | [] -> Printf.printf "\ndone.\n"
  | ps ->
      List.iter (Printf.eprintf "unexpected guest panic: %s\n") ps;
      Printf.eprintf "\nFAILED: %d unexpected guest panic(s)\n" (List.length ps);
      exit 1
