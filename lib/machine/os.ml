module Phys = Fc_mem.Phys_mem
module Pt = Fc_mem.Page_table
module Ept = Fc_mem.Ept
module Tlb = Fc_mem.Tlb
module Layout = Fc_kernel.Layout
module Image = Fc_kernel.Image
module Syscalls = Fc_kernel.Syscalls
module Irq_paths = Fc_kernel.Irq_paths
module Asm = Fc_isa.Asm
module Insn = Fc_isa.Insn
module Scan = Fc_isa.Scan

type clocksource = Irq_paths.clocksource

type config = {
  clocksource : clocksource;
  timer_period : int;
  quantum : int;
  wake_delay : int;
  background_irqs : (Irq_paths.source * int) list;
}

let default_config =
  {
    clocksource = Irq_paths.Acpi_pm;
    timer_period = 60_000;
    quantum = 4;
    wake_delay = 1;
    background_irqs = [];
  }

let profiling_config =
  {
    default_config with
    clocksource = Irq_paths.Acpi_pm;
    background_irqs =
      [
        (Irq_paths.Net_rx_tcp, 55_000);
        (Irq_paths.Net_rx_udp, 130_000);
        (Irq_paths.Keyboard_console, 85_000);
        (Irq_paths.Keyboard_evdev, 105_000);
        (Irq_paths.Disk, 70_000);
      ];
  }

let runtime_config = { profiling_config with clocksource = Irq_paths.Kvmclock }

exception Guest_panic of string

type module_info = {
  mod_name : string;
  unit_image : Asm.unit_image;
  mutable hidden : bool;
}

type vm_exit = Exit_breakpoint of int | Exit_invalid_opcode
type exit_action = Resume | Panic of string

type irq_timer = {
  source : Irq_paths.source;
  period : int;
  mutable next_at : int;
}

type decode_line = {
  mutable line_version : int;
  line : Cpu.decode_result option array; (* per byte offset in the frame *)
}

(* One virtual CPU: its own EPT (so FACE-CHANGE can switch views
   per-vCPU, the paper's SV-C extension), its own idle task, its own
   notion of the current process and interrupt nesting, and its own
   software TLBs (translations are per-vCPU because views are). *)
type vcpu = {
  vid : int;
  vept : Ept.t;
  vidle : Process.t;
  mutable vcurrent : Process.t;
  mutable vin_interrupt : bool;
  mutable vslice : int; (* open run-slice span id, Span.none when closed *)
  mutable vslice_start : int; (* cycle at which the current slice began *)
  vitlb : decode_line Tlb.t;
      (* fetch-path TLB: tagged with the EPT epoch, validated against the
         frame version, payload = the frame's decode line *)
  vdtlb : unit Tlb.t;
      (* data-path TLB: tagged with the OS data-mapping generation; guest
         RAM mappings never change once installed, so no version check *)
  vsbc : Cpu.sblock Tlb.t;
      (* superblock cache, keyed like the iTLB but tagged with the block's
         start pc; validity = (EPT epoch, frame version, trap generation) *)
  mutable vsb_last : Cpu.sblock option;
      (* the block this vCPU executed last: the chaining anchor — when the
         next pc is its static exit, follow sb_next instead of probing *)
}

(* Fault-injection hooks (see lib/faults).  Same zero-cost-when-disabled
   contract as the obs armed guard: the option match is the only cost on
   the hot paths when no injector is armed. *)
type fault_hooks = {
  fh_trap_miss : int -> bool;
      (* consulted when execution reaches a set trap; [true] swallows the
         breakpoint (models a missed #BP on __switch_to) *)
  fh_pre_action : unit -> unit;
      (* fires before each scripted action of the running process; may
         inject synthetic exits via [inject_invalid_opcode] *)
}

(* Telemetry ticker (see lib/obs Timeseries): fires every [th_period]
   retired guest instructions, checked at vCPU turn boundaries in [run].
   Instruction counts at turn boundaries are engine-invariant (the
   differential harness pins them across the {sblocks}×{tlb} matrix), so
   interval boundaries are reproducible and gateable.  Same
   zero-cost-when-disarmed contract as [fault_hooks]. *)
type tick_hook = {
  th_period : int;
  mutable th_next : int; (* next instruction mark; always a period multiple *)
  th_fire : unit -> unit;
}

type t = {
  image : Image.t;
  config : config;
  obs : Fc_obs.Obs.t;
  phys : Phys.t;
  vcpus : vcpu array;
  mutable active : int; (* the vCPU currently executing (sequential sim) *)
  ram : (int, int) Hashtbl.t;
      (* gpa_page -> hpa frame: the hypervisor's ground-truth map of guest
         RAM.  The EPT starts out agreeing with it; kernel views later
         redirect code-fetch translations while guest data accesses (and
         guest writes, e.g. module loading) always reach real RAM. *)
  master_pt : Pt.t;
  mutable page_tables : Pt.t list;
  traps : (int, unit) Hashtbl.t;
  mutable trap_arr : int array; (* sorted mirror of [traps] for the hot path *)
  mutable trap_lo : int; (* min trap address, [max_int] when none *)
  mutable trap_hi : int; (* max trap address, [min_int] when none *)
  mutable trace : (int -> int -> unit) option;
  mutable events : (Cpu.event -> unit) option;
  mutable branch_policy : (int -> bool) option;
  cycles : int ref;
  instrs : int ref; (* retired guest instructions *)
  tlb_on : bool;
  sblocks_on : bool;
  tagged_on : bool;
      (* view-tagged translation caching: when set, the facechange layer
         switches views by retagging ([Ept.set_view] + quiet
         [Ept.install_dir]) instead of bumping generations, so cached
         translations survive re-entry into an already-seen view *)
  mutable trap_gen : int;
      (* bumped whenever the trap set changes: superblocks embed the
         generation at build time, so a new trap address landing inside a
         cached block invalidates it without scanning the cache *)
  divergent : (int, unit) Hashtbl.t;
      (* gpa pages some kernel view has remapped to a private frame —
         monotone (a destroyed view does not un-diverge its pages).
         Blocks on pages outside this set are view-invariant (x86
         global-page style) and skip tag validation entirely. *)
  bindings : (int, (int, int) Hashtbl.t) Hashtbl.t;
      (* divergent gpa page -> (view id -> private frame), kept current
         by the view layer's remaps.  When several views bind one page to
         the same shared frame, a block built there is pre-stamped with
         the sibling views' tags, so even the first switch into a sibling
         revalidates by compare — no memo-cold restamp. *)
  mutable global_gen : int;
      (* stamp for view-invariant superblocks; a bare full flush bumps
         it so "every cached translation is suspect" stays true even for
         blocks that skip the tag check *)
  mutable data_epoch : int; (* bumped when guest RAM mappings grow *)
  mutable round_no : int;
  mutable context_switches : int;
  mutable procs_rev : Process.t list; (* excludes idles; reverse pid order *)
  mutable next_pid : int;
  mutable handler : handler;
  mutable modules : module_info list; (* load order *)
  mutable next_module_base : int;
  mutable timers : irq_timer list;
  decode_cache : (int, decode_line) Hashtbl.t; (* host frame -> line *)
  sb_store : (int, (int, Cpu.sblock) Hashtbl.t) Hashtbl.t;
      (* host frame -> (page offset -> superblock): the retention tier
         behind the per-vCPU block cache.  Blocks here outlive view
         switches — a switch back to a frame resurrects its blocks
         without re-decoding — and die with the frame (same release hook
         as [decode_cache]) or on a version/trap-generation mismatch. *)
  mutable at_round : (int * (t -> unit)) list;
  mutable rewriter : (Syscalls.t -> (string * string list) option) option;
  itimers : (int, unit) Hashtbl.t;
  symbols : (string, int) Hashtbl.t; (* OS ground truth, incl. hidden *)
  mutable sleep_override : int option; (* wake delay for the next block *)
  mutable faults : fault_hooks option;
  mutable tick : tick_hook option;
  run_cycles_f : Fc_obs.Metrics.family; (* os.run_cycles{comm} *)
  run_slices_f : Fc_obs.Metrics.family; (* os.run_slices{comm} *)
  tlb_i_hits : Fc_obs.Metrics.counter;
  tlb_i_misses : Fc_obs.Metrics.counter;
  tlb_d_hits : Fc_obs.Metrics.counter;
  tlb_d_misses : Fc_obs.Metrics.counter;
  sb_built : Fc_obs.Metrics.counter;
  sb_hits : Fc_obs.Metrics.counter;
  sb_invals : Fc_obs.Metrics.counter;
  sb_chains : Fc_obs.Metrics.counter;
  sb_restamps : Fc_obs.Metrics.counter;
      (* in-place sb_tag restamps in [sblock_valid]: the per-switch
         revalidation cost tags exist to eliminate (near-zero when
         [tagged_on]) *)
  tlb_flushes_f : Fc_obs.Metrics.family; (* tlb.flushes{cause} *)
}

and handler = t -> Cpu.regs -> vm_exit -> exit_action

(* Why was a cached fetch translation invalidated?  Surfaced as the
   [tlb.flushes{cause}] counter family so the bench can prove that
   view-switch-caused flushes drop to ~0 under tagged caching.
   [Flush_patch] is reserved for live kernel patching (ROADMAP item 1),
   whose patched-view generations will churn through the same API. *)
type flush_cause =
  | Flush_view_switch
  | Flush_cow
  | Flush_patch
  | Flush_growth
  | Flush_explicit

let flush_cause_label = function
  | Flush_view_switch -> "view_switch"
  | Flush_cow -> "cow"
  | Flush_patch -> "patch"
  | Flush_growth -> "growth"
  | Flush_explicit -> "explicit"

let note_flushes t ~cause n =
  if n > 0 then
    Fc_obs.Metrics.add
      (Fc_obs.Metrics.family_counter t.tlb_flushes_f (flush_cause_label cause))
      n

let image t = t.image
let config t = t.config
let obs t = t.obs
let phys t = t.phys
let tagged_on t = t.tagged_on
let active_vcpu t = t.vcpus.(t.active)
let active_vcpu_id t = t.active
let vcpu_count t = Array.length t.vcpus
let ept t = (active_vcpu t).vept

let ept_of t ~vid =
  if vid < 0 || vid >= Array.length t.vcpus then invalid_arg "Os.ept_of: bad vcpu";
  t.vcpus.(vid).vept

let processes t = List.rev t.procs_rev
let find_process t ~pid = List.find_opt (fun (p : Process.t) -> p.pid = pid) t.procs_rev
let current t = (active_vcpu t).vcurrent
let in_interrupt t = (active_vcpu t).vin_interrupt
let cycles t = !(t.cycles)
let add_cycles t n = t.cycles := !(t.cycles) + n
let instructions t = !(t.instrs)
let decode_cache_frames t = Hashtbl.length t.decode_cache
let round t = t.round_no
let context_switches t = t.context_switches
let set_exit_handler t h = t.handler <- h

(* The trap set is consulted before every emulated instruction, so it is
   mirrored into a sorted array with min/max guards: with no traps set
   the check is a single integer compare, with the usual handful it is a
   short monotone probe. *)
let rebuild_traps t =
  t.trap_gen <- t.trap_gen + 1;
  let arr =
    Hashtbl.fold (fun a () acc -> a :: acc) t.traps []
    |> List.sort Int.compare |> Array.of_list
  in
  t.trap_arr <- arr;
  if Array.length arr = 0 then begin
    t.trap_lo <- max_int;
    t.trap_hi <- min_int
  end
  else begin
    t.trap_lo <- arr.(0);
    t.trap_hi <- arr.(Array.length arr - 1)
  end

let set_trap t a =
  Hashtbl.replace t.traps a ();
  rebuild_traps t

let clear_trap t a =
  Hashtbl.remove t.traps a;
  rebuild_traps t

let trap_addresses t = Hashtbl.fold (fun a () acc -> a :: acc) t.traps []

let is_trap_addr t a =
  a >= t.trap_lo && a <= t.trap_hi
  &&
  let arr = t.trap_arr in
  let n = Array.length arr in
  let rec probe i =
    i < n
    &&
    let x = Array.unsafe_get arr i in
    x = a || (x < a && probe (i + 1))
  in
  probe 0
let set_trace t f = t.trace <- f
let set_event_trace t f = t.events <- f
let set_branch_policy t f = t.branch_policy <- f
let set_syscall_rewriter t f = t.rewriter <- Some f
let clear_syscall_rewriter t = t.rewriter <- None
let pending_itimer t ~pid = Hashtbl.mem t.itimers pid
let arm_itimer t ~pid = Hashtbl.replace t.itimers pid ()
let set_fault_hooks t h = t.faults <- h

let current_of t ~vid =
  if vid < 0 || vid >= Array.length t.vcpus then
    invalid_arg "Os.current_of: bad vcpu";
  t.vcpus.(vid).vcurrent

let arm_tick t ~period fire =
  if period < 1 then invalid_arg "Os.arm_tick: period must be >= 1";
  (* marks stay period-aligned from instruction 0 regardless of when the
     ticker is armed, so interval boundaries depend only on the period *)
  let next = ((!(t.instrs) / period) + 1) * period in
  t.tick <- Some { th_period = period; th_next = next; th_fire = fire }

let disarm_tick t = t.tick <- None

(* ---------------- guest memory plumbing ---------------- *)

let page_mask = Layout.page_size - 1

(* Data path: guest-virtual -> guest-physical -> real RAM frame.  Used for
   stacks, VMI and guest writes; kernel views never affect it. *)
let ram_translate t gva =
  match Pt.translate t.master_pt gva with
  | None -> None
  | Some gpa -> (
      match Hashtbl.find_opt t.ram (gpa / Layout.page_size) with
      | None -> None
      | Some frame -> Some ((frame * Layout.page_size) + (gpa mod Layout.page_size)))

let ram_frame t ~gpa_page = Hashtbl.find_opt t.ram gpa_page

(* Per-host-frame decode cache backing store.  Keyed by host physical
   frame, it is naturally coherent across kernel view switches (different
   views fetch from different frames); writes invalidate through the
   frame version.  The iTLB carries a pointer to the current page's line
   so a fetch hit never touches this table. *)
let decode_line_for t frame ~version =
  match Hashtbl.find_opt t.decode_cache frame with
  | Some ln when ln.line_version = version -> ln
  | Some ln ->
      Array.fill ln.line 0 (Array.length ln.line) None;
      ln.line_version <- version;
      ln
  | None ->
      let ln = { line_version = version; line = Array.make Layout.page_size None } in
      Hashtbl.replace t.decode_cache frame ln;
      ln

(* dTLB lookup for the page holding [gva-page].  A valid entry needs only
   the tag and the data-mapping generation: guest RAM translations are
   add-only (map_fresh_range), so nothing else can invalidate them.
   Returns the TLB's null entry ([tag] < 0) when the page is unmapped —
   unmapped pages are never cached, so a later mapping is seen at once. *)
let dtlb_entry t page =
  let v = active_vcpu t in
  let e = Tlb.slot v.vdtlb page in
  if e.Tlb.tag = page && e.Tlb.stamp = t.data_epoch then begin
    Fc_obs.Metrics.incr t.tlb_d_hits;
    e
  end
  else begin
    Fc_obs.Metrics.incr t.tlb_d_misses;
    match Pt.translate_page t.master_pt page with
    | None -> Tlb.null v.vdtlb
    | Some gpa_page -> (
        match Hashtbl.find_opt t.ram gpa_page with
        | None -> Tlb.null v.vdtlb
        | Some frame ->
            Tlb.fill e ~tag:page ~stamp:t.data_epoch ~frame
              ~version:(Phys.version t.phys frame)
              ~bytes:(Phys.frame_bytes t.phys frame) ~payload:();
            e)
  end

(* iTLB lookup: additionally validated against the EPT view tag (the
   packed (era, view, generation): a generation bump on the cached view
   flushes its entries in O(1), while a tagged view switch merely changes
   the active tag — entries cached under the re-entered view match again)
   and the backing frame's version (so a COW break or a lazy recovery
   write to the very frame we cached is caught with no eager flush; the
   version bump also proves [bytes] still belongs to this frame). *)
let itlb_entry t page =
  let v = active_vcpu t in
  let e = Tlb.slot v.vitlb page in
  if
    e.Tlb.tag = page
    && e.Tlb.stamp = Ept.tag v.vept
    && e.Tlb.version = Phys.version t.phys e.Tlb.frame
  then begin
    Fc_obs.Metrics.incr t.tlb_i_hits;
    e
  end
  else begin
    Fc_obs.Metrics.incr t.tlb_i_misses;
    match Pt.translate_page t.master_pt page with
    | None -> Tlb.null v.vitlb
    | Some gpa_page -> (
        match Ept.translate_page v.vept gpa_page with
        | None -> Tlb.null v.vitlb
        | Some frame ->
            let version = Phys.version t.phys frame in
            Tlb.fill e ~tag:page ~stamp:(Ept.tag v.vept) ~frame ~version
              ~bytes:(Phys.frame_bytes t.phys frame)
              ~payload:(decode_line_for t frame ~version);
            e)
  end

(* Invalidate cached fetch translations on every vCPU.  Called by the
   view layer when an {e installed} (reference-shared) leaf table is
   remapped behind the directories — a COW break or an on-demand private
   page — which no [Ept.set_dir] can observe.  When the caller knows
   which view owns the mutated table and tagged caching is on, only that
   view's generation is bumped, so translations other views hold (which
   still map the old, untouched frame) survive; otherwise everything is
   dropped. *)
let flush_fetch_tlbs ?view ?(cause = Flush_explicit) t =
  (match view with
  | Some view when t.tagged_on ->
      Array.iter (fun v -> Ept.bump_view v.vept ~view) t.vcpus
  | None when t.tagged_on ->
      (* no owner known: every view's cached entries are suspect —
         including view-invariant (global) blocks, hence the global
         generation bump *)
      t.global_gen <- t.global_gen + 1;
      Array.iter (fun v -> Ept.flush_all v.vept) t.vcpus
  | _ ->
      (* tags off: everything lives in view 0, one bump is the full
         flush — and counts exactly what the pre-tag global epoch did *)
      Array.iter (fun v -> Ept.bump v.vept) t.vcpus);
  note_flushes t ~cause (Array.length t.vcpus)

(* A destroyed view's translations can never be revalidated (view ids are
   not reused), but retiring its tag keeps the invalidation honest without
   the full flush the pre-tag scheme needed: other views' cached entries
   are untouched.  No-op when tags are off — the legacy path's switch-away
   bumps already flushed everything. *)
let retire_view_translations ?(cause = Flush_explicit) t ~view =
  if t.tagged_on then begin
    Array.iter (fun v -> Ept.retire_view v.vept ~view) t.vcpus;
    note_flushes t ~cause (Array.length t.vcpus)
  end

(* A kernel view remapped [gpa_page] to a private frame: from here on the
   page's translation is view-dependent, so blocks built from it can
   never be stamped view-invariant.  Monotone by design — un-diverging on
   view destruction would need proof that no other view still diverges
   the page, and staying conservative only costs those blocks a tag
   compare.  Existing view-invariant blocks on the displaced frame are
   not handled here: the caller's version touch on that frame is what
   kills them. *)
let note_divergent_page t ~gpa_page = Hashtbl.replace t.divergent gpa_page ()
let page_divergent t ~gpa_page = Hashtbl.mem t.divergent gpa_page

(* Record the current (view, page) -> frame binding.  Only accuracy at
   read time matters for soundness — see [build_sblock]'s pre-stamping:
   a stale entry could at worst mint a tag for a (view, generation) pair
   that is either never active again (retired view, bumped generation)
   or whose rebinding already version-touched the displaced frame and
   killed the block.  Entries therefore need no cleanup on view
   destruction. *)
let note_view_binding t ~gpa_page ~view ~frame =
  let per =
    match Hashtbl.find_opt t.bindings gpa_page with
    | Some per -> per
    | None ->
        let per = Hashtbl.create 4 in
        Hashtbl.add t.bindings gpa_page per;
        per
  in
  Hashtbl.replace per view frame

let read_guest_byte_slow t gva =
  match ram_translate t gva with
  | None -> None
  | Some hpa -> Some (Phys.read_byte t.phys hpa)

let read_guest_byte t gva =
  if not t.tlb_on then read_guest_byte_slow t gva
  else
    let e = dtlb_entry t (gva / Layout.page_size) in
    if e.Tlb.tag >= 0 then Some (Bytes.get_uint8 e.Tlb.bytes (gva land page_mask))
    else None

(* Fetch path: goes through the EPT, so an installed kernel view redirects
   it to the view's frames. *)
let fetch_code_slow t gva =
  match Pt.translate t.master_pt gva with
  | None -> None
  | Some gpa -> (
      match Ept.translate (active_vcpu t).vept gpa with
      | None -> None
      | Some hpa -> Some (Phys.read_byte t.phys hpa))

let fetch_code t gva =
  if not t.tlb_on then fetch_code_slow t gva
  else
    let e = itlb_entry t (gva / Layout.page_size) in
    if e.Tlb.tag >= 0 then Some (Bytes.get_uint8 e.Tlb.bytes (gva land page_mask))
    else None

let read_guest_u32_slow t gva =
  let b i =
    match read_guest_byte t (gva + i) with Some v -> v | None -> raise Exit
  in
  match b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) with
  | v -> Some v
  | exception Exit -> None

let read_guest_u32 t gva =
  if not t.tlb_on then read_guest_u32_slow t gva
  else
    let off = gva land page_mask in
    if off > Layout.page_size - 4 then
      (* page-straddling access: compose byte-wise (each byte TLB'd) *)
      read_guest_u32_slow t gva
    else
      let e = dtlb_entry t (gva / Layout.page_size) in
      if e.Tlb.tag >= 0 then
        let b = e.Tlb.bytes in
        Some (Bytes.get_uint16_le b off lor (Bytes.get_uint16_le b (off + 2) lsl 16))
      else None

let write_guest_byte_slow t gva v =
  match ram_translate t gva with
  | None -> invalid_arg (Printf.sprintf "Os.write_guest_byte: unmapped 0x%x" gva)
  | Some hpa -> Phys.write_byte t.phys hpa v

let write_guest_byte t gva v =
  if not t.tlb_on then write_guest_byte_slow t gva v
  else
    let e = dtlb_entry t (gva / Layout.page_size) in
    if e.Tlb.tag >= 0 then begin
      Bytes.set_uint8 e.Tlb.bytes (gva land page_mask) (v land 0xff);
      Phys.touch t.phys e.Tlb.frame
    end
    else invalid_arg (Printf.sprintf "Os.write_guest_byte: unmapped 0x%x" gva)

let write_guest_u32_slow t gva v =
  for i = 0 to 3 do
    write_guest_byte t (gva + i) ((v lsr (8 * i)) land 0xff)
  done

let write_guest_u32 t gva v =
  if not t.tlb_on then write_guest_u32_slow t gva v
  else
    let off = gva land page_mask in
    if off > Layout.page_size - 4 then write_guest_u32_slow t gva v
    else
      let e = dtlb_entry t (gva / Layout.page_size) in
      if e.Tlb.tag >= 0 then begin
        let b = e.Tlb.bytes in
        Bytes.set_uint16_le b off (v land 0xffff);
        Bytes.set_uint16_le b (off + 2) ((v lsr 16) land 0xffff);
        Phys.touch t.phys e.Tlb.frame
      end
      else invalid_arg (Printf.sprintf "Os.write_guest_byte: unmapped 0x%x" gva)

(* Map [lo, hi) of guest-virtual space to freshly allocated frames, in the
   EPT and in every page table. *)
let map_fresh_range t ~lo ~hi =
  let lo_page = Layout.page_of lo and hi_page = Layout.page_of (hi - 1) + 1 in
  let e0 = t.vcpus.(0).vept in
  let flushes_before =
    Array.fold_left (fun acc v -> acc + Ept.flushes v.vept) 0 t.vcpus
  in
  for gva_page = lo_page to hi_page - 1 do
    let gpa_page = Layout.page_of (Layout.gva_to_gpa (gva_page * Layout.page_size)) in
    let frame = Phys.alloc t.phys in
    Hashtbl.replace t.ram gpa_page frame;
    (* map in vCPU 0, then alias its leaf table into any vCPU that does
       not have that directory yet: RAM mappings stay shared while each
       vCPU keeps its own directory (views replace directory entries
       per-vCPU).  Under tags the installs are quiet: a fresh page was
       never cached (no negative caching), so no generation needs to
       move — the legacy path keeps its belt-and-braces bumps because
       they are the pinned i_flushes count. *)
    (if t.tagged_on then Ept.install_page else Ept.map_page)
      e0 ~gpa_page ~hpa_frame:frame;
    let dir = Ept.dir_of_page gpa_page in
    let table = Option.get (Ept.get_dir e0 ~dir) in
    Array.iter
      (fun v ->
        if v.vid > 0 && Ept.get_dir v.vept ~dir = None then
          (if t.tagged_on then Ept.install_dir else Ept.set_dir)
            v.vept ~dir (Some table))
      t.vcpus;
    List.iter (fun pt -> Pt.map pt ~gva_page ~gpa_page) t.page_tables
  done;
  (* Guest RAM grew.  Existing translations are still valid (mappings are
     add-only) and unmapped pages are never cached, so this bump is
     belt-and-braces rather than load-bearing — it also serves as the
     deterministic tlb.d_flushes count. *)
  t.data_epoch <- t.data_epoch + 1;
  let flushes_after =
    Array.fold_left (fun acc v -> acc + Ept.flushes v.vept) 0 t.vcpus
  in
  (* the per-page map_page/set_dir generation bumps above, plus the data
     epoch bump, all attribute to guest-RAM growth *)
  note_flushes t ~cause:Flush_growth (flushes_after - flushes_before + 1)

let copy_code_in t ~base (code : Bytes.t) =
  for i = 0 to Bytes.length code - 1 do
    write_guest_byte t (base + i) (Bytes.get_uint8 code i)
  done

(* ---------------- VMI surface ---------------- *)

let vmi_current_task t =
  match read_guest_u32 t (Layout.current_task_ptr_cpu ~vid:t.active) with
  | None -> (-1, "?")
  | Some task -> (
      match read_guest_u32 t task with
      | None -> (-1, "?")
      | Some pid ->
          let buf = Buffer.create 16 in
          (try
             for i = 0 to 15 do
               match read_guest_byte t (task + 4 + i) with
               | Some 0 | None -> raise Exit
               | Some c -> Buffer.add_char buf (Char.chr c)
             done
           with Exit -> ());
          (pid, Buffer.contents buf))

let vmi_module_list t =
  let rec go acc node =
    if node = 0 then List.rev acc
    else
      match (read_guest_u32 t node, read_guest_u32 t (node + 4), read_guest_u32 t (node + 8)) with
      | Some next, Some base, Some size ->
          let buf = Buffer.create 16 in
          (try
             for i = 0 to 15 do
               match read_guest_byte t (node + 12 + i) with
               | Some 0 | None -> raise Exit
               | Some c -> Buffer.add_char buf (Char.chr c)
             done
           with Exit -> ());
          go ((Buffer.contents buf, base, size) :: acc) next
      | _ -> List.rev acc
  in
  match read_guest_u32 t Layout.module_list_head with
  | None -> []
  | Some head -> go [] head

(* ---------------- modules ---------------- *)

let register_symbols t (u : Asm.unit_image) =
  List.iter (fun (p : Asm.placed) -> Hashtbl.replace t.symbols p.pname p.addr) u.functions

let rewrite_guest_module_list t =
  (* Rebuild the linked list from non-hidden modules, in load order. *)
  let visible = List.filter (fun m -> not m.hidden) t.modules in
  let node_of = Hashtbl.create 8 in
  let node_addr = ref (Layout.data_base + 0x8000) in
  List.iter
    (fun m ->
      Hashtbl.replace node_of m.mod_name !node_addr;
      node_addr := !node_addr + 32)
    visible;
  let rec write_nodes = function
    | [] -> ()
    | m :: rest ->
        let node = Hashtbl.find node_of m.mod_name in
        let next = match rest with [] -> 0 | n :: _ -> Hashtbl.find node_of n.mod_name in
        write_guest_u32 t node next;
        write_guest_u32 t (node + 4) m.unit_image.Asm.base;
        write_guest_u32 t (node + 8) (Bytes.length m.unit_image.Asm.code);
        for i = 0 to 15 do
          let c = if i < String.length m.mod_name then Char.code m.mod_name.[i] else 0 in
          write_guest_byte t (node + 12 + i) c
        done;
        write_nodes rest
  in
  write_nodes visible;
  write_guest_u32 t Layout.module_list_head
    (match visible with [] -> 0 | m :: _ -> Hashtbl.find node_of m.mod_name)

let load_module_fns t ~name fns =
  let base = t.next_module_base in
  match Image.assemble_module_fns t.image ~base fns with
  | Error e -> raise (Guest_panic (Printf.sprintf "module %s: %s" name e))
  | Ok u ->
      let len = Bytes.length u.Asm.code in
      if base + len > Layout.module_area_limit then
        raise (Guest_panic "module area exhausted");
      copy_code_in t ~base u.Asm.code;
      (* leave a guard page between modules *)
      t.next_module_base <-
        ((base + len + Layout.page_size - 1) / Layout.page_size * Layout.page_size)
        + Layout.page_size;
      let info = { mod_name = name; unit_image = u; hidden = false } in
      t.modules <- t.modules @ [ info ];
      register_symbols t u;
      rewrite_guest_module_list t;
      info

let load_module t name =
  match List.assoc_opt name Fc_kernel.Catalog.module_functions with
  | None -> raise (Guest_panic ("unknown module " ^ name))
  | Some fns -> load_module_fns t ~name fns

let hide_module t name =
  match List.find_opt (fun m -> String.equal m.mod_name name) t.modules with
  | None -> raise (Guest_panic ("hide_module: not loaded: " ^ name))
  | Some m ->
      m.hidden <- true;
      rewrite_guest_module_list t

let modules t = t.modules
let resolve t name = Hashtbl.find_opt t.symbols name

let resolve_exn t name =
  match resolve t name with
  | Some a -> a
  | None -> raise (Guest_panic ("unresolved kernel symbol: " ^ name))

(* ---------------- construction ---------------- *)

let default_handler _t _regs = function
  | Exit_breakpoint _ -> Resume
  | Exit_invalid_opcode -> Panic "invalid opcode in guest kernel (no hypervisor handler)"

let write_task_struct t (p : Process.t) =
  let task = Layout.task_struct_addr ~pid:p.pid in
  write_guest_u32 t task p.pid;
  for i = 0 to 15 do
    let c = if i < String.length p.name then Char.code p.name.[i] else 0 in
    write_guest_byte t (task + 4 + i) c
  done

let dummy_decode_line = { line_version = min_int; line = [||] }

let dummy_sblock =
  {
    Cpu.sb_start = -1;
    sb_ops = [||];
    sb_pcs = [||];
    sb_lens = [||];
    sb_args = [||];
    sb_steps = [||];
    sb_exit = -1;
    sb_tag = -1;
    sb_tag2 = -1;
    sb_tag3 = -1;
    sb_ggen = -1;
    sb_frame = -1;
    sb_version = -1;
    sb_trap_gen = -1;
    sb_next = None;
  }

let create ?(config = default_config) ?(vcpus = 1) ?obs ?(tlb = true)
    ?(sblocks = false) ?(tagged = true) image =
  if vcpus < 1 || vcpus > 8 then invalid_arg "Os.create: 1-8 vcpus";
  let obs = match obs with Some o -> o | None -> Fc_obs.Obs.create () in
  let master_pt = Pt.create () in
  let mk_vcpu vid =
    let name = if vid = 0 then "swapper" else Printf.sprintf "swapper/%d" vid in
    let vidle = Process.create ~cpu:vid ~pid:vid ~name ~page_table:master_pt [] in
    {
      vid;
      vept = Ept.create ();
      vidle;
      vcurrent = vidle;
      vin_interrupt = false;
      vslice = Fc_obs.Span.none;
      vslice_start = 0;
      vitlb = Tlb.create ~bits:8 ~payload:dummy_decode_line ();
      vdtlb = Tlb.create ~bits:8 ~payload:() ();
      vsbc = Tlb.create ~bits:(if sblocks then 12 else 0) ~payload:dummy_sblock ();
      vsb_last = None;
    }
  in
  let t =
    {
      image;
      config;
      obs;
      phys = Phys.create ~metrics:(Fc_obs.Obs.metrics obs) ();
      vcpus = Array.init vcpus mk_vcpu;
      active = 0;
      ram = Hashtbl.create 2048;
      master_pt;
      page_tables = [ master_pt ];
      traps = Hashtbl.create 8;
      trap_arr = [||];
      trap_lo = max_int;
      trap_hi = min_int;
      trace = None;
      events = None;
      branch_policy = None;
      cycles = ref 0;
      instrs = ref 0;
      tlb_on = tlb;
      sblocks_on = sblocks;
      tagged_on = tagged;
      trap_gen = 0;
      divergent = Hashtbl.create 64;
      bindings = Hashtbl.create 64;
      global_gen = 0;
      data_epoch = 0;
      round_no = 0;
      context_switches = 0;
      procs_rev = [];
      next_pid = vcpus;
      handler = default_handler;
      modules = [];
      next_module_base = Layout.module_area_base;
      timers =
        { source = Irq_paths.Timer config.clocksource; period = config.timer_period; next_at = config.timer_period }
        :: List.map
             (fun (source, period) -> { source; period; next_at = period })
             config.background_irqs;
      decode_cache = Hashtbl.create 512;
      sb_store = Hashtbl.create 512;
      at_round = [];
      rewriter = None;
      itimers = Hashtbl.create 8;
      symbols = Hashtbl.create 2048;
      sleep_override = None;
      faults = None;
      tick = None;
      run_cycles_f =
        Fc_obs.Metrics.counter_family (Fc_obs.Obs.metrics obs) ~subsystem:"os"
          "run_cycles";
      run_slices_f =
        Fc_obs.Metrics.counter_family (Fc_obs.Obs.metrics obs) ~subsystem:"os"
          "run_slices";
      tlb_i_hits = Fc_obs.Metrics.counter (Fc_obs.Obs.metrics obs) ~subsystem:"tlb" "i_hits";
      tlb_i_misses = Fc_obs.Metrics.counter (Fc_obs.Obs.metrics obs) ~subsystem:"tlb" "i_misses";
      tlb_d_hits = Fc_obs.Metrics.counter (Fc_obs.Obs.metrics obs) ~subsystem:"tlb" "d_hits";
      tlb_d_misses = Fc_obs.Metrics.counter (Fc_obs.Obs.metrics obs) ~subsystem:"tlb" "d_misses";
      sb_built = Fc_obs.Metrics.counter (Fc_obs.Obs.metrics obs) ~subsystem:"sb" "blocks_built";
      sb_hits = Fc_obs.Metrics.counter (Fc_obs.Obs.metrics obs) ~subsystem:"sb" "hits";
      sb_invals = Fc_obs.Metrics.counter (Fc_obs.Obs.metrics obs) ~subsystem:"sb" "invalidations";
      sb_chains = Fc_obs.Metrics.counter (Fc_obs.Obs.metrics obs) ~subsystem:"sb" "chain_follows";
      sb_restamps = Fc_obs.Metrics.counter (Fc_obs.Obs.metrics obs) ~subsystem:"sb" "restamps";
      tlb_flushes_f =
        Fc_obs.Metrics.counter_family (Fc_obs.Obs.metrics obs) ~subsystem:"tlb"
          "flushes";
    }
  in
  (* decode lines (and, transitively, the blocks rebuilt from them) are
     keyed by host frame: drop the line the moment its frame dies, rather
     than leaking one per freed view frame until the number is recycled *)
  Phys.set_release_hook t.phys
    (Some
       (fun frame ->
         Hashtbl.remove t.decode_cache frame;
         Hashtbl.remove t.sb_store frame));
  (* the guest cycle counter is the trace timestamp source, and the
     scheduler state is exported as read-through gauges *)
  Fc_obs.Obs.set_clock obs (fun () -> !(t.cycles));
  let gauge name f = Fc_obs.Metrics.gauge (Fc_obs.Obs.metrics obs) ~subsystem:"os" name f in
  gauge "cycles" (fun () -> !(t.cycles));
  gauge "instructions" (fun () -> !(t.instrs));
  gauge "rounds" (fun () -> t.round_no);
  gauge "context_switches" (fun () -> t.context_switches);
  gauge "vcpus" (fun () -> Array.length t.vcpus);
  gauge "processes" (fun () -> List.length t.procs_rev);
  gauge "decode_cache_frames" (fun () -> Hashtbl.length t.decode_cache);
  let tlb_gauge name f =
    Fc_obs.Metrics.gauge (Fc_obs.Obs.metrics obs) ~subsystem:"tlb" name f
  in
  tlb_gauge "i_flushes" (fun () ->
      Array.fold_left (fun acc v -> acc + Ept.flushes v.vept) 0 t.vcpus);
  tlb_gauge "d_flushes" (fun () -> t.data_epoch);
  (* base kernel text *)
  let text_lo = Image.text_base image and text_hi = Image.text_end image in
  map_fresh_range t ~lo:text_lo ~hi:text_hi;
  copy_code_in t ~base:text_lo (Image.unit_image image).Asm.code;
  register_symbols t (Image.unit_image image);
  (* kernel data: current pointer, task structs, module nodes *)
  map_fresh_range t ~lo:Layout.data_base ~hi:(Layout.data_base + 0x10000);
  (* the whole module area is guest RAM from the start, like real memory;
     module loading only writes bytes into it *)
  map_fresh_range t ~lo:Layout.module_area_base ~hi:Layout.module_area_limit;
  (* idle tasks: one per vCPU, with per-CPU current pointers and stacks *)
  Array.iter
    (fun v ->
      write_task_struct t v.vidle;
      write_guest_u32 t
        (Layout.current_task_ptr_cpu ~vid:v.vid)
        (Layout.task_struct_addr ~pid:v.vidle.Process.pid);
      map_fresh_range t
        ~lo:(Layout.kstack_base + (v.vid * Layout.kstack_size))
        ~hi:(Layout.kstack_base + ((v.vid + 1) * Layout.kstack_size)))
    t.vcpus;
  (* default modules *)
  List.iter
    (fun (name, _) -> ignore (load_module t name))
    Fc_kernel.Catalog.module_functions;
  t

let spawn ?cpu t ~name script =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  if pid > 200 then raise (Guest_panic "too many processes");
  let cpu =
    match cpu with
    | Some c when c >= 0 && c < Array.length t.vcpus -> c
    | Some _ -> invalid_arg "Os.spawn: bad cpu"
    | None -> pid mod Array.length t.vcpus
  in
  (* map this process' kernel stack everywhere *)
  map_fresh_range t
    ~lo:(Layout.kstack_base + (pid * Layout.kstack_size))
    ~hi:(Layout.kstack_base + ((pid + 1) * Layout.kstack_size));
  let page_table = Pt.create () in
  Pt.copy_range ~src:t.master_pt ~dst:page_table ~lo_page:0 ~hi_page:max_int;
  t.page_tables <- page_table :: t.page_tables;
  let p = Process.create ~cpu ~pid ~name ~page_table script in
  t.procs_rev <- p :: t.procs_rev;
  write_task_struct t p;
  p

(* ---------------- CPU plumbing ---------------- *)

let cached_decode_slow t pc =
  match Pt.translate t.master_pt pc with
  | None -> Cpu.D_unmapped
  | Some gpa -> (
      match Ept.translate (active_vcpu t).vept gpa with
      | None -> Cpu.D_unmapped
      | Some hpa ->
          let frame = hpa / Layout.page_size and off = hpa mod Layout.page_size in
          if off > Layout.page_size - 6 then
            (* possible page-crossing instruction: decode uncached *)
            Cpu.decoder_of_fetch (fun a -> fetch_code t a) pc
          else begin
            let version = Phys.version t.phys frame in
            let ln = decode_line_for t frame ~version in
            match ln.line.(off) with
            | Some r -> r
            | None ->
                let r = Cpu.decoder_of_fetch (fun a -> fetch_code t a) pc in
                ln.line.(off) <- Some r;
                r
          end)

(* Decode with the line pointer folded into the iTLB entry: the common
   case is one array load plus three integer compares (tag, epoch,
   version) before indexing the decode line. *)
let cached_decode t pc =
  if not t.tlb_on then cached_decode_slow t pc
  else
    let e = itlb_entry t (pc / Layout.page_size) in
    if e.Tlb.tag < 0 then Cpu.D_unmapped
    else
      let off = pc land page_mask in
      if off > Layout.page_size - 6 then
        (* possible page-crossing instruction: decode uncached *)
        Cpu.decoder_of_fetch (fun a -> fetch_code t a) pc
      else
        let ln = e.Tlb.payload in
        match Array.unsafe_get ln.line off with
        | Some r -> r
        | None ->
            let r = Cpu.decoder_of_fetch (fun a -> fetch_code t a) pc in
            ln.line.(off) <- Some r;
            r

(* ---------------- superblocks ---------------- *)

(* Decode-once basic blocks (DESIGN.md §10).  A block is built from the
   bytes of the single host frame backing its page — translated through
   the master page table and the active vCPU's EPT, exactly like the
   fetch path — and snapshots (EPT view tag, frame version, trap
   generation) at build time.  A generation bump on the block's view
   ([Ept.set_dir], a COW splice via [flush_fetch_tlbs]), a write to the
   backing frame ([Phys_mem.version]) or a trap-set change invalidates it
   with zero eager work; a tagged view switch merely changes the active
   tag, so a re-entered view's blocks compare valid untouched. *)

let sblock_cap = 64

let build_sblock t pc =
  let v = active_vcpu t in
  if pc land page_mask > Layout.page_size - 6 then None
  else
    match Pt.translate_page t.master_pt (pc / Layout.page_size) with
    | None -> None
    | Some gpa_page -> (
        match Ept.translate_page v.vept gpa_page with
        | None -> None
        | Some frame ->
            let tag = Ept.tag v.vept in
            (* global-page stamp: a page no view has ever remapped
               translates identically under every view, so the block can
               skip tag validation for as long as no bare full flush
               bumps the global generation (and any later divergence of
               the page kills it through the displaced frame's version
               touch) *)
            let ggen =
              if t.tagged_on && not (Hashtbl.mem t.divergent gpa_page) then
                t.global_gen
              else -1
            in
            (* pre-stamp the tag memo with sibling views currently
               binding this page to this very frame: the first switch
               into a sibling then revalidates the block by compare
               instead of restamping.  A pre-stamped tag only ever
               matches while that view is active at this same era and
               generation, and any later rebinding of the sibling's page
               version-touches this frame and kills the block — so a
               stale stamp is inert, never unsound. *)
            let tag2 = ref (-1) and tag3 = ref (-1) in
            (if ggen < 0 && t.tagged_on then
               match Hashtbl.find_opt t.bindings gpa_page with
               | None -> ()
               | Some per ->
                   Hashtbl.iter
                     (fun view frame' ->
                       if frame' = frame then begin
                         let tg = Ept.tag_for v.vept ~view in
                         if tg <> tag && !tag2 < 0 then tag2 := tg
                         else if tg <> tag && !tag3 < 0 && tg <> !tag2 then
                           tag3 := tg
                       end)
                     per);
            let version = Phys.version t.phys frame in
            let bytes = Phys.frame_bytes t.phys frame in
            let base = pc - (pc land page_mask) in
            let read a =
              let o = a - base in
              if o >= 0 && o < Layout.page_size then
                Some (Bytes.get_uint8 bytes o)
              else None
            in
            (* (op, pc, len, arg) in reverse; the block ends before the
               page tail (where an instruction could straddle pages),
               before any trap address at index >= 1 (so the executor's
               entry-only trap probe is exact), at the op cap, and at any
               unconditional terminator.  Jcc continues in-block: its
               fall-through is the next op, its taken target exits. *)
            let ops = ref [] in
            let n = ref 0 in
            let exit_pc = ref (-1) in
            let add op ~pc ~len ~arg =
              ops := (op, pc, len, arg) :: !ops;
              incr n
            in
            let rec go a =
              if
                !n >= sblock_cap
                || a land page_mask > Layout.page_size - 6
                || is_trap_addr t a
              then exit_pc := a
              else
                match Insn.decode ~read a with
                | Error _ ->
                    (* undecodable bytes: stop before them; the classic
                       path raises Invalid_opcode there with eip = a *)
                    exit_pc := a
                | Ok (insn, len) -> (
                    match Scan.boundary insn ~pc:a ~len with
                    | Scan.B_seq ->
                        let op =
                          match insn with
                          | Insn.Push_ebp -> Cpu.S_push_ebp
                          | Insn.Mov_ebp_esp -> Cpu.S_mov_ebp_esp
                          | Insn.Leave -> Cpu.S_leave
                          | _ -> Cpu.S_step
                        in
                        add op ~pc:a ~len ~arg:0;
                        go (a + len)
                    | Scan.B_cond taken ->
                        add Cpu.S_jcc ~pc:a ~len ~arg:taken;
                        go (a + len)
                    | Scan.B_jump target ->
                        add Cpu.S_jmp ~pc:a ~len ~arg:target;
                        exit_pc := target
                    | Scan.B_call target ->
                        add Cpu.S_call ~pc:a ~len ~arg:target;
                        exit_pc := target
                    | Scan.B_call_dynamic ->
                        add Cpu.S_call_ind ~pc:a ~len ~arg:0
                    | Scan.B_return -> add Cpu.S_ret ~pc:a ~len ~arg:0
                    | Scan.B_stop -> (
                        match insn with
                        | Insn.Yield id -> add Cpu.S_yield ~pc:a ~len ~arg:id
                        | _ -> add Cpu.S_ud2 ~pc:a ~len ~arg:0))
            in
            go pc;
            if !n = 0 then None
            else begin
              let items = Array.of_list (List.rev !ops) in
              let sb_ops = Array.map (fun (o, _, _, _) -> o) items in
              let len = Array.length sb_ops in
              let steps = Array.make len 0 in
              for i = len - 1 downto 0 do
                if sb_ops.(i) = Cpu.S_step then
                  steps.(i) <- (if i + 1 < len then steps.(i + 1) else 0) + 1
              done;
              let b =
                {
                  Cpu.sb_start = pc;
                  sb_ops;
                  sb_pcs = Array.map (fun (_, p, _, _) -> p) items;
                  sb_lens = Array.map (fun (_, _, l, _) -> l) items;
                  sb_args = Array.map (fun (_, _, _, g) -> g) items;
                  sb_steps = steps;
                  sb_exit = !exit_pc;
                  sb_tag = tag;
                  sb_tag2 = !tag2;
                  sb_tag3 = !tag3;
                  sb_ggen = ggen;
                  sb_frame = frame;
                  sb_version = version;
                  sb_trap_gen = t.trap_gen;
                  sb_next = None;
                }
              in
              (* retain per (frame, offset): the block survives in the
                 store as long as the frame's bytes do, so remapping this
                 page back later resurrects it instead of re-decoding *)
              let per =
                match Hashtbl.find_opt t.sb_store frame with
                | Some per -> per
                | None ->
                    let per = Hashtbl.create 16 in
                    Hashtbl.add t.sb_store frame per;
                    per
              in
              Hashtbl.replace per (pc land page_mask) b;
              Some b
            end)

(* No trap address in [lo, hi]?  One probe of the sorted trap mirror. *)
let no_trap_in t ~lo ~hi =
  lo > hi || t.trap_hi < lo || t.trap_lo > hi
  ||
  let arr = t.trap_arr in
  let n = Array.length arr in
  let rec least l r =
    if l >= r then l
    else
      let m = (l + r) / 2 in
      if arr.(m) < lo then least (m + 1) r else least l m
  in
  let i = least 0 n in
  i >= n || arr.(i) > hi

(* The frame's bytes are what the block decoded; version unchanged means
   they still are, so execution is byte-identical no matter how many EPT
   epochs have passed.  The trap generation is a fast path only: the
   builder split the block so no interior op was a trap, and on a
   generation bump we re-check just that — entry traps are the outer
   loop's probe, not the block's — and restamp.  The enforcement layer
   arms and disarms its context-switch/resume breakpoints (always block
   entries) constantly; without restamping every switch would flush the
   whole block cache. *)
let sblock_fresh t (b : Cpu.sblock) =
  b.Cpu.sb_version = Phys.version t.phys b.Cpu.sb_frame
  && (b.Cpu.sb_trap_gen = t.trap_gen
     ||
     let pcs = b.Cpu.sb_pcs in
     let n = Array.length pcs in
     if n <= 1 || no_trap_in t ~lo:pcs.(1) ~hi:pcs.(n - 1) then begin
       b.Cpu.sb_trap_gen <- t.trap_gen;
       true
     end
     else false)

let sblock_current_frame t (v : vcpu) pc =
  match Pt.translate_page t.master_pt (pc / Layout.page_size) with
  | None -> -1
  | Some gpa_page -> (
      match Ept.translate_page v.vept gpa_page with
      | None -> -1
      | Some frame -> frame)

(* Validity = freshness plus "the current translation still maps this pc
   to the frame the block decoded from".  The tag stamp is a fast path
   for the second half: when it matches, the view that validated the
   block is active again with no generation bump in between, so the
   translation check is skipped — under tagged switching this is the
   common case and a view switched away and back costs nothing.  On a
   mismatch we re-translate; if the frame is unchanged (always the case
   on the untagged path after a view switched away and back, or after a
   flush that spliced some *other* page) the block is restamped in place
   rather than rebuilt — [sb.restamps] counts exactly these, the
   per-switch revalidation tax tags exist to eliminate.  A genuine splice
   of this page yields a different frame and the block dies. *)
let sblock_valid t (v : vcpu) (b : Cpu.sblock) =
  sblock_fresh t b
  && ((* global pages first: a view-invariant block needs no tag at all —
         every view resolves its pc to the very frame it decoded *)
      b.Cpu.sb_ggen = t.global_gen
     ||
     let tag = Ept.tag v.vept in
  b.Cpu.sb_tag = tag
  || (b.Cpu.sb_tag2 = tag
     && begin
          (* tag memo hit (the PCID-cache case): the block was already
             verified under this exact (era, view, gen) — a tag any
             later bump would have changed — so the translation check is
             skipped and the tags swap MRU-first.  This is what lets one
             shared frame's blocks rotate between views with zero
             restamps. *)
          b.Cpu.sb_tag2 <- b.Cpu.sb_tag;
          b.Cpu.sb_tag <- tag;
          true
        end)
  || (b.Cpu.sb_tag3 = tag
     && begin
          b.Cpu.sb_tag3 <- b.Cpu.sb_tag2;
          b.Cpu.sb_tag2 <- b.Cpu.sb_tag;
          b.Cpu.sb_tag <- tag;
          true
        end)
  ||
  if sblock_current_frame t v b.Cpu.sb_start = b.Cpu.sb_frame then begin
    b.Cpu.sb_tag3 <- b.Cpu.sb_tag2;
    b.Cpu.sb_tag2 <- b.Cpu.sb_tag;
    b.Cpu.sb_tag <- tag;
    (* a block stamped global before a bare full flush just re-proved its
       translation; re-arm the fast path under the new generation *)
    if b.Cpu.sb_ggen >= 0 then b.Cpu.sb_ggen <- t.global_gen;
    Fc_obs.Metrics.incr t.sb_restamps;
    true
  end
  else false)

let sblock_probe t (v : vcpu) pc =
  (* index on pc with the page bits folded in: block starts cluster at
     repeated page offsets (every function entry the linker page-aligns,
     every post-page-tail resume), so raw low bits would put them all in
     one slot *)
  let e = Tlb.slot v.vsbc (pc lxor (pc / Layout.page_size)) in
  if e.Tlb.tag = pc && sblock_valid t v e.Tlb.payload then begin
    Fc_obs.Metrics.incr t.sb_hits;
    let b = e.Tlb.payload in
    v.vsb_last <- Some b;
    Some b
  end
  else begin
    (* a tag match whose block no longer covers this pc under the current
       mapping is a genuine invalidation (this page remapped to another
       frame, code write, trap change); a tag mismatch is just a cold or
       conflicted slot *)
    if e.Tlb.tag = pc then Fc_obs.Metrics.incr t.sb_invals;
    let resurrected =
      (* second-chance lookup in the per-frame store: if the current
         translation maps pc to a frame we already decoded blocks from —
         and its bytes are unchanged — the old block is still exact, no
         matter which view installed the mapping *)
      match sblock_current_frame t v pc with
      | -1 -> None
      | frame -> (
          match Hashtbl.find_opt t.sb_store frame with
          | None -> None
          | Some per -> (
              match Hashtbl.find_opt per (pc land page_mask) with
              | Some b when b.Cpu.sb_start = pc && sblock_fresh t b ->
                  let tag = Ept.tag v.vept in
                  if b.Cpu.sb_tag <> tag then begin
                    b.Cpu.sb_tag3 <- b.Cpu.sb_tag2;
                    b.Cpu.sb_tag2 <- b.Cpu.sb_tag;
                    b.Cpu.sb_tag <- tag
                  end;
                  Some b
              | _ -> None))
    in
    match resurrected with
    | Some b ->
        Fc_obs.Metrics.incr t.sb_hits;
        Tlb.fill e ~tag:pc ~stamp:b.Cpu.sb_tag ~frame:b.Cpu.sb_frame
          ~version:b.Cpu.sb_version ~bytes:Bytes.empty ~payload:b;
        v.vsb_last <- Some b;
        Some b
    | None -> (
        match build_sblock t pc with
        | None ->
            v.vsb_last <- None;
            None
        | Some b ->
            Fc_obs.Metrics.incr t.sb_built;
            Tlb.fill e ~tag:pc ~stamp:b.Cpu.sb_tag ~frame:b.Cpu.sb_frame
              ~version:b.Cpu.sb_version ~bytes:Bytes.empty ~payload:b;
            v.vsb_last <- Some b;
            Some b)
  end

(* Block lookup with chaining: when the previous block's static exit is
   exactly the requested pc, follow its sb_next link — one pointer chase
   plus the validity snapshot — instead of re-hashing into the cache.  A
   stale or missing link falls back to the probe (and re-links, so a
   rebuilt target heals the chain). *)
let sblock_find t pc =
  let v = active_vcpu t in
  match v.vsb_last with
  | Some lb when lb.Cpu.sb_exit = pc -> (
      match lb.Cpu.sb_next with
      | Some nb when nb.Cpu.sb_start = pc && sblock_valid t v nb ->
          Fc_obs.Metrics.incr t.sb_chains;
          v.vsb_last <- Some nb;
          Some nb
      | _ ->
          let r = sblock_probe t v pc in
          (match r with Some nb -> lb.Cpu.sb_next <- Some nb | None -> ());
          r)
  | _ -> sblock_probe t v pc

let run_cpu t (regs : Cpu.regs) dispatch =
  let decode pc = cached_decode t pc in
  let read_u32 a = read_guest_u32 t a in
  let write_u32 a v = write_guest_u32 t a v in
  let is_trap a =
    is_trap_addr t a
    &&
    match t.faults with None -> true | Some h -> not (h.fh_trap_miss a)
  in
  let sblocks = if t.sblocks_on then Some (fun pc -> sblock_find t pc) else None in
  let rec go skip =
    match
      Cpu.run ~decode ~read_u32 ~write_u32 ~is_trap ~trace:t.trace
        ?events:t.events ?branch:t.branch_policy ~cycles:t.cycles
        ~instrs:t.instrs ~dispatch ?skip_bp:skip ?sblocks regs
    with
    | Cpu.Breakpoint a -> (
        match t.handler t regs (Exit_breakpoint a) with
        | Resume -> go (Some a)
        | Panic m -> raise (Guest_panic m))
    | Cpu.Invalid_opcode -> (
        match t.handler t regs Exit_invalid_opcode with
        | Resume -> go None
        | Panic m -> raise (Guest_panic m))
    | Cpu.Blocked id -> `Blocked id
    | Cpu.Returned -> `Returned
    | Cpu.Fault f ->
        let cur = (active_vcpu t).vcurrent in
        raise
          (Guest_panic
             (Format.asprintf "%a (vcpu %d, pid %d %s, eip=0x%x)" Cpu.pp_exit
                (Cpu.Fault f) t.active cur.Process.pid cur.Process.name
                regs.Cpu.eip))
  in
  go None

let exec_invocation t ~entry_addr ~dispatch_addrs ~esp =
  let regs = { Cpu.eip = entry_addr; ebp = 0; esp } in
  Cpu.push ~write_u32:(write_guest_u32 t) regs Cpu.sentinel_return;
  let q = Queue.create () in
  List.iter (fun a -> Queue.add a q) dispatch_addrs;
  let outcome = run_cpu t regs q in
  (outcome, regs, q)

(* Synthesize an invalid-opcode VM exit without executing anything: the
   exit is routed through the installed handler exactly as a real UD2
   trap would be, so the hypervisor's recovery and governor paths see it.
   Used by the fault-injection harness for spurious exits and for exits
   whose register file (ebp) points at a crafted stack. *)
let inject_invalid_opcode t ?(ebp = 0) ?esp ~eip () =
  let v = active_vcpu t in
  let esp =
    match esp with Some e -> e | None -> Process.kstack_top v.vcurrent - 0x100
  in
  let regs = { Cpu.eip; ebp; esp } in
  match t.handler t regs Exit_invalid_opcode with
  | Resume -> ()
  | Panic m -> raise (Guest_panic m)

(* ---------------- interrupts ---------------- *)

let actual_timer_source t source =
  let cur = (active_vcpu t).vcurrent in
  match source with
  | Irq_paths.Timer cs when Hashtbl.mem t.itimers cur.Process.pid ->
      Hashtbl.remove t.itimers cur.Process.pid;
      Irq_paths.Timer_itimer cs
  | s -> s

let deliver_irq t source =
  let v = active_vcpu t in
  let source = actual_timer_source t source in
  let was = v.vin_interrupt in
  v.vin_interrupt <- true;
  let esp = Process.kstack_top v.vcurrent - 0x800 in
  let dispatch = List.map (resolve_exn t) (Irq_paths.dispatch source) in
  let outcome, _, _ =
    exec_invocation t ~entry_addr:(resolve_exn t Irq_paths.entry) ~dispatch_addrs:dispatch ~esp
  in
  v.vin_interrupt <- was;
  match outcome with
  | `Returned -> ()
  | `Blocked _ -> raise (Guest_panic "interrupt handler blocked")

let inject_irq t source = deliver_irq t source

let check_irqs t =
  List.iter
    (fun tm ->
      (* if we fell far behind (e.g. a long hypervisor operation advanced
         the clock), drop the backlog like real hardware drops ticks *)
      if !(t.cycles) - tm.next_at > 2 * tm.period then
        tm.next_at <- !(t.cycles);
      let fired = ref 0 in
      while !(t.cycles) >= tm.next_at && !fired < 2 do
        tm.next_at <- tm.next_at + tm.period;
        incr fired;
        deliver_irq t tm.source
      done;
      if !(t.cycles) >= tm.next_at then tm.next_at <- !(t.cycles) + tm.period)
    t.timers

(* ---------------- syscalls ---------------- *)

(* Guest-visible in-kernel flag at task_struct+20, so the hypervisor's VMI
   can tell a process returning to user mode apart from one resuming
   mid-kernel (the Fig. 3 cross-view situation). *)
let write_in_kernel_flag t (p : Process.t) v =
  write_guest_u32 t (Layout.task_struct_addr ~pid:p.Process.pid + 20) (if v then 1 else 0)

let exec_resume_userspace t (p : Process.t) =
  let outcome, _, _ =
    exec_invocation t
      ~entry_addr:(resolve_exn t "resume_userspace")
      ~dispatch_addrs:[] ~esp:(Process.kstack_top p)
  in
  match outcome with
  | `Returned -> ()
  | `Blocked _ -> raise (Guest_panic "resume_userspace blocked")

let finish_syscall t (p : Process.t) =
  p.Process.in_kernel <- false;
  write_in_kernel_flag t p false;
  p.Process.syscall_count <- p.Process.syscall_count + 1;
  exec_resume_userspace t p

let exec_syscall t (p : Process.t) variant_name =
  let sc = Syscalls.find_exn variant_name in
  let queue_names =
    match t.rewriter with
    | Some f -> (
        match f sc with
        | Some (entry, dispatch) -> entry :: dispatch
        | None -> sc.entry :: sc.dispatch)
    | None -> sc.entry :: sc.dispatch
  in
  p.Process.in_kernel <- true;
  write_in_kernel_flag t p true;
  let clock_fn =
    match t.config.clocksource with
    | Irq_paths.Acpi_pm -> "acpi_pm_read"
    | Irq_paths.Kvmclock -> "kvm_clock_get_cycles"
  in
  let subst n = if String.equal n "@clocksource" then clock_fn else n in
  let dispatch_addrs = List.map (fun n -> resolve_exn t (subst n)) queue_names in
  let outcome, regs, q =
    exec_invocation t
      ~entry_addr:(resolve_exn t "syscall_call")
      ~dispatch_addrs ~esp:(Process.kstack_top p)
  in
  match outcome with
  | `Returned ->
      (* setitimer/alarm arm a real interval timer: subsequent timer
         interrupts in this process' context expire it (it_real_fn). *)
      if String.equal sc.entry "sys_setitimer" || String.equal sc.entry "sys_alarm"
      then arm_itimer t ~pid:p.Process.pid;
      finish_syscall t p;
      `Done
  | `Blocked id ->
      let delay =
        match t.sleep_override with
        | Some n ->
            t.sleep_override <- None;
            n
        | None -> t.config.wake_delay
      in
      Process.block p ~yield_id:id ~wake_round:(t.round_no + delay) ~regs
        ~dispatch:q;
      `Blocked

let continue_syscall t (p : Process.t) regs q =
  match run_cpu t regs q with
  | `Returned ->
      finish_syscall t p;
      `Done
  | `Blocked id ->
      Process.block p ~yield_id:id ~wake_round:(t.round_no + t.config.wake_delay)
        ~regs ~dispatch:q;
      `Blocked

(* ---------------- scheduler ---------------- *)

(* Run-slice accounting: the cycles a vCPU spends while a given process
   is current are charged to os.run_cycles{comm}, and the slice is
   bracketed by a Run_slice span when the trace is armed.  The sim is
   sequential with one global clock, so on a multi-vCPU guest a slice
   also absorbs cycles burned by the other vCPUs' interleaved turns —
   exact for one vCPU, an upper bound otherwise. *)
let end_run_slice t (v : vcpu) =
  let now = !(t.cycles) in
  let delta = now - v.vslice_start in
  if delta > 0 then
    Fc_obs.Metrics.add
      (Fc_obs.Metrics.family_counter t.run_cycles_f v.vcurrent.Process.name)
      delta;
  v.vslice_start <- now;
  if v.vslice <> Fc_obs.Span.none then begin
    Fc_obs.Span.exit (Fc_obs.Obs.spans t.obs) v.vslice;
    v.vslice <- Fc_obs.Span.none
  end

let begin_run_slice t (v : vcpu) =
  v.vslice_start <- !(t.cycles);
  Fc_obs.Metrics.incr
    (Fc_obs.Metrics.family_counter t.run_slices_f v.vcurrent.Process.name);
  if Fc_obs.Obs.armed t.obs then
    v.vslice <-
      Fc_obs.Span.enter (Fc_obs.Obs.spans t.obs) ~vid:v.vid
        ~pid:v.vcurrent.Process.pid ~comm:v.vcurrent.Process.name
        Fc_obs.Span.Run_slice

let switch_to t (next : Process.t) =
  let v = active_vcpu t in
  if next != v.vcurrent then begin
    t.context_switches <- t.context_switches + 1;
    end_run_slice t v;
    if Fc_obs.Obs.armed t.obs then
      Fc_obs.Obs.emit t.obs
        (Fc_obs.Event.Sched_switch
           { vid = v.vid; pid = next.Process.pid; comm = next.Process.name });
    write_guest_u32 t
      (Layout.current_task_ptr_cpu ~vid:v.vid)
      (Layout.task_struct_addr ~pid:next.Process.pid);
    v.vcurrent <- next;
    begin_run_slice t v;
    let esp =
      match next.Process.saved_regs with
      | Some r -> r.Cpu.esp - 16
      | None -> Process.kstack_top next
    in
    let outcome, _, _ =
      exec_invocation t ~entry_addr:(resolve_exn t "schedule") ~dispatch_addrs:[] ~esp
    in
    match outcome with
    | `Returned -> ()
    | `Blocked _ -> raise (Guest_panic "schedule blocked")
  end;
  next.Process.last_scheduled_round <- t.round_no

let perform_action t (p : Process.t) (act : Action.t) =
  match act with
  | Action.Compute n ->
      add_cycles t n;
      `Done
  | Action.Fault ->
      let outcome, _, _ =
        exec_invocation t
          ~entry_addr:(resolve_exn t "do_page_fault")
          ~dispatch_addrs:[] ~esp:(Process.kstack_top p)
      in
      (match outcome with
      | `Returned -> `Done
      | `Blocked _ -> raise (Guest_panic "fault path blocked"))
  | Action.Syscall v -> exec_syscall t p v
  | Action.Sleep rounds ->
      t.sleep_override <- Some rounds;
      let r = exec_syscall t p "nanosleep" in
      t.sleep_override <- None;
      r
  | Action.Exit ->
      let (_ : [ `Done | `Blocked ]) = exec_syscall t p "exit" in
      p.Process.state <- Process.Exited;
      `Exited

let run_quantum t (p : Process.t) =
  let budget = ref t.config.quantum in
  let continue_ = ref true in
  (* resume a blocked syscall first *)
  (match Process.take_saved p with
  | Some (regs, q) -> (
      match continue_syscall t p regs q with
      | `Done -> decr budget
      | `Blocked -> continue_ := false)
  | None -> exec_resume_userspace t p);
  check_irqs t;
  while !continue_ && !budget > 0 && Process.is_ready p do
    (match t.faults with None -> () | Some h -> h.fh_pre_action ());
    (match p.Process.script with
    | [] -> p.Process.state <- Process.Exited
    | act :: rest -> (
        p.Process.script <- rest;
        match perform_action t p act with
        | `Done -> decr budget
        | `Blocked | `Exited -> continue_ := false));
    check_irqs t
  done

let fire_round_hooks t =
  let due, later = List.partition (fun (r, _) -> r <= t.round_no) t.at_round in
  t.at_round <- later;
  List.iter (fun (_, f) -> f t) due

let schedule_at_round t r f = t.at_round <- t.at_round @ [ (r, f) ]

let pick_ready t ~vid =
  let ready =
    List.filter (fun (p : Process.t) -> Process.is_ready p && p.cpu = vid) t.procs_rev
  in
  match ready with
  | [] -> None
  | _ ->
      (* least-recently-scheduled first; pid breaks ties *)
      Some
        (List.fold_left
           (fun best (p : Process.t) ->
             match best with
             | None -> Some p
             | Some (b : Process.t) ->
                 if
                   p.last_scheduled_round < b.last_scheduled_round
                   || (p.last_scheduled_round = b.last_scheduled_round && p.pid < b.pid)
                 then Some p
                 else best)
           None ready
        |> Option.get)

let run ?(max_rounds = 1_000_000) ?(until = fun _ -> false) t =
  let live () = List.exists (fun p -> not (Process.is_exited p)) t.procs_rev in
  let rounds = ref 0 in
  while live () && (not (until t)) && !rounds < max_rounds do
    incr rounds;
    t.round_no <- t.round_no + 1;
    fire_round_hooks t;
    List.iter (fun p -> Process.wake_if_due p ~round:t.round_no) t.procs_rev;
    Array.iter
      (fun v ->
        t.active <- v.vid;
        (match pick_ready t ~vid:v.vid with
        | None ->
            (* nothing runnable on this vCPU: idle in its swapper *)
            switch_to t v.vidle;
            add_cycles t 2_000;
            check_irqs t
        | Some p ->
            switch_to t p;
            run_quantum t p);
        (* telemetry ticker: a turn can retire past several marks at
           once — fire once per crossed mark so the interval count is
           exactly floor(instructions / period) *)
        match t.tick with
        | None -> ()
        | Some th ->
            while !(t.instrs) >= th.th_next do
              th.th_next <- th.th_next + th.th_period;
              th.th_fire ()
            done)
      t.vcpus;
    t.active <- 0
  done;
  (* flush run-slice accounting and close the spans so the trace stays
     balanced; a later run (or switch) re-opens slices as needed *)
  Array.iter (end_run_slice t) t.vcpus;
  if live () && !rounds >= max_rounds then
    raise (Guest_panic "scheduler round budget exhausted")

let run_process_solo t (p : Process.t) =
  let others_live =
    List.exists (fun (q : Process.t) -> q != p && not (Process.is_exited q)) t.procs_rev
  in
  if others_live then invalid_arg "Os.run_process_solo: other processes are live";
  run t

(* ---------------- snapshot: freeze / thaw ---------------- *)

(* The frozen image captures everything [run] consults that cannot be
   re-derived from guest RAM: scheduler and process state, timers,
   traps, EPT directory shapes, and the physical pool itself.  Caches
   (TLBs, decode lines, superblocks) and registered hooks are
   deliberately absent — they are rebuilt demand-side after [thaw], and
   their metrics are restored by the snapshot codec's metrics section. *)

type frozen_proc = {
  zp_pid : int;
  zp_name : string;
  zp_cpu : int;
  zp_script : Action.t list;
  zp_state : Process.run_state;
  zp_saved_regs : (int * int * int) option; (* eip, ebp, esp *)
  zp_saved_dispatch : int list; (* front of the queue first *)
  zp_in_kernel : bool;
  zp_syscall_count : int;
  zp_last_scheduled_round : int;
  zp_mappings : (int * int) list; (* gva_page -> gpa_page, sorted *)
}

type frozen_module = {
  zm_name : string;
  zm_hidden : bool;
  zm_base : int;
  zm_code : string;
  zm_functions : (string * int * int) list; (* pname, addr, size *)
}

type frozen_timer = {
  zt_source : Irq_paths.source;
  zt_period : int;
  zt_next_at : int;
}

type frozen_vcpu = {
  zv_dirs : (int * int) list; (* EPT dir -> pool table id, sorted *)
  zv_current_pid : int;
  zv_in_interrupt : bool;
  zv_idle_last_round : int;
  zv_slice_start : int;
      (* the open run slice's start cycle: boot work before the first
         run (or the tail of an interrupted slice) is still pending
         attribution to os.run_cycles{current}, and the restored machine
         must charge the same window the uninterrupted one would *)
  zv_tags : Ept.tags;
      (* per-view generations, active view/era and the flush count: a
         restored machine's tlb.i_flushes gauge and tag validity evolve
         exactly as the uninterrupted one's would *)
}

type frozen = {
  z_config : config;
  z_tlb_on : bool;
  z_sblocks_on : bool;
  z_tagged_on : bool;
  z_cycles : int;
  z_instrs : int;
  z_round_no : int;
  z_context_switches : int;
  z_next_pid : int;
  z_next_module_base : int;
  z_data_epoch : int;
  z_trap_gen : int;
  z_global_gen : int;
  z_divergent : int list; (* view-diverged gpa pages, sorted *)
  z_ram : (int * int) list; (* gpa_page -> host frame, sorted *)
  z_phys : Phys.frozen;
  z_master_pt : (int * int) list;
  z_vcpus : frozen_vcpu list;
  z_procs : frozen_proc list; (* newest first, as [procs_rev] *)
  z_modules : frozen_module list; (* load order *)
  z_timers : frozen_timer list; (* list order: clocksource then background *)
  z_traps : int list; (* sorted *)
  z_itimers : int list; (* sorted pids *)
  z_sleep_override : int option;
}

let freeze t ~table_id =
  Array.iter
    (fun v ->
      if v.vslice <> Fc_obs.Span.none then
        invalid_arg "Os.freeze: vCPU mid-slice; snapshot only at round boundaries")
    t.vcpus;
  let freeze_proc (p : Process.t) =
    {
      zp_pid = p.Process.pid;
      zp_name = p.Process.name;
      zp_cpu = p.Process.cpu;
      zp_script = p.Process.script;
      zp_state = p.Process.state;
      zp_saved_regs =
        Option.map
          (fun (r : Cpu.regs) -> (r.Cpu.eip, r.Cpu.ebp, r.Cpu.esp))
          p.Process.saved_regs;
      zp_saved_dispatch = List.of_seq (Queue.to_seq p.Process.saved_dispatch);
      zp_in_kernel = p.Process.in_kernel;
      zp_syscall_count = p.Process.syscall_count;
      zp_last_scheduled_round = p.Process.last_scheduled_round;
      zp_mappings = Pt.mappings p.Process.page_table;
    }
  in
  {
    z_config = t.config;
    z_tlb_on = t.tlb_on;
    z_sblocks_on = t.sblocks_on;
    z_tagged_on = t.tagged_on;
    z_cycles = !(t.cycles);
    z_instrs = !(t.instrs);
    z_round_no = t.round_no;
    z_context_switches = t.context_switches;
    z_next_pid = t.next_pid;
    z_next_module_base = t.next_module_base;
    z_data_epoch = t.data_epoch;
    z_trap_gen = t.trap_gen;
    z_global_gen = t.global_gen;
    z_divergent =
      List.sort compare (Hashtbl.fold (fun p () acc -> p :: acc) t.divergent []);
    z_ram =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.ram []);
    z_phys = Phys.export t.phys;
    z_master_pt = Pt.mappings t.master_pt;
    z_vcpus =
      Array.to_list
        (Array.map
           (fun v ->
             {
               zv_dirs =
                 List.map (fun (d, tbl) -> (d, table_id tbl)) (Ept.dirs v.vept);
               zv_current_pid = v.vcurrent.Process.pid;
               zv_in_interrupt = v.vin_interrupt;
               zv_idle_last_round = v.vidle.Process.last_scheduled_round;
               zv_slice_start = v.vslice_start;
               zv_tags = Ept.freeze_tags v.vept;
             })
           t.vcpus);
    z_procs = List.map freeze_proc t.procs_rev;
    z_modules =
      List.map
        (fun m ->
          {
            zm_name = m.mod_name;
            zm_hidden = m.hidden;
            zm_base = m.unit_image.Asm.base;
            zm_code = Bytes.to_string m.unit_image.Asm.code;
            zm_functions =
              List.map
                (fun (p : Asm.placed) -> (p.Asm.pname, p.Asm.addr, p.Asm.size))
                m.unit_image.Asm.functions;
          })
        t.modules;
    z_timers =
      List.map
        (fun tm -> { zt_source = tm.source; zt_period = tm.period; zt_next_at = tm.next_at })
        t.timers;
    z_traps =
      List.sort Int.compare (Hashtbl.fold (fun a () acc -> a :: acc) t.traps []);
    z_itimers =
      List.sort Int.compare (Hashtbl.fold (fun p () acc -> p :: acc) t.itimers []);
    z_sleep_override = t.sleep_override;
  }

let thaw ?obs ~image ~table_of (z : frozen) =
  let obs = match obs with Some o -> o | None -> Fc_obs.Obs.create () in
  let metrics = Fc_obs.Obs.metrics obs in
  let master_pt = Pt.create () in
  List.iter
    (fun (gva_page, gpa_page) -> Pt.map master_pt ~gva_page ~gpa_page)
    z.z_master_pt;
  (* processes, newest first as stored: identity (and [pick_ready]'s
     tie-break order) depends on [procs_rev] order *)
  let procs_rev =
    List.map
      (fun zp ->
        let page_table = Pt.create () in
        List.iter
          (fun (gva_page, gpa_page) -> Pt.map page_table ~gva_page ~gpa_page)
          zp.zp_mappings;
        let p =
          Process.create ~cpu:zp.zp_cpu ~pid:zp.zp_pid ~name:zp.zp_name
            ~page_table zp.zp_script
        in
        p.Process.state <- zp.zp_state;
        p.Process.saved_regs <-
          Option.map
            (fun (eip, ebp, esp) -> { Cpu.eip; ebp; esp })
            zp.zp_saved_regs;
        let q = Queue.create () in
        List.iter (fun d -> Queue.push d q) zp.zp_saved_dispatch;
        p.Process.saved_dispatch <- q;
        p.Process.in_kernel <- zp.zp_in_kernel;
        p.Process.syscall_count <- zp.zp_syscall_count;
        p.Process.last_scheduled_round <- zp.zp_last_scheduled_round;
        p)
      z.z_procs
  in
  let proc_by_pid pid =
    List.find_opt (fun (p : Process.t) -> p.Process.pid = pid) procs_rev
  in
  let vcpu_arr = Array.of_list z.z_vcpus in
  let vcpus = Array.length vcpu_arr in
  if vcpus < 1 then invalid_arg "Os.thaw: no vCPUs in frozen state";
  let mk_vcpu vid =
    let zv = vcpu_arr.(vid) in
    let name = if vid = 0 then "swapper" else Printf.sprintf "swapper/%d" vid in
    let vidle = Process.create ~cpu:vid ~pid:vid ~name ~page_table:master_pt [] in
    vidle.Process.last_scheduled_round <- zv.zv_idle_last_round;
    let vept = Ept.create () in
    List.iter
      (fun (dir, id) -> Ept.install_dir vept ~dir (Some (table_of id)))
      zv.zv_dirs;
    (* tags last: the frozen view/era/generations (and flush count)
       overwrite whatever construction did, so the i_flushes gauge and
       tag validity resume exactly where the snapshot left them *)
    Ept.restore_tags vept zv.zv_tags;
    let vcurrent =
      if zv.zv_current_pid = vid then vidle
      else
        match proc_by_pid zv.zv_current_pid with
        | Some p -> p
        | None ->
            invalid_arg
              (Printf.sprintf "Os.thaw: vCPU %d current pid %d not in snapshot"
                 vid zv.zv_current_pid)
    in
    {
      vid;
      vept;
      vidle;
      vcurrent;
      vin_interrupt = zv.zv_in_interrupt;
      vslice = Fc_obs.Span.none;
      vslice_start = zv.zv_slice_start;
      vitlb = Tlb.create ~bits:8 ~payload:dummy_decode_line ();
      vdtlb = Tlb.create ~bits:8 ~payload:() ();
      vsbc =
        Tlb.create ~bits:(if z.z_sblocks_on then 12 else 0) ~payload:dummy_sblock ();
      vsb_last = None;
    }
  in
  let ram = Hashtbl.create 2048 in
  List.iter (fun (gpa_page, frame) -> Hashtbl.replace ram gpa_page frame) z.z_ram;
  let itimers = Hashtbl.create 8 in
  List.iter (fun pid -> Hashtbl.replace itimers pid ()) z.z_itimers;
  let modules =
    List.map
      (fun zm ->
        {
          mod_name = zm.zm_name;
          hidden = zm.zm_hidden;
          unit_image =
            {
              Asm.base = zm.zm_base;
              code = Bytes.of_string zm.zm_code;
              functions =
                List.map
                  (fun (pname, addr, size) -> { Asm.pname; addr; size })
                  zm.zm_functions;
            };
        })
      z.z_modules
  in
  let t =
    {
      image;
      config = z.z_config;
      obs;
      phys = Phys.create ~metrics ();
      vcpus = Array.init vcpus mk_vcpu;
      active = 0;
      ram;
      master_pt;
      page_tables =
        List.map (fun (p : Process.t) -> p.Process.page_table) procs_rev
        @ [ master_pt ];
      traps = Hashtbl.create 8;
      trap_arr = [||];
      trap_lo = max_int;
      trap_hi = min_int;
      trace = None;
      events = None;
      branch_policy = None;
      cycles = ref z.z_cycles;
      instrs = ref z.z_instrs;
      tlb_on = z.z_tlb_on;
      sblocks_on = z.z_sblocks_on;
      tagged_on = z.z_tagged_on;
      trap_gen = 0;
      divergent =
        (let d = Hashtbl.create 64 in
         List.iter (fun p -> Hashtbl.replace d p ()) z.z_divergent;
         d);
      (* deliberately not serialized: an empty registry only forfeits
         pre-stamping (first re-entries restamp once), never soundness *)
      bindings = Hashtbl.create 64;
      global_gen = z.z_global_gen;
      data_epoch = z.z_data_epoch;
      round_no = z.z_round_no;
      context_switches = z.z_context_switches;
      procs_rev;
      next_pid = z.z_next_pid;
      handler = default_handler;
      modules;
      next_module_base = z.z_next_module_base;
      timers =
        List.map
          (fun zt -> { source = zt.zt_source; period = zt.zt_period; next_at = zt.zt_next_at })
          z.z_timers;
      decode_cache = Hashtbl.create 512;
      sb_store = Hashtbl.create 512;
      at_round = [];
      rewriter = None;
      itimers;
      symbols = Hashtbl.create 2048;
      sleep_override = z.z_sleep_override;
      faults = None;
      tick = None;
      run_cycles_f = Fc_obs.Metrics.counter_family metrics ~subsystem:"os" "run_cycles";
      run_slices_f = Fc_obs.Metrics.counter_family metrics ~subsystem:"os" "run_slices";
      tlb_i_hits = Fc_obs.Metrics.counter metrics ~subsystem:"tlb" "i_hits";
      tlb_i_misses = Fc_obs.Metrics.counter metrics ~subsystem:"tlb" "i_misses";
      tlb_d_hits = Fc_obs.Metrics.counter metrics ~subsystem:"tlb" "d_hits";
      tlb_d_misses = Fc_obs.Metrics.counter metrics ~subsystem:"tlb" "d_misses";
      sb_built = Fc_obs.Metrics.counter metrics ~subsystem:"sb" "blocks_built";
      sb_hits = Fc_obs.Metrics.counter metrics ~subsystem:"sb" "hits";
      sb_invals = Fc_obs.Metrics.counter metrics ~subsystem:"sb" "invalidations";
      sb_chains = Fc_obs.Metrics.counter metrics ~subsystem:"sb" "chain_follows";
      sb_restamps = Fc_obs.Metrics.counter metrics ~subsystem:"sb" "restamps";
      tlb_flushes_f =
        Fc_obs.Metrics.counter_family metrics ~subsystem:"tlb" "flushes";
    }
  in
  Phys.import t.phys z.z_phys;
  Phys.set_release_hook t.phys
    (Some
       (fun frame ->
         Hashtbl.remove t.decode_cache frame;
         Hashtbl.remove t.sb_store frame));
  Fc_obs.Obs.set_clock obs (fun () -> !(t.cycles));
  let gauge name f = Fc_obs.Metrics.gauge metrics ~subsystem:"os" name f in
  gauge "cycles" (fun () -> !(t.cycles));
  gauge "instructions" (fun () -> !(t.instrs));
  gauge "rounds" (fun () -> t.round_no);
  gauge "context_switches" (fun () -> t.context_switches);
  gauge "vcpus" (fun () -> Array.length t.vcpus);
  gauge "processes" (fun () -> List.length t.procs_rev);
  gauge "decode_cache_frames" (fun () -> Hashtbl.length t.decode_cache);
  let tlb_gauge name f = Fc_obs.Metrics.gauge metrics ~subsystem:"tlb" name f in
  tlb_gauge "i_flushes" (fun () ->
      Array.fold_left (fun acc v -> acc + Ept.flushes v.vept) 0 t.vcpus);
  tlb_gauge "d_flushes" (fun () -> t.data_epoch);
  (* traps: refill the set, rebuild the sorted mirror, then pin the
     generation back to the frozen value (superblock caches are empty, so
     only monotonic faithfulness matters) *)
  List.iter (fun a -> Hashtbl.replace t.traps a ()) z.z_traps;
  rebuild_traps t;
  t.trap_gen <- z.z_trap_gen;
  (* symbols: base image first, then modules in load order — the same
     registration sequence [create]/[load_module] produced *)
  register_symbols t (Image.unit_image image);
  List.iter (fun m -> register_symbols t m.unit_image) t.modules;
  t
