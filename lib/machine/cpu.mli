(** The virtual CPU: a fetch/decode/execute loop over guest-translated
    memory.

    The CPU executes kernel paths only (user-mode execution is modelled by
    the OS as a cycle cost).  It maintains the three registers the paper's
    recovery mechanism reads — [eip], [ebp], [esp] — and materializes real
    stack frames in guest memory: [call] pushes a return address,
    [push ebp; mov ebp, esp] links the frame chain, so the hypervisor's
    rbp-chain backtrace works exactly as in Algorithm 1.

    Every exit condition becomes an {!exit_reason} handed back to the OS,
    which routes hypervisor-relevant ones (breakpoints, invalid opcodes)
    to the registered VM-exit handler. *)

type regs = { mutable eip : int; mutable ebp : int; mutable esp : int }

val copy_regs : regs -> regs

val sentinel_return : int
(** The pseudo return address marking "return to user mode" (0). *)

type fault =
  | Unmapped_code of int     (** fetch from an unmapped page (EPT violation) *)
  | Unmapped_data of int     (** stack access to an unmapped page *)
  | Dispatch_underflow of int
      (** an indirect-call site fired with an empty dispatch queue *)
  | Runaway
      (** instruction budget exhausted — e.g. execution fell into UD2
          fill at an odd offset and walked it as valid [Or_mem]s *)

type exit_reason =
  | Breakpoint of int
      (** [eip] reached a hypervisor trap address (checked {e before}
          executing the instruction); resume with [skip_bp = Some addr] *)
  | Invalid_opcode
      (** UD2 or an undecodable byte at [eip]; [eip] unchanged *)
  | Blocked of int  (** a [Yield id] executed; [eip] already advanced *)
  | Returned        (** the outermost frame returned to the sentinel *)
  | Fault of fault

val pp_exit : Format.formatter -> exit_reason -> unit

type decode_result =
  | D_ok of Fc_isa.Insn.t * int
  | D_invalid   (** undecodable bytes at the address *)
  | D_unmapped  (** the address does not translate (EPT violation) *)

val decoder_of_fetch : (int -> int option) -> int -> decode_result
(** Straightforward decoder over a byte reader (no caching). *)

type event =
  | Ev_call of int  (** a call executed; the target address *)
  | Ev_return       (** a ret/iret executed (excluding the final return to
                        user mode) *)

(** {2 Superblocks}

    A superblock is one basic block decoded {e once} into flat parallel
    arrays of micro-op records — no per-instruction closures, no
    re-decoding — and executed straight-line: the trap probe runs only at
    block entry, never between ops.  The builder (the OS) guarantees the
    safety invariants that make that sound: every instruction of a block
    lies within one host frame, no instruction at index [>= 1] is a trap
    address, and the [(epoch, frame version, trap generation)] snapshot is
    re-validated before every execution (see DESIGN.md §10). *)

type sop =
  | S_step          (** Nop/Alu/Or_mem/Int_sw: advance eip only *)
  | S_push_ebp
  | S_mov_ebp_esp
  | S_leave
  | S_jcc           (** arg = taken target; falls through in-block *)
  | S_jmp           (** arg = target; ends the block *)
  | S_call          (** arg = target; ends the block *)
  | S_call_ind
  | S_ret           (** ret/iret (identical semantics here) *)
  | S_yield         (** arg = yield id *)
  | S_ud2

type sblock = {
  sb_start : int;       (** address of the first instruction *)
  sb_ops : sop array;
  sb_pcs : int array;   (** per-op instruction address *)
  sb_lens : int array;  (** per-op byte length *)
  sb_args : int array;  (** per-op argument (targets, yield id) *)
  sb_steps : int array;
      (** [sb_steps.(i)] = length of the consecutive [S_step] run starting
          at op [i] ([0] when op [i] is not a step) — the executor retires
          a whole run at once when no per-instruction tracer is armed *)
  sb_exit : int;
      (** static successor pc (fall-through split, direct jump/call), or
          [-1] when the successor is dynamic — drives block chaining *)
  mutable sb_tag : int;
      (** [Ept.tag] the block was last validated under; a re-entered
          view's blocks revalidate by compare, and the owner restamps the
          field when a generation bump left this page's translation
          unchanged, so view switches do not force re-decodes *)
  mutable sb_tag2 : int;
  mutable sb_tag3 : int;
      (** older validation tags, MRU-ordered — a 3-deep memo (hardware
          PCID-cache style) letting a shared-frame block rotate through
          the full kernel view plus two app views with zero restamps; a
          tag minted under any bumped generation or rolled era can never
          match again, so a stale memo entry is inert, never unsound *)
  mutable sb_ggen : int;
      (** the x86 global-page bit, generation-stamped: [>= 0] iff the
          block's page has never been remapped by any kernel view, so
          its translation is view-invariant and validity skips the tag
          check; [-1] on divergent pages and whenever tags are off *)
  sb_frame : int;       (** host frame the block decoded from *)
  sb_version : int;     (** [Phys_mem.version] of [sb_frame] at build time *)
  mutable sb_trap_gen : int;
      (** trap-set generation last validated under; the owner restamps it
          when a trap-set change left the block's interior trap-free *)
  mutable sb_next : sblock option;  (** chained block at [sb_exit] *)
}

val run :
  decode:(int -> decode_result) ->
  read_u32:(int -> int option) ->
  write_u32:(int -> int -> unit) ->
  is_trap:(int -> bool) ->
  trace:(int -> int -> unit) option ->
  ?events:(event -> unit) ->
  ?branch:(int -> bool) ->
  cycles:int ref ->
  ?instrs:int ref ->
  dispatch:int Queue.t ->
  ?skip_bp:int ->
  ?sblocks:(int -> sblock option) ->
  ?max_instr:int ->
  regs ->
  exit_reason
(** Execute starting at [regs.eip] until an exit condition.  [regs] is
    mutated in place so the caller can save/restore process contexts.
    [decode] supplies instructions (typically through the OS's per-frame
    decode cache).  [branch] is the conditional-jump oracle, queried with
    the Jcc's address; the default takes every conditional jump (cold
    blocks skipped).  [trace] sees every executed instruction as
    [(address, byte length)].  [skip_bp] suppresses the trap check for the
    first instruction when resuming from a [Breakpoint] at that address.
    [instrs], when given, is incremented once per executed instruction
    (retired-instruction counting, independent of the cycle cost model).
    [sblocks], when given, is consulted with the pc at every block
    boundary: a returned block (which must start at that pc and be valid —
    the CPU does not re-check the snapshot) executes straight-line;
    [None] falls back to single-instruction decode/execute for that
    instruction.  Either way every observable (cycles, retired count,
    traces, events, register file at every step, exit reasons) is
    identical to running without [sblocks].  [max_instr] defaults to
    2,000,000. *)

val push : write_u32:(int -> int -> unit) -> regs -> int -> unit
(** Push a 32-bit value (used by the OS to seed the sentinel return
    address, and by attack models to build fake frames). *)
