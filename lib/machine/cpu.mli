(** The virtual CPU: a fetch/decode/execute loop over guest-translated
    memory.

    The CPU executes kernel paths only (user-mode execution is modelled by
    the OS as a cycle cost).  It maintains the three registers the paper's
    recovery mechanism reads — [eip], [ebp], [esp] — and materializes real
    stack frames in guest memory: [call] pushes a return address,
    [push ebp; mov ebp, esp] links the frame chain, so the hypervisor's
    rbp-chain backtrace works exactly as in Algorithm 1.

    Every exit condition becomes an {!exit_reason} handed back to the OS,
    which routes hypervisor-relevant ones (breakpoints, invalid opcodes)
    to the registered VM-exit handler. *)

type regs = { mutable eip : int; mutable ebp : int; mutable esp : int }

val copy_regs : regs -> regs

val sentinel_return : int
(** The pseudo return address marking "return to user mode" (0). *)

type fault =
  | Unmapped_code of int     (** fetch from an unmapped page (EPT violation) *)
  | Unmapped_data of int     (** stack access to an unmapped page *)
  | Dispatch_underflow of int
      (** an indirect-call site fired with an empty dispatch queue *)
  | Runaway
      (** instruction budget exhausted — e.g. execution fell into UD2
          fill at an odd offset and walked it as valid [Or_mem]s *)

type exit_reason =
  | Breakpoint of int
      (** [eip] reached a hypervisor trap address (checked {e before}
          executing the instruction); resume with [skip_bp = Some addr] *)
  | Invalid_opcode
      (** UD2 or an undecodable byte at [eip]; [eip] unchanged *)
  | Blocked of int  (** a [Yield id] executed; [eip] already advanced *)
  | Returned        (** the outermost frame returned to the sentinel *)
  | Fault of fault

val pp_exit : Format.formatter -> exit_reason -> unit

type decode_result =
  | D_ok of Fc_isa.Insn.t * int
  | D_invalid   (** undecodable bytes at the address *)
  | D_unmapped  (** the address does not translate (EPT violation) *)

val decoder_of_fetch : (int -> int option) -> int -> decode_result
(** Straightforward decoder over a byte reader (no caching). *)

type event =
  | Ev_call of int  (** a call executed; the target address *)
  | Ev_return       (** a ret/iret executed (excluding the final return to
                        user mode) *)

val run :
  decode:(int -> decode_result) ->
  read_u32:(int -> int option) ->
  write_u32:(int -> int -> unit) ->
  is_trap:(int -> bool) ->
  trace:(int -> int -> unit) option ->
  ?events:(event -> unit) ->
  ?branch:(int -> bool) ->
  cycles:int ref ->
  ?instrs:int ref ->
  dispatch:int Queue.t ->
  ?skip_bp:int ->
  ?max_instr:int ->
  regs ->
  exit_reason
(** Execute starting at [regs.eip] until an exit condition.  [regs] is
    mutated in place so the caller can save/restore process contexts.
    [decode] supplies instructions (typically through the OS's per-frame
    decode cache).  [branch] is the conditional-jump oracle, queried with
    the Jcc's address; the default takes every conditional jump (cold
    blocks skipped).  [trace] sees every executed instruction as
    [(address, byte length)].  [skip_bp] suppresses the trap check for the
    first instruction when resuming from a [Breakpoint] at that address.
    [instrs], when given, is incremented once per executed instruction
    (retired-instruction counting, independent of the cycle cost model).
    [max_instr] defaults to 2,000,000. *)

val push : write_u32:(int -> int -> unit) -> regs -> int -> unit
(** Push a 32-bit value (used by the OS to seed the sentinel return
    address, and by attack models to build fake frames). *)
