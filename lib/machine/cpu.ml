module Insn = Fc_isa.Insn

type regs = { mutable eip : int; mutable ebp : int; mutable esp : int }

let copy_regs r = { eip = r.eip; ebp = r.ebp; esp = r.esp }
let sentinel_return = 0

type fault =
  | Unmapped_code of int
  | Unmapped_data of int
  | Dispatch_underflow of int
  | Runaway

type exit_reason =
  | Breakpoint of int
  | Invalid_opcode
  | Blocked of int
  | Returned
  | Fault of fault

let pp_exit ppf = function
  | Breakpoint a -> Format.fprintf ppf "breakpoint@0x%x" a
  | Invalid_opcode -> Format.pp_print_string ppf "invalid-opcode"
  | Blocked id -> Format.fprintf ppf "blocked(%d)" id
  | Returned -> Format.pp_print_string ppf "returned"
  | Fault (Unmapped_code a) -> Format.fprintf ppf "fault: unmapped code 0x%x" a
  | Fault (Unmapped_data a) -> Format.fprintf ppf "fault: unmapped data 0x%x" a
  | Fault (Dispatch_underflow a) -> Format.fprintf ppf "fault: dispatch underflow at 0x%x" a
  | Fault Runaway -> Format.pp_print_string ppf "fault: runaway execution"

let push ~write_u32 regs v =
  regs.esp <- regs.esp - 4;
  write_u32 regs.esp v

type decode_result = D_ok of Insn.t * int | D_invalid | D_unmapped

let decoder_of_fetch fetch pc =
  match fetch pc with
  | None -> D_unmapped
  | Some _ -> (
      match Insn.decode ~read:fetch pc with
      | Ok (i, len) -> D_ok (i, len)
      | Error (Insn.Unknown_opcode _) | Error Insn.Truncated -> D_invalid)

type event = Ev_call of int | Ev_return

let run ~decode ~read_u32 ~write_u32 ~is_trap ~trace ?events
    ?(branch = fun _ -> true) ~cycles ?instrs ~dispatch ?skip_bp
    ?(max_instr = 2_000_000) regs =
  let count_instr =
    match instrs with Some r -> fun () -> incr r | None -> fun () -> ()
  in
  let emit e = match events with Some f -> f e | None -> () in
  let skip_bp = ref skip_bp in
  let exception Stop of exit_reason in
  let pop () =
    match read_u32 regs.esp with
    | Some v ->
        regs.esp <- regs.esp + 4;
        v
    | None -> raise (Stop (Fault (Unmapped_data regs.esp)))
  in
  let push v = push ~write_u32 regs v in
  try
    for _ = 1 to max_instr do
      let pc = regs.eip in
      (match !skip_bp with
      | Some a when a = pc -> skip_bp := None
      | Some _ | None -> if is_trap pc then raise (Stop (Breakpoint pc)));
      match decode pc with
      | D_unmapped -> raise (Stop (Fault (Unmapped_code pc)))
      | D_invalid -> raise (Stop Invalid_opcode)
      | D_ok (insn, len) -> (
          (match trace with Some f -> f pc len | None -> ());
          count_instr ();
          incr cycles;
          match insn with
          | Insn.Ud2 -> raise (Stop Invalid_opcode)
          | Insn.Push_ebp ->
              push regs.ebp;
              regs.eip <- pc + len
          | Insn.Mov_ebp_esp ->
              regs.ebp <- regs.esp;
              regs.eip <- pc + len
          | Insn.Leave ->
              regs.esp <- regs.ebp;
              regs.ebp <- pop ();
              regs.eip <- pc + len
          | Insn.Ret ->
              incr cycles;
              let target = pop () in
              if target = sentinel_return then raise (Stop Returned)
              else begin
                emit Ev_return;
                regs.eip <- target
              end
          | Insn.Iret ->
              incr cycles;
              let target = pop () in
              if target = sentinel_return then raise (Stop Returned)
              else begin
                emit Ev_return;
                regs.eip <- target
              end
          | Insn.Call_rel d ->
              incr cycles;
              push (pc + len);
              regs.eip <- pc + len + d;
              emit (Ev_call regs.eip)
          | Insn.Call_indirect ->
              incr cycles;
              if Queue.is_empty dispatch then
                raise (Stop (Fault (Dispatch_underflow pc)))
              else begin
                let target = Queue.pop dispatch in
                push (pc + len);
                regs.eip <- target;
                emit (Ev_call target)
              end
          | Insn.Jmp_rel d -> regs.eip <- pc + len + d
          | Insn.Jcc_rel d ->
              regs.eip <- (if branch pc then pc + len + d else pc + len)
          | Insn.Yield id ->
              regs.eip <- pc + len;
              raise (Stop (Blocked id))
          | Insn.Nop | Insn.Alu _ | Insn.Or_mem _ | Insn.Int_sw _ ->
              regs.eip <- pc + len)
    done;
    Fault Runaway
  with Stop r -> r
