module Insn = Fc_isa.Insn

type regs = { mutable eip : int; mutable ebp : int; mutable esp : int }

let copy_regs r = { eip = r.eip; ebp = r.ebp; esp = r.esp }
let sentinel_return = 0

type fault =
  | Unmapped_code of int
  | Unmapped_data of int
  | Dispatch_underflow of int
  | Runaway

type exit_reason =
  | Breakpoint of int
  | Invalid_opcode
  | Blocked of int
  | Returned
  | Fault of fault

let pp_exit ppf = function
  | Breakpoint a -> Format.fprintf ppf "breakpoint@0x%x" a
  | Invalid_opcode -> Format.pp_print_string ppf "invalid-opcode"
  | Blocked id -> Format.fprintf ppf "blocked(%d)" id
  | Returned -> Format.pp_print_string ppf "returned"
  | Fault (Unmapped_code a) -> Format.fprintf ppf "fault: unmapped code 0x%x" a
  | Fault (Unmapped_data a) -> Format.fprintf ppf "fault: unmapped data 0x%x" a
  | Fault (Dispatch_underflow a) -> Format.fprintf ppf "fault: dispatch underflow at 0x%x" a
  | Fault Runaway -> Format.pp_print_string ppf "fault: runaway execution"

let push ~write_u32 regs v =
  regs.esp <- regs.esp - 4;
  write_u32 regs.esp v

type decode_result = D_ok of Insn.t * int | D_invalid | D_unmapped

let decoder_of_fetch fetch pc =
  match fetch pc with
  | None -> D_unmapped
  | Some _ -> (
      match Insn.decode ~read:fetch pc with
      | Ok (i, len) -> D_ok (i, len)
      | Error (Insn.Unknown_opcode _) | Error Insn.Truncated -> D_invalid)

type event = Ev_call of int | Ev_return

(* ---------------- superblocks ---------------- *)

(* One decoded instruction of a superblock, flattened into a micro-op
   discriminant plus parallel arrays (pc, byte length, argument) — no
   per-instruction closures, no re-decoding.  The executor below retires
   each op with exactly the same observable effects (cycles, retired
   count, trace callbacks, events, register/stack mutations, eip at every
   step) as the per-instruction path; any divergence is a bug the
   differential tests in test/differential.ml are built to catch. *)
type sop =
  | S_step  (* Nop / Alu / Or_mem / Int_sw: advance eip only *)
  | S_push_ebp
  | S_mov_ebp_esp
  | S_leave
  | S_jcc  (* arg = taken target; falls through in-block otherwise *)
  | S_jmp  (* arg = target *)
  | S_call  (* arg = target *)
  | S_call_ind
  | S_ret  (* ret and iret: identical semantics at this modelling level *)
  | S_yield  (* arg = yield id *)
  | S_ud2

type sblock = {
  sb_start : int;  (* guest-virtual address of the first instruction *)
  sb_ops : sop array;
  sb_pcs : int array;
  sb_lens : int array;
  sb_args : int array;
  sb_steps : int array;
      (* sb_steps.(i) = length of the run of consecutive S_step ops
         starting at i (0 when op i is not S_step): a pure-step run has no
         observable effect beyond the three counters and the final eip, so
         the executor retires it in one strike when no tracer is armed *)
  sb_exit : int;
      (* static successor pc when the block always continues at one known
         address (fall-through split, direct jump, direct call); -1 when
         the successor is dynamic (ret, indirect call, yield, ud2) *)
  mutable sb_tag : int;
      (* Ept.tag the block was last validated under; on the tagged path a
         re-entered view's blocks match by compare, and on the untagged
         path the block is restamped in place when a generation bump turns
         out not to have changed this page's translation (a view switched
         away and back) *)
  mutable sb_tag2 : int;
  mutable sb_tag3 : int;
      (* older validation tags, MRU-ordered — a 3-deep memo (hardware
         PCID-cache style) so a shared-frame block entered from the full
         kernel view and two app views in rotation revalidates by compare
         every way instead of paying a re-translation restamp on every
         switch; a fourth concurrently-hot view degrades to one restamp
         per switch-in, never to a rebuild *)
  mutable sb_ggen : int;
      (* the x86 global-page bit, generation-stamped: >= 0 iff the block
         was built from a page no kernel view has ever remapped, whose
         translation is therefore identical under every view — validity
         then skips the tag check entirely (one compare against the
         owner's global generation, bumped by bare full flushes).  -1 on
         divergent pages and whenever tags are off. *)
  sb_frame : int;  (* host frame the block decoded from *)
  sb_version : int;  (* Phys_mem.version of sb_frame at build time *)
  mutable sb_trap_gen : int;
      (* trap-set generation the block was last validated under; restamped
         when a trap-set change left the block's interior trap-free (entry
         traps are probed by the outer loop, not the block) *)
  mutable sb_next : sblock option;  (* chained block at sb_exit *)
}

let run ~decode ~read_u32 ~write_u32 ~is_trap ~trace ?events
    ?(branch = fun _ -> true) ~cycles ?instrs ~dispatch ?skip_bp ?sblocks
    ?(max_instr = 2_000_000) regs =
  let instr_ctr = match instrs with Some r -> r | None -> ref 0 in
  let emit e = match events with Some f -> f e | None -> () in
  let skip_bp = ref skip_bp in
  let exception Stop of exit_reason in
  let pop () =
    match read_u32 regs.esp with
    | Some v ->
        regs.esp <- regs.esp + 4;
        v
    | None -> raise (Stop (Fault (Unmapped_data regs.esp)))
  in
  let push v = push ~write_u32 regs v in
  let executed = ref 0 in
  let step_classic pc =
    match decode pc with
    | D_unmapped -> raise (Stop (Fault (Unmapped_code pc)))
    | D_invalid -> raise (Stop Invalid_opcode)
    | D_ok (insn, len) -> (
        (match trace with Some f -> f pc len | None -> ());
        incr instr_ctr;
        incr executed;
        incr cycles;
        match insn with
        | Insn.Ud2 -> raise (Stop Invalid_opcode)
        | Insn.Push_ebp ->
            push regs.ebp;
            regs.eip <- pc + len
        | Insn.Mov_ebp_esp ->
            regs.ebp <- regs.esp;
            regs.eip <- pc + len
        | Insn.Leave ->
            regs.esp <- regs.ebp;
            regs.ebp <- pop ();
            regs.eip <- pc + len
        | Insn.Ret ->
            incr cycles;
            let target = pop () in
            if target = sentinel_return then raise (Stop Returned)
            else begin
              emit Ev_return;
              regs.eip <- target
            end
        | Insn.Iret ->
            incr cycles;
            let target = pop () in
            if target = sentinel_return then raise (Stop Returned)
            else begin
              emit Ev_return;
              regs.eip <- target
            end
        | Insn.Call_rel d ->
            incr cycles;
            push (pc + len);
            regs.eip <- pc + len + d;
            emit (Ev_call regs.eip)
        | Insn.Call_indirect ->
            incr cycles;
            if Queue.is_empty dispatch then
              raise (Stop (Fault (Dispatch_underflow pc)))
            else begin
              let target = Queue.pop dispatch in
              push (pc + len);
              regs.eip <- target;
              emit (Ev_call target)
            end
        | Insn.Jmp_rel d -> regs.eip <- pc + len + d
        | Insn.Jcc_rel d ->
            regs.eip <- (if branch pc then pc + len + d else pc + len)
        | Insn.Yield id ->
            regs.eip <- pc + len;
            raise (Stop (Blocked id))
        | Insn.Nop | Insn.Alu _ | Insn.Or_mem _ | Insn.Int_sw _ ->
            regs.eip <- pc + len)
  in
  (* Straight-line execution of a pre-validated block: no trap probe, no
     decode, no per-instruction dispatch through closures — just parallel
     array walks.  eip is kept exact at every op so a Stop raised mid-block
     (unmapped stack slot, yield, ud2, dispatch underflow) leaves the same
     register file as the classic path would. *)
  let untraced = match trace with None -> true | Some _ -> false in
  let exec_block (b : sblock) =
    let ops = b.sb_ops
    and pcs = b.sb_pcs
    and lens = b.sb_lens
    and args = b.sb_args
    and steps = b.sb_steps in
    let n = Array.length ops in
    let i = ref 0 in
    let continue_ = ref true in
    while !continue_ && !i < n && !executed < max_instr do
      let k = !i in
      let st = Array.unsafe_get steps k in
      if st > 0 && untraced then begin
        (* a run of pure steps: observable state after r of them is just
           the three counters plus eip at the next instruction, so retire
           the whole run (clipped to the instruction budget) at once *)
        let r = min st (max_instr - !executed) in
        instr_ctr := !instr_ctr + r;
        executed := !executed + r;
        cycles := !cycles + r;
        let last = k + r - 1 in
        regs.eip <- Array.unsafe_get pcs last + Array.unsafe_get lens last;
        i := k + r
      end
      else begin
      let pc = Array.unsafe_get pcs k in
      let len = Array.unsafe_get lens k in
      (match trace with Some f -> f pc len | None -> ());
      incr instr_ctr;
      incr executed;
      incr cycles;
      (match Array.unsafe_get ops k with
      | S_step -> regs.eip <- pc + len
      | S_push_ebp ->
          push regs.ebp;
          regs.eip <- pc + len
      | S_mov_ebp_esp ->
          regs.ebp <- regs.esp;
          regs.eip <- pc + len
      | S_leave ->
          regs.esp <- regs.ebp;
          regs.ebp <- pop ();
          regs.eip <- pc + len
      | S_jcc ->
          if branch pc then begin
            regs.eip <- Array.unsafe_get args k;
            continue_ := false
          end
          else regs.eip <- pc + len
      | S_jmp ->
          regs.eip <- Array.unsafe_get args k;
          continue_ := false
      | S_call ->
          incr cycles;
          push (pc + len);
          regs.eip <- Array.unsafe_get args k;
          emit (Ev_call regs.eip);
          continue_ := false
      | S_call_ind ->
          incr cycles;
          if Queue.is_empty dispatch then
            raise (Stop (Fault (Dispatch_underflow pc)))
          else begin
            let target = Queue.pop dispatch in
            push (pc + len);
            regs.eip <- target;
            emit (Ev_call target);
            continue_ := false
          end
      | S_ret ->
          incr cycles;
          let target = pop () in
          if target = sentinel_return then raise (Stop Returned)
          else begin
            emit Ev_return;
            regs.eip <- target;
            continue_ := false
          end
      | S_yield ->
          regs.eip <- pc + len;
          raise (Stop (Blocked (Array.unsafe_get args k)))
      | S_ud2 -> raise (Stop Invalid_opcode));
      incr i
      end
    done
  in
  try
    (match sblocks with
    | None ->
        while !executed < max_instr do
          let pc = regs.eip in
          (match !skip_bp with
          | Some a when a = pc -> skip_bp := None
          | Some _ | None -> if is_trap pc then raise (Stop (Breakpoint pc)));
          step_classic pc
        done
    | Some find ->
        while !executed < max_instr do
          let pc = regs.eip in
          (match !skip_bp with
          | Some a when a = pc -> skip_bp := None
          | Some _ | None -> if is_trap pc then raise (Stop (Breakpoint pc)));
          match find pc with
          | Some b -> exec_block b
          | None -> step_classic pc
        done);
    Fault Runaway
  with Stop r -> r
