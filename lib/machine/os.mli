(** The guest operating system simulation — scheduler, syscalls,
    interrupts, module loading — running over the vCPU, guest page
    tables and the EPT.

    This is the "guest VM" of the paper.  The hypervisor side
    (FACE-CHANGE) observes it only through the narrow interface a real
    hypervisor has: EPT manipulation, breakpoint traps on guest addresses,
    invalid-opcode VM exits, and guest-physical memory reads (VMI). *)

type clocksource = Fc_kernel.Irq_paths.clocksource

type config = {
  clocksource : clocksource;
      (** [Acpi_pm] in the profiling environment (QEMU), [Kvmclock] at
          runtime (KVM) — the source of the paper's benign recovery *)
  timer_period : int;  (** cycles between timer interrupts *)
  quantum : int;       (** actions per scheduling quantum *)
  wake_delay : int;    (** scheduler rounds a blocked process sleeps *)
  background_irqs : (Fc_kernel.Irq_paths.source * int) list;
      (** environment interrupt mix: (source, period in cycles) *)
}

val default_config : config
val profiling_config : config
(** QEMU-like environment: ACPI PM clocksource, a background mix with
    network/keyboard/disk interrupts so the interrupt profile matches a
    live system. *)

val runtime_config : config
(** KVM-like environment: kvmclock clocksource. *)

exception Guest_panic of string
(** Raised when a kernel path faults and no handler recovers — the
    paper's "violation may crash the application or even panic the
    kernel" outcome when recovery is disabled. *)

type t

(* ---------------- construction ---------------- *)

val create :
  ?config:config -> ?vcpus:int -> ?obs:Fc_obs.Obs.t -> ?tlb:bool ->
  ?sblocks:bool -> ?tagged:bool -> Fc_kernel.Image.t -> t
(** Boots the guest: lays the base kernel image into guest-physical
    frames, builds one identity EPT {e per vCPU} (default 1, max 8 — the
    paper's §V-C extension), creates one idle process per vCPU
    ("swapper", "swapper/1", …) with per-CPU current-task pointers, and
    loads the default modules from
    {!Fc_kernel.Catalog.module_functions}.

    The guest owns an observability hub ([obs], freshly created unless
    given): its trace clock is the guest cycle counter, physical memory
    and scheduler instruments register on its metrics registry, and every
    layer later attached to this guest (hypervisor, FACE-CHANGE) shares
    it.

    [tlb] (default [true]) enables the per-vCPU software TLBs on the
    guest-memory fast paths (see DESIGN.md "Translation fast path").
    Disabling it forces every access down the full two-level walk —
    guest-visible behavior is identical either way (the benchmark's
    [--no-tlb] baseline and the coherence tests rely on that); only the
    [tlb.*] metrics and wall-clock speed differ.

    [sblocks] (default [false]) enables decode-once superblocks on the
    execute loop (DESIGN.md §10): each basic block is decoded once into a
    flat micro-op array, cached per-vCPU keyed by start address like the
    iTLB, chained across direct jumps/calls, and executed straight-line
    with the trap probe only at block boundaries.  Invalidation rides the
    existing machinery — the EPT translation epoch (re-validated against
    the current translation, so a view switching away and back restamps
    warm blocks instead of rebuilding them, helped by a per-frame
    retention store), the backing frame's {!Fc_mem.Phys_mem.version}
    (COW breaks and recovery writes), and a trap-set generation
    (restamped when a trap change leaves a block's interior clear) — so
    guest
    behavior is bit-identical with the toggle on or off (the differential
    harness in test/differential.ml enforces this across the whole
    {[sblocks] × [tlb]} matrix); only the [sb.*] metrics and wall-clock
    speed differ.  Orthogonal to [tlb].

    [tagged] (default [true]) enables view-tagged translation caching,
    the software analogue of VPID/PCID: cached translations (TLB entries,
    superblock stamps) carry a packed [(era, view, generation)] tag
    ({!Fc_mem.Ept.tag}) and the facechange layer switches kernel views by
    changing the active tag ({!Fc_mem.Ept.set_view} + quiet directory
    installs) instead of bumping generations — so a switch between two
    already-seen views flushes nothing and re-entry revalidates by
    compare.  With [tagged:false] every view switch bumps the active
    generation exactly as the pre-tag global epoch did.  Guest-visible
    behavior, instruction and cycle counts are identical either way (the
    differential harness enforces the full {[tagged] × [sblocks] ×
    [tlb]} matrix); only the [tlb.*]/[sb.*] metrics and wall-clock speed
    differ. *)

val obs : t -> Fc_obs.Obs.t
(** The guest's observability hub. *)

val vcpu_count : t -> int

val active_vcpu_id : t -> int
(** The vCPU currently executing; inside a VM-exit handler this is the
    vCPU that trapped (the simulation interleaves vCPUs at quantum
    granularity, so it is always well defined). *)

val image : t -> Fc_kernel.Image.t
val config : t -> config
val phys : t -> Fc_mem.Phys_mem.t

val ept : t -> Fc_mem.Ept.t
(** The {e active} vCPU's EPT — inside a VM-exit handler, the trapping
    vCPU's (which is what per-vCPU view switching manipulates). *)

val ept_of : t -> vid:int -> Fc_mem.Ept.t

val tagged_on : t -> bool
(** Whether view-tagged translation caching is enabled (the [tagged]
    creation flag) — the facechange layer consults this to pick the
    retag-only or legacy bump-every-directory switch-in path. *)

(* ---------------- processes ---------------- *)

val spawn : ?cpu:int -> t -> name:string -> Action.t list -> Process.t
(** Spawn a process; pinned to [cpu] if given, else assigned round-robin
    across the vCPUs. *)

val processes : t -> Process.t list
val find_process : t -> pid:int -> Process.t option
val current : t -> Process.t

val current_of : t -> vid:int -> Process.t
(** The process currently scheduled on a given vCPU (its idle task when
    nothing is runnable there) — what the telemetry sampler attributes a
    profiler tick to. *)

val in_interrupt : t -> bool

(* ---------------- modules ---------------- *)

type module_info = {
  mod_name : string;
  unit_image : Fc_isa.Asm.unit_image;
  mutable hidden : bool;
}

val load_module : t -> string -> module_info
(** Load a default module by catalog name. *)

val load_module_fns : t -> name:string -> Fc_kernel.Kfunc.t list -> module_info
(** Load arbitrary module code (rootkits). *)

val hide_module : t -> string -> unit
(** Unlink from the guest module list without unmapping the code —
    KBeast-style self-hiding.  VMI traversal no longer sees it. *)

val modules : t -> module_info list
(** OS-side ground truth, including hidden modules. *)

val resolve : t -> string -> int option
(** Resolve a function name to its guest address, searching the base
    kernel then loaded modules (including hidden ones — this is the OS's
    own view, not VMI's). *)

val resolve_exn : t -> string -> int

(* ---------------- hypervisor-facing surface ---------------- *)

type vm_exit =
  | Exit_breakpoint of int
  | Exit_invalid_opcode

type exit_action =
  | Resume
  | Panic of string

val set_exit_handler : t -> (t -> Cpu.regs -> vm_exit -> exit_action) -> unit
(** FACE-CHANGE's VM-exit dispatch (Algorithm 1).  The default handler
    resumes breakpoints and panics on invalid opcodes. *)

val set_trap : t -> int -> unit
val clear_trap : t -> int -> unit
val trap_addresses : t -> int list

type fault_hooks = {
  fh_trap_miss : int -> bool;
      (** consulted when execution reaches a set trap address; returning
          [true] swallows the breakpoint — the guest runs through it as if
          the hypervisor never armed it (a missed [#BP] on
          [__switch_to]) *)
  fh_pre_action : unit -> unit;
      (** fires before each scripted action of the running process; the
          fault injector uses it to apply due faults in the context of the
          process that will be charged for them *)
}
(** Fault-injection hooks (see [lib/faults]).  Zero-cost when disabled:
    the hot paths pay one option match, same contract as the obs armed
    guard. *)

val set_fault_hooks : t -> fault_hooks option -> unit

val arm_tick : t -> period:int -> (unit -> unit) -> unit
(** Arm the telemetry ticker: the callback fires every [period] retired
    guest instructions, checked at vCPU turn boundaries inside {!run}
    (never mid-quantum).  A turn that retires past several marks fires
    once per crossed mark, so over a whole run the callback fires exactly
    [floor (instructions / period)] times regardless of quantum or engine
    toggles — instruction counts at turn boundaries are engine-invariant.
    Marks are aligned to multiples of [period] from instruction 0 even
    when armed mid-run.  Zero-cost when disarmed: the run loop pays one
    option match per vCPU turn, the same contract as {!fault_hooks}.
    The callback must not mutate guest state; it is meant to scrape
    metrics ({!Fc_obs.Timeseries}) and sample VMI state. *)

val disarm_tick : t -> unit

val inject_invalid_opcode : t -> ?ebp:int -> ?esp:int -> eip:int -> unit -> unit
(** Synthesize an invalid-opcode VM exit at [eip] and route it through
    the installed exit handler, exactly as a real UD2 trap: [Resume]
    returns, [Panic] raises {!Guest_panic}.  [ebp] (default 0) lets a
    crafted rbp chain be walked by the recovery path; [esp] defaults to
    just below the current process's kernel stack top. *)

val set_trace : t -> (int -> int -> unit) option -> unit
(** Per-instruction observer [(address, length)] — the profiler. *)

val set_event_trace : t -> (Cpu.event -> unit) option -> unit
(** Exact call/return event observer — the call tracer. *)

val set_branch_policy : t -> (int -> bool) option -> unit
(** Override the conditional-branch oracle (queried with each Jcc's
    address; [true] = take the jump, skipping the cold block).  [None]
    restores the default (all cold blocks skipped) — use a policy to
    drive rarely-taken error paths that profiling missed. *)

val read_guest_byte : t -> int -> int option
(** VMI / data path: read guest-virtual memory through the page tables and
    the hypervisor's ground-truth RAM map.  Kernel views never affect this
    path — they only redirect instruction fetch. *)

val read_guest_u32 : t -> int -> int option

val fetch_code : t -> int -> int option
(** Instruction-fetch path: translates through the {e EPT}, so it sees the
    currently installed kernel view.  What the vCPU decodes from; also what
    a hypervisor uses to inspect the active view's bytes. *)

val ram_frame : t -> gpa_page:int -> int option
(** The hypervisor's ground-truth frame for a guest-physical page — the
    "original kernel code pages" that recovery fetches from, and the frames
    a full kernel view maps back to. *)

type flush_cause =
  | Flush_view_switch  (** legacy (untagged) view switch-in bumps *)
  | Flush_cow  (** COW break / on-demand private view page splice *)
  | Flush_patch  (** reserved: live kernel patching (ROADMAP item 1) *)
  | Flush_growth  (** guest RAM growth ([map_fresh_range]) *)
  | Flush_explicit  (** caller-requested, incl. view retirement *)
(** Why cached fetch translations were invalidated.  Every invalidation
    site attributes to the [tlb.flushes{cause}] counter family, so the
    bench can prove view-switch-caused flushes drop to ~0 under tagged
    caching while COW/growth flushes stay put. *)

val flush_fetch_tlbs : ?view:int -> ?cause:flush_cause -> t -> unit
(** Invalidate cached fetch translations on every vCPU (O(1) per vCPU:
    generation bumps).  Required when an {e installed}, reference-shared
    EPT leaf table is remapped behind the directory ([Ept.table_set] — a
    COW break or an on-demand private view page): no [Ept.set_dir] runs,
    so no generation would otherwise move.  When [view] names the owner
    of the mutated table and tagged caching is on, only that view's
    generation is bumped — translations other views hold still map the
    old, untouched frame and survive.  Without [view] (or with tags
    off) everything is dropped.  [cause] (default [Flush_explicit])
    labels the [tlb.flushes{cause}] attribution.  Plain view switches
    and [map_page] calls self-invalidate and do not need this. *)

val retire_view_translations : ?cause:flush_cause -> t -> view:int -> unit
(** Retire a destroyed view's tag on every vCPU: its cached translations
    can never revalidate (view ids are not reused), and other views'
    entries are untouched — the tagged replacement for the full flush
    the pre-tag unload/disable/quarantine paths paid.  No-op when tags
    are off ([create ~tagged:false]): there the switch-away from the
    dying view already bumped the only generation there is. *)

val note_flushes : t -> cause:flush_cause -> int -> unit
(** Attribute [n] already-performed invalidation events to
    [tlb.flushes{cause}] — for layers (facechange's legacy switch-in
    path) that drive [Ept] directly rather than through
    {!flush_fetch_tlbs}. *)

val note_divergent_page : t -> gpa_page:int -> unit
(** Record that a kernel view remapped [gpa_page] to a private frame, so
    the page's translation is view-{e dependent} from now on.  Monotone:
    destroying the view does not un-diverge the page.  Superblocks built
    from pages {e outside} this set carry the x86 global-page stamp and
    skip tag validation entirely — they are what make a fresh guest's
    first switch into each view restamp-free, not just re-entries.  The
    caller must pair this with a {!Fc_mem.Phys_mem.touch} of the
    displaced frame (the view layer's COW/materialization path does):
    that version bump is what kills any already-built global block on
    it. *)

val page_divergent : t -> gpa_page:int -> bool
(** Whether {!note_divergent_page} was ever called for [gpa_page]. *)

val note_view_binding : t -> gpa_page:int -> view:int -> frame:int -> unit
(** Record that [view] currently maps [gpa_page] to [frame], replacing
    the view's previous binding for the page.  When several views bind a
    page to one shared frame, superblocks built there are pre-stamped
    with every sibling's tag ({!Fc_mem.Ept.tag_for}), so even the {e
    first} switch into a sibling revalidates them by compare — the last
    source of per-switch restamps.  Call on every view-private remap of
    a kernel page (the view layer's materialization/COW path does). *)

val vmi_current_task : t -> int * string
(** Read the guest's current-task pointer chain: (pid, comm). *)

val vmi_module_list : t -> (string * int * int) list
(** Traverse the guest module linked list: (name, base, size) — omits
    hidden modules, unlike {!modules}. *)

(* ---------------- execution ---------------- *)

val cycles : t -> int
val add_cycles : t -> int -> unit

val instructions : t -> int
(** Guest instructions retired since boot — the numerator of the perf
    benchmark's instructions/sec (also the [os.instructions] gauge).
    Unlike {!cycles}, never advanced by cost-model charges. *)

val decode_cache_frames : t -> int
(** Number of host frames with a live entry in the per-frame decode cache
    (also the [os.decode_cache_frames] gauge).  Entries are evicted when
    their frame's last reference is dropped, so view churn must not grow
    this monotonically — the regression test for the old unbounded
    behavior reads it. *)

val round : t -> int
val context_switches : t -> int

val run : ?max_rounds:int -> ?until:(t -> bool) -> t -> unit
(** Drive the scheduler until every non-idle process has exited, [until]
    returns true (checked each round), or [max_rounds] elapses. *)

val run_process_solo : t -> Process.t -> unit
(** Run a single process to completion, round-robining only with
    interrupt delivery — used by the profiler for per-application
    sessions. *)

val inject_irq : t -> Fc_kernel.Irq_paths.source -> unit
(** Deliver one interrupt in the current context, immediately. *)

val schedule_at_round : t -> int -> (t -> unit) -> unit
(** Run a callback when the scheduler reaches the given round — used to
    hot-plug kernel views mid-execution (Fig. 3). *)

val set_syscall_rewriter : t -> (Fc_kernel.Syscalls.t -> (string * string list) option) -> unit
(** Kernel-level attack hook: rewrite a syscall's (entry, dispatch) before
    execution — how rootkit models detour the kernel's control flow. *)

val clear_syscall_rewriter : t -> unit

val pending_itimer : t -> pid:int -> bool
val arm_itimer : t -> pid:int -> unit
(** A [setitimer]-armed process receives [Timer_itimer] expiries (the
    Cymothoa parasite's SIGALRM path) on subsequent timer interrupts. *)

(** {1 Snapshot: freeze / thaw}

    The frozen machine as plain data: scheduler and process state,
    timers, traps, itimers, the guest-RAM map, the physical frame pool,
    and each vCPU's EPT directory shape (tables referenced by pool id —
    the snapshot codec owns the identity-preserving table pool, so
    tables shared between vCPUs, the hypervisor's pristine set and the
    views stay shared after restore).

    Not captured, by design: TLBs, decode lines, superblocks (caches —
    rebuilt demand-side, invisible to the differential fingerprints),
    trace/event/fault/tick hooks and the exit handler (re-attached by
    the owning layer after {!thaw}), and counter values (restored by the
    codec's metrics section, last). *)

type frozen_proc = {
  zp_pid : int;
  zp_name : string;
  zp_cpu : int;
  zp_script : Action.t list;
  zp_state : Process.run_state;
  zp_saved_regs : (int * int * int) option;  (** eip, ebp, esp *)
  zp_saved_dispatch : int list;  (** front of the queue first *)
  zp_in_kernel : bool;
  zp_syscall_count : int;
  zp_last_scheduled_round : int;
  zp_mappings : (int * int) list;  (** gva_page -> gpa_page, sorted *)
}

type frozen_module = {
  zm_name : string;
  zm_hidden : bool;
  zm_base : int;
  zm_code : string;
  zm_functions : (string * int * int) list;  (** pname, addr, size *)
}

type frozen_timer = {
  zt_source : Fc_kernel.Irq_paths.source;
  zt_period : int;
  zt_next_at : int;
}

type frozen_vcpu = {
  zv_dirs : (int * int) list;  (** EPT dir -> pool table id, sorted *)
  zv_current_pid : int;
  zv_in_interrupt : bool;
  zv_idle_last_round : int;
  zv_slice_start : int;
      (** start cycle of the still-open run slice — pending
          [os.run_cycles] attribution the restored machine must charge *)
  zv_tags : Fc_mem.Ept.tags;
      (** active view/era, per-view generations and the flush count —
          restored last so tag validity and the [tlb.i_flushes] gauge
          resume exactly where the snapshot left them *)
}

type frozen = {
  z_config : config;
  z_tlb_on : bool;
  z_sblocks_on : bool;
  z_tagged_on : bool;
  z_cycles : int;
  z_instrs : int;
  z_round_no : int;
  z_context_switches : int;
  z_next_pid : int;
  z_next_module_base : int;
  z_data_epoch : int;
  z_trap_gen : int;
  z_global_gen : int;
  z_divergent : int list;  (** view-diverged gpa pages, sorted *)
  z_ram : (int * int) list;  (** gpa_page -> host frame, sorted *)
  z_phys : Fc_mem.Phys_mem.frozen;
  z_master_pt : (int * int) list;
  z_vcpus : frozen_vcpu list;
  z_procs : frozen_proc list;  (** newest first, matching [procs_rev] *)
  z_modules : frozen_module list;  (** load order *)
  z_timers : frozen_timer list;
  z_traps : int list;  (** sorted *)
  z_itimers : int list;  (** sorted pids *)
  z_sleep_override : int option;
}

val freeze : t -> table_id:(Fc_mem.Ept.table -> int) -> frozen
(** Capture the machine at a scheduler round boundary.  [table_id] maps
    each EPT leaf table to its identity-preserving pool id (assigned by
    the snapshot codec).  Raises [Invalid_argument] if any vCPU has an
    open run slice — snapshots are only meaningful between rounds. *)

val thaw :
  ?obs:Fc_obs.Obs.t ->
  image:Fc_kernel.Image.t ->
  table_of:(int -> Fc_mem.Ept.table) -> frozen -> t
(** Rebuild a machine from a frozen image over a freshly-decoded table
    pool.  The kernel [image] is not serialized — {!Fc_kernel.Image.build}
    is deterministic; guest RAM contents come from the restored frame
    pool, so nothing is re-written (frame versions stay faithful).
    Hooks, views and breakpoints are re-attached by the hypervisor
    layer; apply the codec's metrics section after every layer is
    restored. *)
