(** The fault taxonomy and seeded plan generation.

    A fault plan is a deterministic, serializable schedule of guest-level
    misfortunes: each entry fires at a scheduler round and models one of
    the failure shapes the governor must survive — spurious invalid
    opcode exits, corrupted rbp chains, view pages flipped to trapping
    byte pairs, frame-cache pressure, missed [__switch_to] breakpoints,
    and malformed view configs.

    Randomness is resolved at {e generation} time: kinds carry abstract
    fractions ([frac] in [\[0, 10_000)]) that the injector maps onto
    concrete addresses, so applying a plan consumes no randomness and two
    runs of the same plan inject byte-identical faults. *)

type kind =
  | Spurious_ud2 of { frac : int; count : int }
      (** [count] synthetic invalid-opcode exits (one per scripted guest
          action) at the kernel-text address selected by [frac] — a burst
          models the recovery storm of a badly mismatched profile *)
  | Broken_rbp of { frac : int }
      (** a synthetic exit whose rbp chain leaves the kernel range after
          one crafted frame *)
  | Cyclic_rbp of { frac : int }
      (** a synthetic exit whose rbp chain loops between two crafted
          frames *)
  | Flip_view_byte of { frac : int }
      (** corrupt two bytes of a loaded narrow view into the trapping
          UD2 pattern at the text address selected by [frac] (corruptions
          that misdecode into {e valid} instructions are outside the
          recoverable fault model — see DESIGN.md §8) *)
  | Evict_frames  (** drop every entry of the hypervisor's frame cache *)
  | Miss_breakpoints of { count : int }
      (** swallow the next [count] [__switch_to] breakpoint hits — the
          guest context-switches without the hypervisor noticing *)
  | Truncated_config
      (** feed {!Fc_profiler.View_config.of_string} a config cut mid-line *)
  | Overlapping_config
      (** feed it a config whose spans overlap *)

type event = { at_round : int; kind : kind }
type plan = { seed : int; faults : event list }

val kind_label : kind -> string
(** Stable snake_case tag, e.g. ["spurious_ud2"]. *)

val detail : kind -> string
(** Human-readable parameters, e.g. ["frac=4812 count=9"]. *)

val pp_event : Format.formatter -> event -> unit

val gen : seed:int -> rounds:int -> n:int -> plan
(** [n] faults at rounds in [\[2, rounds)], sorted by round.  Pure
    function of [seed] (via {!Frand}). *)
