(** Applies a {!Fault.plan} to a live guest.

    Arming an injector installs the {!Fc_machine.Os.fault_hooks} and
    schedules each plan entry at its round.  Faults that need no process
    context (view-page flips, frame-cache eviction, config corruption,
    breakpoint-miss arming) apply in the round hook; faults that must be
    attributed to a running process (spurious UD2 exits, crafted rbp
    chains) are queued and fire from the pre-action hook, in the context
    of the process about to run — the process the governor will charge.

    Everything is deterministic: the plan's abstract fractions are mapped
    onto concrete kernel-text addresses, no randomness is consumed at
    injection time, and each applied fault bumps the [faults.injected]
    counter (and its [{kind}] family member) and emits a
    [fault_injected] trace event when the hub is armed. *)

type t

val arm :
  os:Fc_machine.Os.t ->
  hyp:Fc_hypervisor.Hypervisor.t ->
  fc:Fc_core.Facechange.t ->
  Fault.plan ->
  t
(** Install hooks, register (and reset) the [faults.*] metrics, and
    schedule the plan.  At most one injector should be armed per guest —
    arming replaces any previously installed fault hooks. *)

val disarm : t -> unit
(** Remove the hooks and drop any queued faults.  Scheduled-but-unfired
    round callbacks become no-ops. *)

val injected : t -> int
(** Fault events actually applied so far. *)

val bp_misses : t -> int
(** Individual [__switch_to] breakpoints swallowed. *)

val config_rejects : t -> int
(** Malformed view configs correctly rejected by
    {!Fc_profiler.View_config.of_string}. *)

val validation_misses : t -> int
(** Malformed configs that {e parsed} — should stay 0; anything else is
    a validation hole. *)

(** {1 Snapshot: cursor / rearm} *)

type cursor = {
  cu_seed : int;  (** the plan's generator seed (replay provenance) *)
  cu_events : Fault.event list;  (** the full plan, absolute rounds *)
  cu_position : int;  (** last round executed before the snapshot *)
  cu_queue : Fault.kind list;  (** queued in-context faults, FIFO *)
  cu_miss_budget : int;  (** breakpoint misses still to swallow *)
}

val cursor : t -> position:int -> cursor
(** The injector's replay state at a round boundary: everything needed to
    re-arm the {e remainder} of the plan on a restored guest. *)

val rearm :
  os:Fc_machine.Os.t ->
  hyp:Fc_hypervisor.Hypervisor.t ->
  fc:Fc_core.Facechange.t ->
  cursor ->
  t
(** Like {!arm}, but resumes from a cursor: only events strictly after
    [cu_position] are scheduled (earlier ones fired before the snapshot,
    and their effects live in the restored machine), the in-context fault
    queue and miss budget carry over, and no [faults.*] metrics are
    reset. *)
