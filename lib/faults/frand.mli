(** Deterministic PRNG for fault plans (splitmix64).

    The standard library's [Random] changed algorithms between OCaml 4
    (lagged Fibonacci) and OCaml 5 (LXM), so seeded fault plans generated
    with it would differ across the CI matrix and break the pinned chaos
    counters.  This hand-rolled splitmix64 produces the same stream on
    every supported compiler and platform. *)

type t

val create : int -> t
(** A generator seeded with the given integer.  Equal seeds yield equal
    streams, on any OCaml version. *)

val int : t -> int -> int
(** [int t bound] — uniform-ish in [\[0, bound)].
    @raise Invalid_argument when [bound <= 0]. *)

val bool : t -> bool

val mix : int -> int -> int
(** [mix seed i] — a well-scrambled derived seed for stream [i] of a
    family rooted at [seed] (one splitmix64 finalization over a
    stream-salted state; same stability guarantees as the generator).
    The fleet host seeds guest [i] with [mix fleet_seed i], so each
    guest's fault plan depends only on its index — never on which domain
    ran it or in what order — keeping sharded runs deterministic at any
    domain count. *)

val pick : t -> 'a list -> 'a
(** @raise Invalid_argument on an empty list. *)
