type kind =
  | Spurious_ud2 of { frac : int; count : int }
  | Broken_rbp of { frac : int }
  | Cyclic_rbp of { frac : int }
  | Flip_view_byte of { frac : int }
  | Evict_frames
  | Miss_breakpoints of { count : int }
  | Truncated_config
  | Overlapping_config

type event = { at_round : int; kind : kind }
type plan = { seed : int; faults : event list }

let kind_label = function
  | Spurious_ud2 _ -> "spurious_ud2"
  | Broken_rbp _ -> "broken_rbp"
  | Cyclic_rbp _ -> "cyclic_rbp"
  | Flip_view_byte _ -> "flip_view_byte"
  | Evict_frames -> "evict_frames"
  | Miss_breakpoints _ -> "miss_breakpoints"
  | Truncated_config -> "truncated_config"
  | Overlapping_config -> "overlapping_config"

let detail = function
  | Spurious_ud2 { frac; count } -> Printf.sprintf "frac=%d count=%d" frac count
  | Broken_rbp { frac } | Cyclic_rbp { frac } | Flip_view_byte { frac } ->
      Printf.sprintf "frac=%d" frac
  | Evict_frames | Truncated_config | Overlapping_config -> ""
  | Miss_breakpoints { count } -> Printf.sprintf "count=%d" count

let pp_event ppf e =
  let d = detail e.kind in
  Format.fprintf ppf "@%d %s%s" e.at_round (kind_label e.kind)
    (if d = "" then "" else " " ^ d)

let gen ~seed ~rounds ~n =
  let r = Frand.create seed in
  let frac () = Frand.int r 10_000 in
  let faults =
    List.init n (fun _ ->
        let at_round = 2 + Frand.int r (max 1 (rounds - 2)) in
        let kind =
          match Frand.int r 100 with
          | k when k < 30 -> Spurious_ud2 { frac = frac (); count = 1 + Frand.int r 12 }
          | k when k < 45 -> Broken_rbp { frac = frac () }
          | k when k < 60 -> Cyclic_rbp { frac = frac () }
          | k when k < 70 -> Flip_view_byte { frac = frac () }
          | k when k < 80 -> Miss_breakpoints { count = 1 + Frand.int r 6 }
          | k when k < 88 -> Evict_frames
          | k when k < 94 -> Truncated_config
          | _ -> Overlapping_config
        in
        { at_round; kind })
  in
  { seed; faults = List.stable_sort (fun a b -> compare a.at_round b.at_round) faults }
