type t = { mutable s : int64 }

let create seed = { s = Int64.of_int seed }

let next64 t =
  t.s <- Int64.add t.s 0x9E3779B97F4A7C15L;
  let z = t.s in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* 62 non-negative bits: representable as an OCaml int on 64-bit and
   exact for every bound this library uses *)
let bits t = Int64.to_int (Int64.shift_right_logical (next64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Frand.int: bound must be positive";
  bits t mod bound

let bool t = Int64.logand (next64 t) 1L = 1L

let mix seed i =
  (* one splitmix64 step over a stream-salted state: cheap, stateless,
     and as platform-stable as the generator itself *)
  let t = create seed in
  t.s <- Int64.add t.s (Int64.mul (Int64.of_int i) 0xD1B54A32D192ED03L);
  bits t

let pick t = function
  | [] -> invalid_arg "Frand.pick: empty list"
  | l -> List.nth l (int t (List.length l))
