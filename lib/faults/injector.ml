module Os = Fc_machine.Os
module Process = Fc_machine.Process
module Hyp = Fc_hypervisor.Hypervisor
module Facechange = Fc_core.Facechange
module View = Fc_core.View
module View_config = Fc_profiler.View_config
module Phys = Fc_mem.Phys_mem
module Frame_cache = Fc_mem.Frame_cache
module Layout = Fc_kernel.Layout
module Image = Fc_kernel.Image
module Obs = Fc_obs.Obs
module Metrics = Fc_obs.Metrics
module Event = Fc_obs.Event

type t = {
  os : Os.t;
  hyp : Hyp.t;
  fc : Facechange.t;
  obs : Obs.t;
  plan : Fault.plan;
  switch_addr : int;
  injected_c : Metrics.counter;
  injected_f : Metrics.family; (* faults.injected{kind} *)
  bp_misses_c : Metrics.counter;
  config_rejects_c : Metrics.counter;
  validation_misses_c : Metrics.counter;
  mutable miss_budget : int; (* __switch_to breakpoints left to swallow *)
  mutable queue : Fault.kind list; (* in-context faults, FIFO *)
  mutable armed : bool;
}

let injected t = Metrics.value t.injected_c
let bp_misses t = Metrics.value t.bp_misses_c
let config_rejects t = Metrics.value t.config_rejects_c
let validation_misses t = Metrics.value t.validation_misses_c

let note t kind =
  Metrics.incr t.injected_c;
  Metrics.incr (Metrics.family_counter t.injected_f (Fault.kind_label kind));
  if Obs.armed t.obs then
    Obs.emit t.obs
      (Event.Fault_injected
         { fault = Fault.kind_label kind; detail = Fault.detail kind })

(* Map an abstract fraction onto an even kernel-text address.  Even keeps
   the injected UD2 pair in phase with the view fill pattern; the address
   may still land in inter-function padding, which exercises the
   "cannot locate kernel code" dead end on purpose. *)
let text_addr t frac =
  let image = Os.image t.os in
  let base = Image.text_base image in
  let len = Image.text_end image - base in
  (base + (frac * len / 10_000)) land lnot 1

let poke_u32 t gva v =
  let gpa = Layout.gva_to_gpa gva in
  match Os.ram_frame t.os ~gpa_page:(gpa / Layout.page_size) with
  | Some frame ->
      Phys.write_u32 (Os.phys t.os)
        ((frame * Layout.page_size) + (gpa mod Layout.page_size))
        v
  | None -> ()

(* Craft rbp chains deep in the current process's kernel stack — the
   region just above the stack base is never reached by the simulated
   dispatch depths, so the corruption is only ever read back by the
   backtrace walker. *)
let craft_base t =
  let top = Process.kstack_top (Os.current t.os) in
  top - Layout.kstack_size + 0x40

let inject_broken t frac =
  let eip = text_addr t frac in
  let ebp = craft_base t in
  poke_u32 t (ebp + 4) eip; (* a plausible kernel return address *)
  poke_u32 t ebp 0x1234; (* then the chain leaves the kernel range *)
  Os.inject_invalid_opcode t.os ~ebp ~eip ()

let inject_cyclic t frac =
  let eip = text_addr t frac in
  let e1 = craft_base t in
  let e2 = e1 + 0x40 in
  poke_u32 t (e1 + 4) eip;
  poke_u32 t e1 e2;
  poke_u32 t (e2 + 4) eip;
  poke_u32 t e2 e1; (* back-edge: e2 -> e1 *)
  Os.inject_invalid_opcode t.os ~ebp:e1 ~eip ()

let flip_view_byte t frac =
  match Facechange.views t.fc with
  | [] -> false (* nothing loaded; nothing to corrupt *)
  | views ->
      let v = List.nth views (frac mod List.length views) in
      let gva = text_addr t frac in
      (* the trapping byte pair: corruption stays inside the recoverable
         fault model (DESIGN.md §8) *)
      View.write_code v ~gva 0x0f;
      View.write_code v ~gva:(gva + 1) 0x0b;
      true

let truncated_config =
  "# facechange kernel view\n\
   app chaos\n\
   base 0xc0100000 0xc0100040\n\
   base 0xc0100060"

let overlapping_config =
  "# facechange kernel view\n\
   app chaos\n\
   base 0xc0100000 0xc0100080\n\
   base 0xc0100040 0xc01000c0"

let feed_config t text =
  match View_config.of_string text with
  | Error _ -> Metrics.incr t.config_rejects_c
  | Ok _ -> Metrics.incr t.validation_misses_c

(* Faults that must run in the context of the process being charged. *)
let apply_in_context t kind =
  match kind with
  | Fault.Spurious_ud2 { frac; _ } ->
      note t kind;
      Os.inject_invalid_opcode t.os ~eip:(text_addr t frac) ()
  | Fault.Broken_rbp { frac } ->
      note t kind;
      inject_broken t frac
  | Fault.Cyclic_rbp { frac } ->
      note t kind;
      inject_cyclic t frac
  | _ -> ()

(* Faults applied directly from the scheduler's round hook. *)
let apply_at_round t kind =
  match kind with
  | Fault.Spurious_ud2 { count; _ } ->
      (* one synthetic exit per upcoming guest action: a burst *)
      t.queue <- t.queue @ List.init count (fun _ -> kind)
  | Fault.Broken_rbp _ | Fault.Cyclic_rbp _ -> t.queue <- t.queue @ [ kind ]
  | Fault.Flip_view_byte { frac } -> if flip_view_byte t frac then note t kind
  | Fault.Evict_frames ->
      ignore (Frame_cache.evict_all (Hyp.frame_cache t.hyp));
      note t kind
  | Fault.Miss_breakpoints { count } ->
      t.miss_budget <- t.miss_budget + count;
      note t kind
  | Fault.Truncated_config ->
      feed_config t truncated_config;
      note t kind
  | Fault.Overlapping_config ->
      feed_config t overlapping_config;
      note t kind

let mk ~os ~hyp ~fc (plan : Fault.plan) =
  let m = Obs.metrics (Os.obs os) in
  {
    os;
    hyp;
    fc;
    obs = Os.obs os;
    plan;
    switch_addr = Image.addr_of_exn (Os.image os) "__switch_to";
    injected_c = Metrics.counter m ~subsystem:"faults" "injected";
    injected_f = Metrics.counter_family m ~subsystem:"faults" "injected";
    bp_misses_c = Metrics.counter m ~subsystem:"faults" "bp_misses";
    config_rejects_c = Metrics.counter m ~subsystem:"faults" "config_rejects";
    validation_misses_c =
      Metrics.counter m ~subsystem:"faults" "validation_misses";
    miss_budget = 0;
    queue = [];
    armed = true;
  }

let install_hooks t =
  Os.set_fault_hooks t.os
    (Some
       {
         Os.fh_trap_miss =
           (fun addr ->
             if t.armed && addr = t.switch_addr && t.miss_budget > 0 then begin
               t.miss_budget <- t.miss_budget - 1;
               Metrics.incr t.bp_misses_c;
               true
             end
             else false);
         Os.fh_pre_action =
           (fun () ->
             if t.armed then
               match t.queue with
               | [] -> ()
               | kind :: rest ->
                   t.queue <- rest;
                   apply_in_context t kind);
       })

(* Register the plan's round callbacks, skipping events at or before
   [after] (they fired before a snapshot was taken). *)
let schedule_events t ~after =
  List.iter
    (fun (e : Fault.event) ->
      if e.Fault.at_round > after then
        Os.schedule_at_round t.os e.Fault.at_round (fun _ ->
            if t.armed then apply_at_round t e.Fault.kind))
    t.plan.Fault.faults

let arm ~os ~hyp ~fc (plan : Fault.plan) =
  let t = mk ~os ~hyp ~fc plan in
  List.iter Metrics.reset
    [
      t.injected_c; t.bp_misses_c; t.config_rejects_c; t.validation_misses_c;
    ];
  Metrics.reset_family t.injected_f;
  install_hooks t;
  schedule_events t ~after:min_int;
  t

let disarm t =
  if t.armed then begin
    t.armed <- false;
    t.queue <- [];
    t.miss_budget <- 0;
    Os.set_fault_hooks t.os None
  end

(* ---------------- snapshot: cursor / rearm ---------------- *)

type cursor = {
  cu_seed : int;
  cu_events : Fault.event list;
  cu_position : int; (* last scheduler round executed before the snapshot *)
  cu_queue : Fault.kind list;
  cu_miss_budget : int;
}

let cursor t ~position =
  {
    cu_seed = t.plan.Fault.seed;
    cu_events = t.plan.Fault.faults;
    cu_position = position;
    cu_queue = t.queue;
    cu_miss_budget = t.miss_budget;
  }

let rearm ~os ~hyp ~fc (c : cursor) =
  let t = mk ~os ~hyp ~fc { Fault.seed = c.cu_seed; faults = c.cu_events } in
  t.queue <- c.cu_queue;
  t.miss_budget <- c.cu_miss_budget;
  (* no metric resets: the snapshot codec restores the faults.* counters
     after every layer is re-attached *)
  install_hooks t;
  (* rounds are absolute and [Os.thaw] restored the round counter, so
     events strictly after the cursor fire at their original rounds *)
  schedule_events t ~after:c.cu_position;
  t
