(** The httperf-like Apache I/O experiment (Fig. 7).

    The apache workload serves a fixed batch of requests; measuring the
    simulated cycles per request with and without FACE-CHANGE gives the
    server's CPU capacity in each mode.  Offered load below the enabled
    capacity is served at ratio 1.0; past it, throughput is capacity-bound
    and the ratio dips — the paper's ~55 req/s threshold. *)

type result = {
  base_capacity : float;  (** requests/second, FACE-CHANGE disabled *)
  fc_capacity : float;    (** requests/second, FACE-CHANGE enabled *)
  cycles_per_second : float;
      (** simulated clock calibration: chosen so the baseline server
          saturates near the paper's 60 req/s testbed capacity *)
  series : (int * float) list;  (** (request rate, throughput ratio) *)
}

val requests : int
(** Requests per measurement batch (100, as in the paper). *)

val run : ?rates:int list -> Profiles.t -> result
(** Default rates: 5, 10, …, 60 req/s. *)

val render : result -> string

(**/**)

val request_actions : Fc_machine.Action.t list
(** One request's kernel work, from the apache steady-state loop —
    shared with the perf benchmark's httperf arms. *)

(**/**)
