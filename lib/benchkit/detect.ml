module Os = Fc_machine.Os
module Hyp = Fc_hypervisor.Hypervisor
module Facechange = Fc_core.Facechange
module Recovery_log = Fc_core.Recovery_log
module Attack = Fc_attacks.Attack
module App = Fc_apps.App

type view_mode = Per_app | Union

type outcome = {
  attack : Attack.t;
  mode : view_mode;
  completed : bool;
  panic : string option;
  recovered : string list;
  evidence : string list;
  detected : bool;
  unknown_frames : bool;
  recoveries : int;
  log : Recovery_log.t;
}

let boot_guest profiles ~host =
  let app = App.find_exn host in
  let os = Os.create ~config:(App.os_config app) (Profiles.image profiles) in
  let hyp = Hyp.attach os in
  let fc = Facechange.enable hyp in
  (os, fc, app)

let load_views profiles fc ~mode ~host =
  match mode with
  | Per_app ->
      let (_ : int) = Facechange.load_view fc (Profiles.config_of profiles host) in
      ()
  | Union ->
      let idx = Facechange.load_view fc (Profiles.union_config profiles) in
      Facechange.bind fc ~comm:host ~index:idx

let run profiles ~mode (attack : Attack.t) =
  let os, fc, app = boot_guest profiles ~host:attack.Attack.host in
  let proc = Os.spawn os ~name:attack.Attack.host (app.App.script 3) in
  (* The attack is armed first: a rootkit module already resident when the
     kernel view materializes gets UD2-filled like all module code, which
     is the paper's "no rootkit code can be included in the view" premise;
     user-level payloads fire later regardless. *)
  attack.Attack.launch os proc;
  load_views profiles fc ~mode ~host:attack.Attack.host;
  let completed, panic =
    match Os.run ~max_rounds:20_000 os with
    | () -> (Fc_machine.Process.is_exited proc, None)
    | exception Os.Guest_panic m -> (false, Some m)
  in
  let log = Facechange.log fc in
  let recovered = Recovery_log.recovered_names log in
  let evidence =
    List.filter (fun s -> List.mem s attack.Attack.signature) recovered
  in
  {
    attack;
    mode;
    completed;
    panic;
    recovered;
    evidence;
    detected = evidence <> [];
    unknown_frames = Recovery_log.any_unknown log;
    recoveries = Recovery_log.count log;
    log;
  }

let run_clean profiles ~mode host =
  let os, fc, app = boot_guest profiles ~host in
  load_views profiles fc ~mode ~host;
  let (_ : Fc_machine.Process.t) = Os.spawn os ~name:host (app.App.script 3) in
  Os.run ~max_rounds:20_000 os;
  Recovery_log.count (Facechange.log fc)
