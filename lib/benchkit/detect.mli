(** Attack scenario runner — the engine behind Table II.

    Runs one attack against its host application in a FACE-CHANGE guest,
    under either the host's own minimized view or the "union" view
    (system-wide minimization), and reports the recovery-log evidence. *)

type view_mode = Per_app | Union

type outcome = {
  attack : Fc_attacks.Attack.t;
  mode : view_mode;
  completed : bool;  (** the host ran to completion (recovery is silent) *)
  panic : string option;
      (** the [Guest_panic] message when the run died — expected for
          attacks whose payload derails kernel execution *)
  recovered : string list;  (** recovered function names, chronological *)
  evidence : string list;   (** recovered ∩ attack signature *)
  detected : bool;
  unknown_frames : bool;    (** hidden-module frames appeared (Fig. 5) *)
  recoveries : int;
  log : Fc_core.Recovery_log.t;
}

val run :
  Profiles.t -> mode:view_mode -> Fc_attacks.Attack.t -> outcome
(** Boot a fresh guest with the host's interrupt environment, enable
    FACE-CHANGE, load + bind the view per [mode], spawn the host, arm the
    attack, run, and evaluate the log against the attack signature. *)

val run_clean : Profiles.t -> mode:view_mode -> string -> int
(** Control run: the host application {e without} any attack; returns the
    recovery count — the false-positive check (0 under the matching
    clocksource). *)
