(** Fig. 3: cross-view kernel code recovery.

    Reproduces the paper's scenario: the [top] process blocks inside
    [pipe_poll] under the full kernel view; its customized view is then
    hot-plugged; on reschedule the process resumes mid-kernel under the
    new view and faults in the UD2 fill.  The recovery backtrace shows
    [do_sys_poll]'s even return target reading [0xf 0xb …] (lazy recovery
    works) while [sys_poll]'s odd return target reads [0xb 0xf …] and must
    be recovered instantly. *)

type result = {
  log : Fc_core.Recovery_log.t;
  completed : bool;
  panic : string option;  (** the [Guest_panic] message, if the guest died *)
  lazy_recovered : string list;   (** functions recovered via later traps *)
  instant_recovered : string list;
}

val run : Profiles.t -> result
val render : result -> string
