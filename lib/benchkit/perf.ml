module Os = Fc_machine.Os
module Action = Fc_machine.Action
module Process = Fc_machine.Process
module Hyp = Fc_hypervisor.Hypervisor
module Facechange = Fc_core.Facechange
module Metrics = Fc_obs.Metrics
module J = Fc_obs.Jsonx

type counters = {
  c_instructions : int;
  c_cycles : int;
  c_i_hits : int;
  c_i_misses : int;
  c_d_hits : int;
  c_d_misses : int;
  c_i_flushes : int;
  c_d_flushes : int;
}

let zero_counters =
  { c_instructions = 0; c_cycles = 0; c_i_hits = 0; c_i_misses = 0;
    c_d_hits = 0; c_d_misses = 0; c_i_flushes = 0; c_d_flushes = 0 }

(* Whole-guest counters at end of life.  Guest instructions only retire
   inside [Os.run]/exec paths — exactly the spans the arms time — so
   instructions/seconds is a faithful instructions-per-second figure. *)
let collect os acc =
  let m = Fc_obs.Obs.metrics (Os.obs os) in
  let v name = Option.value (Metrics.find m name) ~default:0 in
  {
    c_instructions = acc.c_instructions + Os.instructions os;
    c_cycles = acc.c_cycles + Os.cycles os;
    c_i_hits = acc.c_i_hits + v "tlb.i_hits";
    c_i_misses = acc.c_i_misses + v "tlb.i_misses";
    c_d_hits = acc.c_d_hits + v "tlb.d_hits";
    c_d_misses = acc.c_d_misses + v "tlb.d_misses";
    c_i_flushes = acc.c_i_flushes + v "tlb.i_flushes";
    c_d_flushes = acc.c_d_flushes + v "tlb.d_flushes";
  }

type arm = {
  a_label : string;
  a_tlb : bool;
  a_views : bool;
  a_reps : int;
  a_seconds : float;  (* wall clock summed over the timed Os.run spans *)
  a_ips : float;      (* instructions per wall-clock second *)
  a_counters : counters;  (* one deterministic pass (rep-independent) *)
}

let ips ~instructions ~reps ~seconds =
  if seconds <= 0. then 0.
  else float_of_int (instructions * reps) /. seconds

let make_arm ~label ~tlb ~views ~reps ~seconds ~counters =
  {
    a_label = label;
    a_tlb = tlb;
    a_views = views;
    a_reps = reps;
    a_seconds = seconds;
    a_ips = ips ~instructions:counters.c_instructions ~reps ~seconds;
    a_counters = counters;
  }

let now () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* UnixBench workload                                                  *)
(* ------------------------------------------------------------------ *)

(* The views loaded (and their resident applications) for the views-on
   arms: enough to exercise switching and COW without dominating wall
   time with view builds. *)
let perf_view_apps = [ "top"; "apache" ]

(* One subtest in a fresh guest, mirroring [Unixbench.run_one] but with
   the TLB toggle and wall-clock timing of the run spans.  Returns the
   elapsed seconds; the guest is handed back for counter collection. *)
let run_subtest image ~tlb ~views ~residents (st : Unixbench.subtest) =
  let os = Os.create ~config:Unixbench.bench_config ~tlb image in
  if views <> [] then begin
    let hyp = Hyp.attach os in
    let fc = Facechange.enable hyp in
    List.iter (fun cfg -> ignore (Facechange.load_view fc cfg)) views
  end;
  let resident_procs =
    List.map (fun name -> Os.spawn os ~name Unixbench.resident_script) residents
  in
  let elapsed = ref 0. in
  if resident_procs <> [] then begin
    let t0 = now () in
    Os.run
      ~until:(fun _ ->
        List.for_all (fun p -> not (Process.is_ready p)) resident_procs)
      os;
    elapsed := !elapsed +. (now () -. t0)
  end;
  let bench =
    List.map (fun (name, script) -> Os.spawn os ~name script) st.Unixbench.procs
  in
  let t0 = now () in
  Os.run ~until:(fun _ -> List.for_all Process.is_exited bench) os;
  elapsed := !elapsed +. (now () -. t0);
  (os, !elapsed)

let unixbench_arm profiles ~tlb ~views_on ~reps =
  let image = Profiles.image profiles in
  let views =
    if views_on then List.map (Profiles.config_of profiles) perf_view_apps
    else []
  in
  let residents = List.map (fun c -> c.Fc_profiler.View_config.app) views in
  let seconds = ref 0. in
  let counters = ref zero_counters in
  for rep = 1 to max 1 reps do
    List.iter
      (fun st ->
        let os, dt = run_subtest image ~tlb ~views ~residents st in
        seconds := !seconds +. dt;
        (* counters from the first rep only: every rep is the same
           deterministic run, so the pinned numbers are rep-independent *)
        if rep = 1 then counters := collect os !counters)
      Unixbench.subtests
  done;
  let label =
    Printf.sprintf "%s+%s"
      (if tlb then "tlb" else "no-tlb")
      (if views_on then "views" else "noviews")
  in
  make_arm ~label ~tlb ~views:views_on ~reps:(max 1 reps) ~seconds:!seconds
    ~counters:!counters

(* ------------------------------------------------------------------ *)
(* httperf workload                                                    *)
(* ------------------------------------------------------------------ *)

(* The Fig. 7 apache request batch (same scripts as [Httperf]), with
   FACE-CHANGE enabled and the apache view loaded in both arms — only
   the TLB differs. *)
let httperf_arm profiles ~tlb ~reps =
  let app = Fc_apps.App.find_exn "apache" in
  let config = { (Fc_apps.App.os_config app) with Os.wake_delay = 2 } in
  let seconds = ref 0. in
  let counters = ref zero_counters in
  for rep = 1 to max 1 reps do
    let os = Os.create ~config ~tlb (Profiles.image profiles) in
    let hyp = Hyp.attach os in
    let fc = Facechange.enable hyp in
    let (_ : int) =
      Facechange.load_view fc (Profiles.config_of profiles "apache")
    in
    let script =
      [ Action.Syscall "socket:tcp"; Action.Syscall "setsockopt:tcp";
        Action.Syscall "bind:tcp"; Action.Syscall "listen:tcp";
        Action.Syscall "epoll_create"; Action.Syscall "epoll_ctl" ]
      @ Action.repeat 100 Httperf.request_actions
      @ [ Action.Exit ]
    in
    let (_ : Process.t) = Os.spawn os ~name:"apache" script in
    let t0 = now () in
    Os.run os;
    seconds := !seconds +. (now () -. t0);
    if rep = 1 then counters := collect os !counters
  done;
  make_arm
    ~label:(if tlb then "tlb" else "no-tlb")
    ~tlb ~views:true ~reps:(max 1 reps) ~seconds:!seconds ~counters:!counters

(* ------------------------------------------------------------------ *)
(* Warm vs cold TLB                                                    *)
(* ------------------------------------------------------------------ *)

let syscall_loop =
  Action.repeat 500 [ Action.Syscall "getpid"; Action.Syscall "getuid" ]
  @ [ Action.Exit ]

(* Two identical syscall-heavy processes in the {e same} guest: the
   first pays every compulsory TLB miss (cold), the second runs with the
   kernel's working set already cached (warm — only its own kernel stack
   pages miss). *)
let warm_cold image =
  let os = Os.create ~config:Unixbench.bench_config ~tlb:true image in
  let measure () =
    let p = Os.spawn os ~name:"ubench" syscall_loop in
    let i0 = Os.instructions os in
    let t0 = now () in
    Os.run ~until:(fun _ -> Process.is_exited p) os;
    let dt = now () -. t0 in
    let di = Os.instructions os - i0 in
    (dt, di)
  in
  let cold_s, cold_i = measure () in
  let warm_s, warm_i = measure () in
  ( (cold_s, cold_i, ips ~instructions:cold_i ~reps:1 ~seconds:cold_s),
    (warm_s, warm_i, ips ~instructions:warm_i ~reps:1 ~seconds:warm_s) )

(* ------------------------------------------------------------------ *)
(* Driver + JSON                                                       *)
(* ------------------------------------------------------------------ *)

type t = {
  reps : int;
  unixbench : arm list;
  unixbench_speedup : float;  (* tlb vs no-tlb, views on *)
  unixbench_speedup_noviews : float;
  httperf : arm list;
  httperf_speedup : float;
  cold : float * int * float;  (* seconds, instructions, ips *)
  warm : float * int * float;
}

let speedup ~tlb_arm ~no_tlb_arm =
  if no_tlb_arm.a_ips <= 0. then 0. else tlb_arm.a_ips /. no_tlb_arm.a_ips

let find_arm arms ~tlb ~views =
  List.find (fun a -> a.a_tlb = tlb && a.a_views = views) arms

let run ?(reps = 3) profiles =
  let ub =
    [
      unixbench_arm profiles ~tlb:true ~views_on:true ~reps;
      unixbench_arm profiles ~tlb:false ~views_on:true ~reps;
      unixbench_arm profiles ~tlb:true ~views_on:false ~reps;
      unixbench_arm profiles ~tlb:false ~views_on:false ~reps;
    ]
  in
  let hp =
    [ httperf_arm profiles ~tlb:true ~reps; httperf_arm profiles ~tlb:false ~reps ]
  in
  let cold, warm = warm_cold (Profiles.image profiles) in
  {
    reps = max 1 reps;
    unixbench = ub;
    unixbench_speedup =
      speedup
        ~tlb_arm:(find_arm ub ~tlb:true ~views:true)
        ~no_tlb_arm:(find_arm ub ~tlb:false ~views:true);
    unixbench_speedup_noviews =
      speedup
        ~tlb_arm:(find_arm ub ~tlb:true ~views:false)
        ~no_tlb_arm:(find_arm ub ~tlb:false ~views:false);
    httperf = hp;
    httperf_speedup =
      speedup ~tlb_arm:(List.nth hp 0) ~no_tlb_arm:(List.nth hp 1);
    cold;
    warm;
  }

let counters_to_json c =
  J.Obj
    [
      ("instructions", J.Int c.c_instructions);
      ("cycles", J.Int c.c_cycles);
      ("i_hits", J.Int c.c_i_hits);
      ("i_misses", J.Int c.c_i_misses);
      ("d_hits", J.Int c.c_d_hits);
      ("d_misses", J.Int c.c_d_misses);
      ("i_flushes", J.Int c.c_i_flushes);
      ("d_flushes", J.Int c.c_d_flushes);
    ]

let arm_to_json a =
  J.Obj
    [
      ("label", J.String a.a_label);
      ("tlb", J.Bool a.a_tlb);
      ("views", J.Bool a.a_views);
      ("reps", J.Int a.a_reps);
      ("seconds", J.Float a.a_seconds);
      ("ips", J.Float a.a_ips);
      ("counters", counters_to_json a.a_counters);
    ]

let point_to_json (s, i, v) =
  J.Obj
    [ ("seconds", J.Float s); ("instructions", J.Int i); ("ips", J.Float v) ]

let to_json t =
  J.Obj
    [
      ("reps", J.Int t.reps);
      ( "unixbench",
        J.Obj
          [
            ("arms", J.List (List.map arm_to_json t.unixbench));
            ("speedup_tlb_vs_no_tlb", J.Float t.unixbench_speedup);
            ("speedup_tlb_vs_no_tlb_noviews", J.Float t.unixbench_speedup_noviews);
          ] );
      ( "httperf",
        J.Obj
          [
            ("arms", J.List (List.map arm_to_json t.httperf));
            ("speedup_tlb_vs_no_tlb", J.Float t.httperf_speedup);
          ] );
      ( "warm_cold",
        J.Obj [ ("cold", point_to_json t.cold); ("warm", point_to_json t.warm) ]
      );
    ]

let render t =
  let buf = Buffer.create 2048 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "Translation fast path: wall-clock guest instructions/sec (reps=%d)\n\n"
    t.reps;
  let arm_line a =
    pr "  %-16s %10.3fs  %12d instr  %12.0f ips  (iTLB %d/%d, dTLB %d/%d)\n"
      a.a_label a.a_seconds a.a_counters.c_instructions a.a_ips
      a.a_counters.c_i_hits a.a_counters.c_i_misses a.a_counters.c_d_hits
      a.a_counters.c_d_misses
  in
  pr "UnixBench suite:\n";
  List.iter arm_line t.unixbench;
  pr "  speedup (views on):  %.2fx\n" t.unixbench_speedup;
  pr "  speedup (views off): %.2fx\n\n" t.unixbench_speedup_noviews;
  pr "httperf batch (apache view):\n";
  List.iter arm_line t.httperf;
  pr "  speedup: %.2fx\n\n" t.httperf_speedup;
  let s, i, v = t.cold in
  pr "syscall loop, cold TLB: %.4fs  %d instr  %.0f ips\n" s i v;
  let s, i, v = t.warm in
  pr "syscall loop, warm TLB: %.4fs  %d instr  %.0f ips\n" s i v;
  Buffer.contents buf
