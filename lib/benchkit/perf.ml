module Os = Fc_machine.Os
module Action = Fc_machine.Action
module Process = Fc_machine.Process
module Hyp = Fc_hypervisor.Hypervisor
module Facechange = Fc_core.Facechange
module Metrics = Fc_obs.Metrics
module J = Fc_obs.Jsonx

type counters = {
  c_instructions : int;
  c_cycles : int;
  c_i_hits : int;
  c_i_misses : int;
  c_d_hits : int;
  c_d_misses : int;
  c_i_flushes : int;
  c_d_flushes : int;
  c_sb_built : int;
  c_sb_hits : int;
  c_sb_invals : int;
  c_sb_chains : int;
  c_sb_restamps : int;
  (* fetch-TLB flushes split by cause (the tlb.flushes{cause} family):
     the view-switch bucket is what the tagged arms drive to ~0 *)
  c_fl_view_switch : int;
  c_fl_cow : int;
  c_fl_growth : int;
  c_fl_explicit : int;
}

let zero_counters =
  { c_instructions = 0; c_cycles = 0; c_i_hits = 0; c_i_misses = 0;
    c_d_hits = 0; c_d_misses = 0; c_i_flushes = 0; c_d_flushes = 0;
    c_sb_built = 0; c_sb_hits = 0; c_sb_invals = 0; c_sb_chains = 0;
    c_sb_restamps = 0; c_fl_view_switch = 0; c_fl_cow = 0; c_fl_growth = 0;
    c_fl_explicit = 0 }

(* Whole-guest counters at end of life.  Guest instructions only retire
   inside [Os.run]/exec paths — exactly the spans the arms time — so
   instructions/seconds is a faithful instructions-per-second figure. *)
let collect os acc =
  let m = Fc_obs.Obs.metrics (Os.obs os) in
  let v name = Option.value (Metrics.find m name) ~default:0 in
  {
    c_instructions = acc.c_instructions + Os.instructions os;
    c_cycles = acc.c_cycles + Os.cycles os;
    c_i_hits = acc.c_i_hits + v "tlb.i_hits";
    c_i_misses = acc.c_i_misses + v "tlb.i_misses";
    c_d_hits = acc.c_d_hits + v "tlb.d_hits";
    c_d_misses = acc.c_d_misses + v "tlb.d_misses";
    c_i_flushes = acc.c_i_flushes + v "tlb.i_flushes";
    c_d_flushes = acc.c_d_flushes + v "tlb.d_flushes";
    c_sb_built = acc.c_sb_built + v "sb.blocks_built";
    c_sb_hits = acc.c_sb_hits + v "sb.hits";
    c_sb_invals = acc.c_sb_invals + v "sb.invalidations";
    c_sb_chains = acc.c_sb_chains + v "sb.chain_follows";
    c_sb_restamps = acc.c_sb_restamps + v "sb.restamps";
    c_fl_view_switch = acc.c_fl_view_switch + v "tlb.flushes{view_switch}";
    c_fl_cow = acc.c_fl_cow + v "tlb.flushes{cow}";
    c_fl_growth = acc.c_fl_growth + v "tlb.flushes{growth}";
    c_fl_explicit = acc.c_fl_explicit + v "tlb.flushes{explicit}";
  }

type arm = {
  a_label : string;
  a_tagged : bool;
  a_sblocks : bool;
  a_tlb : bool;
  a_views : bool;
  a_reps : int;
  a_seconds : float;  (* min wall clock across the reps (noise floor) *)
  a_ips : float;      (* instructions per wall-clock second, best rep *)
  a_counters : counters;  (* one deterministic pass (rep-independent) *)
}

let ips ~instructions ~reps ~seconds =
  if seconds <= 0. then 0.
  else float_of_int (instructions * reps) /. seconds

let make_arm ~label ~tagged ~sblocks ~tlb ~views ~reps ~seconds ~counters =
  {
    a_label = label;
    a_tagged = tagged;
    a_sblocks = sblocks;
    a_tlb = tlb;
    a_views = views;
    a_reps = reps;
    a_seconds = seconds;
    (* seconds is the best (min) single rep, so no reps factor here *)
    a_ips = ips ~instructions:counters.c_instructions ~reps:1 ~seconds;
    a_counters = counters;
  }

let now () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* UnixBench workload                                                  *)
(* ------------------------------------------------------------------ *)

(* The views loaded (and their resident applications) for the views-on
   arms: enough to exercise switching and COW without dominating wall
   time with view builds. *)
let perf_view_apps = [ "top"; "apache" ]

(* One subtest in a fresh guest, mirroring [Unixbench.run_one] but with
   the engine toggles and wall-clock timing of the run spans.  Returns
   the elapsed seconds; the guest is handed back for counter
   collection. *)
let run_subtest image ~tagged ~sblocks ~tlb ~views ~residents
    (st : Unixbench.subtest) =
  let os = Os.create ~config:Unixbench.bench_config ~sblocks ~tlb ~tagged image in
  if views <> [] then begin
    let hyp = Hyp.attach os in
    let fc = Facechange.enable hyp in
    List.iter (fun cfg -> ignore (Facechange.load_view fc cfg)) views
  end;
  let resident_procs =
    List.map (fun name -> Os.spawn os ~name Unixbench.resident_script) residents
  in
  let elapsed = ref 0. in
  if resident_procs <> [] then begin
    let t0 = now () in
    Os.run
      ~until:(fun _ ->
        List.for_all (fun p -> not (Process.is_ready p)) resident_procs)
      os;
    elapsed := !elapsed +. (now () -. t0)
  end;
  let bench =
    List.map (fun (name, script) -> Os.spawn os ~name script) st.Unixbench.procs
  in
  let t0 = now () in
  Os.run ~until:(fun _ -> List.for_all Process.is_exited bench) os;
  elapsed := !elapsed +. (now () -. t0);
  (os, !elapsed)

let unixbench_arm profiles ~tagged ~sblocks ~tlb ~views_on ~reps =
  let image = Profiles.image profiles in
  let views =
    if views_on then List.map (Profiles.config_of profiles) perf_view_apps
    else []
  in
  let residents = List.map (fun c -> c.Fc_profiler.View_config.app) views in
  let seconds = ref infinity in
  let counters = ref zero_counters in
  for rep = 1 to max 1 reps do
    let rep_seconds = ref 0. in
    List.iter
      (fun st ->
        let os, dt =
          run_subtest image ~tagged ~sblocks ~tlb ~views ~residents st
        in
        rep_seconds := !rep_seconds +. dt;
        (* counters from the first rep only: every rep is the same
           deterministic run, so the pinned numbers are rep-independent *)
        if rep = 1 then counters := collect os !counters)
      Unixbench.subtests;
    (* min across reps: the least-interrupted pass, not a noisy sum *)
    seconds := Float.min !seconds !rep_seconds
  done;
  let label =
    Printf.sprintf "%s%s%s+%s"
      (if tagged then "tag+" else "")
      (if sblocks then "sb+" else "")
      (if tlb then "tlb" else "no-tlb")
      (if views_on then "views" else "noviews")
  in
  make_arm ~label ~tagged ~sblocks ~tlb ~views:views_on ~reps:(max 1 reps)
    ~seconds:!seconds ~counters:!counters

(* ------------------------------------------------------------------ *)
(* httperf workload                                                    *)
(* ------------------------------------------------------------------ *)

(* The Fig. 7 apache request batch (same scripts as [Httperf]), with
   FACE-CHANGE enabled and the apache view loaded in every arm — only
   the engine toggles differ. *)
let httperf_arm profiles ~tagged ~sblocks ~tlb ~reps =
  let app = Fc_apps.App.find_exn "apache" in
  let config = { (Fc_apps.App.os_config app) with Os.wake_delay = 2 } in
  let seconds = ref infinity in
  let counters = ref zero_counters in
  for rep = 1 to max 1 reps do
    let os = Os.create ~config ~sblocks ~tlb ~tagged (Profiles.image profiles) in
    let hyp = Hyp.attach os in
    let fc = Facechange.enable hyp in
    let (_ : int) =
      Facechange.load_view fc (Profiles.config_of profiles "apache")
    in
    let script =
      [ Action.Syscall "socket:tcp"; Action.Syscall "setsockopt:tcp";
        Action.Syscall "bind:tcp"; Action.Syscall "listen:tcp";
        Action.Syscall "epoll_create"; Action.Syscall "epoll_ctl" ]
      @ Action.repeat 100 Httperf.request_actions
      @ [ Action.Exit ]
    in
    let (_ : Process.t) = Os.spawn os ~name:"apache" script in
    let t0 = now () in
    Os.run os;
    seconds := Float.min !seconds (now () -. t0);
    if rep = 1 then counters := collect os !counters
  done;
  make_arm
    ~label:
      (Printf.sprintf "%s%s%s"
         (if tagged then "tag+" else "")
         (if sblocks then "sb+" else "")
         (if tlb then "tlb" else "no-tlb"))
    ~tagged ~sblocks ~tlb ~views:true ~reps:(max 1 reps) ~seconds:!seconds
    ~counters:!counters

(* ------------------------------------------------------------------ *)
(* Warm vs cold TLB                                                    *)
(* ------------------------------------------------------------------ *)

let syscall_loop =
  Action.repeat 500 [ Action.Syscall "getpid"; Action.Syscall "getuid" ]
  @ [ Action.Exit ]

(* Two identical syscall-heavy processes in the {e same} guest: the
   first pays every compulsory TLB miss (cold), the second runs with the
   kernel's working set already cached (warm — only its own kernel stack
   pages miss). *)
let warm_cold image =
  let os = Os.create ~config:Unixbench.bench_config ~tlb:true image in
  let measure () =
    let p = Os.spawn os ~name:"ubench" syscall_loop in
    let i0 = Os.instructions os in
    let t0 = now () in
    Os.run ~until:(fun _ -> Process.is_exited p) os;
    let dt = now () -. t0 in
    let di = Os.instructions os - i0 in
    (dt, di)
  in
  let cold_s, cold_i = measure () in
  let warm_s, warm_i = measure () in
  ( (cold_s, cold_i, ips ~instructions:cold_i ~reps:1 ~seconds:cold_s),
    (warm_s, warm_i, ips ~instructions:warm_i ~reps:1 ~seconds:warm_s) )

(* ------------------------------------------------------------------ *)
(* Driver + JSON                                                       *)
(* ------------------------------------------------------------------ *)

type t = {
  reps : int;
  unixbench : arm list;
  unixbench_speedup : float;  (* tlb vs no-tlb, views on *)
  unixbench_speedup_noviews : float;
  unixbench_speedup_sblocks : float;  (* sb+tlb vs tlb, views on *)
  unixbench_speedup_sblocks_noviews : float;
  httperf : arm list;
  httperf_speedup : float;
  httperf_speedup_sblocks : float;
  cold : float * int * float;  (* seconds, instructions, ips *)
  warm : float * int * float;
}

let speedup ~fast_arm ~base_arm =
  if base_arm.a_ips <= 0. then 0. else fast_arm.a_ips /. base_arm.a_ips

let find_arm arms ~tagged ~sblocks ~tlb ~views =
  List.find
    (fun a ->
      a.a_tagged = tagged && a.a_sblocks = sblocks && a.a_tlb = tlb
      && a.a_views = views)
    arms

let run ?(reps = 3) profiles =
  (* The untagged arms are the legacy scheme (global translation epoch,
     full flush on every view switch) whose deterministic counters the CI
     gate pins; the tag+ arms run the same workloads with view-tagged
     caching and must retire identically while flushing ~nothing on
     switches. *)
  let ub =
    [
      unixbench_arm profiles ~tagged:false ~sblocks:false ~tlb:true
        ~views_on:true ~reps;
      unixbench_arm profiles ~tagged:false ~sblocks:false ~tlb:false
        ~views_on:true ~reps;
      unixbench_arm profiles ~tagged:false ~sblocks:false ~tlb:true
        ~views_on:false ~reps;
      unixbench_arm profiles ~tagged:false ~sblocks:false ~tlb:false
        ~views_on:false ~reps;
      unixbench_arm profiles ~tagged:false ~sblocks:true ~tlb:true
        ~views_on:true ~reps;
      unixbench_arm profiles ~tagged:false ~sblocks:true ~tlb:true
        ~views_on:false ~reps;
      unixbench_arm profiles ~tagged:true ~sblocks:false ~tlb:true
        ~views_on:true ~reps;
      unixbench_arm profiles ~tagged:true ~sblocks:true ~tlb:true
        ~views_on:true ~reps;
    ]
  in
  let hp =
    [
      httperf_arm profiles ~tagged:false ~sblocks:false ~tlb:true ~reps;
      httperf_arm profiles ~tagged:false ~sblocks:false ~tlb:false ~reps;
      httperf_arm profiles ~tagged:false ~sblocks:true ~tlb:true ~reps;
      httperf_arm profiles ~tagged:true ~sblocks:true ~tlb:true ~reps;
    ]
  in
  let ub_arm = find_arm ub ~tagged:false in
  let cold, warm = warm_cold (Profiles.image profiles) in
  {
    reps = max 1 reps;
    unixbench = ub;
    unixbench_speedup =
      speedup
        ~fast_arm:(ub_arm ~sblocks:false ~tlb:true ~views:true)
        ~base_arm:(ub_arm ~sblocks:false ~tlb:false ~views:true);
    unixbench_speedup_noviews =
      speedup
        ~fast_arm:(ub_arm ~sblocks:false ~tlb:true ~views:false)
        ~base_arm:(ub_arm ~sblocks:false ~tlb:false ~views:false);
    unixbench_speedup_sblocks =
      speedup
        ~fast_arm:(ub_arm ~sblocks:true ~tlb:true ~views:true)
        ~base_arm:(ub_arm ~sblocks:false ~tlb:true ~views:true);
    unixbench_speedup_sblocks_noviews =
      speedup
        ~fast_arm:(ub_arm ~sblocks:true ~tlb:true ~views:false)
        ~base_arm:(ub_arm ~sblocks:false ~tlb:true ~views:false);
    httperf = hp;
    httperf_speedup =
      speedup ~fast_arm:(List.nth hp 0) ~base_arm:(List.nth hp 1);
    httperf_speedup_sblocks =
      speedup ~fast_arm:(List.nth hp 2) ~base_arm:(List.nth hp 0);
    cold;
    warm;
  }

let counters_to_json c =
  J.Obj
    [
      ("instructions", J.Int c.c_instructions);
      ("cycles", J.Int c.c_cycles);
      ("i_hits", J.Int c.c_i_hits);
      ("i_misses", J.Int c.c_i_misses);
      ("d_hits", J.Int c.c_d_hits);
      ("d_misses", J.Int c.c_d_misses);
      ("i_flushes", J.Int c.c_i_flushes);
      ("d_flushes", J.Int c.c_d_flushes);
      ("sb_built", J.Int c.c_sb_built);
      ("sb_hits", J.Int c.c_sb_hits);
      ("sb_invals", J.Int c.c_sb_invals);
      ("sb_chains", J.Int c.c_sb_chains);
      ("sb_restamps", J.Int c.c_sb_restamps);
      ("fl_view_switch", J.Int c.c_fl_view_switch);
      ("fl_cow", J.Int c.c_fl_cow);
      ("fl_growth", J.Int c.c_fl_growth);
      ("fl_explicit", J.Int c.c_fl_explicit);
    ]

let arm_to_json a =
  J.Obj
    [
      ("label", J.String a.a_label);
      ("tagged", J.Bool a.a_tagged);
      ("sblocks", J.Bool a.a_sblocks);
      ("tlb", J.Bool a.a_tlb);
      ("views", J.Bool a.a_views);
      ("reps", J.Int a.a_reps);
      ("seconds", J.Float a.a_seconds);
      ("ips", J.Float a.a_ips);
      ("counters", counters_to_json a.a_counters);
    ]

let point_to_json (s, i, v) =
  J.Obj
    [ ("seconds", J.Float s); ("instructions", J.Int i); ("ips", J.Float v) ]

let to_json t =
  J.Obj
    [
      ("reps", J.Int t.reps);
      ( "unixbench",
        J.Obj
          [
            ("arms", J.List (List.map arm_to_json t.unixbench));
            ("speedup_tlb_vs_no_tlb", J.Float t.unixbench_speedup);
            ("speedup_tlb_vs_no_tlb_noviews", J.Float t.unixbench_speedup_noviews);
            ("speedup_sblocks_vs_tlb", J.Float t.unixbench_speedup_sblocks);
            ( "speedup_sblocks_vs_tlb_noviews",
              J.Float t.unixbench_speedup_sblocks_noviews );
          ] );
      ( "httperf",
        J.Obj
          [
            ("arms", J.List (List.map arm_to_json t.httperf));
            ("speedup_tlb_vs_no_tlb", J.Float t.httperf_speedup);
            ("speedup_sblocks_vs_tlb", J.Float t.httperf_speedup_sblocks);
          ] );
      ( "warm_cold",
        J.Obj [ ("cold", point_to_json t.cold); ("warm", point_to_json t.warm) ]
      );
    ]

let render t =
  let buf = Buffer.create 2048 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "Execution fast paths: wall-clock guest instructions/sec (reps=%d)\n\n"
    t.reps;
  let arm_line a =
    pr "  %-16s %10.3fs  %12d instr  %12.0f ips  (iTLB %d/%d, dTLB %d/%d)\n"
      a.a_label a.a_seconds a.a_counters.c_instructions a.a_ips
      a.a_counters.c_i_hits a.a_counters.c_i_misses a.a_counters.c_d_hits
      a.a_counters.c_d_misses;
    if a.a_sblocks then
      pr "  %-16s   sblocks: %d built, %d hits, %d invalidations, %d chains, \
          %d restamps\n"
        "" a.a_counters.c_sb_built a.a_counters.c_sb_hits
        a.a_counters.c_sb_invals a.a_counters.c_sb_chains
        a.a_counters.c_sb_restamps;
    if a.a_tlb then
      pr "  %-16s   flushes: %d view_switch, %d cow, %d growth, %d explicit\n"
        "" a.a_counters.c_fl_view_switch a.a_counters.c_fl_cow
        a.a_counters.c_fl_growth a.a_counters.c_fl_explicit
  in
  pr "UnixBench suite:\n";
  List.iter arm_line t.unixbench;
  pr "  tlb speedup (views on):      %.2fx\n" t.unixbench_speedup;
  pr "  tlb speedup (views off):     %.2fx\n" t.unixbench_speedup_noviews;
  pr "  sblocks speedup (views on):  %.2fx over the tlb arm\n"
    t.unixbench_speedup_sblocks;
  pr "  sblocks speedup (views off): %.2fx over the tlb arm\n\n"
    t.unixbench_speedup_sblocks_noviews;
  pr "httperf batch (apache view):\n";
  List.iter arm_line t.httperf;
  pr "  tlb speedup:     %.2fx\n" t.httperf_speedup;
  pr "  sblocks speedup: %.2fx over the tlb arm\n\n" t.httperf_speedup_sblocks;
  let s, i, v = t.cold in
  pr "syscall loop, cold TLB: %.4fs  %d instr  %.0f ips\n" s i v;
  let s, i, v = t.warm in
  pr "syscall loop, warm TLB: %.4fs  %d instr  %.0f ips\n" s i v;
  Buffer.contents buf
