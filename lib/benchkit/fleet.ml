module Os = Fc_machine.Os
module Hyp = Fc_hypervisor.Hypervisor
module Facechange = Fc_core.Facechange
module Stats = Fc_core.Stats
module App = Fc_apps.App
module Fault = Fc_faults.Fault
module Frand = Fc_faults.Frand
module Injector = Fc_faults.Injector
module Frame_cache = Fc_mem.Frame_cache
module HFleet = Fc_host.Fleet
module Pool = Fc_host.Pool
module Snapshot = Fc_snapshot.Snapshot
module J = Fc_obs.Jsonx

type cell = { c_report : HFleet.report; c_requested_domains : int }

type t = {
  f_seed : int;
  f_parallel : bool;
  f_pinned_guests : int;
  f_pinned : cell list;
  f_warm : cell list;
  f_sweep : cell list;
}

(* Same variety criteria as the chaos pool: different syscall mixes and
   interrupt environments, none of the heaviest scripts — a fleet runs
   hundreds of these. *)
let app_pool =
  [ "top"; "apache"; "gvim"; "tcpdump"; "bash"; "gzip"; "vsftpd"; "eog" ]

(* One guest VM, self-contained: everything below derives from the
   per-guest seed, so the result depends only on [index] — never on the
   domain that ran it.  Chaos-style (governed fault plan, enforced view,
   full-view companion) with the fast execution engine on; the
   differential harness (test/differential.ml) is what licenses flipping
   [sblocks] on without changing guest behavior.

   [?telemetry] arms the probe (ticker + sampler) at that period; the
   armed guest must produce the same digest as a disarmed one — the
   probe is behavior-invisible — which bench/check.exe --telemetry
   gates. *)
let run_guest ?telemetry ?(warm_start = false) profiles ~seed index =
  let gseed = Frand.mix seed index in
  let r = Frand.create gseed in
  let name = Frand.pick r app_pool in
  let n = 3 + Frand.int r 5 in
  let plan = Fault.gen ~seed:gseed ~rounds:100 ~n in
  let app = App.find_exn name in
  let os =
    Os.create ~config:(App.os_config app) ~sblocks:true
      (Profiles.image profiles)
  in
  let hyp = Hyp.attach os in
  let fc = Facechange.enable ~governor:Chaos.chaos_policy hyp in
  let (_ : int) = Facechange.load_view fc (Profiles.config_of profiles name) in
  let (_ : Fc_machine.Process.t) = Os.spawn os ~name (app.App.script 3) in
  let companion = App.find_exn "top" in
  let (_ : Fc_machine.Process.t) =
    Os.spawn os ~name:"fleet-companion" (companion.App.script 2)
  in
  let inj = Injector.arm ~os ~hyp ~fc plan in
  (* Warm start: freeze the fully-armed guest at its boot round, push it
     through the wire format, and run the restored machine instead.  The
     cell's digests must equal a cold boot's — the gate holds it there. *)
  let os, hyp, fc, inj =
    if not warm_start then (os, hyp, fc, inj)
    else begin
      let cursor = Injector.cursor inj ~position:(Os.round os) in
      let snap =
        Snapshot.capture
          ~meta:[ ("kind", "warm-boot"); ("app", name) ]
          ~cursor ~fc ~hyp os
      in
      Injector.disarm inj;
      match Snapshot.decode (Snapshot.encode snap) with
      | Error e ->
          failwith
            (Printf.sprintf "guest %d warm boot: %s" index
               (Snapshot.error_to_string e))
      | Ok s -> (
          let rs = Snapshot.restore ~image:(Profiles.image profiles) s in
          match (rs.Snapshot.r_hyp, rs.Snapshot.r_fc, rs.Snapshot.r_inj) with
          | Some hyp, Some fc, Some inj -> (rs.Snapshot.r_os, hyp, fc, inj)
          | _ ->
              failwith
                (Printf.sprintf "guest %d warm boot: layer missing" index))
    end
  in
  let probe =
    Option.map (fun period -> Probe.arm ~period ~os ~hyp ~fc ()) telemetry
  in
  let outcome =
    match Os.run ~max_rounds:12_000 os with
    | () -> "ok"
    | exception Os.Guest_panic "scheduler round budget exhausted" -> "wedged"
    | exception Os.Guest_panic m -> "panic: " ^ m
  in
  Injector.disarm inj;
  let telemetry =
    Option.map
      (fun p ->
        let r = Probe.finish p in
        (* the sum-equals-total invariant holds per guest or the whole
           armed cell is worthless — fail loudly, not in the merge *)
        List.iter
          (fun e -> failwith (Printf.sprintf "guest %d telemetry: %s" index e))
          r.Probe.r_resum_errors;
        {
          HFleet.t_series = r.Probe.r_series;
          t_folds = r.Probe.r_folds;
          t_samples = r.Probe.r_samples;
        })
      probe
  in
  HFleet.guest ?telemetry ~index ~app:name ~outcome ~stats:(Stats.capture fc)
    ~instructions:(Os.instructions os) ~cycles:(Os.cycles os)
    ~frame_keys:(Frame_cache.resident_keys (Hyp.frame_cache hyp))
    ()

let run_cell ?telemetry ?warm_start profiles ~seed ~domains ~guests =
  {
    c_report =
      HFleet.run ~domains ~guests
        (run_guest ?telemetry ?warm_start profiles ~seed);
    c_requested_domains = domains;
  }

(* The pinned cell is fixed regardless of --fast: the gate's exact
   counters must not depend on how much sweeping we did around them. *)
let pinned_guests = 40
let pinned_domains = [ 1; 2; 4 ]

let sweep_grid ~fast =
  if fast then ([ 1; 2 ], [ 10; 30 ]) else ([ 1; 2; 4; 8 ], [ 10; 50; 150; 500 ])

(* The warm cell re-runs the pinned fleet booted from wire-format
   snapshots; smaller domain set — the digest parity it proves is
   domain-count independent already. *)
let warm_domains = [ 1; 2 ]

let run ?(fast = false) ?(seed = 7) profiles =
  let pinned =
    List.map
      (fun domains ->
        run_cell profiles ~seed ~domains ~guests:pinned_guests)
      pinned_domains
  in
  let warm =
    List.map
      (fun domains ->
        run_cell ~warm_start:true profiles ~seed ~domains
          ~guests:pinned_guests)
      warm_domains
  in
  let domain_counts, guest_counts = sweep_grid ~fast in
  let sweep =
    List.concat_map
      (fun guests ->
        List.map
          (fun domains -> run_cell profiles ~seed ~domains ~guests)
          domain_counts)
      guest_counts
  in
  {
    f_seed = seed;
    f_parallel = Pool.parallel;
    f_pinned_guests = pinned_guests;
    f_pinned = pinned;
    f_warm = warm;
    f_sweep = sweep;
  }

let cell_to_json c =
  let r = c.c_report in
  J.Obj
    [
      ("domains", J.Int r.HFleet.r_domains);
      ("guests", J.Int r.HFleet.r_guests);
      (* wall clock: recorded for humans, never gated *)
      ("seconds", J.Float r.HFleet.r_seconds);
      ("ips", J.Float r.HFleet.r_ips);
      ("fingerprint", J.String r.HFleet.r_fingerprint);
      ("instructions", J.Int r.HFleet.r_instructions);
      ("cycles", J.Int r.HFleet.r_cycles);
      ("context_switches", J.Int r.HFleet.r_merged.Stats.context_switches);
      ("view_switches", J.Int r.HFleet.r_merged.Stats.view_switches);
      ("recoveries", J.Int r.HFleet.r_merged.Stats.recoveries);
      ("recovered_bytes", J.Int r.HFleet.r_merged.Stats.recovered_bytes);
      ("degradations", J.Int r.HFleet.r_merged.Stats.degradations);
      ("quarantines", J.Int r.HFleet.r_merged.Stats.quarantines);
      ("total_frames", J.Int r.HFleet.r_total_frames);
      ("unique_frames", J.Int r.HFleet.r_unique_frames);
      ("dedup_ratio", J.Float r.HFleet.r_dedup_ratio);
      ("panics", J.Int r.HFleet.r_panics);
      ("wedged", J.Int r.HFleet.r_wedged);
      ("per_app_ok", J.Bool r.HFleet.r_per_app_ok);
      ( "outcomes",
        J.Obj
          (List.map (fun (o, n) -> (o, J.Int n)) r.HFleet.r_outcomes) );
    ]

let to_json t =
  J.Obj
    [
      ("seed", J.Int t.f_seed);
      ("parallel_backend", J.Bool t.f_parallel);
      ( "pinned",
        J.Obj
          [
            ("guests", J.Int t.f_pinned_guests);
            ("cells", J.List (List.map cell_to_json t.f_pinned));
          ] );
      ( "warm",
        J.Obj
          [
            ("guests", J.Int t.f_pinned_guests);
            ("cells", J.List (List.map cell_to_json t.f_warm));
          ] );
      ("sweep", J.List (List.map cell_to_json t.f_sweep));
    ]

let render t =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "Fleet: seeded guest fleets sharded across domains (backend: %s)\n"
       (if t.f_parallel then "OCaml 5 Domains" else "sequential fallback"));
  let line prefix c =
    let r = c.c_report in
    Buffer.add_string buf
      (Printf.sprintf
         "  %s d=%-2d guests=%-4d  %6.2fs  %8.2fM ips  dedup %4.1f%% \
          (%d/%d frames)  sw=%-5d rec=%-4d ok=%d wedged=%d panics=%d  fp=%s\n"
         prefix r.HFleet.r_domains r.HFleet.r_guests r.HFleet.r_seconds
         (r.HFleet.r_ips /. 1e6)
         (100. *. r.HFleet.r_dedup_ratio)
         r.HFleet.r_unique_frames r.HFleet.r_total_frames
         r.HFleet.r_merged.Stats.view_switches
         r.HFleet.r_merged.Stats.recoveries
         (r.HFleet.r_guests - r.HFleet.r_panics - r.HFleet.r_wedged)
         r.HFleet.r_wedged r.HFleet.r_panics
         (String.sub r.HFleet.r_fingerprint 0 12))
  in
  Buffer.add_string buf
    (Printf.sprintf "  pinned cell (%d guests):\n" t.f_pinned_guests);
  List.iter (line "pin  ") t.f_pinned;
  let fps =
    List.sort_uniq String.compare
      (List.map (fun c -> c.c_report.HFleet.r_fingerprint) t.f_pinned)
  in
  Buffer.add_string buf
    (Printf.sprintf "  pinned fingerprints across domain counts: %s\n"
       (if List.length fps <= 1 then "IDENTICAL" else "DIVERGED"));
  Buffer.add_string buf "  warm-start cell (booted from snapshots):\n";
  List.iter (line "warm ") t.f_warm;
  let warm_fps =
    List.sort_uniq String.compare
      (List.map (fun c -> c.c_report.HFleet.r_fingerprint) t.f_warm)
  in
  Buffer.add_string buf
    (Printf.sprintf "  warm-start fingerprints vs cold boot: %s\n"
       (if warm_fps = fps || warm_fps = [] then "IDENTICAL" else "DIVERGED"));
  Buffer.add_string buf "  sweep:\n";
  List.iter (line "sweep") t.f_sweep;
  Buffer.contents buf
