module Os = Fc_machine.Os
module Hyp = Fc_hypervisor.Hypervisor
module Facechange = Fc_core.Facechange
module Governor = Fc_core.Governor
module Stats = Fc_core.Stats
module App = Fc_apps.App
module Fault = Fc_faults.Fault
module Frand = Fc_faults.Frand
module Injector = Fc_faults.Injector
module Snapshot = Fc_snapshot.Snapshot
module J = Fc_obs.Jsonx

type plan_row = {
  p_seed : int;
  p_app : string;
  p_faults : int;
  p_bp_misses : int;
  p_config_rejects : int;
  p_validation_misses : int;
  p_recoveries : int;
  p_storms : int;
  p_degradations : int;
  p_renarrows : int;
  p_quarantines : int;
  p_broken_backtraces : int;
  p_panic : string option;
  p_wedged : bool;
  p_attribution_ok : bool;
}

type summary = {
  s_governed : bool;
  s_plans : int;
  s_faults : int;
  s_bp_misses : int;
  s_config_rejects : int;
  s_validation_misses : int;
  s_recoveries : int;
  s_storms : int;
  s_degradations : int;
  s_renarrows : int;
  s_quarantines : int;
  s_broken_backtraces : int;
  s_panics : int;
  s_wedged : int;
  s_attribution_ok : bool;
  s_rows : plan_row list;
}

(* Storm thresholds low enough, and the cooldown short enough, that a
   ~200-round chaos guest can traverse the whole governor state machine:
   narrow -> throttled -> degraded -> renarrowed -> quarantined. *)
let chaos_policy =
  {
    Governor.default_policy with
    Governor.window_cycles = 250_000;
    throttle_after = 3;
    storm_after = 5;
    cooldown_cycles = 120_000;
  }

(* A stable app pool: variety in syscall mix and interrupt environment
   without the heaviest scripts (the suite runs hundreds of guests). *)
let app_pool =
  [ "top"; "apache"; "gvim"; "tcpdump"; "bash"; "gzip"; "vsftpd"; "eog" ]

let round_budget = 20_000

let run_plan ?(governed = true) ?(policy = chaos_policy) ?snapshot_every
    ?on_panic profiles ~seed =
  let r = Frand.create (seed lxor 0x5eed) in
  let name = Frand.pick r app_pool in
  let n = 4 + Frand.int r 7 in
  let plan = Fault.gen ~seed ~rounds:120 ~n in
  let app = App.find_exn name in
  let os = Os.create ~config:(App.os_config app) (Profiles.image profiles) in
  let hyp = Hyp.attach os in
  let fc =
    Facechange.enable ?governor:(if governed then Some policy else None) hyp
  in
  let (_ : int) = Facechange.load_view fc (Profiles.config_of profiles name) in
  let (_ : Fc_machine.Process.t) = Os.spawn os ~name (app.App.script 4) in
  (* a companion on the full view keeps context switches (and renarrow
     opportunities) flowing even while [name] is degraded *)
  let companion = App.find_exn "top" in
  let (_ : Fc_machine.Process.t) =
    Os.spawn os ~name:"chaos-companion" (companion.App.script 2)
  in
  let inj = Injector.arm ~os ~hyp ~fc plan in
  let panic, wedged =
    match snapshot_every with
    | None -> (
        match Os.run ~max_rounds:round_budget os with
        | () -> (None, false)
        | exception Os.Guest_panic "scheduler round budget exhausted" ->
            (None, true)
        | exception Os.Guest_panic m -> (Some m, false))
    | Some every ->
        (* Time-travel mode: run in [every]-round windows, keeping the
           last boundary snapshot.  A panic hands that snapshot (at most
           [every] rounds before the death) to [on_panic] — restoring it
           re-executes just the failing window. *)
        if every < 1 then
          invalid_arg "Chaos.run_plan: snapshot_every must be >= 1";
        let take () =
          let cursor = Injector.cursor inj ~position:(Os.round os) in
          Snapshot.capture
            ~meta:
              [
                ("kind", "chaos");
                ("seed", string_of_int seed);
                ("app", name);
                ("governed", if governed then "true" else "false");
                ("round", string_of_int (Os.round os));
                ( "max_rounds",
                  string_of_int (round_budget - Os.round os) );
              ]
            ~cursor ~fc ~hyp os
        in
        (* boot snapshot first: a panic inside the first window still has
           a restore point *)
        let last = ref (take ()) in
        let rec windows () =
          let stop_at = Os.round os + every in
          match
            Os.run
              ~until:(fun t -> Os.round t >= stop_at)
              ~max_rounds:(round_budget - Os.round os)
              os
          with
          | () ->
              if Os.round os >= stop_at then begin
                last := take ();
                windows ()
              end
              else (None, false) (* every process exited *)
          | exception Os.Guest_panic "scheduler round budget exhausted" ->
              (None, true)
          | exception Os.Guest_panic m ->
              Option.iter (fun f -> f ~seed ~panic:m !last) on_panic;
              (Some m, false)
        in
        windows ()
  in
  Injector.disarm inj;
  let st = Stats.capture fc in
  {
    p_seed = seed;
    p_app = name;
    p_faults = Injector.injected inj;
    p_bp_misses = Injector.bp_misses inj;
    p_config_rejects = Injector.config_rejects inj;
    p_validation_misses = Injector.validation_misses inj;
    p_recoveries = st.Stats.recoveries;
    p_storms = st.Stats.storms;
    p_degradations = st.Stats.degradations;
    p_renarrows = st.Stats.renarrows;
    p_quarantines = st.Stats.quarantines;
    p_broken_backtraces = st.Stats.broken_backtraces;
    p_panic = panic;
    p_wedged = wedged;
    p_attribution_ok = Stats.attribution_ok st;
  }

let run ?(plans = 100) ?(seed = 1) ?(governed = true) ?policy ?snapshot_every
    ?on_panic profiles =
  let rows =
    List.init plans (fun i ->
        run_plan ~governed ?policy ?snapshot_every ?on_panic profiles
          ~seed:(seed + i))
  in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  {
    s_governed = governed;
    s_plans = plans;
    s_faults = sum (fun r -> r.p_faults);
    s_bp_misses = sum (fun r -> r.p_bp_misses);
    s_config_rejects = sum (fun r -> r.p_config_rejects);
    s_validation_misses = sum (fun r -> r.p_validation_misses);
    s_recoveries = sum (fun r -> r.p_recoveries);
    s_storms = sum (fun r -> r.p_storms);
    s_degradations = sum (fun r -> r.p_degradations);
    s_renarrows = sum (fun r -> r.p_renarrows);
    s_quarantines = sum (fun r -> r.p_quarantines);
    s_broken_backtraces = sum (fun r -> r.p_broken_backtraces);
    s_panics = sum (fun r -> if r.p_panic = None then 0 else 1);
    s_wedged = sum (fun r -> if r.p_wedged then 1 else 0);
    s_attribution_ok = List.for_all (fun r -> r.p_attribution_ok) rows;
    s_rows = rows;
  }

let summary_to_json s =
  J.Obj
    [
      ("governed", J.Bool s.s_governed);
      ("plans", J.Int s.s_plans);
      ("faults_injected", J.Int s.s_faults);
      ("bp_misses", J.Int s.s_bp_misses);
      ("config_rejects", J.Int s.s_config_rejects);
      ("validation_misses", J.Int s.s_validation_misses);
      ("recoveries", J.Int s.s_recoveries);
      ("storms", J.Int s.s_storms);
      ("degradations", J.Int s.s_degradations);
      ("renarrows", J.Int s.s_renarrows);
      ("quarantines", J.Int s.s_quarantines);
      ("broken_backtraces", J.Int s.s_broken_backtraces);
      ("panics", J.Int s.s_panics);
      ("wedged", J.Int s.s_wedged);
      ("attribution_ok", J.Bool s.s_attribution_ok);
    ]

let render s =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "Chaos matrix: %d seeded fault plans, governor %s\n"
       s.s_plans
       (if s.s_governed then "ON" else "OFF"));
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf
           "  seed %-4d %-8s faults=%-2d rec=%-3d storms=%d deg=%d ren=%d \
            quar=%d broken=%d%s%s%s\n"
           r.p_seed r.p_app r.p_faults r.p_recoveries r.p_storms
           r.p_degradations r.p_renarrows r.p_quarantines r.p_broken_backtraces
           (match r.p_panic with
           | Some m -> Printf.sprintf "  PANIC: %s" m
           | None -> "")
           (if r.p_wedged then "  WEDGED" else "")
           (if r.p_attribution_ok then "" else "  ATTRIBUTION-DRIFT")))
    s.s_rows;
  Buffer.add_string buf
    (Printf.sprintf
       "  totals: %d faults (%d bp misses, %d config rejects), %d recoveries, \
        %d storms, %d degradations, %d renarrows, %d quarantines, %d broken \
        backtraces\n"
       s.s_faults s.s_bp_misses s.s_config_rejects s.s_recoveries s.s_storms
       s.s_degradations s.s_renarrows s.s_quarantines s.s_broken_backtraces);
  Buffer.add_string buf
    (Printf.sprintf "  panics: %d  wedged: %d  attribution: %s\n" s.s_panics
       s.s_wedged
       (if s.s_attribution_ok then "ok" else "DRIFTED"));
  Buffer.contents buf
