module Os = Fc_machine.Os
module Action = Fc_machine.Action
module Process = Fc_machine.Process
module Hyp = Fc_hypervisor.Hypervisor
module Phys = Fc_mem.Phys_mem
module Facechange = Fc_core.Facechange
module View = Fc_core.View

type mode_stats = {
  frames_allocated : int;
  recoveries : int;
  recovered_bytes : int;
  cow_breaks : int;
}

type sharing_report = {
  views : int;
  view_pages : int;
  shared : mode_stats;
  unshared : mode_stats;
  frames_saved : int;
  bytes_saved : int;
  reduction : float;
  parity : bool;
}

type t = { perf : Unixbench.fig6_point list; sharing : sharing_report }

(* A short resident-style workload: enough timer wakeups and syscalls
   under the kvmclock runtime environment to drive benign recoveries in
   every custom view (and therefore copy-on-write breaks when frames are
   shared). *)
let workload =
  Action.repeat 30
    [ Action.Syscall "getpid"; Action.Compute 2_000; Action.Sleep 20 ]
  @ [ Action.Exit ]

(* Load every profiled view into one guest with sharing on or off,
   measure the frames that cost, then run the residents and collect the
   recovery counters the parity check compares. *)
let measure_mode profiles ~share =
  let os = Os.create ~config:Os.runtime_config (Profiles.image profiles) in
  let hyp = Hyp.attach os in
  let opts = { Facechange.default_opts with share_frames = share } in
  let fc = Facechange.enable ~opts hyp in
  let before = Phys.live_frames (Os.phys os) in
  List.iter
    (fun (_, cfg) -> ignore (Facechange.load_view fc cfg))
    (Profiles.all_configs profiles);
  let frames_allocated = Phys.live_frames (Os.phys os) - before in
  let view_pages =
    List.fold_left
      (fun n v -> n + View.private_page_count v)
      0 (Facechange.views fc)
  in
  let procs =
    List.map
      (fun (app, _) -> Os.spawn os ~name:app workload)
      (Profiles.all_configs profiles)
  in
  Os.run ~until:(fun _ -> List.for_all Process.is_exited procs) os;
  ( view_pages,
    {
      frames_allocated;
      recoveries = Facechange.recoveries fc;
      recovered_bytes = Facechange.recovered_bytes fc;
      cow_breaks = Facechange.cow_breaks fc;
    } )

let sharing profiles =
  let view_pages, shared = measure_mode profiles ~share:true in
  let _, unshared = measure_mode profiles ~share:false in
  let frames_saved = unshared.frames_allocated - shared.frames_allocated in
  {
    views = List.length (Profiles.all_configs profiles);
    view_pages;
    shared;
    unshared;
    frames_saved;
    bytes_saved = frames_saved * Phys.page_size;
    reduction =
      (if unshared.frames_allocated = 0 then 0.
       else float_of_int frames_saved /. float_of_int unshared.frames_allocated);
    parity =
      shared.recoveries = unshared.recoveries
      && shared.recovered_bytes = unshared.recovered_bytes;
  }

let run ?view_counts profiles =
  { perf = Unixbench.fig6 ?view_counts profiles; sharing = sharing profiles }

let render_sharing r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "Frame sharing across the %d profiled views (%d view pages total):\n"
       r.views r.view_pages);
  Buffer.add_string buf
    (Printf.sprintf "  %-24s %10s %12s %12s %6s\n" "mode" "frames" "recoveries"
       "rec. bytes" "CoW");
  let row name (m : mode_stats) =
    Buffer.add_string buf
      (Printf.sprintf "  %-24s %10d %12d %12d %6d\n" name m.frames_allocated
         m.recoveries m.recovered_bytes m.cow_breaks)
  in
  row "sharing off (private)" r.unshared;
  row "sharing on" r.shared;
  Buffer.add_string buf
    (Printf.sprintf "  saved: %d frames (%d KiB), %.1f%% fewer frames\n"
       r.frames_saved (r.bytes_saved / 1024) (100. *. r.reduction));
  Buffer.add_string buf
    (Printf.sprintf "  recovery parity (counts and bytes bit-identical): %s\n"
       (if r.parity then "yes" else "NO — sharing is not behavior-invisible"));
  Buffer.contents buf

let render t = Unixbench.render t.perf ^ "\n" ^ render_sharing t.sharing
