(** Fig. 7, extended: the httperf Apache I/O experiment ({!Httperf}) plus
    the apache view's frame footprint — how many physical frames its
    pages actually occupy once byte-identical pages (above all the
    pure-UD2 fill pages) are interned in the frame cache. *)

type t = {
  io : Httperf.result;
  view_pages : int;   (** pages the apache view maps *)
  view_frames : int;  (** distinct physical frames backing them *)
  bytes_saved : int;
  reduction : float;  (** fraction of pages that needed no own frame *)
}

val run : ?rates:int list -> Profiles.t -> t
val render : t -> string
