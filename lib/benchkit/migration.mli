(** The migration benchmark arm ([bench/main.exe -- migrate]).

    For each pre-copy round count, seeded chaos-style guests are run to a
    fixed round, live-migrated ({!Fc_host.Migrate}) and resumed on the
    destination machine; a control run of the same seed goes
    uninterrupted.  The acceptance property is digest {e parity}: the
    migrated guest must finish with exactly the control's fingerprint
    (outcome, stats, instructions, cycles, resident frame keys).  The arm
    tabulates how the final dirty set — and so the modeled downtime —
    shrinks as pre-copy rounds grow.

    [bench/check.exe --migrate] pins the deterministic counters (pages,
    bytes, snapshot sizes, parity, zero panics); [downtime_cycles] is a
    cost model and is recorded but never gated. *)

type row = {
  w_seed : int;
  w_app : string;
  w_precopy_rounds : int;
  w_migrated : bool;  (** false when the guest died before the handoff *)
  w_pages_total : int;
  w_pages_copied : int;
  w_final_dirty : int;
  w_bytes_copied : int;
  w_snapshot_bytes : int;
  w_downtime_cycles : int;
  w_outcome : string;
  w_parity : bool;  (** migrated digest = control digest *)
}

type t = {
  g_seed : int;
  g_migrate_at : int;  (** scheduler round the handoff starts at *)
  g_window_rounds : int;  (** guest rounds between pre-copy iterations *)
  g_rows : row list;
  g_parity_ok : bool;
  g_panics : int;
}

val run : ?fast:bool -> ?seed:int -> Profiles.t -> t
(** [seed] defaults to 11; [fast] (default [false]) shrinks the pre-copy
    grid and seeds per cell. *)

val to_json : t -> Fc_obs.Jsonx.t
(** The [BENCH_migrate.json] payload (under the ["migrate"] key). *)

val render : t -> string
