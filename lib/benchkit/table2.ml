module Attack = Fc_attacks.Attack

type row = { per_app : Detect.outcome; union : Detect.outcome }

let run_all profiles =
  List.map
    (fun attack ->
      {
        per_app = Detect.run profiles ~mode:Detect.Per_app attack;
        union = Detect.run profiles ~mode:Detect.Union attack;
      })
    Attack.all

let render rows =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "%-13s %-38s %-9s %-9s %-7s %s\n" "Name" "Infection Method"
       "Detected" "Union" "Unknown" "Evidence (recovered)");
  List.iter
    (fun { per_app; union } ->
      let a = per_app.Detect.attack in
      Buffer.add_string buf
        (Printf.sprintf "%-13s %-38s %-9s %-9s %-7s %s\n" a.Attack.name
           (Attack.kind_label a.Attack.kind)
           (if per_app.Detect.detected then "YES" else "no")
           (if union.Detect.detected then "YES" else "no")
           (if per_app.Detect.unknown_frames then "yes" else "-")
           (String.concat ", " per_app.Detect.evidence));
      match per_app.Detect.panic with
      | Some m ->
          Buffer.add_string buf
            (Printf.sprintf "%13s guest panic: %s\n" "" m)
      | None -> ())
    rows;
  Buffer.contents buf

let summary rows =
  let count f = List.length (List.filter f rows) in
  Printf.sprintf
    "detected %d/%d under per-application views; %d/%d under the union view \
     (system-wide minimization blind spot: %d attacks)"
    (count (fun r -> r.per_app.Detect.detected))
    (List.length rows)
    (count (fun r -> r.union.Detect.detected))
    (List.length rows)
    (count (fun r -> r.per_app.Detect.detected && not r.union.Detect.detected))
