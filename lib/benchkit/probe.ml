(* The telemetry probe: one object that arms both halves of the
   continuous-telemetry layer on a guest — the delta-encoded time series
   (Fc_obs.Timeseries) and the guest-PC profiler (Fc_obs.Sampler) — off
   a single deterministic instruction-count ticker (Os.arm_tick).

   Everything here must be behavior-invisible: the sampler walks stacks
   through Hypervisor.sample_stack (uncharged, span-free), and the
   series scrape only reads the registry.  The only guest-visible state
   the probe touches is the software TLB warmed by its VMI reads, whose
   counters live in the fingerprint exclusion list — so an armed run
   retires the same instructions, charges the same cycles and captures
   the same stats as a disarmed one, which bench/check.exe --telemetry
   pins. *)

module Os = Fc_machine.Os
module Cpu = Fc_machine.Cpu
module Process = Fc_machine.Process
module Hyp = Fc_hypervisor.Hypervisor
module Facechange = Fc_core.Facechange
module Obs = Fc_obs.Obs
module Event = Fc_obs.Event
module Metrics = Fc_obs.Metrics
module Timeseries = Fc_obs.Timeseries
module Sampler = Fc_obs.Sampler

(* ~10-60 intervals for the workloads benchkit runs (one guest retires
   on the order of 10^6 instructions) — enough resolution for `top` and
   flamegraphs without ring pressure. *)
let default_period = 100_000

type t = {
  os : Os.t;
  hyp : Hyp.t;
  fc : Facechange.t;
  series : Timeseries.t;
  sampler : Sampler.t;
  wall : (unit -> float) option;
  mutable ticks : int;
}

type result = {
  r_series : Timeseries.series;
  r_folds : Sampler.fold list;
  r_ticks : int;
  r_samples : int;
  r_vcpus : int;
  r_resum_errors : string list;
}

(* One sample per vCPU: the task current on that vCPU, its kernel stack
   when it is parked in the kernel (saved_regs is the suspended frame
   the scheduler stashed), a bare "user" frame otherwise.  Frames are
   recorded root-first, which is what the collapsed-stack format wants;
   sample_stack returns them leaf-first. *)
let sample t =
  let obs = Os.obs t.os in
  for vid = 0 to Os.vcpu_count t.os - 1 do
    let p = Os.current_of t.os ~vid in
    let comm = p.Process.name in
    let view = Facechange.active_index ~vid t.fc in
    let pc, frames =
      match p.Process.saved_regs with
      | Some regs when p.Process.in_kernel ->
          let w =
            Hyp.sample_stack t.hyp ~eip:regs.Cpu.eip ~ebp:regs.Cpu.ebp
              ~esp:regs.Cpu.esp ()
          in
          (regs.Cpu.eip, List.rev_map (Hyp.render_addr t.hyp) w.Hyp.frames)
      | Some regs -> (regs.Cpu.eip, [ "user" ])
      | None -> (0, [ "user" ])
    in
    Sampler.record t.sampler ~comm ~frames;
    if Obs.armed obs then
      Obs.emit obs (Event.Sample { vid; pid = p.Process.pid; comm; pc; view })
  done

let tick t =
  t.ticks <- t.ticks + 1;
  (* sample before scraping: the stack walk's VMI reads bump tlb.*
     counters, and scraping afterwards keeps this tick's own footprint
     inside this interval — so a finished run's deltas still re-sum
     exactly to the registry. *)
  sample t;
  Timeseries.tick
    ?wall:(Option.map (fun f -> f ()) t.wall)
    t.series
    ~instructions:(Os.instructions t.os)

let arm ?(period = default_period) ?capacity ?wall ~os ~hyp ~fc () =
  let series = Timeseries.create ?capacity ~period (Obs.metrics (Os.obs os)) in
  let t =
    { os; hyp; fc; series; sampler = Sampler.create (); wall; ticks = 0 }
  in
  Os.arm_tick os ~period (fun () -> tick t);
  t

(* Every registry counter whose series total disagrees with its final
   registry value.  Empty for any run whose ring shed nothing — the
   sum-equals-total invariant.  Not applicable once the ring dropped
   points (the window no longer covers the whole run). *)
let resum_errors t series =
  if series.Timeseries.s_dropped > 0 then []
  else
    let totals = Timeseries.totals series in
    List.filter_map
      (fun (s : Metrics.sample) ->
        match s.Metrics.value with
        | Metrics.Counter v ->
            let key = Timeseries.sample_key s in
            let summed =
              Option.value ~default:0 (List.assoc_opt key totals)
            in
            if summed <> v then
              Some (Printf.sprintf "%s: deltas sum to %d, registry has %d"
                      key summed v)
            else None
        | _ -> None)
      (Metrics.snapshot (Obs.metrics (Os.obs t.os)))

let finish t =
  Os.disarm_tick t.os;
  (* flush the tail: work retired since the last period mark *)
  tick t;
  let series = Timeseries.export t.series in
  {
    r_series = series;
    r_folds = Sampler.export t.sampler;
    r_ticks = t.ticks;
    r_samples = Sampler.samples t.sampler;
    r_vcpus = Os.vcpu_count t.os;
    r_resum_errors = resum_errors t series;
  }
