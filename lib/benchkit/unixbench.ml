module Os = Fc_machine.Os
module Action = Fc_machine.Action
module Process = Fc_machine.Process
module Hyp = Fc_hypervisor.Hypervisor
module Facechange = Fc_core.Facechange

type subtest = { st_name : string; procs : (string * Action.t list) list }

let s v = Action.Syscall v
let rep = Action.repeat
let single name script = { st_name = name; procs = [ ("unixbench", script) ] }

let subtests =
  [
    single "Dhrystone 2" (rep 100 [ Action.Compute 30_000 ] @ [ Action.Exit ]);
    single "Double-Precision Whetstone"
      (rep 90 [ Action.Compute 35_000 ] @ [ Action.Exit ]);
    single "Execl Throughput" (rep 160 [ s "execve"; Action.Compute 500 ] @ [ Action.Exit ]);
    single "File Copy 1024 bufsize"
      ([ s "open:ext4"; s "open:ext4" ]
      @ rep 250 [ s "read:ext4"; s "write:ext4" ]
      @ [ s "close"; s "close"; Action.Exit ]);
    single "Pipe Throughput"
      ([ s "pipe" ] @ rep 400 [ s "write:pipe"; s "read:pipe" ] @ [ Action.Exit ]);
    {
      st_name = "Pipe-based Context Switching";
      procs =
        (let script =
           [ s "pipe" ]
           @ rep 80 [ s "write:pipe"; s "poll:pipe"; s "read:pipe" ]
           @ [ Action.Exit ]
         in
         [ ("ubench_ctx1", script); ("ubench_ctx2", script) ]);
    };
    single "Process Creation" (rep 150 [ s "fork"; s "waitpid" ] @ [ Action.Exit ]);
    single "Shell Scripts (1 concurrent)"
      (rep 60
         [ s "fork"; s "execve"; s "open:ext4"; s "read:ext4"; s "pipe";
           s "write:pipe"; s "read:pipe"; s "waitpid"; s "close" ]
      @ [ Action.Exit ]);
    single "System Call Overhead"
      (rep 1000 [ s "getpid"; s "getuid" ] @ [ Action.Exit ]);
  ]

let subtest_names = List.map (fun t -> t.st_name) subtests

(* A quiet, deterministic benchmarking environment: timer only. *)
let bench_config =
  (* quantum 32: a realistic timeslice's worth of work between
     involuntary switches *)
  { Os.default_config with timer_period = 60_000; background_irqs = []; quantum = 32 }

(* A mostly idle resident application: wakes on timers, sleeps again —
   what the paper's co-resident Table I applications do while UnixBench
   runs. *)
let resident_script =
  Action.repeat 2_000 [ Action.Compute 600; Action.Sleep 300 ]
  @ [ Action.Exit ]

let run_one image ~views ~residents ~enabled subtest =
  let os = Os.create ~config:bench_config image in
  if enabled then begin
    let hyp = Hyp.attach os in
    let fc = Facechange.enable hyp in
    List.iter (fun cfg -> ignore (Facechange.load_view fc cfg)) views
  end;
  let resident_procs =
    List.map (fun name -> Os.spawn os ~name resident_script) residents
  in
  (* let the residents settle into their sleep pattern before measuring *)
  if resident_procs <> [] then
    Os.run
      ~until:(fun _ -> List.for_all (fun p -> not (Process.is_ready p)) resident_procs)
      os;
  let bench =
    List.map (fun (name, script) -> Os.spawn os ~name script) subtest.procs
  in
  let before = Os.cycles os in
  Os.run ~until:(fun _ -> List.for_all Process.is_exited bench) os;
  let elapsed = Os.cycles os - before in
  1_000_000_000. /. float_of_int (max 1 elapsed)

let run_suite image ~views ~enabled =
  let residents = List.map (fun c -> c.Fc_profiler.View_config.app) views in
  List.map
    (fun st -> (st.st_name, run_one image ~views ~residents ~enabled st))
    subtests

type fig6_point = {
  views_loaded : int;
  overall : float;
  per_test : (string * float) list;
}

(* [1.] for an empty list: the neutral normalized index, and no 0/0. *)
let geometric_mean = function
  | [] -> 1.
  | xs ->
      exp
        (List.fold_left (fun a x -> a +. log x) 0. xs
        /. float_of_int (List.length xs))

(* The paper loads the Table I views one at a time, excluding gzip
   ("not a long running application"). *)
let fig6_apps =
  [ "apache"; "firefox"; "totem"; "gvim"; "vsftpd"; "top"; "tcpdump"; "mysqld";
    "bash"; "sshd"; "eog" ]

let fig6 ?view_counts profiles =
  let image = Profiles.image profiles in
  let counts =
    match view_counts with
    | Some l -> l
    | None -> List.init (List.length fig6_apps) (fun i -> i + 1)
  in
  let point views_loaded =
    let views =
      List.filteri (fun i _ -> i < views_loaded) fig6_apps
      |> List.map (Profiles.config_of profiles)
    in
    (* normalize against the same resident mix without FACE-CHANGE, so the
       curve isolates the hypervisor's own overhead *)
    let residents = List.map (fun c -> c.Fc_profiler.View_config.app) views in
    let per_test =
      List.map
        (fun st ->
          let base = run_one image ~views:[] ~residents ~enabled:false st in
          let fc = run_one image ~views ~residents ~enabled:true st in
          (* a subtest that scored 0 at baseline has no meaningful ratio;
             report the neutral 1.0 rather than a NaN/infinity *)
          (st.st_name, if base <= 0. then 1. else fc /. base))
        subtests
    in
    { views_loaded; overall = geometric_mean (List.map snd per_test); per_test }
  in
  { views_loaded = 0; overall = 1.0;
    per_test = List.map (fun n -> (n, 1.0)) subtest_names }
  :: List.map point counts

let render points =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "Normalized UnixBench index vs number of kernel views loaded (cf. paper Fig. 6)\n";
  Buffer.add_string buf
    "(baseline = FACE-CHANGE disabled, same resident applications = 1.000)\n\n";
  Buffer.add_string buf (Printf.sprintf "%-6s %-8s\n" "views" "overall");
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%-6s %.3f\n"
           (if p.views_loaded = 0 then "off" else string_of_int p.views_loaded)
           p.overall))
    points;
  (match List.rev (List.filter (fun p -> p.views_loaded > 0) points) with
  | p :: _ ->
      Buffer.add_string buf
        (Printf.sprintf "\nPer-subtest (%d views loaded):\n" p.views_loaded);
      List.iter
        (fun (n, v) -> Buffer.add_string buf (Printf.sprintf "  %-32s %.3f\n" n v))
        p.per_test
  | [] -> ());
  Buffer.contents buf
