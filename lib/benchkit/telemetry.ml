(* The telemetry benchmark arm ([bench/main.exe -- telemetry]): prove the
   continuous-telemetry layer deterministic and behavior-invisible, and
   produce the artifacts the CLI renders (`facechange top`, flamegraphs).

   Three sections, all gated by bench/check.exe --telemetry:

   - armed fleet: the pinned 40-guest cell re-run at 1/2/4 domains with
     the probe armed on every guest, plus one disarmed control cell.
     The fleet fingerprint must match the disarmed one (arming costs no
     guest-visible work) and the merged telemetry fingerprint must match
     across domain counts (the merge is shard-independent).

   - engine matrix: one fixed chaos-style guest run under all four
     {sblocks}x{tlb} engine arms with the probe armed.  The series and
     profiler fingerprints must be identical across arms — the ticker
     fires at instruction marks, and instruction retirement is exactly
     what the differential harness pins.

   - profile: a unixbench-style armed run producing the folded-stack
     profile (BENCH_profile.folded) and a wall-clocked series for
     `facechange top`. *)

module Os = Fc_machine.Os
module Process = Fc_machine.Process
module Hyp = Fc_hypervisor.Hypervisor
module Facechange = Fc_core.Facechange
module Stats = Fc_core.Stats
module App = Fc_apps.App
module Fault = Fc_faults.Fault
module Injector = Fc_faults.Injector
module HFleet = Fc_host.Fleet
module Pool = Fc_host.Pool
module Timeseries = Fc_obs.Timeseries
module Sampler = Fc_obs.Sampler
module J = Fc_obs.Jsonx

type engine_arm = {
  ea_name : string;  (** e.g. ["sb+tlb"] *)
  ea_sblocks : bool;
  ea_tlb : bool;
  ea_outcome : string;
  ea_intervals : int;
  ea_samples : int;
  ea_series_fp : string;  (** {!Timeseries.fingerprint}, engine excludes *)
  ea_sampler_fp : string;  (** {!Sampler.fingerprint} *)
  ea_resum_errors : string list;
}

type profile = {
  pr_workload : string;
  pr_period : int;
  pr_ticks : int;
  pr_samples : int;
  pr_vcpus : int;
  pr_outcome : string;
  pr_series : Timeseries.series;
  pr_folds : Sampler.fold list;
  pr_resum_errors : string list;
}

type t = {
  t_seed : int;
  t_period : int;
  t_parallel : bool;
  t_armed : Fleet.cell list;  (** pinned cell, armed, at 1/2/4 domains *)
  t_disarmed : Fleet.cell;  (** the control: same cell, probe off *)
  t_matrix : engine_arm list;
  t_profile : profile;
}

(* ------------------------------------------------------------------ *)
(* Engine matrix                                                       *)
(* ------------------------------------------------------------------ *)

let arm_name ~sblocks ~tlb =
  Printf.sprintf "%s+%s"
    (if sblocks then "sb" else "no-sb")
    (if tlb then "tlb" else "no-tlb")

(* One fixed chaos-style guest (enforced app + full-view companion +
   governed fault plan), probe armed, under the given engine toggles.
   Everything except the toggles is constant, so any fingerprint drift
   across arms is the engine showing through the telemetry. *)
let engine_arm profiles ~seed ~sblocks ~tlb =
  let name = "apache" in
  let plan = Fault.gen ~seed ~rounds:100 ~n:5 in
  let app = App.find_exn name in
  let os =
    Os.create ~config:(App.os_config app) ~tlb ~sblocks
      (Profiles.image profiles)
  in
  let hyp = Hyp.attach os in
  let fc = Facechange.enable ~governor:Chaos.chaos_policy hyp in
  let (_ : int) = Facechange.load_view fc (Profiles.config_of profiles name) in
  let (_ : Process.t) = Os.spawn os ~name (app.App.script 3) in
  let companion = App.find_exn "top" in
  let (_ : Process.t) =
    Os.spawn os ~name:"matrix-companion" (companion.App.script 2)
  in
  let probe = Probe.arm ~os ~hyp ~fc () in
  let inj = Injector.arm ~os ~hyp ~fc plan in
  let outcome =
    match Os.run ~max_rounds:12_000 os with
    | () -> "ok"
    | exception Os.Guest_panic m -> "panic: " ^ m
  in
  Injector.disarm inj;
  let r = Probe.finish probe in
  {
    ea_name = arm_name ~sblocks ~tlb;
    ea_sblocks = sblocks;
    ea_tlb = tlb;
    ea_outcome = outcome;
    ea_intervals = r.Probe.r_series.Timeseries.s_intervals;
    ea_samples = r.Probe.r_samples;
    ea_series_fp = Timeseries.fingerprint r.Probe.r_series;
    ea_sampler_fp = Sampler.fingerprint r.Probe.r_folds;
    ea_resum_errors = r.Probe.r_resum_errors;
  }

let engine_configs =
  [ (false, false); (false, true); (true, false); (true, true) ]

(* ------------------------------------------------------------------ *)
(* Profile                                                             *)
(* ------------------------------------------------------------------ *)

let profile_subtest = "Shell Scripts (1 concurrent)"

(* Unixbench's run_one shape — quiet bench config, one resident under
   its enforced view, the benchmark processes unbound — with the probe
   armed and wall-clocked for `facechange top`. *)
let run_profile profiles =
  let subtest =
    List.find
      (fun s -> s.Unixbench.st_name = profile_subtest)
      Unixbench.subtests
  in
  let os =
    Os.create ~config:Unixbench.bench_config ~sblocks:true
      (Profiles.image profiles)
  in
  let hyp = Hyp.attach os in
  let fc = Facechange.enable hyp in
  let (_ : int) = Facechange.load_view fc (Profiles.config_of profiles "top") in
  let resident = Os.spawn os ~name:"top" Unixbench.resident_script in
  let probe = Probe.arm ~wall:Unix.gettimeofday ~os ~hyp ~fc () in
  let outcome =
    match
      Os.run ~until:(fun _ -> not (Process.is_ready resident)) os;
      let bench =
        List.map
          (fun (name, script) -> Os.spawn os ~name script)
          subtest.Unixbench.procs
      in
      Os.run ~until:(fun _ -> List.for_all Process.is_exited bench) os
    with
    | () -> "ok"
    | exception Os.Guest_panic m -> "panic: " ^ m
  in
  let r = Probe.finish probe in
  {
    pr_workload = profile_subtest;
    pr_period = Probe.default_period;
    pr_ticks = r.Probe.r_ticks;
    pr_samples = r.Probe.r_samples;
    pr_vcpus = r.Probe.r_vcpus;
    pr_outcome = outcome;
    pr_series = r.Probe.r_series;
    pr_folds = r.Probe.r_folds;
    pr_resum_errors = r.Probe.r_resum_errors;
  }

(* ------------------------------------------------------------------ *)
(* The arm                                                             *)
(* ------------------------------------------------------------------ *)

let run ?(seed = 7) profiles =
  let period = Probe.default_period in
  let armed =
    List.map
      (fun domains ->
        Fleet.run_cell ~telemetry:period profiles ~seed ~domains
          ~guests:Fleet.pinned_guests)
      Fleet.pinned_domains
  in
  let disarmed =
    Fleet.run_cell profiles ~seed ~domains:1 ~guests:Fleet.pinned_guests
  in
  let matrix =
    List.map
      (fun (sblocks, tlb) -> engine_arm profiles ~seed:1021 ~sblocks ~tlb)
      engine_configs
  in
  {
    t_seed = seed;
    t_period = period;
    t_parallel = Pool.parallel;
    t_armed = armed;
    t_disarmed = disarmed;
    t_matrix = matrix;
    t_profile = run_profile profiles;
  }

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let telemetry_to_json (tel : HFleet.telemetry) =
  let s = tel.HFleet.t_series in
  J.Obj
    [
      ("period", J.Int s.Timeseries.s_period);
      ("intervals", J.Int s.Timeseries.s_intervals);
      ("dropped", J.Int s.Timeseries.s_dropped);
      ("samples", J.Int tel.HFleet.t_samples);
      ("stacks", J.Int (List.length tel.HFleet.t_folds));
      ("series_fingerprint", J.String (Timeseries.fingerprint s));
      ("sampler_fingerprint", J.String (Sampler.fingerprint tel.HFleet.t_folds));
      ( "totals",
        J.Obj (List.map (fun (k, v) -> (k, J.Int v)) (Timeseries.totals s)) );
    ]

let cell_to_json c =
  let r = c.Fleet.c_report in
  J.Obj
    ([
       ("domains", J.Int r.HFleet.r_domains);
       ("guests", J.Int r.HFleet.r_guests);
       (* wall clock: recorded for humans, never gated *)
       ("seconds", J.Float r.HFleet.r_seconds);
       ("fingerprint", J.String r.HFleet.r_fingerprint);
       ("instructions", J.Int r.HFleet.r_instructions);
       ("cycles", J.Int r.HFleet.r_cycles);
       ("context_switches", J.Int r.HFleet.r_merged.Stats.context_switches);
       ("view_switches", J.Int r.HFleet.r_merged.Stats.view_switches);
       ("recoveries", J.Int r.HFleet.r_merged.Stats.recoveries);
       ("recovered_bytes", J.Int r.HFleet.r_merged.Stats.recovered_bytes);
       ("degradations", J.Int r.HFleet.r_merged.Stats.degradations);
       ("quarantines", J.Int r.HFleet.r_merged.Stats.quarantines);
       ("total_frames", J.Int r.HFleet.r_total_frames);
       ("unique_frames", J.Int r.HFleet.r_unique_frames);
       ("panics", J.Int r.HFleet.r_panics);
       ("wedged", J.Int r.HFleet.r_wedged);
     ]
    @
    match r.HFleet.r_telemetry with
    | None -> []
    | Some tel -> [ ("telemetry", telemetry_to_json tel) ])

let arm_to_json a =
  J.Obj
    [
      ("arm", J.String a.ea_name);
      ("sblocks", J.Bool a.ea_sblocks);
      ("tlb", J.Bool a.ea_tlb);
      ("outcome", J.String a.ea_outcome);
      ("intervals", J.Int a.ea_intervals);
      ("samples", J.Int a.ea_samples);
      ("series_fingerprint", J.String a.ea_series_fp);
      ("sampler_fingerprint", J.String a.ea_sampler_fp);
      ("resum_errors", J.List (List.map (fun e -> J.String e) a.ea_resum_errors));
    ]

let profile_to_json p =
  J.Obj
    [
      ("workload", J.String p.pr_workload);
      ("period", J.Int p.pr_period);
      ("ticks", J.Int p.pr_ticks);
      ("samples", J.Int p.pr_samples);
      ("vcpus", J.Int p.pr_vcpus);
      ("outcome", J.String p.pr_outcome);
      ("intervals", J.Int p.pr_series.Timeseries.s_intervals);
      ("dropped", J.Int p.pr_series.Timeseries.s_dropped);
      ("stacks", J.Int (List.length p.pr_folds));
      ("fold_total", J.Int (Sampler.total p.pr_folds));
      ("resum_errors",
       J.List (List.map (fun e -> J.String e) p.pr_resum_errors));
      ("series", Fc_obs.Export.timeseries_to_json p.pr_series);
      (* folds ride in the artifact too (not only BENCH_profile.folded)
         so `facechange top` can rank comms from the JSON alone *)
      ( "folds",
        J.List
          (List.map
             (fun f ->
               J.Obj
                 [
                   ("stack", J.String f.Sampler.f_stack);
                   ("count", J.Int f.Sampler.f_count);
                 ])
             p.pr_folds) );
    ]

let to_json t =
  J.Obj
    [
      ("seed", J.Int t.t_seed);
      ("period", J.Int t.t_period);
      ("parallel_backend", J.Bool t.t_parallel);
      ("armed_cells", J.List (List.map cell_to_json t.t_armed));
      ("disarmed_cell", cell_to_json t.t_disarmed);
      ("matrix", J.List (List.map arm_to_json t.t_matrix));
      ("profile", profile_to_json t.t_profile);
    ]

let folded t = Sampler.folded_text t.t_profile.pr_folds

let render t =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "Telemetry: period=%d instructions/interval (backend: %s)\n"
       t.t_period
       (if t.t_parallel then "OCaml 5 Domains" else "sequential fallback"));
  List.iter
    (fun c ->
      let r = c.Fleet.c_report in
      match r.HFleet.r_telemetry with
      | None -> ()
      | Some tel ->
          let s = tel.HFleet.t_series in
          Buffer.add_string buf
            (Printf.sprintf
               "  armed d=%-2d  intervals=%-3d samples=%-6d stacks=%-4d \
                series_fp=%s\n"
               r.HFleet.r_domains s.Timeseries.s_intervals
               tel.HFleet.t_samples
               (List.length tel.HFleet.t_folds)
               (String.sub (Timeseries.fingerprint s) 0 12)))
    t.t_armed;
  let armed_fp =
    List.sort_uniq String.compare
      (List.map (fun c -> c.Fleet.c_report.HFleet.r_fingerprint) t.t_armed)
  in
  let invisible =
    armed_fp = [ t.t_disarmed.Fleet.c_report.HFleet.r_fingerprint ]
  in
  Buffer.add_string buf
    (Printf.sprintf "  armed vs disarmed fleet fingerprint: %s\n"
       (if invisible then "IDENTICAL (probe is behavior-invisible)"
        else "DIVERGED"));
  List.iter
    (fun a ->
      Buffer.add_string buf
        (Printf.sprintf
           "  matrix %-13s %-4s intervals=%-3d samples=%-5d fp=%s/%s\n"
           a.ea_name a.ea_outcome a.ea_intervals a.ea_samples
           (String.sub a.ea_series_fp 0 12)
           (String.sub a.ea_sampler_fp 0 12)))
    t.t_matrix;
  let p = t.t_profile in
  Buffer.add_string buf
    (Printf.sprintf
       "  profile %-28s ticks=%-3d samples=%-4d (%d vcpu) stacks=%d\n"
       p.pr_workload p.pr_ticks p.pr_samples p.pr_vcpus
       (List.length p.pr_folds));
  Buffer.contents buf
