module Os = Fc_machine.Os
module Action = Fc_machine.Action
module Hyp = Fc_hypervisor.Hypervisor
module Facechange = Fc_core.Facechange
module App = Fc_apps.App

type result = {
  base_capacity : float;
  fc_capacity : float;
  cycles_per_second : float;
  series : (int * float) list;
}

let requests = 100

(* One request's kernel work, from the apache steady-state loop. *)
let request_actions =
  [
    Action.Syscall "epoll_wait:tcp"; Action.Syscall "accept:tcp";
    Action.Syscall "recv:tcp"; Action.Syscall "stat:ext4";
    Action.Syscall "open:ext4"; Action.Syscall "sendfile:tcp";
    Action.Syscall "send:tcp"; Action.Syscall "close"; Action.Syscall "close:tcp";
    Action.Compute 150_000; (* user-space request processing *)
  ]

let serve_batch profiles ~enabled =
  let app = App.find_exn "apache" in
  let config = { (App.os_config app) with Os.wake_delay = 2 } in
  let os = Os.create ~config (Profiles.image profiles) in
  if enabled then begin
    let hyp = Hyp.attach os in
    let fc = Facechange.enable hyp in
    let (_ : int) = Facechange.load_view fc (Profiles.config_of profiles "apache") in
    ()
  end;
  let script =
    [ Action.Syscall "socket:tcp"; Action.Syscall "setsockopt:tcp";
      Action.Syscall "bind:tcp"; Action.Syscall "listen:tcp";
      Action.Syscall "epoll_create"; Action.Syscall "epoll_ctl" ]
    @ Action.repeat requests request_actions
    @ [ Action.Exit ]
  in
  let (_ : Fc_machine.Process.t) = Os.spawn os ~name:"apache" script in
  let before = Os.cycles os in
  Os.run os;
  float_of_int (Os.cycles os - before) /. float_of_int requests

let run ?(rates = List.init 12 (fun i -> 5 * (i + 1))) profiles =
  let per_req_base = serve_batch profiles ~enabled:false in
  let per_req_fc = serve_batch profiles ~enabled:true in
  (* calibrate the simulated clock so the baseline saturates at ~60.5
     req/s, matching the paper's testbed *)
  let cycles_per_second = per_req_base *. 60.5 in
  (* an empty run charges no cycles per request; keep the capacities (and
     the JSON artifact built from them) finite *)
  let base_capacity =
    if per_req_base <= 0. then 0. else cycles_per_second /. per_req_base
  in
  let fc_capacity =
    if per_req_fc <= 0. then 0. else cycles_per_second /. per_req_fc
  in
  let series =
    List.map
      (fun rate ->
        let r = float_of_int rate in
        let offered = Float.min r base_capacity in
        let ratio =
          if offered <= 0. then 1. else Float.min r fc_capacity /. offered
        in
        (rate, ratio))
      rates
  in
  { base_capacity; fc_capacity; cycles_per_second; series }

let render r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Apache I/O throughput ratio: FACE-CHANGE enabled / disabled (cf. paper Fig. 7)\n";
  Buffer.add_string buf
    (Printf.sprintf
       "capacity: baseline %.1f req/s, FACE-CHANGE %.1f req/s (100 connections)\n\n"
       r.base_capacity r.fc_capacity);
  Buffer.add_string buf (Printf.sprintf "%-12s %s\n" "rate(req/s)" "throughput ratio");
  List.iter
    (fun (rate, ratio) ->
      Buffer.add_string buf (Printf.sprintf "%-12d %.3f\n" rate ratio))
    r.series;
  Buffer.contents buf
