module Os = Fc_machine.Os
module Hyp = Fc_hypervisor.Hypervisor
module Facechange = Fc_core.Facechange
module Stats = Fc_core.Stats
module App = Fc_apps.App
module Fault = Fc_faults.Fault
module Frand = Fc_faults.Frand
module Injector = Fc_faults.Injector
module Frame_cache = Fc_mem.Frame_cache
module HFleet = Fc_host.Fleet
module Migrate = Fc_host.Migrate
module J = Fc_obs.Jsonx

type row = {
  w_seed : int;
  w_app : string;
  w_precopy_rounds : int;
  w_migrated : bool;  (** false when the guest died before the handoff *)
  w_pages_total : int;
  w_pages_copied : int;
  w_final_dirty : int;
  w_bytes_copied : int;
  w_snapshot_bytes : int;
  w_downtime_cycles : int;
  w_outcome : string;
  w_parity : bool;
}

type t = {
  g_seed : int;
  g_migrate_at : int;
  g_window_rounds : int;
  g_rows : row list;
  g_parity_ok : bool;
  g_panics : int;
}

(* Same pool and shape as a fleet guest: chaos-governed, enforced view,
   full-view companion, superblocks on. *)
let app_pool =
  [ "top"; "apache"; "gvim"; "tcpdump"; "bash"; "gzip"; "vsftpd"; "eog" ]

let round_budget = 12_000

let build profiles ~gseed =
  let r = Frand.create gseed in
  let name = Frand.pick r app_pool in
  let n = 3 + Frand.int r 5 in
  let plan = Fault.gen ~seed:gseed ~rounds:100 ~n in
  let app = App.find_exn name in
  let os =
    Os.create ~config:(App.os_config app) ~sblocks:true
      (Profiles.image profiles)
  in
  let hyp = Hyp.attach os in
  let fc = Facechange.enable ~governor:Chaos.chaos_policy hyp in
  let (_ : int) = Facechange.load_view fc (Profiles.config_of profiles name) in
  let (_ : Fc_machine.Process.t) = Os.spawn os ~name (app.App.script 3) in
  let companion = App.find_exn "top" in
  let (_ : Fc_machine.Process.t) =
    Os.spawn os ~name:"migrate-companion" (companion.App.script 2)
  in
  let inj = Injector.arm ~os ~hyp ~fc plan in
  (name, os, hyp, fc, inj)

let outcome_of f =
  match f () with
  | () -> "ok"
  | exception Os.Guest_panic "scheduler round budget exhausted" -> "wedged"
  | exception Os.Guest_panic m -> "panic: " ^ m

let digest ~name ~outcome ~os ~hyp ~fc =
  (HFleet.guest ~index:0 ~app:name ~outcome ~stats:(Stats.capture fc)
     ~instructions:(Os.instructions os) ~cycles:(Os.cycles os)
     ~frame_keys:(Frame_cache.resident_keys (Hyp.frame_cache hyp))
     ())
    .HFleet.g_digest

(* The control: the same seed run uninterrupted on one machine. *)
let control profiles ~gseed =
  let name, os, hyp, fc, inj = build profiles ~gseed in
  let outcome = outcome_of (fun () -> Os.run ~max_rounds:round_budget os) in
  Injector.disarm inj;
  digest ~name ~outcome ~os ~hyp ~fc

(* The treatment: run to [migrate_at], migrate mid-flight, resume the
   destination for the rest of the budget.  The digest is taken from
   whichever machine held the guest when it finished (the source, if it
   died before the handoff). *)
let migrated profiles ~gseed ~precopy_rounds ~window_rounds ~migrate_at =
  let name, os, hyp, fc, inj = build profiles ~gseed in
  let src =
    { Migrate.g_os = os; g_hyp = Some hyp; g_fc = Some fc; g_inj = Some inj }
  in
  let cur = ref src in
  let rep = ref None in
  let outcome =
    outcome_of (fun () ->
        Os.run ~until:(fun t -> Os.round t >= migrate_at)
          ~max_rounds:round_budget os;
        let dst, r =
          Migrate.migrate ~image:(Profiles.image profiles) ~precopy_rounds
            ~window_rounds src
        in
        cur := dst;
        rep := Some r;
        Os.run
          ~max_rounds:(round_budget - Os.round dst.Migrate.g_os)
          dst.Migrate.g_os)
  in
  let g = !cur in
  Option.iter Injector.disarm g.Migrate.g_inj;
  let d =
    match (g.Migrate.g_hyp, g.Migrate.g_fc) with
    | Some hyp, Some fc -> digest ~name ~outcome ~os:g.Migrate.g_os ~hyp ~fc
    | _ -> "(layer missing)"
  in
  (name, outcome, d, !rep)

let run_row profiles ~gseed ~precopy_rounds ~window_rounds ~migrate_at =
  let expect = control profiles ~gseed in
  let name, outcome, got, rep =
    migrated profiles ~gseed ~precopy_rounds ~window_rounds ~migrate_at
  in
  let z f = match rep with Some r -> f r | None -> 0 in
  {
    w_seed = gseed;
    w_app = name;
    w_precopy_rounds = precopy_rounds;
    w_migrated = rep <> None;
    w_pages_total = z (fun r -> r.Migrate.m_pages_total);
    w_pages_copied = z (fun r -> r.Migrate.m_pages_copied);
    w_final_dirty = z (fun r -> r.Migrate.m_final_dirty);
    w_bytes_copied = z (fun r -> r.Migrate.m_bytes_copied);
    w_snapshot_bytes = z (fun r -> r.Migrate.m_snapshot_bytes);
    w_downtime_cycles = z (fun r -> r.Migrate.m_downtime_cycles);
    w_outcome = outcome;
    w_parity = String.equal expect got;
  }

let precopy_grid ~fast = if fast then [ 1; 3 ] else [ 1; 2; 3; 5; 8 ]
let seeds_per_cell ~fast = if fast then 2 else 3

let run ?(fast = false) ?(seed = 11) profiles =
  let migrate_at = 30 and window_rounds = 12 in
  let rows =
    List.concat_map
      (fun precopy_rounds ->
        List.init (seeds_per_cell ~fast) (fun i ->
            run_row profiles
              ~gseed:(Frand.mix seed ((precopy_rounds * 100) + i))
              ~precopy_rounds ~window_rounds ~migrate_at))
      (precopy_grid ~fast)
  in
  {
    g_seed = seed;
    g_migrate_at = migrate_at;
    g_window_rounds = window_rounds;
    g_rows = rows;
    g_parity_ok = List.for_all (fun r -> r.w_parity) rows;
    g_panics =
      List.length
        (List.filter
           (fun r ->
             String.length r.w_outcome >= 5
             && String.sub r.w_outcome 0 5 = "panic")
           rows);
  }

let row_to_json r =
  J.Obj
    [
      ("seed", J.Int r.w_seed);
      ("app", J.String r.w_app);
      ("precopy_rounds", J.Int r.w_precopy_rounds);
      ("migrated", J.Bool r.w_migrated);
      ("pages_total", J.Int r.w_pages_total);
      ("pages_copied", J.Int r.w_pages_copied);
      ("final_dirty", J.Int r.w_final_dirty);
      ("bytes_copied", J.Int r.w_bytes_copied);
      ("snapshot_bytes", J.Int r.w_snapshot_bytes);
      (* deterministic cost model: recorded, never gated *)
      ("downtime_cycles", J.Int r.w_downtime_cycles);
      ("outcome", J.String r.w_outcome);
      ("parity", J.Bool r.w_parity);
    ]

let to_json t =
  J.Obj
    [
      ("seed", J.Int t.g_seed);
      ("migrate_at", J.Int t.g_migrate_at);
      ("window_rounds", J.Int t.g_window_rounds);
      ("parity_ok", J.Bool t.g_parity_ok);
      ("panics", J.Int t.g_panics);
      ("rows", J.List (List.map row_to_json t.g_rows));
    ]

let render t =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "Migration: pre-copy over the dirty-page tracker, stop-and-copy \
        through the wire format (migrate@%d, windows of %d rounds)\n"
       t.g_migrate_at t.g_window_rounds);
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf
           "  seed %-11d %-8s precopy=%d  pages=%-4d copied=%-5d \
            final_dirty=%-4d  snap=%-6dB  downtime=%-6dcyc  %-6s %s\n"
           r.w_seed r.w_app r.w_precopy_rounds r.w_pages_total r.w_pages_copied
           r.w_final_dirty r.w_snapshot_bytes r.w_downtime_cycles r.w_outcome
           (if r.w_parity then "parity=ok" else "parity=DIVERGED")))
    t.g_rows;
  Buffer.add_string buf
    (Printf.sprintf "  parity: %s  panics: %d\n"
       (if t.g_parity_ok then "ok" else "DIVERGED")
       t.g_panics);
  Buffer.contents buf
