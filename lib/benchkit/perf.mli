(** Wall-clock throughput benchmark for the execution fast paths.

    Every other experiment in this suite measures {e simulated} cycles;
    this one measures real elapsed time, because the software TLBs
    (see DESIGN.md "Translation fast path") and the decode-once
    superblocks (DESIGN.md §10) change only how fast the host executes
    the guest, never what the guest does.  Each arm runs the same
    deterministic workload with the toggles on or off
    ([Os.create ~sblocks ~tlb]) and reports guest instructions retired
    per wall-clock second, timing only the [Os.run] spans (view builds
    and profiling are excluded from both the numerator and the
    denominator).

    Wall-clock numbers vary run to run and are {e recorded, never
    gated}; the TLB and superblock counters and instruction counts come
    from one deterministic pass and are pinned by
    [bench/check.exe --perf]. *)

type counters = {
  c_instructions : int;
  c_cycles : int;
  c_i_hits : int;
  c_i_misses : int;
  c_d_hits : int;
  c_d_misses : int;
  c_i_flushes : int;
  c_d_flushes : int;
  c_sb_built : int;
  c_sb_hits : int;
  c_sb_invals : int;
  c_sb_chains : int;
}

type arm = {
  a_label : string;
  a_sblocks : bool;
  a_tlb : bool;
  a_views : bool;
  a_reps : int;
  a_seconds : float;  (** wall clock summed over the timed [Os.run] spans *)
  a_ips : float;      (** guest instructions per wall-clock second *)
  a_counters : counters;
      (** from one deterministic pass — identical for every rep, so
          independent of [reps] / [--fast] *)
}

type t = {
  reps : int;
  unixbench : arm list;
      (** \{tlb, no-tlb\} × \{views on (top + apache loaded, residents
          running), views off\} over the nine UnixBench subtests, plus
          the sb+tlb arms with superblocks enabled on top of the TLBs *)
  unixbench_speedup : float;  (** tlb vs no-tlb ips ratio, views on *)
  unixbench_speedup_noviews : float;
  unixbench_speedup_sblocks : float;
      (** sb+tlb vs tlb ips ratio, views on — the superblock win over
          the already-TLB'd engine *)
  unixbench_speedup_sblocks_noviews : float;
  httperf : arm list;
      (** apache request batch, view loaded: tlb, no-tlb, sb+tlb *)
  httperf_speedup : float;
  httperf_speedup_sblocks : float;
  cold : float * int * float;
      (** (seconds, instructions, ips) for a syscall loop entered with
          empty TLBs *)
  warm : float * int * float;
      (** the same loop run second in the same guest — kernel working
          set already cached *)
}

val run : ?reps:int -> Profiles.t -> t
(** Default 3 reps; wall time accumulates over reps, counters come from
    rep 1 only. *)

val to_json : t -> Fc_obs.Jsonx.t
val render : t -> string
