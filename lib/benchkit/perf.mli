(** Wall-clock throughput benchmark for the execution fast paths.

    Every other experiment in this suite measures {e simulated} cycles;
    this one measures real elapsed time, because the software TLBs
    (see DESIGN.md "Translation fast path"), the decode-once superblocks
    (DESIGN.md §10) and view-tagged translation caching (DESIGN.md §14)
    change only how fast the host executes the guest, never what the
    guest does.  Each arm runs the same deterministic workload with the
    toggles on or off ([Os.create ~sblocks ~tlb ~tagged]) and reports
    guest instructions retired per wall-clock second, timing only the
    [Os.run] spans (view builds and profiling are excluded from both the
    numerator and the denominator).

    Wall-clock numbers vary run to run and are {e recorded, never
    gated}; the TLB, superblock and flush-cause counters and instruction
    counts come from one deterministic pass and are pinned by
    [bench/check.exe --perf]. *)

type counters = {
  c_instructions : int;
  c_cycles : int;
  c_i_hits : int;
  c_i_misses : int;
  c_d_hits : int;
  c_d_misses : int;
  c_i_flushes : int;
  c_d_flushes : int;
  c_sb_built : int;
  c_sb_hits : int;
  c_sb_invals : int;
  c_sb_chains : int;
  c_sb_restamps : int;
      (** in-place superblock tier restamps — the per-switch revalidation
          tax that view tags eliminate *)
  c_fl_view_switch : int;
      (** fetch-TLB flushes caused by view switch-in (the
          [tlb.flushes{view_switch}] family label) — ~0 under tags *)
  c_fl_cow : int;
  c_fl_growth : int;
  c_fl_explicit : int;
}

type arm = {
  a_label : string;
  a_tagged : bool;  (** view-tagged caching on ([tag+] label prefix) *)
  a_sblocks : bool;
  a_tlb : bool;
  a_views : bool;
  a_reps : int;
  a_seconds : float;
      (** minimum wall clock across the reps — the least-interrupted
          pass, robust to host scheduling noise *)
  a_ips : float;      (** guest instructions per wall-clock second *)
  a_counters : counters;
      (** from one deterministic pass — identical for every rep, so
          independent of [reps] / [--fast] *)
}

type t = {
  reps : int;
  unixbench : arm list;
      (** \{tlb, no-tlb\} × \{views on (top + apache loaded, residents
          running), views off\} over the nine UnixBench subtests, the
          sb+tlb arms with superblocks enabled on top of the TLBs, and
          the tag+ views-on arms re-running the tlb and sb+tlb
          view-switching workloads under view-tagged caching *)
  unixbench_speedup : float;  (** tlb vs no-tlb ips ratio, views on *)
  unixbench_speedup_noviews : float;
  unixbench_speedup_sblocks : float;
      (** sb+tlb vs tlb ips ratio, views on — the superblock win over
          the already-TLB'd engine *)
  unixbench_speedup_sblocks_noviews : float;
  httperf : arm list;
      (** apache request batch, view loaded: tlb, no-tlb, sb+tlb,
          tag+sb+tlb *)
  httperf_speedup : float;
  httperf_speedup_sblocks : float;
  cold : float * int * float;
      (** (seconds, instructions, ips) for a syscall loop entered with
          empty TLBs *)
  warm : float * int * float;
      (** the same loop run second in the same guest — kernel working
          set already cached *)
}

val run : ?reps:int -> Profiles.t -> t
(** Default 3 reps; recorded wall time is the minimum across reps,
    counters come from rep 1 only. *)

val to_json : t -> Fc_obs.Jsonx.t
val render : t -> string
