module Os = Fc_machine.Os
module Hyp = Fc_hypervisor.Hypervisor
module Phys = Fc_mem.Phys_mem
module Facechange = Fc_core.Facechange
module View = Fc_core.View
module App = Fc_apps.App

type t = {
  io : Httperf.result;
  view_pages : int;
  view_frames : int;
  bytes_saved : int;
  reduction : float;
}

(* The apache view on its own already shares heavily: every pure-UD2
   fill page is the same page.  Build it once (sharing on) and read the
   pages-vs-frames split off the view. *)
let view_footprint profiles =
  let app = App.find_exn "apache" in
  let os = Os.create ~config:(App.os_config app) (Profiles.image profiles) in
  let hyp = Hyp.attach os in
  let fc = Facechange.enable hyp in
  let (_ : int) = Facechange.load_view fc (Profiles.config_of profiles "apache") in
  match Facechange.views fc with
  | [ v ] -> (View.private_page_count v, View.frame_count v)
  | _ -> assert false

let run ?rates profiles =
  let io = Httperf.run ?rates profiles in
  let view_pages, view_frames = view_footprint profiles in
  {
    io;
    view_pages;
    view_frames;
    bytes_saved = (view_pages - view_frames) * Phys.page_size;
    reduction =
      (if view_pages = 0 then 0.
       else
         float_of_int (view_pages - view_frames) /. float_of_int view_pages);
  }

let render t =
  Httperf.render t.io
  ^ Printf.sprintf
      "\nApache view footprint: %d pages on %d frames (%d KiB saved, %.1f%% \
       fewer frames)\n"
      t.view_pages t.view_frames (t.bytes_saved / 1024) (100. *. t.reduction)
