module Os = Fc_machine.Os
module Action = Fc_machine.Action
module Hyp = Fc_hypervisor.Hypervisor
module Facechange = Fc_core.Facechange
module Recovery_log = Fc_core.Recovery_log
module App = Fc_apps.App

type result = {
  log : Recovery_log.t;
  completed : bool;
  panic : string option;
  lazy_recovered : string list;
  instant_recovered : string list;
}

let bare s =
  match (String.index_opt s '<', String.index_opt s '+') with
  | Some i, Some j when j > i -> String.sub s (i + 1) (j - i - 1)
  | _ -> s

let run profiles =
  let app = App.find_exn "top" in
  let config =
    { (App.os_config app) with Fc_machine.Os.wake_delay = 3 }
  in
  let os = Os.create ~config (Profiles.image profiles) in
  let hyp = Hyp.attach os in
  let fc = Facechange.enable hyp in
  let proc =
    Os.spawn os ~name:"top"
      [
        Action.Syscall "getpid";
        Action.Syscall "poll:pipe";
        Action.Syscall "getpid";
        Action.Exit;
      ]
  in
  Os.schedule_at_round os 2 (fun _ ->
      let (_ : int) = Facechange.load_view fc (Profiles.config_of profiles "top") in
      ());
  let completed, panic =
    match Os.run ~max_rounds:10_000 os with
    | () -> (Fc_machine.Process.is_exited proc, None)
    | exception Os.Guest_panic m -> (false, Some m)
  in
  let log = Facechange.log fc in
  let entries = Recovery_log.entries log in
  let instant_recovered =
    List.concat_map
      (fun e -> List.map (fun (_, _, s) -> bare s) e.Recovery_log.instant)
      entries
  in
  let lazy_recovered =
    List.concat_map
      (fun e -> List.map (fun (_, _, s) -> bare s) e.Recovery_log.recovered)
      entries
  in
  { log; completed; panic; lazy_recovered; instant_recovered }

let render r =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "Cross-View Kernel Code Recovery (cf. paper Fig. 3)\n";
  Buffer.add_string buf "===================================================\n";
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "Recover %s for kernel[%s]:\n"
           (match e.Recovery_log.recovered with (_, _, s) :: _ -> s | [] -> "?")
           e.Recovery_log.view_app);
      List.iter
        (fun f ->
          Buffer.add_string buf
            (Printf.sprintf "|--Backtrace: %s\n   " f.Recovery_log.rendered);
          List.iter
            (fun b -> Buffer.add_string buf (Printf.sprintf "0x%x " b))
            f.Recovery_log.view_bytes;
          (match f.Recovery_log.view_bytes with
          | 0x0f :: 0x0b :: _ ->
              Buffer.add_string buf "  <- '0xf 0xb' can trap => Lazy recovery"
          | 0x0b :: 0x0f :: _ ->
              Buffer.add_string buf "  <- '0xb 0xf' cannot trap => Instant recovery"
          | _ -> ());
          Buffer.add_char buf '\n')
        (Recovery_log.callers e);
      List.iter
        (fun (_, _, s) ->
          Buffer.add_string buf (Printf.sprintf "|== instantly recovered: %s\n" s))
        e.Recovery_log.instant;
      Buffer.add_char buf '\n')
    (Recovery_log.entries r.log);
  Buffer.add_string buf
    (Printf.sprintf "lazy: %s\ninstant: %s\ncompleted: %b\n"
       (String.concat ", " r.lazy_recovered)
       (String.concat ", " r.instant_recovered)
       r.completed);
  (match r.panic with
  | Some m -> Buffer.add_string buf (Printf.sprintf "GUEST PANIC: %s\n" m)
  | None -> ());
  Buffer.contents buf
