(** The telemetry probe: arms the time series ({!Fc_obs.Timeseries}) and
    the guest-PC profiler ({!Fc_obs.Sampler}) on a guest off one
    deterministic instruction-count ticker ([Os.arm_tick]).

    Armed telemetry is behavior-invisible by construction: stacks are
    walked through [Hypervisor.sample_stack] (uncharged, span-free) and
    the scrape only reads the registry, so an armed run retires the same
    instructions, charges the same cycles and captures the same stats as
    a disarmed one.  [bench/check.exe --telemetry] pins exactly that. *)

type t

type result = {
  r_series : Fc_obs.Timeseries.series;
  r_folds : Fc_obs.Sampler.fold list;
  r_ticks : int;  (** ticker firings, final flush included *)
  r_samples : int;  (** profiler samples (= ticks × vCPUs) *)
  r_vcpus : int;
  r_resum_errors : string list;
      (** counters whose series deltas fail to re-sum to the final
          registry value; empty when the invariant holds (always, unless
          the ring shed points) *)
}

val default_period : int
(** 100_000 instructions per interval. *)

val arm :
  ?period:int ->
  ?capacity:int ->
  ?wall:(unit -> float) ->
  os:Fc_machine.Os.t ->
  hyp:Fc_hypervisor.Hypervisor.t ->
  fc:Fc_core.Facechange.t ->
  unit ->
  t
(** Install the ticker.  Each tick records one profiler sample per vCPU
    (kernel stack when the current task is parked in the kernel, a bare
    ["user"] frame otherwise; an [Event.Sample] is also emitted when the
    trace is armed), then scrapes one series interval.  [wall], when
    given (e.g. [Unix.gettimeofday]), stamps each point with a wall
    clock — excluded from fingerprints, used by [facechange top] for
    ips. *)

val finish : t -> result
(** Disarm the ticker, flush the tail interval and export.  The number
    of intervals is [floor(instructions / period) + 1] — deterministic
    for a deterministic guest. *)
