module Recovery_log = Fc_core.Recovery_log
module Attack = Fc_attacks.Attack

let run profiles = Detect.run profiles ~mode:Detect.Per_app (Attack.find_exn "KBeast")

let render (o : Detect.outcome) =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "Attack Pattern of KBeast Rootkit (cf. paper Fig. 5)\n";
  Buffer.add_string buf "====================================================\n";
  List.iter
    (fun (e : Recovery_log.entry) ->
      (match e.Recovery_log.recovered with
      | (_, _, s) :: _ -> Buffer.add_string buf (Printf.sprintf "%s\n" s)
      | [] -> ());
      List.iter
        (fun f -> Buffer.add_string buf (Printf.sprintf "|-- %s\n" f.Recovery_log.rendered))
        (Recovery_log.callers e);
      Buffer.add_char buf '\n')
    (Recovery_log.entries o.Detect.log);
  Buffer.add_string buf
    (Printf.sprintf
       "hidden-module (UNKNOWN) frames present: %b\ndetected: %b   evidence: %s\n"
       o.Detect.unknown_frames o.Detect.detected
       (String.concat ", " o.Detect.evidence));
  Buffer.contents buf
