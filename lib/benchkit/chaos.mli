(** The chaos matrix: seeded fault plans against live guests.

    Each plan boots a fresh guest running one profiled application (plus
    a companion on the full view, to keep context switches flowing),
    arms a {!Fc_faults.Injector} with a {!Fc_faults.Fault.plan} derived
    from the seed, and runs to completion.  Everything downstream of the
    seed is deterministic, so the aggregate counters are pinnable by the
    CI drift gate.

    With the governor on, the acceptance property is: {e zero} guest
    panics and {e zero} wedged runs across the whole matrix, with
    per-app attribution still summing to the globals.  With the governor
    off the same plans reproduce the paper's fragility — unhandled
    invalid-opcode exits kill the guest. *)

type plan_row = {
  p_seed : int;
  p_app : string;  (** the profiled application under fault *)
  p_faults : int;  (** fault events actually applied *)
  p_bp_misses : int;
  p_config_rejects : int;
  p_validation_misses : int;  (** malformed configs that parsed — holes *)
  p_recoveries : int;
  p_storms : int;
  p_degradations : int;
  p_renarrows : int;
  p_quarantines : int;
  p_broken_backtraces : int;
  p_panic : string option;  (** a real guest death (wedges excluded) *)
  p_wedged : bool;  (** hit the scheduler round budget *)
  p_attribution_ok : bool;  (** per-app sums still match the globals *)
}

type summary = {
  s_governed : bool;
  s_plans : int;
  s_faults : int;
  s_bp_misses : int;
  s_config_rejects : int;
  s_validation_misses : int;
  s_recoveries : int;
  s_storms : int;
  s_degradations : int;
  s_renarrows : int;
  s_quarantines : int;
  s_broken_backtraces : int;
  s_panics : int;
  s_wedged : int;
  s_attribution_ok : bool;  (** every row's attribution held *)
  s_rows : plan_row list;
}

val chaos_policy : Fc_core.Governor.policy
(** {!Fc_core.Governor.default_policy} with thresholds scaled down so a
    short chaos guest can traverse the whole state machine (storm,
    degrade, renarrow, quarantine) within its run. *)

val round_budget : int
(** 20_000 — the scheduler round budget every plan runs under. *)

val run_plan :
  ?governed:bool ->
  ?policy:Fc_core.Governor.policy ->
  ?snapshot_every:int ->
  ?on_panic:(seed:int -> panic:string -> Fc_snapshot.Snapshot.t -> unit) ->
  Profiles.t ->
  seed:int ->
  plan_row
(** One seeded plan against one fresh guest.  [governed] defaults to
    [true]; [policy] to {!chaos_policy}.

    [snapshot_every] switches on time-travel mode: the guest runs in
    windows of that many scheduler rounds, a full machine snapshot
    (fault-plan cursor included) taken at each boundary, and a guest
    panic hands the {e last boundary} snapshot — at most one window
    before the death — to [on_panic].  The bench arm writes it out as a
    [.fcsnap]; [facechange replay] restores it and re-executes just the
    failing window.  Counters are unchanged by the mode: windowed
    execution is behavior-invisible (the split-run differential property
    in [test/test_snapshot.ml]). *)

val run :
  ?plans:int ->
  ?seed:int ->
  ?governed:bool ->
  ?policy:Fc_core.Governor.policy ->
  ?snapshot_every:int ->
  ?on_panic:(seed:int -> panic:string -> Fc_snapshot.Snapshot.t -> unit) ->
  Profiles.t ->
  summary
(** [plans] (default 100) consecutive seeds starting at [seed]
    (default 1). *)

val summary_to_json : summary -> Fc_obs.Jsonx.t
(** Aggregate counters only (no per-row detail) — the shape embedded in
    [BENCH_chaos.json]. *)

val render : summary -> string
