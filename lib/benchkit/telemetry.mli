(** The telemetry benchmark arm ([bench/main.exe -- telemetry]).

    Proves the continuous-telemetry layer deterministic and
    behavior-invisible: the pinned fleet cell armed at 1/2/4 domains
    against a disarmed control (fleet fingerprints must match, merged
    telemetry fingerprints must match across domain counts), one fixed
    guest under all four [{sblocks}×{tlb}] engine arms (series and
    profiler fingerprints must be identical), and a unixbench-style
    armed profile run whose folded stacks feed flamegraph.pl.  Gated by
    [bench/check.exe --telemetry]. *)

type engine_arm = {
  ea_name : string;
  ea_sblocks : bool;
  ea_tlb : bool;
  ea_outcome : string;
  ea_intervals : int;
  ea_samples : int;
  ea_series_fp : string;
  ea_sampler_fp : string;
  ea_resum_errors : string list;
}

type profile = {
  pr_workload : string;
  pr_period : int;
  pr_ticks : int;
  pr_samples : int;
  pr_vcpus : int;
  pr_outcome : string;
  pr_series : Fc_obs.Timeseries.series;
  pr_folds : Fc_obs.Sampler.fold list;
  pr_resum_errors : string list;
}

type t = {
  t_seed : int;
  t_period : int;
  t_parallel : bool;
  t_armed : Fleet.cell list;
  t_disarmed : Fleet.cell;
  t_matrix : engine_arm list;
  t_profile : profile;
}

val run : ?seed:int -> Profiles.t -> t
(** [seed] defaults to 7 — the fleet gate's seed, so the armed cells are
    the exact fleet the [--fleet] pins describe. *)

val to_json : t -> Fc_obs.Jsonx.t
(** The [BENCH_telemetry.json] payload (under the ["telemetry"] key). *)

val folded : t -> string
(** The profile run's collapsed stacks — pipe to [flamegraph.pl]. *)

val render : t -> string
