module Os = Fc_machine.Os
module Action = Fc_machine.Action
module Process = Fc_machine.Process
module Hyp = Fc_hypervisor.Hypervisor
module Facechange = Fc_core.Facechange
module View = Fc_core.View
module Recovery_log = Fc_core.Recovery_log
module App = Fc_apps.App

type row = { label : string; metrics : (string * string) list }

let m k v = (k, v)
let mi k v = (k, string_of_int v)

(* ------------------------------------------------------------------ *)
(* whole-function load                                                 *)
(* ------------------------------------------------------------------ *)

let run_top ~opts profiles =
  let app = App.find_exn "top" in
  let os = Os.create ~config:(App.os_config app) (Profiles.image profiles) in
  let hyp = Hyp.attach os in
  let fc = Facechange.enable ~opts hyp in
  let idx = Facechange.load_view fc (Profiles.config_of profiles "top") in
  let view = Option.get (Facechange.find_view fc idx) in
  let build_bytes = View.loaded_bytes view in
  let build_pages = View.private_page_count view in
  (* phase 1: the profiled workload, taking the usual (hot) paths *)
  let p = Os.spawn os ~name:"top" (app.App.script 3) in
  Os.run os;
  let hot_recoveries = Facechange.recoveries fc in
  (* phase 2: same workload, but the kernel takes its rarely-taken error
     paths (cold Jcc blocks) — intra-function code that profiling never
     recorded.  This is the situation the whole-function relaxation is
     for: the function's cold bytes were loaded along with its hot ones. *)
  Os.set_branch_policy os (Some (fun _ -> false));
  let p2 = Os.spawn os ~name:"top" (app.App.script 2) in
  let outcome =
    match Os.run ~max_rounds:20_000 os with
    | () -> if Process.is_exited p2 then "completed" else "stuck"
    | exception Os.Guest_panic m ->
        Printf.sprintf "GUEST PANIC (misdecoded UD2 inside a function): %s" m
  in
  ( build_bytes,
    build_pages,
    hot_recoveries,
    Facechange.recoveries fc - hot_recoveries,
    outcome,
    Process.is_exited p )

let whole_function_load profiles =
  List.map
    (fun (label, wfl) ->
      let opts = { Facechange.default_opts with whole_function_load = wfl } in
      let bytes, pages, hot, cold, outcome, ok = run_top ~opts profiles in
      {
        label;
        metrics =
          [
            mi "view bytes loaded" bytes;
            mi "view private pages" pages;
            mi "recoveries, profiled workload" hot;
            mi "recoveries, error-path workload" cold;
            m "error-path outcome" outcome;
            m "profiled workload completed" (string_of_bool ok);
          ];
      })
    [ ("whole-function load (paper)", true); ("raw profiled spans", false) ]

(* ------------------------------------------------------------------ *)
(* same-view optimization                                              *)
(* ------------------------------------------------------------------ *)

let same_view_opt profiles =
  List.map
    (fun (label, svo) ->
      let opts = { Facechange.default_opts with same_view_opt = svo } in
      let app = App.find_exn "top" in
      let os = Os.create ~config:(App.os_config app) (Profiles.image profiles) in
      let hyp = Hyp.attach os in
      let fc = Facechange.enable ~opts hyp in
      let (_ : int) = Facechange.load_view fc (Profiles.config_of profiles "top") in
      (* two instances of the same application share one view *)
      let a = Os.spawn os ~name:"top" (app.App.script 3) in
      let b = Os.spawn os ~name:"top" (app.App.script 3) in
      let c0 = Os.cycles os in
      Os.run os;
      ignore (Process.is_exited a && Process.is_exited b);
      {
        label;
        metrics =
          [
            mi "EPT view installs" (Facechange.switches fc);
            mi "installs avoided" (Facechange.switch_skips fc);
            mi "guest cycles" (Os.cycles os - c0);
          ];
      })
    [ ("same-view optimization on", true); ("off", false) ]

(* ------------------------------------------------------------------ *)
(* switch at resume-userspace                                          *)
(* ------------------------------------------------------------------ *)

let switch_at_resume profiles =
  List.map
    (fun (label, sar) ->
      let opts = { Facechange.default_opts with switch_at_resume = sar } in
      let app = App.find_exn "apache" in
      let config = { (App.os_config app) with Os.wake_delay = 2 } in
      let os = Os.create ~config (Profiles.image profiles) in
      let hyp = Hyp.attach os in
      let fc = Facechange.enable ~opts hyp in
      let (_ : int) = Facechange.load_view fc (Profiles.config_of profiles "apache") in
      let p = Os.spawn os ~name:"apache" (app.App.script 4) in
      let c0 = Os.cycles os in
      Os.run os;
      ignore (Process.is_exited p);
      {
        label;
        metrics =
          [
            mi "EPT view installs" (Facechange.switches fc);
            mi "switches deferred to resume" (Facechange.deferred_switches fc);
            mi "breakpoint VM exits" (Hyp.breakpoint_exits hyp);
            mi "guest cycles" (Os.cycles os - c0);
          ];
      })
    [ ("switch at resume-userspace (paper)", true); ("switch at context switch", false) ]

(* ------------------------------------------------------------------ *)
(* instant recovery                                                    *)
(* ------------------------------------------------------------------ *)

let cross_view ~opts profiles =
  let app = App.find_exn "top" in
  let config = { (App.os_config app) with Os.wake_delay = 3 } in
  let os = Os.create ~config (Profiles.image profiles) in
  let hyp = Hyp.attach os in
  let fc = Facechange.enable ~opts hyp in
  let p =
    Os.spawn os ~name:"top"
      [ Action.Syscall "getpid"; Action.Syscall "poll:pipe";
        Action.Syscall "getpid"; Action.Exit ]
  in
  Os.schedule_at_round os 2 (fun _ ->
      ignore (Facechange.load_view fc (Profiles.config_of profiles "top")));
  match Os.run ~max_rounds:5_000 os with
  | () -> (fc, (if Process.is_exited p then "completed" else "stuck"))
  | exception Os.Guest_panic m -> (fc, Printf.sprintf "GUEST PANIC: %s" m)

let instant_recovery profiles =
  List.map
    (fun (label, ir) ->
      let opts = { Facechange.default_opts with instant_recovery = ir } in
      let fc, outcome = cross_view ~opts profiles in
      {
        label;
        metrics =
          [
            m "outcome" outcome;
            mi "recoveries" (Facechange.recoveries fc);
            m "recovered"
              (String.concat ", " (Recovery_log.recovered_names (Facechange.log fc)));
          ];
      })
    [ ("instant recovery on (paper)", true); ("off (the bug of Fig. 3)", false) ]

(* ------------------------------------------------------------------ *)
(* multi-vCPU scaling (SV-C extension)                                  *)
(* ------------------------------------------------------------------ *)

let smp_scaling profiles =
  let apps = [ "top"; "apache"; "gvim"; "tcpdump" ] in
  let measure ~vcpus ~enabled =
    let os =
      Os.create ~config:Os.profiling_config ~vcpus (Profiles.image profiles)
    in
    if enabled then begin
      let hyp = Hyp.attach os in
      let fc = Facechange.enable hyp in
      List.iter
        (fun a -> ignore (Facechange.load_view fc (Profiles.config_of profiles a)))
        apps;
      let procs =
        List.map (fun a -> Os.spawn os ~name:a ((App.find_exn a).App.script 2)) apps
      in
      let c0 = Os.cycles os in
      Os.run os;
      ignore procs;
      (Os.cycles os - c0, Facechange.switches fc + Facechange.switch_skips fc)
    end
    else begin
      let procs =
        List.map (fun a -> Os.spawn os ~name:a ((App.find_exn a).App.script 2)) apps
      in
      let c0 = Os.cycles os in
      Os.run os;
      ignore procs;
      (Os.cycles os - c0, 0)
    end
  in
  List.map
    (fun vcpus ->
      let base, _ = measure ~vcpus ~enabled:false in
      let fc, switch_events = measure ~vcpus ~enabled:true in
      {
        label = Printf.sprintf "%d vCPU%s" vcpus (if vcpus = 1 then "" else "s");
        metrics =
          [
            mi "baseline cycles" base;
            mi "FACE-CHANGE cycles" fc;
            m "overhead"
              (if base = 0 then "n/a"
               else
                 Printf.sprintf "%.1f%%"
                   (100. *. (float_of_int fc /. float_of_int base -. 1.)));
            mi "view switch decisions" switch_events;
          ];
      })
    [ 1; 2; 4 ]

let run_all profiles =
  [
    ("Whole-function load relaxation (§III-B1)", whole_function_load profiles);
    ("Same-view optimization (§III-B2)", same_view_opt profiles);
    ("Switch point: resume-userspace vs context switch (§III-B2)", switch_at_resume profiles);
    ("Instant recovery (Fig. 3)", instant_recovery profiles);
    ("Multi-vCPU scaling (SV-C extension: per-vCPU EPT views)", smp_scaling profiles);
  ]

let render sections =
  let buf = Buffer.create 2048 in
  List.iter
    (fun (title, rows) ->
      Buffer.add_string buf (Printf.sprintf "%s\n" title);
      List.iter
        (fun r ->
          Buffer.add_string buf (Printf.sprintf "  %s\n" r.label);
          List.iter
            (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "    %-32s %s\n" k v))
            r.metrics)
        rows;
      Buffer.add_char buf '\n')
    sections;
  Buffer.contents buf
