(** Fig. 6, extended: normalized UnixBench performance per loaded-view
    count ({!Unixbench.fig6}) plus a frame-sharing report.

    The sharing report loads {e all} profiled views into one guest twice
    — frame sharing on, then off — and compares (a) the physical frames
    the views cost, and (b) the recovery counters after an identical
    resident workload.  Sharing is required to be behavior-invisible, so
    the recovery counts and recovered bytes must be bit-identical in
    both modes ([parity]). *)

type mode_stats = {
  frames_allocated : int;
      (** live-frame delta from loading every view (measured before the
          workload, i.e. before any copy-on-write break) *)
  recoveries : int;
  recovered_bytes : int;
  cow_breaks : int;  (** always [0] with sharing off *)
}

type sharing_report = {
  views : int;
  view_pages : int;  (** pages mapped across all views — mode-independent *)
  shared : mode_stats;
  unshared : mode_stats;
  frames_saved : int;
  bytes_saved : int;
  reduction : float;  (** fraction of the unshared frames avoided *)
  parity : bool;
      (** recoveries and recovered bytes identical in both modes *)
}

type t = { perf : Unixbench.fig6_point list; sharing : sharing_report }

val run : ?view_counts:int list -> Profiles.t -> t
val sharing : Profiles.t -> sharing_report
(** Just the sharing half (cheap; no UnixBench runs). *)

val render : t -> string
val render_sharing : sharing_report -> string
