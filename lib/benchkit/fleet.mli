(** The fleet benchmark arm: hundreds of independent guests sharded
    across domains ([bench/main.exe -- fleet]).

    Every guest is a seeded chaos-style run — one profiled application
    under its enforced view, a companion on the full view, a governed
    fault plan — whose entire behavior derives from
    [Frand.mix seed index], so a cell's merged report is independent of
    its domain count.  The sweep measures aggregate
    guest-instructions/sec and the fleet-wide frame-dedup ratio (what a
    cross-guest content-keyed cache would save on top of each guest's own
    sharing); the pinned cell re-runs a fixed 40-guest fleet at 1, 2 and
    4 domains so the CI gate ([bench/check.exe --fleet]) can prove the
    merged fingerprints identical and pin the deterministic counters
    independent of [--fast]. *)

type cell = {
  c_report : Fc_host.Fleet.report;
  c_requested_domains : int;
      (** as asked; [c_report.r_domains] matches, including on the
          sequential fallback where only wall-clock parallelism is lost *)
}

type t = {
  f_seed : int;
  f_parallel : bool;  (** the build's {!Fc_host.Pool.parallel} *)
  f_pinned_guests : int;
  f_pinned : cell list;  (** the fixed cell at 1, 2, 4 domains *)
  f_warm : cell list;
      (** the fixed cell again, every guest booted from a wire-format
          snapshot ({!run_cell} [~warm_start:true]); its fingerprints
          must equal the cold-boot pinned cell's *)
  f_sweep : cell list;  (** domains x guests grid (smaller with [fast]) *)
}

val pinned_guests : int
(** 40 — the fixed cell the gates pin, independent of [--fast]. *)

val pinned_domains : int list
(** [[1; 2; 4]] — the domain counts the pinned cell re-runs at. *)

val run_cell :
  ?telemetry:int ->
  ?warm_start:bool ->
  Profiles.t ->
  seed:int ->
  domains:int ->
  guests:int ->
  cell
(** One fleet: [guests] seeded guest VMs sharded over [domains].
    [telemetry] arms the {!Probe} on every guest at that period
    (instructions per interval); the probe is behavior-invisible, so an
    armed cell's fingerprint and counters match a disarmed one's —
    [bench/check.exe --telemetry] holds it to that.  [warm_start]
    (default [false]) freezes each fully-armed guest at its boot round,
    round-trips it through {!Fc_snapshot.Snapshot} wire bytes, and runs
    the restored machine — digests must match a cold boot's. *)

val run : ?fast:bool -> ?seed:int -> Profiles.t -> t
(** The full arm: pinned cell (always 40 guests x domains {1,2,4}) plus
    the sweep — 1..8 domains x 10..500 guests, or a reduced grid when
    [fast] (default [false]).  [seed] defaults to 7. *)

val to_json : t -> Fc_obs.Jsonx.t
(** The [BENCH_fleet.json] payload (under the ["fleet"] key): wall-clock
    [seconds]/[ips] recorded for humans, never gated; every counter the
    gate pins is an exact int. *)

val render : t -> string
