(* ---------------- block-terminator classification ---------------- *)

type boundary =
  | B_seq
  | B_cond of int
  | B_jump of int
  | B_call of int
  | B_call_dynamic
  | B_return
  | B_stop

let boundary insn ~pc ~len =
  match insn with
  | Insn.Jcc_rel d -> B_cond (pc + len + d)
  | Insn.Jmp_rel d -> B_jump (pc + len + d)
  | Insn.Call_rel d -> B_call (pc + len + d)
  | Insn.Call_indirect -> B_call_dynamic
  | Insn.Ret | Insn.Iret -> B_return
  | Insn.Ud2 | Insn.Yield _ -> B_stop
  | Insn.Push_ebp | Insn.Mov_ebp_esp | Insn.Nop | Insn.Leave | Insn.Alu _
  | Insn.Or_mem _ | Insn.Int_sw _ ->
      B_seq

let ends_block insn =
  match boundary insn ~pc:0 ~len:0 with
  | B_seq | B_cond _ -> false
  | B_jump _ | B_call _ | B_call_dynamic | B_return | B_stop -> true

(* ---------------- prologue-signature scanning ---------------- *)

let is_prologue_at ~read addr =
  let byte_is a v = match read a with Some b -> b = v | None -> false in
  byte_is addr 0x55 && byte_is (addr + 1) 0x89 && byte_is (addr + 2) 0xe5

let align_down v a = v / a * a

let search_backward ~read ?(align = 16) ~limit addr =
  let rec go a =
    if a < limit then None
    else if is_prologue_at ~read a then Some a
    else go (a - align)
  in
  go (align_down addr align)

let search_forward ~read ?(align = 16) ~limit addr =
  let first = align_down addr align + align in
  let rec go a =
    if a >= limit then None
    else if is_prologue_at ~read a then Some a
    else go (a + align)
  in
  go first

let function_bounds ~read ?(align = 16) ~lo ~hi addr =
  match search_backward ~read ~align ~limit:lo addr with
  | None -> None
  | Some start ->
      let stop =
        match search_forward ~read ~align ~limit:hi addr with
        | Some next -> next
        | None -> hi
      in
      Some (start, stop)
