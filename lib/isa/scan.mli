(** Function-boundary discovery by prologue-signature scanning.

    Kernel code recovery must turn a faulting instruction pointer into the
    containing function's [[start, end)] range by searching "backwards and
    forwards" for the [push ebp; mov ebp, esp] header signature
    (§III-B1).  Candidate addresses are restricted to the function
    alignment (the kernel is compiled with [-falign-functions]), which is
    what makes the signature reliable; the scan transparently crosses page
    boundaries via the caller-supplied [read] (the paper's "one single
    instruction may split across pages" case). *)

(** {2 Block-terminator classification}

    Superblock construction (decode-once basic blocks, see DESIGN.md §10)
    needs to know, per instruction, whether control can leave the
    straight-line sequence and — when the successor is static — where it
    goes, so blocks can be chained without re-probing the cache. *)

type boundary =
  | B_seq  (** control always falls through to [pc + len] *)
  | B_cond of int
      (** conditional branch: the {e taken} target; falls through otherwise *)
  | B_jump of int  (** unconditional direct jump: the static successor *)
  | B_call of int
      (** direct call: the static successor (the callee's entry) *)
  | B_call_dynamic  (** indirect call: successor known only at run time *)
  | B_return  (** ret/iret: successor popped from the stack *)
  | B_stop
      (** execution leaves the CPU loop entirely (ud2 traps, yield blocks) *)

val boundary : Insn.t -> pc:int -> len:int -> boundary
(** Classify the instruction at [pc] (of byte length [len]) by how it ends
    — or does not end — a basic block.  Relative targets are resolved
    against [pc + len], matching the CPU's execution semantics. *)

val ends_block : Insn.t -> bool
(** True iff the instruction unconditionally terminates a basic block
    ([B_cond] does {e not}: the fall-through path continues in-block). *)

(** {2 Prologue scanning} *)

val is_prologue_at : read:(int -> int option) -> int -> bool
(** True iff the three signature bytes [0x55 0x89 0xe5] are readable at the
    given address. *)

val search_backward :
  read:(int -> int option) -> ?align:int -> limit:int -> int -> int option
(** [search_backward ~read ~limit addr] finds the greatest aligned address
    [a <= addr] with [a >= limit] carrying the prologue signature — the
    start of the function containing [addr]. *)

val search_forward :
  read:(int -> int option) -> ?align:int -> limit:int -> int -> int option
(** [search_forward ~read ~limit addr] finds the least aligned address
    [a > addr] with [a < limit] carrying the prologue signature — the start
    of the next function, i.e. the (padded) end of the current one. *)

val function_bounds :
  read:(int -> int option) ->
  ?align:int ->
  lo:int ->
  hi:int ->
  int ->
  (int * int) option
(** [function_bounds ~read ~lo ~hi addr] = [(start, stop)] where [start] is
    the containing function's prologue and [stop] is the next prologue (or
    [hi] when [addr] lies in the last function of the region). *)
