let page_size = 4096

type t = {
  mutable frames : Bytes.t option array;  (* None = never allocated / freed *)
  mutable versions : int array;           (* bumped on each write *)
  mutable refcounts : int array;          (* owners of a live frame *)
  mutable next : int;                     (* high-water mark *)
  mutable free_list : int list;
  mutable live : int;
  mutable on_release : (int -> unit) option;
      (* fired when a frame's last reference drops: caches keyed by frame
         number (the OS decode cache) evict their entry instead of holding
         it until the frame number happens to be recycled *)
  allocs : Fc_obs.Metrics.counter;
  frees : Fc_obs.Metrics.counter;
}

let create ?metrics () =
  let m =
    match metrics with Some m -> m | None -> Fc_obs.Metrics.create ()
  in
  let t =
    { frames = Array.make 64 None; versions = Array.make 64 0;
      refcounts = Array.make 64 0; next = 0; free_list = []; live = 0;
      on_release = None;
      allocs = Fc_obs.Metrics.counter m ~subsystem:"mem" "frames_allocated";
      frees = Fc_obs.Metrics.counter m ~subsystem:"mem" "frames_freed" }
  in
  Fc_obs.Metrics.gauge m ~subsystem:"mem" "live_frames" (fun () -> t.live);
  t

let grow t want =
  if want >= Array.length t.frames then begin
    let cap = max (want + 1) (2 * Array.length t.frames) in
    let a = Array.make cap None in
    Array.blit t.frames 0 a 0 (Array.length t.frames);
    t.frames <- a;
    let v = Array.make cap 0 in
    Array.blit t.versions 0 v 0 (Array.length t.versions);
    t.versions <- v;
    let r = Array.make cap 0 in
    Array.blit t.refcounts 0 r 0 (Array.length t.refcounts);
    t.refcounts <- r
  end

let alloc t =
  let f =
    match t.free_list with
    | f :: rest ->
        t.free_list <- rest;
        f
    | [] ->
        let f = t.next in
        t.next <- f + 1;
        grow t f;
        f
  in
  t.frames.(f) <- Some (Bytes.make page_size '\x00');
  t.versions.(f) <- t.versions.(f) + 1;
  t.refcounts.(f) <- 1;
  t.live <- t.live + 1;
  Fc_obs.Metrics.incr t.allocs;
  f

let alloc_n t n = List.init n (fun _ -> alloc t)

let is_live t f = f >= 0 && f < Array.length t.frames && t.frames.(f) <> None

let incref t f =
  if not (is_live t f) then invalid_arg "Phys_mem.incref: frame not live";
  t.refcounts.(f) <- t.refcounts.(f) + 1

let refcount t f = if is_live t f then t.refcounts.(f) else 0

let set_release_hook t f = t.on_release <- f

let free t f =
  if not (is_live t f) then invalid_arg "Phys_mem.free: frame not live";
  if t.refcounts.(f) > 1 then t.refcounts.(f) <- t.refcounts.(f) - 1
  else begin
    t.refcounts.(f) <- 0;
    t.frames.(f) <- None;
    t.free_list <- f :: t.free_list;
    t.live <- t.live - 1;
    Fc_obs.Metrics.incr t.frees;
    match t.on_release with Some hook -> hook f | None -> ()
  end

let live_frames t = t.live

let frame_of_addr a = a / page_size
let offset_of_addr a = a mod page_size
let addr_of_frame f = f * page_size

let frame_bytes t f =
  match if f >= 0 && f < Array.length t.frames then t.frames.(f) else None with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Phys_mem: frame %d not live" f)

let read_byte t hpa = Bytes.get_uint8 (frame_bytes t (frame_of_addr hpa)) (offset_of_addr hpa)

let write_byte t hpa v =
  let f = frame_of_addr hpa in
  Bytes.set_uint8 (frame_bytes t f) (offset_of_addr hpa) (v land 0xff);
  t.versions.(f) <- t.versions.(f) + 1

let version t f = if f >= 0 && f < Array.length t.versions then t.versions.(f) else 0

(* Hot path: callers (the software TLB) only hold [f] while its version
   matches a snapshot, which implies the frame is live and in range. *)
let touch t f = t.versions.(f) <- t.versions.(f) + 1

let read_u32 t hpa =
  let b i = read_byte t (hpa + i) in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)

let write_u32 t hpa v =
  for i = 0 to 3 do
    write_byte t (hpa + i) ((v lsr (8 * i)) land 0xff)
  done

let fill t ~addr ~len ~pattern =
  match pattern with
  | [] -> invalid_arg "Phys_mem.fill: empty pattern"
  | _ ->
      let p = Array.of_list pattern in
      for i = 0 to len - 1 do
        write_byte t (addr + i) p.(i mod Array.length p)
      done

let blit_bytes t ~src ~src_off ~dst ~len =
  for i = 0 to len - 1 do
    write_byte t (dst + i) (Bytes.get_uint8 src (src_off + i))
  done

let copy t ~src ~dst ~len =
  for i = 0 to len - 1 do
    write_byte t (dst + i) (read_byte t (src + i))
  done

let frame_count t = t.next

let versions_snapshot t = Array.sub t.versions 0 t.next

(* ---------------- snapshot state ---------------- *)

type frozen = {
  z_next : int;
  z_free_list : int list;
  z_versions : int array;  (* length z_next: dead frames keep their
                              version so post-restore reallocation
                              continues the same version stream *)
  z_live : (int * int * Bytes.t) list;  (* (frame, refcount, contents) *)
}

let export t =
  let live = ref [] in
  for f = t.next - 1 downto 0 do
    match t.frames.(f) with
    | None -> ()
    | Some b -> live := (f, t.refcounts.(f), Bytes.copy b) :: !live
  done;
  {
    z_next = t.next;
    z_free_list = t.free_list;
    z_versions = Array.sub t.versions 0 t.next;
    z_live = !live;
  }

let import t z =
  if t.next <> 0 || t.live <> 0 then
    invalid_arg "Phys_mem.import: pool not fresh";
  grow t z.z_next;
  t.next <- z.z_next;
  t.free_list <- z.z_free_list;
  Array.blit z.z_versions 0 t.versions 0 z.z_next;
  List.iter
    (fun (f, rc, b) ->
      if f < 0 || f >= z.z_next then
        invalid_arg "Phys_mem.import: frame out of range";
      t.frames.(f) <- Some (Bytes.copy b);
      t.refcounts.(f) <- rc;
      t.live <- t.live + 1)
    z.z_live
