(** Host physical memory: a growable pool of 4 KiB frames.

    Both the guest's "real" memory and every materialized kernel view live
    here.  A host physical address is [frame * page_size + offset].  Frames
    freed when a kernel view is unloaded (§III-B4, "hot-plugging" views)
    are recycled. *)

type t

val page_size : int
(** 4096. *)

val create : ?metrics:Fc_obs.Metrics.t -> unit -> t
(** When a registry is given, allocation/free counters
    ([mem.frames_allocated], [mem.frames_freed]) and a [mem.live_frames]
    gauge are registered on it. *)

val alloc : t -> int
(** Allocate a zeroed frame; returns its frame number. *)

val alloc_n : t -> int -> int list
(** [n] fresh frames, in ascending allocation order. *)

val free : t -> int -> unit
(** Drop one reference to a frame; the frame returns to the pool when the
    last reference is dropped (frames start at refcount 1, see
    {!incref}).  Freeing an unallocated frame raises [Invalid_argument]. *)

val set_release_hook : t -> (int -> unit) option -> unit
(** Install (or clear) a callback fired with the frame number whenever a
    frame's {e last} reference is dropped by {!free}.  Caches keyed by
    frame number — the OS's per-frame decode cache — use it to evict
    entries for dead frames instead of accumulating them until the number
    is recycled.  The hook runs after the frame is already off the live
    set ({!is_live} is false inside it). *)

val incref : t -> int -> unit
(** Add a reference to a live frame — how kernel views share identical
    page contents.  Each reference is released with {!free}. *)

val refcount : t -> int -> int
(** Current reference count ([0] for a frame that is not live).  A view
    page whose frame has refcount [> 1] is shared and must be copied
    before its first write (copy-on-write). *)

val is_live : t -> int -> bool
val live_frames : t -> int
(** Number of currently allocated frames. *)

val read_byte : t -> int -> int
(** [read_byte t hpa] — the byte at host physical address [hpa].
    @raise Invalid_argument if the frame is not live. *)

val write_byte : t -> int -> int -> unit

val read_u32 : t -> int -> int
(** Little-endian 32-bit read (used for stack slots: saved ebp and return
    addresses). *)

val write_u32 : t -> int -> int -> unit

val fill : t -> addr:int -> len:int -> pattern:int list -> unit
(** Tile [pattern] over [[addr, addr+len)] — e.g. UD2-filling a view page
    with [pattern = [0x0f; 0x0b]].  The pattern restarts at [addr], so a
    2-byte pattern keeps its phase with respect to [addr]. *)

val blit_bytes : t -> src:Bytes.t -> src_off:int -> dst:int -> len:int -> unit
(** Copy from an OCaml buffer into physical memory. *)

val copy : t -> src:int -> dst:int -> len:int -> unit
(** Physical-to-physical copy (code recovery: original frame → view
    frame). *)

val frame_of_addr : int -> int
val offset_of_addr : int -> int
val addr_of_frame : int -> int

val version : t -> int -> int
(** A counter bumped on every write into the frame (and on reallocation).
    Decoded-instruction caches key their entries on (frame, version) so
    that code patched by recovery or module loading is never stale. *)

val touch : t -> int -> unit
(** Bump the version of a live frame without writing — used by word-level
    writers that mutate the frame's storage directly (via {!frame_bytes})
    and must keep version-keyed caches coherent.  The frame must be live
    and in range (unchecked; hot path). *)

val frame_count : t -> int
(** The allocation high-water mark: every frame number ever handed out is
    below it.  With {!versions_snapshot}, the dirty-page tracker's whole
    interface: a page is dirty between two instants iff its version moved. *)

val versions_snapshot : t -> int array
(** A copy of the per-frame version counters for frames
    [[0, frame_count))].  Allocation bumps the version too, so a
    frame freed and re-allocated between two snapshots still reads as
    dirty — exactly what pre-copy migration needs. *)

(** {1 Snapshot state}

    The pool's complete state as plain data.  [export] deep-copies the
    live frame contents; [import] rebuilds them into a {e freshly
    created} pool (so the metrics registry hooks from {!create} stay
    wired).  Dead-frame versions are preserved: version counters feed
    version-keyed caches, and the post-restore allocation stream must
    continue where the snapshot left off. *)

type frozen = {
  z_next : int;
  z_free_list : int list;
  z_versions : int array;
  z_live : (int * int * Bytes.t) list;  (** (frame, refcount, contents) *)
}

val export : t -> frozen

val import : t -> frozen -> unit
(** @raise Invalid_argument if the pool has ever allocated. *)

val frame_bytes : t -> int -> Bytes.t
(** The live storage of a frame.  The returned buffer is the frame itself,
    not a copy: writes through it are visible to every reader, but bypass
    version accounting — pair them with {!touch}.  The buffer becomes
    stale if the frame is freed and reallocated; any such reallocation
    bumps the frame's {!version}, so holding a version snapshot is enough
    to detect staleness.
    @raise Invalid_argument if the frame is not live. *)
