(** Direct-mapped software TLB.

    Real hardware hides the cost of page walks behind a TLB; the emulated
    fetch/decode loop pays that cost on every access unless we do the
    same.  An entry caches one guest-virtual page's translation —
    [gva_page → (host frame, frame version, frame storage)] — plus a
    caller-chosen payload (the fetch path stores the frame's decode line
    there, making the common case of instruction fetch a single array
    load + three integer compares).

    Validity is decided entirely by the {e caller}, by comparing the
    entry's fields against current truth:

    - [tag = page] — the slot actually holds this page (direct-mapped
      conflicts just overwrite each other);
    - [stamp = <current validity stamp>] — no mapping change since fill.
      The fetch path uses {!Ept.tag} (the packed view/generation tag, so
      a kernel-view switch retags rather than flushes and a re-entered
      view's entries revalidate by compare, mirroring VPID); the data
      path uses an OS-level generation counter bumped when guest RAM
      grows.
    - [version = Phys_mem.version frame] (fetch path only) — no write to
      the backing frame since fill, which keeps copy-on-write breaks and
      lazy recovery writes coherent with {e zero} eager flushing, and
      doubles as a liveness proof for [bytes] (frame reallocation bumps
      the version).

    There is no negative caching: unmapped pages are re-walked every
    time, so a page mapped after a miss is seen immediately. *)

type 'a entry = {
  mutable tag : int;      (** guest-virtual page number; [-1] = empty *)
  mutable stamp : int;    (** caller-defined validity stamp at fill time
                              (fetch: {!Ept.tag}; data: RAM generation) *)
  mutable frame : int;    (** host frame backing the page *)
  mutable version : int;  (** {!Phys_mem.version} of [frame] at fill time *)
  mutable bytes : Bytes.t;  (** the frame's live storage *)
  mutable payload : 'a;   (** caller data riding along (e.g. decode line) *)
}

type 'a t

val no_tag : int
(** The empty-slot tag ([-1]); never a valid page number. *)

val create : ?bits:int -> payload:'a -> unit -> 'a t
(** A TLB with [2^bits] entries (default 64).  [payload] seeds empty
    entries; it is never read through a valid hit, only overwritten by
    {!fill}. *)

val size : 'a t -> int

val slot : 'a t -> int -> 'a entry
(** [slot t page] — the (unique) entry that may hold [page]'s
    translation.  O(1), allocation-free.  The caller checks validity and
    either uses the entry or {!fill}s it. *)

val null : 'a t -> 'a entry
(** A permanently-invalid entry ([tag = -1]) miss paths can return so
    callers test [e.tag = page] instead of allocating an option. *)

val fill :
  'a entry -> tag:int -> stamp:int -> frame:int -> version:int ->
  bytes:Bytes.t -> payload:'a -> unit

val invalidate_all : 'a t -> unit
(** Drop every entry.  A last-resort reset: stamp mismatches are the
    normal flush mechanism, and retiring a single view's tag
    ({!Ept.retire_view}) invalidates just that view's entries without
    touching translations other views still hold — prefer those over
    this full wipe outside tests. *)
