(** Content-keyed, refcounted cache of shareable physical frames.

    Kernel views overlap heavily (Table I: 33.6–86.5% similarity), so
    most of their materialized pages — the pure-UD2 fill pages, and pages
    whose loaded ranges coincide after the whole-function relaxation —
    are byte-identical across views.  Interning those pages here makes a
    view's memory cost proportional to what is {e unique} about it: a
    builder hashes the page contents it is about to write, and a cache
    hit returns an existing frame with one extra reference
    ({!Phys_mem.incref}) instead of allocating a duplicate.

    Entries do not own references.  A lookup validates the entry against
    the frame's liveness and write-version, so frames freed when their
    last owning view unloads — or privatized in place by a copy-on-write
    break — fall out of the cache lazily, with no eager invalidation
    hooks. *)

type t

val create : ?obs:Fc_obs.Obs.t -> Phys_mem.t -> t
(** With an observability hub, hit/miss/CoW counters register on its
    metrics registry ([cache.hits], [cache.misses], [cache.cow_breaks],
    reset to zero for the new cache) and each cache hit emits a
    [frame_share] trace event. *)

val find : t -> ?label:string -> string -> int option
(** [find t key] — a live frame previously registered under [key], with a
    fresh reference taken for the caller (release it with
    {!Phys_mem.free}).  Counts a hit; [None] counts a miss.  When [label]
    is given (the requesting view's app), a hit also increments the
    [cache.hits{label}] family member, attributing the saved frame. *)

val register : t -> string -> int -> unit
(** Publish a filled frame under its content key.  Call after the last
    build-time write: the entry records the frame's current version and
    is invalidated by any later write. *)

val note_cow_break : t -> unit
(** Record that a shared frame was copied (or privatized) so a view could
    write to it — the copy-on-write path of code recovery. *)

val hits : t -> int
val misses : t -> int
val cow_breaks : t -> int

val resident : t -> int
(** Entries still backed by a live, unmodified frame. *)

val resident_keys : t -> string list
(** The content keys of every resident entry, sorted.  Keys are content
    digests, so two guests' lists can be merged to measure {e cross-guest}
    dedup potential: byte-identical view pages in different guests carry
    the same key.  The fleet host's frame-reduction accounting is a
    merge-on-export fold over these — each guest's cache stays private to
    its domain; only these immutable keys cross domains. *)

val export : t -> (string * int * int) list
(** The still-valid entries as (content key, frame, registered version),
    sorted by key — the snapshot codec's image of the cache.  Stale
    entries (dead or since-written frames) are dropped, which is
    semantically identity: a lookup would never hit them. *)

val import : t -> (string * int * int) list -> unit
(** Re-publish exported entries into a (typically fresh) cache over a
    pool whose frames/versions have been restored.  Entries own no
    references, so importing is pure bookkeeping. *)

val evict_all : t -> int
(** Drop every entry, returning how many were still live.  Entries own no
    frame references, so eviction frees nothing and invalidates nothing —
    it only forces subsequent builds to miss and re-intern.  Used by the
    fault-injection harness to model cache pressure. *)
