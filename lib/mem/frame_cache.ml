(* Content-keyed cache of shareable frames.

   An entry remembers the frame's version at registration time; a lookup
   only hits while the frame is still live with that exact version, so a
   frame that was freed, recycled, or written in place (a refcount-1
   copy-on-write "break") invalidates itself without any eager
   bookkeeping. *)

type entry = { frame : int; version : int }

type t = {
  phys : Phys_mem.t;
  entries : (string, entry) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable cow_breaks : int;
}

let create phys =
  { phys; entries = Hashtbl.create 256; hits = 0; misses = 0; cow_breaks = 0 }

let valid t e =
  Phys_mem.is_live t.phys e.frame && Phys_mem.version t.phys e.frame = e.version

let find t key =
  match Hashtbl.find_opt t.entries key with
  | Some e when valid t e ->
      t.hits <- t.hits + 1;
      Phys_mem.incref t.phys e.frame;
      Some e.frame
  | Some _ ->
      Hashtbl.remove t.entries key;
      t.misses <- t.misses + 1;
      None
  | None ->
      t.misses <- t.misses + 1;
      None

let register t key frame =
  Hashtbl.replace t.entries key
    { frame; version = Phys_mem.version t.phys frame }

let note_cow_break t = t.cow_breaks <- t.cow_breaks + 1
let hits t = t.hits
let misses t = t.misses
let cow_breaks t = t.cow_breaks

let resident t =
  Hashtbl.fold (fun _ e n -> if valid t e then n + 1 else n) t.entries 0
