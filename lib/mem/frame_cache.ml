(* Content-keyed cache of shareable frames.

   An entry remembers the frame's version at registration time; a lookup
   only hits while the frame is still live with that exact version, so a
   frame that was freed, recycled, or written in place (a refcount-1
   copy-on-write "break") invalidates itself without any eager
   bookkeeping. *)

module Obs = Fc_obs.Obs
module Metrics = Fc_obs.Metrics
module Event = Fc_obs.Event

type entry = { frame : int; version : int }

type t = {
  phys : Phys_mem.t;
  entries : (string, entry) Hashtbl.t;
  obs : Obs.t option;
  hits : Metrics.counter;
  misses : Metrics.counter;
  cow_breaks : Metrics.counter;
  hits_f : Metrics.family; (* cache.hits{label}, per requesting view/app *)
}

let create ?obs phys =
  let m =
    match obs with Some o -> Obs.metrics o | None -> Metrics.create ()
  in
  let t =
    {
      phys;
      entries = Hashtbl.create 256;
      obs;
      hits = Metrics.counter m ~subsystem:"cache" "hits";
      misses = Metrics.counter m ~subsystem:"cache" "misses";
      cow_breaks = Metrics.counter m ~subsystem:"cache" "cow_breaks";
      hits_f = Metrics.counter_family m ~subsystem:"cache" "hits";
    }
  in
  Metrics.reset t.hits;
  Metrics.reset t.misses;
  Metrics.reset t.cow_breaks;
  Metrics.reset_family t.hits_f;
  t

let valid t e =
  Phys_mem.is_live t.phys e.frame && Phys_mem.version t.phys e.frame = e.version

let find t ?label key =
  match Hashtbl.find_opt t.entries key with
  | Some e when valid t e ->
      Metrics.incr t.hits;
      (match label with
      | Some l -> Metrics.incr (Metrics.family_counter t.hits_f l)
      | None -> ());
      Phys_mem.incref t.phys e.frame;
      (match t.obs with
      | Some o when Obs.armed o -> Obs.emit o (Event.Frame_share { frame = e.frame })
      | Some _ | None -> ());
      Some e.frame
  | Some _ ->
      Hashtbl.remove t.entries key;
      Metrics.incr t.misses;
      None
  | None ->
      Metrics.incr t.misses;
      None

let register t key frame =
  Hashtbl.replace t.entries key
    { frame; version = Phys_mem.version t.phys frame }

let note_cow_break t = Metrics.incr t.cow_breaks
let hits t = Metrics.value t.hits
let misses t = Metrics.value t.misses
let cow_breaks t = Metrics.value t.cow_breaks

let resident t =
  Hashtbl.fold (fun _ e n -> if valid t e then n + 1 else n) t.entries 0

let resident_keys t =
  List.sort String.compare
    (Hashtbl.fold
       (fun key e acc -> if valid t e then key :: acc else acc)
       t.entries [])

let evict_all t =
  let n = resident t in
  Hashtbl.reset t.entries;
  n

let export t =
  List.sort
    (fun (a, _, _) (b, _, _) -> String.compare a b)
    (Hashtbl.fold
       (fun key e acc ->
         if valid t e then (key, e.frame, e.version) :: acc else acc)
       t.entries [])

let import t entries =
  List.iter
    (fun (key, frame, version) ->
      Hashtbl.replace t.entries key { frame; version })
    entries
