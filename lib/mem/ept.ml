let entries_per_table = 1024
let dir_span_pages = entries_per_table

type table = int option array

let table_create () : table = Array.make entries_per_table None
let table_copy (t : table) : table = Array.copy t

(* Indices reaching [table_set]/[table_get] are produced by [slot_of_page]
   on non-negative page numbers, so they are always within
   [0, entries_per_table); the array's own bounds check is the only guard
   needed on this per-instruction-hot path. *)
let table_set (t : table) ~idx v = t.(idx) <- v
let table_get (t : table) ~idx = t.(idx)

type t = { dirs : (int, table) Hashtbl.t; mutable epoch : int }

let create () : t = { dirs = Hashtbl.create 32; epoch = 0 }
let epoch t = t.epoch
let bump_epoch t = t.epoch <- t.epoch + 1

let set_dir t ~dir v =
  t.epoch <- t.epoch + 1;
  match v with
  | Some table -> Hashtbl.replace t.dirs dir table
  | None -> Hashtbl.remove t.dirs dir

let get_dir t ~dir = Hashtbl.find_opt t.dirs dir
let dir_of_page p = p / dir_span_pages
let slot_of_page p = p mod dir_span_pages

let map_page t ~gpa_page ~hpa_frame =
  let dir = dir_of_page gpa_page in
  let table =
    match get_dir t ~dir with
    | Some tb -> tb
    | None ->
        let tb = table_create () in
        Hashtbl.replace t.dirs dir tb;
        tb
  in
  t.epoch <- t.epoch + 1;
  table_set table ~idx:(slot_of_page gpa_page) (Some hpa_frame)

let translate_page t gpa_page =
  match get_dir t ~dir:(dir_of_page gpa_page) with
  | None -> None
  | Some table -> table_get table ~idx:(slot_of_page gpa_page)

let translate t gpa =
  let page = gpa / Phys_mem.page_size and off = gpa mod Phys_mem.page_size in
  Option.map (fun f -> (f * Phys_mem.page_size) + off) (translate_page t page)

let dirs t =
  List.sort
    (fun (a, _) (b, _) -> compare a b)
    (Hashtbl.fold (fun dir tb acc -> (dir, tb) :: acc) t.dirs [])

let table_entries (t : table) =
  let acc = ref [] in
  for idx = entries_per_table - 1 downto 0 do
    match t.(idx) with None -> () | Some f -> acc := (idx, f) :: !acc
  done;
  !acc

let table_of_entries entries : table =
  let t = table_create () in
  List.iter
    (fun (idx, f) ->
      if idx < 0 || idx >= entries_per_table then
        invalid_arg "Ept.table_of_entries: slot out of range";
      t.(idx) <- Some f)
    entries;
  t
