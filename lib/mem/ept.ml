let entries_per_table = 1024
let dir_span_pages = entries_per_table

type table = int option array

let table_create () : table = Array.make entries_per_table None
let table_copy (t : table) : table = Array.copy t

(* Indices reaching [table_set]/[table_get] are produced by [slot_of_page]
   on non-negative page numbers, so they are always within
   [0, entries_per_table); the array's own bounds check is the only guard
   needed on this per-instruction-hot path. *)
let table_set (t : table) ~idx v = t.(idx) <- v
let table_get (t : table) ~idx = t.(idx)

(* Tag layout (VPID/PCID style), packed into one non-negative OCaml int:

     [ era : rest | view : view_bits | gen : gen_bits ]

   A cached translation is valid iff its packed tag equals the active
   tag — a single integer compare, no field extraction on the hot
   path.  The [era] field makes generation wraparound safe: when a
   view's generation would overflow [gen_bits], the era is bumped and
   every per-view generation resets to 0, so every tag minted in any
   earlier era mismatches forever. *)
let gen_bits = 20
let view_bits = 20
let max_gen = (1 lsl gen_bits) - 1
let max_view = (1 lsl view_bits) - 1

let pack ~era ~view ~gen =
  (((era lsl view_bits) lor view) lsl gen_bits) lor gen

type t = {
  dirs : (int, table) Hashtbl.t;
  mutable view : int;  (** active view id (0 = the full/original view) *)
  mutable era : int;  (** bumped on wraparound or full flush *)
  gens : (int, int) Hashtbl.t;  (** view id -> current generation *)
  mutable active_tag : int;  (** pack era/view/gen of the active view *)
  mutable flushes : int;  (** generation bumps + full flushes, ever *)
}

let create () : t =
  {
    dirs = Hashtbl.create 32;
    view = 0;
    era = 0;
    gens = Hashtbl.create 8;
    active_tag = pack ~era:0 ~view:0 ~gen:0;
    flushes = 0;
  }

let gen t ~view = Option.value ~default:0 (Hashtbl.find_opt t.gens view)
let tag t = t.active_tag
let tag_for t ~view = pack ~era:t.era ~view ~gen:(gen t ~view)
let view t = t.view
let flushes t = t.flushes
let retag t = t.active_tag <- pack ~era:t.era ~view:t.view ~gen:(gen t ~view:t.view)

let set_view t ~view =
  if view < 0 || view > max_view then invalid_arg "Ept.set_view: view id out of range";
  t.view <- view;
  retag t

let flush_all t =
  t.era <- t.era + 1;
  Hashtbl.reset t.gens;
  t.flushes <- t.flushes + 1;
  retag t

let bump_view t ~view =
  let g = gen t ~view in
  if g >= max_gen then flush_all t
  else begin
    Hashtbl.replace t.gens view (g + 1);
    t.flushes <- t.flushes + 1;
    if view = t.view then retag t
  end

let bump t = bump_view t ~view:t.view
let retire_view t ~view = bump_view t ~view

let set_dir t ~dir v =
  bump t;
  match v with
  | Some table -> Hashtbl.replace t.dirs dir table
  | None -> Hashtbl.remove t.dirs dir

let install_dir t ~dir v =
  match v with
  | Some table -> Hashtbl.replace t.dirs dir table
  | None -> Hashtbl.remove t.dirs dir

let get_dir t ~dir = Hashtbl.find_opt t.dirs dir
let dir_of_page p = p / dir_span_pages
let slot_of_page p = p mod dir_span_pages

let install_page t ~gpa_page ~hpa_frame =
  let dir = dir_of_page gpa_page in
  let table =
    match get_dir t ~dir with
    | Some tb -> tb
    | None ->
        let tb = table_create () in
        Hashtbl.replace t.dirs dir tb;
        tb
  in
  table_set table ~idx:(slot_of_page gpa_page) (Some hpa_frame)

let map_page t ~gpa_page ~hpa_frame =
  bump t;
  install_page t ~gpa_page ~hpa_frame

let translate_page t gpa_page =
  match get_dir t ~dir:(dir_of_page gpa_page) with
  | None -> None
  | Some table -> table_get table ~idx:(slot_of_page gpa_page)

let translate t gpa =
  let page = gpa / Phys_mem.page_size and off = gpa mod Phys_mem.page_size in
  Option.map (fun f -> (f * Phys_mem.page_size) + off) (translate_page t page)

let dirs t =
  List.sort
    (fun (a, _) (b, _) -> compare a b)
    (Hashtbl.fold (fun dir tb acc -> (dir, tb) :: acc) t.dirs [])

let table_entries (t : table) =
  let acc = ref [] in
  for idx = entries_per_table - 1 downto 0 do
    match t.(idx) with None -> () | Some f -> acc := (idx, f) :: !acc
  done;
  !acc

let table_of_entries entries : table =
  let t = table_create () in
  List.iter
    (fun (idx, f) ->
      if idx < 0 || idx >= entries_per_table then
        invalid_arg "Ept.table_of_entries: slot out of range";
      t.(idx) <- Some f)
    entries;
  t

type tags = {
  zt_view : int;
  zt_era : int;
  zt_flushes : int;
  zt_gens : (int * int) list;  (** (view id, generation), sorted by view *)
}

let freeze_tags t =
  {
    zt_view = t.view;
    zt_era = t.era;
    zt_flushes = t.flushes;
    zt_gens =
      List.sort compare
        (Hashtbl.fold (fun v g acc -> (v, g) :: acc) t.gens []);
  }

let restore_tags t z =
  t.view <- z.zt_view;
  t.era <- z.zt_era;
  t.flushes <- z.zt_flushes;
  Hashtbl.reset t.gens;
  List.iter (fun (v, g) -> Hashtbl.replace t.gens v g) z.zt_gens;
  retag t
