type 'a entry = {
  mutable tag : int;
  mutable stamp : int;
  mutable frame : int;
  mutable version : int;
  mutable bytes : Bytes.t;
  mutable payload : 'a;
}

type 'a t = {
  entries : 'a entry array;
  mask : int;
  null : 'a entry;  (* permanent miss: tag never matches a real page *)
}

let no_tag = -1

let fresh_entry payload =
  { tag = no_tag; stamp = no_tag; frame = no_tag; version = no_tag;
    bytes = Bytes.empty; payload }

let create ?(bits = 6) ~payload () =
  if bits < 0 || bits > 20 then invalid_arg "Tlb.create: bits out of range";
  let n = 1 lsl bits in
  { entries = Array.init n (fun _ -> fresh_entry payload);
    mask = n - 1;
    null = fresh_entry payload }

let size t = Array.length t.entries
let slot t page = Array.unsafe_get t.entries (page land t.mask)
let null t = t.null

let fill e ~tag ~stamp ~frame ~version ~bytes ~payload =
  e.tag <- tag;
  e.stamp <- stamp;
  e.frame <- frame;
  e.version <- version;
  e.bytes <- bytes;
  e.payload <- payload

let invalidate_all t =
  Array.iter (fun e -> e.tag <- no_tag) t.entries
