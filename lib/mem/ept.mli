(** Extended Page Tables: guest-physical → host-physical, two levels.

    The structure mirrors what FACE-CHANGE manipulates on real hardware: a
    page {e directory} whose entries each point to a page {e table} mapping
    a 4 MiB-aligned slice of guest-physical space (1024 × 4 KiB pages) to
    host frames.  Kernel view switching (§III-B2, steps 3A/3B) does not
    remap individual pages — it swaps {e directory entries} so that the
    guest-physical pages holding kernel code resolve to the view's frames
    instead of the original ones.  [set_dir] is therefore the unit of
    switching cost.

    Page tables are first-class ({!table}) so that every kernel view can
    pre-build its tables once at load time and switching is pointer
    assignment, exactly as in the paper.

    {1 View-tagged translation validity}

    Cached translations (software TLB entries, superblock stamps) are not
    validated against a single global epoch but against a packed
    {e (era, view, generation)} tag, mirroring hardware VPID/PCID:

    - every kernel view gets a compact id; view 0 is the full/original
      kernel view;
    - each view carries its own generation counter, bumped whenever that
      view's gpa→frame mapping may have changed ([set_dir], [map_page],
      {!bump_view});
    - the {e active tag} packs the era, the active view id and that
      view's current generation into one int.

    A cached entry is valid iff its fill-time tag equals the active tag —
    one integer compare.  Switching between two already-seen views only
    changes the active tag ({!set_view} + {!install_dir}); nothing is
    flushed, and translations cached under the re-entered view revalidate
    by comparison.  Mutating one view's mapping bumps only that view's
    generation, so other views' cached translations survive.

    Generation wraparound: when a view's generation would exceed
    [2^gen_bits - 1] the {e era} is bumped instead and every per-view
    generation resets to 0 — tags minted in any earlier era can never
    compare equal again, making overflow safe at O(1) amortized cost. *)

val entries_per_table : int
(** 1024. *)

val dir_span_pages : int
(** Guest-physical pages covered by one directory entry (1024). *)

type table

val table_create : unit -> table
val table_copy : table -> table

val table_set : table -> idx:int -> int option -> unit
(** Map table slot [idx] to a host frame, or unmap with [None].

    {b Invariant}: [idx] must lie in [0, entries_per_table).  Callers
    derive it from {!slot_of_page} on a non-negative page number, which
    guarantees the range, so no explicit check is performed beyond the
    array access itself — this is on the per-instruction translation
    path. *)

val table_get : table -> idx:int -> int option
(** Same index invariant as {!table_set}. *)

type t

val create : unit -> t
(** Active view 0, era 0, every generation 0. *)

val gen_bits : int
(** Generation field width of the packed tag (20). *)

val view_bits : int
(** View-id field width of the packed tag (20). *)

val max_view : int
(** Largest representable view id, [2^view_bits - 1]. *)

val tag : t -> int
(** The active packed [(era, view, generation)] tag.  Consumers stamp
    cached translations with this value at fill time and treat any later
    mismatch as a miss.  Strictly non-negative. *)

val tag_for : t -> view:int -> int
(** The tag [view] {e would} mint if activated right now — what {!tag}
    returns after [set_view t ~view].  Lets a consumer pre-stamp a cached
    translation it can prove valid under a non-active view (e.g. a
    superblock on a frame several views share): the stamp is inert unless
    that view is re-activated at this same era and generation. *)

val view : t -> int
(** The active view id. *)

val gen : t -> view:int -> int
(** Current generation of [view] (0 if never bumped this era). *)

val flushes : t -> int
(** Number of invalidation events ever applied: every generation bump
    ({!set_dir}, {!map_page}, {!bump}, {!bump_view}, {!retire_view})
    plus every {!flush_all}.  When {!set_view} is never called the
    structure degenerates to the pre-tag global-epoch scheme and this
    counts exactly what the old [epoch] did. *)

val set_view : t -> view:int -> unit
(** Make [view] the active view.  {b Flushes nothing} — translations
    cached under the new view in an earlier activation revalidate by tag
    compare.  Callers are responsible for also pointing the directory at
    the view's tables ({!install_dir}).
    @raise Invalid_argument if [view] is outside [[0, max_view]]. *)

val bump : t -> unit
(** Bump the {e active} view's generation, invalidating translations
    cached under it.  Other views' cached translations survive. *)

val bump_view : t -> view:int -> unit
(** Bump [view]'s generation (whether or not it is active).  Used when a
    page table owned by a non-active view is mutated behind the
    directory — e.g. a COW break on a frame the view maps privately. *)

val retire_view : t -> view:int -> unit
(** Invalidate every translation cached under [view] because the view is
    being destroyed (unload, disable, quarantine).  Equivalent to a
    generation bump; other views are untouched.  View ids are never
    reused by the hypervisor, so a retired tag can never be minted
    again. *)

val flush_all : t -> unit
(** Drop every cached translation for {e all} views by bumping the era:
    any tag minted before this call mismatches forever.  The
    belt-and-braces big hammer; per-view bumps are the normal path. *)

val set_dir : t -> dir:int -> table option -> unit
(** Point directory entry [dir] at a (possibly shared) page table.
    Bumps the active view's generation — the legacy epoch-like path used
    when tags are off. *)

val install_dir : t -> dir:int -> table option -> unit
(** Like {!set_dir} but {b quiet}: no generation bump.  The tagged
    view-switch path — combined with {!set_view}, switching to an
    already-seen view flushes nothing because its cached translations
    carry the view's own still-current tag. *)

val get_dir : t -> dir:int -> table option

val map_page : t -> gpa_page:int -> hpa_frame:int -> unit
(** Convenience single-page mapping; allocates the directory's table if
    absent.  Used to build the initial identity-style guest mapping.
    Bumps the active view's generation. *)

val install_page : t -> gpa_page:int -> hpa_frame:int -> unit
(** Like {!map_page} but {b quiet}: no generation bump.  Sound only for
    mapping a {e previously unmapped} page — consumers never cache
    negative translations, so nothing stale can exist for it.  The
    tagged guest-RAM growth path. *)

val translate_page : t -> int -> int option
(** [translate_page t gpa_page] — host frame number. *)

val translate : t -> int -> int option
(** [translate t gpa] — host physical {e address}; [None] = EPT violation. *)

val dir_of_page : int -> int
val slot_of_page : int -> int
(** Decompose a guest-physical page number into (directory, table slot). *)

(** {1 Snapshot support}

    Tables are shared {e by reference} — one leaf table can sit behind
    several vCPUs' directories, the hypervisor's original-table map and
    a view's table list at once.  The snapshot layer therefore walks
    every holder, assigns each distinct table an identity-based id, and
    serializes the sparse contents once; these helpers are that walk's
    vocabulary. *)

val dirs : t -> (int * table) list
(** Every (directory, table) pair, sorted by directory.  The tables are
    the live structures, not copies. *)

val table_entries : table -> (int * int) list
(** The mapped (slot, frame) pairs, in slot order. *)

val table_of_entries : (int * int) list -> table
(** Rebuild a table from its sparse entries.
    @raise Invalid_argument on a slot outside [[0, entries_per_table)]. *)

type tags = {
  zt_view : int;
  zt_era : int;
  zt_flushes : int;
  zt_gens : (int * int) list;  (** (view id, generation), sorted by view *)
}
(** Frozen tag state, serialized by the snapshot codec so restored
    guests keep their per-view generations (and flush gauge) instead of
    restarting every counter at zero. *)

val freeze_tags : t -> tags
val restore_tags : t -> tags -> unit
(** Overwrites the live tag state (view, era, generations, flush count)
    and recomputes the active tag.  Directory contents are untouched —
    the snapshot layer installs those separately via {!install_dir} /
    {!set_dir}. *)
