(** Extended Page Tables: guest-physical → host-physical, two levels.

    The structure mirrors what FACE-CHANGE manipulates on real hardware: a
    page {e directory} whose entries each point to a page {e table} mapping
    a 4 MiB-aligned slice of guest-physical space (1024 × 4 KiB pages) to
    host frames.  Kernel view switching (§III-B2, steps 3A/3B) does not
    remap individual pages — it swaps {e directory entries} so that the
    guest-physical pages holding kernel code resolve to the view's frames
    instead of the original ones.  [set_dir] is therefore the unit of
    switching cost.

    Page tables are first-class ({!table}) so that every kernel view can
    pre-build its tables once at load time and switching is pointer
    assignment, exactly as in the paper. *)

val entries_per_table : int
(** 1024. *)

val dir_span_pages : int
(** Guest-physical pages covered by one directory entry (1024). *)

type table

val table_create : unit -> table
val table_copy : table -> table
val table_set : table -> idx:int -> int option -> unit
(** Map table slot [idx] to a host frame, or unmap with [None].

    {b Invariant}: [idx] must lie in [0, entries_per_table).  Callers
    derive it from {!slot_of_page} on a non-negative page number, which
    guarantees the range, so no explicit check is performed beyond the
    array access itself — this is on the per-instruction translation
    path. *)

val table_get : table -> idx:int -> int option
(** Same index invariant as {!table_set}. *)

type t

val create : unit -> t

val epoch : t -> int
(** Translation epoch: a counter bumped whenever the gpa→frame mapping
    may have changed through {e this} structure ([set_dir], [map_page])
    or was explicitly invalidated ({!bump_epoch}).  Software TLBs tag
    entries with the epoch at fill time and treat any mismatch as a
    miss, so a view switch (a [set_dir] swap) flushes every cached
    translation in O(1) with no eager walk. *)

val bump_epoch : t -> unit
(** Force-invalidate cached translations derived from [t].  Needed when
    a page table {e shared by reference} (installed view tables) is
    mutated behind the directory via {!table_set} — e.g. a
    copy-on-write break — which [set_dir] cannot observe. *)

val set_dir : t -> dir:int -> table option -> unit
(** Point directory entry [dir] at a (possibly shared) page table.
    Bumps the epoch. *)

val get_dir : t -> dir:int -> table option

val map_page : t -> gpa_page:int -> hpa_frame:int -> unit
(** Convenience single-page mapping; allocates the directory's table if
    absent.  Used to build the initial identity-style guest mapping.
    Bumps the epoch. *)

val translate_page : t -> int -> int option
(** [translate_page t gpa_page] — host frame number. *)

val translate : t -> int -> int option
(** [translate t gpa] — host physical {e address}; [None] = EPT violation. *)

val dir_of_page : int -> int
val slot_of_page : int -> int
(** Decompose a guest-physical page number into (directory, table slot). *)

(** {1 Snapshot support}

    Tables are shared {e by reference} — one leaf table can sit behind
    several vCPUs' directories, the hypervisor's original-table map and
    a view's table list at once.  The snapshot layer therefore walks
    every holder, assigns each distinct table an identity-based id, and
    serializes the sparse contents once; these helpers are that walk's
    vocabulary. *)

val dirs : t -> (int * table) list
(** Every (directory, table) pair, sorted by directory.  The tables are
    the live structures, not copies. *)

val table_entries : table -> (int * int) list
(** The mapped (slot, frame) pairs, in slot order. *)

val table_of_entries : (int * int) list -> table
(** Rebuild a table from its sparse entries.
    @raise Invalid_argument on a slot outside [[0, entries_per_table)]. *)
