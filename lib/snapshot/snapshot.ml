(* Deterministic whole-machine snapshots (DESIGN.md §13).

   A snapshot is the frozen plain-data image of every layer — OS,
   hypervisor, FACE-CHANGE, fault-plan cursor, metrics — plus the
   identity-preserving EPT table pool and a content-keyed store of guest
   RAM pages.  The binary format is versioned, length-prefixed and
   CRC-guarded per section, and the decoder is total: corrupt, truncated
   or wrong-version input comes back as a typed [error] naming the
   section and byte offset, never as an exception. *)

module Os = Fc_machine.Os
module Process = Fc_machine.Process
module Hyp = Fc_hypervisor.Hypervisor
module Facechange = Fc_core.Facechange
module View = Fc_core.View
module Governor = Fc_core.Governor
module Injector = Fc_faults.Injector
module Fault = Fc_faults.Fault
module Ept = Fc_mem.Ept
module Phys = Fc_mem.Phys_mem
module Image = Fc_kernel.Image
module Irq_paths = Fc_kernel.Irq_paths
module Action = Fc_machine.Action
module Obs = Fc_obs.Obs
module Metrics = Fc_obs.Metrics

(* ---------------- snapshot value ---------------- *)

type t = {
  s_meta : (string * string) list;
  s_tables : (int * int) list array; (* pool id -> sparse (slot, frame) *)
  s_os : Os.frozen;
  s_hyp : Hyp.frozen option;
  s_fc : Facechange.frozen option;
  s_cursor : Injector.cursor option;
  s_metrics : Metrics.dump_entry list;
}

type error = { section : string; offset : int; reason : string }

let error_to_string e =
  Printf.sprintf "snapshot decode failed in section %s at byte %d: %s"
    e.section e.offset e.reason

let meta t = t.s_meta
let meta_find t key = List.assoc_opt key t.s_meta

(* ---------------- capture ---------------- *)

(* Identity-interning table pool: EPT leaf tables are shared by
   reference across vCPU directories, the hypervisor's pristine set and
   every view, and restore must preserve exactly that sharing.  Interning
   is a linear [==] scan — pools are tens of tables, not thousands. *)
let mk_pool () =
  let tables = ref [] and count = ref 0 in
  let table_id tbl =
    let rec find seen = function
      | [] -> None
      | x :: _ when x == tbl -> Some (!count - 1 - seen)
      | _ :: rest -> find (seen + 1) rest
    in
    match find 0 !tables with
    | Some id -> id
    | None ->
        let id = !count in
        tables := tbl :: !tables;
        incr count;
        id
  in
  (tables, table_id)

let capture ?(meta = []) ?cursor ?fc ?hyp os =
  let tables, table_id = mk_pool () in
  let s_os = Os.freeze os ~table_id in
  let s_hyp = Option.map (fun h -> Hyp.freeze h ~table_id) hyp in
  let s_fc = Option.map (fun f -> Facechange.freeze f ~table_id) fc in
  {
    s_meta = meta;
    (* [!tables] is newest-first; ids were assigned in insertion order,
       so the pool in id order is the reversed list *)
    s_tables = Array.of_list (List.rev_map Ept.table_entries !tables);
    s_os;
    s_hyp;
    s_fc;
    s_cursor = cursor;
    s_metrics = Metrics.dump (Obs.metrics (Os.obs os));
  }

(* ---------------- restore ---------------- *)

type restored = {
  r_os : Os.t;
  r_hyp : Hyp.t option;
  r_fc : Facechange.t option;
  r_inj : Injector.t option;
  r_meta : (string * string) list;
}

let restore ?obs ?image t =
  let image = match image with Some i -> i | None -> Image.build_exn () in
  let pool = Array.map Ept.table_of_entries t.s_tables in
  let table_of id =
    if id < 0 || id >= Array.length pool then
      invalid_arg (Printf.sprintf "Snapshot.restore: table id %d out of pool" id)
    else pool.(id)
  in
  let os = Os.thaw ?obs ~image ~table_of t.s_os in
  let hyp = Option.map (fun z -> Hyp.restore ~os ~table_of z) t.s_hyp in
  let fc =
    match (t.s_fc, hyp) with
    | Some zf, Some h -> Some (Facechange.restore ~hyp:h ~table_of zf)
    | Some _, None ->
        invalid_arg "Snapshot.restore: FACE-CHANGE section without hypervisor"
    | None, _ -> None
  in
  let inj =
    match (t.s_cursor, hyp, fc) with
    | Some c, Some h, Some f -> Some (Injector.rearm ~os ~hyp:h ~fc:f c)
    | Some _, _, _ ->
        invalid_arg "Snapshot.restore: fault cursor without hypervisor and views"
    | None, _, _ -> None
  in
  (* metrics last: layer constructors register instruments at zero; the
     dump overwrites them with the captured continuous-run values *)
  Metrics.load (Obs.metrics (Os.obs os)) t.s_metrics;
  { r_os = os; r_hyp = hyp; r_fc = fc; r_inj = inj; r_meta = t.s_meta }

(* ---------------- CRC32 (IEEE, table-driven; no zlib dependency) ------ *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let tbl = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := tbl.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

(* ---------------- writer ---------------- *)

let w_int b v =
  let cell = Bytes.create 8 in
  Bytes.set_int64_le cell 0 (Int64.of_int v);
  Buffer.add_bytes b cell

let w_bool b v = Buffer.add_char b (if v then '\001' else '\000')
let w_tag b v = Buffer.add_char b (Char.chr (v land 0xff))

let w_string b s =
  w_int b (String.length s);
  Buffer.add_string b s

let w_list b f xs =
  w_int b (List.length xs);
  List.iter (f b) xs

let w_option b f = function
  | None -> w_tag b 0
  | Some v ->
      w_tag b 1;
      f b v

let w_pair fa fb b (x, y) =
  fa b x;
  fb b y

let w_triple fa fb fc b (x, y, z) =
  fa b x;
  fb b y;
  fc b z

(* ---------------- reader ---------------- *)

exception Decode_err of int * string

type reader = { src : string; mutable pos : int }

let fail r reason = raise (Decode_err (r.pos, reason))

let need r n =
  if n < 0 || r.pos + n > String.length r.src then
    fail r
      (Printf.sprintf "truncated: need %d bytes, %d remain" n
         (String.length r.src - r.pos))

let r_int r =
  need r 8;
  let v = Int64.to_int (String.get_int64_le r.src r.pos) in
  r.pos <- r.pos + 8;
  v

let r_tag r =
  need r 1;
  let v = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r_bool r =
  match r_tag r with
  | 0 -> false
  | 1 -> true
  | n -> fail r (Printf.sprintf "bad boolean byte %d" n)

let r_string r =
  let n = r_int r in
  if n < 0 then fail r (Printf.sprintf "negative string length %d" n);
  need r n;
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let r_list r f =
  let n = r_int r in
  if n < 0 then fail r (Printf.sprintf "negative list length %d" n);
  List.init n (fun _ -> f r)

let r_option r f = match r_tag r with
  | 0 -> None
  | 1 -> Some (f r)
  | n -> fail r (Printf.sprintf "bad option tag %d" n)

let r_pair fa fb r =
  let a = fa r in
  let b = fb r in
  (a, b)

let r_triple fa fb fc r =
  let a = fa r in
  let b = fb r in
  let c = fc r in
  (a, b, c)

(* ---------------- domain codecs ---------------- *)

let w_clocksource b = function
  | Irq_paths.Acpi_pm -> w_tag b 0
  | Irq_paths.Kvmclock -> w_tag b 1

let r_clocksource r =
  match r_tag r with
  | 0 -> Irq_paths.Acpi_pm
  | 1 -> Irq_paths.Kvmclock
  | n -> fail r (Printf.sprintf "bad clocksource tag %d" n)

let w_irq_source b = function
  | Irq_paths.Timer cs ->
      w_tag b 0;
      w_clocksource b cs
  | Irq_paths.Timer_itimer cs ->
      w_tag b 1;
      w_clocksource b cs
  | Irq_paths.Keyboard_console -> w_tag b 2
  | Irq_paths.Keyboard_evdev -> w_tag b 3
  | Irq_paths.Net_rx_tcp -> w_tag b 4
  | Irq_paths.Net_rx_udp -> w_tag b 5
  | Irq_paths.Net_rx_sniffed_tcp -> w_tag b 6
  | Irq_paths.Net_rx_sniffed_udp -> w_tag b 7
  | Irq_paths.Disk -> w_tag b 8

let r_irq_source r =
  match r_tag r with
  | 0 -> Irq_paths.Timer (r_clocksource r)
  | 1 -> Irq_paths.Timer_itimer (r_clocksource r)
  | 2 -> Irq_paths.Keyboard_console
  | 3 -> Irq_paths.Keyboard_evdev
  | 4 -> Irq_paths.Net_rx_tcp
  | 5 -> Irq_paths.Net_rx_udp
  | 6 -> Irq_paths.Net_rx_sniffed_tcp
  | 7 -> Irq_paths.Net_rx_sniffed_udp
  | 8 -> Irq_paths.Disk
  | n -> fail r (Printf.sprintf "bad irq source tag %d" n)

let w_action b = function
  | Action.Syscall s ->
      w_tag b 0;
      w_string b s
  | Action.Compute n ->
      w_tag b 1;
      w_int b n
  | Action.Sleep n ->
      w_tag b 2;
      w_int b n
  | Action.Fault -> w_tag b 3
  | Action.Exit -> w_tag b 4

let r_action r =
  match r_tag r with
  | 0 -> Action.Syscall (r_string r)
  | 1 -> Action.Compute (r_int r)
  | 2 -> Action.Sleep (r_int r)
  | 3 -> Action.Fault
  | 4 -> Action.Exit
  | n -> fail r (Printf.sprintf "bad action tag %d" n)

let w_run_state b = function
  | Process.Ready -> w_tag b 0
  | Process.Blocked { yield_id; wake_round } ->
      w_tag b 1;
      w_int b yield_id;
      w_int b wake_round
  | Process.Exited -> w_tag b 2

let r_run_state r =
  match r_tag r with
  | 0 -> Process.Ready
  | 1 ->
      let yield_id = r_int r in
      let wake_round = r_int r in
      Process.Blocked { yield_id; wake_round }
  | 2 -> Process.Exited
  | n -> fail r (Printf.sprintf "bad run_state tag %d" n)

let w_int_pair = w_pair w_int w_int
let r_int_pair = r_pair r_int r_int

let w_config b (c : Os.config) =
  w_clocksource b c.Os.clocksource;
  w_int b c.Os.timer_period;
  w_int b c.Os.quantum;
  w_int b c.Os.wake_delay;
  w_list b (w_pair w_irq_source w_int) c.Os.background_irqs

let r_config r =
  let clocksource = r_clocksource r in
  let timer_period = r_int r in
  let quantum = r_int r in
  let wake_delay = r_int r in
  let background_irqs = r_list r (r_pair r_irq_source r_int) in
  { Os.clocksource; timer_period; quantum; wake_delay; background_irqs }

let w_fault_kind b = function
  | Fault.Spurious_ud2 { frac; count } ->
      w_tag b 0;
      w_int b frac;
      w_int b count
  | Fault.Broken_rbp { frac } ->
      w_tag b 1;
      w_int b frac
  | Fault.Cyclic_rbp { frac } ->
      w_tag b 2;
      w_int b frac
  | Fault.Flip_view_byte { frac } ->
      w_tag b 3;
      w_int b frac
  | Fault.Evict_frames -> w_tag b 4
  | Fault.Miss_breakpoints { count } ->
      w_tag b 5;
      w_int b count
  | Fault.Truncated_config -> w_tag b 6
  | Fault.Overlapping_config -> w_tag b 7

let r_fault_kind r =
  match r_tag r with
  | 0 ->
      let frac = r_int r in
      let count = r_int r in
      Fault.Spurious_ud2 { frac; count }
  | 1 -> Fault.Broken_rbp { frac = r_int r }
  | 2 -> Fault.Cyclic_rbp { frac = r_int r }
  | 3 -> Fault.Flip_view_byte { frac = r_int r }
  | 4 -> Fault.Evict_frames
  | 5 -> Fault.Miss_breakpoints { count = r_int r }
  | 6 -> Fault.Truncated_config
  | 7 -> Fault.Overlapping_config
  | n -> fail r (Printf.sprintf "bad fault kind tag %d" n)

let w_fault_event b (e : Fault.event) =
  w_int b e.Fault.at_round;
  w_fault_kind b e.Fault.kind

let r_fault_event r =
  let at_round = r_int r in
  let kind = r_fault_kind r in
  { Fault.at_round; kind }

let w_gov_state b = function
  | Governor.Narrow -> w_tag b 0
  | Governor.Throttled -> w_tag b 1
  | Governor.Degraded -> w_tag b 2
  | Governor.Quarantined -> w_tag b 3

let r_gov_state r =
  match r_tag r with
  | 0 -> Governor.Narrow
  | 1 -> Governor.Throttled
  | 2 -> Governor.Degraded
  | 3 -> Governor.Quarantined
  | n -> fail r (Printf.sprintf "bad governor state tag %d" n)

let w_gov_policy b (p : Governor.policy) =
  w_int b p.Governor.window_cycles;
  w_int b p.Governor.throttle_after;
  w_int b p.Governor.storm_after;
  w_int b p.Governor.cooldown_cycles;
  w_int b p.Governor.quarantine_after;
  w_int b p.Governor.max_backtrace_depth;
  w_tag b (match p.Governor.on_unhandled with `Degrade -> 0 | `Die -> 1)

let r_gov_policy r =
  let window_cycles = r_int r in
  let throttle_after = r_int r in
  let storm_after = r_int r in
  let cooldown_cycles = r_int r in
  let quarantine_after = r_int r in
  let max_backtrace_depth = r_int r in
  let on_unhandled =
    match r_tag r with
    | 0 -> `Degrade
    | 1 -> `Die
    | n -> fail r (Printf.sprintf "bad on_unhandled tag %d" n)
  in
  {
    Governor.window_cycles;
    throttle_after;
    storm_after;
    cooldown_cycles;
    quarantine_after;
    max_backtrace_depth;
    on_unhandled;
  }

let w_gov_frozen b (z : Governor.frozen) =
  w_gov_policy b z.Governor.zg_policy;
  w_list b
    (w_pair w_string (fun b (a : Governor.frozen_app) ->
         w_gov_state b a.Governor.za_st;
         w_list b w_int a.Governor.za_recent;
         w_int b a.Governor.za_degradations;
         w_int b a.Governor.za_degraded_at;
         w_int b a.Governor.za_unhandled))
    z.Governor.zg_apps

let r_gov_frozen r =
  let zg_policy = r_gov_policy r in
  let zg_apps =
    r_list r
      (r_pair r_string (fun r ->
           let za_st = r_gov_state r in
           let za_recent = r_list r r_int in
           let za_degradations = r_int r in
           let za_degraded_at = r_int r in
           let za_unhandled = r_int r in
           { Governor.za_st; za_recent; za_degradations; za_degraded_at; za_unhandled }))
  in
  { Governor.zg_policy; zg_apps }

(* --- OS frozen --- *)

let w_frozen_proc b (p : Os.frozen_proc) =
  w_int b p.Os.zp_pid;
  w_string b p.Os.zp_name;
  w_int b p.Os.zp_cpu;
  w_list b w_action p.Os.zp_script;
  w_run_state b p.Os.zp_state;
  w_option b (w_triple w_int w_int w_int) p.Os.zp_saved_regs;
  w_list b w_int p.Os.zp_saved_dispatch;
  w_bool b p.Os.zp_in_kernel;
  w_int b p.Os.zp_syscall_count;
  w_int b p.Os.zp_last_scheduled_round;
  w_list b w_int_pair p.Os.zp_mappings

let r_frozen_proc r =
  let zp_pid = r_int r in
  let zp_name = r_string r in
  let zp_cpu = r_int r in
  let zp_script = r_list r r_action in
  let zp_state = r_run_state r in
  let zp_saved_regs = r_option r (r_triple r_int r_int r_int) in
  let zp_saved_dispatch = r_list r r_int in
  let zp_in_kernel = r_bool r in
  let zp_syscall_count = r_int r in
  let zp_last_scheduled_round = r_int r in
  let zp_mappings = r_list r r_int_pair in
  {
    Os.zp_pid;
    zp_name;
    zp_cpu;
    zp_script;
    zp_state;
    zp_saved_regs;
    zp_saved_dispatch;
    zp_in_kernel;
    zp_syscall_count;
    zp_last_scheduled_round;
    zp_mappings;
  }

let w_frozen_module b (m : Os.frozen_module) =
  w_string b m.Os.zm_name;
  w_bool b m.Os.zm_hidden;
  w_int b m.Os.zm_base;
  w_string b m.Os.zm_code;
  w_list b (w_triple w_string w_int w_int) m.Os.zm_functions

let r_frozen_module r =
  let zm_name = r_string r in
  let zm_hidden = r_bool r in
  let zm_base = r_int r in
  let zm_code = r_string r in
  let zm_functions = r_list r (r_triple r_string r_int r_int) in
  { Os.zm_name; zm_hidden; zm_base; zm_code; zm_functions }

let w_frozen_timer b (tm : Os.frozen_timer) =
  w_irq_source b tm.Os.zt_source;
  w_int b tm.Os.zt_period;
  w_int b tm.Os.zt_next_at

let r_frozen_timer r =
  let zt_source = r_irq_source r in
  let zt_period = r_int r in
  let zt_next_at = r_int r in
  { Os.zt_source; zt_period; zt_next_at }

(* Format version 2: each vCPU carries its EPT tag state (active view,
   era, per-view generations, flush count) so view-tagged translation
   validity — and the tlb.i_flushes gauge — survive restore. *)
let w_ept_tags b (z : Ept.tags) =
  w_int b z.Ept.zt_view;
  w_int b z.Ept.zt_era;
  w_int b z.Ept.zt_flushes;
  w_list b w_int_pair z.Ept.zt_gens

let r_ept_tags r =
  let zt_view = r_int r in
  let zt_era = r_int r in
  let zt_flushes = r_int r in
  let zt_gens = r_list r r_int_pair in
  { Ept.zt_view; zt_era; zt_flushes; zt_gens }

let w_frozen_vcpu b (v : Os.frozen_vcpu) =
  w_list b w_int_pair v.Os.zv_dirs;
  w_int b v.Os.zv_current_pid;
  w_bool b v.Os.zv_in_interrupt;
  w_int b v.Os.zv_idle_last_round;
  w_int b v.Os.zv_slice_start;
  w_ept_tags b v.Os.zv_tags

let r_frozen_vcpu r =
  let zv_dirs = r_list r r_int_pair in
  let zv_current_pid = r_int r in
  let zv_in_interrupt = r_bool r in
  let zv_idle_last_round = r_int r in
  let zv_slice_start = r_int r in
  let zv_tags = r_ept_tags r in
  {
    Os.zv_dirs;
    zv_current_pid;
    zv_in_interrupt;
    zv_idle_last_round;
    zv_slice_start;
    zv_tags;
  }

(* The physical pool splits across two sections: frame contents live in
   the content-keyed FRAM store (unique pages, digest-verified); the OS
   section stores each live frame as (frame, refcount, content index). *)
let w_phys ~content_id b (z : Phys.frozen) =
  w_int b z.Phys.z_next;
  w_list b w_int z.Phys.z_free_list;
  w_list b w_int (Array.to_list z.Phys.z_versions);
  w_list b
    (fun b (frame, refs, bytes) ->
      w_int b frame;
      w_int b refs;
      w_int b (content_id (Bytes.to_string bytes)))
    z.Phys.z_live

let r_phys ~content_of r =
  let z_next = r_int r in
  let z_free_list = r_list r r_int in
  let z_versions = Array.of_list (r_list r r_int) in
  let z_live =
    r_list r (fun r ->
        let frame = r_int r in
        let refs = r_int r in
        let idx = r_int r in
        (frame, refs, Bytes.of_string (content_of r idx)))
  in
  { Phys.z_next; z_free_list; z_versions; z_live }

let w_os ~content_id b (z : Os.frozen) =
  w_config b z.Os.z_config;
  w_bool b z.Os.z_tlb_on;
  w_bool b z.Os.z_sblocks_on;
  w_bool b z.Os.z_tagged_on;
  w_int b z.Os.z_cycles;
  w_int b z.Os.z_instrs;
  w_int b z.Os.z_round_no;
  w_int b z.Os.z_context_switches;
  w_int b z.Os.z_next_pid;
  w_int b z.Os.z_next_module_base;
  w_int b z.Os.z_data_epoch;
  w_int b z.Os.z_trap_gen;
  w_int b z.Os.z_global_gen;
  w_list b w_int z.Os.z_divergent;
  w_list b w_int_pair z.Os.z_ram;
  w_phys ~content_id b z.Os.z_phys;
  w_list b w_int_pair z.Os.z_master_pt;
  w_list b w_frozen_vcpu z.Os.z_vcpus;
  w_list b w_frozen_proc z.Os.z_procs;
  w_list b w_frozen_module z.Os.z_modules;
  w_list b w_frozen_timer z.Os.z_timers;
  w_list b w_int z.Os.z_traps;
  w_list b w_int z.Os.z_itimers;
  w_option b w_int z.Os.z_sleep_override

let r_os ~content_of r =
  let z_config = r_config r in
  let z_tlb_on = r_bool r in
  let z_sblocks_on = r_bool r in
  let z_tagged_on = r_bool r in
  let z_cycles = r_int r in
  let z_instrs = r_int r in
  let z_round_no = r_int r in
  let z_context_switches = r_int r in
  let z_next_pid = r_int r in
  let z_next_module_base = r_int r in
  let z_data_epoch = r_int r in
  let z_trap_gen = r_int r in
  let z_global_gen = r_int r in
  let z_divergent = r_list r r_int in
  let z_ram = r_list r r_int_pair in
  let z_phys = r_phys ~content_of r in
  let z_master_pt = r_list r r_int_pair in
  let z_vcpus = r_list r r_frozen_vcpu in
  let z_procs = r_list r r_frozen_proc in
  let z_modules = r_list r r_frozen_module in
  let z_timers = r_list r r_frozen_timer in
  let z_traps = r_list r r_int in
  let z_itimers = r_list r r_int in
  let z_sleep_override = r_option r r_int in
  {
    Os.z_config;
    z_tlb_on;
    z_sblocks_on;
    z_tagged_on;
    z_cycles;
    z_instrs;
    z_round_no;
    z_context_switches;
    z_next_pid;
    z_next_module_base;
    z_data_epoch;
    z_trap_gen;
    z_global_gen;
    z_divergent;
    z_ram;
    z_phys;
    z_master_pt;
    z_vcpus;
    z_procs;
    z_modules;
    z_timers;
    z_traps;
    z_itimers;
    z_sleep_override;
  }

(* --- hypervisor / FACE-CHANGE / cursor / metrics --- *)

let w_hyp b (z : Hyp.frozen) =
  w_list b w_int_pair z.Hyp.zh_tables;
  w_list b (w_triple w_string w_int w_int) z.Hyp.zh_cache

let r_hyp r =
  let zh_tables = r_list r r_int_pair in
  let zh_cache = r_list r (r_triple r_string r_int r_int) in
  { Hyp.zh_tables; zh_cache }

let w_opts b (o : Facechange.opts) =
  w_bool b o.Facechange.switch_at_resume;
  w_bool b o.Facechange.same_view_opt;
  w_bool b o.Facechange.whole_function_load;
  w_bool b o.Facechange.instant_recovery;
  w_bool b o.Facechange.share_frames

let r_opts r =
  let switch_at_resume = r_bool r in
  let same_view_opt = r_bool r in
  let whole_function_load = r_bool r in
  let instant_recovery = r_bool r in
  let share_frames = r_bool r in
  {
    Facechange.switch_at_resume;
    same_view_opt;
    whole_function_load;
    instant_recovery;
    share_frames;
  }

let w_view b (z : View.frozen) =
  w_int b z.View.zv_index;
  w_string b z.View.zv_config;
  w_bool b z.View.zv_share;
  w_list b w_int_pair z.View.zv_tables;
  w_list b w_int_pair z.View.zv_page_frames;
  w_int b z.View.zv_loaded_bytes;
  w_int b z.View.zv_cow_breaks;
  w_bool b z.View.zv_destroyed

let r_view r =
  let zv_index = r_int r in
  let zv_config = r_string r in
  let zv_share = r_bool r in
  let zv_tables = r_list r r_int_pair in
  let zv_page_frames = r_list r r_int_pair in
  let zv_loaded_bytes = r_int r in
  let zv_cow_breaks = r_int r in
  let zv_destroyed = r_bool r in
  {
    View.zv_index;
    zv_config;
    zv_share;
    zv_tables;
    zv_page_frames;
    zv_loaded_bytes;
    zv_cow_breaks;
    zv_destroyed;
  }

let w_fc b (z : Facechange.frozen) =
  w_opts b z.Facechange.zf_opts;
  w_list b w_view z.Facechange.zf_views;
  w_list b (w_pair w_string w_int) z.Facechange.zf_bindings;
  w_int b z.Facechange.zf_next_index;
  w_list b w_int z.Facechange.zf_active;
  w_list b (fun b o -> w_option b w_int o) z.Facechange.zf_pending;
  w_int b z.Facechange.zf_retired_cow_breaks;
  w_option b w_gov_frozen z.Facechange.zf_governor;
  w_list b (w_pair w_string w_int) z.Facechange.zf_saved_bindings;
  w_string b z.Facechange.zf_log;
  w_int b z.Facechange.zf_log_dropped;
  w_int b z.Facechange.zf_log_cap;
  w_bool b z.Facechange.zf_enabled

let r_fc r =
  let zf_opts = r_opts r in
  let zf_views = r_list r r_view in
  let zf_bindings = r_list r (r_pair r_string r_int) in
  let zf_next_index = r_int r in
  let zf_active = r_list r r_int in
  let zf_pending = r_list r (fun r -> r_option r r_int) in
  let zf_retired_cow_breaks = r_int r in
  let zf_governor = r_option r r_gov_frozen in
  let zf_saved_bindings = r_list r (r_pair r_string r_int) in
  let zf_log = r_string r in
  let zf_log_dropped = r_int r in
  let zf_log_cap = r_int r in
  let zf_enabled = r_bool r in
  {
    Facechange.zf_opts;
    zf_views;
    zf_bindings;
    zf_next_index;
    zf_active;
    zf_pending;
    zf_retired_cow_breaks;
    zf_governor;
    zf_saved_bindings;
    zf_log;
    zf_log_dropped;
    zf_log_cap;
    zf_enabled;
  }

let w_cursor b (c : Injector.cursor) =
  w_int b c.Injector.cu_seed;
  w_list b w_fault_event c.Injector.cu_events;
  w_int b c.Injector.cu_position;
  w_list b w_fault_kind c.Injector.cu_queue;
  w_int b c.Injector.cu_miss_budget

let r_cursor r =
  let cu_seed = r_int r in
  let cu_events = r_list r r_fault_event in
  let cu_position = r_int r in
  let cu_queue = r_list r r_fault_kind in
  let cu_miss_budget = r_int r in
  { Injector.cu_seed; cu_events; cu_position; cu_queue; cu_miss_budget }

let w_metric b (e : Metrics.dump_entry) =
  w_string b e.Metrics.d_subsystem;
  w_string b e.Metrics.d_name;
  w_option b w_string e.Metrics.d_label;
  match e.Metrics.d_value with
  | Metrics.D_counter v ->
      w_tag b 0;
      w_int b v
  | Metrics.D_histogram { d_buckets; d_count; d_sum; d_max } ->
      w_tag b 1;
      w_list b w_int_pair d_buckets;
      w_int b d_count;
      w_int b d_sum;
      w_int b d_max

let r_metric r =
  let d_subsystem = r_string r in
  let d_name = r_string r in
  let d_label = r_option r r_string in
  let d_value =
    match r_tag r with
    | 0 -> Metrics.D_counter (r_int r)
    | 1 ->
        let d_buckets = r_list r r_int_pair in
        let d_count = r_int r in
        let d_sum = r_int r in
        let d_max = r_int r in
        Metrics.D_histogram { d_buckets; d_count; d_sum; d_max }
    | n -> fail r (Printf.sprintf "bad metric value tag %d" n)
  in
  { Metrics.d_subsystem; d_name; d_label; d_value }

(* ---------------- container format ---------------- *)

let magic = "FCSN"

(* 2: the OS section carries per-vCPU EPT tag state (view-tagged
   translation caching) and the tagged_on flag.  Version-1 snapshots are
   rejected with the typed unsupported-version error, as always. *)
let version = 2

let encode t =
  (* content-keyed page store: unique page bytes, MD5-keyed, referenced
     by index from the OS section's live-frame records *)
  let contents = Hashtbl.create 256 in
  let content_rev = ref [] and content_count = ref 0 in
  let content_id page =
    match Hashtbl.find_opt contents page with
    | Some i -> i
    | None ->
        let i = !content_count in
        Hashtbl.replace contents page i;
        content_rev := page :: !content_rev;
        incr content_count;
        i
  in
  let sections = ref [] in
  let add_section tag payload = sections := (tag, payload) :: !sections in
  let render tag f =
    let b = Buffer.create 4096 in
    f b;
    add_section tag (Buffer.contents b)
  in
  render "META" (fun b -> w_list b (w_pair w_string w_string) t.s_meta);
  render "TABL" (fun b ->
      w_list b (fun b entries -> w_list b w_int_pair entries)
        (Array.to_list t.s_tables));
  (* the OS payload is rendered before FRAM so the content store is
     populated, but FRAM is placed first in the file so a streaming
     decoder meets contents before references *)
  let os_buf = Buffer.create 65536 in
  w_os ~content_id os_buf t.s_os;
  render "FRAM" (fun b ->
      w_list b
        (fun b page ->
          w_string b (Digest.string page);
          w_string b page)
        (List.rev !content_rev));
  add_section "OSST" (Buffer.contents os_buf);
  (match t.s_hyp with Some z -> render "HYPV" (fun b -> w_hyp b z) | None -> ());
  (match t.s_fc with Some z -> render "FCCR" (fun b -> w_fc b z) | None -> ());
  (match t.s_cursor with
  | Some c -> render "CURS" (fun b -> w_cursor b c)
  | None -> ());
  render "METR" (fun b -> w_list b w_metric t.s_metrics);
  let sections = List.rev !sections in
  let out = Buffer.create 262144 in
  Buffer.add_string out magic;
  let hdr = Bytes.create 8 in
  Bytes.set_int32_le hdr 0 (Int32.of_int version);
  Bytes.set_int32_le hdr 4 (Int32.of_int (List.length sections));
  Buffer.add_bytes out hdr;
  List.iter
    (fun (tag, payload) ->
      Buffer.add_string out tag;
      let pre = Bytes.create 12 in
      Bytes.set_int64_le pre 0 (Int64.of_int (String.length payload));
      Bytes.set_int32_le pre 8 (Int32.of_int (crc32 payload));
      Buffer.add_bytes out pre;
      Buffer.add_string out payload)
    sections;
  Buffer.contents out

(* Split the container into CRC-verified (tag, payload, abs_offset)
   records.  All offsets in errors are absolute file offsets. *)
let split_sections s =
  let len = String.length s in
  let err offset reason = Error { section = "header"; offset; reason } in
  if len < 12 then err len "truncated header (need magic + version + count)"
  else if String.sub s 0 4 <> magic then
    err 0
      (Printf.sprintf "bad magic %S (want %S) — not a facechange snapshot"
         (String.sub s 0 4) magic)
  else
    let ver = Int32.to_int (String.get_int32_le s 4) in
    if ver <> version then
      err 4
        (Printf.sprintf "unsupported format version %d (expect %d)" ver version)
    else
      let count = Int32.to_int (String.get_int32_le s 8) in
      if count < 0 || count > 64 then
        err 8 (Printf.sprintf "implausible section count %d" count)
      else
        let rec go acc pos remaining =
          if remaining = 0 then
            if pos = len then Ok (List.rev acc)
            else
              Error
                {
                  section = "trailer";
                  offset = pos;
                  reason = Printf.sprintf "%d trailing bytes after last section" (len - pos);
                }
          else if pos + 16 > len then
            Error
              {
                section = "header";
                offset = pos;
                reason = "truncated section header";
              }
          else
            let tag = String.sub s pos 4 in
            let plen = Int64.to_int (String.get_int64_le s (pos + 4)) in
            let crc = Int32.to_int (String.get_int32_le s (pos + 12)) land 0xFFFFFFFF in
            if plen < 0 || pos + 16 + plen > len then
              Error
                {
                  section = tag;
                  offset = pos + 4;
                  reason =
                    Printf.sprintf "truncated payload: length %d exceeds file" plen;
                }
            else
              let payload = String.sub s (pos + 16) plen in
              if crc32 payload <> crc then
                Error
                  {
                    section = tag;
                    offset = pos + 12;
                    reason =
                      Printf.sprintf "CRC mismatch (stored 0x%08x, computed 0x%08x)"
                        crc (crc32 payload);
                  }
              else go ((tag, payload, pos + 16) :: acc) (pos + 16 + plen) (remaining - 1)
        in
        go [] 12 count

let known_tags = [ "META"; "TABL"; "FRAM"; "OSST"; "HYPV"; "FCCR"; "CURS"; "METR" ]

let decode s =
  match split_sections s with
  | Error e -> Error e
  | Ok sections -> (
      let find tag =
        List.find_opt (fun (t', _, _) -> String.equal t' tag) sections
      in
      let parse tag f =
        match find tag with
        | None ->
            Error
              { section = tag; offset = 0; reason = "required section missing" }
        | Some (_, payload, base) -> (
            let r = { src = payload; pos = 0 } in
            match f r with
            | v ->
                if r.pos <> String.length payload then
                  Error
                    {
                      section = tag;
                      offset = base + r.pos;
                      reason =
                        Printf.sprintf "%d unconsumed payload bytes"
                          (String.length payload - r.pos);
                    }
                else Ok v
            | exception Decode_err (pos, reason) ->
                Error { section = tag; offset = base + pos; reason })
      in
      let parse_opt tag f =
        match find tag with
        | None -> Ok None
        | Some _ -> ( match parse tag f with Ok v -> Ok (Some v) | Error e -> Error e)
      in
      let ( let* ) = Result.bind in
      let* () =
        match
          List.find_opt (fun (t', _, _) -> not (List.mem t' known_tags)) sections
        with
        | Some (tag, _, base) ->
            Error
              {
                section = tag;
                offset = base - 16;
                reason = "unknown section tag (format drift?)";
              }
        | None -> Ok ()
      in
      let* s_meta = parse "META" (fun r -> r_list r (r_pair r_string r_string)) in
      let* tables =
        parse "TABL" (fun r -> r_list r (fun r -> r_list r r_int_pair))
      in
      let* contents =
        parse "FRAM" (fun r ->
            r_list r (fun r ->
                let digest = r_string r in
                let page = r_string r in
                if Digest.string page <> digest then
                  fail r "content digest mismatch (corrupt page record)";
                page))
      in
      let content_arr = Array.of_list contents in
      let content_of r idx =
        if idx < 0 || idx >= Array.length content_arr then
          fail r (Printf.sprintf "frame content index %d out of store" idx)
        else content_arr.(idx)
      in
      let* s_os = parse "OSST" (r_os ~content_of) in
      let* s_hyp = parse_opt "HYPV" r_hyp in
      let* s_fc = parse_opt "FCCR" r_fc in
      let* s_cursor = parse_opt "CURS" r_cursor in
      let* s_metrics = parse "METR" (fun r -> r_list r r_metric) in
      Ok
        {
          s_meta;
          s_tables = Array.of_list tables;
          s_os;
          s_hyp;
          s_fc;
          s_cursor;
          s_metrics;
        })

(* ---------------- files / description ---------------- *)

let save t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (encode t))

let load path =
  match
    In_channel.with_open_bin path (fun ic -> In_channel.input_all ic)
  with
  | s -> decode s
  | exception Sys_error e -> Error { section = "file"; offset = 0; reason = e }

let describe t =
  let b = Buffer.create 256 in
  let os = t.s_os in
  Buffer.add_string b
    (Printf.sprintf
       "facechange snapshot: %d vcpu(s), round %d, cycle %d, %d process(es)\n"
       (List.length os.Os.z_vcpus) os.Os.z_round_no os.Os.z_cycles
       (List.length os.Os.z_procs));
  Buffer.add_string b
    (Printf.sprintf
       "  engines: tlb=%b sblocks=%b tagged=%b; %d live frame(s), %d EPT table(s)\n"
       os.Os.z_tlb_on os.Os.z_sblocks_on os.Os.z_tagged_on
       (List.length os.Os.z_phys.Phys.z_live)
       (Array.length t.s_tables));
  (match t.s_fc with
  | Some zf ->
      Buffer.add_string b
        (Printf.sprintf "  facechange: %d view(s), %d binding(s), governor=%b\n"
           (List.length zf.Facechange.zf_views)
           (List.length zf.Facechange.zf_bindings)
           (zf.Facechange.zf_governor <> None))
  | None -> Buffer.add_string b "  facechange: absent\n");
  (match t.s_cursor with
  | Some c ->
      Buffer.add_string b
        (Printf.sprintf "  fault cursor: seed %d, %d event(s), position %d\n"
           c.Injector.cu_seed
           (List.length c.Injector.cu_events)
           c.Injector.cu_position)
  | None -> Buffer.add_string b "  fault cursor: absent\n");
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "  meta %s = %s\n" k v))
    t.s_meta;
  Buffer.contents b
