(** Deterministic whole-machine snapshots (DESIGN.md §13).

    [capture] freezes a guest — OS, hypervisor, FACE-CHANGE, fault-plan
    cursor, metrics — into a plain-data value; [encode]/[decode] map it
    to the versioned [.fcsnap] container (magic ["FCSN"], per-section
    CRC32, content-keyed guest RAM store); [restore] rebuilds a running
    machine that is fingerprint-identical to one that never stopped
    (proven by the differential suite in [test/test_snapshot.ml]).

    The decoder is total: corrupt, truncated, or wrong-version input
    returns a typed {!error} naming the section and absolute byte
    offset — it never raises. *)

type t = {
  s_meta : (string * string) list;
      (** free-form provenance (app, seed, remaining rounds, …) *)
  s_tables : (int * int) list array;
      (** the identity-preserving EPT table pool: pool id -> sparse
          (slot, frame) entries.  Tables shared by reference between
          vCPUs, the hypervisor's pristine set and the views are stored
          once and re-shared on restore. *)
  s_os : Fc_machine.Os.frozen;
  s_hyp : Fc_hypervisor.Hypervisor.frozen option;
  s_fc : Fc_core.Facechange.frozen option;
  s_cursor : Fc_faults.Injector.cursor option;
  s_metrics : Fc_obs.Metrics.dump_entry list;
}

type error = { section : string; offset : int; reason : string }
(** [section] is a 4-char tag (or ["header"]/["trailer"]/["file"]);
    [offset] is an absolute byte offset into the input. *)

val error_to_string : error -> string

val meta : t -> (string * string) list
val meta_find : t -> string -> string option

val capture :
  ?meta:(string * string) list ->
  ?cursor:Fc_faults.Injector.cursor ->
  ?fc:Fc_core.Facechange.t ->
  ?hyp:Fc_hypervisor.Hypervisor.t ->
  Fc_machine.Os.t ->
  t
(** Freeze the machine at a scheduler round boundary.  Layers are
    optional: a bare guest snapshots with just [os]; pass [hyp] (and
    [fc], [cursor]) to capture the full stack.  Raises
    [Invalid_argument] mid-round (see {!Fc_machine.Os.freeze}). *)

type restored = {
  r_os : Fc_machine.Os.t;
  r_hyp : Fc_hypervisor.Hypervisor.t option;
  r_fc : Fc_core.Facechange.t option;
  r_inj : Fc_faults.Injector.t option;
      (** re-armed from the cursor when one was captured *)
  r_meta : (string * string) list;
}

val restore :
  ?obs:Fc_obs.Obs.t -> ?image:Fc_kernel.Image.t -> t -> restored
(** Rebuild the machine.  The kernel image is not serialized
    ({!Fc_kernel.Image.build} is deterministic); pass [image] to reuse a
    built one.  Restore order is OS → hypervisor → FACE-CHANGE →
    injector re-arm → metrics (last, overwriting the fresh instruments
    with the captured continuous-run values). *)

val version : int
(** The wire-format version written into (and required of) every
    container.  Version 2 added per-vCPU EPT tag state (active view,
    era, per-view generations) and the OS-level global-generation /
    divergent-page set for the view-tagged translation cache; version 1
    streams are rejected with the typed unsupported-version error. *)

val encode : t -> string
(** The [.fcsnap] container bytes.  Encoding is deterministic: equal
    snapshots produce byte-identical output on OCaml 4.14 and 5.x (the
    format-stability gate re-encodes the committed golden snapshot and
    compares bytes). *)

val decode : string -> (t, error) result

val save : t -> string -> unit
val load : string -> (t, error) result

val describe : t -> string
(** Human-readable summary for [facechange snapshot --describe]. *)
