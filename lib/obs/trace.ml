type record = { seq : int; cycle : int; event : Event.t }

type t = {
  mutable ring : record Ring.t option;
  mutable subscribers : (record -> unit) list;
  mutable clock : unit -> int;
  mutable seq : int;
  mutable armed : bool;
}

let create () =
  { ring = None; subscribers = []; clock = (fun () -> 0); seq = 0; armed = false }

let armed t = t.armed
let set_clock t f = t.clock <- f
let refresh_armed t = t.armed <- t.ring <> None || t.subscribers <> []

let arm ?(capacity = 4096) t =
  t.ring <- Some (Ring.create ~capacity);
  refresh_armed t

let disarm t =
  t.ring <- None;
  refresh_armed t

let subscribe t f =
  t.subscribers <- t.subscribers @ [ f ];
  refresh_armed t

let clear_subscribers t =
  t.subscribers <- [];
  refresh_armed t

let emit t event =
  if t.armed then begin
    let r = { seq = t.seq; cycle = t.clock (); event } in
    t.seq <- t.seq + 1;
    (match t.ring with Some ring -> Ring.push ring r | None -> ());
    List.iter (fun f -> f r) t.subscribers
  end

let records t = match t.ring with Some r -> Ring.to_list r | None -> []
let emitted t = t.seq
let dropped t = match t.ring with Some r -> Ring.dropped r | None -> 0

let pp_record ppf r =
  Format.fprintf ppf "[%10d]  #%-4d %a" r.cycle r.seq Event.pp r.event
