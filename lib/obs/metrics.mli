(** The metrics registry: named counters, gauges, and cycle histograms.

    Counters are find-or-create and owned by the instrumented subsystem:
    an increment is one mutable-field write, so hot paths (VM-exit
    dispatch, the cycle-charging path) pay no more than they did with a
    plain [mutable int].  Gauges are read-through callbacks over state a
    subsystem already maintains (live frames, loaded views).  Histograms
    bucket observations by power of two — cheap enough for per-charge
    cycle costs.

    Keys are ["subsystem.name"]; registration order is preserved in
    {!snapshot} so exports are stable.

    {b Labeled families} break one logical metric down by a bounded
    dimension — here, the guest application (comm) that paid for the
    work.  A family member registers under ["subsystem.name{label}"] and
    appears in {!snapshot} with [label = Some _].  Resolving a member
    costs a hashtable lookup and a key allocation, so hot paths should
    memoize the returned counter per label rather than re-resolving on
    every increment. *)

type t
type counter
type histogram

val create : unit -> t

val counter : t -> subsystem:string -> string -> counter
(** Find or create.  A found counter keeps its value; use {!reset} when a
    fresh owner (a re-attached hypervisor) takes it over. *)

val histogram : t -> subsystem:string -> string -> histogram

val gauge : t -> subsystem:string -> string -> (unit -> int) -> unit
(** Register (or replace) a read-through gauge. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val reset : counter -> unit

val observe : histogram -> int -> unit
(** Negative observations are clamped to 0. *)

val reset_histogram : histogram -> unit

(** {1 Labeled families} *)

type family
(** A handle naming ["subsystem.name"]; members are resolved per label. *)

val counter_family : t -> subsystem:string -> string -> family
val histogram_family : t -> subsystem:string -> string -> family

val family_counter : family -> string -> counter
(** Find or create the member counter for a label.  Memoize the result
    on hot paths. *)

val family_histogram : family -> string -> histogram

val reset_family : family -> unit
(** Reset every already-registered member of the family (counters to 0,
    histograms emptied).  Members stay registered. *)

val labels : t -> string -> (string * int) list
(** [(label, value)] for every labeled counter/gauge member registered
    under the ["subsystem.name"] key, in registration order. *)

(** {1 Snapshots} *)

type histogram_snapshot = {
  h_count : int;
  h_sum : int;
  h_max : int;
  h_buckets : (int * int) list;
      (** (pow2, count): observations with [2^pow2 <= v < 2^(pow2+1)]
          (pow2 0 also holds 0 and 1); zero buckets omitted *)
}

type sample_value =
  | Counter of int
  | Gauge of int
  | Histogram of histogram_snapshot

type sample = {
  subsystem : string;
  name : string;
  label : string option;  (** [Some _] for labeled family members *)
  value : sample_value;
}

val snapshot : t -> sample list
(** All registered instruments, in registration order. *)

val find : t -> string -> int option
(** Value of the counter or gauge registered under ["subsystem.name"]. *)

(** {1 Dump / load}

    A plain-data image of every {e stored} instrument — counters and
    histograms, labeled family members included — used by the snapshot
    codec.  Gauges are read-through closures over live subsystem state
    and are deliberately excluded: the restoring side re-registers them
    over the rebuilt structures, and their values follow.  Dumps list
    instruments in registration order, so a deterministic run produces a
    byte-stable dump. *)

type dump_value =
  | D_counter of int
  | D_histogram of {
      d_buckets : (int * int) list;  (** (pow2, count), zero buckets omitted *)
      d_count : int;
      d_sum : int;
      d_max : int;
    }

type dump_entry = {
  d_subsystem : string;
  d_name : string;
  d_label : string option;
  d_value : dump_value;
}

val dump : t -> dump_entry list

val load : t -> dump_entry list -> unit
(** Find-or-create each instrument (family members via their label) and
    overwrite its value.  Instruments already registered keep their
    registration slot; new ones append.  Apply {e last} during a restore:
    the constructors run beforehand reset the counters they own. *)

val percentile : histogram_snapshot -> float -> float
(** [percentile s q] estimates the [q]-quantile ([0. <= q <= 1.]) by
    linear interpolation inside the log2 bucket holding the target rank;
    the bucket's value range is capped at the observed max.  [nan] for an
    empty histogram — a quantile of nothing is undefined, and exporters
    must render it as absent (Jsonx maps non-finite floats to [null];
    the CSV exporter leaves the cell empty).  Estimates are exact only up
    to bucket resolution. *)
