type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------------- serialization ---------------- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  (* NaN/inf have no JSON spelling: emit null so output stays valid *)
  if not (Float.is_finite f) then "null"
  else
    let s = Printf.sprintf "%.12g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    (* %g may print an integral float as "3": that is still a JSON number *)
    s

let to_string ?(pretty = false) t =
  let b = Buffer.create 256 in
  let indent n =
    if pretty then begin
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make (2 * n) ' ')
    end
  in
  let rec go depth = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_repr f)
    | String s -> escape_string b s
    | List [] -> Buffer.add_string b "[]"
    | List items ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            indent (depth + 1);
            go (depth + 1) x)
          items;
        indent depth;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            indent (depth + 1);
            escape_string b k;
            Buffer.add_char b ':';
            if pretty then Buffer.add_char b ' ';
            go (depth + 1) v)
          fields;
        indent depth;
        Buffer.add_char b '}'
  in
  go 0 t;
  Buffer.contents b

(* ---------------- parsing ---------------- *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = pos := !pos + 1 in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> error (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else error ("expected " ^ word)
  in
  let utf8_of_code b code =
    (* encode a BMP code point; surrogates come in already combined *)
    if code < 0x80 then Buffer.add_char b (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then error "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> error "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char b '"'
          | Some '\\' -> Buffer.add_char b '\\'
          | Some '/' -> Buffer.add_char b '/'
          | Some 'n' -> Buffer.add_char b '\n'
          | Some 'r' -> Buffer.add_char b '\r'
          | Some 't' -> Buffer.add_char b '\t'
          | Some 'b' -> Buffer.add_char b '\b'
          | Some 'f' -> Buffer.add_char b '\012'
          | Some 'u' ->
              advance ();
              let hi = hex4 () in
              let code =
                if hi >= 0xD800 && hi <= 0xDBFF && !pos + 6 <= n
                   && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let lo = hex4 () in
                  0x10000 + (((hi - 0xD800) lsl 10) lor (lo - 0xDC00))
                end
                else hi
              in
              utf8_of_code b code;
              pos := !pos - 1 (* compensate the advance below *)
          | Some c -> error (Printf.sprintf "bad escape '\\%c'" c)
          | None -> error "truncated escape");
          advance ();
          go ())
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if text = "" then error "expected number";
    let is_float = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text in
    if is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> error ("bad number " ^ text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> error ("bad number " ^ text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields_loop ()
            | Some '}' -> advance ()
            | _ -> error "expected ',' or '}'"
          in
          fields_loop ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items_loop ()
            | Some ']' -> advance ()
            | _ -> error "expected ',' or ']'"
          in
          items_loop ();
          List (List.rev !items)
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "at offset %d: %s" at msg)

(* ---------------- accessors ---------------- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let path j keys =
  List.fold_left (fun acc k -> Option.bind acc (member k)) (Some j) keys

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
let to_str = function String s -> Some s | _ -> None
