type t = { trace : Trace.t; metrics : Metrics.t; spans : Span.t }

let create () =
  let trace = Trace.create () in
  let metrics = Metrics.create () in
  (* silent trace loss under long runs must be visible in snapshots and
     time series, not only by diffing Ring counters by hand *)
  Metrics.gauge metrics ~subsystem:"obs" "trace_dropped" (fun () ->
      Trace.dropped trace);
  { trace; metrics; spans = Span.create trace }

let trace t = t.trace
let metrics t = t.metrics
let spans t = t.spans
let armed t = Trace.armed t.trace
let emit t e = Trace.emit t.trace e
let set_clock t f = Trace.set_clock t.trace f
