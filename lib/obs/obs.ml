type t = { trace : Trace.t; metrics : Metrics.t }

let create () = { trace = Trace.create (); metrics = Metrics.create () }
let trace t = t.trace
let metrics t = t.metrics
let armed t = Trace.armed t.trace
let emit t e = Trace.emit t.trace e
let set_clock t f = Trace.set_clock t.trace f
