type t = { trace : Trace.t; metrics : Metrics.t; spans : Span.t }

let create () =
  let trace = Trace.create () in
  { trace; metrics = Metrics.create (); spans = Span.create trace }

let trace t = t.trace
let metrics t = t.metrics
let spans t = t.spans
let armed t = Trace.armed t.trace
let emit t e = Trace.emit t.trace e
let set_clock t f = Trace.set_clock t.trace f
