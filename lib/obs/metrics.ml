type counter = { mutable c_value : int }

let bucket_count = 62

type histogram = {
  buckets : int array; (* index = floor(log2 v), clamped *)
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_max : int;
}

type instrument =
  | I_counter of counter
  | I_gauge of (unit -> int) ref
  | I_histogram of histogram

type registered = { subsystem : string; name : string; inst : instrument }

type t = {
  by_key : (string, registered) Hashtbl.t;
  mutable order : registered list; (* reverse registration order *)
}

let create () = { by_key = Hashtbl.create 64; order = [] }
let key ~subsystem name = subsystem ^ "." ^ name

let register t ~subsystem name inst =
  let r = { subsystem; name; inst } in
  Hashtbl.replace t.by_key (key ~subsystem name) r;
  t.order <- r :: t.order;
  r

let counter t ~subsystem name =
  match Hashtbl.find_opt t.by_key (key ~subsystem name) with
  | Some { inst = I_counter c; _ } -> c
  | Some _ -> invalid_arg ("Metrics.counter: key registered as non-counter: " ^ name)
  | None ->
      let c = { c_value = 0 } in
      ignore (register t ~subsystem name (I_counter c));
      c

let histogram t ~subsystem name =
  match Hashtbl.find_opt t.by_key (key ~subsystem name) with
  | Some { inst = I_histogram h; _ } -> h
  | Some _ ->
      invalid_arg ("Metrics.histogram: key registered as non-histogram: " ^ name)
  | None ->
      let h =
        { buckets = Array.make bucket_count 0; h_count = 0; h_sum = 0; h_max = 0 }
      in
      ignore (register t ~subsystem name (I_histogram h));
      h

let gauge t ~subsystem name f =
  match Hashtbl.find_opt t.by_key (key ~subsystem name) with
  | Some { inst = I_gauge r; _ } -> r := f
  | Some _ -> invalid_arg ("Metrics.gauge: key registered as non-gauge: " ^ name)
  | None -> ignore (register t ~subsystem name (I_gauge (ref f)))

let incr c = c.c_value <- c.c_value + 1
let add c n = c.c_value <- c.c_value + n
let value c = c.c_value
let reset c = c.c_value <- 0

let bucket_of v =
  if v <= 1 then 0
  else begin
    let i = ref 0 and v = ref v in
    while !v > 1 do
      v := !v lsr 1;
      i := !i + 1
    done;
    min !i (bucket_count - 1)
  end

let observe h v =
  let v = max 0 v in
  h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  if v > h.h_max then h.h_max <- v

let reset_histogram h =
  Array.fill h.buckets 0 bucket_count 0;
  h.h_count <- 0;
  h.h_sum <- 0;
  h.h_max <- 0

type histogram_snapshot = {
  h_count : int;
  h_sum : int;
  h_max : int;
  h_buckets : (int * int) list;
}

type sample_value =
  | Counter of int
  | Gauge of int
  | Histogram of histogram_snapshot

type sample = { subsystem : string; name : string; value : sample_value }

let snapshot_histogram (h : histogram) =
  let buckets = ref [] in
  for i = bucket_count - 1 downto 0 do
    if h.buckets.(i) > 0 then buckets := (i, h.buckets.(i)) :: !buckets
  done;
  { h_count = h.h_count; h_sum = h.h_sum; h_max = h.h_max; h_buckets = !buckets }

let snapshot t =
  List.rev_map
    (fun r ->
      let value =
        match r.inst with
        | I_counter c -> Counter c.c_value
        | I_gauge f -> Gauge (!f ())
        | I_histogram h -> Histogram (snapshot_histogram h)
      in
      { subsystem = r.subsystem; name = r.name; value })
    t.order

let find t k =
  match Hashtbl.find_opt t.by_key k with
  | Some { inst = I_counter c; _ } -> Some c.c_value
  | Some { inst = I_gauge f; _ } -> Some (!f ())
  | Some { inst = I_histogram _; _ } | None -> None
