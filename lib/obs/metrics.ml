type counter = { mutable c_value : int }

let bucket_count = 62

type histogram = {
  buckets : int array; (* index = floor(log2 v), clamped *)
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_max : int;
}

type instrument =
  | I_counter of counter
  | I_gauge of (unit -> int) ref
  | I_histogram of histogram

type registered = {
  subsystem : string;
  name : string;
  label : string option;
  inst : instrument;
}

type t = {
  by_key : (string, registered) Hashtbl.t;
  mutable order : registered list; (* reverse registration order *)
}

let create () = { by_key = Hashtbl.create 64; order = [] }
let key ~subsystem name = subsystem ^ "." ^ name

let labeled_key ~subsystem name label =
  subsystem ^ "." ^ name ^ "{" ^ label ^ "}"

let register t ~subsystem ?label name inst =
  let r = { subsystem; name; label; inst } in
  let k =
    match label with
    | None -> key ~subsystem name
    | Some l -> labeled_key ~subsystem name l
  in
  Hashtbl.replace t.by_key k r;
  t.order <- r :: t.order;
  r

let counter t ~subsystem name =
  match Hashtbl.find_opt t.by_key (key ~subsystem name) with
  | Some { inst = I_counter c; _ } -> c
  | Some _ -> invalid_arg ("Metrics.counter: key registered as non-counter: " ^ name)
  | None ->
      let c = { c_value = 0 } in
      ignore (register t ~subsystem name (I_counter c));
      c

let fresh_histogram () =
  { buckets = Array.make bucket_count 0; h_count = 0; h_sum = 0; h_max = 0 }

let histogram t ~subsystem name =
  match Hashtbl.find_opt t.by_key (key ~subsystem name) with
  | Some { inst = I_histogram h; _ } -> h
  | Some _ ->
      invalid_arg ("Metrics.histogram: key registered as non-histogram: " ^ name)
  | None ->
      let h = fresh_histogram () in
      ignore (register t ~subsystem name (I_histogram h));
      h

let gauge t ~subsystem name f =
  match Hashtbl.find_opt t.by_key (key ~subsystem name) with
  | Some { inst = I_gauge r; _ } -> r := f
  | Some _ -> invalid_arg ("Metrics.gauge: key registered as non-gauge: " ^ name)
  | None -> ignore (register t ~subsystem name (I_gauge (ref f)))

let incr c = c.c_value <- c.c_value + 1
let add c n = c.c_value <- c.c_value + n
let value c = c.c_value
let reset c = c.c_value <- 0

let bucket_of v =
  if v <= 1 then 0
  else begin
    let i = ref 0 and v = ref v in
    while !v > 1 do
      v := !v lsr 1;
      i := !i + 1
    done;
    min !i (bucket_count - 1)
  end

let observe h v =
  let v = max 0 v in
  h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  if v > h.h_max then h.h_max <- v

let reset_histogram h =
  Array.fill h.buckets 0 bucket_count 0;
  h.h_count <- 0;
  h.h_sum <- 0;
  h.h_max <- 0

(* {1 Labeled families} *)

type family = { fam_reg : t; fam_subsystem : string; fam_name : string }

let counter_family t ~subsystem name =
  { fam_reg = t; fam_subsystem = subsystem; fam_name = name }

let histogram_family = counter_family

let family_counter fam label =
  let t = fam.fam_reg in
  let k = labeled_key ~subsystem:fam.fam_subsystem fam.fam_name label in
  match Hashtbl.find_opt t.by_key k with
  | Some { inst = I_counter c; _ } -> c
  | Some _ ->
      invalid_arg ("Metrics.family_counter: key registered as non-counter: " ^ k)
  | None ->
      let c = { c_value = 0 } in
      ignore
        (register t ~subsystem:fam.fam_subsystem ~label fam.fam_name
           (I_counter c));
      c

let family_histogram fam label =
  let t = fam.fam_reg in
  let k = labeled_key ~subsystem:fam.fam_subsystem fam.fam_name label in
  match Hashtbl.find_opt t.by_key k with
  | Some { inst = I_histogram h; _ } -> h
  | Some _ ->
      invalid_arg
        ("Metrics.family_histogram: key registered as non-histogram: " ^ k)
  | None ->
      let h = fresh_histogram () in
      ignore
        (register t ~subsystem:fam.fam_subsystem ~label fam.fam_name
           (I_histogram h));
      h

let reset_family fam =
  List.iter
    (fun r ->
      if
        r.label <> None
        && String.equal r.subsystem fam.fam_subsystem
        && String.equal r.name fam.fam_name
      then
        match r.inst with
        | I_counter c -> reset c
        | I_histogram h -> reset_histogram h
        | I_gauge _ -> ())
    fam.fam_reg.order

let labels t k =
  List.fold_left
    (fun acc r ->
      match r.label with
      | Some l when String.equal (key ~subsystem:r.subsystem r.name) k -> (
          match r.inst with
          | I_counter c -> (l, c.c_value) :: acc
          | I_gauge f -> (l, !f ()) :: acc
          | I_histogram _ -> acc)
      | _ -> acc)
    [] t.order

(* {1 Snapshots} *)

type histogram_snapshot = {
  h_count : int;
  h_sum : int;
  h_max : int;
  h_buckets : (int * int) list;
}

type sample_value =
  | Counter of int
  | Gauge of int
  | Histogram of histogram_snapshot

type sample = {
  subsystem : string;
  name : string;
  label : string option;
  value : sample_value;
}

let snapshot_histogram (h : histogram) =
  let buckets = ref [] in
  for i = bucket_count - 1 downto 0 do
    if h.buckets.(i) > 0 then buckets := (i, h.buckets.(i)) :: !buckets
  done;
  { h_count = h.h_count; h_sum = h.h_sum; h_max = h.h_max; h_buckets = !buckets }

let snapshot t =
  List.rev_map
    (fun r ->
      let value =
        match r.inst with
        | I_counter c -> Counter c.c_value
        | I_gauge f -> Gauge (!f ())
        | I_histogram h -> Histogram (snapshot_histogram h)
      in
      { subsystem = r.subsystem; name = r.name; label = r.label; value })
    t.order

let find t k =
  match Hashtbl.find_opt t.by_key k with
  | Some { inst = I_counter c; _ } -> Some c.c_value
  | Some { inst = I_gauge f; _ } -> Some (!f ())
  | Some { inst = I_histogram _; _ } | None -> None

(* {1 Dump / load} *)

type dump_value =
  | D_counter of int
  | D_histogram of {
      d_buckets : (int * int) list;
      d_count : int;
      d_sum : int;
      d_max : int;
    }

type dump_entry = {
  d_subsystem : string;
  d_name : string;
  d_label : string option;
  d_value : dump_value;
}

let dump t =
  List.fold_left
    (fun acc r ->
      match r.inst with
      | I_gauge _ -> acc
      | I_counter c ->
          {
            d_subsystem = r.subsystem;
            d_name = r.name;
            d_label = r.label;
            d_value = D_counter c.c_value;
          }
          :: acc
      | I_histogram h ->
          let s = snapshot_histogram h in
          {
            d_subsystem = r.subsystem;
            d_name = r.name;
            d_label = r.label;
            d_value =
              D_histogram
                {
                  d_buckets = s.h_buckets;
                  d_count = s.h_count;
                  d_sum = s.h_sum;
                  d_max = s.h_max;
                };
          }
          :: acc)
    [] t.order
(* [t.order] is reverse registration order, so the fold yields
   registration order — the dump is as deterministic as the run that
   registered the instruments. *)

let load t entries =
  List.iter
    (fun e ->
      match e.d_value with
      | D_counter v ->
          let c =
            match e.d_label with
            | None -> counter t ~subsystem:e.d_subsystem e.d_name
            | Some label ->
                family_counter
                  (counter_family t ~subsystem:e.d_subsystem e.d_name)
                  label
          in
          c.c_value <- v
      | D_histogram d ->
          let h =
            match e.d_label with
            | None -> histogram t ~subsystem:e.d_subsystem e.d_name
            | Some label ->
                family_histogram
                  (histogram_family t ~subsystem:e.d_subsystem e.d_name)
                  label
          in
          reset_histogram h;
          List.iter
            (fun (pow2, n) ->
              if pow2 >= 0 && pow2 < bucket_count then h.buckets.(pow2) <- n)
            d.d_buckets;
          h.h_count <- d.d_count;
          h.h_sum <- d.d_sum;
          h.h_max <- d.d_max)
    entries

(* Percentile estimate from log2 buckets: find the bucket holding the
   q-th observation, then interpolate linearly inside its value range
   [2^pow2, 2^(pow2+1)) — capped at the observed max, which is exact for
   the top bucket.  An empty histogram has no quantiles: nan, never a
   fake 0 that downstream math could mistake for a real observation. *)
let percentile (s : histogram_snapshot) q =
  if s.h_count = 0 then Float.nan
  else begin
    let target = Float.max 1. (q *. float_of_int s.h_count) in
    let rec walk cum = function
      | [] -> float_of_int s.h_max
      | (pow2, n) :: rest ->
          let cum' = cum + n in
          if float_of_int cum' >= target then begin
            let lo = if pow2 = 0 then 0. else ldexp 1. pow2 in
            let hi =
              Float.max lo
                (Float.min (ldexp 1. (pow2 + 1)) (float_of_int s.h_max +. 1.))
            in
            let frac = (target -. float_of_int cum) /. float_of_int n in
            lo +. (frac *. (hi -. lo))
          end
          else walk cum' rest
    in
    walk 0 s.h_buckets
  end
