(** A bounded ring buffer.

    [push] is O(1) and never fails: once [capacity] items are held, each
    further push overwrites the oldest item and increments the {!dropped}
    counter, so a long-running trace keeps the most recent window while
    still reporting how much history it shed. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity >= 1], or [Invalid_argument]. *)

val capacity : 'a t -> int
val length : 'a t -> int
(** Items currently held ([<= capacity]). *)

val push : 'a t -> 'a -> unit

val pushed : 'a t -> int
(** Total number of items ever pushed. *)

val dropped : 'a t -> int
(** Items overwritten before being read ([pushed - length]). *)

val to_list : 'a t -> 'a list
(** Held items, oldest first. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest first. *)

val last : 'a t -> 'a option
(** The most recently pushed item. *)

val clear : 'a t -> unit
(** Drop all held items and reset the pushed/dropped counters. *)
