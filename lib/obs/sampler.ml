(* Sampling profiler folds: each recorded sample is one (comm, stack)
   observation; equal stacks collapse into a count.  The fold is the
   flamegraph.pl "collapsed" representation — `comm;frame;...;leaf N` —
   and plain data, so per-guest folds merge fleet-wide exactly like
   Timeseries points do.  Symbolization happens at record time (the
   caller passes rendered frame strings); the sampler itself never
   touches guest state, which is what keeps sampling behavior-invisible. *)

type fold = { f_stack : string; f_count : int }

type t = {
  counts : (string, int) Hashtbl.t;
  mutable samples : int;
}

let create () = { counts = Hashtbl.create 64; samples = 0 }
let samples t = t.samples

(* flamegraph.pl frame separator; frames containing it would corrupt the
   fold line, so map it away at record time *)
let clean frame =
  String.map (function ';' -> ':' | ' ' -> '_' | c -> c) frame

let record t ~comm ~frames =
  t.samples <- t.samples + 1;
  let key = String.concat ";" (clean comm :: List.map clean frames) in
  Hashtbl.replace t.counts key
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts key))

let export t =
  Hashtbl.fold (fun k v l -> { f_stack = k; f_count = v } :: l) t.counts []
  |> List.sort (fun a b -> String.compare a.f_stack b.f_stack)

let merge folds =
  let acc = Hashtbl.create 64 in
  List.iter
    (List.iter (fun f ->
         Hashtbl.replace acc f.f_stack
           (f.f_count + Option.value ~default:0 (Hashtbl.find_opt acc f.f_stack))))
    folds;
  Hashtbl.fold (fun k v l -> { f_stack = k; f_count = v } :: l) acc []
  |> List.sort (fun a b -> String.compare a.f_stack b.f_stack)

let total folds = List.fold_left (fun a f -> a + f.f_count) 0 folds

let folded_text folds =
  let b = Buffer.create 1024 in
  List.iter
    (fun f -> Buffer.add_string b (Printf.sprintf "%s %d\n" f.f_stack f.f_count))
    folds;
  Buffer.contents b

let fingerprint folds = Digest.to_hex (Digest.string (folded_text folds))
