type 'a t = {
  buf : 'a option array;
  mutable head : int; (* slot the next push writes *)
  mutable length : int;
  mutable pushed : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Ring.create: capacity must be >= 1";
  { buf = Array.make capacity None; head = 0; length = 0; pushed = 0 }

let capacity t = Array.length t.buf
let length t = t.length
let pushed t = t.pushed
let dropped t = t.pushed - t.length

let push t x =
  t.buf.(t.head) <- Some x;
  t.head <- (t.head + 1) mod Array.length t.buf;
  if t.length < Array.length t.buf then t.length <- t.length + 1;
  t.pushed <- t.pushed + 1

let iter f t =
  let cap = Array.length t.buf in
  let start = (t.head - t.length + cap) mod cap in
  for i = 0 to t.length - 1 do
    match t.buf.((start + i) mod cap) with Some x -> f x | None -> ()
  done

let to_list t =
  let acc = ref [] in
  iter (fun x -> acc := x :: !acc) t;
  List.rev !acc

let last t =
  if t.length = 0 then None
  else t.buf.((t.head - 1 + Array.length t.buf) mod Array.length t.buf)

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.head <- 0;
  t.length <- 0;
  t.pushed <- 0
