type switch_outcome = Switched | Skipped | Deferred
type recovery_kind = Lazy | Instant
type exit_reason = Exit_breakpoint | Exit_invalid_opcode

type t =
  | Vm_exit of { reason : exit_reason; addr : int }
  | Breakpoint of { vid : int; addr : int; pid : int; comm : string }
  | View_switch of {
      vid : int;
      from_index : int;
      to_index : int;
      outcome : switch_outcome;
    }
  | Ud2_trap of { vid : int; eip : int; pid : int; comm : string }
  | Recovery of { kind : recovery_kind; start : int; stop : int; symbol : string }
  | Frame_share of { frame : int }
  | Cow_break of { frame : int; fresh : int }
  | View_load of { index : int; app : string; pages : int; loaded_bytes : int }
  | View_unload of { index : int; app : string; cow_breaks : int }
  | Sched_switch of { vid : int; pid : int; comm : string }
  | Span_begin of {
      sid : int;
      parent : int;
      span : string;
      vid : int;
      pid : int;
      comm : string;
    }
  | Span_end of { sid : int; span : string }
  | Fault_injected of { fault : string; detail : string }
  | Storm_detected of { vid : int; comm : string; events : int; window : int }
  | Degraded of { vid : int; comm : string; from_index : int; reason : string }
  | Renarrowed of { vid : int; comm : string; to_index : int }
  | Quarantined of { vid : int; comm : string; degradations : int }
  | Sample of { vid : int; pid : int; comm : string; pc : int; view : int }

type value = Int of int | Str of string

let outcome_label = function
  | Switched -> "switched"
  | Skipped -> "skipped"
  | Deferred -> "deferred"

let recovery_label = function Lazy -> "lazy" | Instant -> "instant"

let reason_label = function
  | Exit_breakpoint -> "breakpoint"
  | Exit_invalid_opcode -> "invalid_opcode"

let kind = function
  | Vm_exit _ -> "vm_exit"
  | Breakpoint _ -> "breakpoint"
  | View_switch _ -> "view_switch"
  | Ud2_trap _ -> "ud2_trap"
  | Recovery _ -> "recovery"
  | Frame_share _ -> "frame_share"
  | Cow_break _ -> "cow_break"
  | View_load _ -> "view_load"
  | View_unload _ -> "view_unload"
  | Sched_switch _ -> "sched_switch"
  | Span_begin _ -> "span_begin"
  | Span_end _ -> "span_end"
  | Fault_injected _ -> "fault_injected"
  | Storm_detected _ -> "storm_detected"
  | Degraded _ -> "degraded"
  | Renarrowed _ -> "renarrowed"
  | Quarantined _ -> "quarantined"
  | Sample _ -> "sample"

let kinds =
  [
    "vm_exit";
    "breakpoint";
    "view_switch";
    "ud2_trap";
    "recovery";
    "frame_share";
    "cow_break";
    "view_load";
    "view_unload";
    "sched_switch";
    "span_begin";
    "span_end";
    "fault_injected";
    "storm_detected";
    "degraded";
    "renarrowed";
    "quarantined";
    "sample";
  ]

let fields = function
  | Vm_exit { reason; addr } ->
      [ ("reason", Str (reason_label reason)); ("addr", Int addr) ]
  | Breakpoint { vid; addr; pid; comm } ->
      [ ("vid", Int vid); ("addr", Int addr); ("pid", Int pid); ("comm", Str comm) ]
  | View_switch { vid; from_index; to_index; outcome } ->
      [
        ("vid", Int vid);
        ("from", Int from_index);
        ("to", Int to_index);
        ("outcome", Str (outcome_label outcome));
      ]
  | Ud2_trap { vid; eip; pid; comm } ->
      [ ("vid", Int vid); ("eip", Int eip); ("pid", Int pid); ("comm", Str comm) ]
  | Recovery { kind; start; stop; symbol } ->
      [
        ("recovery", Str (recovery_label kind));
        ("start", Int start);
        ("stop", Int stop);
        ("bytes", Int (stop - start));
        ("symbol", Str symbol);
      ]
  | Frame_share { frame } -> [ ("frame", Int frame) ]
  | Cow_break { frame; fresh } -> [ ("frame", Int frame); ("fresh", Int fresh) ]
  | View_load { index; app; pages; loaded_bytes } ->
      [
        ("index", Int index);
        ("app", Str app);
        ("pages", Int pages);
        ("loaded_bytes", Int loaded_bytes);
      ]
  | View_unload { index; app; cow_breaks } ->
      [ ("index", Int index); ("app", Str app); ("cow_breaks", Int cow_breaks) ]
  | Sched_switch { vid; pid; comm } ->
      [ ("vid", Int vid); ("pid", Int pid); ("comm", Str comm) ]
  | Span_begin { sid; parent; span; vid; pid; comm } ->
      [
        ("sid", Int sid);
        ("parent", Int parent);
        ("span", Str span);
        ("vid", Int vid);
        ("pid", Int pid);
        ("comm", Str comm);
      ]
  | Span_end { sid; span } -> [ ("sid", Int sid); ("span", Str span) ]
  | Fault_injected { fault; detail } ->
      [ ("fault", Str fault); ("detail", Str detail) ]
  | Storm_detected { vid; comm; events; window } ->
      [
        ("vid", Int vid);
        ("comm", Str comm);
        ("events", Int events);
        ("window", Int window);
      ]
  | Degraded { vid; comm; from_index; reason } ->
      [
        ("vid", Int vid);
        ("comm", Str comm);
        ("from", Int from_index);
        ("reason", Str reason);
      ]
  | Renarrowed { vid; comm; to_index } ->
      [ ("vid", Int vid); ("comm", Str comm); ("to", Int to_index) ]
  | Quarantined { vid; comm; degradations } ->
      [ ("vid", Int vid); ("comm", Str comm); ("degradations", Int degradations) ]
  | Sample { vid; pid; comm; pc; view } ->
      [
        ("vid", Int vid);
        ("pid", Int pid);
        ("comm", Str comm);
        ("pc", Int pc);
        ("view", Int view);
      ]

let pp ppf e =
  Format.fprintf ppf "%s" (kind e);
  List.iter
    (fun (k, v) ->
      match v with
      | Int i -> Format.fprintf ppf " %s=%d" k i
      | Str s -> Format.fprintf ppf " %s=%s" k s)
    (fields e)
