(* Delta-encoded time series over the metrics registry.

   Each tick scrapes Metrics.snapshot and records, per instrument key:
   counters as the delta since the previous tick (the first tick counts
   from zero, so the deltas of a full run re-sum to the final registry
   totals by construction), gauges as their value at the boundary, and
   histograms as a per-interval row of bucket deltas (percentiles are
   recomputable from the row, which is what lets merged fleet series
   still answer quantile questions).  Points live in a bounded ring, so
   a long run keeps the most recent window and reports what it shed. *)

type hrow = {
  hr_count : int;
  hr_sum : int;
  hr_max : int; (* cumulative max at the boundary, not per-interval *)
  hr_buckets : (int * int) list; (* (pow2, count delta), ascending, no zeros *)
}

type point = {
  p_boundary : int; (* 1-based interval index *)
  p_instructions : int; (* retired guest instructions at the tick *)
  p_wall : float option; (* wall clock, if the caller recorded one *)
  p_counters : (string * int) list;
  p_gauges : (string * int) list;
  p_histograms : (string * hrow) list;
}

type series = {
  s_period : int;
  s_intervals : int; (* ticks fired over the series' lifetime *)
  s_dropped : int; (* points shed by the ring *)
  s_points : point list; (* oldest first *)
}

type t = {
  metrics : Metrics.t;
  period : int;
  ring : point Ring.t;
  mutable intervals : int;
  prev_counters : (string, int) Hashtbl.t;
  prev_hists : (string, Metrics.histogram_snapshot) Hashtbl.t;
}

let create ?(capacity = 4096) ~period metrics =
  if period < 1 then invalid_arg "Timeseries.create: period must be >= 1";
  {
    metrics;
    period;
    ring = Ring.create ~capacity;
    intervals = 0;
    prev_counters = Hashtbl.create 64;
    prev_hists = Hashtbl.create 16;
  }

let period t = t.period
let intervals t = t.intervals

let sample_key (s : Metrics.sample) =
  let base = s.Metrics.subsystem ^ "." ^ s.Metrics.name in
  match s.Metrics.label with None -> base | Some l -> base ^ "{" ^ l ^ "}"

(* Bucket lists are ascending by pow2 with zero buckets omitted; the
   delta of two such lists is again one (counters only grow). *)
let bucket_delta ~prev ~now =
  let rec go prev now =
    match (prev, now) with
    | [], rest -> rest
    | _ :: _, [] -> [] (* unreachable: buckets never shrink *)
    | (pp, pc) :: ptl, (np, nc) :: ntl ->
        if np < pp then (np, nc) :: go prev ntl
        else if np = pp then
          let d = nc - pc in
          if d = 0 then go ptl ntl else (np, d) :: go ptl ntl
        else go ptl now
  in
  go prev now

let tick ?wall t ~instructions =
  t.intervals <- t.intervals + 1;
  let counters = ref [] and gauges = ref [] and hists = ref [] in
  List.iter
    (fun (s : Metrics.sample) ->
      let key = sample_key s in
      match s.Metrics.value with
      | Metrics.Counter v ->
          let prev =
            Option.value ~default:0 (Hashtbl.find_opt t.prev_counters key)
          in
          Hashtbl.replace t.prev_counters key v;
          counters := (key, v - prev) :: !counters
      | Metrics.Gauge v -> gauges := (key, v) :: !gauges
      | Metrics.Histogram h ->
          let prev =
            match Hashtbl.find_opt t.prev_hists key with
            | Some p -> p
            | None ->
                { Metrics.h_count = 0; h_sum = 0; h_max = 0; h_buckets = [] }
          in
          Hashtbl.replace t.prev_hists key h;
          let row =
            {
              hr_count = h.Metrics.h_count - prev.Metrics.h_count;
              hr_sum = h.Metrics.h_sum - prev.Metrics.h_sum;
              hr_max = h.Metrics.h_max;
              hr_buckets =
                bucket_delta ~prev:prev.Metrics.h_buckets
                  ~now:h.Metrics.h_buckets;
            }
          in
          hists := (key, row) :: !hists)
    (Metrics.snapshot t.metrics);
  Ring.push t.ring
    {
      p_boundary = t.intervals;
      p_instructions = instructions;
      p_wall = wall;
      p_counters = List.rev !counters;
      p_gauges = List.rev !gauges;
      p_histograms = List.rev !hists;
    }

let export t =
  {
    s_period = t.period;
    s_intervals = t.intervals;
    s_dropped = Ring.dropped t.ring;
    s_points = Ring.to_list t.ring;
  }

(* ------------------------------------------------------------------ *)
(* Series algebra (plain data: safe to move across Domains)            *)
(* ------------------------------------------------------------------ *)

let row_percentile (r : hrow) q =
  Metrics.percentile
    {
      Metrics.h_count = r.hr_count;
      h_sum = r.hr_sum;
      h_max = r.hr_max;
      h_buckets = r.hr_buckets;
    }
    q

let totals s =
  let acc = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun p ->
      List.iter
        (fun (k, d) ->
          (match Hashtbl.find_opt acc k with
          | None -> order := k :: !order
          | Some _ -> ());
          Hashtbl.replace acc k
            (d + Option.value ~default:0 (Hashtbl.find_opt acc k)))
        p.p_counters)
    s.s_points;
  List.rev_map (fun k -> (k, Hashtbl.find acc k)) !order

let sum_assoc (type k) ~(compare : k -> k -> int) rows =
  let acc : (k, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (List.iter (fun (k, v) ->
         Hashtbl.replace acc k
           (v + Option.value ~default:0 (Hashtbl.find_opt acc k))))
    rows;
  Hashtbl.fold (fun k v l -> (k, v) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let merge_hrows rows =
  let acc = Hashtbl.create 16 in
  List.iter
    (List.iter (fun (k, (r : hrow)) ->
         let m =
           match Hashtbl.find_opt acc k with
           | None -> { hr_count = 0; hr_sum = 0; hr_max = 0; hr_buckets = [] }
           | Some m -> m
         in
         Hashtbl.replace acc k
           {
             hr_count = m.hr_count + r.hr_count;
             hr_sum = m.hr_sum + r.hr_sum;
             hr_max = max m.hr_max r.hr_max;
             hr_buckets =
               sum_assoc ~compare:Int.compare [ m.hr_buckets; r.hr_buckets ];
           }))
    rows;
  Hashtbl.fold (fun k v l -> (k, v) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let merge = function
  | [] -> invalid_arg "Timeseries.merge: empty"
  | first :: _ as all ->
      List.iter
        (fun s ->
          if s.s_period <> first.s_period then
            invalid_arg "Timeseries.merge: mismatched periods")
        all;
      (* align by nominal boundary index: guests tick at the same
         instruction marks, so boundary b means the same [b*period]
         instructions of local progress in every series *)
      let by_boundary = Hashtbl.create 64 in
      List.iter
        (fun s ->
          List.iter
            (fun p ->
              let l =
                Option.value ~default:[]
                  (Hashtbl.find_opt by_boundary p.p_boundary)
              in
              Hashtbl.replace by_boundary p.p_boundary (p :: l))
            s.s_points)
        all;
      let boundaries =
        Hashtbl.fold (fun b _ l -> b :: l) by_boundary []
        |> List.sort Int.compare
      in
      let points =
        List.map
          (fun b ->
            let ps = Hashtbl.find by_boundary b in
            let wall =
              List.fold_left
                (fun acc p ->
                  match (acc, p.p_wall) with
                  | None, w -> w
                  | Some a, Some w -> Some (Float.max a w)
                  | Some a, None -> Some a)
                None ps
            in
            {
              p_boundary = b;
              p_instructions =
                List.fold_left (fun a p -> a + p.p_instructions) 0 ps;
              p_wall = wall;
              p_counters =
                sum_assoc ~compare:String.compare
                  (List.map (fun p -> p.p_counters) ps);
              p_gauges =
                sum_assoc ~compare:String.compare
                  (List.map (fun p -> p.p_gauges) ps);
              p_histograms = merge_hrows (List.map (fun p -> p.p_histograms) ps);
            })
          boundaries
      in
      {
        s_period = first.s_period;
        s_intervals =
          List.fold_left (fun a s -> max a s.s_intervals) 0 all;
        s_dropped = List.fold_left (fun a s -> a + s.s_dropped) 0 all;
        s_points = points;
      }

(* ------------------------------------------------------------------ *)
(* Fingerprint                                                         *)
(* ------------------------------------------------------------------ *)

(* Keys whose values legitimately differ across the behavior-invisible
   engine toggles ({sblocks}×{tlb}): the fast-path hit/miss accounting
   and the decode-cache occupancy.  Everything else is pinned identical
   by the differential harness, so a fingerprint excluding these must
   match across all four engine arms (and across fleet domain counts). *)
let engine_excludes = [ "tlb"; "sb"; "os.decode_cache_frames" ]

let excluded exclude key =
  let sub =
    match String.index_opt key '.' with
    | Some i -> String.sub key 0 i
    | None -> key
  in
  List.mem sub exclude || List.mem key exclude

let fingerprint ?(exclude = engine_excludes) s =
  let b = Buffer.create 4096 in
  Buffer.add_string b (Printf.sprintf "period=%d intervals=%d\n" s.s_period s.s_intervals);
  List.iter
    (fun p ->
      Buffer.add_string b
        (Printf.sprintf "@%d instrs=%d\n" p.p_boundary p.p_instructions);
      List.iter
        (fun (k, d) ->
          if not (excluded exclude k) then
            Buffer.add_string b (Printf.sprintf "C %s %d\n" k d))
        p.p_counters;
      List.iter
        (fun (k, v) ->
          if not (excluded exclude k) then
            Buffer.add_string b (Printf.sprintf "G %s %d\n" k v))
        p.p_gauges;
      List.iter
        (fun (k, (r : hrow)) ->
          if not (excluded exclude k) then begin
            Buffer.add_string b
              (Printf.sprintf "H %s %d %d %d" k r.hr_count r.hr_sum r.hr_max);
            List.iter
              (fun (pow2, n) -> Buffer.add_string b (Printf.sprintf " %d:%d" pow2 n))
              r.hr_buckets;
            Buffer.add_char b '\n'
          end)
        p.p_histograms)
    s.s_points;
  Digest.to_hex (Digest.string (Buffer.contents b))
