(** The event trace sink: a bounded ring of timestamped records plus
    pluggable subscribers.

    The sink starts disarmed — no ring, no subscribers — and emitters are
    expected to guard event construction with {!armed}, so an
    uninstrumented run allocates nothing on the hot path:

    {[ if Trace.armed sink then Trace.emit sink (Event.Vm_exit ...) ]}

    Arming installs a ring buffer (the most recent window survives, older
    records are counted as dropped); subscribing attaches a callback run
    synchronously on every record.  Timestamps come from the clock
    callback — the guest cycle counter, once an [Os] owns the sink. *)

type record = { seq : int; cycle : int; event : Event.t }
(** [seq] numbers every emitted record from 0, including ones the ring
    has since dropped. *)

type t

val create : unit -> t

val armed : t -> bool
(** True iff a ring is installed or at least one subscriber is attached.
    Emitters check this before building an event. *)

val set_clock : t -> (unit -> int) -> unit
(** Install the timestamp source (default: constantly 0). *)

val arm : ?capacity:int -> t -> unit
(** Install a fresh ring (default capacity 4096), clearing any previous
    one. *)

val disarm : t -> unit
(** Remove the ring.  Subscribers stay attached. *)

val subscribe : t -> (record -> unit) -> unit

val clear_subscribers : t -> unit

val emit : t -> Event.t -> unit
(** Stamp and record the event.  A no-op when not armed. *)

val records : t -> record list
(** Ring contents, oldest first ([[]] when disarmed). *)

val emitted : t -> int
(** Records emitted since creation (armed spells only). *)

val dropped : t -> int
(** Records the current ring has overwritten. *)

val pp_record : Format.formatter -> record -> unit
(** ["[      1234]  #7 view_switch vid=0 ..."]. *)
