(** Cycle-timestamped begin/end intervals over the {!Trace} hub.

    A span is a nested episode of hypervisor work: the paper's runtime is
    a stack of them — a process run-slice encloses the exit handling for
    each breakpoint it hits, exit handling encloses a recovery episode,
    recovery encloses the backtrace walk that guides instant recovery.
    Spans are recorded as {!Event.Span_begin}/{!Event.Span_end} pairs in
    the trace ring, timestamped by the sink's cycle clock, so exporters
    can reconstruct durations without any extra bookkeeping here.

    Nesting is tracked per vCPU: each vCPU has its own stack of open
    spans, so interleaved run-slices on different vCPUs never corrupt
    each other's parentage.  Closing a span auto-closes any children
    still open on the same stack, keeping the emitted stream well
    nested even when an instrumentation site forgets a child.

    When the underlying sink is disarmed, {!enter} returns {!none} and
    allocates nothing — the armed-off path stays free, same as
    {!Trace.emit}. *)

type kind =
  | Run_slice  (** a guest process running between scheduler switches *)
  | Exit_handling  (** hypervisor dispatcher handling one VM exit *)
  | Backtrace  (** kernel stack walk (§III-C, guides instant recovery) *)
  | Recovery  (** one UD2-triggered code-recovery episode, end to end *)
  | View_build  (** constructing a per-application kernel view *)

val kind_label : kind -> string
(** Stable snake_case tag: ["run_slice"], ["exit_handling"], ... *)

type t

val create : Trace.t -> t
(** A span tracker recording into the given sink. *)

val none : int
(** The id returned when the sink is disarmed; {!exit} ignores it. *)

val enter : t -> ?vid:int -> ?pid:int -> ?comm:string -> kind -> int
(** Open a span on [vid]'s stack and emit [Span_begin].  Returns a
    sink-unique positive id, or {!none} (without allocating) when the
    sink is disarmed. *)

val exit : t -> int -> unit
(** Close the span, first auto-closing any children still open above it
    on its stack.  No-op for {!none} or an id that is not open. *)

val depth : t -> ?vid:int -> unit -> int
(** Number of currently open spans on [vid]'s stack (default vCPU 0). *)
