(** The typed event taxonomy of the observability layer.

    One constructor per hypervisor-lifecycle event the paper's evaluation
    counts: VM exits, the view-switch breakpoints and their outcomes, UD2
    traps and the lazy/instant code recoveries they trigger, frame-cache
    sharing and copy-on-write breaks, view load/unload, and guest
    scheduler switches.  Events are plain immutable values; emission cost
    is paid only when a trace sink is armed (see {!Trace.armed}). *)

type switch_outcome =
  | Switched  (** EPT directory entries actually installed *)
  | Skipped  (** same-view optimization: nothing to do *)
  | Deferred  (** armed at [resume_userspace] (§III-B2) *)

type recovery_kind =
  | Lazy  (** recovered at the faulting [eip] (Algorithm 1) *)
  | Instant  (** a misdecodable return target recovered eagerly (Fig. 3) *)

type exit_reason = Exit_breakpoint | Exit_invalid_opcode

type t =
  | Vm_exit of { reason : exit_reason; addr : int }
      (** a guest exit reached the hypervisor dispatcher; [addr] is the
          breakpoint address, or the faulting [eip] for invalid opcodes *)
  | Breakpoint of { vid : int; addr : int; pid : int; comm : string }
      (** FACE-CHANGE observed one of its view-switch breakpoints *)
  | View_switch of {
      vid : int;
      from_index : int;
      to_index : int;
      outcome : switch_outcome;
    }
  | Ud2_trap of { vid : int; eip : int; pid : int; comm : string }
      (** an invalid-opcode exit handled by the code-recovery path *)
  | Recovery of { kind : recovery_kind; start : int; stop : int; symbol : string }
      (** [[start, stop)] of original kernel code filled into the view *)
  | Frame_share of { frame : int }
      (** a view page was backed by an existing frame (cache hit) *)
  | Cow_break of { frame : int; fresh : int }
      (** first write privatized shared [frame] into [fresh] *)
  | View_load of { index : int; app : string; pages : int; loaded_bytes : int }
  | View_unload of { index : int; app : string; cow_breaks : int }
  | Sched_switch of { vid : int; pid : int; comm : string }
      (** the guest scheduler switched to a different task *)
  | Span_begin of {
      sid : int;
      parent : int;
      span : string;
      vid : int;
      pid : int;
      comm : string;
    }
      (** a timed episode opened (see {!Span}): [sid] is unique per sink,
          [parent] is the enclosing open span on the same vCPU (0 for a
          root), [span] is the kind label ("run_slice", "exit_handling",
          "backtrace", "recovery", "view_build") *)
  | Span_end of { sid : int; span : string }
      (** the matching close; always properly nested per vCPU (closing a
          span auto-closes any children still open) *)
  | Fault_injected of { fault : string; detail : string }
      (** the fault-injection harness applied one scheduled fault *)
  | Storm_detected of { vid : int; comm : string; events : int; window : int }
      (** the governor saw [events] degradable events for [comm] within a
          [window]-cycle sliding window *)
  | Degraded of { vid : int; comm : string; from_index : int; reason : string }
      (** the governor fell [comm] back to the full kernel view *)
  | Renarrowed of { vid : int; comm : string; to_index : int }
      (** cooldown elapsed; [comm] was re-bound to its narrow view *)
  | Quarantined of { vid : int; comm : string; degradations : int }
      (** [comm] degraded or faulted too often and is pinned to the full
          view for the rest of the run *)
  | Sample of { vid : int; pid : int; comm : string; pc : int; view : int }
      (** a profiler tick observed [comm] at guest [pc] under view index
          [view] (see {!Sampler}); emitted by the telemetry glue, never
          by the machine itself *)

type value = Int of int | Str of string
(** A flattened field for exporters (JSON objects, CSV cells). *)

val outcome_label : switch_outcome -> string
(** ["switched"], ["skipped"], ["deferred"]. *)

val recovery_label : recovery_kind -> string
(** ["lazy"], ["instant"]. *)

val reason_label : exit_reason -> string
(** ["breakpoint"], ["invalid_opcode"]. *)

val kind : t -> string
(** Stable snake_case tag, e.g. ["view_switch"]. *)

val kinds : string list
(** Every tag {!kind} can return, in declaration order. *)

val fields : t -> (string * value) list
(** The event's payload as ordered (name, value) pairs. *)

val pp : Format.formatter -> t -> unit
(** ["view_switch vid=0 from=0 to=1 outcome=switched"]. *)
