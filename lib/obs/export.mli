(** JSON and CSV exporters over the trace sink and the metrics registry.

    Formats are part of the tool surface (golden-tested): keep them
    stable or bump the [schema_version] constants. *)

val schema_version : int

(** {1 Trace} *)

val record_to_json : Trace.record -> Jsonx.t
(** [{"seq": …, "cycle": …, "kind": …, <event fields>}]. *)

val trace_to_json : Trace.t -> Jsonx.t
(** [{"schema_version", "emitted", "dropped", "events": […]}]. *)

val trace_to_csv : Trace.t -> string
(** Header [seq,cycle,kind,args]; [args] is a [;]-joined [k=v] list,
    CSV-quoted when needed. *)

(** {1 Metrics} *)

val metrics_to_json : Metrics.t -> Jsonx.t
(** [{"counters": {…}, "gauges": {…}, "histograms": {…}}] with
    ["subsystem.name"] keys (["subsystem.name{label}"] for labeled
    family members), in registration order.  Histogram objects carry
    [count], [sum], [max], interpolated [p50]/[p90]/[p99], and the
    non-empty log2 [buckets]. *)

val metrics_to_csv : Metrics.t -> string
(** Header [kind,subsystem,name,label,value,count,sum,max,p50,p90,p99]:
    counters and gauges fill [value]; histograms fill
    [count,sum,max,p50,p90,p99].  [label] is empty for unlabeled
    instruments. *)

(** {1 Chrome trace-event timeline} *)

val timeline_to_json : ?extra:(string * Jsonx.t) list -> Trace.t -> Jsonx.t
(** Render the trace ring in Chrome trace-event format (loadable in
    Perfetto / [about:tracing]): [Span_begin]/[Span_end] become [B]/[E]
    duration events, view switches zero-duration [X] events, UD2 traps
    thread-scoped instant events.  traceEvent [pid] is the vCPU id,
    [tid] the guest pid, [ts] the guest cycle; metadata events name each
    vCPU "process" and each guest-process "thread" by comm.  Spans still
    open at the end of the ring are closed at the last observed cycle so
    the event stream is always balanced.  [extra] appends top-level
    members (e.g. a ["stats"] object) after ["traceEvents"]. *)
