(** JSON and CSV exporters over the trace sink and the metrics registry.

    Formats are part of the tool surface (golden-tested): keep them
    stable or bump the [schema_version] constants. *)

val schema_version : int

(** {1 Trace} *)

val record_to_json : Trace.record -> Jsonx.t
(** [{"seq": …, "cycle": …, "kind": …, <event fields>}]. *)

val trace_to_json : Trace.t -> Jsonx.t
(** [{"schema_version", "emitted", "dropped", "events": […]}]. *)

val trace_to_csv : Trace.t -> string
(** Header [seq,cycle,kind,args]; [args] is a [;]-joined [k=v] list,
    CSV-quoted when needed. *)

(** {1 Metrics} *)

val metrics_to_json : Metrics.t -> Jsonx.t
(** [{"counters": {…}, "gauges": {…}, "histograms": {…}}] with
    ["subsystem.name"] keys, in registration order. *)

val metrics_to_csv : Metrics.t -> string
(** Header [kind,subsystem,name,value,count,sum,max]: counters and gauges
    fill [value]; histograms fill [count,sum,max]. *)
