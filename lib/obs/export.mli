(** JSON and CSV exporters over the trace sink and the metrics registry.

    Formats are part of the tool surface (golden-tested): keep them
    stable or bump the [schema_version] constants. *)

val schema_version : int

(** {1 Trace} *)

val record_to_json : Trace.record -> Jsonx.t
(** [{"seq": …, "cycle": …, "kind": …, <event fields>}]. *)

val trace_to_json : Trace.t -> Jsonx.t
(** [{"schema_version", "emitted", "dropped", "events": […]}]. *)

val trace_to_csv : Trace.t -> string
(** Header [seq,cycle,kind,args]; [args] is a [;]-joined [k=v] list,
    CSV-quoted when needed. *)

(** {1 Metrics} *)

val metrics_to_json : Metrics.t -> Jsonx.t
(** [{"counters": {…}, "gauges": {…}, "histograms": {…}}] with
    ["subsystem.name"] keys (["subsystem.name{label}"] for labeled
    family members), in registration order.  Histogram objects carry
    [count], [sum], [max], interpolated [p50]/[p90]/[p99], and the
    non-empty log2 [buckets]. *)

val metrics_to_csv : Metrics.t -> string
(** Header [kind,subsystem,name,label,value,count,sum,max,p50,p90,p99]:
    counters and gauges fill [value]; histograms fill
    [count,sum,max,p50,p90,p99].  [label] is empty for unlabeled
    instruments.  Every string cell is CSV-quoted when needed; the nan
    percentiles of an empty histogram render as empty cells. *)

(** {1 Prometheus text exposition} *)

val prom_name : subsystem:string -> string -> string
(** Registry key to Prometheus metric name: ["facechange_<sub>_<name>"]
    with every character outside [[a-zA-Z0-9_:]] mapped to [_] (registry
    dots become underscores). *)

val prom_escape_label : string -> string
(** Label-value escaping per the text format: backslash, double quote
    and newline are backslash-escaped. *)

val metrics_to_prometheus : Metrics.t -> string
(** Prometheus text exposition of the registry ([facechange stats
    --prom]).  One [# TYPE] line per metric name; labeled family members
    render as [app="<label>"] variants of the shared name; histograms
    expose cumulative [le] buckets (log2 bucket [pow2] ends at
    [2^(pow2+1)]) plus [_sum]/[_count]. *)

(** {1 Time series} *)

val timeseries_to_json : Timeseries.series -> Jsonx.t
(** [{"schema_version", "period", "intervals", "dropped", "fingerprint",
    "points": […]}]; each point carries [boundary], [instructions],
    optional [wall], and [counters]/[gauges]/[histograms] objects
    (histogram rows include interpolated p50/p90/p99 — [null] when the
    interval saw no observations). *)

val timeseries_to_csv : Timeseries.series -> string
(** Long form, one row per (interval, key):
    [boundary,instructions,wall,kind,key,value,count,sum,max,p50,p90,p99]. *)

(** {1 Chrome trace-event timeline} *)

val timeline_to_json : ?extra:(string * Jsonx.t) list -> Trace.t -> Jsonx.t
(** Render the trace ring in Chrome trace-event format (loadable in
    Perfetto / [about:tracing]): [Span_begin]/[Span_end] become [B]/[E]
    duration events, view switches zero-duration [X] events, UD2 traps
    thread-scoped instant events.  traceEvent [pid] is the vCPU id,
    [tid] the guest pid, [ts] the guest cycle; metadata events name each
    vCPU "process" and each guest-process "thread" by comm.  Spans still
    open at the end of the ring are closed at the last observed cycle so
    the event stream is always balanced.  [extra] appends top-level
    members (e.g. a ["stats"] object) after ["traceEvents"]. *)
