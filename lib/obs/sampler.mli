(** Sampling-profiler folds: collapsed (comm, stack) observations in the
    flamegraph.pl "folded" representation.

    The telemetry glue records one sample per vCPU per ticker fire — the
    current comm plus its symbolized kernel stack (root-first) — and the
    sampler collapses equal stacks into counts.  Folds are plain data:
    per-guest folds {!merge} fleet-wide, and {!folded_text} feeds
    [flamegraph.pl] directly.  The sampler never reads guest state
    itself; callers symbolize frames before recording, via the
    hypervisor's uncharged [sample_stack] walk. *)

type fold = { f_stack : string; f_count : int }
(** [f_stack] is ["comm;frame;...;leaf"]; [;] and spaces inside frames
    are rewritten at record time so the folded line stays parseable. *)

type t

val create : unit -> t

val record : t -> comm:string -> frames:string list -> unit
(** One observation: [frames] root-first (leaf last), already rendered.
    An empty [frames] records the bare comm — used when the sampled task
    has no walkable kernel context. *)

val samples : t -> int
(** Observations recorded; equals the sum of the exported counts. *)

val export : t -> fold list
(** Sorted by stack string — deterministic for equal sample sets. *)

val merge : fold list list -> fold list
(** Sum counts per stack across guests; sorted, order-independent. *)

val total : fold list -> int
val folded_text : fold list -> string
(** One ["stack count\n"] line per fold — flamegraph.pl input. *)

val fingerprint : fold list -> string
(** Hex MD5 of {!folded_text}. *)
