(** A zero-dependency JSON value type with a hand-rolled serializer and
    parser — enough for the trace/metrics exporters, the bench artifact,
    and the CI drift checker, without pulling a JSON library into the
    toolchain.

    Serialization always yields valid JSON: strings are escaped, and
    non-finite floats (NaN, infinities) — which have no JSON spelling —
    are emitted as [null], so an empty-run division can never produce a
    malformed artifact. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Compact by default; [~pretty:true] indents with two spaces. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; the error carries a character
    offset.  Numbers without [.], [e] or [E] that fit in [int] parse as
    [Int]; everything else as [Float]. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** Field of an [Obj]. *)

val path : t -> string list -> t option
(** [path j ["a"; "b"]] = [member "b" (member "a" j)]. *)

val to_int : t -> int option
(** [Int], or a [Float] with integral value. *)

val to_float : t -> float option
val to_bool : t -> bool option
val to_str : t -> string option
