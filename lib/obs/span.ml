type kind = Run_slice | Exit_handling | Backtrace | Recovery | View_build

let kind_label = function
  | Run_slice -> "run_slice"
  | Exit_handling -> "exit_handling"
  | Backtrace -> "backtrace"
  | Recovery -> "recovery"
  | View_build -> "view_build"

type open_span = { sid : int; label : string }

type t = {
  sink : Trace.t;
  mutable next : int;
  (* one stack of open spans per vCPU, keyed by vid *)
  stacks : (int, open_span list) Hashtbl.t;
}

let none = 0

let create sink = { sink; next = 1; stacks = Hashtbl.create 4 }

let stack t vid = Option.value ~default:[] (Hashtbl.find_opt t.stacks vid)

let enter t ?(vid = 0) ?(pid = 0) ?(comm = "") kind =
  if not (Trace.armed t.sink) then none
  else begin
    let sid = t.next in
    t.next <- sid + 1;
    let st = stack t vid in
    let parent = match st with [] -> none | top :: _ -> top.sid in
    let label = kind_label kind in
    Hashtbl.replace t.stacks vid ({ sid; label } :: st);
    Trace.emit t.sink (Event.Span_begin { sid; parent; span = label; vid; pid; comm });
    sid
  end

let exit t sid =
  if sid <> none then
    (* find which stack holds it; pop (auto-closing children) down to it *)
    let found =
      Hashtbl.fold
        (fun vid st acc ->
          match acc with
          | Some _ -> acc
          | None ->
              if List.exists (fun s -> s.sid = sid) st then Some (vid, st)
              else None)
        t.stacks None
    in
    match found with
    | None -> ()
    | Some (vid, st) ->
        let rec pop = function
          | [] -> []
          | s :: rest ->
              Trace.emit t.sink (Event.Span_end { sid = s.sid; span = s.label });
              if s.sid = sid then rest else pop rest
        in
        Hashtbl.replace t.stacks vid (pop st)

let depth t ?(vid = 0) () = List.length (stack t vid)
