(** Delta-encoded, ring-buffered time series over the {!Metrics}
    registry.

    A {!tick} scrapes the registry into one {!point}: counters as the
    delta since the previous tick, gauges as their value at the
    boundary, histograms as per-interval bucket-delta rows.  The first
    tick counts from zero, so over a full run the per-interval counter
    deltas re-sum {e exactly} to the final registry totals — the
    invariant [bench/check.exe --telemetry] gates on.

    Ticks are driven externally — by the deterministic instruction-count
    ticker ([Os.arm_tick]), never wall clock — so a series is a pure
    function of guest execution and can be fingerprinted and pinned in
    CI.  {!series} is plain immutable data, safe to move across Domains
    and merge fleet-wide ({!merge}). *)

type hrow = {
  hr_count : int;  (** observations this interval *)
  hr_sum : int;  (** summed value this interval *)
  hr_max : int;
      (** cumulative max {e at} the boundary (a per-interval max is not
          recoverable from monotone registry state) *)
  hr_buckets : (int * int) list;
      (** (pow2, count delta) ascending, zero deltas omitted *)
}

type point = {
  p_boundary : int;  (** 1-based interval index *)
  p_instructions : int;  (** retired guest instructions at the tick *)
  p_wall : float option;
      (** wall-clock seconds if the caller recorded one; excluded from
          {!fingerprint} — never deterministic *)
  p_counters : (string * int) list;  (** key -> per-interval delta *)
  p_gauges : (string * int) list;  (** key -> value at the boundary *)
  p_histograms : (string * hrow) list;
}
(** Keys are ["subsystem.name"] (["subsystem.name{label}"] for family
    members), in registration order for a scraped point and sorted for a
    merged one. *)

type series = {
  s_period : int;  (** instructions per interval *)
  s_intervals : int;  (** ticks fired over the series' lifetime *)
  s_dropped : int;  (** points shed by the bounded ring *)
  s_points : point list;  (** oldest first *)
}

type t

val create : ?capacity:int -> period:int -> Metrics.t -> t
(** [capacity] (default 4096) bounds the point ring; [period] is the
    nominal instructions-per-interval, recorded in the exported series
    (the ticker owns the actual firing). *)

val period : t -> int
val intervals : t -> int
(** Ticks fired so far. *)

val tick : ?wall:float -> t -> instructions:int -> unit
(** Scrape the registry into one interval point.  Call it from the
    [Os.arm_tick] callback, and once more after the run to flush the
    tail interval. *)

val export : t -> series

val sample_key : Metrics.sample -> string
(** The series key of a registry sample: ["subsystem.name"] or
    ["subsystem.name{label}"]. *)

val totals : series -> (string * int) list
(** Per-key sum of the counter deltas across all held points — equals
    the final registry totals when no points were dropped. *)

val row_percentile : hrow -> float -> float
(** {!Metrics.percentile} over an interval (or merged) histogram row;
    [nan] when the row is empty. *)

val merge : series list -> series
(** Fleet merge: points align by nominal boundary index (every guest
    ticks at the same local instruction marks), counter/gauge values and
    histogram rows sum per key, instructions sum, wall takes the max.
    Periods must match.  The result is independent of input order and of
    how guests were sharded across Domains. *)

val engine_excludes : string list
(** Keys that legitimately differ across the behavior-invisible engine
    toggles ([{sblocks}×{tlb}]): the ["tlb"] and ["sb"] subsystems and
    ["os.decode_cache_frames"].  The default {!fingerprint} exclusion. *)

val fingerprint : ?exclude:string list -> series -> string
(** Hex MD5 over every (boundary, key, integer) row of the series,
    skipping keys whose subsystem or full key is listed in [exclude]
    (default {!engine_excludes}) and all wall-clock fields.  Identical
    across engine arms and fleet domain counts for the same seed. *)
