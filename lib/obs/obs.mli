(** One observability hub per guest: a {!Trace} sink and a {!Metrics}
    registry, created by [Os.create] and shared by every layer attached
    to that guest (hypervisor, FACE-CHANGE, views, frame cache).

    Subsystems register counters/gauges on {!metrics} at attach time and
    emit {!Event} records through {!trace}; [Stats.capture] is a
    read-only projection of the registry. *)

type t

val create : unit -> t
val trace : t -> Trace.t
val metrics : t -> Metrics.t

val spans : t -> Span.t
(** The span tracker recording into {!trace} — see {!Span}. *)

val armed : t -> bool
(** Shorthand for [Trace.armed (trace t)] — the emission guard. *)

val emit : t -> Event.t -> unit
(** Shorthand for [Trace.emit (trace t)]. *)

val set_clock : t -> (unit -> int) -> unit
