let schema_version = 1

(* ---------------- trace ---------------- *)

let value_to_json = function
  | Event.Int i -> Jsonx.Int i
  | Event.Str s -> Jsonx.String s

let record_to_json (r : Trace.record) =
  Jsonx.Obj
    ([
       ("seq", Jsonx.Int r.Trace.seq);
       ("cycle", Jsonx.Int r.Trace.cycle);
       ("kind", Jsonx.String (Event.kind r.Trace.event));
     ]
    @ List.map (fun (k, v) -> (k, value_to_json v)) (Event.fields r.Trace.event))

let trace_to_json t =
  Jsonx.Obj
    [
      ("schema_version", Jsonx.Int schema_version);
      ("emitted", Jsonx.Int (Trace.emitted t));
      ("dropped", Jsonx.Int (Trace.dropped t));
      ("events", Jsonx.List (List.map record_to_json (Trace.records t)));
    ]

let csv_cell s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then begin
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end
  else s

let trace_to_csv t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "seq,cycle,kind,args\n";
  List.iter
    (fun (r : Trace.record) ->
      let args =
        String.concat ";"
          (List.map
             (fun (k, v) ->
               match v with
               | Event.Int i -> Printf.sprintf "%s=%d" k i
               | Event.Str s -> Printf.sprintf "%s=%s" k s)
             (Event.fields r.Trace.event))
      in
      Buffer.add_string b
        (Printf.sprintf "%d,%d,%s,%s\n" r.Trace.seq r.Trace.cycle
           (Event.kind r.Trace.event)
           (csv_cell args)))
    (Trace.records t);
  Buffer.contents b

(* ---------------- metrics ---------------- *)

let histogram_to_json (h : Metrics.histogram_snapshot) =
  Jsonx.Obj
    [
      ("count", Jsonx.Int h.Metrics.h_count);
      ("sum", Jsonx.Int h.Metrics.h_sum);
      ("max", Jsonx.Int h.Metrics.h_max);
      ( "buckets",
        Jsonx.List
          (List.map
             (fun (pow2, count) ->
               Jsonx.Obj [ ("pow2", Jsonx.Int pow2); ("count", Jsonx.Int count) ])
             h.Metrics.h_buckets) );
    ]

let metrics_to_json m =
  let samples = Metrics.snapshot m in
  let section pick =
    List.filter_map
      (fun (s : Metrics.sample) ->
        Option.map
          (fun v -> (s.Metrics.subsystem ^ "." ^ s.Metrics.name, v))
          (pick s.Metrics.value))
      samples
  in
  Jsonx.Obj
    [
      ( "counters",
        Jsonx.Obj
          (section (function Metrics.Counter v -> Some (Jsonx.Int v) | _ -> None))
      );
      ( "gauges",
        Jsonx.Obj
          (section (function Metrics.Gauge v -> Some (Jsonx.Int v) | _ -> None)) );
      ( "histograms",
        Jsonx.Obj
          (section (function
            | Metrics.Histogram h -> Some (histogram_to_json h)
            | _ -> None)) );
    ]

let metrics_to_csv m =
  let b = Buffer.create 1024 in
  Buffer.add_string b "kind,subsystem,name,value,count,sum,max\n";
  List.iter
    (fun (s : Metrics.sample) ->
      match s.Metrics.value with
      | Metrics.Counter v ->
          Buffer.add_string b
            (Printf.sprintf "counter,%s,%s,%d,,,\n" s.Metrics.subsystem
               s.Metrics.name v)
      | Metrics.Gauge v ->
          Buffer.add_string b
            (Printf.sprintf "gauge,%s,%s,%d,,,\n" s.Metrics.subsystem
               s.Metrics.name v)
      | Metrics.Histogram h ->
          Buffer.add_string b
            (Printf.sprintf "histogram,%s,%s,,%d,%d,%d\n" s.Metrics.subsystem
               s.Metrics.name h.Metrics.h_count h.Metrics.h_sum h.Metrics.h_max))
    (Metrics.snapshot m);
  Buffer.contents b
