let schema_version = 1

(* ---------------- trace ---------------- *)

let value_to_json = function
  | Event.Int i -> Jsonx.Int i
  | Event.Str s -> Jsonx.String s

let record_to_json (r : Trace.record) =
  Jsonx.Obj
    ([
       ("seq", Jsonx.Int r.Trace.seq);
       ("cycle", Jsonx.Int r.Trace.cycle);
       ("kind", Jsonx.String (Event.kind r.Trace.event));
     ]
    @ List.map (fun (k, v) -> (k, value_to_json v)) (Event.fields r.Trace.event))

let trace_to_json t =
  Jsonx.Obj
    [
      ("schema_version", Jsonx.Int schema_version);
      ("emitted", Jsonx.Int (Trace.emitted t));
      ("dropped", Jsonx.Int (Trace.dropped t));
      ("events", Jsonx.List (List.map record_to_json (Trace.records t)));
    ]

let csv_cell s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then begin
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end
  else s

let trace_to_csv t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "seq,cycle,kind,args\n";
  List.iter
    (fun (r : Trace.record) ->
      let args =
        String.concat ";"
          (List.map
             (fun (k, v) ->
               match v with
               | Event.Int i -> Printf.sprintf "%s=%d" k i
               | Event.Str s -> Printf.sprintf "%s=%s" k s)
             (Event.fields r.Trace.event))
      in
      Buffer.add_string b
        (Printf.sprintf "%d,%d,%s,%s\n" r.Trace.seq r.Trace.cycle
           (Event.kind r.Trace.event)
           (csv_cell args)))
    (Trace.records t);
  Buffer.contents b

(* ---------------- metrics ---------------- *)

let sample_key (s : Metrics.sample) =
  let base = s.Metrics.subsystem ^ "." ^ s.Metrics.name in
  match s.Metrics.label with None -> base | Some l -> base ^ "{" ^ l ^ "}"

let histogram_to_json (h : Metrics.histogram_snapshot) =
  Jsonx.Obj
    [
      ("count", Jsonx.Int h.Metrics.h_count);
      ("sum", Jsonx.Int h.Metrics.h_sum);
      ("max", Jsonx.Int h.Metrics.h_max);
      ("p50", Jsonx.Float (Metrics.percentile h 0.5));
      ("p90", Jsonx.Float (Metrics.percentile h 0.9));
      ("p99", Jsonx.Float (Metrics.percentile h 0.99));
      ( "buckets",
        Jsonx.List
          (List.map
             (fun (pow2, count) ->
               Jsonx.Obj [ ("pow2", Jsonx.Int pow2); ("count", Jsonx.Int count) ])
             h.Metrics.h_buckets) );
    ]

let metrics_to_json m =
  let samples = Metrics.snapshot m in
  let section pick =
    List.filter_map
      (fun (s : Metrics.sample) ->
        Option.map (fun v -> (sample_key s, v)) (pick s.Metrics.value))
      samples
  in
  Jsonx.Obj
    [
      ( "counters",
        Jsonx.Obj
          (section (function Metrics.Counter v -> Some (Jsonx.Int v) | _ -> None))
      );
      ( "gauges",
        Jsonx.Obj
          (section (function Metrics.Gauge v -> Some (Jsonx.Int v) | _ -> None)) );
      ( "histograms",
        Jsonx.Obj
          (section (function
            | Metrics.Histogram h -> Some (histogram_to_json h)
            | _ -> None)) );
    ]

(* an empty histogram has nan percentiles (see Metrics.percentile): the
   CSV cell is left empty rather than printing the string "nan" *)
let float_cell v = if Float.is_nan v then "" else Printf.sprintf "%.6g" v

let metrics_to_csv m =
  let b = Buffer.create 1024 in
  Buffer.add_string b "kind,subsystem,name,label,value,count,sum,max,p50,p90,p99\n";
  List.iter
    (fun (s : Metrics.sample) ->
      let label = Option.value ~default:"" s.Metrics.label in
      match s.Metrics.value with
      | Metrics.Counter v ->
          Buffer.add_string b
            (Printf.sprintf "counter,%s,%s,%s,%d,,,,,,\n"
               (csv_cell s.Metrics.subsystem)
               (csv_cell s.Metrics.name) (csv_cell label) v)
      | Metrics.Gauge v ->
          Buffer.add_string b
            (Printf.sprintf "gauge,%s,%s,%s,%d,,,,,,\n"
               (csv_cell s.Metrics.subsystem)
               (csv_cell s.Metrics.name) (csv_cell label) v)
      | Metrics.Histogram h ->
          Buffer.add_string b
            (Printf.sprintf "histogram,%s,%s,%s,,%d,%d,%d,%s,%s,%s\n"
               (csv_cell s.Metrics.subsystem)
               (csv_cell s.Metrics.name) (csv_cell label) h.Metrics.h_count
               h.Metrics.h_sum h.Metrics.h_max
               (float_cell (Metrics.percentile h 0.5))
               (float_cell (Metrics.percentile h 0.9))
               (float_cell (Metrics.percentile h 0.99))))
    (Metrics.snapshot m);
  Buffer.contents b

(* ---------------- Prometheus text exposition ---------------- *)

(* Registry keys are "sub.name" / "sub.name{label}"; the Prometheus text
   format allows [a-zA-Z_:][a-zA-Z0-9_:]* metric names, so dots (and any
   other stray character) become underscores under a facechange_ prefix.
   Label values get the text-format escapes: backslash, quote, newline. *)
let prom_name ~subsystem name =
  let raw = "facechange_" ^ subsystem ^ "_" ^ name in
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    raw

let prom_escape_label v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let metrics_to_prometheus m =
  let b = Buffer.create 2048 in
  let typed : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  let type_line name kind =
    if not (Hashtbl.mem typed name) then begin
      Hashtbl.add typed name ();
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  let labels = function
    | None -> ""
    | Some l -> Printf.sprintf "{app=\"%s\"}" (prom_escape_label l)
  in
  List.iter
    (fun (s : Metrics.sample) ->
      let name = prom_name ~subsystem:s.Metrics.subsystem s.Metrics.name in
      match s.Metrics.value with
      | Metrics.Counter v ->
          type_line name "counter";
          Buffer.add_string b
            (Printf.sprintf "%s%s %d\n" name (labels s.Metrics.label) v)
      | Metrics.Gauge v ->
          type_line name "gauge";
          Buffer.add_string b
            (Printf.sprintf "%s%s %d\n" name (labels s.Metrics.label) v)
      | Metrics.Histogram h ->
          type_line name "histogram";
          (* log2 buckets to cumulative le form: every observation in
             pow2 bucket i is < 2^(i+1) (pow2 0 holds 0 and 1) *)
          let extra_label =
            match s.Metrics.label with
            | None -> ""
            | Some l -> Printf.sprintf ",app=\"%s\"" (prom_escape_label l)
          in
          let cum = ref 0 in
          List.iter
            (fun (pow2, count) ->
              cum := !cum + count;
              Buffer.add_string b
                (Printf.sprintf "%s_bucket{le=\"%d\"%s} %d\n" name
                   (1 lsl (pow2 + 1))
                   extra_label !cum))
            h.Metrics.h_buckets;
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"+Inf\"%s} %d\n" name extra_label
               h.Metrics.h_count);
          Buffer.add_string b
            (Printf.sprintf "%s_sum%s %d\n" name (labels s.Metrics.label)
               h.Metrics.h_sum);
          Buffer.add_string b
            (Printf.sprintf "%s_count%s %d\n" name (labels s.Metrics.label)
               h.Metrics.h_count))
    (Metrics.snapshot m);
  Buffer.contents b

(* ---------------- time series ---------------- *)

let hrow_to_json (r : Timeseries.hrow) =
  Jsonx.Obj
    [
      ("count", Jsonx.Int r.Timeseries.hr_count);
      ("sum", Jsonx.Int r.Timeseries.hr_sum);
      ("max", Jsonx.Int r.Timeseries.hr_max);
      ("p50", Jsonx.Float (Timeseries.row_percentile r 0.5));
      ("p90", Jsonx.Float (Timeseries.row_percentile r 0.9));
      ("p99", Jsonx.Float (Timeseries.row_percentile r 0.99));
      ( "buckets",
        Jsonx.List
          (List.map
             (fun (pow2, n) -> Jsonx.List [ Jsonx.Int pow2; Jsonx.Int n ])
             r.Timeseries.hr_buckets) );
    ]

let point_to_json (p : Timeseries.point) =
  Jsonx.Obj
    ([
       ("boundary", Jsonx.Int p.Timeseries.p_boundary);
       ("instructions", Jsonx.Int p.Timeseries.p_instructions);
     ]
    @ (match p.Timeseries.p_wall with
      | None -> []
      | Some w -> [ ("wall", Jsonx.Float w) ])
    @ [
        ( "counters",
          Jsonx.Obj
            (List.map (fun (k, v) -> (k, Jsonx.Int v)) p.Timeseries.p_counters)
        );
        ( "gauges",
          Jsonx.Obj
            (List.map (fun (k, v) -> (k, Jsonx.Int v)) p.Timeseries.p_gauges) );
        ( "histograms",
          Jsonx.Obj
            (List.map
               (fun (k, r) -> (k, hrow_to_json r))
               p.Timeseries.p_histograms) );
      ])

let timeseries_to_json (s : Timeseries.series) =
  Jsonx.Obj
    [
      ("schema_version", Jsonx.Int schema_version);
      ("period", Jsonx.Int s.Timeseries.s_period);
      ("intervals", Jsonx.Int s.Timeseries.s_intervals);
      ("dropped", Jsonx.Int s.Timeseries.s_dropped);
      ("fingerprint", Jsonx.String (Timeseries.fingerprint s));
      ("points", Jsonx.List (List.map point_to_json s.Timeseries.s_points));
    ]

let timeseries_to_csv (s : Timeseries.series) =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    "boundary,instructions,wall,kind,key,value,count,sum,max,p50,p90,p99\n";
  List.iter
    (fun (p : Timeseries.point) ->
      let wall =
        match p.Timeseries.p_wall with
        | None -> ""
        | Some w -> Printf.sprintf "%.6f" w
      in
      let row kind key tail =
        Buffer.add_string b
          (Printf.sprintf "%d,%d,%s,%s,%s,%s\n" p.Timeseries.p_boundary
             p.Timeseries.p_instructions wall kind (csv_cell key) tail)
      in
      List.iter
        (fun (k, v) -> row "counter" k (Printf.sprintf "%d,,,,,," v))
        p.Timeseries.p_counters;
      List.iter
        (fun (k, v) -> row "gauge" k (Printf.sprintf "%d,,,,,," v))
        p.Timeseries.p_gauges;
      List.iter
        (fun (k, (r : Timeseries.hrow)) ->
          row "histogram" k
            (Printf.sprintf ",%d,%d,%d,%s,%s,%s" r.Timeseries.hr_count
               r.Timeseries.hr_sum r.Timeseries.hr_max
               (float_cell (Timeseries.row_percentile r 0.5))
               (float_cell (Timeseries.row_percentile r 0.9))
               (float_cell (Timeseries.row_percentile r 0.99))))
        p.Timeseries.p_histograms)
    s.Timeseries.s_points;
  Buffer.contents b

(* ---------------- Chrome trace-event timeline ---------------- *)

(* Mapping conventions (documented in DESIGN.md §7):
     traceEvent pid  = vCPU id
     traceEvent tid  = guest pid of the process being charged
     ts              = guest cycle count, rendered as-is (1 cycle = 1 µs
                       in the viewer; displayTimeUnit only affects the
                       UI's default zoom label)
   Span_begin/Span_end become B/E duration events, view switches become
   zero-duration X events on the currently running thread, and UD2 traps
   become thread-scoped instant events.  Spans still open when the trace
   ends are closed at the last observed cycle so the stream stays
   balanced for any viewer. *)

let timeline_to_json ?(extra = []) t =
  let tev ?(args = []) ?dur ~name ~cat ~ph ~ts ~pid ~tid () =
    Jsonx.Obj
      ([
         ("name", Jsonx.String name);
         ("cat", Jsonx.String cat);
         ("ph", Jsonx.String ph);
         ("ts", Jsonx.Int ts);
         ("pid", Jsonx.Int pid);
         ("tid", Jsonx.Int tid);
       ]
      @ (match dur with None -> [] | Some d -> [ ("dur", Jsonx.Int d) ])
      @ (match ph with "i" -> [ ("s", Jsonx.String "t") ] | _ -> [])
      @ if args = [] then [] else [ ("args", Jsonx.Obj args) ])
  in
  let events = ref [] in
  let push e = events := e :: !events in
  (* per-vCPU stack of open spans: (sid, guest pid, label) *)
  let stacks : (int, (int * int * string) list) Hashtbl.t = Hashtbl.create 4 in
  let stack vid = Option.value ~default:[] (Hashtbl.find_opt stacks vid) in
  (* sid -> (vid, guest pid) so an E can be placed on the right track *)
  let sid_track : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
  let vids : (int, unit) Hashtbl.t = Hashtbl.create 4 in
  let threads : (int * int, string) Hashtbl.t = Hashtbl.create 16 in
  let note_track vid pid comm =
    Hashtbl.replace vids vid ();
    match Hashtbl.find_opt threads (vid, pid) with
    | Some existing when existing <> "" -> ()
    | _ -> Hashtbl.replace threads (vid, pid) comm
  in
  let last_cycle = ref 0 in
  List.iter
    (fun (r : Trace.record) ->
      let ts = r.Trace.cycle in
      if ts > !last_cycle then last_cycle := ts;
      match r.Trace.event with
      | Event.Span_begin { sid; parent; span; vid; pid; comm } ->
          note_track vid pid comm;
          Hashtbl.replace sid_track sid (vid, pid);
          Hashtbl.replace stacks vid ((sid, pid, span) :: stack vid);
          push
            (tev ~name:span ~cat:"span" ~ph:"B" ~ts ~pid:vid ~tid:pid
               ~args:
                 [
                   ("sid", Jsonx.Int sid);
                   ("parent", Jsonx.Int parent);
                   ("comm", Jsonx.String comm);
                 ]
               ())
      | Event.Span_end { sid; span } -> (
          match Hashtbl.find_opt sid_track sid with
          | None -> () (* orphan end: B fell out of the bounded ring *)
          | Some (vid, pid) ->
              Hashtbl.remove sid_track sid;
              Hashtbl.replace stacks vid
                (List.filter (fun (s, _, _) -> s <> sid) (stack vid));
              push (tev ~name:span ~cat:"span" ~ph:"E" ~ts ~pid:vid ~tid:pid ()))
      | Event.View_switch { vid; from_index; to_index; outcome } ->
          let tid = match stack vid with (_, pid, _) :: _ -> pid | [] -> 0 in
          push
            (tev ~name:"view_switch" ~cat:"switch" ~ph:"X" ~ts ~dur:0 ~pid:vid
               ~tid
               ~args:
                 [
                   ("from", Jsonx.Int from_index);
                   ("to", Jsonx.Int to_index);
                   ("outcome", Jsonx.String (Event.outcome_label outcome));
                 ]
               ())
      | Event.Ud2_trap { vid; eip; pid; comm } ->
          note_track vid pid comm;
          push
            (tev ~name:"ud2_trap" ~cat:"recovery" ~ph:"i" ~ts ~pid:vid ~tid:pid
               ~args:[ ("eip", Jsonx.Int eip) ]
               ())
      | Event.Fault_injected { fault; detail } ->
          push
            (tev ~name:"fault_injected" ~cat:"fault" ~ph:"i" ~ts ~pid:0 ~tid:0
               ~args:
                 [ ("fault", Jsonx.String fault); ("detail", Jsonx.String detail) ]
               ())
      | Event.Storm_detected { vid; comm; events = n; window } ->
          let tid = match stack vid with (_, pid, _) :: _ -> pid | [] -> 0 in
          push
            (tev ~name:"storm_detected" ~cat:"governor" ~ph:"i" ~ts ~pid:vid
               ~tid
               ~args:
                 [
                   ("comm", Jsonx.String comm);
                   ("events", Jsonx.Int n);
                   ("window", Jsonx.Int window);
                 ]
               ())
      | Event.Degraded { vid; comm; from_index; reason } ->
          let tid = match stack vid with (_, pid, _) :: _ -> pid | [] -> 0 in
          push
            (tev ~name:"degraded" ~cat:"governor" ~ph:"X" ~ts ~dur:0 ~pid:vid
               ~tid
               ~args:
                 [
                   ("comm", Jsonx.String comm);
                   ("from", Jsonx.Int from_index);
                   ("reason", Jsonx.String reason);
                 ]
               ())
      | Event.Renarrowed { vid; comm; to_index } ->
          let tid = match stack vid with (_, pid, _) :: _ -> pid | [] -> 0 in
          push
            (tev ~name:"renarrowed" ~cat:"governor" ~ph:"X" ~ts ~dur:0 ~pid:vid
               ~tid
               ~args:
                 [ ("comm", Jsonx.String comm); ("to", Jsonx.Int to_index) ]
               ())
      | Event.Quarantined { vid; comm; degradations } ->
          let tid = match stack vid with (_, pid, _) :: _ -> pid | [] -> 0 in
          push
            (tev ~name:"quarantined" ~cat:"governor" ~ph:"X" ~ts ~dur:0
               ~pid:vid ~tid
               ~args:
                 [
                   ("comm", Jsonx.String comm);
                   ("degradations", Jsonx.Int degradations);
                 ]
               ())
      | Event.Sample { vid; pid; comm; pc; view } ->
          note_track vid pid comm;
          push
            (tev ~name:"sample" ~cat:"profiler" ~ph:"i" ~ts ~pid:vid ~tid:pid
               ~args:
                 [
                   ("comm", Jsonx.String comm);
                   ("pc", Jsonx.Int pc);
                   ("view", Jsonx.Int view);
                 ]
               ())
      | _ -> ())
    (Trace.records t);
  (* close anything still open so every B has a matching E *)
  Hashtbl.iter
    (fun vid st ->
      List.iter
        (fun (sid, pid, span) ->
          Hashtbl.remove sid_track sid;
          push
            (tev ~name:span ~cat:"span" ~ph:"E" ~ts:!last_cycle ~pid:vid
               ~tid:pid ()))
        st)
    stacks;
  let meta =
    let vid_list =
      List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) vids [])
    in
    let thread_list =
      List.sort compare
        (Hashtbl.fold (fun k comm acc -> (k, comm) :: acc) threads [])
    in
    List.map
      (fun vid ->
        Jsonx.Obj
          [
            ("name", Jsonx.String "process_name");
            ("ph", Jsonx.String "M");
            ("pid", Jsonx.Int vid);
            ( "args",
              Jsonx.Obj
                [ ("name", Jsonx.String (Printf.sprintf "vcpu %d" vid)) ] );
          ])
      vid_list
    @ List.filter_map
        (fun ((vid, pid), comm) ->
          if comm = "" then None
          else
            Some
              (Jsonx.Obj
                 [
                   ("name", Jsonx.String "thread_name");
                   ("ph", Jsonx.String "M");
                   ("pid", Jsonx.Int vid);
                   ("tid", Jsonx.Int pid);
                   ("args", Jsonx.Obj [ ("name", Jsonx.String comm) ]);
                 ]))
        thread_list
  in
  Jsonx.Obj
    ([
       ("schema_version", Jsonx.Int schema_version);
       ("displayTimeUnit", Jsonx.String "ns");
       ("traceEvents", Jsonx.List (meta @ List.rev !events));
     ]
    @ extra)
