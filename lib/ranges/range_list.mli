(** Tagged kernel-code range lists — the paper's [K[app]].

    A range list is a set of half-open address spans, each tagged with the
    {!Segment.t} it belongs to.  The representation is always normalized:
    within a segment, spans are sorted, pairwise disjoint, and non-adjacent
    (adjacent spans are merged, matching the paper's "after merging any
    adjacent blocks" step).

    The paper's operators map as follows:
    - [K1 ∩ K2]        → {!inter}
    - [LEN(K)]         → {!len}
    - [SIZE(K)]        → {!size}
    - similarity [S]   → {!similarity} (Equation 1).

    Internally each segment's spans form an interval index (a sorted
    array); the point and window queries that dominate view
    materialization and recovery — {!mem} and {!covered_spans} — bisect in
    O(log n) rather than scanning. *)

type t

val empty : t
val is_empty : t -> bool

val add : t -> Segment.t -> Span.t -> t
(** Insert a span, merging with any overlapping or adjacent spans of the
    same segment. Empty spans are ignored. *)

val add_range : t -> Segment.t -> lo:int -> hi:int -> t
(** [add_range t seg ~lo ~hi] = [add t seg (Span.make ~lo ~hi)]. *)

val of_list : (Segment.t * Span.t) list -> t
val to_list : t -> (Segment.t * Span.t) list
(** Deterministic order: segments ordered by {!Segment.compare}, spans by
    address. *)

val segments : t -> Segment.t list
val spans : t -> Segment.t -> Span.t list
(** Spans recorded for one segment (empty list if none). *)

val mem : t -> Segment.t -> int -> bool
(** [mem t seg addr] — is [addr] covered under [seg]?  O(log n). *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
(** [diff a b] — parts of [a] not covered by [b]. *)

val len : t -> int
(** [LEN]: number of (segment, span) elements. *)

val size : t -> int
(** [SIZE]: total number of addresses covered, across all segments. *)

val size_of_segment : t -> Segment.t -> int

val similarity : t -> t -> float
(** Equation 1: [SIZE(K1 ∩ K2) / MAX(SIZE(K1), SIZE(K2))].
    Returns [0.] when both lists are empty. *)

val subset : t -> t -> bool
(** [subset a b] — every address of [a] is covered by [b]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val covered_spans : t -> Segment.t -> Span.t -> Span.t list
(** [covered_spans t seg window] — the parts of [window] covered by [t]
    under [seg], in address order.  O(log n + answer). *)
