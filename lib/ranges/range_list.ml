module Seg_map = Map.Make (Segment)

(* Invariant: each segment maps to a non-empty sorted array of non-empty,
   pairwise disjoint, non-adjacent spans — an interval index.  Keeping the
   spans in a sorted array lets the hot queries of view materialization
   and recovery ([mem], [covered_spans]) bisect in O(log n) instead of
   scanning the whole list. *)
type t = Span.t array Seg_map.t

let empty = Seg_map.empty
let is_empty = Seg_map.is_empty

(* Leftmost index whose span ends after [addr]: the unique candidate that
   can contain [addr], and the first span a window starting at [addr] can
   intersect.  [Array.length arr] when every span ends at or before
   [addr]. *)
let bisect_hi_gt (arr : Span.t array) addr =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if arr.(mid).Span.hi > addr then hi := mid else lo := mid + 1
  done;
  !lo

(* Insert [s] into sorted disjoint non-adjacent [arr], merging overlaps
   and adjacencies.  O(log n) to locate the affected window, O(n) for the
   rebuilt array. *)
let insert_span (arr : Span.t array) (s : Span.t) =
  let n = Array.length arr in
  (* first span that can merge with [s]: ends at or after s.lo *)
  let i = bisect_hi_gt arr (s.Span.lo - 1) in
  let merged = ref s and j = ref i in
  while !j < n && arr.(!j).Span.lo <= !merged.Span.hi do
    merged := Span.hull !merged arr.(!j);
    incr j
  done;
  let j = !j in
  let out = Array.make (n - (j - i) + 1) !merged in
  Array.blit arr 0 out 0 i;
  Array.blit arr j out (i + 1) (n - j);
  out

let add t seg s =
  if Span.is_empty s then t
  else
    Seg_map.update seg
      (function None -> Some [| s |] | Some arr -> Some (insert_span arr s))
      t

let add_range t seg ~lo ~hi = add t seg (Span.make ~lo ~hi)
let of_list l = List.fold_left (fun t (seg, s) -> add t seg s) empty l

let to_list t =
  Seg_map.fold
    (fun seg arr acc -> List.map (fun s -> (seg, s)) (Array.to_list arr) :: acc)
    t []
  |> List.rev |> List.concat

let segments t = Seg_map.fold (fun seg _ acc -> seg :: acc) t [] |> List.rev
let spans t seg = Option.value ~default:[] (Option.map Array.to_list (Seg_map.find_opt seg t))

let mem t seg addr =
  match Seg_map.find_opt seg t with
  | None -> false
  | Some arr ->
      let i = bisect_hi_gt arr addr in
      i < Array.length arr && Span.contains arr.(i) addr

let covered_spans t seg (window : Span.t) =
  match Seg_map.find_opt seg t with
  | None -> []
  | Some arr ->
      let n = Array.length arr in
      let i = ref (bisect_hi_gt arr window.Span.lo) in
      let acc = ref [] in
      while !i < n && arr.(!i).Span.lo < window.Span.hi do
        (match Span.inter arr.(!i) window with
        | Some s -> acc := s :: !acc
        | None -> ());
        incr i
      done;
      List.rev !acc

let union a b =
  Seg_map.fold
    (fun seg arr t -> Array.fold_left (fun t s -> add t seg s) t arr)
    b a

let inter_spans xs ys =
  let rec go acc xs ys =
    match (xs, ys) with
    | [], _ | _, [] -> List.rev acc
    | (x : Span.t) :: xr, (y : Span.t) :: yr ->
        let acc = match Span.inter x y with Some s -> s :: acc | None -> acc in
        if x.hi <= y.hi then go acc xr ys else go acc xs yr
  in
  go [] xs ys

let inter a b =
  Seg_map.merge
    (fun _seg xa xb ->
      match (xa, xb) with
      | Some xs, Some ys -> (
          match inter_spans (Array.to_list xs) (Array.to_list ys) with
          | [] -> None
          | l -> Some (Array.of_list l))
      | _ -> None)
    a b

(* Subtract sorted disjoint [ys] from span [x]. *)
let diff_span (x : Span.t) ys =
  let rec go acc lo = function
    | [] -> if lo < x.hi then Span.make ~lo ~hi:x.hi :: acc else acc
    | (y : Span.t) :: yr ->
        if y.hi <= lo then go acc lo yr
        else if y.lo >= x.hi then go acc lo []
        else
          let acc = if y.lo > lo then Span.make ~lo ~hi:y.lo :: acc else acc in
          if y.hi < x.hi then go acc y.hi yr else acc
  in
  List.rev (go [] x.lo ys)

let diff a b =
  Seg_map.merge
    (fun _seg xa xb ->
      match (xa, xb) with
      | Some xs, Some ys -> (
          let ys = Array.to_list ys in
          match List.concat_map (fun x -> diff_span x ys) (Array.to_list xs) with
          | [] -> None
          | l -> Some (Array.of_list l))
      | Some xs, None -> Some xs
      | None, _ -> None)
    a b

let len t = Seg_map.fold (fun _ arr n -> n + Array.length arr) t 0

let size t =
  Seg_map.fold
    (fun _ arr n -> Array.fold_left (fun n s -> n + Span.size s) n arr)
    t 0

let size_of_segment t seg = List.fold_left (fun n s -> n + Span.size s) 0 (spans t seg)

let similarity a b =
  let m = max (size a) (size b) in
  if m = 0 then 0. else float_of_int (size (inter a b)) /. float_of_int m

let subset a b = is_empty (diff a b)

let equal a b =
  Seg_map.equal
    (fun xs ys ->
      Array.length xs = Array.length ys
      && Array.for_all2 Span.equal xs ys)
    a b

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (seg, s) -> Format.fprintf ppf "%a %a@," Segment.pp seg Span.pp s)
    (to_list t);
  Format.fprintf ppf "@]"
