type t = { domains : int }

let parallel = Backend.parallel

let create ?domains () =
  let domains =
    match domains with Some d -> d | None -> Backend.default_workers ()
  in
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  { domains }

let domains t = t.domains

let map t n f =
  if n < 0 then invalid_arg "Pool.map: negative count";
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let workers = max 1 (min t.domains n) in
    (* strided shards: worker w owns indices w, w+workers, w+2*workers...
       Each slot is written by exactly one worker; Backend.run joins every
       worker before returning, which orders those writes before our
       reads. *)
    Backend.run ~workers (fun w ->
        let i = ref w in
        while !i < n do
          results.(!i) <- Some (f !i);
          i := !i + workers
        done);
    Array.map
      (function
        | Some v -> v
        | None -> failwith "Pool.map: unfilled slot (backend bug)")
      results
  end

let iter t n f = ignore (map t n f : unit array)
