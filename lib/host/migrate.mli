(** Live guest migration: iterative pre-copy over the dirty-page tracker,
    then stop-and-copy through the snapshot wire format.

    The page-granular dirty log is {!Fc_mem.Phys_mem.versions_snapshot}
    deltas — a page is dirty between two instants iff its version moved
    (allocation bumps versions, so freshly mapped pages count too).
    Iteration 1 ships every live page; each later iteration lets the
    guest run [window_rounds] scheduler rounds and ships only what it
    dirtied.  The final dirty set rides inside the [.fcsnap] container,
    which is encoded, decoded and restored — the destination only ever
    sees bytes that crossed the wire, so every migration also exercises
    the format end to end.

    Downtime is a deterministic cycle cost model (quiesce + per-page copy
    + per-KiB wire charge), recorded by the bench arm and never pinned by
    the gate; the pinned counters are the page/byte/round numbers, which
    are exact for a seeded guest. *)

type guest = {
  g_os : Fc_machine.Os.t;
  g_hyp : Fc_hypervisor.Hypervisor.t option;
  g_fc : Fc_core.Facechange.t option;
  g_inj : Fc_faults.Injector.t option;
}

type round_stat = {
  mr_round : int;  (** guest scheduler round when this copy ran *)
  mr_pages : int;
  mr_bytes : int;
}

type report = {
  m_precopy : round_stat list;  (** one entry per pre-copy iteration *)
  m_rounds_run : int;  (** scheduler rounds executed during pre-copy *)
  m_pages_total : int;  (** live frames at stop-and-copy *)
  m_final_dirty : int;  (** pages shipped during the blackout *)
  m_pages_copied : int;  (** total shipped, pre-copy + final *)
  m_bytes_copied : int;
  m_snapshot_bytes : int;  (** the [.fcsnap] container size *)
  m_downtime_cycles : int;  (** cost model — never gated *)
}

val downtime : final_dirty:int -> snapshot_bytes:int -> int
(** The stop-and-copy cost model, exposed so benches can tabulate
    downtime against pre-copy round counts without running a guest. *)

val migrate :
  ?obs:Fc_obs.Obs.t ->
  ?image:Fc_kernel.Image.t ->
  ?precopy_rounds:int ->
  window_rounds:int ->
  guest ->
  guest * report
(** Move [guest] to a fresh machine (its own metrics registry unless
    [obs] shares one) — in the fleet bench, from one pool shard to
    another.  [precopy_rounds] (default 3, min 1) counts copy
    iterations including the initial full copy; the source's injector is
    disarmed and re-armed on the destination from its cursor.  The
    source guest is left stopped; resume the destination with
    {!Fc_machine.Os.run}.  Raises [Failure] if the wire bytes fail to
    decode (cannot happen short of memory corruption) and propagates
    guest panics from the pre-copy windows. *)
