module Stats = Fc_core.Stats
module Timeseries = Fc_obs.Timeseries
module Sampler = Fc_obs.Sampler

type telemetry = {
  t_series : Timeseries.series;
  t_folds : Sampler.fold list;
  t_samples : int;
}

type guest = {
  g_index : int;
  g_app : string;
  g_outcome : string;
  g_stats : Stats.t;
  g_instructions : int;
  g_cycles : int;
  g_frame_keys : string list;
  g_telemetry : telemetry option;
  g_digest : string;
}

(* Integer counters and content keys only: wall-clock and derived floats
   never enter a digest, so fingerprints compare exactly across domain
   counts, runs, and platforms. *)
let digest_of ~app ~outcome ~stats ~instructions ~cycles ~frame_keys =
  let b = Buffer.create 1024 in
  let add_kv (k, v) =
    Buffer.add_string b k;
    Buffer.add_char b '=';
    Buffer.add_string b (string_of_int v);
    Buffer.add_char b ';'
  in
  Buffer.add_string b app;
  Buffer.add_char b '\n';
  Buffer.add_string b outcome;
  Buffer.add_char b '\n';
  List.iter add_kv (Stats.fields stats);
  List.iter
    (fun (comm, a) ->
      Buffer.add_string b comm;
      Buffer.add_char b ':';
      List.iter add_kv (Stats.per_app_fields a))
    stats.Stats.per_app;
  add_kv ("instructions", instructions);
  add_kv ("cycles", cycles);
  List.iter
    (fun k ->
      Buffer.add_string b k;
      Buffer.add_char b ',')
    frame_keys;
  Digest.to_hex (Digest.string (Buffer.contents b))

let guest ?telemetry ~index ~app ~outcome ~stats ~instructions ~cycles
    ~frame_keys () =
  {
    g_index = index;
    g_app = app;
    g_outcome = outcome;
    g_stats = stats;
    g_instructions = instructions;
    g_cycles = cycles;
    g_frame_keys = frame_keys;
    g_telemetry = telemetry;
    (* telemetry never enters the digest: the same seed must fingerprint
       identically with the profiler armed or disarmed *)
    g_digest =
      digest_of ~app ~outcome ~stats ~instructions ~cycles ~frame_keys;
  }

type report = {
  r_domains : int;
  r_guests : int;
  r_seconds : float;
  r_ips : float;
  r_instructions : int;
  r_cycles : int;
  r_merged : Stats.t;
  r_outcomes : (string * int) list;
  r_panics : int;
  r_wedged : int;
  r_total_frames : int;
  r_unique_frames : int;
  r_dedup_ratio : float;
  r_per_app_ok : bool;
  r_fingerprint : string;
  r_telemetry : telemetry option;
  r_guests_detail : guest array;
}

(* Telemetry merges like Stats does: aligned interval union through
   Timeseries.merge, per-stack fold through Sampler.merge.  Both operate
   on plain data folded after the pool joins, so the merged result is
   independent of the domain count. *)
let merge_telemetry guests =
  let ts =
    Array.to_list guests |> List.filter_map (fun g -> g.g_telemetry)
  in
  match ts with
  | [] -> None
  | _ ->
      Some
        {
          t_series = Timeseries.merge (List.map (fun t -> t.t_series) ts);
          t_folds = Sampler.merge (List.map (fun t -> t.t_folds) ts);
          t_samples = List.fold_left (fun a t -> a + t.t_samples) 0 ts;
        }

let merge ~domains ~seconds guests =
  let sum f = Array.fold_left (fun acc g -> acc + f g) 0 guests in
  let instructions = sum (fun g -> g.g_instructions) in
  let cycles = sum (fun g -> g.g_cycles) in
  let merged = Stats.merge (List.map (fun g -> g.g_stats) (Array.to_list guests)) in
  let outcomes =
    let tbl = Hashtbl.create 8 in
    Array.iter
      (fun g ->
        Hashtbl.replace tbl g.g_outcome
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl g.g_outcome)))
      guests;
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  let total_frames = sum (fun g -> List.length g.g_frame_keys) in
  let unique_frames =
    let seen = Hashtbl.create 1024 in
    Array.iter
      (fun g -> List.iter (fun k -> Hashtbl.replace seen k ()) g.g_frame_keys)
      guests;
    Hashtbl.length seen
  in
  let dedup_ratio =
    if total_frames = 0 then 0.
    else 1. -. (float_of_int unique_frames /. float_of_int total_frames)
  in
  let fingerprint =
    let b = Buffer.create (Array.length guests * 33) in
    Array.iter
      (fun g ->
        Buffer.add_string b g.g_digest;
        Buffer.add_char b '\n')
      guests;
    Digest.to_hex (Digest.string (Buffer.contents b))
  in
  let count_outcome p =
    Array.fold_left (fun acc g -> if p g.g_outcome then acc + 1 else acc) 0 guests
  in
  let starts_with ~prefix s =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  in
  {
    r_domains = domains;
    r_guests = Array.length guests;
    r_seconds = seconds;
    r_ips =
      (if seconds <= 0. then 0. else float_of_int instructions /. seconds);
    r_instructions = instructions;
    r_cycles = cycles;
    r_merged = merged;
    r_outcomes = outcomes;
    r_panics = count_outcome (starts_with ~prefix:"panic");
    r_wedged = count_outcome (String.equal "wedged");
    r_total_frames = total_frames;
    r_unique_frames = unique_frames;
    r_dedup_ratio = dedup_ratio;
    r_per_app_ok = Stats.attribution_ok merged;
    r_fingerprint = fingerprint;
    r_telemetry = merge_telemetry guests;
    r_guests_detail = guests;
  }

let run ?domains ~guests f =
  let pool = Pool.create ?domains () in
  let t0 = Unix.gettimeofday () in
  let results = Pool.map pool guests f in
  let seconds = Unix.gettimeofday () -. t0 in
  Array.iteri
    (fun i g ->
      if g.g_index <> i then
        failwith
          (Printf.sprintf "Fleet.run: guest %d reported index %d" i g.g_index))
    results;
  merge ~domains:(Pool.domains pool) ~seconds results
