(** The fleet host: shard N independent guest VMs across domains and
    merge what they report.

    Each guest is a self-contained simulation (its own [Os], physical
    memory, observability hub, hypervisor and FACE-CHANGE instance), so
    the domain-safety strategy is {e per-domain state, merge on export}:
    nothing mutable is shared between workers, and every cross-guest
    aggregate — the merged {!Fc_core.Stats}, the fleet-wide frame-dedup
    ratio, the fleet fingerprint — is computed after the pool has joined,
    folding per-guest results in index order.  Because a guest's result
    depends only on its index (callers derive per-guest PRNG seeds from
    the index, see {!Fc_faults.Frand.mix}), the merged report is
    bit-identical for 1 domain and N domains, which
    [bench/check.exe --fleet] and [test/test_fleet.ml] enforce. *)

type telemetry = {
  t_series : Fc_obs.Timeseries.series;
      (** delta-encoded interval series (merged: aligned by nominal
          boundary index, summed per key) *)
  t_folds : Fc_obs.Sampler.fold list;
      (** collapsed profiler stacks (merged: counts summed per stack) *)
  t_samples : int;  (** profiler samples recorded (= sum of fold counts) *)
}

type guest = {
  g_index : int;
  g_app : string;  (** the profiled application this guest ran *)
  g_outcome : string;  (** ["ok"], ["wedged"], or ["panic: ..."] *)
  g_stats : Fc_core.Stats.t;
  g_instructions : int;  (** guest instructions retired *)
  g_cycles : int;
  g_frame_keys : string list;
      (** content keys of the resident view frames
          ({!Fc_mem.Frame_cache.resident_keys}) — the fleet's cross-guest
          dedup unit *)
  g_telemetry : telemetry option;
      (** per-guest time series + profiler folds when the run was
          telemetry-armed; plain data, safe to move across Domains *)
  g_digest : string;
      (** deterministic per-guest fingerprint (integer counters and
          content keys only — no wall-clock, no floats, no telemetry, so
          armed and disarmed runs of the same seed fingerprint
          identically) *)
}

val guest :
  ?telemetry:telemetry ->
  index:int ->
  app:string ->
  outcome:string ->
  stats:Fc_core.Stats.t ->
  instructions:int ->
  cycles:int ->
  frame_keys:string list ->
  unit ->
  guest
(** Build a guest record, computing [g_digest] from the non-telemetry
    fields. *)

type report = {
  r_domains : int;  (** workers requested (1 on the 4.14 fallback) *)
  r_guests : int;
  r_seconds : float;  (** wall clock for the whole sharded run *)
  r_ips : float;  (** aggregate guest instructions per second *)
  r_instructions : int;
  r_cycles : int;
  r_merged : Fc_core.Stats.t;  (** {!Fc_core.Stats.merge} of every guest *)
  r_outcomes : (string * int) list;  (** outcome -> count, sorted *)
  r_panics : int;
  r_wedged : int;
  r_total_frames : int;
      (** resident view frames summed over guests (each guest's are
          already deduped by its own frame cache) *)
  r_unique_frames : int;  (** distinct frame contents fleet-wide *)
  r_dedup_ratio : float;
      (** [1 - unique/total] — the fraction of resident frames a
          cross-guest content-keyed cache would not have to materialize;
          [0.] for an empty fleet *)
  r_per_app_ok : bool;
      (** merged per-app attribution still sums to the merged globals *)
  r_fingerprint : string;
      (** digest of every guest digest, folded in index order —
          independent of domain count by construction *)
  r_telemetry : telemetry option;
      (** fleet-wide merge of every telemetry-armed guest's series and
          folds ({!Fc_obs.Timeseries.merge} / {!Fc_obs.Sampler.merge});
          [None] when no guest carried telemetry *)
  r_guests_detail : guest array;  (** in index order *)
}

val run : ?domains:int -> guests:int -> (int -> guest) -> report
(** Shard [guests] jobs across a {!Pool} of [domains] workers (default
    {!Pool.create}'s default) and merge.  The job for index [i] must
    depend only on [i] for the determinism guarantee to hold. *)

val merge : domains:int -> seconds:float -> guest array -> report
(** The export-side merge alone — exposed for tests that build guest
    records by hand. *)
