module Os = Fc_machine.Os
module Hyp = Fc_hypervisor.Hypervisor
module Facechange = Fc_core.Facechange
module Injector = Fc_faults.Injector
module Phys = Fc_mem.Phys_mem
module Snapshot = Fc_snapshot.Snapshot

type guest = {
  g_os : Os.t;
  g_hyp : Hyp.t option;
  g_fc : Facechange.t option;
  g_inj : Injector.t option;
}

type round_stat = { mr_round : int; mr_pages : int; mr_bytes : int }

type report = {
  m_precopy : round_stat list;
  m_rounds_run : int;
  m_pages_total : int;
  m_final_dirty : int;
  m_pages_copied : int;
  m_bytes_copied : int;
  m_snapshot_bytes : int;
  m_downtime_cycles : int;
}

(* Count live frames whose version moved since [prev] (frames allocated
   since then read as dirty: their slot is missing from [prev], and
   allocation bumps the version anyway). *)
let dirty_since ~prev phys =
  let cur = Phys.versions_snapshot phys in
  let n = Array.length cur in
  let prev_len = Array.length prev in
  let dirty = ref 0 in
  for f = 0 to n - 1 do
    if Phys.is_live phys f && (f >= prev_len || cur.(f) <> prev.(f)) then
      incr dirty
  done;
  (!dirty, cur)

let page_size = Phys.page_size

(* The stop-and-copy cost model: a fixed pause to quiesce the vCPUs and
   swap EPT roots, plus a per-page charge for the final dirty set, plus a
   per-KiB charge for shipping the device/register snapshot.  Entirely
   deterministic in its integer inputs — the bench records it, the gate
   never pins it (the model's constants are tuning knobs, not behavior). *)
let quiesce_cycles = 25_000
let copy_cycles_per_page = 600
let wire_cycles_per_kib = 40

let downtime ~final_dirty ~snapshot_bytes =
  quiesce_cycles
  + (copy_cycles_per_page * final_dirty)
  + (wire_cycles_per_kib * ((snapshot_bytes + 1023) / 1024))

let migrate ?obs ?image ?(precopy_rounds = 3) ~window_rounds src =
  if precopy_rounds < 1 then
    invalid_arg "Migrate.migrate: precopy_rounds must be >= 1";
  if window_rounds < 1 then
    invalid_arg "Migrate.migrate: window_rounds must be >= 1";
  let os = src.g_os in
  let phys = Os.phys os in
  let start_round = Os.round os in
  (* Iteration 1 ships every live page; each later iteration lets the
     guest run [window_rounds] scheduler rounds, then ships only the
     pages dirtied meanwhile. *)
  let precopy = ref [] in
  let copied_pages = ref 0 in
  let copied_bytes = ref 0 in
  let note ~round pages =
    precopy := { mr_round = round; mr_pages = pages; mr_bytes = pages * page_size }
                :: !precopy;
    copied_pages := !copied_pages + pages;
    copied_bytes := !copied_bytes + (pages * page_size)
  in
  let versions = ref (Phys.versions_snapshot phys) in
  note ~round:(Os.round os) (Phys.live_frames phys);
  for _ = 2 to precopy_rounds do
    let stop_at = Os.round os + window_rounds in
    Os.run ~until:(fun t -> Os.round t >= stop_at) os;
    let dirty, cur = dirty_since ~prev:!versions phys in
    versions := cur;
    note ~round:(Os.round os) dirty
  done;
  (* Stop-and-copy: the source is already quiescent at a round boundary
     (Os.run returns nowhere else), so freeze it, ship the container,
     and resume on the destination. *)
  let final_dirty, _ = dirty_since ~prev:!versions phys in
  copied_pages := !copied_pages + final_dirty;
  copied_bytes := !copied_bytes + (final_dirty * page_size);
  let cursor =
    Option.map (fun inj -> Injector.cursor inj ~position:(Os.round os)) src.g_inj
  in
  let snap =
    Snapshot.capture
      ~meta:[ ("kind", "migration"); ("round", string_of_int (Os.round os)) ]
      ?cursor ?fc:src.g_fc ?hyp:src.g_hyp os
  in
  let wire = Snapshot.encode snap in
  (* decode the wire bytes rather than reusing [snap]: the destination
     only ever sees what actually crossed the wire *)
  let received =
    match Snapshot.decode wire with
    | Ok s -> s
    | Error e ->
        failwith ("Migrate.migrate: wire corruption: " ^ Snapshot.error_to_string e)
  in
  Option.iter Injector.disarm src.g_inj;
  let r = Snapshot.restore ?obs ?image received in
  let dst =
    {
      g_os = r.Snapshot.r_os;
      g_hyp = r.Snapshot.r_hyp;
      g_fc = r.Snapshot.r_fc;
      g_inj = r.Snapshot.r_inj;
    }
  in
  let report =
    {
      m_precopy = List.rev !precopy;
      m_rounds_run = Os.round os - start_round;
      m_pages_total = Phys.live_frames phys;
      m_final_dirty = final_dirty;
      m_pages_copied = !copied_pages;
      m_bytes_copied = !copied_bytes;
      m_snapshot_bytes = String.length wire;
      m_downtime_cycles =
        downtime ~final_dirty ~snapshot_bytes:(String.length wire);
    }
  in
  (dst, report)
