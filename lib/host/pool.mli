(** A static shard pool over OCaml 5 domains (sequential on 4.14).

    The fleet host's unit of parallelism: [map] runs an indexed job over
    [0 .. n-1], sharding indices across workers by stride ([worker w]
    takes every [workers]-th index starting at [w]).  Each result slot is
    written by exactly one worker and read only after every worker has
    joined, so no locking is involved; when each job depends only on its
    own index, the results — and anything merged from them in index
    order — are identical for any worker count.  That invariant is what
    the fleet determinism gate ([bench/check.exe --fleet]) enforces
    end-to-end. *)

type t

val parallel : bool
(** [true] when the build selected the Domains backend (OCaml >= 5.0),
    [false] on the sequential 4.14 fallback. *)

val create : ?domains:int -> unit -> t
(** A pool that will use up to [domains] workers per [map] (default: the
    runtime's recommended domain count, capped at 8; always 1 on the
    sequential backend).  Workers are spawned per call and joined before
    it returns — the pool holds no threads between calls.
    @raise Invalid_argument when [domains < 1]. *)

val domains : t -> int

val map : t -> int -> (int -> 'a) -> 'a array
(** [map t n f] — [[| f 0; ...; f (n-1) |]], computed with up to
    [domains t] workers.  A raising job fails the whole map (after all
    workers joined).  [n = 0] yields [[||]]. *)

val iter : t -> int -> (int -> unit) -> unit
