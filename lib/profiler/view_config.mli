(** Kernel view configuration files.

    The profiling phase's output: the application name and its recorded
    kernel-code range list [K[app]].  Base-kernel ranges hold absolute
    guest-virtual addresses; module ranges are {e relative to the module
    base} (modules relocate between profiling and runtime, §III-A1).

    The on-disk format is line-oriented text:
    {v
    # facechange kernel view
    app top
    base 0xc0100000 0xc0100040
    module:kvmclock 0x0 0x60
    v} *)

type t = { app : string; ranges : Fc_ranges.Range_list.t }

val make : app:string -> Fc_ranges.Range_list.t -> t

val union : app:string -> t list -> t
(** The paper's "union kernel view": the union of several configurations,
    representing traditional system-wide minimization. *)

val size : t -> int
val len : t -> int
val similarity : t -> t -> float

val to_string : t -> string

val of_string : string -> (t, string) result
(** Parse and {e validate}.  Beyond syntax, spans are checked per
    segment: a negative bound, a [hi < lo] range, an out-of-order span
    (starting before the previous span of the same segment), or an
    overlap with the previous span is an [Error] naming the offending
    line — they are not silently normalized into the range list, because
    a corrupted config that still "parses" would materialize a wrong
    view.  Adjacent spans ([lo] = previous [hi]) are accepted, so
    {!to_string} output always round-trips. *)

val save : t -> string -> unit
val load : string -> (t, string) result
