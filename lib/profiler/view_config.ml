module Range_list = Fc_ranges.Range_list
module Segment = Fc_ranges.Segment
module Span = Fc_ranges.Span

type t = { app : string; ranges : Range_list.t }

let make ~app ranges = { app; ranges }

let union ~app configs =
  { app; ranges = List.fold_left (fun acc c -> Range_list.union acc c.ranges) Range_list.empty configs }

let size t = Range_list.size t.ranges
let len t = Range_list.len t.ranges
let similarity a b = Range_list.similarity a.ranges b.ranges

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "# facechange kernel view\n";
  Buffer.add_string buf ("app " ^ t.app ^ "\n");
  List.iter
    (fun (seg, (s : Span.t)) ->
      Buffer.add_string buf
        (Printf.sprintf "%s 0x%x 0x%x\n" (Segment.to_string seg) s.Span.lo s.Span.hi))
    (Range_list.to_list t.ranges);
  Buffer.contents buf

let of_string text =
  let lines = String.split_on_char '\n' text in
  let app = ref None and ranges = ref Range_list.empty in
  let err = ref None in
  (* Malformed spans must be rejected here, not silently normalized away
     by Range_list's interval merging: a truncated or corrupted config
     that still parses would materialize a wrong view.  Spans are
     validated per segment: in file order, non-negative, and disjoint
     (adjacent is fine). *)
  let last : (string, int * int) Hashtbl.t = Hashtbl.create 8 in
  List.iteri
    (fun i line ->
      let line = String.trim line in
      if !err = None && line <> "" && not (String.length line > 0 && line.[0] = '#') then
        match String.split_on_char ' ' line with
        | [ "app"; name ] -> app := Some name
        | [ seg; lo; hi ] -> (
            match
              (Segment.of_string seg, int_of_string_opt lo, int_of_string_opt hi)
            with
            | segment, Some lo, Some hi -> (
                if lo < 0 || hi < 0 then
                  err :=
                    Some
                      (Printf.sprintf "line %d: negative span 0x%x 0x%x" (i + 1) lo hi)
                else if hi < lo then
                  err := Some (Printf.sprintf "line %d: bad range" (i + 1))
                else
                  match Hashtbl.find_opt last seg with
                  | Some (prev_lo, _) when lo < prev_lo ->
                      err :=
                        Some
                          (Printf.sprintf
                             "line %d: out-of-order span 0x%x (previous span starts at 0x%x)"
                             (i + 1) lo prev_lo)
                  | Some (_, prev_hi) when lo < prev_hi ->
                      err :=
                        Some
                          (Printf.sprintf
                             "line %d: overlapping span 0x%x (previous span ends at 0x%x)"
                             (i + 1) lo prev_hi)
                  | Some _ | None ->
                      Hashtbl.replace last seg (lo, hi);
                      ranges := Range_list.add_range !ranges segment ~lo ~hi)
            | _ -> err := Some (Printf.sprintf "line %d: bad range" (i + 1))
            | exception Invalid_argument _ ->
                err := Some (Printf.sprintf "line %d: bad segment" (i + 1)))
        | _ -> err := Some (Printf.sprintf "line %d: unparseable" (i + 1)))
    lines;
  match (!err, !app) with
  | Some e, _ -> Error e
  | None, None -> Error "missing 'app' line"
  | None, Some app -> Ok { app; ranges = !ranges }

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error e -> Error e
