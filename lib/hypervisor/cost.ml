let vm_exit = 2500
let breakpoint_handler = 1200
let invalid_opcode_handler = 1500
let ept_dir_switch = 150
let backtrace_frame = 60
let code_copy_per_16_bytes = 4
let view_page_init = 250
let code_copy ~bytes = bytes / 16 * code_copy_per_16_bytes

(* Deliberately free: sharing must be behavior-invisible.  Cycles drive
   timer interrupts and therefore scheduling, so charging anything here
   would make recovery sequences diverge between a shared and an
   unshared build of the same views. *)
let cow_break = 0
