module Os = Fc_machine.Os
module Cpu = Fc_machine.Cpu
module Process = Fc_machine.Process
module Layout = Fc_kernel.Layout
module Image = Fc_kernel.Image
module Symbols = Fc_kernel.Symbols
module Catalog = Fc_kernel.Catalog

module Obs = Fc_obs.Obs
module Metrics = Fc_obs.Metrics
module Event = Fc_obs.Event

type t = {
  os : Os.t;
  obs : Obs.t;
  original_tables : (int, Fc_mem.Ept.table) Hashtbl.t;
  frame_cache : Fc_mem.Frame_cache.t;
  mutable symbols : Symbols.t;
  mutable visible_modules : (string * int * int) list;
  mutable bp_handlers : (t -> Cpu.regs -> int -> unit) list;
  mutable io_handler : t -> Cpu.regs -> [ `Handled | `Unhandled of string ];
  breakpoint_exits : Metrics.counter;
  invalid_opcode_exits : Metrics.counter;
  cycles_charged : Metrics.counter;
  charge_cycles : Metrics.histogram;
  app_cycles : Metrics.family; (* hyp.cycles_charged{comm} *)
  mutable app_memo : (string * Metrics.counter) option;
      (* last (comm, member) resolved from [app_cycles]: charge bursts
         come from one current task, so one cached pair removes the
         family lookup from the hot path *)
}

let os t = t.os
let obs t = t.obs
let frame_cache t = t.frame_cache

let app_counter t =
  let comm = (Os.current t.os).Process.name in
  match t.app_memo with
  | Some (c, counter) when String.equal c comm -> counter
  | _ ->
      let counter = Metrics.family_counter t.app_cycles comm in
      t.app_memo <- Some (comm, counter);
      counter

let charge t n =
  Metrics.add t.cycles_charged n;
  Metrics.add (app_counter t) n;
  Metrics.observe t.charge_cycles n;
  Os.add_cycles t.os n

(* Open a span attributed to the current task; returns Span.none (and
   allocates nothing) when the trace is disarmed. *)
let span_enter t kind =
  if Obs.armed t.obs then begin
    let cur = Os.current t.os in
    Fc_obs.Span.enter (Obs.spans t.obs) ~vid:(Os.active_vcpu_id t.os)
      ~pid:cur.Process.pid ~comm:cur.Process.name kind
  end
  else Fc_obs.Span.none

let span_exit t sid = Fc_obs.Span.exit (Obs.spans t.obs) sid

let set_breakpoint t a = Os.set_trap t.os a
let clear_breakpoint t a = Os.clear_trap t.os a
let has_breakpoint t a = List.mem a (Os.trap_addresses t.os)
let breakpoint_exits t = Metrics.value t.breakpoint_exits
let invalid_opcode_exits t = Metrics.value t.invalid_opcode_exits
let vm_exits t = breakpoint_exits t + invalid_opcode_exits t
let cycles_charged t = Metrics.value t.cycles_charged
let on_breakpoint t f = t.bp_handlers <- t.bp_handlers @ [ f ]
let on_invalid_opcode t f = t.io_handler <- f
let current_task t = Os.vmi_current_task t.os
let module_list t = Os.vmi_module_list t.os
let read_guest_byte t a = Os.read_guest_byte t.os a
let read_guest_u32 t a = Os.read_guest_u32 t.os a
let read_original_code t a = Os.read_guest_byte t.os a
let read_active_code t a = Os.fetch_code t.os a
let original_frame t ~gpa_page = Os.ram_frame t.os ~gpa_page
let original_table t ~dir = Hashtbl.find_opt t.original_tables dir

type walk = { frames : int list; broken : string option }

(* The frame-chain logic shared by the charged recovery walk and the
   telemetry sampler's free walk.  [on_frame] is the per-frame cost hook:
   the recovery path charges Cost.backtrace_frame through it (advancing
   guest time and perturbing timer IRQs — correct for a walk the
   hypervisor really performs), while the sampler passes a no-op so
   profiling stays behavior-invisible. *)
let walk_impl t ~on_frame ~eip ~ebp ~esp ~max_depth =
  let broken = ref None in
  let stop reason acc =
    broken := Some reason;
    List.rev acc
  in
  (* the stack grows down, so a well-formed chain is strictly increasing;
     any cycle must contain a non-increasing link, which bounds the walk
     without remembering visited frames *)
  let rec go acc ebp depth =
    if ebp = 0 then List.rev acc
    else if not (Layout.is_kernel_address ebp) then
      stop (Printf.sprintf "rbp chain left the kernel range at 0x%x" ebp) acc
    else if depth >= max_depth then
      stop (Printf.sprintf "rbp chain exceeded depth cap %d" max_depth) acc
    else begin
      on_frame ();
      match (read_guest_u32 t (ebp + 4), read_guest_u32 t ebp) with
      | Some ret, Some prev_ebp ->
          if ret = Cpu.sentinel_return || not (Layout.is_kernel_address ret)
          then List.rev acc
          else if prev_ebp <> 0 && prev_ebp <= ebp then
            stop
              (Printf.sprintf "cyclic rbp chain at 0x%x (next frame 0x%x)"
                 ebp prev_ebp)
              (ret :: acc)
          else go (ret :: acc) prev_ebp (depth + 1)
      | _ -> stop (Printf.sprintf "unreadable stack frame at 0x%x" ebp) acc
    end
  in
  (* a fault at a function entry has not pushed ebp yet: the immediate
     caller's return address still sits at the top of the stack *)
  let entry_caller =
    match esp with
    | Some esp
      when Fc_isa.Scan.is_prologue_at ~read:(read_original_code t) eip -> (
        on_frame ();
        match read_guest_u32 t esp with
        | Some ret
          when ret <> Cpu.sentinel_return && Layout.is_kernel_address ret ->
            [ ret ]
        | Some _ | None -> [])
    | Some _ | None -> []
  in
  let frames = (eip :: entry_caller) @ go [] ebp 0 in
  { frames; broken = !broken }

let stack_walk t ~eip ~ebp ?esp ?(max_depth = 64) () =
  let sid = span_enter t Fc_obs.Span.Backtrace in
  let w =
    walk_impl t
      ~on_frame:(fun () -> charge t Cost.backtrace_frame)
      ~eip ~ebp ~esp ~max_depth
  in
  span_exit t sid;
  w

let sample_stack t ~eip ~ebp ?esp ?(max_depth = 64) () =
  (* uncharged and span-free: the telemetry sampler walks stacks without
     advancing guest time or emitting trace records, so an armed profiler
     cannot drift any pinned counter *)
  walk_impl t ~on_frame:(fun () -> ()) ~eip ~ebp ~esp ~max_depth

let stack_frames t ~eip ~ebp ?esp ?max_depth () =
  (stack_walk t ~eip ~ebp ?esp ?max_depth ()).frames

let refresh_symbols t =
  let syms = Symbols.create () in
  (* System.map: the base kernel's function symbols. *)
  Symbols.add_unit syms (Image.unit_image (Os.image t.os));
  (* VMI-visible modules: if the name matches a known distro module, we
     have its .ko symbols; assemble its layout at the observed base. *)
  let mods = module_list t in
  List.iter
    (fun (name, base, _size) ->
      if List.mem_assoc name Catalog.module_functions then
        match Image.assemble_module (Os.image t.os) ~name ~base with
        | Ok u -> Symbols.add_unit syms ~module_name:name u
        | Error _ -> ())
    mods;
  t.visible_modules <- mods;
  t.symbols <- syms

let symbols t = t.symbols
let addr_of_symbol t name = Symbols.addr_of t.symbols name

let render_addr t addr =
  match Symbols.find t.symbols addr with
  | Some _ -> Symbols.render t.symbols addr
  | None -> (
      match
        List.find_opt
          (fun (_, base, size) -> base <= addr && addr < base + size)
          t.visible_modules
      with
      | Some (name, base, _) ->
          Printf.sprintf "0x%x <mod:%s+0x%x>" addr name (addr - base)
      | None -> Printf.sprintf "0x%x <UNKNOWN>" addr)

let dispatch_exit t regs = function
  | Os.Exit_breakpoint addr ->
      Metrics.incr t.breakpoint_exits;
      let sid = span_enter t Fc_obs.Span.Exit_handling in
      if Obs.armed t.obs then
        Obs.emit t.obs
          (Event.Vm_exit { reason = Event.Exit_breakpoint; addr });
      charge t Cost.vm_exit;
      List.iter (fun h -> h t regs addr) t.bp_handlers;
      span_exit t sid;
      Os.Resume
  | Os.Exit_invalid_opcode -> (
      Metrics.incr t.invalid_opcode_exits;
      let sid = span_enter t Fc_obs.Span.Exit_handling in
      if Obs.armed t.obs then
        Obs.emit t.obs
          (Event.Vm_exit
             { reason = Event.Exit_invalid_opcode; addr = regs.Cpu.eip });
      charge t Cost.vm_exit;
      let result = t.io_handler t regs in
      span_exit t sid;
      match result with
      | `Handled -> Os.Resume
      | `Unhandled reason -> Os.Panic reason)

let snapshot_tables os =
  let tables = Hashtbl.create 16 in
  let note gva =
    let dir = Fc_mem.Ept.dir_of_page (Layout.page_of (Layout.gva_to_gpa gva)) in
    if not (Hashtbl.mem tables dir) then
      match Fc_mem.Ept.get_dir (Os.ept os) ~dir with
      | Some table -> Hashtbl.replace tables dir table
      | None -> ()
  in
  let img = Os.image os in
  let rec sweep gva limit =
    if gva < limit then begin
      note gva;
      sweep (gva + (Fc_mem.Ept.dir_span_pages * Layout.page_size)) limit
    end
  in
  sweep (Image.text_base img) (Image.text_end img);
  note (Image.text_end img - 1);
  sweep Layout.module_area_base Layout.module_area_limit;
  note (Layout.module_area_limit - 1);
  tables

let attach os =
  let obs = Os.obs os in
  let m = Obs.metrics obs in
  let t =
    {
      os;
      obs;
      original_tables = snapshot_tables os;
      frame_cache = Fc_mem.Frame_cache.create ~obs (Os.phys os);
      symbols = Symbols.create ();
      visible_modules = [];
      bp_handlers = [];
      io_handler = (fun _ _ -> `Unhandled "invalid opcode (no recovery installed)");
      breakpoint_exits = Metrics.counter m ~subsystem:"hyp" "breakpoint_exits";
      invalid_opcode_exits =
        Metrics.counter m ~subsystem:"hyp" "invalid_opcode_exits";
      cycles_charged = Metrics.counter m ~subsystem:"hyp" "cycles_charged";
      charge_cycles = Metrics.histogram m ~subsystem:"hyp" "charge_cycles";
      app_cycles = Metrics.counter_family m ~subsystem:"hyp" "cycles_charged";
      app_memo = None;
    }
  in
  (* a fresh hypervisor starts from zero even if a previous attachment to
     this guest registered the same counters *)
  Metrics.reset t.breakpoint_exits;
  Metrics.reset t.invalid_opcode_exits;
  Metrics.reset t.cycles_charged;
  Metrics.reset_histogram t.charge_cycles;
  Metrics.reset_family t.app_cycles;
  refresh_symbols t;
  Os.set_exit_handler os (fun _os regs exit -> dispatch_exit t regs exit);
  t

let detach t =
  List.iter (Os.clear_trap t.os) (Os.trap_addresses t.os);
  Os.set_exit_handler t.os (fun _ _ -> function
    | Os.Exit_breakpoint _ -> Os.Resume
    | Os.Exit_invalid_opcode -> Os.Panic "invalid opcode in guest kernel (no hypervisor)")

(* ---------------- snapshot: freeze / restore ---------------- *)

type frozen = {
  zh_tables : (int * int) list; (* EPT dir -> pool table id, sorted *)
  zh_cache : (string * int * int) list; (* Frame_cache.export *)
}

let freeze t ~table_id =
  {
    zh_tables =
      List.sort compare
        (Hashtbl.fold
           (fun dir tbl acc -> (dir, table_id tbl) :: acc)
           t.original_tables []);
    zh_cache = Fc_mem.Frame_cache.export t.frame_cache;
  }

let restore ~os ~table_of (z : frozen) =
  let obs = Os.obs os in
  let m = Obs.metrics obs in
  let original_tables = Hashtbl.create 16 in
  List.iter
    (fun (dir, id) -> Hashtbl.replace original_tables dir (table_of id))
    z.zh_tables;
  let frame_cache = Fc_mem.Frame_cache.create ~obs (Os.phys os) in
  Fc_mem.Frame_cache.import frame_cache z.zh_cache;
  let t =
    {
      os;
      obs;
      original_tables;
      frame_cache;
      symbols = Symbols.create ();
      visible_modules = [];
      bp_handlers = [];
      io_handler = (fun _ _ -> `Unhandled "invalid opcode (no recovery installed)");
      breakpoint_exits = Metrics.counter m ~subsystem:"hyp" "breakpoint_exits";
      invalid_opcode_exits =
        Metrics.counter m ~subsystem:"hyp" "invalid_opcode_exits";
      cycles_charged = Metrics.counter m ~subsystem:"hyp" "cycles_charged";
      charge_cycles = Metrics.histogram m ~subsystem:"hyp" "charge_cycles";
      app_cycles = Metrics.counter_family m ~subsystem:"hyp" "cycles_charged";
      app_memo = None;
    }
  in
  (* no counter resets here: the codec applies its metrics section after
     every layer is restored, and a fresh registry already reads zero *)
  refresh_symbols t;
  Os.set_exit_handler os (fun _os regs exit -> dispatch_exit t regs exit);
  t
