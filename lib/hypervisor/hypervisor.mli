(** The hypervisor attachment point.

    [attach] hooks the guest's VM-exit path and gives FACE-CHANGE the same
    narrow capabilities a KVM module has: guest breakpoints, invalid-opcode
    interception, EPT access, guest-physical RAM reads (VMI), and a symbol
    registry assembled from the kernel's System.map plus the module list
    observed through VMI.  Every operation charges the {!Cost} model onto
    the guest cycle counter, which is how Figs. 6 and 7 acquire their
    overhead. *)

type t

val attach : Fc_machine.Os.t -> t
(** Install the VM-exit dispatcher on the guest.  Only one hypervisor may
    be attached per guest at a time. *)

val detach : t -> unit
(** Restore the guest's default (panicking) exit handler and clear all
    breakpoints. *)

val os : t -> Fc_machine.Os.t

val obs : t -> Fc_obs.Obs.t
(** The guest's observability hub ([Os.obs]).  The hypervisor registers
    its exit/cycle counters and a [hyp.charge_cycles] histogram on its
    metrics registry at attach time (resetting them, so a re-attachment
    starts from zero) and emits [vm_exit] trace events when the hub is
    armed. *)

val frame_cache : t -> Fc_mem.Frame_cache.t
(** The content-keyed frame cache view materialization interns shareable
    pages through.  One cache per attached hypervisor: views built for
    the same guest share frames with each other. *)

(* ---------------- exits ---------------- *)

val on_breakpoint : t -> (t -> Fc_machine.Cpu.regs -> int -> unit) -> unit
(** Register a breakpoint listener; all registered listeners run on every
    guest breakpoint hit (FACE-CHANGE's view switcher and, e.g., a syscall
    behavior monitor can coexist).  Execution resumes afterwards. *)

val on_invalid_opcode :
  t -> (t -> Fc_machine.Cpu.regs -> [ `Handled | `Unhandled of string ]) -> unit
(** Called on every invalid-opcode VM exit.  Return [`Handled] after
    repairing the faulting code (execution retries the same [eip]), or
    [`Unhandled reason] to let the guest die. *)

val set_breakpoint : t -> int -> unit
val clear_breakpoint : t -> int -> unit
val has_breakpoint : t -> int -> bool

(* ---------------- accounting ---------------- *)

val charge : t -> int -> unit
(** Add hypervisor work to the guest cycle counter. *)

val breakpoint_exits : t -> int
val invalid_opcode_exits : t -> int
val vm_exits : t -> int
val cycles_charged : t -> int

(* ---------------- VMI ---------------- *)

val current_task : t -> int * string
val module_list : t -> (string * int * int) list

val read_guest_byte : t -> int -> int option
val read_guest_u32 : t -> int -> int option

val read_original_code : t -> int -> int option
(** Read a byte of kernel code from the {e original} guest RAM frames —
    the source of truth that code recovery copies from, unaffected by any
    installed view. *)

val read_active_code : t -> int -> int option
(** Read a byte through the EPT — what the vCPU would fetch right now
    (i.e. the active view's contents). *)

val original_frame : t -> gpa_page:int -> int option

val original_table : t -> dir:int -> Fc_mem.Ept.table option
(** The EPT page table that directory entry [dir] pointed at when the
    hypervisor attached (i.e. the guest's real RAM mapping) — what a full
    kernel view restores and what custom views start from. *)

type walk = {
  frames : int list;  (** [eip] followed by each saved return address *)
  broken : string option;
      (** [None] for a chain that terminated cleanly (zero rbp, user-mode
          sentinel, or non-kernel return address); [Some reason] when the
          walk was cut short by a malformed chain — an rbp outside the
          kernel range, a cycle (the chain must be strictly increasing on
          a downward-growing stack), an unreadable frame, or the depth
          cap *)
}

val stack_walk :
  t -> eip:int -> ebp:int -> ?esp:int -> ?max_depth:int -> unit -> walk
(** Walk the guest rbp chain defensively.  The frames gathered before the
    break are always returned, so a caller can still use the trustworthy
    prefix; [broken] tells it not to trust what lies beyond.  When [esp]
    is given and the original code at [eip] carries the prologue signature
    (the fault hit a function entry, before [push ebp] ran), the immediate
    caller's return address is read from [[esp]] first — otherwise the
    rbp chain would skip it.  Charges {!Cost.backtrace_frame} per frame;
    [max_depth] defaults to 64. *)

val stack_frames :
  t -> eip:int -> ebp:int -> ?esp:int -> ?max_depth:int -> unit -> int list
(** [(stack_walk t ...).frames] — the walk without the verdict. *)

val sample_stack :
  t -> eip:int -> ebp:int -> ?esp:int -> ?max_depth:int -> unit -> walk
(** The same defensive walk as {!stack_walk}, but free: no cycles are
    charged and no backtrace span is emitted.  This is the telemetry
    sampler's walk — charging would advance guest time and shift every
    timer interrupt after the first profiler tick, so an armed profiler
    would silently drift the pinned deterministic counters.  Reads guest
    memory through the data path only (never guest-visible). *)

(* ---------------- symbols ---------------- *)

val refresh_symbols : t -> unit
(** Rebuild the symbol registry: base kernel (System.map) plus per-function
    symbols for VMI-visible modules whose names match known distro modules.
    Modules hidden from the guest list disappear — their frames render as
    [<UNKNOWN>], as in Fig. 5. *)

val symbols : t -> Fc_kernel.Symbols.t

val render_addr : t -> int -> string
(** ["0xc021a526 <do_sys_poll+0x136>"]; ["0xf8078bbe <mod:sebek+0xbe>"] for
    an address inside a VMI-visible module without function symbols;
    ["0xf8078bbe <UNKNOWN>"] otherwise. *)

val addr_of_symbol : t -> string -> int option

(** {1 Snapshot: freeze / restore} *)

type frozen = {
  zh_tables : (int * int) list;
      (** the pristine-view EPT leaf tables, dir -> pool table id, sorted *)
  zh_cache : (string * int * int) list;
      (** {!Fc_mem.Frame_cache.export} of the content-keyed frame cache *)
}

val freeze : t -> table_id:(Fc_mem.Ept.table -> int) -> frozen

val restore :
  os:Fc_machine.Os.t -> table_of:(int -> Fc_mem.Ept.table) -> frozen -> t
(** Re-attach a hypervisor to a thawed guest without re-deriving state
    from the live EPT (the way {!attach} does): the pristine table set
    and frame cache come from the snapshot, symbols are refreshed from
    restored guest RAM, the exit handler is installed, and no counters
    are reset — the codec's metrics section is applied afterwards. *)
