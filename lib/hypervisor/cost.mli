(** The hypervisor cycle cost model.

    FACE-CHANGE's runtime overhead comes from VM exits (context-switch and
    resume-userspace breakpoints, invalid-opcode traps), EPT manipulation,
    and code recovery work.  These constants, in simulated guest cycles,
    are calibrated so the whole-system overhead lands in the paper's
    5–7% band (Fig. 6) with the pipe-based context-switching subtest as
    the worst case. *)

val vm_exit : int
(** One VM exit + re-entry round trip. *)

val breakpoint_handler : int
(** Handling a context-switch / resume-userspace trap: VMI read of the
    current task and the view-selector lookup. *)

val invalid_opcode_handler : int
(** Fixed part of a kernel code recovery: fault decode plus function
    boundary search. *)

val ept_dir_switch : int
(** Swapping one EPT page-directory entry. *)

val backtrace_frame : int
(** Walking one stack frame during provenance backtracing. *)

val code_copy_per_16_bytes : int
(** Copying recovered code from the original frames into view pages. *)

val view_page_init : int
(** UD2-filling and populating one page at view load time. *)

val code_copy : bytes:int -> int
(** Cycles for copying [bytes] of code ([bytes / 16 *
    code_copy_per_16_bytes]) — the variable part of view loading and
    code recovery. *)

val cow_break : int
(** Copying a shared view frame before its first write.  Deliberately
    [0]: frame sharing must be behavior-invisible, and since cycles
    drive timer interrupts (and therefore scheduling and recovery
    sequences), a copy-on-write break may not consume guest time. *)
