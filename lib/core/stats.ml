module Hyp = Fc_hypervisor.Hypervisor
module Os = Fc_machine.Os

type t = {
  guest_cycles : int;
  rounds : int;
  context_switches : int;
  vcpus : int;
  breakpoint_exits : int;
  invalid_opcode_exits : int;
  hypervisor_cycles : int;
  view_switches : int;
  switches_skipped : int;
  switches_deferred : int;
  recoveries : int;
  recovered_bytes : int;
  views_loaded : int;
  view_pages : int;
  shared_frames : int;
  cow_breaks : int;
}

let capture fc =
  let hyp = Facechange.hyp fc in
  let os = Hyp.os hyp in
  {
    guest_cycles = Os.cycles os;
    rounds = Os.round os;
    context_switches = Os.context_switches os;
    vcpus = Os.vcpu_count os;
    breakpoint_exits = Hyp.breakpoint_exits hyp;
    invalid_opcode_exits = Hyp.invalid_opcode_exits hyp;
    hypervisor_cycles = Hyp.cycles_charged hyp;
    view_switches = Facechange.switches fc;
    switches_skipped = Facechange.switch_skips fc;
    switches_deferred = Facechange.deferred_switches fc;
    recoveries = Facechange.recoveries fc;
    recovered_bytes = Facechange.recovered_bytes fc;
    views_loaded = List.length (Facechange.views fc);
    view_pages =
      List.fold_left
        (fun n v -> n + View.private_page_count v)
        0 (Facechange.views fc);
    shared_frames = Facechange.shared_frames fc;
    cow_breaks = Facechange.cow_breaks fc;
  }

let overhead_fraction t =
  if t.guest_cycles = 0 then 0.
  else float_of_int t.hypervisor_cycles /. float_of_int t.guest_cycles

let pp ppf t =
  Format.fprintf ppf
    "@[<v>guest: %d cycles, %d rounds, %d context switches, %d vCPU(s)@,\
     hypervisor: %d VM exits (%d breakpoints, %d invalid opcodes), %d cycles charged (%.1f%%)@,\
     views: %d loaded, %d switches (%d skipped, %d deferred)@,\
     frames: %d view pages, %d shared, %d CoW breaks@,\
     recovery: %d recoveries, %d bytes@]"
    t.guest_cycles t.rounds t.context_switches t.vcpus
    (t.breakpoint_exits + t.invalid_opcode_exits)
    t.breakpoint_exits t.invalid_opcode_exits t.hypervisor_cycles
    (100. *. overhead_fraction t)
    t.views_loaded t.view_switches t.switches_skipped t.switches_deferred
    t.view_pages t.shared_frames t.cow_breaks t.recoveries t.recovered_bytes
