module Hyp = Fc_hypervisor.Hypervisor
module Os = Fc_machine.Os
module Obs = Fc_obs.Obs
module Metrics = Fc_obs.Metrics
module Jsonx = Fc_obs.Jsonx

type t = {
  guest_cycles : int;
  rounds : int;
  context_switches : int;
  vcpus : int;
  breakpoint_exits : int;
  invalid_opcode_exits : int;
  hypervisor_cycles : int;
  view_switches : int;
  switches_skipped : int;
  switches_deferred : int;
  recoveries : int;
  recovered_bytes : int;
  views_loaded : int;
  view_pages : int;
  shared_frames : int;
  cow_breaks : int;
}

(* Every field is a read of the guest's metrics registry: the scheduler,
   hypervisor and FACE-CHANGE core register their counters and gauges
   under "os.*" / "hyp.*" / "fc.*" keys, and capture is nothing but a
   stable projection of those.  A key can only be missing if the
   subsystem that owns it never ran, in which case 0 is the truth. *)
let capture fc =
  let hyp = Facechange.hyp fc in
  let os = Hyp.os hyp in
  let m = Obs.metrics (Os.obs os) in
  let v key = Option.value ~default:0 (Metrics.find m key) in
  {
    guest_cycles = v "os.cycles";
    rounds = v "os.rounds";
    context_switches = v "os.context_switches";
    vcpus = v "os.vcpus";
    breakpoint_exits = v "hyp.breakpoint_exits";
    invalid_opcode_exits = v "hyp.invalid_opcode_exits";
    hypervisor_cycles = v "hyp.cycles_charged";
    view_switches = v "fc.view_switches";
    switches_skipped = v "fc.switches_skipped";
    switches_deferred = v "fc.switches_deferred";
    recoveries = v "fc.recoveries";
    recovered_bytes = v "fc.recovered_bytes";
    views_loaded = v "fc.views_loaded";
    view_pages = v "fc.view_pages";
    shared_frames = v "fc.shared_frames";
    cow_breaks = v "fc.cow_breaks";
  }

let overhead_fraction t =
  if t.guest_cycles = 0 then 0.
  else float_of_int t.hypervisor_cycles /. float_of_int t.guest_cycles

let fields t =
  [
    ("guest_cycles", t.guest_cycles);
    ("rounds", t.rounds);
    ("context_switches", t.context_switches);
    ("vcpus", t.vcpus);
    ("breakpoint_exits", t.breakpoint_exits);
    ("invalid_opcode_exits", t.invalid_opcode_exits);
    ("hypervisor_cycles", t.hypervisor_cycles);
    ("view_switches", t.view_switches);
    ("switches_skipped", t.switches_skipped);
    ("switches_deferred", t.switches_deferred);
    ("recoveries", t.recoveries);
    ("recovered_bytes", t.recovered_bytes);
    ("views_loaded", t.views_loaded);
    ("view_pages", t.view_pages);
    ("shared_frames", t.shared_frames);
    ("cow_breaks", t.cow_breaks);
  ]

let to_json t =
  Jsonx.Obj
    (List.map (fun (k, v) -> (k, Jsonx.Int v)) (fields t)
    @ [ ("overhead_fraction", Jsonx.Float (overhead_fraction t)) ])

let pp ppf t =
  Format.fprintf ppf
    "@[<v>guest: %d cycles, %d rounds, %d context switches, %d vCPU(s)@,\
     hypervisor: %d VM exits (%d breakpoints, %d invalid opcodes), %d cycles charged (%.1f%%)@,\
     views: %d loaded, %d switches (%d skipped, %d deferred)@,\
     frames: %d view pages, %d shared, %d CoW breaks@,\
     recovery: %d recoveries, %d bytes@]"
    t.guest_cycles t.rounds t.context_switches t.vcpus
    (t.breakpoint_exits + t.invalid_opcode_exits)
    t.breakpoint_exits t.invalid_opcode_exits t.hypervisor_cycles
    (100. *. overhead_fraction t)
    t.views_loaded t.view_switches t.switches_skipped t.switches_deferred
    t.view_pages t.shared_frames t.cow_breaks t.recoveries t.recovered_bytes
