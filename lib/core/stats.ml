module Hyp = Fc_hypervisor.Hypervisor
module Os = Fc_machine.Os
module Obs = Fc_obs.Obs
module Metrics = Fc_obs.Metrics
module Jsonx = Fc_obs.Jsonx

type per_app = {
  a_run_cycles : int;
  a_run_slices : int;
  a_cycles_charged : int;
  a_view_switches : int;
  a_recoveries : int;
  a_recovered_bytes : int;
  a_cow_breaks : int;
}

type t = {
  guest_cycles : int;
  rounds : int;
  context_switches : int;
  vcpus : int;
  breakpoint_exits : int;
  invalid_opcode_exits : int;
  hypervisor_cycles : int;
  view_switches : int;
  switches_skipped : int;
  switches_deferred : int;
  recoveries : int;
  recovered_bytes : int;
  views_loaded : int;
  view_pages : int;
  shared_frames : int;
  cow_breaks : int;
  storms : int;
  degradations : int;
  renarrows : int;
  quarantines : int;
  broken_backtraces : int;
  per_app : (string * per_app) list;
}

(* Every field is a read of the guest's metrics registry: the scheduler,
   hypervisor and FACE-CHANGE core register their counters and gauges
   under "os.*" / "hyp.*" / "fc.*" keys, and capture is nothing but a
   stable projection of those.  A key can only be missing if the
   subsystem that owns it never ran, in which case 0 is the truth. *)
let empty_app =
  {
    a_run_cycles = 0;
    a_run_slices = 0;
    a_cycles_charged = 0;
    a_view_switches = 0;
    a_recoveries = 0;
    a_recovered_bytes = 0;
    a_cow_breaks = 0;
  }

(* Gather every labeled family member under the per-app keys into one
   record per label (comm/app name), sorted by label for stable output. *)
let capture_per_app m =
  let table : (string, per_app) Hashtbl.t = Hashtbl.create 16 in
  let merge key apply =
    List.iter
      (fun (label, v) ->
        let cur =
          Option.value ~default:empty_app (Hashtbl.find_opt table label)
        in
        Hashtbl.replace table label (apply cur v))
      (Metrics.labels m key)
  in
  merge "os.run_cycles" (fun a v -> { a with a_run_cycles = a.a_run_cycles + v });
  merge "os.run_slices" (fun a v -> { a with a_run_slices = a.a_run_slices + v });
  merge "hyp.cycles_charged" (fun a v ->
      { a with a_cycles_charged = a.a_cycles_charged + v });
  merge "fc.view_switches" (fun a v ->
      { a with a_view_switches = a.a_view_switches + v });
  merge "fc.recoveries" (fun a v -> { a with a_recoveries = a.a_recoveries + v });
  merge "fc.recovered_bytes" (fun a v ->
      { a with a_recovered_bytes = a.a_recovered_bytes + v });
  merge "view.cow_breaks" (fun a v -> { a with a_cow_breaks = a.a_cow_breaks + v });
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [])

let capture fc =
  let hyp = Facechange.hyp fc in
  let os = Hyp.os hyp in
  let m = Obs.metrics (Os.obs os) in
  let v key = Option.value ~default:0 (Metrics.find m key) in
  {
    guest_cycles = v "os.cycles";
    rounds = v "os.rounds";
    context_switches = v "os.context_switches";
    vcpus = v "os.vcpus";
    breakpoint_exits = v "hyp.breakpoint_exits";
    invalid_opcode_exits = v "hyp.invalid_opcode_exits";
    hypervisor_cycles = v "hyp.cycles_charged";
    view_switches = v "fc.view_switches";
    switches_skipped = v "fc.switches_skipped";
    switches_deferred = v "fc.switches_deferred";
    recoveries = v "fc.recoveries";
    recovered_bytes = v "fc.recovered_bytes";
    views_loaded = v "fc.views_loaded";
    view_pages = v "fc.view_pages";
    shared_frames = v "fc.shared_frames";
    cow_breaks = v "fc.cow_breaks";
    storms = v "fc.storms";
    degradations = v "fc.degradations";
    renarrows = v "fc.renarrows";
    quarantines = v "fc.quarantines";
    broken_backtraces = v "fc.broken_backtraces";
    per_app = capture_per_app m;
  }

let merge_app a b =
  {
    a_run_cycles = a.a_run_cycles + b.a_run_cycles;
    a_run_slices = a.a_run_slices + b.a_run_slices;
    a_cycles_charged = a.a_cycles_charged + b.a_cycles_charged;
    a_view_switches = a.a_view_switches + b.a_view_switches;
    a_recoveries = a.a_recoveries + b.a_recoveries;
    a_recovered_bytes = a.a_recovered_bytes + b.a_recovered_bytes;
    a_cow_breaks = a.a_cow_breaks + b.a_cow_breaks;
  }

let merge stats =
  let sum f = List.fold_left (fun acc s -> acc + f s) 0 stats in
  let per_app =
    let table : (string, per_app) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun s ->
        List.iter
          (fun (comm, a) ->
            let cur =
              Option.value ~default:empty_app (Hashtbl.find_opt table comm)
            in
            Hashtbl.replace table comm (merge_app cur a))
          s.per_app)
      stats;
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [])
  in
  {
    guest_cycles = sum (fun s -> s.guest_cycles);
    rounds = sum (fun s -> s.rounds);
    context_switches = sum (fun s -> s.context_switches);
    vcpus = sum (fun s -> s.vcpus);
    breakpoint_exits = sum (fun s -> s.breakpoint_exits);
    invalid_opcode_exits = sum (fun s -> s.invalid_opcode_exits);
    hypervisor_cycles = sum (fun s -> s.hypervisor_cycles);
    view_switches = sum (fun s -> s.view_switches);
    switches_skipped = sum (fun s -> s.switches_skipped);
    switches_deferred = sum (fun s -> s.switches_deferred);
    recoveries = sum (fun s -> s.recoveries);
    recovered_bytes = sum (fun s -> s.recovered_bytes);
    views_loaded = sum (fun s -> s.views_loaded);
    view_pages = sum (fun s -> s.view_pages);
    shared_frames = sum (fun s -> s.shared_frames);
    cow_breaks = sum (fun s -> s.cow_breaks);
    storms = sum (fun s -> s.storms);
    degradations = sum (fun s -> s.degradations);
    renarrows = sum (fun s -> s.renarrows);
    quarantines = sum (fun s -> s.quarantines);
    broken_backtraces = sum (fun s -> s.broken_backtraces);
    per_app;
  }

let attribution_ok t =
  let sum f = List.fold_left (fun acc (_, a) -> acc + f a) 0 t.per_app in
  sum (fun a -> a.a_cycles_charged) = t.hypervisor_cycles
  && sum (fun a -> a.a_view_switches) = t.view_switches
  && sum (fun a -> a.a_recoveries) = t.recoveries
  && sum (fun a -> a.a_recovered_bytes) = t.recovered_bytes
  && sum (fun a -> a.a_cow_breaks) = t.cow_breaks

let overhead_fraction t =
  if t.guest_cycles = 0 then 0.
  else float_of_int t.hypervisor_cycles /. float_of_int t.guest_cycles

let fields t =
  [
    ("guest_cycles", t.guest_cycles);
    ("rounds", t.rounds);
    ("context_switches", t.context_switches);
    ("vcpus", t.vcpus);
    ("breakpoint_exits", t.breakpoint_exits);
    ("invalid_opcode_exits", t.invalid_opcode_exits);
    ("hypervisor_cycles", t.hypervisor_cycles);
    ("view_switches", t.view_switches);
    ("switches_skipped", t.switches_skipped);
    ("switches_deferred", t.switches_deferred);
    ("recoveries", t.recoveries);
    ("recovered_bytes", t.recovered_bytes);
    ("views_loaded", t.views_loaded);
    ("view_pages", t.view_pages);
    ("shared_frames", t.shared_frames);
    ("cow_breaks", t.cow_breaks);
    ("storms", t.storms);
    ("degradations", t.degradations);
    ("renarrows", t.renarrows);
    ("quarantines", t.quarantines);
    ("broken_backtraces", t.broken_backtraces);
  ]

let per_app_fields a =
  [
    ("run_cycles", a.a_run_cycles);
    ("run_slices", a.a_run_slices);
    ("cycles_charged", a.a_cycles_charged);
    ("view_switches", a.a_view_switches);
    ("recoveries", a.a_recoveries);
    ("recovered_bytes", a.a_recovered_bytes);
    ("cow_breaks", a.a_cow_breaks);
  ]

let to_json t =
  Jsonx.Obj
    (List.map (fun (k, v) -> (k, Jsonx.Int v)) (fields t)
    @ [
        ("overhead_fraction", Jsonx.Float (overhead_fraction t));
        ( "per_app",
          Jsonx.Obj
            (List.map
               (fun (app, a) ->
                 ( app,
                   Jsonx.Obj
                     (List.map
                        (fun (k, v) -> (k, Jsonx.Int v))
                        (per_app_fields a)) ))
               t.per_app) );
      ])

let pp ppf t =
  Format.fprintf ppf
    "@[<v>guest: %d cycles, %d rounds, %d context switches, %d vCPU(s)@,\
     hypervisor: %d VM exits (%d breakpoints, %d invalid opcodes), %d cycles charged (%.1f%%)@,\
     views: %d loaded, %d switches (%d skipped, %d deferred)@,\
     frames: %d view pages, %d shared, %d CoW breaks@,\
     recovery: %d recoveries, %d bytes@,\
     governor: %d storms, %d degradations, %d renarrows, %d quarantines, %d \
     broken backtraces@]"
    t.guest_cycles t.rounds t.context_switches t.vcpus
    (t.breakpoint_exits + t.invalid_opcode_exits)
    t.breakpoint_exits t.invalid_opcode_exits t.hypervisor_cycles
    (100. *. overhead_fraction t)
    t.views_loaded t.view_switches t.switches_skipped t.switches_deferred
    t.view_pages t.shared_frames t.cow_breaks t.recoveries t.recovered_bytes
    t.storms t.degradations t.renarrows t.quarantines t.broken_backtraces;
  List.iter
    (fun (app, a) ->
      Format.fprintf ppf
        "@\n\
         %s: %d run cycles over %d slices, %d charged, %d switches, %d \
         recoveries (%d bytes), %d CoW breaks"
        app a.a_run_cycles a.a_run_slices a.a_cycles_charged a.a_view_switches
        a.a_recoveries a.a_recovered_bytes a.a_cow_breaks)
    t.per_app
