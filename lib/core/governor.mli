(** The recovery-storm governor: bounded degradation instead of death.

    The paper's recovery path (§III-B3) assumes the per-app profile is
    close enough to the workload that UD2 traps stay rare, and that an
    unhandled fault is fatal.  This module tracks degradable events —
    lazy recoveries and broken backtrace chains — per guest comm in a
    sliding cycle window and decides when FACE-CHANGE should escalate:

    {v
      narrow --(throttle_after events/window)--> throttled
      narrow|throttled --(storm_after events/window)--> degraded (full view)
      degraded --(cooldown elapsed, at a context switch)--> narrow
      any --(quarantine_after degradations, or repeated unhandled
             faults)--> quarantined (full view, permanently)
    v}

    The governor only decides; {!Facechange} performs the view switches
    and emits the [storm_detected]/[degraded]/[renarrowed]/[quarantined]
    events.  All state is per-comm: one misbehaving app degrades to the
    full kernel view while every other app keeps its narrow view. *)

type policy = {
  window_cycles : int;  (** sliding-window width, in guest cycles *)
  throttle_after : int;
      (** degradable events within the window before the comm is
          throttled (recoveries start prefetching the whole caller
          chain) *)
  storm_after : int;
      (** events within the window before the comm is degraded to the
          full kernel view *)
  cooldown_cycles : int;
      (** hysteresis: cycles a degraded comm must dwell on the full view
          before it may be re-narrowed *)
  quarantine_after : int;
      (** degradations (or unhandled faults) of one comm before it is
          pinned to the full view for good *)
  max_backtrace_depth : int;
      (** depth budget handed to the backtrace walker *)
  on_unhandled : [ `Degrade | `Die ];
      (** what an [`Unhandled] invalid-opcode exit becomes: fall back to
          the full view and resume, or keep the paper's
          let-the-guest-die behavior *)
}

val default_policy : policy
(** [{ window_cycles = 400_000; throttle_after = 4; storm_after = 8;
      cooldown_cycles = 600_000; quarantine_after = 3;
      max_backtrace_depth = 32; on_unhandled = `Degrade }] *)

type state = Narrow | Throttled | Degraded | Quarantined

val state_label : state -> string
(** ["narrow"], ["throttled"], ["degraded"], ["quarantined"]. *)

type t

val create : policy -> t
val policy : t -> policy

val state : t -> comm:string -> state
(** Comms never seen are [Narrow]. *)

val comms : t -> (string * state) list
(** Every comm the governor has seen, with its current state (sorted). *)

val note_event : t -> comm:string -> cycle:int -> [ `Steady | `Throttle | `Storm of int ]
(** Record one degradable event (a lazy recovery, or a broken rbp chain).
    [`Throttle] fires once, on the transition into {!Throttled}.
    [`Storm n] reports [n] events inside the window; the caller is
    expected to degrade the comm and then call {!note_degraded}.  Already
    degraded or quarantined comms always report [`Steady]. *)

val note_degraded : t -> comm:string -> cycle:int -> [ `Degraded | `Quarantine ]
(** The caller fell [comm] back to the full view.  Clears the event
    window, starts the cooldown clock, and reports [`Quarantine] when
    this was the [quarantine_after]-th degradation. *)

val note_unhandled : t -> comm:string -> [ `Degrade | `Quarantine | `Tolerate | `Die ]
(** An invalid-opcode exit the recovery path could not handle.  [`Die]
    under the [`Die] policy; otherwise [`Degrade] (fall back to the full
    view), [`Quarantine] once the comm has accumulated
    [quarantine_after] unhandled faults, or [`Tolerate] when the comm is
    already quarantined (swallow and resume). *)

val quarantine : t -> comm:string -> cycle:int -> unit
(** Pin [comm]'s state to {!Quarantined} (counts as one more
    degradation).  Used by the caller after a [`Quarantine] verdict from
    {!note_unhandled}; {!note_degraded} transitions by itself. *)

val degradations : t -> comm:string -> int

val renarrow_due : t -> comm:string -> cycle:int -> bool
(** True when [comm] is degraded (not quarantined) and the cooldown has
    elapsed — checked at context-switch time, the only moment a view
    rebind is safe. *)

val note_renarrowed : t -> comm:string -> unit
(** The caller re-bound [comm] to its narrow view; back to {!Narrow}.
    The degradation count is kept, so a comm that keeps storming still
    converges to quarantine. *)

(** {1 Snapshot state}

    The complete per-comm decision state as plain data — the sliding
    event windows included, because a restored guest must make the same
    throttle/storm/quarantine decisions at the same cycles as one that
    never stopped. *)

type frozen_app = {
  za_st : state;
  za_recent : int list;  (** event-window cycles, oldest first *)
  za_degradations : int;
  za_degraded_at : int;
  za_unhandled : int;
}

type frozen = { zg_policy : policy; zg_apps : (string * frozen_app) list }

val freeze : t -> frozen
(** Comms sorted, windows oldest-first: byte-stable for the codec. *)

val thaw : frozen -> t
